// Graceful-degradation coverage: force ResourceError at every injection
// site and assert (a) the fallback chain still produces predictions
// identical to a clean CpuNative run and (b) RunReport::degradations
// records the exact path taken.

#include <gtest/gtest.h>

#include "core/classifier.hpp"
#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf {
namespace {

Forest small_forest() {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 9;
  spec.num_features = 7;
  spec.seed = 33;
  return make_random_forest(spec);
}

gpusim::DeviceConfig small_gpu() {
  auto cfg = gpusim::DeviceConfig::titan_xp();
  cfg.num_sms = 4;
  return cfg;
}

ClassifierOptions base_options(Backend backend, Variant variant) {
  ClassifierOptions opt;
  opt.backend = backend;
  opt.variant = variant;
  opt.layout.subtree_depth = 4;
  opt.gpu = small_gpu();
  opt.fallback.enabled = true;
  return opt;
}

class Degradation : public testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().disarm_all(); }
  void TearDown() override { FaultInjector::global().disarm_all(); }

  Forest forest_ = small_forest();
  Dataset queries_ = make_random_queries(250, 7, 5);
  std::vector<std::uint8_t> reference_ =
      forest_.classify_batch(queries_.features(), queries_.num_samples());
};

TEST_F(Degradation, PersistentGpuFaultFallsBackToCpu) {
  FaultInjector::global().arm("resource:gpu", -1);
  const Classifier clf(small_forest(), base_options(Backend::GpuSim, Variant::Hybrid));
  const RunReport r = clf.classify(queries_);
  EXPECT_EQ(r.predictions, reference_);
  EXPECT_FALSE(r.simulated);  // ended up on the CPU
  // Exact path: 2 failed hybrid attempts, downgrade, 2 failed independent
  // attempts, CPU fallback.
  ASSERT_EQ(r.degradations.size(), 6u);
  EXPECT_TRUE(r.degradations[0].starts_with("gpu-sim/hybrid attempt 1 failed:"));
  EXPECT_TRUE(r.degradations[1].starts_with("gpu-sim/hybrid attempt 2 failed:"));
  EXPECT_EQ(r.degradations[2], "degrade: variant hybrid -> independent");
  EXPECT_TRUE(r.degradations[3].starts_with("gpu-sim/independent attempt 1 failed:"));
  EXPECT_TRUE(r.degradations[4].starts_with("gpu-sim/independent attempt 2 failed:"));
  EXPECT_EQ(r.degradations[5], "degrade: backend gpu-sim -> cpu-native (independent)");
}

TEST_F(Degradation, TransientGpuFaultRecoversViaRetry) {
  FaultInjector::global().arm("resource:gpu", 1);  // fails once, then clean
  const Classifier clf(small_forest(), base_options(Backend::GpuSim, Variant::Hybrid));
  const RunReport r = clf.classify(queries_);
  EXPECT_EQ(r.predictions, reference_);
  EXPECT_TRUE(r.simulated);
  ASSERT_TRUE(r.gpu_counters.has_value());  // stayed on the GPU
  ASSERT_EQ(r.degradations.size(), 1u);
  EXPECT_TRUE(r.degradations[0].starts_with("gpu-sim/hybrid attempt 1 failed:"));
}

TEST_F(Degradation, SmemFaultDowngradesVariantButStaysOnGpu) {
  // Only the hybrid kernel consults resource:gpu-smem, so the independent
  // downgrade succeeds on the same backend.
  FaultInjector::global().arm("resource:gpu-smem", -1);
  const Classifier clf(small_forest(), base_options(Backend::GpuSim, Variant::Hybrid));
  const RunReport r = clf.classify(queries_);
  EXPECT_EQ(r.predictions, reference_);
  EXPECT_TRUE(r.simulated);
  EXPECT_TRUE(r.gpu_counters.has_value());
  ASSERT_EQ(r.degradations.size(), 3u);
  EXPECT_EQ(r.degradations[2], "degrade: variant hybrid -> independent");
}

TEST_F(Degradation, PersistentFpgaFaultFallsBackToCpu) {
  FaultInjector::global().arm("resource:fpga", -1);
  const Classifier clf(small_forest(), base_options(Backend::FpgaSim, Variant::Hybrid));
  const RunReport r = clf.classify(queries_);
  EXPECT_EQ(r.predictions, reference_);
  EXPECT_FALSE(r.simulated);
  ASSERT_EQ(r.degradations.size(), 6u);
  EXPECT_EQ(r.degradations[5], "degrade: backend fpga-sim -> cpu-native (independent)");
}

TEST_F(Degradation, FpgaBramFaultDowngradesVariantButStaysOnFpga) {
  // Only the collaborative/hybrid FPGA kernels reserve BRAM buffers.
  FaultInjector::global().arm("resource:fpga-bram", -1);
  const Classifier clf(small_forest(), base_options(Backend::FpgaSim, Variant::Collaborative));
  const RunReport r = clf.classify(queries_);
  EXPECT_EQ(r.predictions, reference_);
  EXPECT_TRUE(r.simulated);
  EXPECT_TRUE(r.fpga_report.has_value());
  ASSERT_EQ(r.degradations.size(), 3u);
  EXPECT_EQ(r.degradations[2], "degrade: variant collaborative -> independent");
}

TEST_F(Degradation, FilBaselineDegradesThroughCsrToCpu) {
  FaultInjector::global().arm("resource:gpu", -1);
  const Classifier clf(small_forest(), base_options(Backend::GpuSim, Variant::FilBaseline));
  const RunReport r = clf.classify(queries_);
  EXPECT_EQ(r.predictions, reference_);
  EXPECT_FALSE(r.simulated);
  ASSERT_EQ(r.degradations.size(), 6u);
  EXPECT_EQ(r.degradations[2], "degrade: variant fil-baseline -> csr");
  EXPECT_EQ(r.degradations[5], "degrade: backend gpu-sim -> cpu-native (csr)");
}

TEST_F(Degradation, OversizedRootSubtreeShrinksToFit) {
  // No injected fault: RSD 14 genuinely exceeds the 48 KB of shared
  // memory ((2^14 - 1) * 8 B), so the chain's shrink step kicks in.
  ClassifierOptions opt = base_options(Backend::GpuSim, Variant::Hybrid);
  opt.layout.root_subtree_depth = 14;
  const Classifier clf(small_forest(), opt);
  const RunReport r = clf.classify(queries_);
  EXPECT_EQ(r.predictions, reference_);
  EXPECT_TRUE(r.simulated);
  EXPECT_TRUE(r.gpu_counters.has_value());
  ASSERT_EQ(r.degradations.size(), 3u);
  EXPECT_EQ(r.degradations[2], "degrade: shrink rsd 14 -> 12");
}

TEST_F(Degradation, DisabledPolicyPropagatesResourceError) {
  FaultInjector::global().arm("resource:gpu", -1);
  ClassifierOptions opt = base_options(Backend::GpuSim, Variant::Hybrid);
  opt.fallback.enabled = false;
  const Classifier clf(small_forest(), opt);
  EXPECT_THROW(clf.classify(queries_), ResourceError);
}

TEST_F(Degradation, ExhaustedChainThrowsResourceError) {
  FaultInjector::global().arm("resource:gpu", -1);
  ClassifierOptions opt = base_options(Backend::GpuSim, Variant::Hybrid);
  opt.fallback.allow_cpu_fallback = false;  // chain dead-ends on the GPU
  const Classifier clf(small_forest(), opt);
  EXPECT_THROW(clf.classify(queries_), ResourceError);
}

TEST_F(Degradation, CleanRunsReportNoDegradations) {
  const Classifier clf(small_forest(), base_options(Backend::GpuSim, Variant::Hybrid));
  const RunReport r = clf.classify(queries_);
  EXPECT_EQ(r.predictions, reference_);
  EXPECT_FALSE(r.degraded());
}

}  // namespace
}  // namespace hrf
