#include "core/classifier.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"

namespace hrf {
namespace {

Forest small_forest() {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 9;
  spec.num_features = 7;
  spec.seed = 33;
  return make_random_forest(spec);
}

gpusim::DeviceConfig small_gpu() {
  auto cfg = gpusim::DeviceConfig::titan_xp();
  cfg.num_sms = 4;
  return cfg;
}

class BackendVariantMatrix
    : public testing::TestWithParam<std::tuple<Backend, Variant>> {};

TEST_P(BackendVariantMatrix, ValidCombosMatchReferencePredictions) {
  const auto [backend, variant] = GetParam();
  const Forest f = small_forest();
  const Dataset q = make_random_queries(300, 7, 5);
  const auto reference = f.classify_batch(q.features(), q.num_samples());

  ClassifierOptions opt;
  opt.backend = backend;
  opt.variant = variant;
  opt.layout.subtree_depth = 4;
  opt.gpu = small_gpu();
  const Classifier clf(small_forest(), opt);
  const RunReport r = clf.classify(q);
  ASSERT_EQ(r.predictions.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) ASSERT_EQ(r.predictions[i], reference[i]);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(r.simulated, backend != Backend::CpuNative);
  EXPECT_EQ(r.gpu_counters.has_value(), backend == Backend::GpuSim);
  EXPECT_EQ(r.fpga_report.has_value(), backend == Backend::FpgaSim);
}

INSTANTIATE_TEST_SUITE_P(
    ValidCombos, BackendVariantMatrix,
    testing::Values(std::tuple{Backend::CpuNative, Variant::Csr},
                    std::tuple{Backend::CpuNative, Variant::Independent},
                    std::tuple{Backend::GpuSim, Variant::Csr},
                    std::tuple{Backend::GpuSim, Variant::Independent},
                    std::tuple{Backend::GpuSim, Variant::Collaborative},
                    std::tuple{Backend::GpuSim, Variant::Hybrid},
                    std::tuple{Backend::GpuSim, Variant::FilBaseline},
                    std::tuple{Backend::FpgaSim, Variant::Csr},
                    std::tuple{Backend::FpgaSim, Variant::Independent},
                    std::tuple{Backend::FpgaSim, Variant::Collaborative},
                    std::tuple{Backend::FpgaSim, Variant::Hybrid}),
    [](const auto& info) {
      std::string n = std::string(to_string(std::get<0>(info.param))) + "_" +
                      to_string(std::get<1>(info.param));
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Classifier, RejectsFilOnFpga) {
  ClassifierOptions opt;
  opt.backend = Backend::FpgaSim;
  opt.variant = Variant::FilBaseline;
  EXPECT_THROW(Classifier(small_forest(), opt), ConfigError);
}

TEST(Classifier, RejectsHybridOnCpu) {
  ClassifierOptions opt;
  opt.backend = Backend::CpuNative;
  opt.variant = Variant::Hybrid;
  EXPECT_THROW(Classifier(small_forest(), opt), ConfigError);
  opt.variant = Variant::Collaborative;
  EXPECT_THROW(Classifier(small_forest(), opt), ConfigError);
}

TEST(Classifier, LayoutAccessorsMatchVariant) {
  ClassifierOptions opt;
  opt.variant = Variant::Hybrid;
  opt.layout.subtree_depth = 5;
  const Classifier clf(small_forest(), opt);
  EXPECT_EQ(clf.hierarchical().config().subtree_depth, 5);
  EXPECT_THROW(clf.csr(), ConfigError);

  ClassifierOptions csr_opt;
  csr_opt.variant = Variant::Csr;
  const Classifier csr_clf(small_forest(), csr_opt);
  EXPECT_GT(csr_clf.csr().num_nodes(), 0u);
  EXPECT_THROW(csr_clf.hierarchical(), ConfigError);
}

TEST(Classifier, TrainFactoryProducesWorkingClassifier) {
  SyntheticSpec spec;
  spec.num_samples = 3000;
  spec.num_features = 6;
  spec.num_relevant = 5;
  spec.teacher_depth = 6;
  spec.mass_floor = 0.05;
  spec.label_noise = 0.05;
  const Dataset ds = make_synthetic(spec);
  const auto [train, test] = ds.split();
  TrainConfig tc;
  tc.num_trees = 20;
  tc.max_depth = 8;
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.variant = Variant::Hybrid;
  opt.layout.subtree_depth = 4;
  opt.gpu = small_gpu();
  const Classifier clf = Classifier::train(train, tc, opt);
  const RunReport r = clf.classify(test);
  EXPECT_GT(r.accuracy(test.labels()), 0.7);
}

TEST(Classifier, LoadFactoryRoundTrips) {
  const std::string path = testing::TempDir() + "/hrf_clf_load.hrff";
  small_forest().save(path);
  ClassifierOptions opt;
  opt.variant = Variant::Independent;
  opt.backend = Backend::CpuNative;
  const Classifier clf = Classifier::load(path, opt);
  EXPECT_EQ(clf.forest().tree_count(), 6u);
  std::remove(path.c_str());
}

TEST(RunReport, AccuracyValidatesShape) {
  RunReport r;
  r.predictions = {0, 1, 1};
  const std::vector<std::uint8_t> labels{0, 1, 0};
  EXPECT_NEAR(r.accuracy(labels), 2.0 / 3.0, 1e-12);
  const std::vector<std::uint8_t> wrong(2);
  EXPECT_THROW(r.accuracy(wrong), ConfigError);
}

TEST(Classifier, StreamMatchesBatchPredictions) {
  const Forest f = small_forest();
  const Dataset q = make_random_queries(777, 7, 6);
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.variant = Variant::Independent;
  opt.layout.subtree_depth = 4;
  opt.gpu = small_gpu();
  const Classifier clf(small_forest(), opt);
  const RunReport batch = clf.classify(q);
  const auto stream = clf.classify_stream(q, 100);
  EXPECT_EQ(stream.predictions, batch.predictions);
  EXPECT_EQ(stream.chunks, 8u);  // ceil(777/100)
  EXPECT_GE(stream.total_seconds, stream.max_chunk_seconds);
  EXPECT_TRUE(stream.simulated);
}

TEST(Classifier, StreamValidatesChunkSize) {
  ClassifierOptions opt;
  opt.backend = Backend::CpuNative;
  opt.variant = Variant::Csr;
  const Classifier clf(small_forest(), opt);
  const Dataset q = make_random_queries(10, 7, 7);
  EXPECT_THROW(clf.classify_stream(q, 0), ConfigError);
}

TEST(Classifier, StreamSingleChunkEqualsBatch) {
  const Forest f = small_forest();
  const Dataset q = make_random_queries(50, 7, 8);
  ClassifierOptions opt;
  opt.backend = Backend::CpuNative;
  opt.variant = Variant::Independent;
  opt.layout.subtree_depth = 4;
  const Classifier clf(small_forest(), opt);
  const auto stream = clf.classify_stream(q, 1000);
  EXPECT_EQ(stream.chunks, 1u);
  EXPECT_EQ(stream.predictions, clf.classify(q).predictions);
}

TEST(Classifier, RejectsFeatureCountMismatch) {
  ClassifierOptions opt;
  opt.backend = Backend::CpuNative;
  opt.variant = Variant::Independent;
  opt.layout.subtree_depth = 4;
  const Classifier clf(small_forest(), opt);  // model expects 7 features
  const Dataset narrow = make_random_queries(10, 5, 9);
  const Dataset wide = make_random_queries(10, 11, 9);
  EXPECT_THROW(clf.classify(narrow), ConfigError);
  EXPECT_THROW(clf.classify(wide), ConfigError);
  try {
    clf.classify(narrow);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("expects"), std::string::npos);
  }
}

TEST(Classifier, RejectsNonFiniteQueryFeatures) {
  ClassifierOptions opt;
  opt.backend = Backend::CpuNative;
  opt.variant = Variant::Csr;
  const Classifier clf(small_forest(), opt);
  Dataset nan_q = make_random_queries(10, 7, 9);
  nan_q.sample(3)[2] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(clf.classify(nan_q), ConfigError);
  Dataset inf_q = make_random_queries(10, 7, 9);
  inf_q.sample(0)[6] = std::numeric_limits<float>::infinity();
  EXPECT_THROW(clf.classify(inf_q), ConfigError);
  Dataset ninf_q = make_random_queries(10, 7, 9);
  ninf_q.sample(9)[0] = -std::numeric_limits<float>::infinity();
  EXPECT_THROW(clf.classify(ninf_q), ConfigError);
  // The error message pinpoints the offending query and feature.
  try {
    clf.classify(nan_q);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("query 3 feature 2"), std::string::npos);
  }
}

TEST(Classifier, PrecompiledLayoutsMatchBuiltOnes) {
  const Forest f = small_forest();
  const Dataset q = make_random_queries(120, 7, 10);
  const auto reference = f.classify_batch(q.features(), q.num_samples());

  ClassifierOptions hier_opt;
  hier_opt.backend = Backend::CpuNative;
  hier_opt.variant = Variant::Independent;
  hier_opt.layout.subtree_depth = 5;
  const HierarchicalForest h = HierarchicalForest::build(f, HierConfig{.subtree_depth = 5});
  const Classifier hier_clf(small_forest(), h, hier_opt);
  EXPECT_EQ(hier_clf.classify(q).predictions, reference);
  EXPECT_EQ(hier_clf.options().layout.subtree_depth, 5);

  ClassifierOptions csr_opt;
  csr_opt.backend = Backend::CpuNative;
  csr_opt.variant = Variant::Csr;
  const Classifier csr_clf(small_forest(), CsrForest::build(f), csr_opt);
  EXPECT_EQ(csr_clf.classify(q).predictions, reference);
}

TEST(Classifier, PrecompiledLayoutShapeMismatchIsRejected) {
  RandomForestSpec other;
  other.num_trees = 3;
  other.max_depth = 5;
  other.num_features = 12;  // != small_forest()'s 7
  other.seed = 90;
  const Forest wrong = make_random_forest(other);

  ClassifierOptions opt;
  opt.backend = Backend::CpuNative;
  opt.variant = Variant::Independent;
  EXPECT_THROW(
      Classifier(small_forest(), HierarchicalForest::build(wrong, HierConfig{.subtree_depth = 4}),
                 opt),
      ConfigError);
  opt.variant = Variant::Csr;
  EXPECT_THROW(Classifier(small_forest(), CsrForest::build(wrong), opt), ConfigError);
  // Variant must match the layout kind.
  opt.variant = Variant::Csr;
  EXPECT_THROW(
      Classifier(small_forest(),
                 HierarchicalForest::build(small_forest(), HierConfig{.subtree_depth = 4}), opt),
      ConfigError);
  opt.variant = Variant::Independent;
  EXPECT_THROW(Classifier(small_forest(), CsrForest::build(small_forest()), opt), ConfigError);
}

TEST(EnumNames, AreStable) {
  EXPECT_STREQ(to_string(Backend::CpuNative), "cpu-native");
  EXPECT_STREQ(to_string(Backend::GpuSim), "gpu-sim");
  EXPECT_STREQ(to_string(Backend::FpgaSim), "fpga-sim");
  EXPECT_STREQ(to_string(Variant::Csr), "csr");
  EXPECT_STREQ(to_string(Variant::Hybrid), "hybrid");
  EXPECT_STREQ(to_string(Variant::FilBaseline), "fil-baseline");
}

}  // namespace
}  // namespace hrf
