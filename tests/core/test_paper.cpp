#include "core/paper.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>

#include "util/error.hpp"

namespace hrf::paper {
namespace {

TEST(Paper, NamesAreStable) {
  EXPECT_STREQ(name(DatasetKind::Covertype), "covertype");
  EXPECT_STREQ(name(DatasetKind::Susy), "susy");
  EXPECT_STREQ(name(DatasetKind::Higgs), "higgs");
}

TEST(Paper, SampleCountsMatchTable1) {
  EXPECT_EQ(paper_samples(DatasetKind::Covertype), 581'012u);
  EXPECT_EQ(paper_samples(DatasetKind::Susy), 3'000'000u);
  EXPECT_EQ(paper_samples(DatasetKind::Higgs), 2'750'000u);
}

TEST(Paper, DefaultSamplesScaleWithFloor) {
  EXPECT_EQ(default_samples(DatasetKind::Susy, 0.1), 300'000u);
  EXPECT_EQ(default_samples(DatasetKind::Covertype, 1.0), 581'012u);
  EXPECT_EQ(default_samples(DatasetKind::Covertype, 0.00001), 20'000u);  // floor
  EXPECT_THROW(default_samples(DatasetKind::Susy, 0.0), ConfigError);
  EXPECT_THROW(default_samples(DatasetKind::Susy, 1.5), ConfigError);
}

TEST(Paper, SpecsCarryTable1Dimensions) {
  EXPECT_EQ(spec(DatasetKind::Covertype, 1000).num_features, 54);
  EXPECT_EQ(spec(DatasetKind::Susy, 1000).num_features, 18);
  EXPECT_EQ(spec(DatasetKind::Higgs, 1000).num_features, 28);
  EXPECT_EQ(spec(DatasetKind::Susy, 1234).num_samples, 1234u);
}

TEST(Paper, SelectedDepthsMatchSection41) {
  EXPECT_EQ(selected_depths(DatasetKind::Covertype), (std::vector<int>{30, 35, 40}));
  EXPECT_EQ(selected_depths(DatasetKind::Susy), (std::vector<int>{15, 20, 25}));
  EXPECT_EQ(selected_depths(DatasetKind::Higgs), (std::vector<int>{25, 30, 35}));
}

TEST(Paper, TrainConfigUsesAllFeaturesForCovertypeAccuracy) {
  const TrainConfig acc = train_config(DatasetKind::Covertype, 30, 100, ForestUse::Accuracy);
  EXPECT_EQ(acc.features_per_split, 54);
  const TrainConfig tim = train_config(DatasetKind::Covertype, 30, 100, ForestUse::Timing);
  EXPECT_EQ(tim.features_per_split, 0);  // sqrt default
  EXPECT_EQ(tim.max_depth, 30);
  EXPECT_EQ(tim.num_trees, 100);
}

TEST(Paper, DatasetHalvesSplitOneToOne) {
  const std::string dir = testing::TempDir();
  const Dataset test = test_half(DatasetKind::Susy, 20'000, dir);
  const Dataset train = train_half(DatasetKind::Susy, 20'000, dir);
  EXPECT_EQ(test.num_samples(), 10'000u);
  EXPECT_EQ(train.num_samples(), 10'000u);
  EXPECT_EQ(test.num_features(), 18u);
  std::remove((dir + "/susy_20000.hrfd").c_str());
}

TEST(Paper, CachedForestIsReusedFromDisk) {
  const std::string dir = testing::TempDir();
  const std::string forest_path = dir + "/susy_d6_t3_n20000.hrff";
  std::remove(forest_path.c_str());

  const Forest first = cached_forest(DatasetKind::Susy, 6, 3, 20'000, dir);
  struct stat st{};
  ASSERT_EQ(::stat(forest_path.c_str(), &st), 0) << "forest was not cached";

  const Forest second = cached_forest(DatasetKind::Susy, 6, 3, 20'000, dir);
  ASSERT_EQ(first.tree_count(), second.tree_count());
  for (std::size_t t = 0; t < first.tree_count(); ++t) {
    ASSERT_EQ(first.tree(t).node_count(), second.tree(t).node_count());
  }
  std::remove(forest_path.c_str());
  std::remove((dir + "/susy_20000.hrfd").c_str());
}

TEST(Paper, AllDatasetsIterable) {
  int count = 0;
  for (DatasetKind kind : kAllDatasets) {
    EXPECT_NE(name(kind), nullptr);
    ++count;
  }
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace hrf::paper
