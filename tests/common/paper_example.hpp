#pragma once

// The example decision tree from the paper's Fig. 2a, used by several test
// suites. Node numbering follows the figure:
//
//        0: f[1] < 2.5
//       /            \
//   1: leaf A     2: f[4] < 0.5
//                 /            \
//          3: f[8] < 5.4    4: f[20] < 8.8
//            /      \          /      \
//       7: leaf A  8: leaf B  5: leaf B  6: leaf A
//
// (Class A = 0.0f, class B = 1.0f; the paper's Fig. 2c value row.)

#include <vector>

#include "forest/decision_tree.hpp"
#include "forest/forest.hpp"

namespace hrf::testutil {

inline DecisionTree fig2_tree() {
  std::vector<TreeNode> nodes(9);
  nodes[0] = {1, 2.5f, 1, 2};
  nodes[1] = {kLeafFeature, 0.0f, -1, -1};
  nodes[2] = {4, 0.5f, 3, 4};
  nodes[3] = {8, 5.4f, 7, 8};
  nodes[4] = {20, 8.8f, 5, 6};
  nodes[5] = {kLeafFeature, 1.0f, -1, -1};
  nodes[6] = {kLeafFeature, 0.0f, -1, -1};
  nodes[7] = {kLeafFeature, 0.0f, -1, -1};
  nodes[8] = {kLeafFeature, 1.0f, -1, -1};
  return DecisionTree(std::move(nodes));
}

inline constexpr std::size_t kFig2Features = 21;  // uses features 1, 4, 8, 20

inline Forest fig2_forest() {
  std::vector<DecisionTree> trees;
  trees.push_back(fig2_tree());
  return Forest(std::move(trees), kFig2Features);
}

/// A query whose feature 1 is 1.25, reproducing §2.1's walk-through
/// (traversal goes left at the root and classifies as class A).
inline std::vector<float> fig2_query_class_a() {
  std::vector<float> q(kFig2Features, 0.0f);
  q[1] = 1.25f;
  return q;
}

/// Query driving the traversal 0 -> 2 -> 4 -> 5 (class B): f1 >= 2.5,
/// f4 >= 0.5, f20 < 8.8.
inline std::vector<float> fig2_query_class_b() {
  std::vector<float> q(kFig2Features, 0.0f);
  q[1] = 3.0f;
  q[4] = 0.9f;
  q[20] = 1.0f;
  return q;
}

}  // namespace hrf::testutil
