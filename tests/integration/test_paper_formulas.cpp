// §3.2 gives closed-form memory-access estimates for the code variants:
//   independent ~ q*t*d irregular accesses (worst case),
//   hybrid      ~ q*t*2^s coalesced (stage 1) + q*t*(d-s) irregular (stage 2),
//   collaborative ~ q*t*2^(s*(floor(d/s)+2)) in the worst case.
// These tests check our measured counts against those formulas on
// complete trees of depth d (where the worst case is exact for path
// lengths), pinning the reproduction to the paper's own analysis.

#include <gtest/gtest.h>

#include "core/hrf.hpp"
#include "fpgakernels/fpga_kernels.hpp"
#include "fpgakernels/traversal_counts.hpp"
#include "gpukernels/kernels.hpp"
#include "util/math.hpp"

namespace hrf {
namespace {

struct Workload {
  std::size_t q = 600;
  int t = 6;
  int d = 12;
  int s = 4;
  Forest forest;
  HierarchicalForest hier;
  Dataset queries;

  Workload()
      : forest(make_random_forest({.num_trees = t,
                                   .max_depth = d,
                                   .branch_prob = 1.0,  // complete: worst case is exact
                                   .num_features = 10,
                                   .seed = 77})),
        hier(HierarchicalForest::build(forest, HierConfig{.subtree_depth = s})),
        queries(make_random_queries(q, 10, 78)) {}
};

TEST(PaperFormulas, IndependentVisitsEqualQtd) {
  const Workload w;
  const auto counts = fpgakernels::count_traversal(w.hier, w.queries);
  // Every (query, tree) pair walks exactly d nodes on a complete tree.
  EXPECT_EQ(counts.node_visits, w.q * w.t * static_cast<std::size_t>(w.d));
}

TEST(PaperFormulas, HybridStageSplitMatchesQtsAndQtdMinusS) {
  const Workload w;
  HierConfig cfg;
  cfg.subtree_depth = w.s;
  cfg.root_subtree_depth = w.s;  // RSD = SD = s, the formula's setting
  const auto hier = HierarchicalForest::build(w.forest, cfg);
  const auto counts = fpgakernels::count_traversal(hier, w.queries);
  // Stage 1 = q*t*s node visits; stage 2 = q*t*(d-s).
  EXPECT_EQ(counts.root_subtree_visits, w.q * w.t * static_cast<std::size_t>(w.s));
  EXPECT_EQ(counts.node_visits - counts.root_subtree_visits,
            w.q * w.t * static_cast<std::size_t>(w.d - w.s));
}

TEST(PaperFormulas, SubtreeHopsAreVisitsOverS) {
  const Workload w;
  const auto counts = fpgakernels::count_traversal(w.hier, w.queries);
  // With d = 12 and s = 4 every traversal crosses exactly d/s - 1 = 2
  // subtree boundaries.
  EXPECT_EQ(counts.subtree_hops, w.q * w.t * static_cast<std::size_t>(w.d / w.s - 1));
}

TEST(PaperFormulas, IndependentGpuLaneAccessesBoundedByQtdTimesConstant) {
  const Workload w;
  gpusim::Device dev(gpusim::DeviceConfig::titan_xp());
  const auto r = gpukernels::run_independent(dev, w.hier, w.queries);
  // Per step the kernel issues <= 3 lane accesses (node, query feature,
  // hop/metadata amortized); total warp requests x warp size bounds lane
  // accesses, which must stay within a small constant of q*t*d.
  const double qtd = static_cast<double>(w.q) * w.t * w.d;
  const double lane_accesses = static_cast<double>(r.counters.gld_requests) * 32.0;
  EXPECT_LT(lane_accesses, 4.0 * qtd);
  EXPECT_GT(lane_accesses, 1.0 * qtd);  // and not trivially small
}

TEST(PaperFormulas, HybridSharedMemoryServesStageOne) {
  const Workload w;
  HierConfig cfg;
  cfg.subtree_depth = w.s;
  cfg.root_subtree_depth = w.s;
  const auto hier = HierarchicalForest::build(w.forest, cfg);
  gpusim::Device dev(gpusim::DeviceConfig::titan_xp());
  const auto r = gpukernels::run_hybrid(dev, hier, w.queries);
  // Stage 1 reads one shared-memory word per (warp, step): q/32 * t * s,
  // plus the cooperative stores blocks * t * ceil(2^s-1 / 32).
  const std::uint64_t stage1_warp_steps = (w.q / 32 + 1) * w.t * w.s;
  EXPECT_GE(r.counters.smem_loads, stage1_warp_steps / 2);
  EXPECT_GT(r.counters.smem_stores, 0u);
}

TEST(PaperFormulas, CollaborativeSweepIsQTimesSubtreeCount) {
  // The collaborative variant pipelines every query through every subtree
  // (FPGA model): iterations = q * total subtrees, which for complete
  // trees is q * t * (2^s*(2^(d-s)) - 1) / (2^s - 1)-ish; we check the
  // exact subtree count from the layout.
  const Workload w;
  const auto result = fpgakernels::run_collaborative_fpga(w.hier, w.queries);
  // Reconstruct the modeled iteration count from the report's pipeline
  // cycles: stage 2 dominates with II 3. pipeline ~ depth*2 + 1*load_iters
  // + 3*q*S; just assert the subtree count itself matches the complete
  // trees' structure: per tree, subtrees = sum over levels k*s of 2^(k*s).
  std::size_t expected_subtrees_per_tree = 0;
  for (int level = 0; level < w.d; level += w.s) {
    expected_subtrees_per_tree += static_cast<std::size_t>(pow2(level));
  }
  EXPECT_EQ(w.hier.num_subtrees(),
            expected_subtrees_per_tree * static_cast<std::size_t>(w.t));
  EXPECT_FALSE(result.predictions.empty());
}

}  // namespace
}  // namespace hrf
