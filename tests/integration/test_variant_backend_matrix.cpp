// Differential property test over the *public* Classifier API: for many
// randomized (forest, layout, queries) configurations, every valid
// {Csr, Independent, Collaborative, Hybrid} x {CpuNative, GpuSim, FpgaSim}
// combination must produce bit-identical predictions to the CSR-on-CPU
// oracle. This is the serving-level counterpart of the kernel-level
// differential fuzz (test_fuzz_differential.cpp): it additionally covers
// the Classifier's layout construction, validation, and dispatch plumbing,
// and pins the paper's functional-equivalence claim (§3.2) at the API the
// serving and bench layers actually call. Invalid combinations must be
// rejected deterministically at construction, never silently rerouted.

#include <gtest/gtest.h>

#include "core/hrf.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

constexpr Variant kVariants[] = {Variant::Csr, Variant::Independent, Variant::Collaborative,
                                 Variant::Hybrid};
constexpr Backend kBackends[] = {Backend::CpuNative, Backend::GpuSim, Backend::FpgaSim};

bool valid_combo(Variant v, Backend b) {
  // Collaborative/hybrid model on-chip memory, which the native CPU path
  // does not have (mirrors Classifier::check_variant_backend).
  if (v == Variant::Collaborative || v == Variant::Hybrid) return b != Backend::CpuNative;
  return true;
}

class VariantBackendMatrix : public testing::TestWithParam<std::uint64_t> {};

TEST_P(VariantBackendMatrix, AllValidCombosMatchCsrCpuOracle) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed * 31 + 7);

  RandomForestSpec spec;
  spec.num_trees = 1 + static_cast<int>(rng.bounded(8));
  spec.max_depth = 1 + static_cast<int>(rng.bounded(10));
  spec.branch_prob = rng.uniform(0.3, 1.0);
  spec.num_features = 1 + static_cast<int>(rng.bounded(20));
  spec.num_classes = 2 + static_cast<int>(rng.bounded(5));
  spec.seed = seed * 5 + 3;
  const Forest forest = make_random_forest(spec);

  HierConfig layout;
  layout.subtree_depth = 1 + static_cast<int>(rng.bounded(8));
  // Cap the root subtree so the hybrid variant fits simulated on-chip
  // memory on both devices — this test pins functional equivalence, not
  // resource-overrun handling (test_degradation covers that).
  layout.root_subtree_depth = rng.bernoulli(0.5) ? 0 : 1 + static_cast<int>(rng.bounded(10));

  const Dataset queries =
      make_random_queries(1 + rng.bounded(100), spec.num_features, seed * 13 + 11);

  ClassifierOptions oracle_opt;
  oracle_opt.variant = Variant::Csr;
  oracle_opt.backend = Backend::CpuNative;
  const Classifier oracle(forest, oracle_opt);
  const std::vector<std::uint8_t> reference = oracle.classify(queries).predictions;
  ASSERT_EQ(reference.size(), queries.num_samples());

  for (const Variant variant : kVariants) {
    for (const Backend backend : kBackends) {
      ClassifierOptions opt;
      opt.variant = variant;
      opt.backend = backend;
      opt.layout = layout;
      opt.gpu.num_sms = 2;  // small simulated device keeps the sweep fast
      const std::string combo =
          std::string(to_string(variant)) + "/" + to_string(backend) + " seed=" +
          std::to_string(seed);

      if (!valid_combo(variant, backend)) {
        EXPECT_THROW(Classifier(forest, opt), ConfigError) << combo;
        continue;
      }
      const Classifier clf(forest, opt);
      const RunReport report = clf.classify(queries);
      ASSERT_EQ(report.predictions, reference) << combo;
      EXPECT_EQ(report.simulated, backend != Backend::CpuNative) << combo;
    }
  }
}

// ~100 random configurations; each exercises the full 4x3 matrix (10
// valid combos + 2 rejected ones), so a traversal divergence anywhere in
// layout building or backend dispatch pinpoints its seed.
INSTANTIATE_TEST_SUITE_P(Seeds, VariantBackendMatrix,
                         testing::Range<std::uint64_t>(1, 101));

}  // namespace
}  // namespace hrf
