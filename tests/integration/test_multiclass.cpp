// Multi-class classification: an extension beyond the paper's binary
// setting (the real Covertype is 7-class; the paper binarized it). The
// vote rule — argmax with ties to the higher class id — reduces exactly
// to the paper's `tmp < N/2 ? A : B` at k = 2, which these tests pin down
// together with cross-backend equivalence at k > 2.

#include <gtest/gtest.h>

#include "core/hrf.hpp"

namespace hrf {
namespace {

gpusim::DeviceConfig small_gpu() {
  auto cfg = gpusim::DeviceConfig::titan_xp();
  cfg.num_sms = 4;
  return cfg;
}

TEST(VoteWinner, BinaryMatchesPaperRule) {
  // tmp < N/2 ? A : B with N = votes[0]+votes[1], tmp = votes[1].
  const std::uint32_t a_wins[2] = {3, 1};
  const std::uint32_t b_wins[2] = {1, 3};
  const std::uint32_t tie[2] = {2, 2};
  EXPECT_EQ(Forest::vote_winner(a_wins), 0);
  EXPECT_EQ(Forest::vote_winner(b_wins), 1);
  EXPECT_EQ(Forest::vote_winner(tie), 1);  // tmp == N/2 -> class B
}

TEST(VoteWinner, MulticlassArgmaxTiesToHigherId) {
  const std::uint32_t clear[4] = {1, 5, 2, 1};
  EXPECT_EQ(Forest::vote_winner(clear), 1);
  const std::uint32_t tie[4] = {3, 0, 3, 1};
  EXPECT_EQ(Forest::vote_winner(tie), 2);
  const std::uint32_t all_tie[3] = {2, 2, 2};
  EXPECT_EQ(Forest::vote_winner(all_tie), 2);
}

TEST(Multiclass, DatasetValidatesLabelRange) {
  Dataset ds(2, 3, 4);
  const float row[3] = {0.f, 0.f, 0.f};
  EXPECT_NO_THROW(ds.push_back(row, 3));
  EXPECT_THROW(ds.push_back(row, 4), ConfigError);
  EXPECT_THROW(Dataset(1, 1, 1), ConfigError);
  EXPECT_THROW(Dataset(1, 1, 300), ConfigError);
}

TEST(Multiclass, ClassHistogramCounts) {
  Dataset ds(4, 1, 3);
  const float row[1] = {0.f};
  ds.push_back(row, 0);
  ds.push_back(row, 2);
  ds.push_back(row, 2);
  ds.push_back(row, 1);
  EXPECT_EQ(ds.class_histogram(), (std::vector<std::size_t>{1, 1, 2}));
}

TEST(Multiclass, TrainerLearnsFourClassProblem) {
  // Labels = quadrant of (x0, x1): perfectly separable with depth >= 3.
  Dataset ds(4000, 3, 4);
  Xoshiro256 rng(9);
  std::vector<float> row(3);
  for (int i = 0; i < 4000; ++i) {
    for (auto& v : row) v = rng.uniform_float();
    const std::uint8_t label =
        static_cast<std::uint8_t>((row[0] >= 0.5f ? 2 : 0) + (row[1] >= 0.5f ? 1 : 0));
    ds.push_back(row, label);
  }
  TrainConfig cfg;
  cfg.num_trees = 10;
  cfg.max_depth = 5;
  cfg.features_per_split = 3;
  const Forest f = train_forest(ds, cfg);
  EXPECT_EQ(f.num_classes(), 4);
  f.validate();
  EXPECT_GT(f.accuracy(ds.features(), ds.labels()), 0.97);
}

TEST(Multiclass, SyntheticGeneratorCoversAllClasses) {
  SyntheticSpec spec;
  spec.num_samples = 5000;
  spec.num_features = 8;
  spec.num_relevant = 6;
  spec.teacher_depth = 9;
  spec.mass_floor = 0.005;
  spec.num_classes = 5;
  spec.label_noise = 0.1;
  const Dataset ds = make_synthetic(spec);
  EXPECT_EQ(ds.num_classes(), 5);
  const auto hist = ds.class_histogram();
  for (std::size_t c = 0; c < 5; ++c) EXPECT_GT(hist[c], 0u) << "class " << c;
}

TEST(Multiclass, ForestSerializationRoundTripsClassCount) {
  RandomForestSpec spec;
  spec.num_trees = 4;
  spec.max_depth = 6;
  spec.num_classes = 7;
  const Forest f = make_random_forest(spec);
  const std::string path = testing::TempDir() + "/hrf_mc_forest.hrff";
  f.save(path);
  const Forest loaded = Forest::load(path);
  EXPECT_EQ(loaded.num_classes(), 7);
  std::remove(path.c_str());
}

TEST(Multiclass, ValidateRejectsLeafBeyondClassCount) {
  std::vector<DecisionTree> trees;
  trees.push_back(DecisionTree({TreeNode{kLeafFeature, 5.0f, -1, -1}}));
  const Forest f(std::move(trees), 2, 4);  // class 5 >= 4
  EXPECT_THROW(f.validate(), FormatError);
}

TEST(Multiclass, EveryBackendAgreesOnSevenClasses) {
  RandomForestSpec spec;
  spec.num_trees = 15;
  spec.max_depth = 10;
  spec.branch_prob = 0.7;
  spec.num_features = 10;
  spec.num_classes = 7;  // the original Covertype class count
  spec.seed = 55;
  const Forest forest = make_random_forest(spec);
  Dataset queries = make_random_queries(600, 10, 56);
  const auto reference = forest.classify_batch(queries.features(), queries.num_samples());
  // Sanity: more than two classes actually appear in the predictions.
  std::set<int> distinct(reference.begin(), reference.end());
  EXPECT_GT(distinct.size(), 2u);

  const std::pair<Backend, Variant> combos[] = {
      {Backend::CpuNative, Variant::Csr},      {Backend::CpuNative, Variant::Independent},
      {Backend::GpuSim, Variant::Csr},         {Backend::GpuSim, Variant::Independent},
      {Backend::GpuSim, Variant::Collaborative}, {Backend::GpuSim, Variant::Hybrid},
      {Backend::GpuSim, Variant::FilBaseline}, {Backend::FpgaSim, Variant::Csr},
      {Backend::FpgaSim, Variant::Independent}, {Backend::FpgaSim, Variant::Collaborative},
      {Backend::FpgaSim, Variant::Hybrid},
  };
  for (const auto& [backend, variant] : combos) {
    ClassifierOptions opt;
    opt.backend = backend;
    opt.variant = variant;
    opt.layout.subtree_depth = 4;
    opt.gpu = small_gpu();
    const Classifier clf(Forest(forest), opt);
    const RunReport r = clf.classify(queries);
    ASSERT_EQ(r.predictions, reference)
        << to_string(backend) << "/" << to_string(variant);
  }
}

TEST(Multiclass, LayoutsPreserveClassCount) {
  RandomForestSpec spec;
  spec.num_trees = 3;
  spec.max_depth = 5;
  spec.num_classes = 6;
  const Forest f = make_random_forest(spec);
  EXPECT_EQ(CsrForest::build(f).num_classes(), 6);
  EXPECT_EQ(HierarchicalForest::build(f, HierConfig{.subtree_depth = 3}).num_classes(), 6);
}

}  // namespace
}  // namespace hrf
