// End-to-end integration: generate a paper-like dataset, train a forest,
// build both layouts, classify on every backend and verify that (a) all
// backends agree bit-for-bit, (b) accuracy lands in the expected band,
// and (c) the paper's headline performance orderings hold on the
// simulated devices.

#include <gtest/gtest.h>

#include "core/hrf.hpp"

namespace hrf {
namespace {

class EndToEnd : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec sp = susy_like_spec(24'000);
    data_ = new Dataset(make_synthetic(sp));
    auto [train, test] = data_->split();
    train_ = new Dataset(std::move(train));
    test_ = new Dataset(std::move(test));
    TrainConfig tc;
    tc.num_trees = 30;
    tc.max_depth = 14;
    forest_ = new Forest(train_forest(*train_, tc));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete train_;
    delete test_;
    delete forest_;
    data_ = train_ = test_ = nullptr;
    forest_ = nullptr;
  }

  static gpusim::DeviceConfig small_gpu() {
    auto cfg = gpusim::DeviceConfig::titan_xp();
    cfg.num_sms = 4;
    return cfg;
  }

  static Dataset* data_;
  static Dataset* train_;
  static Dataset* test_;
  static Forest* forest_;
};

Dataset* EndToEnd::data_ = nullptr;
Dataset* EndToEnd::train_ = nullptr;
Dataset* EndToEnd::test_ = nullptr;
Forest* EndToEnd::forest_ = nullptr;

TEST_F(EndToEnd, TrainedForestIsValidAndDeep) {
  forest_->validate();
  const ForestStats s = forest_->stats();
  EXPECT_EQ(s.tree_count, 30u);
  EXPECT_EQ(s.max_depth, 14);  // noise keeps trees growing to the cap
}

TEST_F(EndToEnd, AccuracyInExpectedBand) {
  // susy-like ceiling is 1 - 0.18; at depth 14 with 30 trees the model
  // should be within a few points of it (and far above chance).
  const double acc = forest_->accuracy(test_->features(), test_->labels());
  EXPECT_GT(acc, 0.72);
  EXPECT_LT(acc, 0.85);
}

TEST_F(EndToEnd, EveryBackendVariantComboAgrees) {
  const auto reference = forest_->classify_batch(test_->features(), test_->num_samples());

  const std::pair<Backend, Variant> combos[] = {
      {Backend::CpuNative, Variant::Csr},      {Backend::CpuNative, Variant::Independent},
      {Backend::GpuSim, Variant::Csr},         {Backend::GpuSim, Variant::Independent},
      {Backend::GpuSim, Variant::Hybrid},      {Backend::GpuSim, Variant::FilBaseline},
      {Backend::FpgaSim, Variant::Csr},        {Backend::FpgaSim, Variant::Independent},
      {Backend::FpgaSim, Variant::Collaborative}, {Backend::FpgaSim, Variant::Hybrid},
  };
  for (const auto& [backend, variant] : combos) {
    ClassifierOptions opt;
    opt.backend = backend;
    opt.variant = variant;
    opt.layout.subtree_depth = 6;
    opt.layout.root_subtree_depth = 8;
    opt.gpu = small_gpu();
    const Classifier clf(Forest(*forest_), opt);
    const RunReport r = clf.classify(*test_);
    ASSERT_EQ(r.predictions.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(r.predictions[i], reference[i])
          << to_string(backend) << "/" << to_string(variant) << " query " << i;
    }
  }
}

TEST_F(EndToEnd, GpuSpeedupOrderingMatchesFig7) {
  // Hybrid > independent > CSR in simulated speed; cuML sits between
  // CSR and hybrid (Fig. 7's qualitative result).
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.gpu = small_gpu();
  opt.layout.subtree_depth = 8;
  opt.layout.root_subtree_depth = 10;

  opt.variant = Variant::Csr;
  const double t_csr = Classifier(Forest(*forest_), opt).classify(*test_).seconds;
  opt.variant = Variant::Independent;
  const double t_ind = Classifier(Forest(*forest_), opt).classify(*test_).seconds;
  opt.variant = Variant::Hybrid;
  const double t_hyb = Classifier(Forest(*forest_), opt).classify(*test_).seconds;
  opt.variant = Variant::FilBaseline;
  const double t_fil = Classifier(Forest(*forest_), opt).classify(*test_).seconds;

  EXPECT_LT(t_ind, t_csr);
  EXPECT_LT(t_hyb, t_ind);
  EXPECT_LT(t_fil, t_csr);
  EXPECT_GT(t_csr / t_hyb, 2.0);  // hybrid speedup well above 2x
}

TEST_F(EndToEnd, FpgaOrderingMatchesTable3) {
  ClassifierOptions opt;
  opt.backend = Backend::FpgaSim;
  opt.layout.subtree_depth = 8;

  opt.variant = Variant::Csr;
  const double t_csr = Classifier(Forest(*forest_), opt).classify(*test_).seconds;
  opt.variant = Variant::Independent;
  const double t_ind = Classifier(Forest(*forest_), opt).classify(*test_).seconds;
  opt.variant = Variant::Hybrid;
  const double t_hyb = Classifier(Forest(*forest_), opt).classify(*test_).seconds;
  opt.variant = Variant::Collaborative;
  const double t_col = Classifier(Forest(*forest_), opt).classify(*test_).seconds;

  EXPECT_LT(t_hyb, t_ind);
  EXPECT_LT(t_ind, t_csr);
  EXPECT_GT(t_col, t_csr);  // collaborative loses even to the baseline
}

TEST_F(EndToEnd, FpgaReplicationAcceleratesIndependent) {
  ClassifierOptions opt;
  opt.backend = Backend::FpgaSim;
  opt.variant = Variant::Independent;
  opt.layout.subtree_depth = 8;
  const double single = Classifier(Forest(*forest_), opt).classify(*test_).seconds;
  opt.fpga_layout = fpgasim::CuLayout{4, 12, 300.0};
  const double replicated = Classifier(Forest(*forest_), opt).classify(*test_).seconds;
  EXPECT_GT(single / replicated, 10.0);
}

TEST_F(EndToEnd, GpuIsFasterThanFpga) {
  // Fig. 10: the GPU massively outperforms the FPGA on SUSY.
  ClassifierOptions gpu_opt;
  gpu_opt.backend = Backend::GpuSim;
  gpu_opt.variant = Variant::Hybrid;
  gpu_opt.gpu = small_gpu();
  gpu_opt.layout.subtree_depth = 8;
  const double t_gpu = Classifier(Forest(*forest_), gpu_opt).classify(*test_).seconds;

  ClassifierOptions fpga_opt;
  fpga_opt.backend = Backend::FpgaSim;
  fpga_opt.variant = Variant::Independent;
  fpga_opt.layout.subtree_depth = 8;
  const double t_fpga = Classifier(Forest(*forest_), fpga_opt).classify(*test_).seconds;

  EXPECT_LT(t_gpu, t_fpga);
}

TEST_F(EndToEnd, ModelRoundTripsPreservePredictions) {
  const std::string path = testing::TempDir() + "/hrf_e2e_model.hrff";
  forest_->save(path);
  const Forest loaded = Forest::load(path);
  const auto a = forest_->classify_batch(test_->features(), test_->num_samples());
  const auto b = loaded.classify_batch(test_->features(), test_->num_samples());
  EXPECT_EQ(a, b);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hrf
