// Differential property test for dynamic micro-batching (docs/serving.md):
// for many randomized configurations, a ForestServer with batching ON must
// return byte-for-byte the same per-request predictions as (a) the same
// server with batching OFF and (b) the Forest::classify_batch CPU oracle —
// swept over variant x backend x batch-size, including the warp-boundary
// member counts {1, warp-1, warp, warp+1, max}. Batching bugs (mis-sliced
// demultiplex, cross-request row bleed, reordering that leaks into
// results) are exactly the silently-wrong-answer class this oracle
// pattern exists to catch; the serving counterpart of
// test_variant_backend_matrix.cpp.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/hrf.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

struct Combo {
  Variant variant;
  Backend backend;
};

// Every valid variant x backend pair (collaborative/hybrid model on-chip
// memory, absent on the native CPU path; fil is GPU-only).
constexpr Combo kCombos[] = {
    {Variant::Csr, Backend::CpuNative},           {Variant::Csr, Backend::GpuSim},
    {Variant::Csr, Backend::FpgaSim},             {Variant::Independent, Backend::CpuNative},
    {Variant::Independent, Backend::GpuSim},      {Variant::Independent, Backend::FpgaSim},
    {Variant::Collaborative, Backend::GpuSim},    {Variant::Collaborative, Backend::FpgaSim},
    {Variant::Hybrid, Backend::GpuSim},           {Variant::Hybrid, Backend::FpgaSim},
    {Variant::FilBaseline, Backend::GpuSim},
};

// Member-count sweep around the GpuSim warp granularity (32): a batch of
// one, both warp boundaries, and "max" well past the request count so the
// row budget / drain path closes the batch instead of the member budget.
constexpr std::size_t kBatchMax[] = {1, 31, 32, 33, 64};

class BatchDifferential : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchDifferential, BatchedEqualsUnbatchedEqualsOracle) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed * 41 + 5);

  RandomForestSpec spec;
  spec.num_trees = 1 + static_cast<int>(rng.bounded(6));
  spec.max_depth = 1 + static_cast<int>(rng.bounded(8));
  spec.branch_prob = rng.uniform(0.3, 1.0);
  spec.num_features = 1 + static_cast<int>(rng.bounded(12));
  spec.num_classes = 2 + static_cast<int>(rng.bounded(4));
  spec.seed = seed * 7 + 1;
  const Forest forest = make_random_forest(spec);

  // A backlog of small distinct requests: different rows per request, so
  // a demultiplex off-by-one anywhere surfaces as a prediction mismatch.
  const std::size_t num_requests = 6 + rng.bounded(7);
  std::vector<Dataset> requests;
  std::vector<std::vector<std::uint8_t>> oracle;
  for (std::size_t r = 0; r < num_requests; ++r) {
    requests.push_back(make_random_queries(1 + rng.bounded(8), spec.num_features,
                                           seed * 1009 + r * 13 + 3));
    oracle.push_back(
        forest.classify_batch(requests.back().features(), requests.back().num_samples()));
  }

  // One combo and one batch-size per seed; 100 seeds cover the whole
  // matrix many times over while each CTest case stays sub-second.
  const Combo combo = kCombos[seed % std::size(kCombos)];
  const std::size_t batch_max = kBatchMax[(seed / std::size(kCombos)) % std::size(kBatchMax)];
  const std::string label = std::string(to_string(combo.variant)) + "/" +
                            to_string(combo.backend) + " batch_max=" +
                            std::to_string(batch_max) + " seed=" + std::to_string(seed);

  ClassifierOptions copt;
  copt.variant = combo.variant;
  copt.backend = combo.backend;
  copt.layout.subtree_depth = 1 + static_cast<int>(rng.bounded(6));
  copt.gpu.num_sms = 2;  // small simulated device keeps the sweep fast

  const auto serve_all = [&](std::size_t max_requests) {
    serve::ServerOptions sopt;
    sopt.num_workers = 1;  // deterministic coalescing of the paused backlog
    sopt.queue_capacity = num_requests + 2;
    sopt.start_paused = true;
    sopt.batching.max_requests = max_requests;
    sopt.batching.max_wait_seconds = 50e-3;  // patient: size/drain closes batches
    serve::ForestServer server(forest, copt, sopt);
    std::vector<std::future<serve::ServeResult>> futures;
    futures.reserve(num_requests);
    for (const Dataset& req : requests) futures.push_back(server.submit(req));
    server.resume();
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(num_requests);
    for (std::future<serve::ServeResult>& f : futures) {
      serve::ServeResult res = f.get();
      EXPECT_FALSE(res.via_fallback) << label;
      out.push_back(std::move(res.report.predictions));
    }
    server.shutdown();
    return out;
  };

  const std::vector<std::vector<std::uint8_t>> batched = serve_all(batch_max);
  const std::vector<std::vector<std::uint8_t>> unbatched = serve_all(1);

  ASSERT_EQ(batched.size(), num_requests) << label;
  ASSERT_EQ(unbatched.size(), num_requests) << label;
  for (std::size_t r = 0; r < num_requests; ++r) {
    ASSERT_EQ(batched[r], oracle[r]) << label << " request=" << r;
    ASSERT_EQ(unbatched[r], oracle[r]) << label << " request=" << r;
  }
}

// 100 seeds; the combo and batch-size rotate with the seed, so the full
// variant x backend x {1, warp-1, warp, warp+1, max} grid is covered and a
// failing configuration pinpoints its seed.
INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferential, testing::Range<std::uint64_t>(1, 101));

}  // namespace
}  // namespace hrf
