// Differential fuzzing: many random (forest, layout, query) configurations
// must classify identically across every encoding and backend. This is the
// widest net for traversal bugs — any divergence pinpoints the seed.

#include <gtest/gtest.h>

#include "core/hrf.hpp"
#include "cpu/cpu_kernels.hpp"
#include "fpgakernels/fpga_kernels.hpp"
#include "gpukernels/kernels.hpp"
#include "layout/layout_io.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

gpusim::DeviceConfig small_gpu() {
  auto cfg = gpusim::DeviceConfig::titan_xp();
  cfg.num_sms = 2;
  return cfg;
}

class DifferentialFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialFuzz, AllEncodingsAgree) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);

  RandomForestSpec spec;
  spec.num_trees = 1 + static_cast<int>(rng.bounded(12));
  spec.max_depth = 1 + static_cast<int>(rng.bounded(16));
  spec.branch_prob = rng.uniform(0.2, 1.0);
  spec.num_features = 1 + static_cast<int>(rng.bounded(24));
  spec.num_classes = 2 + static_cast<int>(rng.bounded(6));
  spec.seed = seed * 3 + 1;
  const Forest forest = make_random_forest(spec);
  forest.validate();

  HierConfig cfg;
  cfg.subtree_depth = 1 + static_cast<int>(rng.bounded(9));
  cfg.root_subtree_depth = rng.bernoulli(0.5) ? 0 : 1 + static_cast<int>(rng.bounded(12));
  const HierarchicalForest hier = HierarchicalForest::build(forest, cfg);
  hier.validate();
  const CsrForest csr = CsrForest::build(forest);

  const Dataset queries =
      make_random_queries(1 + rng.bounded(300), spec.num_features, seed * 7 + 5);
  const auto reference = forest.classify_batch(queries.features(), queries.num_samples());

  // Scalar encodings.
  for (std::size_t i = 0; i < queries.num_samples(); ++i) {
    ASSERT_EQ(csr.classify(queries.sample(i)), reference[i]) << "csr seed=" << seed;
    ASSERT_EQ(hier.classify(queries.sample(i)), reference[i]) << "hier seed=" << seed;
  }

  // CPU backends.
  ASSERT_EQ(cpu::classify_csr(csr, queries), reference) << "seed=" << seed;
  ASSERT_EQ(cpu::classify_hierarchical(hier, queries), reference) << "seed=" << seed;
  ASSERT_EQ(cpu::classify_hierarchical_blocked(hier, queries, 1 + rng.bounded(64)), reference)
      << "seed=" << seed;

  // Simulated devices (hybrid only when the root subtree fits smem).
  gpusim::Device d1(small_gpu());
  ASSERT_EQ(gpukernels::run_independent(d1, hier, queries).predictions, reference)
      << "seed=" << seed;
  if (complete_tree_nodes(cfg.effective_root_depth()) * 8 <= 48 * 1024) {
    gpusim::Device d2(small_gpu());
    ASSERT_EQ(gpukernels::run_hybrid(d2, hier, queries).predictions, reference)
        << "seed=" << seed;
  }
  ASSERT_EQ(fpgakernels::run_independent_fpga(hier, queries).predictions, reference)
      << "seed=" << seed;

  // Serialization round-trip.
  const std::string path =
      testing::TempDir() + "/hrf_fuzz_" + std::to_string(seed) + ".hrfh";
  save_hierarchical(hier, path);
  const HierarchicalForest reloaded = load_hierarchical(path);
  for (std::size_t i = 0; i < std::min<std::size_t>(queries.num_samples(), 50); ++i) {
    ASSERT_EQ(reloaded.classify(queries.sample(i)), reference[i]) << "io seed=" << seed;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace hrf
