// The benches run at a fraction of the paper's query counts and report
// speedup *ratios*; these tests pin down that the ratios are stable under
// query-count scaling (DESIGN.md §4 "Scale note"), so scaled-down runs are
// trustworthy proxies for paper-scale shapes.

#include <gtest/gtest.h>

#include "core/hrf.hpp"

namespace hrf {
namespace {

gpusim::DeviceConfig small_gpu() {
  auto cfg = gpusim::DeviceConfig::titan_xp();
  cfg.num_sms = 4;
  return cfg;
}

Dataset head(const Dataset& ds, std::size_t n) {
  Dataset out(n, ds.num_features());
  for (std::size_t i = 0; i < n; ++i) out.push_back(ds.sample(i), ds.label(i));
  return out;
}

double gpu_seconds(const Forest& forest, Variant v, const Dataset& q, int sd) {
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.variant = v;
  opt.gpu = small_gpu();
  opt.layout.subtree_depth = sd;
  return Classifier(Forest(forest), opt).classify(q).seconds;
}

TEST(ScaleStability, GpuSpeedupRatioIsStableAcrossQueryCounts) {
  RandomForestSpec spec;
  spec.num_trees = 20;
  spec.max_depth = 12;
  spec.branch_prob = 0.75;
  spec.num_features = 12;
  const Forest forest = make_random_forest(spec);
  const Dataset all = make_random_queries(6000, 12, 3);

  const Dataset small = head(all, 2000);
  const double ratio_small = gpu_seconds(forest, Variant::Csr, small, 6) /
                             gpu_seconds(forest, Variant::Hybrid, small, 6);
  const double ratio_large =
      gpu_seconds(forest, Variant::Csr, all, 6) / gpu_seconds(forest, Variant::Hybrid, all, 6);
  // Ratios agree within 25% across a 3x query-count change.
  EXPECT_NEAR(ratio_large / ratio_small, 1.0, 0.25);
  EXPECT_GT(ratio_small, 1.0);
}

TEST(ScaleStability, GpuTimeGrowsLinearlyWithQueries) {
  RandomForestSpec spec;
  spec.num_trees = 10;
  spec.max_depth = 10;
  spec.num_features = 8;
  const Forest forest = make_random_forest(spec);
  const Dataset all = make_random_queries(6000, 8, 4);
  const double t1 = gpu_seconds(forest, Variant::Independent, head(all, 2000), 6);
  const double t3 = gpu_seconds(forest, Variant::Independent, all, 6);
  // §4.3: execution time scales linearly with query count.
  EXPECT_NEAR(t3 / t1, 3.0, 0.6);
}

TEST(ScaleStability, FpgaTimeIsExactlyLinearInQueries) {
  RandomForestSpec spec;
  spec.num_trees = 10;
  spec.max_depth = 12;
  spec.branch_prob = 1.0;
  spec.num_features = 8;
  const Forest forest = make_random_forest(spec);
  const HierarchicalForest h =
      HierarchicalForest::build(forest, HierConfig{.subtree_depth = 6});
  const Dataset all = make_random_queries(8000, 8, 5);

  ClassifierOptions opt;
  opt.backend = Backend::FpgaSim;
  opt.variant = Variant::Independent;
  opt.layout.subtree_depth = 6;
  const double t1 = Classifier(Forest(forest), opt).classify(head(all, 2000)).seconds;
  const double t4 = Classifier(Forest(forest), opt).classify(all).seconds;
  EXPECT_NEAR(t4 / t1, 4.0, 0.05);  // analytical model: near-exact linearity
}

TEST(ScaleStability, FpgaVariantOrderingStableAcrossQueryCounts) {
  RandomForestSpec spec;
  spec.num_trees = 12;
  spec.max_depth = 13;
  spec.branch_prob = 1.0;
  spec.num_features = 10;
  const Forest forest = make_random_forest(spec);
  const Dataset all = make_random_queries(8000, 10, 6);
  for (std::size_t n : {2000u, 8000u}) {
    const Dataset q = head(all, n);
    ClassifierOptions opt;
    opt.backend = Backend::FpgaSim;
    opt.layout.subtree_depth = 8;
    opt.variant = Variant::Csr;
    const double csr = Classifier(Forest(forest), opt).classify(q).seconds;
    opt.variant = Variant::Independent;
    const double ind = Classifier(Forest(forest), opt).classify(q).seconds;
    opt.variant = Variant::Hybrid;
    const double hyb = Classifier(Forest(forest), opt).classify(q).seconds;
    EXPECT_LT(hyb, ind) << n;
    EXPECT_LT(ind, csr) << n;
  }
}

}  // namespace
}  // namespace hrf
