#include "layout/tree_clustering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"

namespace hrf {
namespace {

Forest demo_forest(int trees = 12) {
  RandomForestSpec spec;
  spec.num_trees = trees;
  spec.max_depth = 8;
  spec.num_features = 10;
  spec.seed = 5;
  return make_random_forest(spec);
}

TEST(TreeClustering, Validation) {
  const Forest f = demo_forest();
  EXPECT_THROW(cluster_trees_by_features(f, 0), ConfigError);
  EXPECT_THROW(cluster_trees_by_features(f, 4, 1, 0), ConfigError);
}

TEST(TreeClustering, OrderIsAPermutation) {
  const Forest f = demo_forest();
  const TreeClusteringResult r = cluster_trees_by_features(f, 3);
  EXPECT_EQ(r.order.size(), f.tree_count());
  std::set<std::size_t> unique(r.order.begin(), r.order.end());
  EXPECT_EQ(unique.size(), f.tree_count());
}

TEST(TreeClustering, ClusterIdsAreGroupedInOrder) {
  const Forest f = demo_forest();
  const TreeClusteringResult r = cluster_trees_by_features(f, 3);
  int prev = -1;
  for (std::size_t i : r.order) {
    EXPECT_GE(r.cluster[i], prev);
    prev = r.cluster[i];
  }
}

TEST(TreeClustering, MoreClustersThanTreesClamps) {
  const Forest f = demo_forest(4);
  const TreeClusteringResult r = cluster_trees_by_features(f, 99);
  EXPECT_LE(r.num_clusters, 4);
}

TEST(TreeClustering, SingleClusterKeepsIdentityGrouping) {
  const Forest f = demo_forest();
  const TreeClusteringResult r = cluster_trees_by_features(f, 1);
  for (int c : r.cluster) EXPECT_EQ(c, 0);
  // Stable sort on equal keys preserves the original order.
  for (std::size_t i = 0; i < r.order.size(); ++i) EXPECT_EQ(r.order[i], i);
}

TEST(TreeClustering, DeterministicUnderSeed) {
  const Forest f = demo_forest();
  const auto a = cluster_trees_by_features(f, 4, 7);
  const auto b = cluster_trees_by_features(f, 4, 7);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.cluster, b.cluster);
}

TEST(TreeClustering, SeparatesDisjointFeatureGroups) {
  // Trees using disjoint feature sets must land in different clusters.
  std::vector<DecisionTree> trees;
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 3; ++i) {
      // Tree with a single inner node on feature (g*5) .. clearly separated.
      std::vector<TreeNode> nodes(3);
      nodes[0] = {g * 5, 0.5f, 1, 2};
      nodes[1] = {kLeafFeature, 0.f, -1, -1};
      nodes[2] = {kLeafFeature, 1.f, -1, -1};
      trees.emplace_back(std::move(nodes));
    }
  }
  const Forest f(std::move(trees), 10);
  const TreeClusteringResult r = cluster_trees_by_features(f, 2, 3);
  // Trees 0-2 share a cluster; trees 3-5 share the other.
  EXPECT_EQ(r.cluster[0], r.cluster[1]);
  EXPECT_EQ(r.cluster[1], r.cluster[2]);
  EXPECT_EQ(r.cluster[3], r.cluster[4]);
  EXPECT_EQ(r.cluster[4], r.cluster[5]);
  EXPECT_NE(r.cluster[0], r.cluster[3]);
}

TEST(ReorderTrees, PredictionsAreInvariant) {
  const Forest f = demo_forest();
  const TreeClusteringResult r = cluster_trees_by_features(f, 4);
  const Forest g = reorder_trees(f, r.order);
  const Dataset q = make_random_queries(500, 10, 9);
  EXPECT_EQ(f.classify_batch(q.features(), q.num_samples()),
            g.classify_batch(q.features(), q.num_samples()));
}

TEST(ReorderTrees, RejectsNonPermutations) {
  const Forest f = demo_forest(3);
  EXPECT_THROW(reorder_trees(f, {0, 1}), ConfigError);        // wrong size
  EXPECT_THROW(reorder_trees(f, {0, 0, 1}), ConfigError);     // duplicate
  EXPECT_THROW(reorder_trees(f, {0, 1, 99}), ConfigError);    // out of range
}

}  // namespace
}  // namespace hrf
