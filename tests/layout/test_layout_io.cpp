#include "layout/layout_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"

namespace hrf {
namespace {

Forest demo_forest() {
  RandomForestSpec spec;
  spec.num_trees = 8;
  spec.max_depth = 10;
  spec.num_features = 9;
  spec.num_classes = 3;
  spec.seed = 61;
  return make_random_forest(spec);
}

std::string tmp_path(const char* name) { return testing::TempDir() + "/" + name; }

TEST(LayoutIo, CsrRoundTripPreservesPredictions) {
  const Forest f = demo_forest();
  const CsrForest csr = CsrForest::build(f);
  const std::string path = tmp_path("hrf_csr_rt.hrfc");
  save_csr(csr, path);
  const CsrForest loaded = load_csr(path);
  EXPECT_EQ(loaded.num_features(), csr.num_features());
  EXPECT_EQ(loaded.num_classes(), 3);
  EXPECT_EQ(loaded.num_nodes(), csr.num_nodes());
  const Dataset q = make_random_queries(400, 9, 62);
  for (std::size_t i = 0; i < q.num_samples(); ++i) {
    ASSERT_EQ(loaded.classify(q.sample(i)), csr.classify(q.sample(i)));
  }
  std::remove(path.c_str());
}

TEST(LayoutIo, HierarchicalRoundTripPreservesEverything) {
  const Forest f = demo_forest();
  HierConfig cfg;
  cfg.subtree_depth = 4;
  cfg.root_subtree_depth = 6;
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);
  const std::string path = tmp_path("hrf_hier_rt.hrfh");
  save_hierarchical(h, path);
  const HierarchicalForest loaded = load_hierarchical(path);
  EXPECT_EQ(loaded.config().subtree_depth, 4);
  EXPECT_EQ(loaded.config().root_subtree_depth, 6);
  EXPECT_EQ(loaded.num_subtrees(), h.num_subtrees());
  EXPECT_EQ(loaded.real_nodes(), h.real_nodes());
  EXPECT_EQ(loaded.memory_bytes(), h.memory_bytes());
  const Dataset q = make_random_queries(400, 9, 63);
  for (std::size_t i = 0; i < q.num_samples(); ++i) {
    ASSERT_EQ(loaded.classify(q.sample(i)), h.classify(q.sample(i)));
  }
  std::remove(path.c_str());
}

TEST(LayoutIo, CsrLoadRejectsWrongMagic) {
  const std::string path = tmp_path("hrf_csr_bad.hrfc");
  std::ofstream(path, std::ios::binary) << "definitely not a CSR layout file";
  EXPECT_THROW(load_csr(path), FormatError);
  std::remove(path.c_str());
}

TEST(LayoutIo, HierLoadRejectsWrongMagic) {
  const std::string path = tmp_path("hrf_hier_bad.hrfh");
  // A valid CSR file is not a hierarchical file.
  save_csr(CsrForest::build(demo_forest()), path);
  EXPECT_THROW(load_hierarchical(path), FormatError);
  std::remove(path.c_str());
}

TEST(LayoutIo, TruncatedFilesAreRejected) {
  const Forest f = demo_forest();
  const std::string path = tmp_path("hrf_hier_trunc.hrfh");
  save_hierarchical(HierarchicalForest::build(f, HierConfig{.subtree_depth = 4}), path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary) << bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW(load_hierarchical(path), FormatError);
  std::remove(path.c_str());
}

TEST(LayoutIo, CorruptedConnectionIsCaughtByValidate) {
  const Forest f = demo_forest();
  const HierarchicalForest h = HierarchicalForest::build(f, HierConfig{.subtree_depth = 4});
  // Rebuild via from_parts with a connection pointing outside its tree.
  std::vector<std::int32_t> conn(h.subtree_connection().begin(), h.subtree_connection().end());
  bool corrupted = false;
  for (auto& c : conn) {
    if (c >= 0) {
      c = static_cast<std::int32_t>(h.num_subtrees()) + 5;  // out of range
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_THROW(
      HierarchicalForest::from_parts(
          h.config(), h.num_features(), h.num_classes(), h.real_nodes(),
          {h.subtree_node_offsets().begin(), h.subtree_node_offsets().end()},
          {h.subtree_depths().begin(), h.subtree_depths().end()},
          {h.connection_offsets().begin(), h.connection_offsets().end()}, std::move(conn),
          {h.feature_id().begin(), h.feature_id().end()}, {h.value().begin(), h.value().end()},
          {h.tree_subtree_begin().begin(), h.tree_subtree_begin().end()}),
      FormatError);
}

TEST(LayoutIo, SavesAreAtomicAndLeaveNoTempFiles) {
  namespace fs = std::filesystem;
  const std::string dir = testing::TempDir() + "/hrf_atomic_save";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const Forest f = demo_forest();
  save_csr(CsrForest::build(f), dir + "/a.hrfc");
  save_hierarchical(HierarchicalForest::build(f, HierConfig{.subtree_depth = 4}), dir + "/b.hrfh");
  // Overwriting an existing blob must also go through the temp + rename path.
  save_csr(CsrForest::build(f), dir + "/a.hrfc");
  std::size_t files = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(e.path().filename().string().find(".tmp"), std::string::npos)
        << "stray temp file: " << e.path();
  }
  EXPECT_EQ(files, 2u);  // only the two published blobs
  EXPECT_NO_THROW(load_csr(dir + "/a.hrfc"));
  fs::remove_all(dir);
}

TEST(LayoutIo, TruncationErrorCarriesSectionAndOffset) {
  const Forest f = demo_forest();
  const std::string path = tmp_path("hrf_hier_loc.hrfh");
  save_hierarchical(HierarchicalForest::build(f, HierConfig{.subtree_depth = 4}), path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary) << bytes.substr(0, bytes.size() / 2);
  try {
    load_hierarchical(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_TRUE(e.has_location());
    EXPECT_FALSE(e.section().empty());
    EXPECT_GT(e.byte_offset(), 0u);
    // The located suffix is part of what() so plain log lines carry it too.
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(LayoutIo, ChecksumErrorCarriesSectionAndOffset) {
  const Forest f = demo_forest();
  const std::string path = tmp_path("hrf_csr_loc.hrfc");
  save_csr(CsrForest::build(f), path);
  {
    // Flip one payload byte past the header; the per-section CRC catches it.
    std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
    io.seekg(0, std::ios::end);
    const std::streamoff mid = io.tellg() / 2;
    io.seekg(mid);
    char byte = 0;
    io.read(&byte, 1);
    byte ^= '\x5A';
    io.seekp(mid);
    io.write(&byte, 1);
  }
  try {
    load_csr(path);
    FAIL() << "expected FormatError";
  } catch (const FormatError& e) {
    EXPECT_TRUE(e.has_location());
    EXPECT_FALSE(e.section().empty());
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(LayoutIo, CsrFromPartsValidation) {
  // Leaf with a children index must be rejected.
  EXPECT_THROW(CsrForest::from_parts({kLeafFeature}, {0.f}, {}, {0}, {0}, 2, 2), FormatError);
  // Inner node with out-of-range child.
  EXPECT_THROW(CsrForest::from_parts({0, kLeafFeature, kLeafFeature}, {0.5f, 0.f, 1.f},
                                     {1, 99}, {0, -1, -1}, {0}, 2, 2),
               FormatError);
  // Leaf value beyond the class range.
  EXPECT_THROW(CsrForest::from_parts({kLeafFeature}, {7.f}, {}, {-1}, {0}, 2, 2), FormatError);
  // A minimal valid single-leaf encoding passes.
  EXPECT_NO_THROW(CsrForest::from_parts({kLeafFeature}, {1.f}, {}, {-1}, {0}, 2, 2));
}

}  // namespace
}  // namespace hrf
