#include "layout/hierarchical.hpp"

#include <gtest/gtest.h>

#include "../common/paper_example.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

HierarchicalForest build_fig3(int sd = 3, int rsd = 0) {
  HierConfig cfg;
  cfg.subtree_depth = sd;
  cfg.root_subtree_depth = rsd;
  return HierarchicalForest::build(testutil::fig2_forest(), cfg);
}

TEST(Hierarchical, ConfigValidation) {
  const Forest f = testutil::fig2_forest();
  HierConfig cfg;
  cfg.subtree_depth = 0;
  EXPECT_THROW(HierarchicalForest::build(f, cfg), ConfigError);
  cfg.subtree_depth = 25;
  EXPECT_THROW(HierarchicalForest::build(f, cfg), ConfigError);
  cfg.subtree_depth = 4;
  cfg.root_subtree_depth = 30;
  EXPECT_THROW(HierarchicalForest::build(f, cfg), ConfigError);
}

TEST(Hierarchical, Fig3RootSubtreeIsPaddedToComplete) {
  // Fig. 3a: with max subtree depth 3, subtree 0 covers the tree's top
  // three levels {0,1,2,3,4} and gains two padding nodes under leaf 1.
  const HierarchicalForest h = build_fig3();
  EXPECT_EQ(h.subtree_depth(0), 3);
  EXPECT_EQ(h.subtree_node_offset(1) - h.subtree_node_offset(0), complete_tree_nodes(3));
  const HierStats s = h.stats();
  EXPECT_EQ(s.real_nodes, 9u);
  EXPECT_EQ(s.padding_nodes, 2u);  // the two dotted nodes of Fig. 3a
}

TEST(Hierarchical, Fig3RootSubtreeSlots) {
  // Slot layout of subtree 0 (BFS relabeling of Fig. 3a): slot 0 = old 0,
  // slot 1 = old 1 (leaf), slot 2 = old 2, slots 3-4 padding, slot 5 =
  // old 3, slot 6 = old 4.
  const HierarchicalForest h = build_fig3();
  const auto fid = h.feature_id();
  const auto val = h.value();
  EXPECT_EQ(fid[0], 1);
  EXPECT_FLOAT_EQ(val[0], 2.5f);
  EXPECT_EQ(fid[1], kLeafFeature);
  EXPECT_FLOAT_EQ(val[1], 0.0f);
  EXPECT_EQ(fid[2], 4);
  EXPECT_FLOAT_EQ(val[2], 0.5f);
  EXPECT_EQ(fid[3], kLeafFeature);  // padding
  EXPECT_EQ(fid[4], kLeafFeature);  // padding
  EXPECT_EQ(fid[5], 8);
  EXPECT_FLOAT_EQ(val[5], 5.4f);
  EXPECT_EQ(fid[6], 20);
  EXPECT_FLOAT_EQ(val[6], 8.8f);
}

TEST(Hierarchical, Fig3SpawnsLeafSubtrees) {
  // The two bottom-level inner nodes (old 3 and old 4) each spawn two
  // single-node subtrees: 5 subtrees total, all validated.
  const HierarchicalForest h = build_fig3();
  EXPECT_EQ(h.num_subtrees(), 5u);
  for (std::size_t st = 1; st < 5; ++st) EXPECT_EQ(h.subtree_depth(st), 1);
  EXPECT_NO_THROW(h.validate());
}

TEST(Hierarchical, Fig3ConnectionsFollowBottomSlots) {
  const HierarchicalForest h = build_fig3();
  const auto conn = h.subtree_connection();
  // Subtree 0 has 4 bottom slots -> 8 entries. Slots 3,4 are padding
  // (-1,-1); slot 5 (old node 3) -> subtrees 1,2; slot 6 (old 4) -> 3,4.
  ASSERT_EQ(h.connection_offset(1) - h.connection_offset(0), 8u);
  EXPECT_EQ(conn[0], -1);
  EXPECT_EQ(conn[1], -1);
  EXPECT_EQ(conn[2], -1);
  EXPECT_EQ(conn[3], -1);
  EXPECT_EQ(conn[4], 1);
  EXPECT_EQ(conn[5], 2);
  EXPECT_EQ(conn[6], 3);
  EXPECT_EQ(conn[7], 4);
}

TEST(Hierarchical, Fig3TraversalWalkthrough) {
  const HierarchicalForest h = build_fig3();
  EXPECT_FLOAT_EQ(h.traverse_tree(0, testutil::fig2_query_class_a()), 0.0f);
  EXPECT_FLOAT_EQ(h.traverse_tree(0, testutil::fig2_query_class_b()), 1.0f);
  EXPECT_EQ(h.classify(testutil::fig2_query_class_a()), 0);
}

TEST(Hierarchical, LargeSubtreeDepthSwallowsWholeTree) {
  // SD >= tree depth: one subtree per tree, no connections at all.
  const HierarchicalForest h = build_fig3(10);
  EXPECT_EQ(h.num_subtrees(), 1u);
  EXPECT_EQ(h.subtree_depth(0), 4);  // truncated to the tree's real depth
  EXPECT_TRUE(h.subtree_connection().empty());
  EXPECT_FLOAT_EQ(h.traverse_tree(0, testutil::fig2_query_class_a()), 0.0f);
}

TEST(Hierarchical, SubtreeDepthOneDegeneratesToPerNodeSubtrees) {
  const HierarchicalForest h = build_fig3(1);
  // Every real node becomes its own subtree; inner nodes carry connections.
  EXPECT_EQ(h.num_subtrees(), 9u);
  EXPECT_EQ(h.stats().padding_nodes, 0u);
  EXPECT_NO_THROW(h.validate());
  EXPECT_FLOAT_EQ(h.traverse_tree(0, testutil::fig2_query_class_b()), 1.0f);
}

TEST(Hierarchical, RootSubtreeDepthAppliesOnlyToFirstSubtree) {
  const HierarchicalForest h = build_fig3(/*sd=*/2, /*rsd=*/3);
  EXPECT_EQ(h.subtree_depth(0), 3);
  for (std::size_t st = 1; st < h.num_subtrees(); ++st) {
    EXPECT_LE(h.subtree_depth(st), 2);
  }
  EXPECT_NO_THROW(h.validate());
  EXPECT_FLOAT_EQ(h.traverse_tree(0, testutil::fig2_query_class_a()), 0.0f);
}

TEST(Hierarchical, EffectiveRootDepthDefaultsToSubtreeDepth) {
  HierConfig cfg;
  cfg.subtree_depth = 6;
  cfg.root_subtree_depth = 0;
  EXPECT_EQ(cfg.effective_root_depth(), 6);
  cfg.root_subtree_depth = 9;
  EXPECT_EQ(cfg.effective_root_depth(), 9);
}

TEST(Hierarchical, SingleLeafTree) {
  std::vector<DecisionTree> trees;
  trees.push_back(DecisionTree({TreeNode{kLeafFeature, 1.0f, -1, -1}}));
  const Forest f(std::move(trees), 2);
  HierConfig cfg;
  cfg.subtree_depth = 4;
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);
  EXPECT_EQ(h.num_subtrees(), 1u);
  EXPECT_EQ(h.subtree_depth(0), 1);
  const std::vector<float> q(2, 0.f);
  EXPECT_EQ(h.classify(q), 1);
}

TEST(Hierarchical, DeepChainTreeBuildsChainOfSubtrees) {
  // A pure spine of depth 17 with SD 4 must produce ceil-ish chain of
  // subtrees and still classify correctly.
  RandomForestSpec spec;
  spec.num_trees = 1;
  spec.max_depth = 17;
  spec.branch_prob = 0.0;
  spec.num_features = 3;
  const Forest f = make_random_forest(spec);
  HierConfig cfg;
  cfg.subtree_depth = 4;
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);
  EXPECT_NO_THROW(h.validate());
  Xoshiro256 rng(5);
  std::vector<float> q(3);
  for (int i = 0; i < 200; ++i) {
    for (auto& v : q) v = rng.uniform_float();
    ASSERT_EQ(h.classify(q), f.classify(q));
  }
}

TEST(Hierarchical, MultiTreeSubtreeRanges) {
  RandomForestSpec spec;
  spec.num_trees = 7;
  spec.max_depth = 9;
  const Forest f = make_random_forest(spec);
  HierConfig cfg;
  cfg.subtree_depth = 3;
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);
  EXPECT_EQ(h.num_trees(), 7u);
  const auto begins = h.tree_subtree_begin();
  ASSERT_EQ(begins.size(), 8u);
  EXPECT_EQ(begins[0], 0u);
  for (std::size_t t = 0; t + 1 < begins.size(); ++t) {
    EXPECT_LT(begins[t], begins[t + 1]);
  }
  EXPECT_EQ(begins[7], h.num_subtrees());
}

TEST(Hierarchical, MemoryBytesGrowWithSubtreeDepth) {
  // Fig. 6's driver: deeper subtrees allocate more padding.
  RandomForestSpec spec;
  spec.num_trees = 10;
  spec.max_depth = 14;
  spec.branch_prob = 0.6;
  const Forest f = make_random_forest(spec);
  std::size_t prev = 0;
  for (int sd : {2, 4, 6, 8}) {
    HierConfig cfg;
    cfg.subtree_depth = sd;
    const auto bytes = HierarchicalForest::build(f, cfg).memory_bytes();
    if (prev != 0) EXPECT_GE(bytes, prev / 2);  // generally grows; never collapses
    prev = bytes;
  }
  // SD 8 must pad far more than SD 2 on sparse depth-14 trees.
  HierConfig small;
  small.subtree_depth = 2;
  HierConfig large;
  large.subtree_depth = 8;
  EXPECT_GT(HierarchicalForest::build(f, large).stats().padding_ratio,
            HierarchicalForest::build(f, small).stats().padding_ratio);
}

TEST(Hierarchical, StatsAreInternallyConsistent) {
  RandomForestSpec spec;
  spec.num_trees = 5;
  spec.max_depth = 10;
  const Forest f = make_random_forest(spec);
  HierConfig cfg;
  cfg.subtree_depth = 4;
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);
  const HierStats s = h.stats();
  EXPECT_EQ(s.stored_nodes, s.real_nodes + s.padding_nodes);
  EXPECT_EQ(s.real_nodes, f.stats().total_nodes);
  EXPECT_EQ(s.num_subtrees, h.num_subtrees());
  EXPECT_EQ(s.connection_entries, h.subtree_connection().size());
  EXPECT_NEAR(s.padding_ratio,
              static_cast<double>(s.padding_nodes) / static_cast<double>(s.stored_nodes), 1e-12);
}

}  // namespace
}  // namespace hrf
