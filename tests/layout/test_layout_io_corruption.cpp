// Fuzz-style corruption coverage for the layout blob format: every header
// bit and a seeded random sample of body bits are flipped, and load must
// either succeed bit-identically or throw FormatError — never crash and
// never hand back a silently different forest.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "layout/layout_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf {
namespace {

Forest demo_forest() {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 9;
  spec.num_features = 9;
  spec.num_classes = 3;
  spec.seed = 71;
  return make_random_forest(spec);
}

std::string tmp_path(const char* name) { return testing::TempDir() + "/" + name; }

std::vector<std::byte> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good());
  std::vector<std::byte> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void write_bytes(const std::string& path, const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
bool spans_equal(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool same_csr(const CsrForest& a, const CsrForest& b) {
  return a.num_features() == b.num_features() && a.num_classes() == b.num_classes() &&
         spans_equal(a.feature_id(), b.feature_id()) && spans_equal(a.value(), b.value()) &&
         spans_equal(a.children_arr(), b.children_arr()) &&
         spans_equal(a.children_arr_idx(), b.children_arr_idx()) &&
         spans_equal(a.tree_root(), b.tree_root());
}

bool same_hier(const HierarchicalForest& a, const HierarchicalForest& b) {
  return a.num_features() == b.num_features() && a.num_classes() == b.num_classes() &&
         a.real_nodes() == b.real_nodes() &&
         a.config().subtree_depth == b.config().subtree_depth &&
         a.config().root_subtree_depth == b.config().root_subtree_depth &&
         spans_equal(a.subtree_node_offsets(), b.subtree_node_offsets()) &&
         spans_equal(a.subtree_depths(), b.subtree_depths()) &&
         spans_equal(a.connection_offsets(), b.connection_offsets()) &&
         spans_equal(a.subtree_connection(), b.subtree_connection()) &&
         spans_equal(a.feature_id(), b.feature_id()) && spans_equal(a.value(), b.value()) &&
         spans_equal(a.tree_subtree_begin(), b.tree_subtree_begin());
}

/// Loads `path` with `load` and checks the no-silent-corruption contract
/// against `reference` (equality via `same`). Returns true when the load
/// was rejected with FormatError.
template <typename LoadFn, typename SameFn, typename LayoutT>
bool load_rejects_or_is_identical(LoadFn load, SameFn same, const LayoutT& reference,
                                  const std::string& path, std::size_t bit) {
  try {
    const LayoutT loaded = load(path);
    EXPECT_TRUE(same(reference, loaded))
        << "flipping bit " << bit << " loaded a silently different forest";
    return false;
  } catch (const FormatError&) {
    return true;  // detected — the acceptable outcome
  }
  // Any other exception type escapes and fails the test.
}

class LayoutCorruption : public testing::Test {
 protected:
  void TearDown() override { FaultInjector::global().disarm_all(); }
};

TEST_F(LayoutCorruption, CsrEveryHeaderBitFlip) {
  const CsrForest csr = CsrForest::build(demo_forest());
  const std::string path = tmp_path("hrf_corrupt_csr_hdr.hrfc");
  save_csr(csr, path);
  const std::vector<std::byte> pristine = file_bytes(path);
  // "Header" = magic + version + the framed scalar section + the first
  // array section's frame: the first 64 bytes cover all of it.
  const std::size_t header_bits = std::min<std::size_t>(64, pristine.size()) * 8;
  std::size_t rejected = 0;
  for (std::size_t bit = 0; bit < header_bits; ++bit) {
    std::vector<std::byte> corrupted = pristine;
    FaultInjector::flip_bit(corrupted, bit);
    write_bytes(path, corrupted);
    rejected += load_rejects_or_is_identical([](const std::string& p) { return load_csr(p); },
                                             same_csr, csr, path, bit);
  }
  // The format must actually detect corruption, not just tolerate it.
  EXPECT_GT(rejected, header_bits / 2);
  std::remove(path.c_str());
}

TEST_F(LayoutCorruption, HierEveryHeaderBitFlip) {
  const HierarchicalForest h =
      HierarchicalForest::build(demo_forest(), HierConfig{.subtree_depth = 4,
                                                          .root_subtree_depth = 6});
  const std::string path = tmp_path("hrf_corrupt_hier_hdr.hrfh");
  save_hierarchical(h, path);
  const std::vector<std::byte> pristine = file_bytes(path);
  const std::size_t header_bits = std::min<std::size_t>(64, pristine.size()) * 8;
  std::size_t rejected = 0;
  for (std::size_t bit = 0; bit < header_bits; ++bit) {
    std::vector<std::byte> corrupted = pristine;
    FaultInjector::flip_bit(corrupted, bit);
    write_bytes(path, corrupted);
    rejected += load_rejects_or_is_identical(
        [](const std::string& p) { return load_hierarchical(p); }, same_hier, h, path, bit);
  }
  EXPECT_GT(rejected, header_bits / 2);
  std::remove(path.c_str());
}

TEST_F(LayoutCorruption, RandomBodyBitFlipsAreAlwaysDetected) {
  const Forest f = demo_forest();
  const CsrForest csr = CsrForest::build(f);
  const HierarchicalForest h = HierarchicalForest::build(f, HierConfig{.subtree_depth = 4});
  const std::string csr_path = tmp_path("hrf_corrupt_csr_body.hrfc");
  const std::string hier_path = tmp_path("hrf_corrupt_hier_body.hrfh");
  save_csr(csr, csr_path);
  save_hierarchical(h, hier_path);
  const std::vector<std::byte> csr_pristine = file_bytes(csr_path);
  const std::vector<std::byte> hier_pristine = file_bytes(hier_path);

  FaultInjector sampler(2024);  // deterministic sample of flip positions
  for (int round = 0; round < 150; ++round) {
    std::vector<std::byte> corrupted = csr_pristine;
    const auto bits = sampler.flip_random_bits(corrupted, 1 + round % 3);
    write_bytes(csr_path, corrupted);
    load_rejects_or_is_identical([](const std::string& p) { return load_csr(p); }, same_csr,
                                 csr, csr_path, bits.front());

    corrupted = hier_pristine;
    const auto hbits = sampler.flip_random_bits(corrupted, 1 + round % 3);
    write_bytes(hier_path, corrupted);
    load_rejects_or_is_identical([](const std::string& p) { return load_hierarchical(p); },
                                 same_hier, h, hier_path, hbits.front());
  }
  std::remove(csr_path.c_str());
  std::remove(hier_path.c_str());
}

TEST_F(LayoutCorruption, V1BlobsStillLoad) {
  const Forest f = demo_forest();
  const CsrForest csr = CsrForest::build(f);
  const HierarchicalForest h = HierarchicalForest::build(f, HierConfig{.subtree_depth = 4});
  const std::string csr_path = tmp_path("hrf_v1.hrfc");
  const std::string hier_path = tmp_path("hrf_v1.hrfh");
  save_csr(csr, csr_path, 1);
  save_hierarchical(h, hier_path, 1);
  EXPECT_TRUE(same_csr(csr, load_csr(csr_path)));
  EXPECT_TRUE(same_hier(h, load_hierarchical(hier_path)));
  std::remove(csr_path.c_str());
  std::remove(hier_path.c_str());
}

TEST_F(LayoutCorruption, UnsupportedSaveVersionIsRejected) {
  const CsrForest csr = CsrForest::build(demo_forest());
  EXPECT_THROW(save_csr(csr, tmp_path("hrf_v9.hrfc"), 9), ConfigError);
}

TEST_F(LayoutCorruption, ArmedBitflipSiteCorruptsTheLoad) {
  const CsrForest csr = CsrForest::build(demo_forest());
  const std::string path = tmp_path("hrf_bitflip_site.hrfc");
  save_csr(csr, path);
  FaultInjector::global().arm("bitflip:layout", 1);
  // One random bit anywhere in a checksummed blob must be detected.
  EXPECT_THROW(load_csr(path), FormatError);
  // The charge is spent: the next load is clean.
  EXPECT_TRUE(same_csr(csr, load_csr(path)));
  std::remove(path.c_str());
}

TEST_F(LayoutCorruption, ArmedCorruptNodeSiteIsCaughtByValidation) {
  const Forest f = demo_forest();
  const std::string csr_path = tmp_path("hrf_corrupt_node.hrfc");
  const std::string hier_path = tmp_path("hrf_corrupt_node.hrfh");
  save_csr(CsrForest::build(f), csr_path);
  save_hierarchical(HierarchicalForest::build(f, HierConfig{.subtree_depth = 4}), hier_path);
  // corrupt:node clobbers a parsed node field *after* checksums pass, so
  // only semantic validation stands between it and a wrong forest.
  FaultInjector::global().arm("corrupt:node", 1);
  EXPECT_THROW(load_csr(csr_path), FormatError);
  FaultInjector::global().arm("corrupt:node", 1);
  EXPECT_THROW(load_hierarchical(hier_path), FormatError);
  std::remove(csr_path.c_str());
  std::remove(hier_path.c_str());
}

TEST_F(LayoutCorruption, PeekLayoutKind) {
  const Forest f = demo_forest();
  const std::string csr_path = tmp_path("hrf_peek.hrfc");
  const std::string hier_path = tmp_path("hrf_peek.hrfh");
  const std::string junk_path = tmp_path("hrf_peek.junk");
  save_csr(CsrForest::build(f), csr_path);
  save_hierarchical(HierarchicalForest::build(f, HierConfig{.subtree_depth = 4}), hier_path);
  std::ofstream(junk_path, std::ios::binary) << "not a layout blob";
  EXPECT_EQ(peek_layout_kind(csr_path), "csr");
  EXPECT_EQ(peek_layout_kind(hier_path), "hierarchical");
  EXPECT_THROW(peek_layout_kind(junk_path), FormatError);
  std::remove(csr_path.c_str());
  std::remove(hier_path.c_str());
  std::remove(junk_path.c_str());
}

}  // namespace
}  // namespace hrf
