#include "layout/csr.hpp"

#include <gtest/gtest.h>

#include "../common/paper_example.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

TEST(CsrForest, Fig2AttributesPreserved) {
  const CsrForest csr = CsrForest::build(testutil::fig2_forest());
  EXPECT_EQ(csr.num_nodes(), 9u);
  EXPECT_EQ(csr.num_trees(), 1u);
  // Root keeps id 0 and its Fig. 2c attributes.
  EXPECT_EQ(csr.feature_id()[0], 1);
  EXPECT_FLOAT_EQ(csr.value()[0], 2.5f);
  // 4 inner nodes -> 8 child entries; 5 leaves with children_arr_idx == -1.
  EXPECT_EQ(csr.children_arr().size(), 8u);
  int leaves = 0;
  for (std::int32_t idx : csr.children_arr_idx()) leaves += idx == -1;
  EXPECT_EQ(leaves, 5);
}

TEST(CsrForest, Fig2ChildIndirectionIsConsistent) {
  // For every inner node, children_arr[children_arr_idx[n]] and the next
  // entry must be valid node ids whose attributes exist.
  const CsrForest csr = CsrForest::build(testutil::fig2_forest());
  for (std::size_t n = 0; n < csr.num_nodes(); ++n) {
    const std::int32_t idx = csr.children_arr_idx()[n];
    if (idx < 0) continue;
    const std::int32_t left = csr.children_arr()[static_cast<std::size_t>(idx)];
    const std::int32_t right = csr.children_arr()[static_cast<std::size_t>(idx) + 1];
    EXPECT_GE(left, 0);
    EXPECT_LT(static_cast<std::size_t>(left), csr.num_nodes());
    EXPECT_GE(right, 0);
    EXPECT_LT(static_cast<std::size_t>(right), csr.num_nodes());
    EXPECT_NE(left, right);
  }
}

TEST(CsrForest, Fig2TraversalWalkthrough) {
  const CsrForest csr = CsrForest::build(testutil::fig2_forest());
  EXPECT_FLOAT_EQ(csr.traverse_tree(0, testutil::fig2_query_class_a()), 0.0f);
  EXPECT_FLOAT_EQ(csr.traverse_tree(0, testutil::fig2_query_class_b()), 1.0f);
  EXPECT_EQ(csr.classify(testutil::fig2_query_class_a()), 0);
  EXPECT_EQ(csr.classify(testutil::fig2_query_class_b()), 1);
}

TEST(CsrForest, ClassifyRejectsWrongWidth) {
  const CsrForest csr = CsrForest::build(testutil::fig2_forest());
  const std::vector<float> narrow(3, 0.f);
  EXPECT_THROW(csr.classify(narrow), ConfigError);
}

TEST(CsrForest, TreeRootsPartitionNodeIds) {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 8;
  const Forest f = make_random_forest(spec);
  const CsrForest csr = CsrForest::build(f);
  ASSERT_EQ(csr.tree_root().size(), 6u);
  EXPECT_EQ(csr.tree_root()[0], 0);
  for (std::size_t t = 1; t < 6; ++t) {
    EXPECT_EQ(csr.tree_root()[t] - csr.tree_root()[t - 1],
              static_cast<std::int32_t>(f.tree(t - 1).node_count()));
  }
}

TEST(CsrForest, BfsOrderPutsChildrenAfterParents) {
  const CsrForest csr = CsrForest::build(testutil::fig2_forest());
  for (std::size_t n = 0; n < csr.num_nodes(); ++n) {
    const std::int32_t idx = csr.children_arr_idx()[n];
    if (idx < 0) continue;
    EXPECT_GT(csr.children_arr()[static_cast<std::size_t>(idx)],
              static_cast<std::int32_t>(n));
  }
}

TEST(CsrForest, MemoryBytesMatchesArraySizes) {
  const CsrForest csr = CsrForest::build(testutil::fig2_forest());
  // 9 nodes * (feature 4 + value 4 + idx 4) + 8 children * 4 + 1 root * 4.
  EXPECT_EQ(csr.memory_bytes(), 9u * 12 + 8 * 4 + 4);
}

TEST(CsrForest, MatchesPointerTraversalOnRandomForest) {
  RandomForestSpec spec;
  spec.num_trees = 20;
  spec.max_depth = 12;
  spec.num_features = 10;
  const Forest f = make_random_forest(spec);
  const CsrForest csr = CsrForest::build(f);
  Xoshiro256 rng(123);
  std::vector<float> q(10);
  for (int i = 0; i < 500; ++i) {
    for (auto& v : q) v = rng.uniform_float();
    ASSERT_EQ(csr.classify(q), f.classify(q));
  }
}

TEST(CsrForest, SingleLeafTree) {
  std::vector<DecisionTree> trees;
  trees.push_back(DecisionTree({TreeNode{kLeafFeature, 1.0f, -1, -1}}));
  const Forest f(std::move(trees), 2);
  const CsrForest csr = CsrForest::build(f);
  EXPECT_EQ(csr.num_nodes(), 1u);
  const std::vector<float> q(2, 0.f);
  EXPECT_EQ(csr.classify(q), 1);
}

}  // namespace
}  // namespace hrf
