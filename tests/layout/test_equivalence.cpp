// Property tests: every layout must classify identically to the canonical
// pointer-based forest, for structurally diverse random forests and across
// the (SD, RSD) tuning grid. This is the library's central invariant —
// the hierarchical layout is a pure re-encoding.

#include <gtest/gtest.h>

#include <tuple>

#include "forest/random_forest_gen.hpp"
#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

struct Shape {
  int trees;
  int depth;
  double branch_prob;
  int features;
};

class LayoutEquivalence
    : public testing::TestWithParam<std::tuple<Shape, int /*sd*/, int /*rsd*/>> {};

TEST_P(LayoutEquivalence, AllLayoutsAgreeWithPointerForest) {
  const auto [shape, sd, rsd] = GetParam();
  RandomForestSpec spec;
  spec.num_trees = shape.trees;
  spec.max_depth = shape.depth;
  spec.branch_prob = shape.branch_prob;
  spec.num_features = shape.features;
  spec.seed = static_cast<std::uint64_t>(shape.trees * 1000 + shape.depth * 10 + sd);
  const Forest f = make_random_forest(spec);

  const CsrForest csr = CsrForest::build(f);
  HierConfig cfg;
  cfg.subtree_depth = sd;
  cfg.root_subtree_depth = rsd;
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);
  h.validate();

  Xoshiro256 rng(spec.seed ^ 0xdead);
  std::vector<float> q(static_cast<std::size_t>(shape.features));
  for (int i = 0; i < 300; ++i) {
    for (auto& v : q) v = rng.uniform_float();
    const std::uint8_t expected = f.classify(q);
    ASSERT_EQ(csr.classify(q), expected) << "CSR diverged, query " << i;
    ASSERT_EQ(h.classify(q), expected) << "hierarchical diverged, query " << i;
    // Per-tree leaf values must match too (stronger than the vote).
    for (std::size_t t = 0; t < f.tree_count(); ++t) {
      ASSERT_FLOAT_EQ(h.traverse_tree(t, q), f.tree(t).traverse(q));
      ASSERT_FLOAT_EQ(csr.traverse_tree(t, q), f.tree(t).traverse(q));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutEquivalence,
    testing::Combine(testing::Values(Shape{1, 1, 0.5, 4},    // single-leaf trees
                                     Shape{3, 5, 0.8, 6},    // small bushy
                                     Shape{5, 12, 0.6, 10},  // medium sparse
                                     Shape{2, 20, 0.4, 8},   // deep thin
                                     Shape{4, 9, 1.0, 5}),   // complete
                     testing::Values(1, 3, 4, 6, 8),         // SD
                     testing::Values(0, 8, 12)),             // RSD (0 = SD)
    [](const auto& info) {
      const Shape& shape = std::get<0>(info.param);
      return "t" + std::to_string(shape.trees) + "d" + std::to_string(shape.depth) + "sd" +
             std::to_string(std::get<1>(info.param)) + "rsd" +
             std::to_string(std::get<2>(info.param));
    });

TEST(LayoutEquivalenceEdge, AdversarialThresholdQueries) {
  // Queries exactly at node thresholds: the strict `<` must round-trip
  // through every layout identically.
  RandomForestSpec spec;
  spec.num_trees = 4;
  spec.max_depth = 8;
  spec.num_features = 5;
  const Forest f = make_random_forest(spec);
  const CsrForest csr = CsrForest::build(f);
  HierConfig cfg;
  cfg.subtree_depth = 3;
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);

  std::vector<float> q(5, 0.f);
  for (std::size_t t = 0; t < f.tree_count(); ++t) {
    for (const TreeNode& n : f.tree(t).nodes()) {
      if (n.is_leaf()) continue;
      std::fill(q.begin(), q.end(), n.value);  // all features on a threshold
      const std::uint8_t expected = f.classify(q);
      ASSERT_EQ(csr.classify(q), expected);
      ASSERT_EQ(h.classify(q), expected);
    }
  }
}

}  // namespace
}  // namespace hrf
