#include "layout/quantized.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"

namespace hrf {
namespace {

struct Fixture {
  Forest forest;
  HierarchicalForest hier;
  Dataset calibration;

  explicit Fixture(int classes = 2)
      : forest(make_random_forest({.num_trees = 12,
                                   .max_depth = 11,
                                   .branch_prob = 0.7,
                                   .num_features = 10,
                                   .num_classes = classes,
                                   .seed = 91})),
        hier(HierarchicalForest::build(forest, HierConfig{.subtree_depth = 5})),
        calibration(make_random_queries(2000, 10, 92)) {}
};

TEST(Quantized, NodeIsFourBytes) {
  static_assert(sizeof(QuantizedHierarchicalForest::Node) == 4);
}

TEST(Quantized, HalvesNodeStorage) {
  const Fixture fx;
  const auto q = QuantizedHierarchicalForest::build(fx.hier, fx.calibration);
  // Float layout: 8 bytes per stored node (feature_id + value arrays).
  EXPECT_EQ(q.node_bytes() * 2, fx.hier.feature_id().size() * 8);
}

TEST(Quantized, HighAgreementWithFloatLayout) {
  const Fixture fx;
  const auto q = QuantizedHierarchicalForest::build(fx.hier, fx.calibration);
  const Dataset queries = make_random_queries(3000, 10, 93);
  // 16-bit grids leave only hairline disagreement at threshold boundaries.
  EXPECT_GT(q.agreement(fx.hier, queries), 0.995);
}

TEST(Quantized, MulticlassAgreementHolds) {
  const Fixture fx(5);
  const auto q = QuantizedHierarchicalForest::build(fx.hier, fx.calibration);
  EXPECT_EQ(q.num_classes(), 5);
  const Dataset queries = make_random_queries(2000, 10, 94);
  EXPECT_GT(q.agreement(fx.hier, queries), 0.99);
}

TEST(Quantized, QueryQuantizationIsMonotone) {
  const Fixture fx;
  const auto q = QuantizedHierarchicalForest::build(fx.hier, fx.calibration);
  std::vector<float> a(10, 0.2f), b(10, 0.8f);
  std::vector<std::uint16_t> ca(10), cb(10);
  q.quantize_query(a, ca);
  q.quantize_query(b, cb);
  for (std::size_t f = 0; f < 10; ++f) EXPECT_LT(ca[f], cb[f]);
}

TEST(Quantized, OutOfRangeQueriesClampInsteadOfWrapping) {
  const Fixture fx;
  const auto q = QuantizedHierarchicalForest::build(fx.hier, fx.calibration);
  std::vector<float> low(10, -100.f), high(10, 100.f);
  std::vector<std::uint16_t> cl(10), ch(10);
  q.quantize_query(low, cl);
  q.quantize_query(high, ch);
  for (std::size_t f = 0; f < 10; ++f) {
    EXPECT_EQ(cl[f], 0);
    EXPECT_EQ(ch[f], 65'535);
  }
  // And classification still terminates with a valid class.
  EXPECT_LT(q.classify(low), 2);
}

TEST(Quantized, ValidatesInputs) {
  const Fixture fx;
  const Dataset wrong = make_random_queries(10, 3, 1);
  EXPECT_THROW(QuantizedHierarchicalForest::build(fx.hier, wrong), ConfigError);
  const auto q = QuantizedHierarchicalForest::build(fx.hier, fx.calibration);
  const std::vector<float> narrow(3, 0.f);
  EXPECT_THROW(q.classify(narrow), ConfigError);
}

TEST(Quantized, ThresholdsRemainRepresentableOutsideCalibrationRange) {
  // A model threshold beyond the calibration range must still be encoded
  // (build() widens the per-feature range with the model's thresholds).
  std::vector<TreeNode> nodes(3);
  nodes[0] = {0, 5.0f, 1, 2};  // threshold 5.0 >> calibration range [0,1)
  nodes[1] = {kLeafFeature, 0.f, -1, -1};
  nodes[2] = {kLeafFeature, 1.f, -1, -1};
  std::vector<DecisionTree> trees;
  trees.emplace_back(std::move(nodes));
  const Forest f(std::move(trees), 2);
  const auto h = HierarchicalForest::build(f, HierConfig{.subtree_depth = 4});
  const Dataset cal = make_random_queries(100, 2, 7);
  const auto q = QuantizedHierarchicalForest::build(h, cal);
  // Queries in [0,1) are all far below the threshold -> class A everywhere.
  for (int i = 0; i < 50; ++i) {
    const float row[2] = {static_cast<float>(i) / 50.f, 0.5f};
    EXPECT_EQ(q.classify(row), h.classify(row));
  }
}

}  // namespace
}  // namespace hrf
