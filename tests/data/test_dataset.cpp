#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "util/error.hpp"

namespace hrf {
namespace {

Dataset tiny() {
  Dataset ds(4, 2);
  const float rows[4][2] = {{0.f, 1.f}, {2.f, 3.f}, {4.f, 5.f}, {6.f, 7.f}};
  const std::uint8_t labels[4] = {0, 1, 1, 0};
  for (int i = 0; i < 4; ++i) ds.push_back(rows[i], labels[i]);
  ds.set_name("tiny");
  return ds;
}

TEST(Dataset, PushBackAndAccess) {
  const Dataset ds = tiny();
  EXPECT_EQ(ds.num_samples(), 4u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_FLOAT_EQ(ds.sample(1)[0], 2.f);
  EXPECT_FLOAT_EQ(ds.sample(3)[1], 7.f);
  EXPECT_EQ(ds.label(2), 1);
}

TEST(Dataset, RejectsZeroFeatures) {
  EXPECT_THROW(Dataset(1, 0), ConfigError);
}

TEST(Dataset, RejectsWrongRowWidth) {
  Dataset ds(1, 3);
  const float row[2] = {1.f, 2.f};
  EXPECT_THROW(ds.push_back(row, 0), ConfigError);
}

TEST(Dataset, RejectsNonBinaryLabel) {
  Dataset ds(1, 1);
  const float row[1] = {1.f};
  EXPECT_THROW(ds.push_back(row, 2), ConfigError);
}

TEST(Dataset, PositiveFraction) {
  EXPECT_DOUBLE_EQ(tiny().positive_fraction(), 0.5);
  Dataset empty(0, 1);
  EXPECT_DOUBLE_EQ(empty.positive_fraction(), 0.0);
}

TEST(Dataset, SplitHalvesPreserveOrderAndContent) {
  const auto [train, test] = tiny().split(0.5);
  EXPECT_EQ(train.num_samples(), 2u);
  EXPECT_EQ(test.num_samples(), 2u);
  EXPECT_FLOAT_EQ(train.sample(0)[0], 0.f);
  EXPECT_FLOAT_EQ(test.sample(0)[0], 4.f);
  EXPECT_EQ(test.label(1), 0);
}

TEST(Dataset, SplitUnevenFraction) {
  const auto [train, test] = tiny().split(0.75);
  EXPECT_EQ(train.num_samples(), 3u);
  EXPECT_EQ(test.num_samples(), 1u);
}

TEST(Dataset, SplitRejectsDegenerateFractions) {
  EXPECT_THROW(tiny().split(0.0), ConfigError);
  EXPECT_THROW(tiny().split(1.0), ConfigError);
}

TEST(Dataset, SplitNamesHalves) {
  const auto [train, test] = tiny().split();
  EXPECT_EQ(train.name(), "tiny/train");
  EXPECT_EQ(test.name(), "tiny/test");
}

TEST(Dataset, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/hrf_ds_roundtrip.hrfd";
  const Dataset ds = tiny();
  ds.save(path);
  const Dataset loaded = Dataset::load(path);
  EXPECT_EQ(loaded.num_samples(), ds.num_samples());
  EXPECT_EQ(loaded.num_features(), ds.num_features());
  EXPECT_EQ(loaded.name(), "tiny");
  for (std::size_t i = 0; i < ds.num_samples(); ++i) {
    EXPECT_EQ(loaded.label(i), ds.label(i));
    for (std::size_t f = 0; f < ds.num_features(); ++f) {
      EXPECT_FLOAT_EQ(loaded.sample(i)[f], ds.sample(i)[f]);
    }
  }
  std::remove(path.c_str());
}

TEST(Dataset, LoadMissingFileThrows) {
  EXPECT_THROW(Dataset::load("/nonexistent/no.hrfd"), Error);
}

TEST(Dataset, LoadRejectsBadMagic) {
  const std::string path = testing::TempDir() + "/hrf_ds_badmagic.hrfd";
  std::ofstream(path, std::ios::binary) << "NOT A DATASET FILE AT ALL......";
  EXPECT_THROW(Dataset::load(path), FormatError);
  std::remove(path.c_str());
}

TEST(Dataset, LoadRejectsTruncatedFile) {
  const std::string path = testing::TempDir() + "/hrf_ds_trunc.hrfd";
  tiny().save(path);
  // Truncate the file to cut into the feature payload.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary) << bytes.substr(0, bytes.size() - 8);
  EXPECT_THROW(Dataset::load(path), FormatError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hrf
