#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace hrf {
namespace {

SyntheticSpec small_spec() {
  SyntheticSpec s;
  s.num_samples = 5000;
  s.num_features = 8;
  s.num_relevant = 6;
  s.teacher_depth = 8;
  s.mass_floor = 0.01;
  s.label_noise = 0.1;
  s.seed = 3;
  return s;
}

TEST(TeacherTree, RespectsDepthCap) {
  const TeacherTree t = TeacherTree::build(small_spec());
  EXPECT_LE(t.depth(), 8);
  EXPECT_GE(t.depth(), 2);
  EXPECT_GT(t.node_count(), 3u);
}

TEST(TeacherTree, NodesAreWellFormed) {
  const TeacherTree t = TeacherTree::build(small_spec());
  for (const auto& n : t.nodes()) {
    if (n.feature >= 0) {
      EXPECT_LT(n.feature, 8);
      EXPECT_GE(n.left, 0);
      EXPECT_GE(n.right, 0);
      EXPECT_LT(static_cast<std::size_t>(n.left), t.node_count());
      EXPECT_LT(static_cast<std::size_t>(n.right), t.node_count());
      EXPECT_GT(n.threshold, 0.0f);
      EXPECT_LT(n.threshold, 1.0f);
    } else {
      EXPECT_LE(n.leaf_label, 1);
    }
  }
}

TEST(TeacherTree, DeterministicUnderSeed) {
  const TeacherTree a = TeacherTree::build(small_spec());
  const TeacherTree b = TeacherTree::build(small_spec());
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.nodes()[i].feature, b.nodes()[i].feature);
    EXPECT_FLOAT_EQ(a.nodes()[i].threshold, b.nodes()[i].threshold);
  }
}

TEST(TeacherTree, ClassifyReachesLeaves) {
  const TeacherTree t = TeacherTree::build(small_spec());
  const std::vector<float> low(8, 0.01f);
  const std::vector<float> high(8, 0.99f);
  EXPECT_LE(t.classify(low), 1);
  EXPECT_LE(t.classify(high), 1);
}

TEST(MakeSynthetic, DimensionsMatchSpec) {
  const Dataset ds = make_synthetic(small_spec());
  EXPECT_EQ(ds.num_samples(), 5000u);
  EXPECT_EQ(ds.num_features(), 8u);
}

TEST(MakeSynthetic, DeterministicUnderSeed) {
  const Dataset a = make_synthetic(small_spec());
  const Dataset b = make_synthetic(small_spec());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_FLOAT_EQ(a.sample(i)[0], b.sample(i)[0]);
  }
}

TEST(MakeSynthetic, DifferentSeedsDiffer) {
  SyntheticSpec s1 = small_spec();
  SyntheticSpec s2 = small_spec();
  s2.seed = 4;
  const Dataset a = make_synthetic(s1);
  const Dataset b = make_synthetic(s2);
  int diff = 0;
  for (std::size_t i = 0; i < 100; ++i) diff += a.label(i) != b.label(i);
  EXPECT_GT(diff, 0);
}

TEST(MakeSynthetic, LabelsRoughlyBalanced) {
  const Dataset ds = make_synthetic(small_spec());
  EXPECT_GT(ds.positive_fraction(), 0.15);
  EXPECT_LT(ds.positive_fraction(), 0.85);
}

TEST(MakeSynthetic, NoiseFlipsApproximatelyTheStatedFraction) {
  SyntheticSpec clean = small_spec();
  clean.label_noise = 0.0;
  SyntheticSpec noisy = clean;
  noisy.label_noise = 0.25;
  const Dataset a = make_synthetic(clean);
  const Dataset b = make_synthetic(noisy);
  // Same seed => same features & teacher; only the flips differ.
  std::size_t flips = 0;
  for (std::size_t i = 0; i < a.num_samples(); ++i) flips += a.label(i) != b.label(i);
  const double rate = static_cast<double>(flips) / static_cast<double>(a.num_samples());
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(MakeSynthetic, RelevantFeaturesAreUnitInterval) {
  const Dataset ds = make_synthetic(small_spec());
  for (std::size_t i = 0; i < 500; ++i) {
    for (int f = 0; f < 6; ++f) {
      ASSERT_GE(ds.sample(i)[f], 0.0f);
      ASSERT_LT(ds.sample(i)[f], 1.0f);
    }
  }
}

TEST(MakeSynthetic, IrrelevantFeaturesAreGaussianish) {
  const Dataset ds = make_synthetic(small_spec());
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < ds.num_samples(); ++i) {
    const float v = ds.sample(i)[7];  // feature 7 > num_relevant-1
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(ds.num_samples());
  EXPECT_NEAR(sum / n, 0.0, 0.06);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(MakeSynthetic, SpecValidation) {
  SyntheticSpec s = small_spec();
  s.num_relevant = 99;
  EXPECT_THROW(make_synthetic(s), ConfigError);
  s = small_spec();
  s.teacher_depth = 0;
  EXPECT_THROW(make_synthetic(s), ConfigError);
  s = small_spec();
  s.label_noise = 0.7;
  EXPECT_THROW(make_synthetic(s), ConfigError);
  s = small_spec();
  s.num_samples = 1;
  EXPECT_THROW(make_synthetic(s), ConfigError);
}

TEST(PaperSpecs, MatchTable1FeatureCounts) {
  EXPECT_EQ(covertype_like_spec(1000).num_features, 54);
  EXPECT_EQ(susy_like_spec(1000).num_features, 18);
  EXPECT_EQ(higgs_like_spec(1000).num_features, 28);
}

TEST(PaperSpecs, GeneratorsProduceNamedDatasets) {
  EXPECT_EQ(make_covertype_like(100).name(), "covertype-like");
  EXPECT_EQ(make_susy_like(100).name(), "susy-like");
  EXPECT_EQ(make_higgs_like(100).name(), "higgs-like");
}

TEST(RandomQueries, ShapeAndRange) {
  const Dataset q = make_random_queries(1000, 5);
  EXPECT_EQ(q.num_samples(), 1000u);
  EXPECT_EQ(q.num_features(), 5u);
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t f = 0; f < 5; ++f) {
      ASSERT_GE(q.sample(i)[f], 0.0f);
      ASSERT_LT(q.sample(i)[f], 1.0f);
    }
    ASSERT_EQ(q.label(i), 0);
  }
}

TEST(RandomQueries, Validation) {
  EXPECT_THROW(make_random_queries(0, 5), ConfigError);
  EXPECT_THROW(make_random_queries(5, 0), ConfigError);
}

}  // namespace
}  // namespace hrf
