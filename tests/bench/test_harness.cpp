#include "bench/harness.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/error.hpp"

namespace hrf::bench {
namespace {

SweepOptions tiny_sweep() {
  SweepOptions opt;
  opt.variants = {Variant::Hybrid};
  opt.backends = {Backend::FpgaSim};  // simulated -> deterministic numbers
  opt.batch_sizes = {32};
  opt.warmup_runs = 0;
  opt.repeat_runs = 2;
  opt.forest.num_trees = 5;
  opt.forest.max_depth = 6;
  opt.forest.num_features = 8;
  return opt;
}

TEST(BenchHarness, NameMappingsRoundTrip) {
  for (const Variant v : {Variant::Csr, Variant::Independent, Variant::Collaborative,
                          Variant::Hybrid, Variant::FilBaseline}) {
    EXPECT_EQ(variant_from_name(to_string(v)), v);
  }
  for (const Backend b : {Backend::CpuNative, Backend::GpuSim, Backend::FpgaSim}) {
    EXPECT_EQ(backend_from_name(to_string(b)), b);
  }
  EXPECT_EQ(backend_from_name("cpu"), Backend::CpuNative);  // CLI alias
  EXPECT_EQ(variant_from_name("fil"), Variant::FilBaseline);
  EXPECT_THROW(backend_from_name("tpu"), ConfigError);
  EXPECT_THROW(variant_from_name("quantum"), ConfigError);
}

TEST(BenchHarness, SweepSkipsInvalidCombos) {
  SweepOptions opt = tiny_sweep();
  opt.variants = {Variant::Csr, Variant::Independent, Variant::Collaborative, Variant::Hybrid};
  opt.backends = {Backend::CpuNative, Backend::FpgaSim};
  const BenchReport report = run_sweep(opt);
  // cpu-native supports csr+independent only; fpga-sim supports all four.
  EXPECT_EQ(report.cases.size(), 6u);
  for (const CaseResult& c : report.cases) {
    EXPECT_FALSE(c.backend == "cpu-native" &&
                 (c.variant == "collaborative" || c.variant == "hybrid"))
        << c.key();
  }
}

TEST(BenchHarness, CasesCarryPopulatedMetrics) {
  const BenchReport report = run_sweep(tiny_sweep());
  ASSERT_EQ(report.cases.size(), 1u);
  const CaseResult& c = report.cases[0];
  EXPECT_EQ(c.key(), "hybrid/fpga-sim/32");
  EXPECT_TRUE(c.simulated);
  EXPECT_EQ(c.repeats, 2);
  EXPECT_GT(c.p50_ns_per_query, 0.0);
  EXPECT_GE(c.p95_ns_per_query, c.p50_ns_per_query);
  EXPECT_GE(c.p99_ns_per_query, c.p95_ns_per_query);
  EXPECT_GE(c.max_ns_per_query, c.p99_ns_per_query);
  EXPECT_GT(c.throughput_qps, 0.0);
  EXPECT_FALSE(report.env.compiler.empty());
  EXPECT_GT(report.env.omp_max_threads, 0);
  EXPECT_NE(report.env.timestamp_utc.find("T"), std::string::npos);
}

TEST(BenchHarness, SimulatedSweepIsDeterministic) {
  const BenchReport a = run_sweep(tiny_sweep());
  const BenchReport b = run_sweep(tiny_sweep());
  ASSERT_EQ(a.cases.size(), b.cases.size());
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    EXPECT_EQ(a.cases[i].p95_ns_per_query, b.cases[i].p95_ns_per_query) << a.cases[i].key();
    EXPECT_EQ(a.cases[i].throughput_qps, b.cases[i].throughput_qps) << a.cases[i].key();
  }
}

TEST(BenchHarness, JsonRoundTripPreservesReport) {
  const BenchReport report = run_sweep(tiny_sweep());
  const BenchReport back = report_from_json(to_json(report));
  ASSERT_EQ(back.cases.size(), report.cases.size());
  EXPECT_EQ(back.schema_version, kSchemaVersion);
  EXPECT_EQ(back.env.hostname, report.env.hostname);
  EXPECT_EQ(back.warmup_runs, report.warmup_runs);
  EXPECT_EQ(back.repeat_runs, report.repeat_runs);
  EXPECT_EQ(back.forest.num_trees, report.forest.num_trees);
  EXPECT_EQ(back.cases[0].key(), report.cases[0].key());
  EXPECT_EQ(back.cases[0].p95_ns_per_query, report.cases[0].p95_ns_per_query);
  EXPECT_EQ(back.cases[0].simulated, report.cases[0].simulated);
}

TEST(BenchHarness, SaveLoadRoundTrips) {
  const BenchReport report = run_sweep(tiny_sweep());
  const std::string path = testing::TempDir() + "/hrf_bench_roundtrip.json";
  save_report(report, path);
  const BenchReport back = load_report(path);
  EXPECT_EQ(back.cases.size(), report.cases.size());
  EXPECT_EQ(back.cases[0].p99_ns_per_query, report.cases[0].p99_ns_per_query);
  std::remove(path.c_str());
}

TEST(BenchHarness, SchemaMismatchesAreRejected) {
  const BenchReport report = run_sweep(tiny_sweep());
  json::Value wrong_version = to_json(report);
  wrong_version["schema_version"] = kSchemaVersion + 1;
  EXPECT_THROW(report_from_json(wrong_version), FormatError);

  json::Value wrong_schema = to_json(report);
  wrong_schema["schema"] = "not-a-bench";
  EXPECT_THROW(report_from_json(wrong_schema), FormatError);

  json::Value missing = to_json(report);
  missing["cases"] = json::Value::array();
  EXPECT_EQ(report_from_json(missing).cases.size(), 0u);  // empty is valid
}

BenchReport two_case_report() {
  BenchReport r;
  CaseResult a;
  a.variant = "hybrid";
  a.backend = "gpu-sim";
  a.batch = 64;
  a.p95_ns_per_query = 100.0;
  CaseResult b = a;
  b.backend = "fpga-sim";
  b.p95_ns_per_query = 200.0;
  r.cases = {a, b};
  return r;
}

TEST(BenchHarness, TraceOverheadRoundTripsThroughJson) {
  BenchReport report = run_sweep(tiny_sweep());
  TraceOverheadResult t;
  t.requests = 200;
  t.batch = 1024;
  t.p95_off_ns = 500'000.0;
  t.p95_on_ns = 510'000.0;
  t.ratio = 1.02;
  report.trace_overhead = t;
  const BenchReport back = report_from_json(to_json(report));
  ASSERT_TRUE(back.trace_overhead.has_value());
  EXPECT_EQ(back.trace_overhead->requests, 200u);
  EXPECT_EQ(back.trace_overhead->batch, 1024u);
  EXPECT_DOUBLE_EQ(back.trace_overhead->p95_on_ns, 510'000.0);
  EXPECT_DOUBLE_EQ(back.trace_overhead->ratio, 1.02);

  // A report without the case stays readable (older baselines).
  report.trace_overhead.reset();
  EXPECT_FALSE(report_from_json(to_json(report)).trace_overhead.has_value());
}

TEST(BenchHarness, MeasureTraceOverheadProducesSaneNumbers) {
  TraceOverheadOptions opt;
  opt.requests = 8;  // smoke-scale; the real gate runs via ctest -L bench
  opt.batch = 64;
  opt.num_workers = 1;
  opt.chunk_size = 32;
  opt.forest.num_trees = 4;
  opt.forest.max_depth = 5;
  opt.forest.num_features = 8;
  const TraceOverheadResult r = measure_trace_overhead(opt);
  EXPECT_EQ(r.requests, 8u);
  EXPECT_GT(r.p95_off_ns, 0.0);
  EXPECT_GT(r.p95_on_ns, 0.0);
  EXPECT_GT(r.ratio, 0.0);
}

TEST(BenchHarness, AuditOverheadRoundTripsThroughJson) {
  BenchReport report = run_sweep(tiny_sweep());
  AuditOverheadResult a;
  a.requests = 200;
  a.batch = 1024;
  a.sample_every = 32;
  a.p95_off_ns = 500'000.0;
  a.p95_on_ns = 515'000.0;
  a.ratio = 1.03;
  report.audit_overhead = a;
  const BenchReport back = report_from_json(to_json(report));
  ASSERT_TRUE(back.audit_overhead.has_value());
  EXPECT_EQ(back.audit_overhead->requests, 200u);
  EXPECT_EQ(back.audit_overhead->batch, 1024u);
  EXPECT_EQ(back.audit_overhead->sample_every, 32u);
  EXPECT_DOUBLE_EQ(back.audit_overhead->p95_on_ns, 515'000.0);
  EXPECT_DOUBLE_EQ(back.audit_overhead->ratio, 1.03);

  // A report without the case stays readable (older baselines).
  report.audit_overhead.reset();
  EXPECT_FALSE(report_from_json(to_json(report)).audit_overhead.has_value());
}

TEST(BenchHarness, MeasureAuditOverheadProducesSaneNumbers) {
  AuditOverheadOptions opt;
  opt.requests = 8;  // smoke-scale; the real gate runs via ctest -L bench
  opt.batch = 64;
  opt.num_workers = 1;
  opt.sample_every = 4;
  opt.forest.num_trees = 4;
  opt.forest.max_depth = 5;
  opt.forest.num_features = 8;
  const AuditOverheadResult r = measure_audit_overhead(opt);
  EXPECT_EQ(r.requests, 8u);
  EXPECT_EQ(r.sample_every, 4u);
  EXPECT_GT(r.p95_off_ns, 0.0);
  EXPECT_GT(r.p95_on_ns, 0.0);
  EXPECT_GT(r.ratio, 0.0);
}

TEST(BenchCompare, IdenticalReportsPass) {
  const BenchReport r = two_case_report();
  const CompareResult cmp = compare_reports(r, r, 0.25);
  EXPECT_TRUE(cmp.passed());
  EXPECT_EQ(cmp.compared, 2);
  EXPECT_TRUE(cmp.regressions.empty());
  EXPECT_TRUE(cmp.missing_cases.empty());
}

TEST(BenchCompare, GrowthWithinTolerancePasses) {
  const BenchReport base = two_case_report();
  BenchReport cur = base;
  cur.cases[0].p95_ns_per_query = 124.0;  // +24% < 25%
  EXPECT_TRUE(compare_reports(base, cur, 0.25).passed());
}

TEST(BenchCompare, RegressionPastToleranceFails) {
  const BenchReport base = two_case_report();
  BenchReport cur = base;
  cur.cases[1].p95_ns_per_query = 260.0;  // +30% > 25%
  const CompareResult cmp = compare_reports(base, cur, 0.25);
  EXPECT_FALSE(cmp.passed());
  ASSERT_EQ(cmp.regressions.size(), 1u);
  EXPECT_EQ(cmp.regressions[0].key, "hybrid/fpga-sim/64");
  EXPECT_NEAR(cmp.regressions[0].ratio, 1.3, 1e-9);
}

TEST(BenchCompare, TraceOverheadGateTripsPastTolerance) {
  const BenchReport base = two_case_report();
  BenchReport cur = base;
  TraceOverheadResult t;
  t.p95_off_ns = 100'000.0;
  t.p95_on_ns = 108'000.0;
  t.ratio = 1.08;  // 8% > 5% default
  cur.trace_overhead = t;
  const CompareResult cmp = compare_reports(base, cur, 0.25);
  EXPECT_FALSE(cmp.passed());
  EXPECT_FALSE(cmp.trace_overhead_ok);
  EXPECT_NEAR(cmp.trace_overhead_ratio, 1.08, 1e-12);
  // Within a widened tolerance the same report passes.
  EXPECT_TRUE(compare_reports(base, cur, 0.25, 0.10).passed());
}

TEST(BenchCompare, TraceOverheadAbsentOrWithinToleranceIsOk) {
  const BenchReport base = two_case_report();
  EXPECT_TRUE(compare_reports(base, base, 0.25).trace_overhead_ok);
  BenchReport cur = base;
  TraceOverheadResult t;
  t.ratio = 1.03;
  cur.trace_overhead = t;
  const CompareResult cmp = compare_reports(base, cur, 0.25);
  EXPECT_TRUE(cmp.trace_overhead_ok);
  EXPECT_TRUE(cmp.passed());
}

TEST(BenchCompare, AuditOverheadGateTripsPastTolerance) {
  const BenchReport base = two_case_report();
  BenchReport cur = base;
  AuditOverheadResult a;
  a.p95_off_ns = 100'000.0;
  a.p95_on_ns = 109'000.0;
  a.ratio = 1.09;  // 9% > 5% default
  cur.audit_overhead = a;
  const CompareResult cmp = compare_reports(base, cur, 0.25);
  EXPECT_FALSE(cmp.passed());
  EXPECT_FALSE(cmp.audit_overhead_ok);
  EXPECT_NEAR(cmp.audit_overhead_ratio, 1.09, 1e-12);
  // Within a widened tolerance the same report passes.
  EXPECT_TRUE(compare_reports(base, cur, 0.25, 0.10).passed());
}

TEST(BenchCompare, AuditOverheadAbsentOrWithinToleranceIsOk) {
  const BenchReport base = two_case_report();
  EXPECT_TRUE(compare_reports(base, base, 0.25).audit_overhead_ok);
  BenchReport cur = base;
  AuditOverheadResult a;
  a.ratio = 1.02;
  cur.audit_overhead = a;
  const CompareResult cmp = compare_reports(base, cur, 0.25);
  EXPECT_TRUE(cmp.audit_overhead_ok);
  EXPECT_TRUE(cmp.passed());
}

TEST(BenchCompare, ImprovementNeverFails) {
  const BenchReport base = two_case_report();
  BenchReport cur = base;
  cur.cases[0].p95_ns_per_query = 1.0;
  EXPECT_TRUE(compare_reports(base, cur, 0.0).passed());
}

TEST(BenchCompare, MissingCaseFailsNewCaseDoesNot) {
  const BenchReport base = two_case_report();
  BenchReport cur = base;
  cur.cases.pop_back();
  CaseResult extra;
  extra.variant = "csr";
  extra.backend = "cpu-native";
  extra.batch = 8;
  extra.p95_ns_per_query = 5.0;
  cur.cases.push_back(extra);
  const CompareResult cmp = compare_reports(base, cur, 0.25);
  EXPECT_FALSE(cmp.passed());
  ASSERT_EQ(cmp.missing_cases.size(), 1u);
  EXPECT_EQ(cmp.missing_cases[0], "hybrid/fpga-sim/64");
  EXPECT_EQ(cmp.compared, 1);
}

}  // namespace
}  // namespace hrf::bench
