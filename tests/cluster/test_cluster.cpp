// ClusterRouter coverage (docs/cluster.md): rendezvous hashing
// properties, policy parsing, oracle-identical answers, failover away
// from a killed shard, partition quarantine + probe-loop recovery,
// hedging against a frozen shard, the crash:route chaos site's exact
// fire counts, staged rolling reload (complete wave, halted wave with
// reverse rollback), and the fleet metrics snapshot's schema contract.
// The whole file also runs under ThreadSanitizer via tools/check.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "obs/exporter.hpp"
#include "serve/model_store.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace hrf::cluster {
namespace {

namespace fs = std::filesystem;

Forest make_forest(std::uint64_t seed = 33) {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 8;
  spec.num_features = 7;
  spec.seed = seed;
  return make_random_forest(spec);
}

ClassifierOptions cpu_options() {
  ClassifierOptions opt;
  opt.backend = Backend::CpuNative;
  opt.variant = Variant::Independent;
  // Failures must reach the router's breaker, not vanish into the
  // in-classifier fallback chain.
  opt.fallback.enabled = false;
  return opt;
}

ClassifierOptions gpu_hybrid_options() {
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.variant = Variant::Hybrid;
  opt.layout.subtree_depth = 4;
  opt.fallback.enabled = false;
  return opt;
}

serve::ServerOptions fast_server(std::size_t workers = 1) {
  serve::ServerOptions s;
  s.num_workers = workers;
  s.queue_capacity = 64;
  s.retry.max_retries = 0;
  s.retry.backoff_base_seconds = 1e-5;
  s.breaker.failure_threshold = 1000;  // in-server breaker off; the router's is under test
  return s;
}

ClusterOptions quiet_cluster(std::size_t shards = 2) {
  ClusterOptions c;
  c.num_shards = shards;
  c.start_probes = false;  // deterministic tests drive recovery by hand
  c.hedge.enabled = false;
  return c;
}

/// First key in [0, 4096) whose rendezvous order starts at `shard`.
std::uint64_t key_for_shard(const ClusterOptions& opts, std::size_t shard) {
  for (std::uint64_t key = 0; key < 4096; ++key) {
    if (rendezvous_order(key, opts.num_shards, opts.hash_salt)[0] == shard) return key;
  }
  ADD_FAILURE() << "no key routes first to shard " << shard;
  return 0;
}

class ClusterTest : public testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().disarm_all(); }
  void TearDown() override { FaultInjector::global().disarm_all(); }

  Forest forest_ = make_forest();
  Dataset queries_ = make_random_queries(32, 7, 5);
  std::vector<std::uint8_t> reference_ =
      forest_.classify_batch(queries_.features(), queries_.num_samples());
};

TEST_F(ClusterTest, RendezvousOrderIsADeterministicPermutation) {
  for (const std::uint64_t key : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    const std::vector<std::size_t> order = rendezvous_order(key, 5, 7);
    EXPECT_EQ(order, rendezvous_order(key, 5, 7)) << "key " << key;
    std::set<std::size_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), 5u) << "key " << key;
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 4u);
  }
  // Different salts re-shuffle the ring (fleet identity matters).
  bool any_differ = false;
  for (std::uint64_t key = 0; key < 32; ++key) {
    any_differ |= rendezvous_order(key, 5, 7) != rendezvous_order(key, 5, 8);
  }
  EXPECT_TRUE(any_differ);
}

TEST_F(ClusterTest, RendezvousRemovalOnlyRemapsKeysThatRankedTheLostShard) {
  // Shrinking 5 -> 4 shards must not move any key whose first choice
  // survives: the minimal-disruption property consistent hashing is for.
  for (std::uint64_t key = 0; key < 256; ++key) {
    const std::vector<std::size_t> with5 = rendezvous_order(key, 5, 0);
    const std::vector<std::size_t> with4 = rendezvous_order(key, 4, 0);
    if (with5[0] != 4) {
      EXPECT_EQ(with4[0], with5[0]) << "key " << key;
    }
  }
}

TEST_F(ClusterTest, RendezvousSubsetCombinedResizeOnlyRemapsAffectedKeys) {
  // The autoscaler resizes by activating/deactivating slot ids, so the
  // property that matters is over arbitrary subsets: after a combined
  // add+remove (drop slot 1, add slots 5 and 6), every key whose old
  // first choice survived must keep it — only keys that ranked the
  // removed slot first, or that a new slot legitimately wins, move.
  const std::vector<std::size_t> before = {0, 1, 2, 3, 4};
  const std::vector<std::size_t> after = {0, 2, 3, 4, 5, 6};
  std::size_t moved_to_new = 0;
  for (std::uint64_t key = 0; key < 1024; ++key) {
    const std::size_t old_first = rendezvous_order_subset(key, before, 9)[0];
    const std::size_t new_first = rendezvous_order_subset(key, after, 9)[0];
    if (new_first == old_first) continue;
    // A remap is only legitimate if the old choice vanished or a new
    // slot outscored it — never a reshuffle among surviving slots.
    EXPECT_TRUE(old_first == 1 || new_first == 5 || new_first == 6)
        << "key " << key << " moved " << old_first << " -> " << new_first;
    if (new_first == 5 || new_first == 6) ++moved_to_new;
  }
  // The new slots actually take a share of the keyspace (they are not
  // just present-but-cold), roughly 2/7 of 1024 keys.
  EXPECT_GT(moved_to_new, 150u);

  // Subset scoring is consistent with the dense ranking: a contiguous
  // prefix subset is exactly the dense order.
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(rendezvous_order_subset(key, before, 3), rendezvous_order(key, 5, 3));
  }
}

TEST_F(ClusterTest, RendezvousSpreadsKeysAcrossShards) {
  std::vector<int> hits(4, 0);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    ++hits[rendezvous_order(key, 4, 0)[0]];
  }
  for (std::size_t s = 0; s < hits.size(); ++s) {
    // Expected 250 per shard; an eighth of the keys is a loose floor that
    // still catches a broken hash collapsing onto one shard.
    EXPECT_GT(hits[s], 125) << "shard " << s;
  }
}

TEST_F(ClusterTest, RoutingPolicyNamesRoundTrip) {
  EXPECT_EQ(routing_policy_from_name("hash"), RoutingPolicy::ConsistentHash);
  EXPECT_EQ(routing_policy_from_name("consistent-hash"), RoutingPolicy::ConsistentHash);
  EXPECT_EQ(routing_policy_from_name("least-loaded"), RoutingPolicy::LeastLoaded);
  EXPECT_STREQ(to_string(RoutingPolicy::ConsistentHash), "consistent-hash");
  EXPECT_STREQ(to_string(RoutingPolicy::LeastLoaded), "least-loaded");
  EXPECT_THROW(routing_policy_from_name("round-robin"), ConfigError);
}

TEST_F(ClusterTest, AnswersMatchTheSingleServerOracleUnderBothPolicies) {
  for (const RoutingPolicy policy : {RoutingPolicy::ConsistentHash, RoutingPolicy::LeastLoaded}) {
    ClusterOptions copt = quiet_cluster(3);
    copt.policy = policy;
    ClusterRouter router(forest_, cpu_options(), fast_server(), copt);
    for (std::uint64_t key = 0; key < 9; ++key) {
      const ClusterResult res = router.query(queries_, {.key = key});
      EXPECT_EQ(res.result.report.predictions, reference_) << to_string(policy);
      EXPECT_EQ(res.failovers, 0);
      EXPECT_FALSE(res.hedged);
    }
    const ClusterStats stats = router.stats();
    EXPECT_EQ(stats.completed, 9u);
    EXPECT_EQ(stats.failed, 0u);
    router.shutdown();
  }
}

TEST_F(ClusterTest, FailoverSkipsAKilledShardAndTheBreakerQuarantinesIt) {
  const ClusterOptions copt = quiet_cluster(2);
  ClusterRouter router(forest_, cpu_options(), fast_server(), copt);
  const std::uint64_t key = key_for_shard(copt, 0);

  router.kill_shard(0);
  // Every request still answers — from the surviving shard.
  for (int i = 0; i < 5; ++i) {
    const ClusterResult res = router.query(queries_, {.key = key});
    EXPECT_EQ(res.shard, 1u);
    EXPECT_EQ(res.result.report.predictions, reference_);
  }
  // Three dispatch failures (breaker threshold) tripped the router-side
  // breaker; later requests skip the corpse without spending an attempt.
  EXPECT_EQ(router.shard_breaker_state(0), serve::CircuitState::Open);
  EXPECT_EQ(router.available_shards(), 1u);
  const ClusterStats stats = router.stats();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.shard_status[0].failures,
            static_cast<std::uint64_t>(copt.shard_breaker.failure_threshold));
  EXPECT_FALSE(stats.shard_status[0].alive);
}

TEST_F(ClusterTest, PartitionQuarantinesAndTheProbeLoopHeals) {
  ClusterOptions copt = quiet_cluster(2);
  copt.start_probes = true;
  copt.probe_interval_seconds = 0.005;
  copt.shard_breaker.failure_threshold = 2;
  copt.shard_breaker.open_seconds = 0.02;
  ClusterRouter router(forest_, cpu_options(), fast_server(), copt);
  const std::uint64_t key = key_for_shard(copt, 0);

  router.set_partitioned(0, true);
  // The probe loop alone must discover the partition and trip the breaker.
  WallTimer t;
  while (router.shard_breaker_state(0) != serve::CircuitState::Open && t.seconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(router.shard_breaker_state(0), serve::CircuitState::Open);

  // Clients keep getting answers from the healthy shard meanwhile.
  EXPECT_EQ(router.query(queries_, {.key = key}).result.report.predictions, reference_);

  router.set_partitioned(0, false);
  // ... and the probe loop alone must bring the shard back (Open ->
  // HalfOpen probe -> success -> Closed), no client traffic required.
  t.reset();
  while (router.shard_breaker_state(0) != serve::CircuitState::Closed && t.seconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(router.shard_breaker_state(0), serve::CircuitState::Closed);
  const ClusterResult res = router.query(queries_, {.key = key});
  EXPECT_EQ(res.shard, 0u);
  const ClusterStats stats = router.stats();
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GT(stats.probe_failures, 0u);
}

TEST_F(ClusterTest, HedgeFiresOnAFrozenShardAndWins) {
  ClusterOptions copt = quiet_cluster(2);
  copt.hedge.enabled = true;
  copt.hedge.min_seconds = 0.005;
  serve::ServerOptions sopt = fast_server();
  sopt.inject_freeze_seconds = 0.3;
  ClusterRouter router(forest_, cpu_options(), sopt, copt);
  const std::uint64_t key = key_for_shard(copt, 0);

  // One charge: exactly the first client dispatch's worker stalls.
  FaultInjector::global().arm_spec("freeze:shard");
  const ClusterResult res = router.query(queries_, {.key = key});
  EXPECT_TRUE(res.hedged);
  EXPECT_TRUE(res.hedge_won);
  EXPECT_EQ(res.shard, 1u);
  EXPECT_EQ(res.result.report.predictions, reference_);
  const ClusterStats stats = router.stats();
  EXPECT_EQ(stats.hedged, 1u);
  EXPECT_EQ(stats.hedge_wins, 1u);
  EXPECT_EQ(FaultInjector::global().remaining("freeze:shard"), 0);
}

TEST_F(ClusterTest, CrashRouteFailsExactlyTheArmedDispatches) {
  const ClusterOptions copt = quiet_cluster(2);
  ClusterRouter router(forest_, cpu_options(), fast_server(), copt);
  const std::uint64_t key = key_for_shard(copt, 0);
  const std::uint64_t fired_before = FaultInjector::global().fired("crash:route");

  FaultInjector::global().arm_spec("crash:route");  // one charge
  const ClusterResult res = router.query(queries_, {.key = key});
  // The first dispatch crashed (burning a budget slot and feeding shard
  // 0's breaker); the request still answered from the next candidate.
  EXPECT_EQ(res.shard, 1u);
  EXPECT_EQ(res.result.report.predictions, reference_);
  EXPECT_EQ(FaultInjector::global().fired("crash:route"), fired_before + 1);
  EXPECT_EQ(router.stats().shard_status[0].failures, 1u);

  // Exhausted site: later dispatches fly clean.
  const ClusterResult clean = router.query(queries_, {.key = key});
  EXPECT_EQ(clean.shard, 0u);
  EXPECT_EQ(FaultInjector::global().fired("crash:route"), fired_before + 1);
}

class ClusterReloadTest : public ClusterTest {
 protected:
  void SetUp() override {
    ClusterTest::SetUp();
    dir_ = testing::TempDir() + "/hrf_cluster_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    store_.emplace(serve::ModelStore::open(dir_));
    HierConfig cfg;
    cfg.subtree_depth = 4;
    store_->publish(forest_, HierarchicalForest::build(forest_, cfg), "gen1");
  }
  void TearDown() override {
    store_.reset();
    fs::remove_all(dir_);
    ClusterTest::TearDown();
  }

  std::uint64_t publish_gen2() {
    HierConfig cfg;
    cfg.subtree_depth = 4;
    return store_->publish(forest_, HierarchicalForest::build(forest_, cfg), "gen2");
  }

  RollingReloadOptions quick_wave(std::uint64_t canary = 0) const {
    RollingReloadOptions r;
    r.reload.shadow_queries = 32;
    r.reload.canary_success_requests = canary;
    r.reload.post_promotion_watch_requests = 0;
    return r;
  }

  std::string dir_;
  std::optional<serve::ModelStore> store_;
};

TEST_F(ClusterReloadTest, RollingReloadPromotesEveryShardInOrder) {
  ClusterRouter router(*store_, gpu_hybrid_options(), fast_server(), quiet_cluster(3));
  const std::uint64_t gen2 = publish_gen2();

  const RollingReloadReport rep = router.rolling_reload(*store_, gen2, quick_wave());
  EXPECT_TRUE(rep.completed) << rep.to_string();
  EXPECT_TRUE(rep.rollbacks.empty());
  ASSERT_EQ(rep.shards.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(rep.shards[s].shard, s);  // wave order is index order
    EXPECT_EQ(router.shard(s).generation(), gen2);
  }
  // Predictions stay bit-identical across the fleet-wide swap.
  EXPECT_EQ(router.query(queries_, {.key = 1}).result.report.predictions, reference_);
  const ClusterStats stats = router.stats();
  EXPECT_EQ(stats.reload_waves, 1u);
  EXPECT_EQ(stats.reload_waves_halted, 0u);
}

TEST_F(ClusterReloadTest, HaltedWaveRollsBackThePromotedPrefixInReverse) {
  ClusterRouter router(*store_, gpu_hybrid_options(), fast_server(), quiet_cluster(3));
  const std::uint64_t gen2 = publish_gen2();
  router.kill_shard(2);

  // Canary > 0 so the dead shard must prove itself with traffic — which a
  // shut-down server never can. Client pumps feed the live canaries.
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    for (std::uint64_t key = 0; !stop.load(std::memory_order_acquire); ++key) {
      try {
        (void)router.query(queries_, {.key = key % 64});
      } catch (const Error&) {
      }
    }
  });
  const RollingReloadReport rep =
      router.rolling_reload(*store_, gen2, quick_wave(/*canary=*/1));
  stop.store(true, std::memory_order_release);
  pump.join();

  EXPECT_FALSE(rep.completed) << rep.to_string();
  EXPECT_NE(rep.reason.find("shard 2"), std::string::npos) << rep.reason;
  ASSERT_EQ(rep.shards.size(), 3u);
  // Reverse-order rollback: most recently promoted shard reverts first.
  ASSERT_EQ(rep.rollbacks.size(), 2u);
  EXPECT_EQ(rep.rollbacks[0].shard, 1u);
  EXPECT_EQ(rep.rollbacks[1].shard, 0u);
  EXPECT_EQ(router.shard(0).generation(), 1u);
  EXPECT_EQ(router.shard(1).generation(), 1u);
  const ClusterStats stats = router.stats();
  EXPECT_EQ(stats.reload_waves_halted, 1u);
  EXPECT_EQ(stats.shard_rollbacks, 2u);
}

TEST_F(ClusterTest, MetricsSnapshotPassesTheSchemaGate) {
  ClusterRouter router(forest_, cpu_options(), fast_server(), quiet_cluster(2));
  for (std::uint64_t key = 0; key < 4; ++key) (void)router.query(queries_, {.key = key});

  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  ASSERT_EQ(snap.shards.size(), 2u);
  EXPECT_NO_THROW(obs::check_metrics_schema(obs::to_prometheus(snap),
                                            obs::snapshot_to_json(snap).dump(2)));
  // Fleet counters roll up the shard counters plus the router's own.
  EXPECT_EQ(snap.counters.at("cluster.submitted"), 4u);
  EXPECT_EQ(snap.counters.at("cluster.completed"), 4u);
  EXPECT_GE(snap.counters.at("requests.submitted"), 4u);
  EXPECT_EQ(snap.gauges.at("cluster_shards"), 2.0);
  EXPECT_EQ(snap.gauges.at("cluster_shards_available"), 2.0);
}

TEST_F(ClusterTest, TenantQuotaShedPropagatesWithoutFeedingTheBreaker) {
  serve::ServerOptions so = fast_server();
  so.queue_capacity = 2;        // 1 reserved slot per tenant, no spare
  so.start_paused = true;       // nothing dequeues until resume()
  so.quotas.tenants = {{"victim", 1.0}, {"surger", 1.0}};
  ClusterRouter router(forest_, cpu_options(), so, quiet_cluster(1));

  QueryOptions surge;
  surge.tenant = "surger";
  std::thread surge_thread([&] { (void)router.query(queries_, surge); });
  WallTimer t;
  while (router.shard(0).queue_depth() < 1 && t.seconds() < 5.0) std::this_thread::yield();
  ASSERT_EQ(router.shard(0).queue_depth(), 1u);

  // The surger's second request finds its reserved share and the (empty)
  // spare pool exhausted: the quota-specific error reaches the client.
  EXPECT_THROW(router.query(queries_, surge), QuotaError);
  EXPECT_EQ(router.stats().quota_shed, 1u);
  // Quota shedding is not shard sickness: no breaker verdict, no failover.
  EXPECT_EQ(router.shard_breaker_state(0), serve::CircuitState::Closed);
  EXPECT_EQ(router.stats().failovers, 0u);

  // The victim's reserved slot is untouched by the surge.
  QueryOptions victim;
  victim.tenant = "victim";
  std::thread victim_thread([&] { (void)router.query(queries_, victim); });
  while (router.shard(0).queue_depth() < 2 && t.seconds() < 5.0) std::this_thread::yield();
  router.shard(0).resume();
  surge_thread.join();
  victim_thread.join();
  EXPECT_EQ(router.stats().completed, 2u);

  // The shed shows up per tenant in the fleet snapshot.
  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  ASSERT_EQ(snap.tenants.size(), 2u);
  EXPECT_EQ(snap.tenants[1].name, "surger");
  EXPECT_EQ(snap.tenants[1].shed, 1u);
  EXPECT_EQ(snap.counters.at("cluster.quota_shed"), 1u);
  EXPECT_NO_THROW(obs::check_metrics_schema(obs::to_prometheus(snap),
                                            obs::snapshot_to_json(snap).dump(2)));
  router.shutdown();
}

TEST_F(ClusterTest, ShedThenServedRequestRecordsAQuotaDegradation) {
  serve::ServerOptions so = fast_server();
  so.queue_capacity = 2;   // 1 reserved slot per tenant, no spare
  so.start_paused = true;  // nothing dequeues until resume()
  so.quotas.tenants = {{"victim", 1.0}, {"surger", 1.0}};
  const ClusterOptions co = quiet_cluster(2);
  ClusterRouter router(forest_, cpu_options(), so, co);
  router.shard(1).resume();  // only shard 0 holds requests

  // Park a surger request in shard 0's only surger slot.
  QueryOptions surge;
  surge.tenant = "surger";
  surge.key = key_for_shard(co, 0);
  std::thread holder([&] { (void)router.query(queries_, surge); });
  WallTimer t;
  while (router.shard(0).queue_depth() < 1 && t.seconds() < 5.0) std::this_thread::yield();
  ASSERT_EQ(router.shard(0).queue_depth(), 1u);

  // The same tenant's next request sheds at shard 0 and fails over to
  // shard 1, which has a free surger slot: a degraded success, and the
  // trail says quota — distinct from an overload or failover note.
  const ClusterResult res = router.query(queries_, surge);
  EXPECT_EQ(res.shard, 1u);
  ASSERT_TRUE(res.result.report.degraded());
  EXPECT_NE(res.result.report.degradations.back().find("tenant 'surger' quota-shed"),
            std::string::npos)
      << res.result.report.degradations.back();
  EXPECT_EQ(router.stats().quota_shed, 1u);
  EXPECT_EQ(router.stats().failovers, 0u);  // nothing failed, nothing sick

  router.shard(0).resume();
  holder.join();
  router.shutdown();
}

TEST_F(ClusterTest, AdaptiveLimiterRefusesExcessConcurrencyAtTheDoor) {
  serve::ServerOptions so = fast_server();
  so.start_paused = true;
  ClusterOptions copt = quiet_cluster(1);
  copt.limit.enabled = true;
  copt.limit.initial_limit = 2;
  copt.limit.min_limit = 1;
  ClusterRouter router(forest_, cpu_options(), so, copt);

  std::vector<std::thread> in_flight;
  for (int i = 0; i < 2; ++i) {
    in_flight.emplace_back([&] { (void)router.query(queries_); });
  }
  WallTimer t;
  while (router.limiter_in_flight() < 2 && t.seconds() < 5.0) std::this_thread::yield();
  ASSERT_EQ(router.limiter_in_flight(), 2u);
  EXPECT_EQ(router.concurrency_limit(), 2u);

  // Third concurrent request: refused before it touches a shard queue.
  EXPECT_THROW(router.query(queries_), OverloadError);
  EXPECT_EQ(router.stats().limited, 1u);
  EXPECT_EQ(router.stats().submitted, 2u);  // the refusal never counted as submitted

  router.shard(0).resume();
  for (std::thread& th : in_flight) th.join();
  EXPECT_EQ(router.stats().completed, 2u);
  EXPECT_EQ(router.limiter_in_flight(), 0u);

  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  EXPECT_EQ(snap.gauges.at("cluster_concurrency_limit"), 2.0);
  EXPECT_EQ(snap.counters.at("cluster.limited"), 1u);
  router.shutdown();
}

TEST_F(ClusterTest, RouterRequestIdCorrelatesSpansAcrossShardTracers) {
  // Every routed query carries one router-assigned id stamped as the
  // "router_request" attribute on the shard-side root span — the
  // correlation key that stitches a request's spans back together across
  // tracers, including after a failover reroute.
  const ClusterOptions copt = quiet_cluster(2);
  serve::ServerOptions sopt = fast_server();
  sopt.trace_sampling = 1.0;  // record every request on every shard
  ClusterRouter router(forest_, cpu_options(), sopt, copt);
  const std::uint64_t key0 = key_for_shard(copt, 0);
  const std::uint64_t key1 = key_for_shard(copt, 1);

  const ClusterResult r0 = router.query(queries_, {.key = key0});
  const ClusterResult r1 = router.query(queries_, {.key = key1});
  ASSERT_EQ(r0.shard, 0u);
  ASSERT_EQ(r1.shard, 1u);
  EXPECT_NE(r0.request_id, 0u);
  EXPECT_NE(r1.request_id, 0u);
  EXPECT_NE(r0.request_id, r1.request_id);  // fleet-unique, not per-shard

  // Failover: the id assigned at admission survives the reroute, so the
  // surviving shard's trace still correlates with the router's view.
  router.kill_shard(0);
  const ClusterResult rerouted = router.query(queries_, {.key = key0});
  ASSERT_EQ(rerouted.shard, 1u);

  const auto router_request_attr =
      [](const std::shared_ptr<const trace::Trace>& t) -> std::string {
    for (const auto& [key, value] : t->root().attributes) {
      if (key == "router_request") return value;
    }
    return {};
  };
  std::set<std::string> shard0_ids;
  for (const auto& t : router.shard(0).tracer().traces()) {
    shard0_ids.insert(router_request_attr(t));
  }
  std::set<std::string> shard1_ids;
  for (const auto& t : router.shard(1).tracer().traces()) {
    shard1_ids.insert(router_request_attr(t));
  }
  EXPECT_TRUE(shard0_ids.count(std::to_string(r0.request_id)));
  EXPECT_TRUE(shard1_ids.count(std::to_string(r1.request_id)));
  EXPECT_TRUE(shard1_ids.count(std::to_string(rerouted.request_id)));
  // No shard-side trace is missing the correlation attribute.
  EXPECT_FALSE(shard0_ids.count(""));
  EXPECT_FALSE(shard1_ids.count(""));
  router.shutdown();
}

}  // namespace
}  // namespace hrf::cluster
