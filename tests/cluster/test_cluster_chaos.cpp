// Degraded-mode SLO gate (docs/cluster.md): a 4-shard fleet absorbs the
// ISSUE's two acceptance scenarios — a shard killed mid-rolling-reload
// (the wave must halt and roll the promoted prefix back) and a network
// partition that later heals — while concurrent clients keep scoring.
// Each chaos phase must keep aggregate success >= 99% and its
// client-observed p95 within 2x the healthy baseline measured on the
// same fleet, and the final fleet snapshot must still pass the metrics
// schema gate. Labeled "chaos" (ctest -L chaos; also run under TSan by
// tools/check.sh --cluster-chaos) — wall-clock heavy, so not tier1.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/autoscaler.hpp"
#include "cluster/cluster.hpp"
#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "obs/exporter.hpp"
#include "serve/model_store.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace hrf::cluster {
namespace {

namespace fs = std::filesystem;

struct PhaseScore {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double p95_seconds = 0.0;

  double success_rate() const {
    const std::uint64_t total = ok + failed;
    return total > 0 ? static_cast<double>(ok) / static_cast<double>(total) : 0.0;
  }
};

/// Drives `requests` router queries from `clients` threads, timing each
/// at the query() boundary (what a client sees: queueing + execution +
/// failover + hedging).
PhaseScore drive(ClusterRouter& router, const Dataset& queries, std::size_t requests,
                 std::size_t clients, std::uint64_t key_base) {
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests) return;
        WallTimer t;
        try {
          (void)router.query(queries, {.key = key_base + i});
          lat[c].push_back(t.seconds());
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  PhaseScore score;
  score.ok = ok.load();
  score.failed = failed.load();
  if (!all.empty()) {
    score.p95_seconds = all[static_cast<std::size_t>(0.95 * static_cast<double>(all.size() - 1))];
  }
  return score;
}

/// Per-tenant outcome tally: quota sheds and deadline misses are counted
/// apart so the noisy-neighbor gate can assert the surger was rejected
/// by admission (QuotaError) rather than timed out in a queue.
struct TenantScore {
  std::uint64_t ok = 0;
  std::uint64_t quota_shed = 0;
  std::uint64_t deadline = 0;
  std::uint64_t other = 0;
  double p95_seconds = 0.0;

  std::uint64_t total() const { return ok + quota_shed + deadline + other; }
  double success_rate() const {
    return total() > 0 ? static_cast<double>(ok) / static_cast<double>(total()) : 0.0;
  }
};

/// drive(), but every request carries `tenant` and failures are
/// classified by error type.
TenantScore drive_tenant(ClusterRouter& router, const Dataset& queries,
                         const std::string& tenant, std::size_t requests,
                         std::size_t clients, std::uint64_t key_base) {
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> ok{0}, quota{0}, deadline{0}, other{0};
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests) return;
        QueryOptions qopt;
        qopt.key = key_base + i;
        qopt.tenant = tenant;
        WallTimer t;
        try {
          (void)router.query(queries, qopt);
          lat[c].push_back(t.seconds());
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const QuotaError&) {
          quota.fetch_add(1, std::memory_order_relaxed);
        } catch (const DeadlineError&) {
          deadline.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error&) {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  TenantScore score;
  score.ok = ok.load();
  score.quota_shed = quota.load();
  score.deadline = deadline.load();
  score.other = other.load();
  if (!all.empty()) {
    score.p95_seconds = all[static_cast<std::size_t>(0.95 * static_cast<double>(all.size() - 1))];
  }
  return score;
}

// ISSUE acceptance scenario: one tenant surges to >= 10x its normal rate
// against a 4-shard fleet with per-tenant quotas. The victims must hold
// success >= 99% and p95 <= 2x their healthy baseline; the surger must be
// shed with QuotaError (admission saying no), never DeadlineError (a
// queue saying too-late) — victim protection is structural, so it holds
// even while the surge runs hot.
TEST(ClusterChaos, NoisyNeighborSurgeIsShedWhileVictimsHoldSlo) {
  FaultInjector::global().disarm_all();
  RandomForestSpec spec;
  spec.num_trees = 8;
  spec.max_depth = 8;
  spec.num_features = 7;
  spec.seed = 43;
  const Forest forest = make_random_forest(spec);
  const Dataset queries = make_random_queries(64, 7, 5);

  ClassifierOptions copt;
  copt.backend = Backend::CpuNative;
  copt.variant = Variant::Independent;
  copt.fallback.enabled = false;
  serve::ServerOptions sopt;
  sopt.num_workers = 2;
  // Capacity 5 at weights 2:2:1 reserves 2+2 victim slots per shard and
  // exactly 1 for the surger, with no spare pool: the surge's per-shard
  // backlog is capped at one request no matter how hard it pushes.
  sopt.queue_capacity = 5;
  sopt.quotas.tenants = {{"victim-a", 2.0}, {"victim-b", 2.0}, {"surger", 1.0}};
  sopt.surge_tenant = "surger";
  sopt.inject_surge_seconds = 0.0003;  // admitted surge requests also hog a worker
  sopt.retry.max_retries = 0;
  sopt.breaker.failure_threshold = 1000;
  ClusterOptions clopt;
  clopt.num_shards = 4;
  clopt.start_probes = false;
  clopt.hedge.enabled = false;
  ClusterRouter router(forest, copt, sopt, clopt);

  // --- healthy baseline: both victims, no surge --------------------------
  TenantScore healthy_a, healthy_b;
  {
    std::thread tb([&] { healthy_b = drive_tenant(router, queries, "victim-b", 100, 2, 5'000); });
    healthy_a = drive_tenant(router, queries, "victim-a", 100, 2, 0);
    tb.join();
  }
  ASSERT_EQ(healthy_a.total(), healthy_a.ok);
  ASSERT_EQ(healthy_b.total(), healthy_b.ok);
  // Same floor as tools/chaos.sh: the degraded-mode bound is 2x healthy
  // or 10ms, whichever is larger, so a sub-millisecond baseline (or a
  // sanitizer-instrumented build) doesn't turn scheduler jitter into a
  // false breach.
  const double p95_limit = std::max(
      2.0 * std::max({healthy_a.p95_seconds, healthy_b.p95_seconds, 1e-3}), 0.010);

  // --- surge: 4 spinning clients vs 2+2 victim clients -------------------
  // The >= 10x attempt ratio is enforced by the post-victim drain loop
  // below, not by the client count, so four surgers suffice; more would
  // only add scheduler contention that muddies the victims' p95.
  FaultInjector::global().arm("surge:tenant", -1);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> surge_ok{0}, surge_shed{0}, surge_deadline{0}, surge_other{0};
  std::atomic<std::uint64_t> surge_key{100'000};
  std::vector<std::thread> surgers;
  for (int c = 0; c < 4; ++c) {
    surgers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        QueryOptions qopt;
        qopt.key = surge_key.fetch_add(1, std::memory_order_relaxed);
        qopt.tenant = "surger";
        try {
          (void)router.query(queries, qopt);
          surge_ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const QuotaError&) {
          surge_shed.fetch_add(1, std::memory_order_relaxed);
          // Shed is instant; don't melt the host with a hot exception loop.
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        } catch (const DeadlineError&) {
          surge_deadline.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error&) {
          surge_other.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  TenantScore victim_a, victim_b;
  {
    std::thread tb([&] { victim_b = drive_tenant(router, queries, "victim-b", 150, 2, 25'000); });
    victim_a = drive_tenant(router, queries, "victim-a", 150, 2, 15'000);
    tb.join();
  }
  // Keep the surge running until it has provably attempted >= 10x the
  // victims' combined traffic, so the "10x surge" ratio is by
  // construction, not a wall-clock accident.
  const std::uint64_t victim_total = victim_a.total() + victim_b.total();
  WallTimer surge_timer;
  while (surge_ok.load() + surge_shed.load() + surge_deadline.load() + surge_other.load() <
             10 * victim_total &&
         surge_timer.seconds() < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : surgers) t.join();
  FaultInjector::global().disarm_all();

  // Victims: full success, zero sheds, p95 within 2x healthy.
  EXPECT_GE(victim_a.success_rate(), 0.99) << "shed=" << victim_a.quota_shed
                                           << " other=" << victim_a.other;
  EXPECT_GE(victim_b.success_rate(), 0.99) << "shed=" << victim_b.quota_shed
                                           << " other=" << victim_b.other;
  EXPECT_EQ(victim_a.quota_shed, 0u);
  EXPECT_EQ(victim_b.quota_shed, 0u);
  EXPECT_LE(victim_a.p95_seconds, p95_limit);
  EXPECT_LE(victim_b.p95_seconds, p95_limit);

  // The surger was shed by admission, not by deadline or anything else.
  EXPECT_GE(surge_ok.load() + surge_shed.load(), 10 * victim_total);
  EXPECT_GT(surge_shed.load(), 0u);
  EXPECT_GT(surge_ok.load(), 0u);  // its reserved slot still serves it
  EXPECT_EQ(surge_deadline.load(), 0u);
  EXPECT_EQ(surge_other.load(), 0u);

  // The story is visible in the fleet snapshot, schema-clean.
  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  EXPECT_GE(snap.counters.at("cluster.quota_shed"), 1u);
  EXPECT_GE(snap.counters.at("requests.rejected_quota"), 1u);
  ASSERT_EQ(snap.tenants.size(), 3u);
  for (const auto& row : snap.tenants) {
    if (row.name == "surger") {
      EXPECT_GT(row.shed, 0u);
    } else {
      EXPECT_EQ(row.shed, 0u) << row.name;
      EXPECT_GT(row.admitted, 0u) << row.name;
    }
  }
  EXPECT_NO_THROW(obs::check_metrics_schema(obs::to_prometheus(snap),
                                            obs::snapshot_to_json(snap).dump(2)));
  router.shutdown();
}

// ISSUE acceptance scenario: the autoscaler walks an elastic fleet
// through a 2 -> 4 -> 2 wave under live clients with ZERO
// resize-attributable failures, then repeats the scale-up with a shard
// killed the moment it activates — clients must still hold >= 99%
// success and 2x-healthy p95 while probes quarantine the corpse.
TEST(ClusterChaos, AutoscaleWaveServesThroughResizesAndAKill) {
  FaultInjector::global().disarm_all();
  RandomForestSpec spec;
  spec.num_trees = 8;
  spec.max_depth = 8;
  spec.num_features = 7;
  spec.seed = 47;
  const Forest forest = make_random_forest(spec);
  const Dataset queries = make_random_queries(64, 7, 5);

  ClassifierOptions copt;
  copt.backend = Backend::CpuNative;
  copt.variant = Variant::Independent;
  copt.fallback.enabled = false;
  serve::ServerOptions sopt;
  sopt.num_workers = 1;
  sopt.queue_capacity = 64;
  sopt.retry.max_retries = 0;
  sopt.breaker.failure_threshold = 1000;
  ClusterOptions clopt;
  clopt.num_shards = 2;
  clopt.max_shards = 4;
  clopt.probe_interval_seconds = 0.01;
  clopt.shard_breaker.open_seconds = 0.05;
  clopt.hedge.enabled = false;
  ClusterRouter router(forest, copt, sopt, clopt);

  // Deterministic control loop: the test is the clock and the metrics.
  double now = 0.0;
  AutoscalerSample sample;
  AutoscalerOptions aopt;
  aopt.min_shards = 2;
  aopt.max_shards = 4;
  aopt.hysteresis_evaluations = 2;
  aopt.cooldown_seconds = 0.0;
  aopt.start_thread = false;
  ClusterAutoscaler scaler(router, aopt, [&] { return now; }, [&] { return sample; });

  // --- healthy baseline on the 2-shard fleet -----------------------------
  const PhaseScore healthy = drive(router, queries, 80, 4, 0);
  ASSERT_EQ(healthy.failed, 0u);
  const double p95_limit = 2.0 * std::max(healthy.p95_seconds, 1e-3);

  // A background pump that keeps clients scoring across every resize.
  struct Pump {
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ok{0}, failed{0};
    std::atomic<std::uint64_t> key{0};
    std::vector<std::thread> pool;
    std::vector<std::vector<double>> lat;

    void start(ClusterRouter& router, const Dataset& queries, std::uint64_t key_base) {
      lat.resize(4);
      key.store(key_base, std::memory_order_relaxed);
      for (std::size_t c = 0; c < 4; ++c) {
        pool.emplace_back([this, &router, &queries, c] {
          while (!stop.load(std::memory_order_relaxed)) {
            QueryOptions qopt;
            qopt.key = key.fetch_add(1, std::memory_order_relaxed);
            WallTimer t;
            try {
              (void)router.query(queries, qopt);
              lat[c].push_back(t.seconds());
              ok.fetch_add(1, std::memory_order_relaxed);
            } catch (const Error&) {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
    }
    PhaseScore finish() {
      stop.store(true, std::memory_order_relaxed);
      for (std::thread& t : pool) t.join();
      pool.clear();
      std::vector<double> all;
      for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end());
      PhaseScore score;
      score.ok = ok.load();
      score.failed = failed.load();
      if (!all.empty()) {
        score.p95_seconds =
            all[static_cast<std::size_t>(0.95 * static_cast<double>(all.size() - 1))];
      }
      return score;
    }
  };

  // --- wave 1: clean 2 -> 4 -> 2, zero failures allowed ------------------
  Pump wave1;
  wave1.start(router, queries, 1'000'000);
  sample.route_p95_seconds = 1.0;  // breach: grow
  scaler.evaluate();
  scaler.evaluate();
  ASSERT_EQ(router.active_shards(), 3u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scaler.evaluate();
  scaler.evaluate();
  ASSERT_EQ(router.active_shards(), 4u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sample.route_p95_seconds = 0.001;  // idle: shrink
  sample.avg_queue_depth = 0.0;
  scaler.evaluate();
  scaler.evaluate();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scaler.evaluate();
  scaler.evaluate();
  ASSERT_EQ(router.active_shards(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const PhaseScore wave1_score = wave1.finish();
  ASSERT_GT(wave1_score.ok, 0u);
  EXPECT_EQ(wave1_score.failed, 0u);  // zero resize-attributable failures
  EXPECT_LE(wave1_score.p95_seconds, p95_limit)
      << "healthy p95 " << healthy.p95_seconds << "s";

  // --- wave 2: scale up again, kill the first new shard as it lands ------
  Pump wave2;
  wave2.start(router, queries, 2'000'000);
  sample.route_p95_seconds = 1.0;
  sample.avg_queue_depth = 8.0;
  scaler.evaluate();
  scaler.evaluate();
  ASSERT_EQ(router.active_shards(), 3u);
  router.kill_shard(2);  // chaos lands mid-scale-up
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  scaler.evaluate();
  scaler.evaluate();
  ASSERT_EQ(router.active_shards(), 4u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const PhaseScore wave2_score = wave2.finish();
  ASSERT_GT(wave2_score.ok, 0u);
  EXPECT_GE(wave2_score.success_rate(), 0.99)
      << "ok=" << wave2_score.ok << " failed=" << wave2_score.failed;
  EXPECT_LE(wave2_score.p95_seconds, p95_limit)
      << "healthy p95 " << healthy.p95_seconds << "s";

  // The wave's bookkeeping exports schema-clean: four scale-ups, two
  // scale-downs, and the killed slot visibly down.
  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  EXPECT_EQ(snap.counters.at("cluster.scale_ups"), 4u);
  EXPECT_EQ(snap.counters.at("cluster.scale_downs"), 2u);
  EXPECT_EQ(snap.counters.at("autoscaler.scale_ups"), 4u);
  EXPECT_EQ(snap.counters.at("autoscaler.scale_downs"), 2u);
  ASSERT_EQ(snap.shards.size(), 4u);
  EXPECT_FALSE(snap.shards[2].up);
  EXPECT_NO_THROW(obs::check_metrics_schema(obs::to_prometheus(snap),
                                            obs::snapshot_to_json(snap).dump(2)));
  router.shutdown();
}

TEST(ClusterChaos, DegradedModeStaysWithinSlo) {
  FaultInjector::global().disarm_all();
  RandomForestSpec spec;
  spec.num_trees = 8;
  spec.max_depth = 8;
  spec.num_features = 7;
  spec.seed = 41;
  const Forest forest = make_random_forest(spec);
  const Dataset queries = make_random_queries(64, 7, 5);

  const std::string dir = testing::TempDir() + "/hrf_cluster_chaos";
  fs::remove_all(dir);
  HierConfig cfg;
  cfg.subtree_depth = 4;
  serve::ModelStore store = serve::ModelStore::open(dir);
  store.publish(forest, HierarchicalForest::build(forest, cfg), "gen1");

  ClassifierOptions copt;
  copt.backend = Backend::GpuSim;
  copt.variant = Variant::Hybrid;
  copt.layout.subtree_depth = 4;
  copt.fallback.enabled = false;
  serve::ServerOptions sopt;
  sopt.num_workers = 1;
  sopt.queue_capacity = 64;
  sopt.retry.max_retries = 0;
  sopt.retry.backoff_base_seconds = 1e-5;
  sopt.breaker.failure_threshold = 1000;
  ClusterOptions clopt;
  clopt.num_shards = 4;
  clopt.probe_interval_seconds = 0.01;
  clopt.shard_breaker.open_seconds = 0.05;
  // The fleet boots on gen 1; gen 2 is published only afterwards so the
  // halted wave has a distinct generation to roll back to.
  ClusterRouter router(store, copt, sopt, clopt);
  const std::uint64_t gen2 =
      store.publish(forest, HierarchicalForest::build(forest, cfg), "gen2");

  // --- healthy baseline --------------------------------------------------
  const PhaseScore healthy = drive(router, queries, 80, 4, 0);
  ASSERT_EQ(healthy.failed, 0u);
  ASSERT_GT(healthy.p95_seconds, 0.0);
  // Floor the reference so a sub-millisecond baseline (possible when the
  // host is idle) doesn't turn scheduler jitter into a false SLO breach.
  const double p95_limit = 2.0 * std::max(healthy.p95_seconds, 1e-3);

  // --- scenario 1: shard killed mid-rolling-reload -----------------------
  RollingReloadOptions wave;
  wave.reload.shadow_queries = 32;
  wave.reload.canary_success_requests = 1;  // live shards need client proof
  wave.reload.post_promotion_watch_requests = 0;

  std::optional<RollingReloadReport> rep;
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    router.kill_shard(3);
  });
  std::thread reloader([&] { rep = router.rolling_reload(store, gen2, wave); });
  const PhaseScore killed = drive(router, queries, 120, 4, 10'000);
  reloader.join();
  chaos.join();

  ASSERT_TRUE(rep.has_value());
  EXPECT_FALSE(rep->completed) << rep->to_string();
  // Whatever the wave promoted before halting was rolled back: every
  // surviving shard is on the wave-entry generation again.
  EXPECT_EQ(rep->rollbacks.size(),
            static_cast<std::size_t>(std::count_if(
                rep->shards.begin(), rep->shards.end(),
                [](const ShardReload& sr) { return sr.report.promoted(); })))
      << rep->to_string();
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(router.shard(s).generation(), 1u);
  EXPECT_GE(killed.success_rate(), 0.99) << "ok=" << killed.ok << " failed=" << killed.failed;
  EXPECT_LE(killed.p95_seconds, p95_limit)
      << "healthy p95 " << healthy.p95_seconds << "s";

  // --- scenario 2: partition one shard, heal mid-run ---------------------
  router.set_partitioned(1, true);
  std::thread healer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    router.set_partitioned(1, false);
  });
  const PhaseScore partitioned = drive(router, queries, 120, 4, 20'000);
  healer.join();
  EXPECT_GE(partitioned.success_rate(), 0.99)
      << "ok=" << partitioned.ok << " failed=" << partitioned.failed;
  EXPECT_LE(partitioned.p95_seconds, p95_limit)
      << "healthy p95 " << healthy.p95_seconds << "s";

  // The healed shard rejoins: the probe loop closes its breaker.
  WallTimer t;
  while (router.shard_breaker_state(1) != serve::CircuitState::Closed && t.seconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(router.shard_breaker_state(1), serve::CircuitState::Closed);

  // --- the whole story is exported, schema-clean -------------------------
  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  EXPECT_NO_THROW(obs::check_metrics_schema(obs::to_prometheus(snap),
                                            obs::snapshot_to_json(snap).dump(2)));
  ASSERT_EQ(snap.shards.size(), 4u);
  EXPECT_FALSE(snap.shards[3].up);
  EXPECT_GE(snap.counters.at("cluster.reload_waves_halted"), 1u);
  EXPECT_GE(snap.counters.at("cluster.failovers") + snap.counters.at("cluster.hedged"), 1u);

  router.shutdown();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hrf::cluster
