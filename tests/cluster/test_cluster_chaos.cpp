// Degraded-mode SLO gate (docs/cluster.md): a 4-shard fleet absorbs the
// ISSUE's two acceptance scenarios — a shard killed mid-rolling-reload
// (the wave must halt and roll the promoted prefix back) and a network
// partition that later heals — while concurrent clients keep scoring.
// Each chaos phase must keep aggregate success >= 99% and its
// client-observed p95 within 2x the healthy baseline measured on the
// same fleet, and the final fleet snapshot must still pass the metrics
// schema gate. Labeled "chaos" (ctest -L chaos; also run under TSan by
// tools/check.sh --cluster-chaos) — wall-clock heavy, so not tier1.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "obs/exporter.hpp"
#include "serve/model_store.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace hrf::cluster {
namespace {

namespace fs = std::filesystem;

struct PhaseScore {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double p95_seconds = 0.0;

  double success_rate() const {
    const std::uint64_t total = ok + failed;
    return total > 0 ? static_cast<double>(ok) / static_cast<double>(total) : 0.0;
  }
};

/// Drives `requests` router queries from `clients` threads, timing each
/// at the query() boundary (what a client sees: queueing + execution +
/// failover + hedging).
PhaseScore drive(ClusterRouter& router, const Dataset& queries, std::size_t requests,
                 std::size_t clients, std::uint64_t key_base) {
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests) return;
        WallTimer t;
        try {
          (void)router.query(queries, {.key = key_base + i});
          lat[c].push_back(t.seconds());
          ok.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  PhaseScore score;
  score.ok = ok.load();
  score.failed = failed.load();
  if (!all.empty()) {
    score.p95_seconds = all[static_cast<std::size_t>(0.95 * static_cast<double>(all.size() - 1))];
  }
  return score;
}

TEST(ClusterChaos, DegradedModeStaysWithinSlo) {
  FaultInjector::global().disarm_all();
  RandomForestSpec spec;
  spec.num_trees = 8;
  spec.max_depth = 8;
  spec.num_features = 7;
  spec.seed = 41;
  const Forest forest = make_random_forest(spec);
  const Dataset queries = make_random_queries(64, 7, 5);

  const std::string dir = testing::TempDir() + "/hrf_cluster_chaos";
  fs::remove_all(dir);
  HierConfig cfg;
  cfg.subtree_depth = 4;
  serve::ModelStore store = serve::ModelStore::open(dir);
  store.publish(forest, HierarchicalForest::build(forest, cfg), "gen1");

  ClassifierOptions copt;
  copt.backend = Backend::GpuSim;
  copt.variant = Variant::Hybrid;
  copt.layout.subtree_depth = 4;
  copt.fallback.enabled = false;
  serve::ServerOptions sopt;
  sopt.num_workers = 1;
  sopt.queue_capacity = 64;
  sopt.retry.max_retries = 0;
  sopt.retry.backoff_base_seconds = 1e-5;
  sopt.breaker.failure_threshold = 1000;
  ClusterOptions clopt;
  clopt.num_shards = 4;
  clopt.probe_interval_seconds = 0.01;
  clopt.shard_breaker.open_seconds = 0.05;
  // The fleet boots on gen 1; gen 2 is published only afterwards so the
  // halted wave has a distinct generation to roll back to.
  ClusterRouter router(store, copt, sopt, clopt);
  const std::uint64_t gen2 =
      store.publish(forest, HierarchicalForest::build(forest, cfg), "gen2");

  // --- healthy baseline --------------------------------------------------
  const PhaseScore healthy = drive(router, queries, 80, 4, 0);
  ASSERT_EQ(healthy.failed, 0u);
  ASSERT_GT(healthy.p95_seconds, 0.0);
  // Floor the reference so a sub-millisecond baseline (possible when the
  // host is idle) doesn't turn scheduler jitter into a false SLO breach.
  const double p95_limit = 2.0 * std::max(healthy.p95_seconds, 1e-3);

  // --- scenario 1: shard killed mid-rolling-reload -----------------------
  RollingReloadOptions wave;
  wave.reload.shadow_queries = 32;
  wave.reload.canary_success_requests = 1;  // live shards need client proof
  wave.reload.post_promotion_watch_requests = 0;

  std::optional<RollingReloadReport> rep;
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    router.kill_shard(3);
  });
  std::thread reloader([&] { rep = router.rolling_reload(store, gen2, wave); });
  const PhaseScore killed = drive(router, queries, 120, 4, 10'000);
  reloader.join();
  chaos.join();

  ASSERT_TRUE(rep.has_value());
  EXPECT_FALSE(rep->completed) << rep->to_string();
  // Whatever the wave promoted before halting was rolled back: every
  // surviving shard is on the wave-entry generation again.
  EXPECT_EQ(rep->rollbacks.size(),
            static_cast<std::size_t>(std::count_if(
                rep->shards.begin(), rep->shards.end(),
                [](const ShardReload& sr) { return sr.report.promoted(); })))
      << rep->to_string();
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(router.shard(s).generation(), 1u);
  EXPECT_GE(killed.success_rate(), 0.99) << "ok=" << killed.ok << " failed=" << killed.failed;
  EXPECT_LE(killed.p95_seconds, p95_limit)
      << "healthy p95 " << healthy.p95_seconds << "s";

  // --- scenario 2: partition one shard, heal mid-run ---------------------
  router.set_partitioned(1, true);
  std::thread healer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    router.set_partitioned(1, false);
  });
  const PhaseScore partitioned = drive(router, queries, 120, 4, 20'000);
  healer.join();
  EXPECT_GE(partitioned.success_rate(), 0.99)
      << "ok=" << partitioned.ok << " failed=" << partitioned.failed;
  EXPECT_LE(partitioned.p95_seconds, p95_limit)
      << "healthy p95 " << healthy.p95_seconds << "s";

  // The healed shard rejoins: the probe loop closes its breaker.
  WallTimer t;
  while (router.shard_breaker_state(1) != serve::CircuitState::Closed && t.seconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(router.shard_breaker_state(1), serve::CircuitState::Closed);

  // --- the whole story is exported, schema-clean -------------------------
  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  EXPECT_NO_THROW(obs::check_metrics_schema(obs::to_prometheus(snap),
                                            obs::snapshot_to_json(snap).dump(2)));
  ASSERT_EQ(snap.shards.size(), 4u);
  EXPECT_FALSE(snap.shards[3].up);
  EXPECT_GE(snap.counters.at("cluster.reload_waves_halted"), 1u);
  EXPECT_GE(snap.counters.at("cluster.failovers") + snap.counters.at("cluster.hedged"), 1u);

  router.shutdown();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hrf::cluster
