// ClusterAutoscaler control-loop coverage, fully deterministic: a fake
// clock and a synthetic metrics source drive evaluate() by hand — no
// background thread, no sleeps, no real latency. Pins the hysteresis
// contract (K consecutive breaches before a resize, no flapping inside
// the band), the post-resize cooldown, the min/max clamps, convergence
// of a full 2 -> 4 -> 2 wave, and the stall:autoscaler chaos site.
// Runs under ThreadSanitizer via tools/check.sh.

#include "cluster/autoscaler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf::cluster {
namespace {

Forest make_forest() {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 8;
  spec.num_features = 7;
  spec.seed = 33;
  return make_random_forest(spec);
}

ClassifierOptions cpu_options() {
  ClassifierOptions opt;
  opt.backend = Backend::CpuNative;
  opt.variant = Variant::Independent;
  opt.fallback.enabled = false;
  return opt;
}

serve::ServerOptions fast_server() {
  serve::ServerOptions s;
  s.num_workers = 1;
  s.queue_capacity = 64;
  s.retry.max_retries = 0;
  s.breaker.failure_threshold = 1000;
  return s;
}

ClusterOptions elastic_cluster(std::size_t shards = 2, std::size_t max_shards = 4) {
  ClusterOptions c;
  c.num_shards = shards;
  c.max_shards = max_shards;
  c.start_probes = false;
  c.hedge.enabled = false;
  return c;
}

AutoscalerOptions manual_autoscaler() {
  AutoscalerOptions o;
  o.min_shards = 2;
  o.max_shards = 4;
  o.hysteresis_evaluations = 3;
  o.cooldown_seconds = 1.0;
  o.start_thread = false;  // tests call evaluate() themselves
  return o;
}

/// Deterministic test rig: `now` advances only when the test says so,
/// `sample` is whatever the test wants the fleet to look like.
struct Rig {
  double now = 0.0;
  AutoscalerSample sample{};

  ClusterAutoscaler::Clock clock() {
    return [this] { return now; };
  }
  ClusterAutoscaler::MetricsSource source() {
    return [this] { return sample; };
  }
};

class AutoscalerTest : public testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().disarm_all(); }
  void TearDown() override { FaultInjector::global().disarm_all(); }

  Forest forest_ = make_forest();
};

TEST_F(AutoscalerTest, ValidatesOptions) {
  ClusterRouter router(forest_, cpu_options(), fast_server(), elastic_cluster());
  AutoscalerOptions bad = manual_autoscaler();
  bad.min_shards = 0;
  EXPECT_THROW(ClusterAutoscaler(router, bad), ConfigError);
  bad = manual_autoscaler();
  bad.max_shards = 1;  // < min_shards
  EXPECT_THROW(ClusterAutoscaler(router, bad), ConfigError);
  bad = manual_autoscaler();
  bad.scale_down_p95_seconds = bad.scale_up_p95_seconds;
  EXPECT_THROW(ClusterAutoscaler(router, bad), ConfigError);
  router.shutdown();
}

TEST_F(AutoscalerTest, ScalesUpOnlyAfterConsecutiveBreaches) {
  ClusterRouter router(forest_, cpu_options(), fast_server(), elastic_cluster());
  Rig rig;
  ClusterAutoscaler scaler(router, manual_autoscaler(), rig.clock(), rig.source());

  rig.sample.route_p95_seconds = 1.0;  // far over scale_up_p95_seconds
  scaler.evaluate();
  scaler.evaluate();
  EXPECT_EQ(router.active_shards(), 2u);  // 2 breaches < hysteresis 3

  // A healthy evaluation in between resets the streak.
  rig.sample.route_p95_seconds = 0.02;
  scaler.evaluate();
  rig.sample.route_p95_seconds = 1.0;
  scaler.evaluate();
  scaler.evaluate();
  EXPECT_EQ(router.active_shards(), 2u);

  scaler.evaluate();  // third consecutive breach
  EXPECT_EQ(router.active_shards(), 3u);
  EXPECT_EQ(scaler.stats().scale_ups, 1u);
  router.shutdown();
}

TEST_F(AutoscalerTest, CooldownAbsorbsBreachesRightAfterAResize) {
  ClusterRouter router(forest_, cpu_options(), fast_server(), elastic_cluster());
  Rig rig;
  ClusterAutoscaler scaler(router, manual_autoscaler(), rig.clock(), rig.source());

  rig.sample.route_p95_seconds = 1.0;
  for (int i = 0; i < 3; ++i) scaler.evaluate();
  ASSERT_EQ(router.active_shards(), 3u);

  // Still breaching, but inside the 1s cooldown: no second resize.
  for (int i = 0; i < 10; ++i) scaler.evaluate();
  EXPECT_EQ(router.active_shards(), 3u);

  rig.now = 2.0;  // past the cooldown
  for (int i = 0; i < 3; ++i) scaler.evaluate();
  EXPECT_EQ(router.active_shards(), 4u);

  // At max_shards: breaches can no longer grow the fleet.
  rig.now = 4.0;
  for (int i = 0; i < 6; ++i) scaler.evaluate();
  EXPECT_EQ(router.active_shards(), 4u);
  EXPECT_EQ(scaler.stats().scale_ups, 2u);
  router.shutdown();
}

TEST_F(AutoscalerTest, HoldsSizeInsideTheHysteresisBandWithoutFlapping) {
  ClusterRouter router(forest_, cpu_options(), fast_server(), elastic_cluster(3));
  Rig rig;
  // Between scale_down (0.01) and scale_up (0.05) thresholds: healthy
  // but not idle. The fleet must not move in either direction.
  rig.sample.route_p95_seconds = 0.03;
  rig.sample.avg_queue_depth = 1.0;
  ClusterAutoscaler scaler(router, manual_autoscaler(), rig.clock(), rig.source());
  for (int i = 0; i < 50; ++i) {
    rig.now += 10.0;  // cooldown can never be the reason nothing happens
    scaler.evaluate();
  }
  const AutoscalerStats stats = scaler.stats();
  EXPECT_EQ(router.active_shards(), 3u);
  EXPECT_EQ(stats.scale_ups, 0u);
  EXPECT_EQ(stats.scale_downs, 0u);
  EXPECT_EQ(stats.evaluations, 50u);
  EXPECT_EQ(stats.up_streak, 0);
  EXPECT_EQ(stats.down_streak, 0);
  router.shutdown();
}

TEST_F(AutoscalerTest, ConvergesThroughAFullUpDownWaveAndKeepsServing) {
  ClusterRouter router(forest_, cpu_options(), fast_server(), elastic_cluster());
  const Dataset queries = make_random_queries(16, 7, 5);
  const std::vector<std::uint8_t> reference =
      forest_.classify_batch(queries.features(), queries.num_samples());
  Rig rig;
  ClusterAutoscaler scaler(router, manual_autoscaler(), rig.clock(), rig.source());

  const auto serve_everywhere = [&] {
    for (std::uint64_t key = 0; key < 8; ++key) {
      QueryOptions qopt;
      qopt.key = key;
      const ClusterResult res = router.query(queries, qopt);
      EXPECT_EQ(res.result.report.predictions, reference);
    }
  };

  // Surge: 2 -> 4.
  rig.sample.route_p95_seconds = 1.0;
  for (int i = 0; i < 3; ++i) scaler.evaluate();
  rig.now = 2.0;
  for (int i = 0; i < 3; ++i) scaler.evaluate();
  ASSERT_EQ(router.active_shards(), 4u);
  serve_everywhere();

  // Quiet: 4 -> 2 (min_shards floor), draining one shard per step.
  rig.now = 4.0;
  rig.sample.route_p95_seconds = 0.001;
  rig.sample.avg_queue_depth = 0.0;
  for (int i = 0; i < 3; ++i) scaler.evaluate();
  rig.now = 6.0;
  for (int i = 0; i < 3; ++i) scaler.evaluate();
  ASSERT_EQ(router.active_shards(), 2u);
  // min_shards: idle evaluations cannot shrink further.
  rig.now = 8.0;
  for (int i = 0; i < 6; ++i) scaler.evaluate();
  EXPECT_EQ(router.active_shards(), 2u);
  serve_everywhere();

  const ClusterStats cs = router.stats();
  EXPECT_EQ(cs.scale_ups, 2u);
  EXPECT_EQ(cs.scale_downs, 2u);
  EXPECT_EQ(cs.failed, 0u);  // zero resize-attributable client failures

  // The autoscaler's decisions export through the router's registry.
  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  EXPECT_EQ(snap.counters.at("autoscaler.scale_ups"), 2u);
  EXPECT_EQ(snap.counters.at("autoscaler.scale_downs"), 2u);
  EXPECT_GE(snap.counters.at("autoscaler.evaluations"), 18u);
  router.shutdown();
}

TEST_F(AutoscalerTest, ScaledUpSlotGetsAFreshServerAfterADrain) {
  ClusterRouter router(forest_, cpu_options(), fast_server(), elastic_cluster(2, 2));
  // max_shards == num_shards: a fixed fleet refuses to grow...
  EXPECT_FALSE(router.scale_up());
  // ...but can shrink and re-grow into the same slot.
  ASSERT_TRUE(router.scale_down().has_value());
  EXPECT_EQ(router.active_shards(), 1u);
  EXPECT_FALSE(router.scale_down().has_value());  // never below one shard
  ASSERT_TRUE(router.scale_up());
  EXPECT_EQ(router.active_shards(), 2u);

  const Dataset queries = make_random_queries(16, 7, 5);
  QueryOptions qopt;
  qopt.key = 1;
  EXPECT_NO_THROW(router.query(queries, qopt));
  // The reused slot serves again: find a key that lands on shard 1.
  for (std::uint64_t key = 0; key < 512; ++key) {
    if (rendezvous_order(key, 2, router.options().hash_salt)[0] == 1) {
      qopt.key = key;
      const ClusterResult res = router.query(queries, qopt);
      EXPECT_EQ(res.shard, 1u);
      break;
    }
  }
  router.shutdown();
}

TEST_F(AutoscalerTest, StallSiteWedgesTheLoopVisiblyButNotTheFleet) {
  ClusterRouter router(forest_, cpu_options(), fast_server(), elastic_cluster());
  Rig rig;
  AutoscalerOptions opt = manual_autoscaler();
  opt.inject_stall_seconds = 0.01;
  ClusterAutoscaler scaler(router, opt, rig.clock(), rig.source());

  FaultInjector::global().arm("stall:autoscaler", 2);
  scaler.evaluate();
  scaler.evaluate();
  scaler.evaluate();  // charges exhausted: no stall
  EXPECT_EQ(scaler.stats().stalled, 2u);

  // The fleet served normally throughout the stall window.
  const Dataset queries = make_random_queries(8, 7, 5);
  EXPECT_NO_THROW(router.query(queries));
  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  EXPECT_EQ(snap.counters.at("autoscaler.stalled"), 2u);
  router.shutdown();
}

}  // namespace
}  // namespace hrf::cluster
