#include "gpukernels/ablation_kernels.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "layout/hierarchical.hpp"
#include "util/error.hpp"

namespace hrf::gpukernels {
namespace {

gpusim::DeviceConfig small_gpu() {
  auto cfg = gpusim::DeviceConfig::titan_xp();
  cfg.num_sms = 4;
  return cfg;
}

struct Fixture {
  Forest forest;
  HierarchicalForest hier;
  Dataset queries;
  std::vector<std::uint8_t> reference;

  Fixture()
      : forest(make_random_forest({.num_trees = 8,
                                   .max_depth = 10,
                                   .branch_prob = 0.7,
                                   .num_features = 9,
                                   .seed = 71})),
        hier(HierarchicalForest::build(forest, HierConfig{.subtree_depth = 4})),
        queries(make_random_queries(500, 9, 72)),
        reference(forest.classify_batch(queries.features(), queries.num_samples())) {}
};

TEST(TreePerBlock, MatchesReferencePredictions) {
  const Fixture fx;
  gpusim::Device d(small_gpu());
  const auto r = run_tree_per_block(d, fx.hier, fx.queries);
  EXPECT_EQ(r.predictions, fx.reference);
}

TEST(TreePerBlock, IssuesVoteAtomics) {
  const Fixture fx;
  gpusim::Device d(small_gpu());
  const auto r = run_tree_per_block(d, fx.hier, fx.queries);
  // One atomic per (query, tree) leaf arrival, coalesced into lines.
  EXPECT_GT(r.counters.atomic_transactions, 0u);
  EXPECT_GT(r.timing.atomic_cycles, 0.0);
}

TEST(TreePerBlock, SlowerThanIndependentPerThePaper) {
  // §3.2.1 Optimization 2 "resulted in significant slowdown".
  const Fixture fx;
  gpusim::Device d1(small_gpu());
  const auto ind = run_independent(d1, fx.hier, fx.queries);
  gpusim::Device d2(small_gpu());
  const auto tpb = run_tree_per_block(d2, fx.hier, fx.queries);
  EXPECT_GT(tpb.timing.seconds, ind.timing.seconds);
}

TEST(PresortQueries, ReturnsAPermutation) {
  const Dataset q = make_random_queries(300, 5, 3);
  const auto order = presort_queries(q);
  ASSERT_EQ(order.size(), 300u);
  std::set<std::uint32_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 300u);
}

TEST(PresortQueries, SortsByLeadingFeatureBins) {
  const Dataset q = make_random_queries(1000, 4, 5);
  const auto order = presort_queries(q, 16);
  // The first feature's binned code must be non-decreasing along the order.
  float lo = q.sample(0)[0], hi = q.sample(0)[0];
  for (std::size_t i = 1; i < 1000; ++i) {
    lo = std::min(lo, q.sample(i)[0]);
    hi = std::max(hi, q.sample(i)[0]);
  }
  int prev = -1;
  for (std::uint32_t i : order) {
    const int code = std::min(static_cast<int>((q.sample(i)[0] - lo) / (hi - lo) * 16), 15);
    ASSERT_GE(code, prev);
    prev = code;
  }
}

TEST(PresortQueries, ValidatesBins) {
  const Dataset q = make_random_queries(10, 2, 1);
  EXPECT_THROW(presort_queries(q, 1), ConfigError);
  EXPECT_THROW(presort_queries(q, 300), ConfigError);
}

TEST(PermuteQueries, ReordersRowsAndLabels) {
  Dataset q(3, 1, 3);
  const float rows[3][1] = {{0.f}, {1.f}, {2.f}};
  for (int i = 0; i < 3; ++i) q.push_back(rows[i], static_cast<std::uint8_t>(i));
  const std::vector<std::uint32_t> order{2, 0, 1};
  const Dataset p = permute_queries(q, order);
  EXPECT_FLOAT_EQ(p.sample(0)[0], 2.f);
  EXPECT_EQ(p.label(0), 2);
  EXPECT_FLOAT_EQ(p.sample(2)[0], 1.f);
}

TEST(PermuteQueries, ValidatesSize) {
  const Dataset q = make_random_queries(5, 2, 1);
  const std::vector<std::uint32_t> wrong{0, 1};
  EXPECT_THROW(permute_queries(q, wrong), ConfigError);
}

TEST(PresortQueries, PredictionsUnchangedUpToPermutation) {
  const Fixture fx;
  const auto order = presort_queries(fx.queries);
  const Dataset sorted = permute_queries(fx.queries, order);
  gpusim::Device d(small_gpu());
  const auto r = run_independent(d, fx.hier, sorted);
  for (std::size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(r.predictions[i], fx.reference[order[i]]);
  }
}

TEST(PresortQueries, ImprovesOrKeepsBranchEfficiency) {
  const Fixture fx;
  gpusim::Device d1(small_gpu());
  const auto plain = run_independent(d1, fx.hier, fx.queries);
  gpusim::Device d2(small_gpu());
  const auto sorted =
      run_independent(d2, fx.hier, permute_queries(fx.queries, presort_queries(fx.queries)));
  EXPECT_GE(sorted.counters.branch_efficiency() + 1e-9, plain.counters.branch_efficiency());
}

}  // namespace
}  // namespace hrf::gpukernels
