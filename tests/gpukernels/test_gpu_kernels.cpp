#include "gpukernels/kernels.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "../common/paper_example.hpp"
#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"
#include "util/error.hpp"

namespace hrf::gpukernels {
namespace {

gpusim::DeviceConfig small_gpu() {
  gpusim::DeviceConfig cfg = gpusim::DeviceConfig::titan_xp();
  cfg.num_sms = 4;
  return cfg;
}

struct Fixture {
  Forest forest;
  CsrForest csr;
  HierarchicalForest hier;
  Dataset queries;
  std::vector<std::uint8_t> reference;

  Fixture(const RandomForestSpec& spec, int sd, int rsd, std::size_t nq)
      : forest(make_random_forest(spec)),
        csr(CsrForest::build(forest)),
        hier(HierarchicalForest::build(forest,
                                       HierConfig{.subtree_depth = sd, .root_subtree_depth = rsd})),
        queries(make_random_queries(nq, spec.num_features, spec.seed + 1)),
        reference(forest.classify_batch(queries.features(), queries.num_samples())) {}
};

void expect_exact(const std::vector<std::uint8_t>& got, const std::vector<std::uint8_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], want[i]) << "query " << i;
}

class KernelEquivalence : public testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(KernelEquivalence, AllKernelsMatchReference) {
  const auto [depth, sd, branch_prob] = GetParam();
  RandomForestSpec spec;
  spec.num_trees = 8;
  spec.max_depth = depth;
  spec.branch_prob = branch_prob;
  spec.num_features = 9;
  spec.seed = static_cast<std::uint64_t>(depth * 100 + sd);
  const Fixture fx(spec, sd, 0, 700);

  {
    gpusim::Device d(small_gpu());
    expect_exact(run_csr(d, fx.csr, fx.queries).predictions, fx.reference);
  }
  {
    gpusim::Device d(small_gpu());
    expect_exact(run_independent(d, fx.hier, fx.queries).predictions, fx.reference);
  }
  {
    gpusim::Device d(small_gpu());
    expect_exact(run_hybrid(d, fx.hier, fx.queries).predictions, fx.reference);
  }
  {
    gpusim::Device d(small_gpu());
    expect_exact(run_collaborative(d, fx.hier, fx.queries).predictions, fx.reference);
  }
  {
    gpusim::Device d(small_gpu());
    expect_exact(run_fil_baseline(d, fx.forest, fx.queries).predictions, fx.reference);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, KernelEquivalence,
                         testing::Combine(testing::Values(4, 9, 14),   // tree depth
                                          testing::Values(3, 6, 8),    // SD
                                          testing::Values(0.5, 0.9)),  // sparsity
                         [](const auto& info) {
                           return "d" + std::to_string(std::get<0>(info.param)) + "sd" +
                                  std::to_string(std::get<1>(info.param)) + "p" +
                                  std::to_string(static_cast<int>(std::get<2>(info.param) * 10));
                         });

TEST(GpuKernels, QueryCountNotMultipleOfBlockSize) {
  RandomForestSpec spec;
  spec.num_trees = 3;
  spec.max_depth = 6;
  const Fixture fx(spec, 4, 0, 257);  // 256-thread blocks + 1 stray lane
  gpusim::Device d(small_gpu());
  expect_exact(run_csr(d, fx.csr, fx.queries).predictions, fx.reference);
  gpusim::Device d2(small_gpu());
  expect_exact(run_hybrid(d2, fx.hier, fx.queries).predictions, fx.reference);
}

TEST(GpuKernels, RejectsMismatchedQueryWidth) {
  RandomForestSpec spec;
  spec.num_trees = 2;
  spec.max_depth = 4;
  const Fixture fx(spec, 4, 0, 32);
  const Dataset wrong = make_random_queries(32, spec.num_features + 3);
  gpusim::Device d(small_gpu());
  EXPECT_THROW(run_csr(d, fx.csr, wrong), ConfigError);
  EXPECT_THROW(run_independent(d, fx.hier, wrong), ConfigError);
  EXPECT_THROW(run_hybrid(d, fx.hier, wrong), ConfigError);
  EXPECT_THROW(run_fil_baseline(d, fx.forest, wrong), ConfigError);
}

TEST(GpuKernels, HybridRejectsRootSubtreeBiggerThanSharedMemory) {
  RandomForestSpec spec;
  spec.num_trees = 1;
  spec.max_depth = 16;
  spec.branch_prob = 1.0;  // complete tree so RSD 14 exists
  const Forest f = make_random_forest(spec);
  HierConfig cfg;
  cfg.subtree_depth = 4;
  cfg.root_subtree_depth = 14;  // (2^14 - 1) * 8 B = 131 KB > 48 KB
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);
  const Dataset q = make_random_queries(32, spec.num_features);
  gpusim::Device d(small_gpu());
  EXPECT_THROW(run_hybrid(d, h, q), ResourceError);
}

TEST(GpuKernels, RsdTwelveIsTheSharedMemoryLimit) {
  // Table 2 stops at RSD 12 because (2^12 - 1) * 8 B = 32 KB fits in the
  // 48 KB shared memory while RSD 13 (64 KB) does not.
  RandomForestSpec spec;
  spec.num_trees = 1;
  spec.max_depth = 14;
  spec.branch_prob = 1.0;
  const Forest f = make_random_forest(spec);
  const Dataset q = make_random_queries(64, spec.num_features);
  {
    HierConfig cfg;
    cfg.subtree_depth = 8;
    cfg.root_subtree_depth = 12;
    gpusim::Device d(small_gpu());
    EXPECT_NO_THROW(run_hybrid(d, HierarchicalForest::build(f, cfg), q));
  }
  {
    HierConfig cfg;
    cfg.subtree_depth = 8;
    cfg.root_subtree_depth = 13;
    gpusim::Device d(small_gpu());
    EXPECT_THROW(run_hybrid(d, HierarchicalForest::build(f, cfg), q), ResourceError);
  }
}

TEST(GpuKernels, Fig2ForestWalkthrough) {
  const Forest f = testutil::fig2_forest();
  Dataset q(2, testutil::kFig2Features);
  q.push_back(testutil::fig2_query_class_a(), 0);
  q.push_back(testutil::fig2_query_class_b(), 1);
  const CsrForest csr = CsrForest::build(f);
  gpusim::Device d(small_gpu());
  const auto r = run_csr(d, csr, q);
  EXPECT_EQ(r.predictions[0], 0);
  EXPECT_EQ(r.predictions[1], 1);
}

TEST(GpuKernels, CountersShapeMatchesPaperFindings) {
  // The relationships behind Fig. 7/8: the hierarchical variants issue
  // fewer global load requests than CSR; the hybrid offloads node reads
  // to shared memory and has at least the independent's branch
  // efficiency; CSR does strictly more transactions per query step.
  RandomForestSpec spec;
  spec.num_trees = 10;
  spec.max_depth = 12;
  spec.branch_prob = 0.75;
  spec.num_features = 12;
  const Fixture fx(spec, 6, 0, 2048);

  gpusim::Device d_csr(small_gpu());
  const auto csr = run_csr(d_csr, fx.csr, fx.queries);
  gpusim::Device d_ind(small_gpu());
  const auto ind = run_independent(d_ind, fx.hier, fx.queries);
  gpusim::Device d_hyb(small_gpu());
  const auto hyb = run_hybrid(d_hyb, fx.hier, fx.queries);

  EXPECT_LT(ind.counters.gld_requests, csr.counters.gld_requests);
  EXPECT_LT(hyb.counters.gld_requests, ind.counters.gld_requests);
  EXPECT_GT(hyb.counters.smem_loads, 0u);
  EXPECT_EQ(ind.counters.smem_loads, 0u);
  EXPECT_GE(hyb.counters.branch_efficiency(), ind.counters.branch_efficiency());
  // And the headline: the hierarchical variants are simulated-faster.
  EXPECT_LT(ind.timing.seconds, csr.timing.seconds);
  EXPECT_LT(hyb.timing.seconds, csr.timing.seconds);
}

TEST(GpuKernels, CollaborativeIsSlowerThanIndependent) {
  // §3.2.1: the collaborative GPU kernel is 10-20x slower than the
  // independent one; at minimum the model must order them correctly.
  RandomForestSpec spec;
  spec.num_trees = 4;
  spec.max_depth = 10;
  spec.branch_prob = 0.8;
  const Fixture fx(spec, 4, 0, 1024);
  gpusim::Device d_ind(small_gpu());
  const auto ind = run_independent(d_ind, fx.hier, fx.queries);
  gpusim::Device d_col(small_gpu());
  const auto col = run_collaborative(d_col, fx.hier, fx.queries);
  EXPECT_GT(col.timing.seconds, 2.0 * ind.timing.seconds);
}

TEST(GpuKernels, SingleQuerySingleTree) {
  RandomForestSpec spec;
  spec.num_trees = 1;
  spec.max_depth = 3;
  const Fixture fx(spec, 2, 0, 1);
  gpusim::Device d(small_gpu());
  expect_exact(run_independent(d, fx.hier, fx.queries).predictions, fx.reference);
}

}  // namespace
}  // namespace hrf::gpukernels
