// SloEngine: multi-window burn-rate alerting over WindowSample streams.
// Windows are hand-built (the engine is passive), so every fire/clear
// transition is deterministic.

#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "util/histogram.hpp"

namespace hrf::obs {
namespace {

// One-second windows with fast == slow == 1 s mean each window is the
// whole burn lookback: the burn rate is just that window's error ratio
// over the budget, which keeps the arithmetic in the tests legible.
SloObjectives tight_objectives() {
  SloObjectives o;
  o.success_target = 0.9;  // budget 0.1
  o.fast_window_seconds = 1.0;
  o.slow_window_seconds = 1.0;
  o.fast_burn_threshold = 5.0;
  o.slow_burn_threshold = 5.0;
  o.hysteresis_evaluations = 2;
  o.cooldown_seconds = 100.0;
  return o;
}

WindowSample server_window(double end, std::uint64_t failed, std::uint64_t completed) {
  WindowSample w;
  w.start_seconds = end - 1.0;
  w.end_seconds = end;
  w.counter_deltas["requests.failed"] = failed;
  w.counter_deltas["requests.completed"] = completed;
  return w;
}

const SloAlertState* find_alert(const std::vector<SloAlertState>& alerts,
                                const std::string& scope, const std::string& objective) {
  for (const SloAlertState& a : alerts) {
    if (a.scope == scope && a.objective == objective) return &a;
  }
  return nullptr;
}

TEST(SloEngine, FiresOnlyAfterHysteresisEvaluations) {
  SloEngine engine(tight_objectives());
  // 50% failures over a 10% budget => burn 5.0, right at both thresholds.
  engine.observe(server_window(1.0, 50, 50));
  const SloAlertState* a = find_alert(engine.alerts(), "server", "success_rate");
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->firing);  // one breaching evaluation is not enough
  EXPECT_DOUBLE_EQ(a->fast_burn, 5.0);
  EXPECT_DOUBLE_EQ(a->slow_burn, 5.0);

  engine.observe(server_window(2.0, 50, 50));
  a = find_alert(engine.alerts(), "server", "success_rate");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->firing);
  EXPECT_EQ(a->fired_total, 1u);
  EXPECT_EQ(engine.fired_total(), 1u);
  EXPECT_EQ(engine.evaluations(), 2u);
}

TEST(SloEngine, SingleBadWindowDoesNotFire) {
  SloEngine engine(tight_objectives());
  engine.observe(server_window(1.0, 100, 0));  // one terrible window
  engine.observe(server_window(2.0, 0, 100));  // back to healthy
  engine.observe(server_window(3.0, 0, 100));
  const SloAlertState* a = find_alert(engine.alerts(), "server", "success_rate");
  ASSERT_NE(a, nullptr);
  EXPECT_FALSE(a->firing);
  EXPECT_EQ(engine.fired_total(), 0u);
}

TEST(SloEngine, ClearsWithHysteresisAndCooldownBlocksRefire) {
  SloEngine engine(tight_objectives());
  engine.observe(server_window(1.0, 50, 50));
  engine.observe(server_window(2.0, 50, 50));  // fires
  ASSERT_TRUE(find_alert(engine.alerts(), "server", "success_rate")->firing);

  engine.observe(server_window(3.0, 0, 100));  // clear streak 1: still firing
  EXPECT_TRUE(find_alert(engine.alerts(), "server", "success_rate")->firing);
  engine.observe(server_window(4.0, 0, 100));  // clear streak 2: clears
  const SloAlertState* a = find_alert(engine.alerts(), "server", "success_rate");
  EXPECT_FALSE(a->firing);
  EXPECT_EQ(a->cleared_total, 1u);

  // Immediately breaching again: hysteresis is satisfied at t=6 but the
  // 100 s post-clear cooldown (until t=104) must hold the alert down.
  engine.observe(server_window(5.0, 50, 50));
  engine.observe(server_window(6.0, 50, 50));
  a = find_alert(engine.alerts(), "server", "success_rate");
  EXPECT_FALSE(a->firing);
  EXPECT_EQ(a->fired_total, 1u);

  // Past the cooldown the same burn fires again.
  engine.observe(server_window(105.0, 50, 50));
  engine.observe(server_window(106.0, 50, 50));
  a = find_alert(engine.alerts(), "server", "success_rate");
  EXPECT_TRUE(a->firing);
  EXPECT_EQ(a->fired_total, 2u);
}

TEST(SloEngine, DownedShardBurnsAtFullRatioDespiteFailover) {
  // The router keeps serving through failover, so client-visible success
  // stays perfect — but the dead shard's scope must still page.
  SloEngine engine(tight_objectives());
  for (int i = 1; i <= 2; ++i) {
    WindowSample w = server_window(i, 0, 100);
    ShardHealth dead;
    dead.index = 1;
    dead.up = false;
    dead.routed = 100;  // cumulative, unchanged after the kill
    dead.failures = 0;
    w.shards.push_back(dead);
    engine.observe(w);
  }
  const std::vector<SloAlertState> alerts = engine.alerts();
  const SloAlertState* server = find_alert(alerts, "server", "success_rate");
  ASSERT_NE(server, nullptr);
  EXPECT_FALSE(server->firing);
  const SloAlertState* shard = find_alert(alerts, "shard:1", "success_rate");
  ASSERT_NE(shard, nullptr);
  EXPECT_TRUE(shard->firing);
  EXPECT_DOUBLE_EQ(shard->fast_burn, 10.0);  // ratio 1.0 over budget 0.1
}

TEST(SloEngine, TenantShedsBurnTenantScope) {
  SloEngine engine(tight_objectives());
  // Cumulative tenant counters: engine deltas them itself, so feed three
  // windows (the first only primes the scope).
  for (int i = 1; i <= 3; ++i) {
    WindowSample w = server_window(i, 0, 100);
    TenantStat t;
    t.name = "acme";
    t.admitted = 10ull * i;
    t.shed = 50ull * i;  // 50 sheds per window vs 10 admits => ratio ~0.83
    w.tenants.push_back(t);
    engine.observe(w);
  }
  const SloAlertState* a = find_alert(engine.alerts(), "tenant:acme", "success_rate");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->firing);
}

TEST(SloEngine, LatencyObjectiveFiresOnP95Breach) {
  SloObjectives o = tight_objectives();
  o.p95_target_seconds = 0.001;  // 1 ms
  SloEngine engine(o);
  for (int i = 1; i <= 2; ++i) {
    WindowSample w = server_window(i, 0, 100);
    LatencyHistogram h;
    for (int s = 0; s < 100; ++s) h.record_ns(10'000'000);  // 10 ms, all over target
    w.histogram_deltas.emplace_back("end_to_end", h.snapshot());
    engine.observe(w);
  }
  const SloAlertState* lat = find_alert(engine.alerts(), "server", "p95_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_TRUE(lat->firing);
  // ratio 1.0 over the 5% a p95 objective allows => burn 20.
  EXPECT_DOUBLE_EQ(lat->fast_burn, 20.0);
  const SloAlertState* ok = find_alert(engine.alerts(), "server", "success_rate");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->firing);
}

TEST(SloEngine, LatencyObjectiveStaysQuietWhenSamplesAreUnderTarget) {
  SloObjectives o = tight_objectives();
  o.p95_target_seconds = 1.0;  // generous: 1 s
  SloEngine engine(o);
  for (int i = 1; i <= 4; ++i) {
    WindowSample w = server_window(i, 0, 100);
    LatencyHistogram h;
    for (int s = 0; s < 100; ++s) h.record_ns(1'000'000);  // 1 ms
    w.histogram_deltas.emplace_back("end_to_end", h.snapshot());
    engine.observe(w);
  }
  const SloAlertState* lat = find_alert(engine.alerts(), "server", "p95_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_FALSE(lat->firing);
  EXPECT_DOUBLE_EQ(lat->fast_burn, 0.0);
}

TEST(SloEngine, FireAndClearReachRecorderAndCallback) {
  FlightRecorder recorder(32);
  std::vector<SloAlertState> fired;
  SloEngine engine(tight_objectives(), &recorder,
                   [&fired](const SloAlertState& a) { fired.push_back(a); });
  engine.observe(server_window(1.0, 50, 50));
  engine.observe(server_window(2.0, 50, 50));  // fire
  engine.observe(server_window(3.0, 0, 100));
  engine.observe(server_window(4.0, 0, 100));  // clear

  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].scope, "server");
  EXPECT_EQ(fired[0].objective, "success_rate");
  EXPECT_TRUE(fired[0].firing);

  bool saw_fired = false;
  bool saw_cleared = false;
  for (const FlightEvent& e : recorder.events()) {
    if (e.category != "alert") continue;
    if (e.name == "slo_fired" && e.scope == "server") saw_fired = true;
    if (e.name == "slo_cleared" && e.scope == "server") saw_cleared = true;
  }
  EXPECT_TRUE(saw_fired);
  EXPECT_TRUE(saw_cleared);
}

TEST(SloEngine, ServerRowsExistWithZeroTraffic) {
  // The exporter renders hrf_slo_* from alerts(); an armed engine must
  // produce the server rows even before any traffic arrives.
  SloObjectives o = tight_objectives();
  o.p95_target_seconds = 0.5;
  SloEngine engine(o);
  engine.observe(server_window(1.0, 0, 0));
  const std::vector<SloAlertState> alerts = engine.alerts();
  EXPECT_NE(find_alert(alerts, "server", "success_rate"), nullptr);
  EXPECT_NE(find_alert(alerts, "server", "p95_latency"), nullptr);
  for (const SloAlertState& a : alerts) {
    EXPECT_FALSE(a.firing);
    EXPECT_DOUBLE_EQ(a.fast_burn, 0.0);
  }
}

}  // namespace
}  // namespace hrf::obs
