// FlightRecorder: bounded lock-cheap event ring. The concurrency test
// is the TSan target for this module — many writers claiming slots while
// a reader assembles consistent views.

#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace hrf::obs {
namespace {

double fake_clock() {
  static std::atomic<int> ticks{0};
  return 100.0 + ticks.fetch_add(1);
}

TEST(FlightRecorder, RecordsInOrderWithAllFields) {
  FlightRecorder rec(16, &fake_clock);
  rec.record("breaker", "breaker_open", "shard:2", "3 consecutive failures");
  rec.record("reload", "reload_promoted");

  const std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].sequence, 0u);
  EXPECT_EQ(events[0].category, "breaker");
  EXPECT_EQ(events[0].name, "breaker_open");
  EXPECT_EQ(events[0].scope, "shard:2");
  EXPECT_EQ(events[0].detail, "3 consecutive failures");
  EXPECT_GE(events[0].seconds, 100.0);
  EXPECT_EQ(events[1].sequence, 1u);
  EXPECT_EQ(events[1].scope, "");
  EXPECT_GT(events[1].seconds, events[0].seconds);
  EXPECT_EQ(rec.recorded(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.capacity(), 16u);
}

TEST(FlightRecorder, RingKeepsNewestAndCountsDropped) {
  FlightRecorder rec(8);
  for (int i = 0; i < 20; ++i) {
    rec.record("test", "event_" + std::to_string(i));
  }
  const std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest -> newest, and exactly the last 8 records.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, 12u + i);
    EXPECT_EQ(events[i].name, "event_" + std::to_string(12 + i));
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
}

TEST(FlightRecorder, ConcurrentWritersAndReadersStayConsistent) {
  // The serving paths record from workers, probe loops, reload threads
  // and the monitor all at once while bundles read the ring. Hammer that
  // shape; TSan (tools/check.sh) runs this test to certify the slot
  // protocol.
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 2000;
  FlightRecorder rec(64);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<FlightEvent> events = rec.events();
      EXPECT_LE(events.size(), rec.capacity());
      for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LT(events[i - 1].sequence, events[i].sequence);  // strictly ordered
      }
      for (const FlightEvent& e : events) {
        // A slot is either the old event or the new one, never torn:
        // name and scope must agree about which write they came from.
        EXPECT_EQ(e.scope, "w" + e.detail);
        EXPECT_EQ(e.category, "stress");
      }
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      const std::string detail = std::to_string(w);
      const std::string scope = "w" + detail;
      for (int i = 0; i < kPerWriter; ++i) {
        rec.record("stress", "event_" + std::to_string(i), scope, detail);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(rec.recorded(), static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(rec.dropped(), rec.recorded() - rec.capacity());
  const std::vector<FlightEvent> final_events = rec.events();
  EXPECT_EQ(final_events.size(), rec.capacity());
  // Each slot holds one complete event from the writes that mapped to
  // it (racing writers to one slot keep whichever finished last, so the
  // exact survivor set is scheduling-dependent — but never torn, never
  // duplicated, never out of range).
  for (std::size_t i = 0; i < final_events.size(); ++i) {
    if (i > 0) EXPECT_LT(final_events[i - 1].sequence, final_events[i].sequence);
    EXPECT_LT(final_events[i].sequence, rec.recorded());
  }
}

}  // namespace
}  // namespace hrf::obs
