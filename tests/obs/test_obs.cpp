#include "obs/exporter.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "obs/rollup.hpp"
#include "util/error.hpp"

namespace hrf::obs {
namespace {

RunReport gpu_report(std::uint64_t queries, std::uint64_t smem, std::uint64_t dram) {
  RunReport r;
  r.predictions.resize(queries, 0);
  r.seconds = 0.001;
  gpusim::Counters c;
  c.gld_requests = 100;
  c.gld_transactions = 250;
  c.smem_loads = smem;
  c.l2_hits = 10;
  c.dram_transactions = dram;
  c.branches = 1000;
  c.divergent_branches = 100;
  r.gpu_counters = c;
  return r;
}

RunReport fpga_run_report(std::uint64_t queries) {
  RunReport r;
  r.predictions.resize(queries, 0);
  r.seconds = 0.002;
  fpgasim::FpgaReport f{};
  f.seconds = 0.002;
  f.pipeline_cycles = 9'000.0;
  f.total_cycles = 10'000.0;
  f.stall_pct = 10.0;
  r.fpga_report = f;
  return r;
}

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;
  for (const std::string& name : counter_catalogue()) snap.counters[name] = 0;
  snap.counters["requests.submitted"] = 7;
  snap.counters["requests.completed"] = 6;
  snap.gauges["queue_depth"] = 2.0;
  snap.gauges["workers"] = 4.0;
  snap.gauges["breaker_state"] = 0.0;
  snap.gauges["model_generation"] = 3.0;
  LatencyHistogram h;
  for (std::uint64_t us = 1; us <= 100; ++us) h.record_ns(us * 1000);
  snap.histograms.emplace_back("queue_wait", h.snapshot());
  snap.histograms.emplace_back("execute", h.snapshot());
  snap.histograms.emplace_back("end_to_end", h.snapshot());
  snap.histograms.emplace_back("reload", LatencyHistogram{}.snapshot());
  RollupRegistry reg;
  reg.record("hybrid", "gpu-sim", 3, gpu_report(64, 500, 40));
  reg.record("csr", "fpga-sim", 3, fpga_run_report(64));
  snap.rollups = reg.snapshot();
  snap.traces.started = 7;
  snap.traces.sampled = 7;
  snap.traces.completed = 6;
  snap.traces.retained = 6;
  snap.traces.sampling = 1.0;
  snap.traces.capacity = 128;
  snap.has_traces = true;
  return snap;
}

// --- Rollups -------------------------------------------------------------

TEST(BackendRollup, FoldAccumulatesGpuCountersAndDerived) {
  RollupRegistry reg;
  reg.record("hybrid", "gpu-sim", 1, gpu_report(64, 500, 40));
  reg.record("hybrid", "gpu-sim", 1, gpu_report(32, 300, 60));
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first.label(), "hybrid/gpu-sim/gen1");
  const BackendRollup& r = snap[0].second;
  EXPECT_EQ(r.requests, 2u);
  EXPECT_EQ(r.queries, 96u);
  EXPECT_EQ(r.gpu_runs, 2u);
  EXPECT_EQ(r.gpu.smem_loads, 800u);
  EXPECT_EQ(r.gpu.dram_transactions, 100u);
  EXPECT_NEAR(r.branch_efficiency(), 0.9, 1e-12);
  EXPECT_NEAR(r.txn_per_request(), 2.5, 1e-12);
  // on-chip = (800 smem + 0 l1 + 20 l2) / (820 + 100 dram)
  EXPECT_NEAR(r.onchip_hit_rate(), 820.0 / 920.0, 1e-12);
}

TEST(BackendRollup, FoldAccumulatesFpgaCycles) {
  RollupRegistry reg;
  reg.record("csr", "fpga-sim", 0, fpga_run_report(10));
  reg.record("csr", "fpga-sim", 0, fpga_run_report(10));
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const BackendRollup& r = snap[0].second;
  EXPECT_EQ(r.fpga_runs, 2u);
  EXPECT_NEAR(r.fpga_ii_stall_cycles(), 2'000.0, 1e-9);
  EXPECT_NEAR(r.fpga_stall_pct(), 10.0, 1e-9);
  EXPECT_EQ(r.gpu_runs, 0u);
}

TEST(RollupRegistry, KeysSeparateGenerationsAndBackends) {
  RollupRegistry reg;
  reg.record("hybrid", "gpu-sim", 1, gpu_report(8, 10, 10));
  reg.record("hybrid", "gpu-sim", 2, gpu_report(8, 10, 10));
  reg.record("csr", "cpu-native", 1, RunReport{});
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first.label(), "csr/cpu-native/gen1");  // key-sorted
  EXPECT_EQ(snap[1].first.generation, 1u);
  EXPECT_EQ(snap[2].first.generation, 2u);
  EXPECT_NE(reg.to_markdown().find("hybrid/gpu-sim/gen2"), std::string::npos);
}

TEST(RollupRegistry, ConcurrentRecordsAllLand) {
  RollupRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.record("hybrid", "gpu-sim", 1, gpu_report(4, 5, 5));
        (void)reg.snapshot();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].second.requests, static_cast<std::uint64_t>(kThreads * kPerThread));
}

// --- Prometheus exposition ------------------------------------------------

TEST(Exporter, PrometheusRoundTripsThroughParser) {
  const MetricsSnapshot snap = sample_snapshot();
  const std::string text = to_prometheus(snap);
  const auto families = parse_prometheus(text);

  ASSERT_TRUE(families.count("hrf_requests_submitted_total"));
  EXPECT_EQ(families.at("hrf_requests_submitted_total").type, "counter");
  EXPECT_DOUBLE_EQ(families.at("hrf_requests_submitted_total").samples[0].value, 7.0);

  ASSERT_TRUE(families.count("hrf_latency_seconds"));
  EXPECT_EQ(families.at("hrf_latency_seconds").type, "histogram");
  ASSERT_TRUE(families.count("hrf_latency_seconds_bucket"));
  bool saw_inf = false;
  for (const PromSample& s : families.at("hrf_latency_seconds_bucket").samples) {
    ASSERT_TRUE(s.labels.count("stage"));
    ASSERT_TRUE(s.labels.count("le"));
    if (s.labels.at("le") == "+Inf" && s.labels.at("stage") == "execute") {
      saw_inf = true;
      EXPECT_DOUBLE_EQ(s.value, 100.0);
    }
  }
  EXPECT_TRUE(saw_inf);

  ASSERT_TRUE(families.count("hrf_backend_branch_efficiency"));
  bool saw_hybrid = false;
  for (const PromSample& s : families.at("hrf_backend_branch_efficiency").samples) {
    if (s.labels.at("variant") == "hybrid" && s.labels.at("backend") == "gpu-sim") {
      saw_hybrid = true;
      EXPECT_EQ(s.labels.at("generation"), "3");
      EXPECT_NEAR(s.value, 0.9, 1e-9);
    }
  }
  EXPECT_TRUE(saw_hybrid);

  // Rollup families are emitted for every key, even when zero there.
  ASSERT_TRUE(families.count("hrf_backend_fpga_ii_stall_cycles"));
  EXPECT_EQ(families.at("hrf_backend_fpga_ii_stall_cycles").samples.size(), 2u);
}

TEST(Exporter, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_prometheus("hrf_x{unclosed 1\n"), FormatError);
  EXPECT_THROW(parse_prometheus("hrf_x not-a-number\n"), FormatError);
  EXPECT_THROW(parse_prometheus("no spaces or value\n"), FormatError);
}

TEST(Exporter, PrometheusNameSanitizes) {
  EXPECT_EQ(prometheus_name("requests.shed_deadline"), "requests_shed_deadline");
  EXPECT_EQ(prometheus_name("gpu-sim"), "gpu_sim");
}

// --- JSON snapshot -------------------------------------------------------

TEST(Exporter, JsonCarriesFullSchema) {
  const MetricsSnapshot snap = sample_snapshot();
  const json::Value v = snapshot_to_json(snap);
  EXPECT_EQ(v.get("schema").as_string(), "hrf-metrics");
  EXPECT_EQ(v.get("counters").get("requests.completed").as_number(), 6.0);
  EXPECT_EQ(v.get("gauges").get("model_generation").as_number(), 3.0);

  const json::Value& hists = v.get("histograms");
  ASSERT_GE(hists.size(), 3u);
  const json::Value& h0 = hists.at(0);
  EXPECT_EQ(h0.get("stage").as_string(), "queue_wait");
  EXPECT_EQ(h0.get("count").as_number(), 100.0);
  EXPECT_GT(h0.get("buckets").size(), 0u);
  EXPECT_GT(h0.get("p95_ns").as_number(), h0.get("p50_ns").as_number());

  const json::Value& rollups = v.get("rollups");
  ASSERT_EQ(rollups.size(), 2u);
  bool saw_gpu = false;
  for (std::size_t i = 0; i < rollups.size(); ++i) {
    const json::Value& r = rollups.at(i);
    if (r.get("backend").as_string() == "gpu-sim") {
      saw_gpu = true;
      EXPECT_NEAR(r.get("branch_efficiency").as_number(), 0.9, 1e-9);
      EXPECT_NEAR(r.get("txn_per_request").as_number(), 2.5, 1e-9);
      EXPECT_GT(r.get("onchip_hit_rate").as_number(), 0.9);
    }
  }
  EXPECT_TRUE(saw_gpu);
  EXPECT_EQ(v.get("traces").get("completed").as_number(), 6.0);
}

// --- Schema checker ------------------------------------------------------

TEST(Exporter, SchemaCheckAcceptsOwnExport) {
  const MetricsSnapshot snap = sample_snapshot();
  EXPECT_NO_THROW(
      check_metrics_schema(to_prometheus(snap), snapshot_to_json(snap).dump(2)));
}

TEST(Exporter, SchemaCheckRejectsMissingFamily) {
  const MetricsSnapshot snap = sample_snapshot();
  std::string prom = to_prometheus(snap);
  const std::string needle = "hrf_backend_branch_efficiency";
  // Strip the family entirely (TYPE line + samples).
  std::string filtered;
  std::size_t pos = 0;
  while (pos < prom.size()) {
    const std::size_t eol = prom.find('\n', pos);
    const std::string line = prom.substr(pos, eol - pos);
    if (line.find(needle) == std::string::npos) filtered += line + "\n";
    pos = eol == std::string::npos ? prom.size() : eol + 1;
  }
  EXPECT_THROW(check_metrics_schema(filtered, snapshot_to_json(snap).dump(2)), FormatError);
}

TEST(Exporter, SchemaCheckRejectsWrongJsonSchema) {
  const MetricsSnapshot snap = sample_snapshot();
  EXPECT_THROW(check_metrics_schema(to_prometheus(snap), R"({"schema":"other","version":1})"),
               FormatError);
}

TEST(Exporter, CatalogueCoversEveryServerCounter) {
  // The zero-fill contract: every documented counter family appears in the
  // catalogue exactly once.
  const auto& cat = metric_catalogue();
  for (const std::string& counter : counter_catalogue()) {
    const std::string family = "hrf_" + prometheus_name(counter) + "_total";
    int found = 0;
    for (const MetricInfo& m : cat) {
      if (m.name == family) ++found;
    }
    EXPECT_EQ(found, 1) << family;
  }
}

// --- Paper differential: stage-1 on-chip staging --------------------------

TEST(RollupDifferential, HybridStage1OnChipHitRateBeatsIndependent) {
  // The hybrid variant stages root subtrees in shared memory, so its
  // stage-1 node traversal is served entirely on-chip; independent reads
  // root nodes through the cache hierarchy, where some loads reach DRAM.
  // Served through the rollup pipeline on the identical forest and queries,
  // hybrid's stage-1 on-chip hit rate must come out higher. (The aggregate
  // onchip_hit_rate() is NOT the discriminator: staging shrinks hybrid's
  // total access count while the cold-miss DRAM floor stays, so the blended
  // ratio can tie or even dip — the stage-1 rate is the paper's claim.)
  const Forest forest = make_random_forest({.num_trees = 12, .max_depth = 8,
                                            .num_features = 12, .seed = 21});
  const Dataset queries = make_random_queries(256, 12, 77);

  const auto serve_once = [&](Variant variant) {
    ClassifierOptions opt;
    opt.backend = Backend::GpuSim;
    opt.variant = variant;
    const Classifier clf(forest, opt);
    RollupRegistry reg;
    reg.record(to_string(variant), "gpu-sim", 0, clf.classify(queries));
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.size(), 1u);
    return snap[0].second;
  };

  const BackendRollup hybrid = serve_once(Variant::Hybrid);
  const BackendRollup independent = serve_once(Variant::Independent);
  // Structural facts the rate derives from: hybrid traverses stage 1 in
  // shared memory, independent never touches it, and both leak some loads
  // to DRAM (so independent's cache rate is genuinely below 1).
  EXPECT_GT(hybrid.gpu.smem_loads, 0u);
  EXPECT_EQ(independent.gpu.smem_loads, 0u);
  EXPECT_GT(independent.gpu.dram_transactions, 0u);
  EXPECT_GT(hybrid.stage1_onchip_hit_rate(), independent.stage1_onchip_hit_rate());
  EXPECT_LT(independent.stage1_onchip_hit_rate(), 1.0);
  EXPECT_GT(independent.stage1_onchip_hit_rate(), 0.0);
  // Staging also cuts total global-load transactions: hybrid moves the
  // stage-1 traffic on-chip instead of replaying it through the caches.
  EXPECT_LT(hybrid.gpu.gld_transactions, independent.gpu.gld_transactions);
}

}  // namespace
}  // namespace hrf::obs
