// TimeSeriesRegistry: cumulative snapshots in, closed windows out. All
// driven with a fake clock — the registry is passive, so the tests own
// every window edge.

#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace hrf::obs {
namespace {

MetricsSnapshot snap_with_counter(const std::string& name, std::uint64_t value) {
  MetricsSnapshot s;
  s.counters[name] = value;
  return s;
}

TEST(TimeSeriesRegistry, FirstSampleOnlyPrimes) {
  TimeSeriesRegistry reg;
  reg.sample(snap_with_counter("requests.completed", 10), 0.0);
  EXPECT_TRUE(reg.windows().empty());
  EXPECT_EQ(reg.total_windows(), 0u);
}

TEST(TimeSeriesRegistry, CounterDeltasArePerWindow) {
  TimeSeriesRegistry reg;
  reg.sample(snap_with_counter("requests.completed", 10), 0.0);
  reg.sample(snap_with_counter("requests.completed", 25), 0.25);
  reg.sample(snap_with_counter("requests.completed", 25), 0.50);
  reg.sample(snap_with_counter("requests.completed", 31), 0.75);

  const std::vector<WindowSample> w = reg.windows();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].delta("requests.completed"), 15u);
  EXPECT_EQ(w[1].delta("requests.completed"), 0u);
  EXPECT_EQ(w[2].delta("requests.completed"), 6u);
  EXPECT_EQ(w[0].index, 0u);
  EXPECT_EQ(w[2].index, 2u);
  EXPECT_DOUBLE_EQ(w[0].start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(w[0].end_seconds, 0.25);
  EXPECT_DOUBLE_EQ(w[2].rate_per_second("requests.completed"), 24.0);
  // Absent counters read as zero, not as an error.
  EXPECT_EQ(w[0].delta("no.such.counter"), 0u);
  EXPECT_DOUBLE_EQ(w[0].rate_per_second("no.such.counter"), 0.0);
}

TEST(TimeSeriesRegistry, MonotoneCountersNeverProduceNegativeDeltas) {
  // Counters only grow; a snapshot-source swap (reload, test fixture)
  // can make one shrink, and the window must clamp to 0 rather than
  // wrapping to ~2^64.
  TimeSeriesRegistry reg;
  Xoshiro256 rng(3);
  std::uint64_t value = 0;
  reg.sample(snap_with_counter("c", value), 0.0);
  for (int i = 1; i <= 50; ++i) {
    value += rng.next() % 100;
    reg.sample(snap_with_counter("c", value), 0.25 * i);
  }
  reg.sample(snap_with_counter("c", 0), 0.25 * 51);  // source swapped
  for (const WindowSample& w : reg.windows()) {
    EXPECT_GE(w.delta("c"), 0u);  // uint64, so this really checks no wrap
    EXPECT_LT(w.delta("c"), 1000u);
  }
}

TEST(TimeSeriesRegistry, HistogramDeltaPercentilesMatchFreshHistogram) {
  // The window's histogram delta must be indistinguishable from a
  // histogram that only ever saw the window's own samples.
  LatencyHistogram cumulative;
  Xoshiro256 rng(17);
  for (int i = 0; i < 2000; ++i) cumulative.record_ns(rng.next() % 100'000);

  TimeSeriesRegistry reg;
  MetricsSnapshot s0;
  s0.histograms.emplace_back("end_to_end", cumulative.snapshot());
  reg.sample(s0, 0.0);

  LatencyHistogram fresh;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next() % 100'000;
    cumulative.record_ns(v);
    fresh.record_ns(v);
  }
  MetricsSnapshot s1;
  s1.histograms.emplace_back("end_to_end", cumulative.snapshot());
  reg.sample(s1, 0.25);

  const std::vector<WindowSample> w = reg.windows();
  ASSERT_EQ(w.size(), 1u);
  const HistogramSnapshot* delta = w[0].histogram("end_to_end");
  ASSERT_NE(delta, nullptr);
  const HistogramSnapshot expect = fresh.snapshot();
  EXPECT_EQ(delta->total, expect.total);
  for (const double p : {50.0, 95.0, 99.0}) {
    EXPECT_EQ(delta->percentile_ns(p), expect.percentile_ns(p)) << "p" << p;
  }
  EXPECT_EQ(w[0].histogram("no_such_stage"), nullptr);
}

TEST(TimeSeriesRegistry, GaugesAndScopeRowsArePointInTime) {
  TimeSeriesRegistry reg;
  MetricsSnapshot s0;
  s0.gauges["queue_depth"] = 3.0;
  reg.sample(s0, 0.0);

  MetricsSnapshot s1;
  s1.gauges["queue_depth"] = 7.0;
  ShardHealth sh;
  sh.index = 2;
  sh.up = false;
  s1.shards.push_back(sh);
  TenantStat ten;
  ten.name = "acme";
  ten.shed = 4;
  s1.tenants.push_back(ten);
  reg.sample(s1, 0.25);

  const std::vector<WindowSample> w = reg.windows();
  ASSERT_EQ(w.size(), 1u);
  // The closing sample's values, not a delta.
  EXPECT_DOUBLE_EQ(w[0].gauges.at("queue_depth"), 7.0);
  ASSERT_EQ(w[0].shards.size(), 1u);
  EXPECT_EQ(w[0].shards[0].index, 2u);
  EXPECT_FALSE(w[0].shards[0].up);
  ASSERT_EQ(w[0].tenants.size(), 1u);
  EXPECT_EQ(w[0].tenants[0].shed, 4u);
}

TEST(TimeSeriesRegistry, RingEvictsOldestAndCountsEvictions) {
  TimeSeriesRegistry::Options opt;
  opt.capacity = 4;
  TimeSeriesRegistry reg(opt);
  reg.sample(snap_with_counter("c", 0), 0.0);
  for (int i = 1; i <= 10; ++i) {
    reg.sample(snap_with_counter("c", static_cast<std::uint64_t>(i)), 0.25 * i);
  }
  const std::vector<WindowSample> w = reg.windows();
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.front().index, 6u);  // windows 0..5 evicted
  EXPECT_EQ(w.back().index, 9u);
  EXPECT_EQ(reg.total_windows(), 10u);
  EXPECT_EQ(reg.evicted(), 6u);

  const std::vector<WindowSample> recent = reg.recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent.front().index, 8u);
  EXPECT_EQ(recent.back().index, 9u);
  // Asking for more than retained returns everything retained.
  EXPECT_EQ(reg.recent(100).size(), 4u);
}

}  // namespace
}  // namespace hrf::obs
