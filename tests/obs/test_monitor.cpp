// Monitor: fake-clock end-to-end of the third pillar. No background
// thread — tests drive tick() directly, so the window edges, the alert
// transitions, and the bundle writes are all deterministic. The bundle
// tests are the schema round-trip: write -> parse -> check_incident_bundle
// -> field-level assertions.

#include "obs/monitor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight_recorder.hpp"
#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"

namespace hrf::obs {
namespace {

namespace fs = std::filesystem;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Deterministic metrics source: every snapshot adds 50 failures, 50
/// successes, and 100 end_to_end samples at 2 ms to the cumulative
/// state — a steady 50% failure rate that burns any sane budget. State
/// sits behind a shared_ptr so the callable stays copyable for
/// std::function while the histogram (non-copyable) is shared.
Monitor::MetricsSource burning_source() {
  struct State {
    std::uint64_t failed = 0;
    std::uint64_t completed = 0;
    LatencyHistogram latency;
  };
  auto state = std::make_shared<State>();
  return [state]() {
    state->failed += 50;
    state->completed += 50;
    for (int i = 0; i < 100; ++i) state->latency.record_ns(2'000'000);
    MetricsSnapshot s;
    s.counters["requests.failed"] = state->failed;
    s.counters["requests.completed"] = state->completed;
    s.counters["breaker.opened"] = 1;  // lands in the bundle's self_heal ledger
    s.histograms.emplace_back("end_to_end", state->latency.snapshot());
    return s;
  };
}

MonitorOptions manual_options(const std::string& incident_dir) {
  MonitorOptions opt;
  opt.start_thread = false;
  opt.interval_seconds = 1.0;
  opt.slo_enabled = true;
  opt.slo.success_target = 0.9;
  opt.slo.fast_window_seconds = 1.0;
  opt.slo.slow_window_seconds = 1.0;
  opt.slo.fast_burn_threshold = 5.0;
  opt.slo.slow_burn_threshold = 5.0;
  opt.slo.hysteresis_evaluations = 2;
  opt.incident_dir = incident_dir;
  return opt;
}

class MonitorTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/hrf_monitor_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(MonitorTest, AlertFireWritesSchemaValidBundleSameTick) {
  FlightRecorder recorder(64);
  recorder.record("breaker", "breaker_open", "shard:0", "seeded before the alert");
  Monitor monitor(manual_options(dir_), burning_source(), &recorder);

  monitor.tick(0.0);  // primes the registry; no window yet
  EXPECT_EQ(monitor.windows_recorded(), 0u);
  monitor.tick(1.0);  // window 0: breach streak 1
  EXPECT_EQ(monitor.bundles_written(), 0u);
  monitor.tick(2.0);  // window 1: hysteresis met -> fire -> bundle
  EXPECT_EQ(monitor.windows_recorded(), 2u);
  EXPECT_EQ(monitor.alerts_fired_total(), 1u);
  ASSERT_EQ(monitor.bundles_written(), 1u);
  const std::string path = monitor.last_bundle_path();
  ASSERT_TRUE(fs::exists(path));

  const json::Value bundle = json::Value::parse(read_file(path));
  ASSERT_NO_THROW(check_incident_bundle(bundle));

  EXPECT_EQ(bundle.get("schema").as_string(), "hrf-incident");
  EXPECT_EQ(bundle.get("version").as_number(), 1.0);
  EXPECT_EQ(bundle.get("reason").as_string(), "alert:server/success_rate");

  // The firing alert row is in the bundle.
  const json::Value& alerts = bundle.get("alerts");
  bool firing_row = false;
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const json::Value& a = alerts.at(i);
    if (a.get("scope").as_string() == "server" &&
        a.get("objective").as_string() == "success_rate" && a.get("firing").as_bool()) {
      firing_row = true;
      EXPECT_GE(a.get("fast_burn").as_number(), 5.0);
    }
  }
  EXPECT_TRUE(firing_row);

  // Both closed windows, with their non-zero counter deltas and a
  // plausible windowed p95 (100 samples at 2 ms).
  const json::Value& windows = bundle.get("windows");
  ASSERT_EQ(windows.size(), 2u);
  const json::Value& w0 = windows.at(0);
  EXPECT_EQ(w0.get("counters").get("requests.failed").as_number(), 50.0);
  const json::Value& latency = w0.get("latency");
  ASSERT_EQ(latency.size(), 1u);
  EXPECT_EQ(latency.at(0).get("stage").as_string(), "end_to_end");
  EXPECT_EQ(latency.at(0).get("count").as_number(), 100.0);
  EXPECT_GT(latency.at(0).get("p95_ms").as_number(), 1.0);
  EXPECT_LT(latency.at(0).get("p95_ms").as_number(), 10.0);

  // The event ring is embedded: the pre-incident breaker event and the
  // alert transition itself.
  const json::Value& events = bundle.get("events");
  bool saw_breaker = false;
  bool saw_alert = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& e = events.at(i);
    if (e.get("category").as_string() == "breaker") saw_breaker = true;
    if (e.get("category").as_string() == "alert" &&
        e.get("name").as_string() == "slo_fired") {
      saw_alert = true;
    }
  }
  EXPECT_TRUE(saw_breaker);
  EXPECT_TRUE(saw_alert);

  // Self-healing ledger carries the cumulative breaker counter.
  EXPECT_EQ(bundle.get("self_heal").get("breaker.opened").as_number(), 1.0);

  // And the recorder saw the bundle write land.
  bool saw_written = false;
  for (const FlightEvent& e : recorder.events()) {
    if (e.category == "incident" && e.name == "bundle_written") saw_written = true;
  }
  EXPECT_TRUE(saw_written);
}

TEST_F(MonitorTest, TriggerIncidentWritesBundleOnNextTick) {
  MonitorOptions opt;
  opt.start_thread = false;
  opt.incident_dir = dir_;
  Monitor monitor(opt, burning_source());  // SLOs off: trigger path only

  monitor.trigger_incident("signal:SIGUSR1");
  EXPECT_EQ(monitor.bundles_written(), 0u);  // written on the tick, not inline
  monitor.tick(0.0);
  ASSERT_EQ(monitor.bundles_written(), 1u);

  const json::Value bundle = json::Value::parse(read_file(monitor.last_bundle_path()));
  ASSERT_NO_THROW(check_incident_bundle(bundle));
  EXPECT_EQ(bundle.get("reason").as_string(), "signal:SIGUSR1");
  EXPECT_EQ(bundle.get("alerts").size(), 0u);  // no engine armed
  EXPECT_TRUE(monitor.alerts().empty());

  // A second trigger gets its own numbered bundle.
  monitor.trigger_incident("cli:trigger-incident");
  monitor.tick(1.0);
  EXPECT_EQ(monitor.bundles_written(), 2u);
  EXPECT_NE(monitor.last_bundle_path().find("incident-000001.json"), std::string::npos);
}

TEST_F(MonitorTest, NoIncidentDirMeansAlertsFireButNothingIsWritten) {
  Monitor monitor(manual_options(""), burning_source());
  for (int t = 0; t <= 4; ++t) monitor.tick(t);
  EXPECT_EQ(monitor.alerts_fired_total(), 1u);
  EXPECT_EQ(monitor.bundles_written(), 0u);
  EXPECT_TRUE(monitor.last_bundle_path().empty());
}

TEST_F(MonitorTest, SnapshotFoldsSloRowsForTheExporter) {
  Monitor monitor(manual_options(dir_), burning_source());
  monitor.tick(0.0);
  monitor.tick(1.0);
  const MetricsSnapshot snap = monitor.snapshot();
  EXPECT_TRUE(snap.has_slo);
  ASSERT_FALSE(snap.slo.empty());
  EXPECT_EQ(snap.slo.front().scope, "server");
  EXPECT_EQ(snap.slo.front().objective, "success_rate");
}

TEST_F(MonitorTest, CheckIncidentBundleRejectsBadDocuments) {
  json::Value doc = json::Value::object();
  doc["schema"] = "not-an-incident";
  EXPECT_THROW(check_incident_bundle(doc), FormatError);

  // A real bundle with the version bumped must be rejected too.
  Monitor monitor(manual_options(dir_), burning_source());
  monitor.trigger_incident("test");
  monitor.tick(0.0);
  json::Value bundle = json::Value::parse(read_file(monitor.last_bundle_path()));
  bundle["version"] = 2;
  EXPECT_THROW(check_incident_bundle(bundle), FormatError);
}

}  // namespace
}  // namespace hrf::obs
