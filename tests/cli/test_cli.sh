#!/usr/bin/env bash
# End-to-end exercise of the hrf_cli tool: gen -> train -> info -> layout
# -> predict on all three backends. Usage: test_cli.sh <path-to-hrf_cli>
set -u

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
FAILURES=0

check() {  # check <description> <needle> <file>
  if grep -q "$2" "$3"; then
    echo "ok: $1"
  else
    echo "FAIL: $1 (missing '$2' in $3)"
    FAILURES=$((FAILURES + 1))
  fi
}

"$CLI" --mode gen --dataset susy --samples 20000 --out "$DIR/d.hrfd" > "$DIR/gen.log" 2>&1
check "gen reports dimensions" "20000 samples x 18 features" "$DIR/gen.log"

"$CLI" --mode train --data "$DIR/d.hrfd" --split --trees 15 --depth 10 \
       --out "$DIR/m.hrff" > "$DIR/train.log" 2>&1
check "train reports tree count" "trained 15 trees" "$DIR/train.log"
check "train reports holdout accuracy" "holdout accuracy" "$DIR/train.log"
[ -f "$DIR/m.hrff" ] && echo "ok: model file written" || { echo "FAIL: no model file"; FAILURES=$((FAILURES+1)); }

"$CLI" --mode info --model "$DIR/m.hrff" > "$DIR/info.log" 2>&1
check "info shows max depth" "max depth" "$DIR/info.log"
check "info shows feature importances" "importance" "$DIR/info.log"

"$CLI" --mode layout --model "$DIR/m.hrff" > "$DIR/layout.log" 2>&1
check "layout sweeps SD values" "bytes vs CSR" "$DIR/layout.log"

for backend in cpu gpu-sim fpga-sim; do
  "$CLI" --mode predict --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
         --backend "$backend" --variant independent --sd 6 \
         --out "$DIR/p_$backend.csv" > "$DIR/predict_$backend.log" 2>&1
  check "predict on $backend reports accuracy" "accuracy vs dataset labels" "$DIR/predict_$backend.log"
  check "predict on $backend prints confusion matrix" "precision" "$DIR/predict_$backend.log"
  [ -s "$DIR/p_$backend.csv" ] && echo "ok: predictions csv ($backend)" || { echo "FAIL: csv $backend"; FAILURES=$((FAILURES+1)); }
done

# Predictions must be identical across backends.
if cmp -s "$DIR/p_cpu.csv" "$DIR/p_gpu-sim.csv" && cmp -s "$DIR/p_cpu.csv" "$DIR/p_fpga-sim.csv"; then
  echo "ok: backend predictions identical"
else
  echo "FAIL: backend predictions differ"
  FAILURES=$((FAILURES + 1))
fi

# --- Robustness: offline layout compilation + fault injection ------------

"$CLI" --mode compile --model "$DIR/m.hrff" --layout hier --sd 6 \
       --out "$DIR/l.hrfl" > "$DIR/compile.log" 2>&1
check "compile writes a hierarchical blob" "compiled hierarchical layout" "$DIR/compile.log"

"$CLI" --mode predict --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend cpu --variant independent --layout-blob "$DIR/l.hrfl" \
       --out "$DIR/p_blob.csv" > "$DIR/predict_blob.log" 2>&1
check "predict from precompiled blob" "accuracy vs dataset labels" "$DIR/predict_blob.log"
if cmp -s "$DIR/p_cpu.csv" "$DIR/p_blob.csv"; then
  echo "ok: blob predictions match built-layout predictions"
else
  echo "FAIL: blob predictions differ"
  FAILURES=$((FAILURES + 1))
fi

# A transient GPU fault must be absorbed by the fallback chain (retry), and
# a persistent one must degrade all the way to cpu-native — both with
# predictions identical to the clean CPU run.
for spec in resource:gpu resource:gpu:-1; do
  if "$CLI" --mode predict --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
         --backend gpu-sim --variant hybrid --sd 6 --inject-fault "$spec" \
         --out "$DIR/p_inject.csv" > "$DIR/predict_inject.log" 2>&1; then
    check "injected $spec degrades gracefully" "degraded: " "$DIR/predict_inject.log"
    if cmp -s "$DIR/p_cpu.csv" "$DIR/p_inject.csv"; then
      echo "ok: degraded predictions identical to clean cpu run ($spec)"
    else
      echo "FAIL: degraded predictions differ ($spec)"
      FAILURES=$((FAILURES + 1))
    fi
  else
    echo "FAIL: fallback chain should absorb $spec"
    FAILURES=$((FAILURES + 1))
  fi
done
check "persistent fault reached cpu-native" "cpu-native" "$DIR/predict_inject.log"

# With fallback disabled the injected fault must surface as a clean error.
if "$CLI" --mode predict --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 6 --inject-fault resource:gpu \
       --no-fallback > "$DIR/nofallback.log" 2>&1; then
  echo "FAIL: --no-fallback should exit nonzero on injected fault"
  FAILURES=$((FAILURES + 1))
else
  check "--no-fallback surfaces the fault" "error: injected fault" "$DIR/nofallback.log"
fi

# A bit-flipped layout blob must be rejected by its checksum, not served.
if "$CLI" --mode predict --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend cpu --variant independent --layout-blob "$DIR/l.hrfl" \
       --inject-fault bitflip:layout > "$DIR/bitflip.log" 2>&1; then
  echo "FAIL: corrupted blob should exit nonzero"
  FAILURES=$((FAILURES + 1))
else
  check "corrupted blob reports checksum error" "checksum mismatch" "$DIR/bitflip.log"
fi

# Error paths must fail cleanly, not crash.
if "$CLI" --mode predict --model /nonexistent.hrff --data "$DIR/d.hrfd" > "$DIR/err.log" 2>&1; then
  echo "FAIL: missing model should exit nonzero"
  FAILURES=$((FAILURES + 1))
else
  check "missing model reports an error" "error:" "$DIR/err.log"
fi
if "$CLI" --mode bogus > "$DIR/err2.log" 2>&1; then
  echo "FAIL: unknown mode should exit nonzero"
  FAILURES=$((FAILURES + 1))
else
  echo "ok: unknown mode rejected"
fi

echo "cli test failures: $FAILURES"
exit "$FAILURES"
