#!/usr/bin/env bash
# End-to-end exercise of `hrf_cli --mode serve`: a synthetic multi-threaded
# client driver against the ForestServer, clean and under persistent
# injected GPU faults. Usage: test_cli_serve.sh <path-to-hrf_cli>
set -u

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
FAILURES=0

check() {  # check <description> <needle> <file>
  if grep -q "$2" "$3"; then
    echo "ok: $1"
  else
    echo "FAIL: $1 (missing '$2' in $3)"
    FAILURES=$((FAILURES + 1))
  fi
}

"$CLI" --mode gen --dataset susy --samples 4000 --out "$DIR/d.hrfd" > "$DIR/gen.log" 2>&1
"$CLI" --mode train --data "$DIR/d.hrfd" --trees 10 --depth 8 \
       --out "$DIR/m.hrff" > "$DIR/train.log" 2>&1
[ -f "$DIR/m.hrff" ] || { echo "FAIL: model setup"; exit 1; }

# --- Clean serving: all requests complete, clean drain, exit 0 -----------
if "$CLI" --mode serve --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 4 \
       --workers 3 --clients 4 --requests 6 --batch 128 > "$DIR/serve.log" 2>&1; then
  echo "ok: clean serve exits 0"
else
  echo "FAIL: clean serve exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "serve banner shows configuration" "serving gpu-sim/hybrid: 3 workers" "$DIR/serve.log"
check "all requests completed" "24 ok (0 degraded), 0 overload-rejected, 0 quota-shed, 0 deadline, 0 failed" "$DIR/serve.log"
check "counters are reported" "requests.completed" "$DIR/serve.log"
check "breaker stayed closed" "breaker: state=closed trips=0" "$DIR/serve.log"
check "drain abandoned nothing" "abandoned=0" "$DIR/serve.log"
check "clean shutdown reported" "serve: clean shutdown" "$DIR/serve.log"

# --- Dynamic micro-batching: concurrent clients against --batch-max 8 ---
# coalesce into backend-native batches; responses stay per-request, the
# drain is clean, and the batch counters appear in the report.
if "$CLI" --mode serve --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 4 \
       --batch-max 8 --batch-wait-us 2000 \
       --workers 2 --clients 6 --requests 5 --batch 32 > "$DIR/batched.log" 2>&1; then
  echo "ok: batched serve exits 0"
else
  echo "FAIL: batched serve exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "batched run answers every request" "30 ok (0 degraded), 0 overload-rejected, 0 quota-shed, 0 deadline, 0 failed" "$DIR/batched.log"
check "batches were formed" "batch.formed" "$DIR/batched.log"
check "batched serve shuts down cleanly" "serve: clean shutdown" "$DIR/batched.log"

# --- Tenant quotas: clients round-robin across three weighted tenants; --
# an unloaded run admits everyone, and the per-tenant accounting table
# (weight, reserved slots, admitted, shed) is printed on drain.
if "$CLI" --mode serve --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 4 \
       --workers 2 --clients 3 --requests 4 --batch 128 --queue-cap 12 \
       --tenants gold,silver,bronze --tenant-weights 3,2,1 \
       > "$DIR/tenants.log" 2>&1; then
  echo "ok: tenant-quota serve exits 0"
else
  echo "FAIL: tenant-quota serve exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "quota run admits everyone" "12 ok (0 degraded), 0 overload-rejected, 0 quota-shed" "$DIR/tenants.log"
check "tenant table printed" "Tenant quotas" "$DIR/tenants.log"
check "tenant rows carry reserved shares" "gold" "$DIR/tenants.log"
check "tenant quota serve shuts down cleanly" "serve: clean shutdown" "$DIR/tenants.log"

# --- Breaker scenario: persistent GPU faults, fallback off in the -------
# classifier so failures drive the server's retry + breaker. Every request
# must still be answered (degraded via the CPU fallback replica) and the
# run must still shut down cleanly with exit code 0.
if "$CLI" --mode serve --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 4 --no-fallback \
       --inject-fault resource:gpu:-1 --retries 1 --breaker-threshold 2 \
       --breaker-open-ms 5000 \
       --workers 2 --clients 8 --requests 4 --batch 128 > "$DIR/breaker.log" 2>&1; then
  echo "ok: faulted serve still exits 0"
else
  echo "FAIL: faulted serve exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "every request served despite faults" "32 ok" "$DIR/breaker.log"
check "no request failed under faults" "0 failed" "$DIR/breaker.log"
check "degradation routed to cpu fallback" "cpu-native fallback" "$DIR/breaker.log"
check "breaker tripped and stayed open" "breaker: state=open" "$DIR/breaker.log"
check "fallback counter accounts for all requests" "fallback.served" "$DIR/breaker.log"
check "faulted run still drains cleanly" "serve: clean shutdown" "$DIR/breaker.log"

# --- Transient fault: absorbed by the in-classifier fallback chain, -----
# whose degradation trail must propagate into the served responses.
if "$CLI" --mode serve --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 4 \
       --inject-fault resource:gpu --workers 1 --clients 1 --requests 4 \
       --batch 128 > "$DIR/transient.log" 2>&1; then
  echo "ok: transient-fault serve exits 0"
else
  echo "FAIL: transient-fault serve exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "classifier degradations reach responses" "sample degradation:" "$DIR/transient.log"
check "transient run shuts down cleanly" "serve: clean shutdown" "$DIR/transient.log"

# --- Silent corruption: corrupt:replica poisons a live replica; the ------
# scrubber's CRC pass detects it and rebuilds the replica in place while
# audits (every request) guarantee no client ever saw a wrong answer.
if "$CLI" --mode serve --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 4 \
       --inject-fault corrupt:replica --scrub-interval-ms 2 --audit-sample 1 \
       --workers 2 --clients 4 --requests 25 --batch 128 > "$DIR/integrity.log" 2>&1; then
  echo "ok: corrupted serve exits 0"
else
  echo "FAIL: corrupted serve exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "every request answered despite corruption" "100 ok" "$DIR/integrity.log"
check "no request failed during repair" "0 failed" "$DIR/integrity.log"
check "self-heal summary printed" "Self-heal summary" "$DIR/integrity.log"
if grep -E '\| scrub corruptions +\| [1-9]' "$DIR/integrity.log" > /dev/null; then
  echo "ok: scrubber caught the injected corruption"
else
  echo "FAIL: scrubber never flagged a corruption"
  FAILURES=$((FAILURES + 1))
fi
if grep -E '\| replica repairs +\| [1-9]' "$DIR/integrity.log" > /dev/null; then
  echo "ok: corrupted replica was rebuilt in place"
else
  echo "FAIL: no replica repair recorded"
  FAILURES=$((FAILURES + 1))
fi
check "corrupted run still drains cleanly" "serve: clean shutdown" "$DIR/integrity.log"

# --- Telemetry surface: traced serve + metrics export + schema check -----
if "$CLI" --mode serve --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 4 \
       --trace-sample 1.0 --trace-top 2 --metrics-out "$DIR/metrics.prom" \
       --workers 2 --clients 2 --requests 4 --batch 128 > "$DIR/traced.log" 2>&1; then
  echo "ok: traced serve exits 0"
else
  echo "FAIL: traced serve exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "rollup table printed on drain" "variant/backend/gen" "$DIR/traced.log"
check "trace summary printed" "traces:" "$DIR/traced.log"
check "slowest traces render as span trees" "outcome=completed" "$DIR/traced.log"
check "metrics files written" "metrics written to" "$DIR/traced.log"
[ -f "$DIR/metrics.prom" ] || { echo "FAIL: metrics.prom missing"; FAILURES=$((FAILURES + 1)); }
[ -f "$DIR/metrics.prom.json" ] || { echo "FAIL: metrics.prom.json missing"; FAILURES=$((FAILURES + 1)); }
check "prometheus export carries rollup gauges" "hrf_backend_branch_efficiency" "$DIR/metrics.prom"
check "prometheus export carries stage-1 hit rate" "hrf_backend_stage1_onchip_hit_rate" "$DIR/metrics.prom"
check "prometheus export labels the served variant" 'variant="hybrid"' "$DIR/metrics.prom"
check "json export uses the metrics schema" "hrf-metrics" "$DIR/metrics.prom.json"

if "$CLI" --mode metrics-check --metrics "$DIR/metrics.prom" > "$DIR/mcheck.log" 2>&1; then
  echo "ok: metrics-check passes on the serve export"
else
  echo "FAIL: metrics-check rejected the serve export"
  FAILURES=$((FAILURES + 1))
fi
check "metrics-check reports the catalogue" "catalogued families" "$DIR/mcheck.log"

# --- Trace mode: single-shot traced requests with per-chunk spans --------
if "$CLI" --mode trace --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 4 \
       --requests 3 --batch 128 --chunk 32 > "$DIR/trace.log" 2>&1; then
  echo "ok: trace mode exits 0"
else
  echo "FAIL: trace mode exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "trace mode renders chunk spans" "chunk-0" "$DIR/trace.log"
check "chunk spans carry gpu counters" "gpu.branch_efficiency" "$DIR/trace.log"
check "request roots carry outcomes" "outcome=completed" "$DIR/trace.log"

# Error path: serving without a model must fail cleanly, not crash.
if "$CLI" --mode serve --model /nonexistent.hrff --data "$DIR/d.hrfd" > "$DIR/err.log" 2>&1; then
  echo "FAIL: missing model should exit nonzero"
  FAILURES=$((FAILURES + 1))
else
  check "missing model reports an error" "error:" "$DIR/err.log"
fi

echo "cli serve test failures: $FAILURES"
exit "$FAILURES"
