#!/usr/bin/env bash
# End-to-end exercise of `hrf_cli --mode bench`: run the sweep twice on
# simulated backends (deterministic, so the numbers are byte-stable),
# validate the emitted JSON schema, and check both sides of the --compare
# regression gate. Usage: test_cli_bench.sh <path-to-hrf_cli>
set -u

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
FAILURES=0

check() {  # check <description> <needle> <file>
  if grep -q "$2" "$3"; then
    echo "ok: $1"
  else
    echo "FAIL: $1 (missing '$2' in $3)"
    FAILURES=$((FAILURES + 1))
  fi
}

BENCH_ARGS=(--mode bench --backends gpu-sim,fpga-sim --batches 32,64
            --repeats 3 --trees 8 --depth 8 --features 12)

# --- Baseline run writes a schema-versioned report ------------------------
if "$CLI" "${BENCH_ARGS[@]}" --out "$DIR/base.json" > "$DIR/base.log" 2>&1; then
  echo "ok: bench run exits 0"
else
  echo "FAIL: bench run exited nonzero"
  cat "$DIR/base.log"
  FAILURES=$((FAILURES + 1))
fi
[ -f "$DIR/base.json" ] || { echo "FAIL: bench wrote no report"; exit 1; }

check "report carries the schema name" '"schema": "hrf-bench"' "$DIR/base.json"
check "report carries the schema version" '"schema_version": 1' "$DIR/base.json"
check "report fingerprints the environment" '"compiler"' "$DIR/base.json"
check "report records the repeat policy" '"repeat_runs": 3' "$DIR/base.json"
check "report describes the synthetic forest" '"num_trees": 8' "$DIR/base.json"
check "cases carry p50" '"p50_ns_per_query"' "$DIR/base.json"
check "cases carry p95" '"p95_ns_per_query"' "$DIR/base.json"
check "cases carry p99" '"p99_ns_per_query"' "$DIR/base.json"
check "cases carry throughput" '"throughput_qps"' "$DIR/base.json"
check "sweep covers gpu-sim" '"backend": "gpu-sim"' "$DIR/base.json"
check "sweep covers fpga-sim" '"backend": "fpga-sim"' "$DIR/base.json"
check "sweep covers the hybrid variant" '"variant": "hybrid"' "$DIR/base.json"
check "console table renders the sweep" "p95 ns/q" "$DIR/base.log"

# --- Identical rerun passes the compare gate ------------------------------
if "$CLI" "${BENCH_ARGS[@]}" --out "$DIR/rerun.json" \
       --compare "$DIR/base.json" > "$DIR/compare_ok.log" 2>&1; then
  echo "ok: compare against identical baseline exits 0"
else
  echo "FAIL: compare against identical baseline exited nonzero"
  cat "$DIR/compare_ok.log"
  FAILURES=$((FAILURES + 1))
fi
check "compare reports success" "bench compare vs .*: ok" "$DIR/compare_ok.log"

# --- Doctored baseline (p95 forced near zero) must trip the gate ----------
sed -E 's/"p95_ns_per_query": [0-9.eE+-]+/"p95_ns_per_query": 0.0001/' \
    "$DIR/base.json" > "$DIR/doctored.json"
if "$CLI" "${BENCH_ARGS[@]}" --out "$DIR/regressed.json" \
       --compare "$DIR/doctored.json" > "$DIR/compare_fail.log" 2>&1; then
  echo "FAIL: injected p95 regression should exit nonzero"
  FAILURES=$((FAILURES + 1))
else
  echo "ok: injected p95 regression exits nonzero"
fi
check "regressed cases are named" "REGRESSION" "$DIR/compare_fail.log"
check "compare reports failure" "FAILED" "$DIR/compare_fail.log"

# --- Baseline missing a case must also fail -------------------------------
if "$CLI" --mode bench --backends gpu-sim --batches 32 --repeats 2 \
       --trees 8 --depth 8 --features 12 --out "$DIR/narrow.json" \
       --compare "$DIR/base.json" > "$DIR/compare_missing.log" 2>&1; then
  echo "FAIL: dropped cases should exit nonzero"
  FAILURES=$((FAILURES + 1))
else
  echo "ok: dropped cases exit nonzero"
fi
check "missing cases are named" "MISSING" "$DIR/compare_missing.log"

# --- Error path: comparing against a non-report fails cleanly -------------
echo '{"schema":"not-a-bench","schema_version":1}' > "$DIR/garbage.json"
if "$CLI" "${BENCH_ARGS[@]}" --out "$DIR/x.json" \
       --compare "$DIR/garbage.json" > "$DIR/err.log" 2>&1; then
  echo "FAIL: comparing against a non-report should exit nonzero"
  FAILURES=$((FAILURES + 1))
else
  check "schema mismatch reports an error" "error:" "$DIR/err.log"
fi

echo "cli bench test failures: $FAILURES"
exit "$FAILURES"
