#!/usr/bin/env bash
# End-to-end model lifecycle through hrf_cli: publish to a versioned store,
# serve from it, hot-swap a good generation under live clients, reject a
# behaviorally-wrong one via shadow validation, and survive a publisher
# crash with the store intact. Usage: test_cli_lifecycle.sh <path-to-hrf_cli>
set -u

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
FAILURES=0

check() {  # check <description> <needle> <file>
  if grep -q "$2" "$3"; then
    echo "ok: $1"
  else
    echo "FAIL: $1 (missing '$2' in $3)"
    FAILURES=$((FAILURES + 1))
  fi
}

# --- Artifacts: dataset, serving model, and a DIFFERENT forest whose ------
# layout blob is structurally valid but behaviorally wrong for the model.
"$CLI" --mode gen --dataset susy --samples 3000 --out "$DIR/d.hrfd" > "$DIR/gen.log" 2>&1
"$CLI" --mode train --data "$DIR/d.hrfd" --trees 8 --depth 8 \
       --out "$DIR/m.hrff" > "$DIR/train.log" 2>&1
"$CLI" --mode train --data "$DIR/d.hrfd" --trees 8 --depth 8 --seed 7 \
       --out "$DIR/other.hrff" > "$DIR/train2.log" 2>&1
"$CLI" --mode compile --model "$DIR/other.hrff" --layout hier --sd 4 \
       --out "$DIR/bad_blob.hrfl" > "$DIR/compile.log" 2>&1
[ -f "$DIR/m.hrff" ] && [ -f "$DIR/bad_blob.hrfl" ] || { echo "FAIL: artifact setup"; exit 1; }

# --- Publish generation 1 and inspect the store --------------------------
if "$CLI" --mode publish --store "$DIR/store" --model "$DIR/m.hrff" \
       --layout hier --sd 4 --note "first" > "$DIR/publish.log" 2>&1; then
  echo "ok: publish exits 0"
else
  echo "FAIL: publish exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "publish reports the generation" "published generation 1" "$DIR/publish.log"
"$CLI" --mode store --store "$DIR/store" > "$DIR/store.log" 2>&1
check "store lists the generation" "current generation: 1" "$DIR/store.log"
check "store shows the layout kind" "hierarchical" "$DIR/store.log"

# --- Lifecycle serve: live clients, a good hot-swap, a bad publish --------
# rejected by shadow validation — the old model must keep serving.
if "$CLI" --mode serve --data "$DIR/d.hrfd" --model-store "$DIR/store" \
       --backend gpu-sim --variant hybrid --sd 4 \
       --workers 2 --clients 4 --batch 64 --watch-ms 10 --canary-requests 2 \
       --publish-live "$DIR/m.hrff" --publish-bad "$DIR/m.hrff:$DIR/bad_blob.hrfl" \
       > "$DIR/lifecycle.log" 2>&1; then
  echo "ok: lifecycle serve exits 0"
else
  echo "FAIL: lifecycle serve exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "serving starts from the store" "serving generation 1 from store" "$DIR/lifecycle.log"
check "good publish promoted" "reload gen 1 -> 2: promoted" "$DIR/lifecycle.log"
check "hot-swap completed under load" "hot-swap to gen 2 complete" "$DIR/lifecycle.log"
check "bad publish rejected by shadow" "rejected-shadow" "$DIR/lifecycle.log"
check "old model still serving after rejection" \
      "bad generation 3 rejected; still serving gen 2" "$DIR/lifecycle.log"
check "no client saw a wrong prediction" "prediction mismatches: 0" "$DIR/lifecycle.log"
check "no client saw a failure" " 0 failed" "$DIR/lifecycle.log"
check "lifecycle counters reported" "reloads: promoted=1 rejected=1" "$DIR/lifecycle.log"
check "lifecycle run drains cleanly" "serve: clean shutdown" "$DIR/lifecycle.log"

# --- Crash-safe publish: a publisher killed mid-write must not corrupt ----
# the store; recovery quarantines the partial generation and keeps serving.
"$CLI" --mode publish --store "$DIR/store" --model "$DIR/m.hrff" \
       --layout hier --sd 4 --inject-fault crash:publish > "$DIR/crash.log" 2>&1
CRASH_RC=$?
if [ "$CRASH_RC" -eq 137 ]; then
  echo "ok: injected crash killed the publisher (exit 137)"
else
  echo "FAIL: expected exit 137 from crash:publish, got $CRASH_RC"
  FAILURES=$((FAILURES + 1))
fi
"$CLI" --mode store --store "$DIR/store" > "$DIR/recover.log" 2>&1
check "store recovers to the last good generation" "current generation: 3" "$DIR/recover.log"
check "partial generation quarantined, not deleted" "quarantined:" "$DIR/recover.log"

echo "cli lifecycle test failures: $FAILURES"
exit "$FAILURES"
