#!/usr/bin/env bash
# End-to-end exercise of `hrf_cli --mode cluster`: a sharded router fleet
# under synthetic client load — healthy, with a shard killed mid-traffic,
# and a staged rolling reload halted by a mid-wave kill. Fast smoke (the
# wall-clock-heavy chaos scenarios live in tools/chaos.sh and
# tests/cluster/test_cluster_chaos.cpp). Usage: test_cli_cluster.sh <hrf_cli>
set -u

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
FAILURES=0

check() {  # check <description> <needle> <file>
  if grep -q "$2" "$3"; then
    echo "ok: $1"
  else
    echo "FAIL: $1 (missing '$2' in $3)"
    FAILURES=$((FAILURES + 1))
  fi
}

"$CLI" --mode gen --dataset susy --samples 2000 --out "$DIR/d.hrfd" > "$DIR/gen.log" 2>&1
"$CLI" --mode train --data "$DIR/d.hrfd" --trees 8 --depth 8 \
       --out "$DIR/m.hrff" > "$DIR/train.log" 2>&1
[ -f "$DIR/m.hrff" ] || { echo "FAIL: model setup"; exit 1; }

# --- Healthy fleet: every request answered, exit 0 -----------------------
if "$CLI" --mode cluster --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --shards 3 --router-policy hash --hedge-ms 50 \
       --clients 2 --requests 8 --batch 64 \
       --metrics-out "$DIR/cluster.prom" > "$DIR/healthy.log" 2>&1; then
  echo "ok: healthy cluster exits 0"
else
  echo "FAIL: healthy cluster exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "banner shows fleet shape" "cluster: 3 shards (consistent-hash routing" "$DIR/healthy.log"
check "all requests succeeded" "ok=16 failed=0 wrong=0 success=1.0000" "$DIR/healthy.log"
check "per-shard status printed" "shard 0: up" "$DIR/healthy.log"
check "clean shutdown reported" "cluster: clean shutdown" "$DIR/healthy.log"
[ -f "$DIR/cluster.prom" ] || { echo "FAIL: cluster.prom missing"; FAILURES=$((FAILURES + 1)); }
check "export carries shard health rows" "hrf_shard_up" "$DIR/cluster.prom"
check "export carries cluster counters" "hrf_cluster_completed_total" "$DIR/cluster.prom"

if "$CLI" --mode metrics-check --metrics "$DIR/cluster.prom" > "$DIR/mcheck.log" 2>&1; then
  echo "ok: metrics-check passes on the cluster export"
else
  echo "FAIL: metrics-check rejected the cluster export"
  FAILURES=$((FAILURES + 1))
fi

# --- Kill a shard mid-traffic: failover keeps the success SLO ------------
if "$CLI" --mode cluster --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --shards 3 --clients 2 --requests 12 --batch 64 \
       --kill-shard 1 --chaos-delay-ms 5 --slo-success 0.99 > "$DIR/kill.log" 2>&1; then
  echo "ok: kill-shard run holds the SLO and exits 0"
else
  echo "FAIL: kill-shard run exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "kill is announced" "chaos: killed shard 1" "$DIR/kill.log"
check "dead shard reported down" "shard 1: down" "$DIR/kill.log"
check "kill run still shuts down cleanly" "cluster: clean shutdown" "$DIR/kill.log"

# --- Rolling reload: publish gen1, reload the fleet to a freshly ---------
# published generation; the completed wave reports every shard promoted.
"$CLI" --mode publish --store "$DIR/store" --model "$DIR/m.hrff" \
       --layout hier --sd 4 --note gen1 > "$DIR/pub.log" 2>&1
check "store seeded with gen1" "published generation 1" "$DIR/pub.log"

if "$CLI" --mode cluster --model-store "$DIR/store" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 4 \
       --shards 2 --clients 2 --requests 16 --batch 64 \
       --rolling-reload --publish-live "$DIR/m.hrff" \
       --canary-requests 0 > "$DIR/reload.log" 2>&1; then
  echo "ok: rolling reload run exits 0"
else
  echo "FAIL: rolling reload run exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "wave completed" "rolling reload -> gen 2: completed" "$DIR/reload.log"
check "reload run shuts down cleanly" "cluster: clean shutdown" "$DIR/reload.log"

# --- Rolling reload halted by a mid-wave kill: wave rolls back -----------
if "$CLI" --mode cluster --model-store "$DIR/store" --data "$DIR/d.hrfd" \
       --backend gpu-sim --variant hybrid --sd 4 \
       --shards 3 --clients 2 --requests 24 --batch 64 \
       --rolling-reload --publish-live "$DIR/m.hrff" \
       --canary-requests 1 --kill-shard 2 --chaos-delay-ms 2 \
       > "$DIR/halt.log" 2>&1; then
  echo "ok: halted-wave run exits 0 (halt was the expected outcome)"
else
  echo "FAIL: halted-wave run exited nonzero"
  FAILURES=$((FAILURES + 1))
fi
check "kill landed mid-reload" "chaos: killed shard 2 mid-reload" "$DIR/halt.log"
check "wave halted" "HALTED" "$DIR/halt.log"
check "halted run still shuts down cleanly" "cluster: clean shutdown" "$DIR/halt.log"

# Error path: unknown routing policy must fail cleanly, not crash.
if "$CLI" --mode cluster --model "$DIR/m.hrff" --data "$DIR/d.hrfd" \
       --router-policy round-robin > "$DIR/err.log" 2>&1; then
  echo "FAIL: unknown policy should exit nonzero"
  FAILURES=$((FAILURES + 1))
else
  check "unknown policy reports an error" "error:" "$DIR/err.log"
fi

echo "cli cluster test failures: $FAILURES"
exit "$FAILURES"
