#include "train/forest_trainer.hpp"

#include <gtest/gtest.h>

#include <omp.h>

#include "data/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

Dataset separable(std::size_t n, std::uint64_t seed = 5) {
  Dataset ds(n, 4);
  Xoshiro256 rng(seed);
  std::vector<float> row(4);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.uniform_float();
    ds.push_back(row, row[1] >= 0.4f ? 1 : 0);
  }
  return ds;
}

TEST(ForestTrainer, ValidatesTreeCount) {
  const Dataset ds = separable(100);
  TrainConfig cfg;
  cfg.num_trees = 0;
  EXPECT_THROW(train_forest(ds, cfg), ConfigError);
}

TEST(ForestTrainer, ProducesRequestedForestShape) {
  const Dataset ds = separable(1000);
  TrainConfig cfg;
  cfg.num_trees = 7;
  cfg.max_depth = 5;
  const Forest f = train_forest(ds, cfg);
  EXPECT_EQ(f.tree_count(), 7u);
  EXPECT_EQ(f.num_features(), 4u);
  EXPECT_LE(f.stats().max_depth, 5);
  f.validate();
}

TEST(ForestTrainer, HighAccuracyOnSeparableData) {
  const Dataset ds = separable(4000);
  TrainConfig cfg;
  cfg.num_trees = 15;
  cfg.max_depth = 6;
  cfg.features_per_split = 4;
  const Forest f = train_forest(ds, cfg);
  EXPECT_GT(f.accuracy(ds.features(), ds.labels()), 0.97);
}

TEST(ForestTrainer, DeterministicUnderSeedRegardlessOfThreads) {
  const Dataset ds = separable(1500);
  TrainConfig cfg;
  cfg.num_trees = 8;
  cfg.max_depth = 5;
  cfg.seed = 77;

  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const Forest a = train_forest(ds, cfg);
  omp_set_num_threads(4);
  const Forest b = train_forest(ds, cfg);
  omp_set_num_threads(saved);

  ASSERT_EQ(a.tree_count(), b.tree_count());
  for (std::size_t t = 0; t < a.tree_count(); ++t) {
    ASSERT_EQ(a.tree(t).node_count(), b.tree(t).node_count()) << "tree " << t;
    for (std::size_t i = 0; i < a.tree(t).node_count(); ++i) {
      ASSERT_EQ(a.tree(t).node(i).feature, b.tree(t).node(i).feature);
      ASSERT_FLOAT_EQ(a.tree(t).node(i).value, b.tree(t).node(i).value);
    }
  }
}

TEST(ForestTrainer, DifferentSeedsGiveDifferentForests) {
  const Dataset ds = separable(800);
  TrainConfig a_cfg;
  a_cfg.num_trees = 3;
  a_cfg.seed = 1;
  TrainConfig b_cfg = a_cfg;
  b_cfg.seed = 2;
  const Forest a = train_forest(ds, a_cfg);
  const Forest b = train_forest(ds, b_cfg);
  bool differs = a.tree(0).node_count() != b.tree(0).node_count();
  if (!differs) {
    for (std::size_t i = 0; i < a.tree(0).node_count(); ++i) {
      if (a.tree(0).node(i).feature != b.tree(0).node(i).feature) differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ForestTrainer, BootstrapOffUsesAllSamplesIdentically) {
  // Without bootstrap and with all features, trees differ only by RNG of
  // feature subsampling; with features_per_split = all, trees are equal.
  const Dataset ds = separable(500);
  TrainConfig cfg;
  cfg.num_trees = 3;
  cfg.bootstrap = false;
  cfg.features_per_split = 4;
  cfg.max_depth = 5;
  const Forest f = train_forest(ds, cfg);
  for (std::size_t t = 1; t < f.tree_count(); ++t) {
    ASSERT_EQ(f.tree(t).node_count(), f.tree(0).node_count());
    for (std::size_t i = 0; i < f.tree(0).node_count(); ++i) {
      EXPECT_EQ(f.tree(t).node(i).feature, f.tree(0).node(i).feature);
      EXPECT_FLOAT_EQ(f.tree(t).node(i).value, f.tree(0).node(i).value);
    }
  }
}

TEST(ForestTrainer, BinnedOverloadMatchesDatasetOverload) {
  const Dataset ds = separable(600);
  TrainConfig cfg;
  cfg.num_trees = 4;
  cfg.max_depth = 5;
  const Forest a = train_forest(ds, cfg);
  const BinnedDataset binned(ds, cfg.max_bins);
  const Forest b = train_forest(binned, ds.num_features(), cfg);
  ASSERT_EQ(a.tree_count(), b.tree_count());
  for (std::size_t t = 0; t < a.tree_count(); ++t) {
    ASSERT_EQ(a.tree(t).node_count(), b.tree(t).node_count());
  }
}

TEST(ForestTrainer, NoisyLabelsGrowDeepTrees) {
  // The regime the paper targets: label noise keeps nodes impure, so trees
  // grow to the depth cap and become large and sparse.
  SyntheticSpec spec;
  spec.num_samples = 4000;
  spec.num_features = 10;
  spec.num_relevant = 8;
  spec.teacher_depth = 8;
  spec.label_noise = 0.2;
  const Dataset ds = make_synthetic(spec);
  TrainConfig cfg;
  cfg.num_trees = 3;
  cfg.max_depth = 14;
  const Forest f = train_forest(ds, cfg);
  EXPECT_EQ(f.stats().max_depth, 14);
  EXPECT_GT(f.stats().total_nodes / f.tree_count(), 200u);
}

}  // namespace
}  // namespace hrf
