#include "train/binned.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

Dataset uniform_data(std::size_t n, std::size_t features, std::uint64_t seed = 1) {
  Dataset ds(n, features);
  Xoshiro256 rng(seed);
  std::vector<float> row(features);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.uniform_float();
    ds.push_back(row, static_cast<std::uint8_t>(rng.bernoulli(0.5)));
  }
  return ds;
}

TEST(BinnedDataset, RejectsBadBinCounts) {
  const Dataset ds = uniform_data(100, 2);
  EXPECT_THROW(BinnedDataset(ds, 1), ConfigError);
  EXPECT_THROW(BinnedDataset(ds, 257), ConfigError);
}

TEST(BinnedDataset, RejectsEmptyDataset) {
  Dataset empty(0, 2);
  EXPECT_THROW(BinnedDataset(empty, 16), ConfigError);
}

TEST(BinnedDataset, PreservesShapeAndLabels) {
  const Dataset ds = uniform_data(500, 3);
  const BinnedDataset b(ds, 16);
  EXPECT_EQ(b.num_samples(), 500u);
  EXPECT_EQ(b.num_features(), 3u);
  for (std::size_t i = 0; i < 500; ++i) ASSERT_EQ(b.label(i), ds.label(i));
}

TEST(BinnedDataset, CodesAreConsistentWithEdges) {
  // The trainer's key invariant: for every sample, code(f, i) < b iff
  // raw value < edge(f, b). A violated invariant would make the trained
  // tree disagree with its own training partition.
  const Dataset ds = uniform_data(2000, 4);
  const BinnedDataset binned(ds, 32);
  for (std::size_t f = 0; f < 4; ++f) {
    const int bins = binned.bins_used(f);
    for (std::size_t i = 0; i < ds.num_samples(); ++i) {
      const float x = ds.sample(i)[f];
      const std::uint8_t code = binned.code(f, i);
      for (int b = 1; b < bins; ++b) {
        ASSERT_EQ(code < b, x < binned.edge(f, b))
            << "feature " << f << " sample " << i << " boundary " << b;
      }
    }
  }
}

TEST(BinnedDataset, EdgesAreStrictlyIncreasing) {
  const Dataset ds = uniform_data(2000, 3);
  const BinnedDataset binned(ds, 64);
  for (std::size_t f = 0; f < 3; ++f) {
    for (int b = 2; b < binned.bins_used(f); ++b) {
      ASSERT_LT(binned.edge(f, b - 1), binned.edge(f, b));
    }
  }
}

TEST(BinnedDataset, ConstantFeatureCollapsesToOneBin) {
  Dataset ds(50, 2);
  for (int i = 0; i < 50; ++i) {
    const float row[2] = {1.0f, static_cast<float>(i)};
    ds.push_back(row, 0);
  }
  const BinnedDataset binned(ds, 16);
  EXPECT_EQ(binned.bins_used(0), 1);  // no split possible on a constant
  EXPECT_GT(binned.bins_used(1), 4);
}

TEST(BinnedDataset, BinaryFeatureGetsTwoBins) {
  Dataset ds(100, 1);
  for (int i = 0; i < 100; ++i) {
    const float row[1] = {static_cast<float>(i % 2)};
    ds.push_back(row, 0);
  }
  const BinnedDataset binned(ds, 16);
  EXPECT_EQ(binned.bins_used(0), 2);
  // code 0 for 0.0 samples, code 1 for 1.0 samples.
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(binned.code(0, i), i % 2);
  }
}

TEST(BinnedDataset, ColumnSpanMatchesCodes) {
  const Dataset ds = uniform_data(100, 2);
  const BinnedDataset binned(ds, 8);
  const auto col = binned.column(1);
  ASSERT_EQ(col.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(col[i], binned.code(1, i));
}

TEST(BinnedDataset, QuantileBinsAreRoughlyBalanced) {
  const Dataset ds = uniform_data(10000, 1);
  const BinnedDataset binned(ds, 8);
  std::vector<int> counts(static_cast<std::size_t>(binned.bins_used(0)), 0);
  for (std::size_t i = 0; i < 10000; ++i) ++counts[binned.code(0, i)];
  for (int c : counts) EXPECT_NEAR(c, 10000 / binned.bins_used(0), 400);
}

}  // namespace
}  // namespace hrf
