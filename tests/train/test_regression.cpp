#include "train/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

/// y = 3*x0 - 2*x1 + noise: a smooth target a depth-limited forest can fit.
struct Problem {
  Dataset features;
  std::vector<float> targets;

  explicit Problem(std::size_t n, double noise = 0.0, std::uint64_t seed = 5)
      : features(n, 4) {
    Xoshiro256 rng(seed);
    std::vector<float> row(4);
    targets.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& v : row) v = rng.uniform_float();
      features.push_back(row, 0);
      targets.push_back(3.f * row[0] - 2.f * row[1] +
                        static_cast<float>(rng.normal(0.0, noise)));
    }
  }
};

TEST(Regression, ConfigValidation) {
  const Problem p(50);
  RegressionConfig cfg;
  cfg.num_trees = 0;
  EXPECT_THROW(train_regression_forest(p.features, p.targets, cfg), ConfigError);
  cfg = RegressionConfig{};
  cfg.max_depth = 0;
  EXPECT_THROW(train_regression_forest(p.features, p.targets, cfg), ConfigError);
  const std::vector<float> wrong(10, 0.f);
  EXPECT_THROW(train_regression_forest(p.features, wrong, RegressionConfig{}), ConfigError);
}

TEST(Regression, FitsSmoothFunction) {
  const Problem train(6000);
  const Problem test(2000, 0.0, 6);
  RegressionConfig cfg;
  cfg.num_trees = 30;
  cfg.max_depth = 10;
  const RegressionForest f = train_regression_forest(train.features, train.targets, cfg);
  EXPECT_EQ(f.tree_count(), 30u);
  EXPECT_GT(f.r2(test.features.features(), test.targets), 0.95);
}

TEST(Regression, ConstantTargetGivesSingleLeaf) {
  Problem p(200);
  std::fill(p.targets.begin(), p.targets.end(), 7.5f);
  RegressionConfig cfg;
  cfg.num_trees = 3;
  cfg.max_depth = 8;
  const RegressionForest f = train_regression_forest(p.features, p.targets, cfg);
  for (std::size_t t = 0; t < f.tree_count(); ++t) {
    EXPECT_EQ(f.tree(t).node_count(), 1u);
  }
  const float q[4] = {0.3f, 0.3f, 0.3f, 0.3f};
  EXPECT_NEAR(f.predict(q), 7.5f, 1e-5f);
}

TEST(Regression, RespectsDepthAndLeafConstraints) {
  const Problem p(2000, 0.5);
  RegressionConfig cfg;
  cfg.num_trees = 5;
  cfg.max_depth = 6;
  cfg.min_samples_leaf = 50;
  const RegressionForest f = train_regression_forest(p.features, p.targets, cfg);
  for (std::size_t t = 0; t < f.tree_count(); ++t) {
    const TreeStats s = f.tree(t).stats();
    EXPECT_LE(s.max_depth, 6);
    EXPECT_LE(s.leaf_count, 2000u / 50u + 1);
  }
}

TEST(Regression, DeterministicUnderSeed) {
  const Problem p(1500, 0.2);
  RegressionConfig cfg;
  cfg.num_trees = 6;
  cfg.max_depth = 7;
  const RegressionForest a = train_regression_forest(p.features, p.targets, cfg);
  const RegressionForest b = train_regression_forest(p.features, p.targets, cfg);
  for (std::size_t t = 0; t < a.tree_count(); ++t) {
    ASSERT_EQ(a.tree(t).node_count(), b.tree(t).node_count());
  }
  const float q[4] = {0.1f, 0.9f, 0.5f, 0.5f};
  EXPECT_FLOAT_EQ(a.predict(q), b.predict(q));
}

TEST(Regression, NoiseCapsAchievableMse) {
  const Problem noisy(8000, 0.3);
  RegressionConfig cfg;
  cfg.num_trees = 25;
  cfg.max_depth = 9;
  const RegressionForest f = train_regression_forest(noisy.features, noisy.targets, cfg);
  const Problem clean_test(2000, 0.0, 8);
  // Error on clean targets should approach zero; on noisy training
  // targets it is bounded below by the noise variance (0.09).
  EXPECT_LT(f.mse(clean_test.features.features(), clean_test.targets), 0.08);
  EXPECT_GT(f.mse(noisy.features.features(), noisy.targets), 0.04);
}

TEST(Regression, PredictBatchMatchesScalar) {
  const Problem p(500);
  RegressionConfig cfg;
  cfg.num_trees = 4;
  cfg.max_depth = 6;
  const RegressionForest f = train_regression_forest(p.features, p.targets, cfg);
  const auto batch = f.predict_batch(p.features.features(), p.features.num_samples());
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_FLOAT_EQ(batch[i], f.predict(p.features.sample(i)));
  }
}

TEST(Regression, MoreTreesSmoothPredictions) {
  const Problem p(4000, 0.4);
  const Problem test(1000, 0.0, 9);
  RegressionConfig small;
  small.num_trees = 1;
  small.max_depth = 10;
  RegressionConfig big = small;
  big.num_trees = 40;
  const double mse1 =
      train_regression_forest(p.features, p.targets, small).mse(test.features.features(),
                                                                test.targets);
  const double mse40 =
      train_regression_forest(p.features, p.targets, big).mse(test.features.features(),
                                                              test.targets);
  EXPECT_LT(mse40, mse1);  // averaging reduces variance
}

}  // namespace
}  // namespace hrf
