#include "train/tree_trainer.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "data/dataset.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

/// Linearly separable on feature 0: label = x0 >= 0.5.
Dataset separable(std::size_t n, std::size_t features = 3, std::uint64_t seed = 1) {
  Dataset ds(n, features);
  Xoshiro256 rng(seed);
  std::vector<float> row(features);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : row) v = rng.uniform_float();
    ds.push_back(row, row[0] >= 0.5f ? 1 : 0);
  }
  return ds;
}

std::vector<std::uint32_t> all_indices(std::size_t n) {
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  return idx;
}

TEST(TreeTrainer, ConfigValidation) {
  const Dataset ds = separable(100);
  const BinnedDataset binned(ds, 16);
  TrainConfig bad;
  bad.max_depth = 0;
  EXPECT_THROW(TreeTrainer(binned, bad), ConfigError);
  bad = TrainConfig{};
  bad.min_samples_leaf = 0;
  EXPECT_THROW(TreeTrainer(binned, bad), ConfigError);
  bad = TrainConfig{};
  bad.min_samples_split = 1;
  EXPECT_THROW(TreeTrainer(binned, bad), ConfigError);
}

TEST(TreeTrainer, LearnsSeparableDataPerfectly) {
  const Dataset ds = separable(2000);
  const BinnedDataset binned(ds, 64);
  TrainConfig cfg;
  cfg.max_depth = 4;
  cfg.features_per_split = 3;  // all features: the split must be found
  const TreeTrainer trainer(binned, cfg);
  Xoshiro256 rng(1);
  const DecisionTree tree = trainer.train(all_indices(2000), rng);
  tree.validate(3);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.num_samples(); ++i) {
    correct += tree.classify(ds.sample(i)) == ds.label(i);
  }
  // Quantile binning puts an edge within ~1/64 of the true boundary.
  EXPECT_GT(static_cast<double>(correct) / ds.num_samples(), 0.98);
}

TEST(TreeTrainer, RespectsMaxDepth) {
  const Dataset ds = separable(2000);
  const BinnedDataset binned(ds, 64);
  for (int depth : {1, 2, 3, 5, 8}) {
    TrainConfig cfg;
    cfg.max_depth = depth;
    const TreeTrainer trainer(binned, cfg);
    Xoshiro256 rng(1);
    const DecisionTree tree = trainer.train(all_indices(2000), rng);
    EXPECT_LE(tree.stats().max_depth, depth);
  }
}

TEST(TreeTrainer, DepthOneIsASingleLeaf) {
  const Dataset ds = separable(100);
  const BinnedDataset binned(ds, 16);
  TrainConfig cfg;
  cfg.max_depth = 1;
  const TreeTrainer trainer(binned, cfg);
  Xoshiro256 rng(1);
  const DecisionTree tree = trainer.train(all_indices(100), rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_TRUE(tree.node(0).is_leaf());
}

TEST(TreeTrainer, PureNodeStopsSplitting) {
  Dataset ds(100, 2);
  Xoshiro256 rng(1);
  std::vector<float> row(2);
  for (int i = 0; i < 100; ++i) {
    for (auto& v : row) v = rng.uniform_float();
    ds.push_back(row, 1);  // all one class
  }
  const BinnedDataset binned(ds, 16);
  TrainConfig cfg;
  cfg.max_depth = 10;
  const TreeTrainer trainer(binned, cfg);
  const DecisionTree tree = trainer.train(all_indices(100), rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_FLOAT_EQ(tree.node(0).value, 1.0f);
}

TEST(TreeTrainer, MinSamplesLeafBoundsLeafSizes) {
  const Dataset ds = separable(512);
  const BinnedDataset binned(ds, 64);
  TrainConfig cfg;
  cfg.max_depth = 20;
  cfg.min_samples_leaf = 50;
  const TreeTrainer trainer(binned, cfg);
  Xoshiro256 rng(2);
  const DecisionTree tree = trainer.train(all_indices(512), rng);
  // With >=50 samples per leaf and 512 samples, at most 10 leaves exist.
  EXPECT_LE(tree.stats().leaf_count, 10u);
}

TEST(TreeTrainer, DeterministicGivenSameRngState) {
  const Dataset ds = separable(500, 5);
  const BinnedDataset binned(ds, 32);
  TrainConfig cfg;
  cfg.max_depth = 6;
  const TreeTrainer trainer(binned, cfg);
  Xoshiro256 rng_a(7);
  Xoshiro256 rng_b(7);
  const DecisionTree a = trainer.train(all_indices(500), rng_a);
  const DecisionTree b = trainer.train(all_indices(500), rng_b);
  ASSERT_EQ(a.node_count(), b.node_count());
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.node(i).feature, b.node(i).feature);
    EXPECT_FLOAT_EQ(a.node(i).value, b.node(i).value);
  }
}

TEST(TreeTrainer, TrainOnZeroSamplesThrows) {
  const Dataset ds = separable(10);
  const BinnedDataset binned(ds, 16);
  const TreeTrainer trainer(binned, TrainConfig{});
  Xoshiro256 rng(1);
  EXPECT_THROW(trainer.train({}, rng), ConfigError);
}

TEST(TreeTrainer, SingleSampleYieldsLeafWithItsLabel) {
  Dataset ds(1, 2);
  const float row[2] = {0.3f, 0.7f};
  ds.push_back(row, 1);
  const BinnedDataset binned(ds, 4);
  const TreeTrainer trainer(binned, TrainConfig{});
  Xoshiro256 rng(1);
  const DecisionTree tree = trainer.train({0}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_FLOAT_EQ(tree.node(0).value, 1.0f);
}

TEST(TreeTrainer, ThresholdsAreRealFeatureValues) {
  // Every inner-node threshold must be an actual bin edge so that binned
  // training and float inference agree exactly.
  const Dataset ds = separable(1000, 2);
  const BinnedDataset binned(ds, 32);
  TrainConfig cfg;
  cfg.max_depth = 6;
  cfg.features_per_split = 2;
  const TreeTrainer trainer(binned, cfg);
  Xoshiro256 rng(3);
  const DecisionTree tree = trainer.train(all_indices(1000), rng);
  for (const TreeNode& n : tree.nodes()) {
    if (n.is_leaf()) continue;
    bool found = false;
    const auto f = static_cast<std::size_t>(n.feature);
    for (int b = 1; b < binned.bins_used(f); ++b) {
      if (binned.edge(f, b) == n.value) found = true;
    }
    EXPECT_TRUE(found) << "threshold " << n.value << " is not a bin edge";
  }
}

}  // namespace
}  // namespace hrf
