#include "cpu/cpu_kernels.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"

namespace hrf::cpu {
namespace {

struct Fixture {
  Forest forest;
  CsrForest csr;
  HierarchicalForest hier;
  Dataset queries;
  std::vector<std::uint8_t> reference;

  explicit Fixture(std::size_t nq = 500)
      : forest(make_random_forest({.num_trees = 10,
                                   .max_depth = 11,
                                   .branch_prob = 0.7,
                                   .num_features = 9,
                                   .seed = 21})),
        csr(CsrForest::build(forest)),
        hier(HierarchicalForest::build(forest, HierConfig{.subtree_depth = 5})),
        queries(make_random_queries(nq, 9, 22)),
        reference(forest.classify_batch(queries.features(), queries.num_samples())) {}
};

TEST(CpuKernels, CsrMatchesReference) {
  const Fixture fx;
  EXPECT_EQ(classify_csr(fx.csr, fx.queries), fx.reference);
}

TEST(CpuKernels, HierarchicalMatchesReference) {
  const Fixture fx;
  EXPECT_EQ(classify_hierarchical(fx.hier, fx.queries), fx.reference);
}

TEST(CpuKernels, BlockedMatchesReference) {
  const Fixture fx;
  EXPECT_EQ(classify_hierarchical_blocked(fx.hier, fx.queries), fx.reference);
}

TEST(CpuKernels, BlockedHandlesOddBlockSizes) {
  const Fixture fx(333);
  EXPECT_EQ(classify_hierarchical_blocked(fx.hier, fx.queries, 100), fx.reference);
  EXPECT_EQ(classify_hierarchical_blocked(fx.hier, fx.queries, 1), fx.reference);
  EXPECT_EQ(classify_hierarchical_blocked(fx.hier, fx.queries, 100000), fx.reference);
}

// Degenerate block geometries, pinned against the *unblocked* traversal
// (same layout, same tree walk, different loop order) rather than the
// forest reference, so any divergence is attributable to the blocking
// arithmetic alone.
TEST(CpuKernels, BlockedDegenerateBlockSizesMatchUnblocked) {
  const Fixture fx(120);  // nq = 120
  const std::vector<std::uint8_t> unblocked = classify_hierarchical(fx.hier, fx.queries);
  ASSERT_EQ(unblocked, fx.reference);

  const std::size_t nq = fx.queries.num_samples();
  const std::size_t blocks[] = {
      1,           // every query is its own block (maximal tail handling)
      nq,          // exactly one block, no tail
      nq / 2,      // exact multiple: 2 full blocks, empty tail
      nq / 3,      // exact multiple: 3 full blocks
      nq - 1,      // full block + 1-query tail
      nq + 1,      // single short block (> n_queries)
      10 * nq,     // block far exceeds the batch
  };
  for (const std::size_t b : blocks) {
    EXPECT_EQ(classify_hierarchical_blocked(fx.hier, fx.queries, b), unblocked)
        << "query_block=" << b;
  }
}

TEST(CpuKernels, BlockedHandlesSingleQueryBatch) {
  const Fixture one(1);
  EXPECT_EQ(classify_hierarchical_blocked(one.hier, one.queries, 1), one.reference);
  EXPECT_EQ(classify_hierarchical_blocked(one.hier, one.queries, 64), one.reference);
}

TEST(CpuKernels, BlockedRejectsZeroBlock) {
  const Fixture fx(8);
  EXPECT_THROW(classify_hierarchical_blocked(fx.hier, fx.queries, 0), ConfigError);
}

TEST(CpuKernels, RejectsMismatchedWidth) {
  const Fixture fx(8);
  const Dataset wrong = make_random_queries(8, 5);
  EXPECT_THROW(classify_csr(fx.csr, wrong), ConfigError);
  EXPECT_THROW(classify_hierarchical(fx.hier, wrong), ConfigError);
  EXPECT_THROW(classify_hierarchical_blocked(fx.hier, wrong), ConfigError);
}

}  // namespace
}  // namespace hrf::cpu
