#include "fpgakernels/fpga_kernels.hpp"

#include <gtest/gtest.h>

#include "../common/paper_example.hpp"
#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "fpgakernels/traversal_counts.hpp"
#include "util/error.hpp"

namespace hrf::fpgakernels {
namespace {

struct Fixture {
  Forest forest;
  CsrForest csr;
  HierarchicalForest hier;
  Dataset queries;
  std::vector<std::uint8_t> reference;

  Fixture(const RandomForestSpec& spec, int sd, std::size_t nq, int rsd = 0)
      : forest(make_random_forest(spec)),
        csr(CsrForest::build(forest)),
        hier(HierarchicalForest::build(forest,
                                       HierConfig{.subtree_depth = sd, .root_subtree_depth = rsd})),
        queries(make_random_queries(nq, spec.num_features, spec.seed + 1)),
        reference(forest.classify_batch(queries.features(), queries.num_samples())) {}
};

void expect_exact(const std::vector<std::uint8_t>& got, const std::vector<std::uint8_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], want[i]) << "query " << i;
}

TEST(TraversalCounts, CountsAreExactOnCompleteTrees) {
  // Complete depth-d trees: every (query, tree) pair visits exactly d
  // nodes; with SD below d there is exactly one hop per boundary.
  RandomForestSpec spec;
  spec.num_trees = 3;
  spec.max_depth = 7;
  spec.branch_prob = 1.0;
  const Fixture fx(spec, 4, 100);
  const TraversalCounts c = count_traversal(fx.hier, fx.queries);
  EXPECT_EQ(c.leaf_visits, 300u);
  EXPECT_EQ(c.node_visits, 300u * 7);
  EXPECT_EQ(c.root_subtree_visits, 300u * 4);
  EXPECT_EQ(c.subtree_hops, 300u);  // depth 7 = root(4) + one hop + (3)
  expect_exact(c.predictions, fx.reference);
}

TEST(TraversalCounts, RootDepthSplitsStageWork) {
  RandomForestSpec spec;
  spec.num_trees = 2;
  spec.max_depth = 10;
  spec.branch_prob = 1.0;
  const Fixture fx(spec, 4, 50, /*rsd=*/8);
  const TraversalCounts c = count_traversal(fx.hier, fx.queries);
  EXPECT_EQ(c.root_subtree_visits, 100u * 8);
  EXPECT_EQ(c.node_visits, 100u * 10);
}

TEST(FpgaKernels, AllVariantsMatchReference) {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 11;
  spec.branch_prob = 0.7;
  spec.num_features = 8;
  const Fixture fx(spec, 5, 400);
  expect_exact(run_csr_fpga(fx.csr, fx.queries).predictions, fx.reference);
  expect_exact(run_independent_fpga(fx.hier, fx.queries).predictions, fx.reference);
  expect_exact(run_collaborative_fpga(fx.hier, fx.queries).predictions, fx.reference);
  expect_exact(run_hybrid_fpga(fx.hier, fx.queries).predictions, fx.reference);
}

TEST(FpgaKernels, IiDescriptionsMatchTable3) {
  RandomForestSpec spec;
  spec.num_trees = 2;
  spec.max_depth = 6;
  const Fixture fx(spec, 3, 64);
  EXPECT_EQ(run_csr_fpga(fx.csr, fx.queries).report.ii_desc, "292");
  EXPECT_EQ(run_independent_fpga(fx.hier, fx.queries).report.ii_desc, "76");
  EXPECT_EQ(run_independent_fpga(fx.hier, fx.queries, fpgasim::FpgaConfig::alveo_u250(), {},
                                 /*buffer_queries=*/false)
                .report.ii_desc,
            "147");
  EXPECT_EQ(run_collaborative_fpga(fx.hier, fx.queries).report.ii_desc, "3");
  EXPECT_EQ(run_hybrid_fpga(fx.hier, fx.queries).report.ii_desc, "3/76");
}

TEST(FpgaKernels, QueryBufferingHalvesIndependentTime) {
  // §3.2.2: buffering query features in BRAM improves the II from 147 to
  // 76; the pipeline-bound runtime scales accordingly.
  RandomForestSpec spec;
  spec.num_trees = 4;
  spec.max_depth = 9;
  const Fixture fx(spec, 4, 512);
  const auto buffered = run_independent_fpga(fx.hier, fx.queries);
  const auto unbuffered = run_independent_fpga(fx.hier, fx.queries,
                                               fpgasim::FpgaConfig::alveo_u250(), {}, false);
  EXPECT_NEAR(unbuffered.report.seconds / buffered.report.seconds, 147.0 / 76.0, 0.1);
}

TEST(FpgaKernels, Table3OrderingSingleCu) {
  // The paper's Table 3 single-CU ordering on a (scaled-down) synthetic
  // workload: hybrid < independent < CSR << collaborative.
  RandomForestSpec spec;
  spec.num_trees = 8;
  spec.max_depth = 13;
  spec.branch_prob = 1.0;
  spec.num_features = 20;
  const Fixture fx(spec, 10, 2000);
  const double csr = run_csr_fpga(fx.csr, fx.queries).report.seconds;
  const double ind = run_independent_fpga(fx.hier, fx.queries).report.seconds;
  const double hyb = run_hybrid_fpga(fx.hier, fx.queries).report.seconds;
  const double col = run_collaborative_fpga(fx.hier, fx.queries).report.seconds;
  EXPECT_LT(hyb, ind);
  EXPECT_LT(ind, csr);
  EXPECT_GT(col, csr);
  // Magnitudes: independent ~3-4x over CSR, hybrid better still.
  EXPECT_GT(csr / ind, 2.0);
  EXPECT_LT(csr / ind, 6.0);
}

TEST(FpgaKernels, ReplicationScalesIndependentBest) {
  // §4.4: with 4 SLRs x 12 CUs the independent kernel is the most
  // scalable; replicated hybrid falls behind it.
  RandomForestSpec spec;
  spec.num_trees = 8;
  spec.max_depth = 13;
  spec.branch_prob = 1.0;
  spec.num_features = 20;
  const Fixture fx(spec, 10, 2000);
  const fpgasim::CuLayout rep{4, 12, 300.0};
  const auto ind1 = run_independent_fpga(fx.hier, fx.queries);
  const auto ind48 = run_independent_fpga(fx.hier, fx.queries,
                                          fpgasim::FpgaConfig::alveo_u250(), rep);
  const auto hyb48 =
      run_hybrid_fpga(fx.hier, fx.queries, fpgasim::FpgaConfig::alveo_u250(), rep);
  EXPECT_GT(ind1.report.seconds / ind48.report.seconds, 20.0);  // strong scaling
  EXPECT_LT(ind48.report.seconds, hyb48.report.seconds);        // indep wins replicated
  EXPECT_GT(hyb48.report.stall_pct, 50.0);  // the paper's stage-1 stalling
}

TEST(FpgaKernels, SplitHybridUsesLowerClockAndSoloStage1) {
  RandomForestSpec spec;
  spec.num_trees = 4;
  spec.max_depth = 11;
  spec.branch_prob = 1.0;
  spec.num_features = 12;
  const Fixture fx(spec, 8, 1000);
  const fpgasim::CuLayout split{4, 10, 245.0};
  const auto r = run_hybrid_fpga(fx.hier, fx.queries, fpgasim::FpgaConfig::alveo_u250(), split,
                                 /*split_stage1=*/true);
  EXPECT_DOUBLE_EQ(r.report.clock_mhz, 245.0);
  expect_exact(r.predictions, fx.reference);
}

TEST(FpgaKernels, HybridRejectsRootSubtreeBeyondBram) {
  RandomForestSpec spec;
  spec.num_trees = 1;
  spec.max_depth = 22;
  spec.branch_prob = 0.0;  // thin spine: cheap to build
  const Forest f = make_random_forest(spec);
  HierConfig cfg;
  cfg.subtree_depth = 4;
  cfg.root_subtree_depth = 22;  // (2^22 - 1) * 8 B = 33.5 MB > 13.5 MB
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);
  const Dataset q = make_random_queries(16, spec.num_features);
  EXPECT_THROW(run_hybrid_fpga(h, q), ResourceError);
}

TEST(FpgaKernels, CollaborativeRejectsOversizedSubtreeBuffers) {
  RandomForestSpec spec;
  spec.num_trees = 1;
  spec.max_depth = 22;
  spec.branch_prob = 0.0;
  const Forest f = make_random_forest(spec);
  HierConfig cfg;
  cfg.subtree_depth = 21;  // one subtree would need 16.8 MB of BRAM
  const HierarchicalForest h = HierarchicalForest::build(f, cfg);
  const Dataset q = make_random_queries(16, spec.num_features);
  EXPECT_THROW(run_collaborative_fpga(h, q), ResourceError);
}

TEST(FpgaKernels, DeeperSubtreesReduceIndependentTime) {
  // Fig. 9's trend: larger SD -> fewer hops -> fewer iterations.
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 12;
  spec.branch_prob = 0.8;
  spec.num_features = 10;
  const Forest f = make_random_forest(spec);
  const Dataset q = make_random_queries(800, 10);
  double prev = 1e30;
  for (int sd : {2, 4, 8}) {
    HierConfig cfg;
    cfg.subtree_depth = sd;
    const auto h = HierarchicalForest::build(f, cfg);
    const double t = run_independent_fpga(h, q).report.seconds;
    EXPECT_LT(t, prev) << "SD " << sd;
    prev = t;
  }
}

TEST(FpgaKernels, Fig2Walkthrough) {
  const Forest f = testutil::fig2_forest();
  Dataset q(2, testutil::kFig2Features);
  q.push_back(testutil::fig2_query_class_a(), 0);
  q.push_back(testutil::fig2_query_class_b(), 1);
  HierConfig cfg;
  cfg.subtree_depth = 3;
  const auto h = HierarchicalForest::build(f, cfg);
  const auto r = run_hybrid_fpga(h, q);
  EXPECT_EQ(r.predictions[0], 0);
  EXPECT_EQ(r.predictions[1], 1);
}

}  // namespace
}  // namespace hrf::fpgakernels
