#include "gpusim/cache.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hrf::gpusim {
namespace {

TEST(Cache, ConstructorValidation) {
  EXPECT_THROW(Cache(1024, 4, 100), hrf::ConfigError);  // line not pow2
  EXPECT_THROW(Cache(0, 1, 128), hrf::ConfigError);     // smaller than a set
  EXPECT_THROW(Cache(128, 3, 128), hrf::ConfigError);   // ways don't divide
  EXPECT_NO_THROW(Cache(3 * 1024 * 1024, 16, 128));     // the TITAN Xp L2
}

TEST(Cache, MissThenHit) {
  Cache c(1024, 2, 128);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(64));  // same 128 B line
  EXPECT_FALSE(c.access(128));
}

TEST(Cache, GeometryAccessors) {
  Cache c(1024, 2, 128);
  EXPECT_EQ(c.capacity_bytes(), 1024u);
  EXPECT_EQ(c.line_bytes(), 128u);
  EXPECT_EQ(c.ways(), 2);
  EXPECT_EQ(c.num_sets(), 4u);
}

TEST(Cache, LruEvictsOldestWay) {
  // 4 sets x 2 ways; lines mapping to set 0: line ids 0, 4, 8 (stride 4).
  Cache c(1024, 2, 128);
  EXPECT_FALSE(c.access(0 * 128));
  EXPECT_FALSE(c.access(4 * 128));
  EXPECT_FALSE(c.access(8 * 128));   // evicts line 0
  EXPECT_FALSE(c.access(0 * 128));   // line 0 is gone
  EXPECT_TRUE(c.access(8 * 128));    // line 8 still resident
}

TEST(Cache, LruRefreshOnHit) {
  Cache c(1024, 2, 128);
  c.access(0 * 128);
  c.access(4 * 128);
  c.access(0 * 128);                 // refresh line 0: line 4 is now LRU
  EXPECT_FALSE(c.access(8 * 128));   // evicts line 4
  EXPECT_TRUE(c.access(0 * 128));
  EXPECT_FALSE(c.access(4 * 128));
}

TEST(Cache, SetsAreIndependent) {
  Cache c(1024, 2, 128);
  // Fill set 0 beyond capacity; set 1 must be untouched.
  c.access(1 * 128);  // set 1
  c.access(0 * 128);
  c.access(4 * 128);
  c.access(8 * 128);
  EXPECT_TRUE(c.access(1 * 128));
}

TEST(Cache, FlushForgetsEverything) {
  Cache c(1024, 2, 128);
  c.access(0);
  c.flush();
  EXPECT_FALSE(c.access(0));
}

TEST(Cache, FullyAssociativeWhenOneSet) {
  Cache c(512, 4, 128);  // 4 lines, 4 ways -> 1 set
  EXPECT_EQ(c.num_sets(), 1u);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(c.access(static_cast<std::uint64_t>(i) * 128));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(c.access(static_cast<std::uint64_t>(i) * 128));
  EXPECT_FALSE(c.access(4 * 128));  // evicts line 0 (LRU)
  EXPECT_FALSE(c.access(0 * 128));
}

TEST(Cache, LargeAddressesWork) {
  Cache c(1024, 2, 128);
  const std::uint64_t big = 0x7fffffff0000ULL;
  EXPECT_FALSE(c.access(big));
  EXPECT_TRUE(c.access(big + 1));
}

}  // namespace
}  // namespace hrf::gpusim
