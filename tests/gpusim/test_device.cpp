#include "gpusim/device.hpp"

#include <gtest/gtest.h>

#include <array>

#include "gpusim/device_array.hpp"
#include "util/error.hpp"

namespace hrf::gpusim {
namespace {

DeviceConfig tiny_config() {
  DeviceConfig cfg = DeviceConfig::titan_xp();
  cfg.num_sms = 2;
  return cfg;
}

TEST(Device, AllocIsAlignedAndMonotonic) {
  Device d(tiny_config());
  const std::uint64_t a = d.alloc(100);
  const std::uint64_t b = d.alloc(100);
  EXPECT_EQ(a % 256, 0u);
  EXPECT_EQ(b % 256, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_GT(a, 0u);  // address 0 stays invalid
}

TEST(Device, CoalescedWarpLoadIsOneTransaction) {
  Device d(tiny_config());
  std::array<std::uint64_t, 32> addrs{};
  const std::uint64_t base = d.alloc(4096);
  for (int l = 0; l < 32; ++l) addrs[l] = base + static_cast<std::uint64_t>(l) * 4;
  d.warp_load(0, addrs, 0xffffffffu, 4);
  EXPECT_EQ(d.counters().gld_requests, 1u);
  EXPECT_EQ(d.counters().gld_transactions, 1u);  // 32 x 4B = one 128 B line
}

TEST(Device, ScatteredWarpLoadIsManyTransactions) {
  Device d(tiny_config());
  std::array<std::uint64_t, 32> addrs{};
  const std::uint64_t base = d.alloc(1 << 20);
  for (int l = 0; l < 32; ++l) addrs[l] = base + static_cast<std::uint64_t>(l) * 4096;
  d.warp_load(0, addrs, 0xffffffffu, 4);
  EXPECT_EQ(d.counters().gld_transactions, 32u);
  EXPECT_DOUBLE_EQ(d.counters().transactions_per_request(), 32.0);
}

TEST(Device, InactiveLanesDoNotIssue) {
  Device d(tiny_config());
  std::array<std::uint64_t, 32> addrs{};
  const std::uint64_t base = d.alloc(1 << 20);
  for (int l = 0; l < 32; ++l) addrs[l] = base + static_cast<std::uint64_t>(l) * 4096;
  d.warp_load(0, addrs, 0x3u, 4);  // only lanes 0 and 1
  EXPECT_EQ(d.counters().gld_transactions, 2u);
}

TEST(Device, EmptyMaskIsFree) {
  Device d(tiny_config());
  std::array<std::uint64_t, 32> addrs{};
  d.warp_load(0, addrs, 0u, 4);
  EXPECT_EQ(d.counters().gld_requests, 0u);
  EXPECT_EQ(d.counters().warp_instructions, 0u);
}

TEST(Device, CacheHierarchyCountsHits) {
  Device d(tiny_config());
  std::array<std::uint64_t, 32> addrs{};
  const std::uint64_t base = d.alloc(4096);
  for (int l = 0; l < 32; ++l) addrs[l] = base;
  d.warp_load(0, addrs, 0xffffffffu, 4);  // cold: DRAM
  EXPECT_EQ(d.counters().dram_transactions, 1u);
  d.warp_load(0, addrs, 0xffffffffu, 4);  // warm: L1
  EXPECT_EQ(d.counters().l1_hits, 1u);
  // Same line from a different SM: misses its L1, hits shared L2.
  d.warp_load(1, addrs, 0xffffffffu, 4);
  EXPECT_EQ(d.counters().l2_hits, 1u);
  EXPECT_EQ(d.counters().dram_transactions, 1u);
}

TEST(Device, FlushCachesForcesDram) {
  Device d(tiny_config());
  std::array<std::uint64_t, 32> addrs{};
  for (int l = 0; l < 32; ++l) addrs[l] = d.alloc(0) + 4;
  d.warp_load(0, addrs, 0xffffffffu, 4);
  d.flush_caches();
  d.warp_load(0, addrs, 0xffffffffu, 4);
  EXPECT_EQ(d.counters().dram_transactions, 2u);
}

TEST(Device, BranchUniformityDetection) {
  Device d(tiny_config());
  d.warp_branch(0xffffffffu, 0xffffffffu);  // all taken: uniform
  d.warp_branch(0x0u, 0xffffffffu);         // none taken: uniform
  d.warp_branch(0x1u, 0xffffffffu);         // split: divergent
  d.warp_branch(0x1u, 0x1u);                // only active lane takes: uniform
  d.warp_branch(0x2u, 0x3u);                // split among active: divergent
  EXPECT_EQ(d.counters().branches, 5u);
  EXPECT_EQ(d.counters().divergent_branches, 2u);
  EXPECT_DOUBLE_EQ(d.counters().branch_efficiency(), 0.6);
}

TEST(Device, BranchWithNoActiveLanesIgnored) {
  Device d(tiny_config());
  d.warp_branch(0x5u, 0x0u);
  EXPECT_EQ(d.counters().branches, 0u);
}

TEST(Device, SharedMemoryCountsAsInstructions) {
  Device d(tiny_config());
  d.smem_load(3);
  d.smem_store(2);
  EXPECT_EQ(d.counters().smem_loads, 3u);
  EXPECT_EQ(d.counters().smem_stores, 2u);
  EXPECT_EQ(d.counters().warp_instructions, 5u);
}

TEST(Device, StoreCountsTransactionsWithoutCacheInstall) {
  Device d(tiny_config());
  std::array<std::uint64_t, 32> addrs{};
  const std::uint64_t base = d.alloc(4096);
  for (int l = 0; l < 32; ++l) addrs[l] = base + static_cast<std::uint64_t>(l);
  d.warp_store(0, addrs, 0xffffffffu, 1);
  EXPECT_EQ(d.counters().gst_requests, 1u);
  EXPECT_EQ(d.counters().gst_transactions, 1u);
  // The store must not have warmed the read caches.
  d.warp_load(0, addrs, 0x1u, 1);
  EXPECT_EQ(d.counters().dram_transactions, 1u);
}

TEST(Device, ResetCountersZeroesEverything) {
  Device d(tiny_config());
  d.smem_load(5);
  d.warp_branch(1, 3);
  d.reset_counters();
  EXPECT_EQ(d.counters().warp_instructions, 0u);
  EXPECT_EQ(d.counters().branches, 0u);
}

TEST(Device, TimingRooflinePicksTheLimiter) {
  DeviceConfig cfg = tiny_config();
  Device compute_bound(cfg);
  compute_bound.add_instructions(1'000'000);
  EXPECT_EQ(compute_bound.estimate().limiter, "compute");
  EXPECT_GT(compute_bound.estimate().seconds, 0.0);

  Device mem_bound(cfg);
  // Stream many distinct lines through: all DRAM.
  std::array<std::uint64_t, 32> addrs{};
  std::uint64_t base = mem_bound.alloc(1 << 26);
  for (int rep = 0; rep < 2000; ++rep) {
    for (int l = 0; l < 32; ++l) {
      addrs[l] = base + (static_cast<std::uint64_t>(rep) * 32 + l) * 4096;
    }
    mem_bound.warp_load(0, addrs, 0xffffffffu, 4);
  }
  EXPECT_EQ(mem_bound.estimate().limiter, "dram");
}

TEST(Device, TimingScalesWithWork) {
  Device d(tiny_config());
  d.add_instructions(1000);
  const double t1 = d.estimate().seconds;
  d.add_instructions(9000);
  const double t2 = d.estimate().seconds;
  EXPECT_NEAR(t2 / t1, 10.0, 1e-9);
}

TEST(Device, DivergencePenaltyAddsComputeCycles) {
  DeviceConfig cfg = tiny_config();
  cfg.divergence_penalty = 10.0;
  Device d(cfg);
  d.warp_branch(0x1u, 0x3u);  // divergent
  const Timing t = d.estimate();
  // 1 instruction + 10 penalty cycles over (2 SMs * 4 issue).
  EXPECT_NEAR(t.compute_cycles, 11.0 / 8.0, 1e-12);
}

TEST(Device, ConfigValidation) {
  DeviceConfig cfg = tiny_config();
  cfg.num_sms = 0;
  EXPECT_THROW(Device{cfg}, hrf::ConfigError);
}

TEST(DeviceArray, AddressesAreContiguousTyped) {
  Device d(tiny_config());
  const std::vector<float> host{1.f, 2.f, 3.f};
  DeviceArray<float> arr(d, host);
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_FLOAT_EQ(arr[1], 2.f);
  EXPECT_EQ(arr.addr(2) - arr.addr(0), 8u);
  EXPECT_EQ(arr.addr(0), arr.base());
}

TEST(DeviceArray, DistinctArraysDoNotOverlap) {
  Device d(tiny_config());
  const std::vector<std::int32_t> a(100), b(100);
  DeviceArray<std::int32_t> da(d, a), db(d, b);
  EXPECT_GE(db.base(), da.base() + 100 * sizeof(std::int32_t));
}

TEST(Device, TemporalHintServesRetouchesFromL2) {
  DeviceConfig cfg = tiny_config();
  cfg.l1_for_global_loads = false;
  Device d(cfg);
  std::array<std::uint64_t, 32> addrs{};
  const std::uint64_t hot = d.alloc(128);
  const std::uint64_t cold_base = d.alloc(1 << 22);

  // Touch the hot line with the temporal hint, evict it from L2 with a
  // large sweep, touch it again: a default load would pay DRAM twice, the
  // temporal hint pays DRAM once and L2 after.
  for (auto& a : addrs) a = hot;
  d.warp_load(0, addrs, 0xffffffffu, 8, Device::LoadHint::kTemporal);
  EXPECT_EQ(d.counters().dram_transactions, 1u);
  for (int rep = 0; rep < 40000; ++rep) {
    for (int l = 0; l < 32; ++l) {
      addrs[l] = cold_base + (static_cast<std::uint64_t>(rep) * 32 + l) * 128 % (1 << 22);
    }
    d.warp_load(0, addrs, 0xffffffffu, 4);
  }
  const std::uint64_t dram_before = d.counters().dram_transactions;
  for (auto& a : addrs) a = hot;
  d.warp_load(0, addrs, 0xffffffffu, 8, Device::LoadHint::kTemporal);
  EXPECT_EQ(d.counters().dram_transactions, dram_before);  // served as L2 hit
}

TEST(Device, AtomicRmwCountsLoadStoreAndSerialization) {
  Device d(tiny_config());
  std::array<std::uint64_t, 32> addrs{};
  const std::uint64_t base = d.alloc(4096);
  for (int l = 0; l < 32; ++l) addrs[l] = base + static_cast<std::uint64_t>(l) * 4;
  d.warp_atomic_rmw(0, addrs, 0xffffffffu, 4);
  EXPECT_EQ(d.counters().atomic_transactions, 1u);  // one coalesced line
  EXPECT_EQ(d.counters().gld_transactions, 1u);
  EXPECT_EQ(d.counters().gst_transactions, 1u);
  const Timing t = d.estimate();
  EXPECT_DOUBLE_EQ(t.atomic_cycles, tiny_config().atomic_rmw_cycles);
}

TEST(Device, AtomicCyclesAreAdditive) {
  DeviceConfig cfg = tiny_config();
  cfg.atomic_rmw_cycles = 100.0;
  Device d(cfg);
  d.add_instructions(800);  // 100 compute cycles at 8 issue/cycle
  std::array<std::uint64_t, 32> addrs{};
  const std::uint64_t base = d.alloc(1 << 16);
  for (int l = 0; l < 32; ++l) addrs[l] = base + static_cast<std::uint64_t>(l) * 4096;
  d.warp_atomic_rmw(0, addrs, 0xffffffffu, 4);  // 32 lines -> 3200 atomic cycles
  const Timing t = d.estimate();
  EXPECT_DOUBLE_EQ(t.atomic_cycles, 3200.0);
  EXPECT_GE(t.cycles, t.atomic_cycles);  // added on top of the roofline max
}

TEST(Device, TemporalHintFirstTouchStillPaysDram) {
  Device d(tiny_config());
  std::array<std::uint64_t, 32> addrs{};
  const std::uint64_t base = d.alloc(4096);
  for (int l = 0; l < 32; ++l) addrs[l] = base + static_cast<std::uint64_t>(l) * 128;
  d.warp_load(0, addrs, 0xffffffffu, 8, Device::LoadHint::kTemporal);
  EXPECT_EQ(d.counters().dram_transactions, 32u);
}

}  // namespace
}  // namespace hrf::gpusim
