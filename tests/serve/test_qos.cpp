// Multi-tenant QoS units: weighted max-min admission quotas (TenantQuotas)
// and the router-side AIMD concurrency limiter (AdaptiveLimiter), plus the
// ForestServer integration — a surging tenant is shed with QuotaError and a
// distinct rejected_quota counter while well-behaved tenants keep their
// reserved share. Runs under ThreadSanitizer via tools/check.sh.

#include "serve/qos.hpp"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "obs/exporter.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"

namespace hrf::serve {
namespace {

TenantQuotaOptions three_tenants() {
  TenantQuotaOptions q;
  q.tenants = {{"alpha", 2.0}, {"beta", 1.0}, {"gamma", 1.0}};
  return q;
}

TEST(TenantQuotas, ReservationsFloorWeightedSharesAndLeaveSpare) {
  // capacity 10, weights 2:1:1 -> floor(5), floor(2.5)=2, floor(2.5)=2;
  // the remaining slot is the shared spare pool.
  TenantQuotas quotas(three_tenants(), 10);
  EXPECT_EQ(quotas.reserved_slots("alpha"), 5u);
  EXPECT_EQ(quotas.reserved_slots("beta"), 2u);
  EXPECT_EQ(quotas.reserved_slots("gamma"), 2u);
  EXPECT_EQ(quotas.spare_capacity(), 1u);
  EXPECT_EQ(quotas.reserved_slots("unknown"), 0u);
}

TEST(TenantQuotas, SurgingTenantIsShedBeforeVictimsLoseASlot) {
  TenantQuotas quotas(three_tenants(), 10);
  // alpha floods: 5 reserved + the single spare slot, then shed.
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(quotas.try_acquire("alpha"));
  EXPECT_FALSE(quotas.try_acquire("alpha"));
  EXPECT_FALSE(quotas.try_acquire("alpha"));
  // The victims' reserved shares are untouched by the surge.
  for (int i = 0; i < 2; ++i) EXPECT_TRUE(quotas.try_acquire("beta"));
  for (int i = 0; i < 2; ++i) EXPECT_TRUE(quotas.try_acquire("gamma"));
  // ...but spare is gone, so beyond reserved they shed too.
  EXPECT_FALSE(quotas.try_acquire("beta"));

  const std::vector<TenantCounters> rows = quotas.snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[0].admitted, 6u);
  EXPECT_EQ(rows[0].shed, 2u);
  EXPECT_EQ(rows[1].name, "beta");
  EXPECT_EQ(rows[1].admitted, 2u);
  EXPECT_EQ(rows[1].shed, 1u);
}

TEST(TenantQuotas, ReleaseReturnsSpareSlotsFirst) {
  TenantQuotas quotas(three_tenants(), 10);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(quotas.try_acquire("alpha"));  // 5 reserved + spare
  EXPECT_EQ(quotas.spare_in_use(), 1u);
  quotas.release("alpha");  // over-reservation slot goes back to spare
  EXPECT_EQ(quotas.spare_in_use(), 0u);
  // Anonymous traffic can now take the spare slot again.
  EXPECT_TRUE(quotas.try_acquire(""));
  EXPECT_FALSE(quotas.try_acquire(""));  // spare-pool-only, no reservation
}

TEST(TenantQuotas, UnknownTenantsLiveOffSpareAndShowUpInSnapshots) {
  TenantQuotaOptions q;
  q.tenants = {{"paid", 1.0}};
  TenantQuotas quotas(q, 4);  // reserved 4, spare 0
  EXPECT_FALSE(quotas.try_acquire("freeloader"));
  const std::vector<TenantCounters> rows = quotas.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].name, "freeloader");
  EXPECT_EQ(rows[1].weight, 0.0);
  EXPECT_EQ(rows[1].reserved, 0u);
  EXPECT_EQ(rows[1].shed, 1u);
}

TEST(TenantQuotas, RejectsBadConfig) {
  TenantQuotaOptions empty_name;
  empty_name.tenants = {{"", 1.0}};
  EXPECT_THROW(TenantQuotas(empty_name, 8), ConfigError);

  TenantQuotaOptions bad_weight;
  bad_weight.tenants = {{"a", 0.0}};
  EXPECT_THROW(TenantQuotas(bad_weight, 8), ConfigError);

  TenantQuotaOptions dup;
  dup.tenants = {{"a", 1.0}, {"a", 2.0}};
  EXPECT_THROW(TenantQuotas(dup, 8), ConfigError);

  EXPECT_THROW(TenantQuotas(three_tenants(), 0), ConfigError);
}

TEST(TenantQuotas, ReleaseWithoutAcquireIsAnError) {
  TenantQuotas quotas(three_tenants(), 10);
  EXPECT_THROW(quotas.release("alpha"), ConfigError);
}

AdaptiveLimitOptions small_limiter() {
  AdaptiveLimitOptions o;
  o.enabled = true;
  o.initial_limit = 4;
  o.min_limit = 2;
  o.max_limit = 8;
  o.target_p95_seconds = 0.05;
  o.decrease_factor = 0.5;
  o.epoch_samples = 4;
  return o;
}

TEST(AdaptiveLimiter, DisabledIsANoOp) {
  AdaptiveLimiter limiter(AdaptiveLimitOptions{});  // enabled = false
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(limiter.try_acquire());
  limiter.release(10.0, true);
  EXPECT_EQ(limiter.in_flight(), 0u);
  EXPECT_EQ(limiter.decreases(), 0u);
}

TEST(AdaptiveLimiter, CapsInFlightAtTheCurrentLimit) {
  AdaptiveLimiter limiter(small_limiter());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(limiter.try_acquire());
  EXPECT_FALSE(limiter.try_acquire());
  EXPECT_EQ(limiter.in_flight(), 4u);
  limiter.release(0.01, false);
  EXPECT_TRUE(limiter.try_acquire());
}

TEST(AdaptiveLimiter, HealthyEpochsGrowTheLimitAdditively) {
  AdaptiveLimiter limiter(small_limiter());
  // Two full epochs below the p95 target: +1 each.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(limiter.try_acquire());
    limiter.release(0.01, false);
  }
  EXPECT_EQ(limiter.limit(), 6u);
  EXPECT_EQ(limiter.increases(), 2u);
  EXPECT_EQ(limiter.decreases(), 0u);
}

TEST(AdaptiveLimiter, BreachingEpochShrinksMultiplicatively) {
  AdaptiveLimiter limiter(small_limiter());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(limiter.try_acquire());
    limiter.release(0.2, false);  // p95 over the 0.05 target
  }
  EXPECT_EQ(limiter.limit(), 2u);  // floor(4 * 0.5)
  EXPECT_EQ(limiter.decreases(), 1u);
}

TEST(AdaptiveLimiter, DeadlineExpiryCutsImmediatelyAndClampsAtMin) {
  AdaptiveLimiter limiter(small_limiter());
  ASSERT_TRUE(limiter.try_acquire());
  limiter.release(1.0, /*deadline_expired=*/true);
  EXPECT_EQ(limiter.limit(), 2u);
  // Already at min_limit: further punishment cannot go below it.
  ASSERT_TRUE(limiter.try_acquire());
  limiter.release(1.0, true);
  EXPECT_EQ(limiter.limit(), 2u);
  EXPECT_EQ(limiter.decreases(), 2u);
}

TEST(AdaptiveLimiter, GrowthClampsAtMaxLimit) {
  AdaptiveLimitOptions o = small_limiter();
  o.initial_limit = 8;  // == max_limit
  AdaptiveLimiter limiter(o);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(limiter.try_acquire());
    limiter.release(0.001, false);
  }
  EXPECT_EQ(limiter.limit(), 8u);
}

// ---- ForestServer integration -----------------------------------------

Forest small_forest() {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 8;
  spec.num_features = 7;
  spec.seed = 33;
  return make_random_forest(spec);
}

TEST(ServerTenantQuotas, SurgerGetsQuotaErrorWhileVictimKeepsItsShare) {
  const Forest forest = small_forest();
  const Dataset queries = make_random_queries(16, 7, 5);

  ServerOptions opt;
  opt.num_workers = 1;
  opt.queue_capacity = 4;
  opt.start_paused = true;  // deterministic backlog: nothing dequeues yet
  opt.retry.max_retries = 0;
  opt.breaker.failure_threshold = 1000;
  opt.quotas.tenants = {{"victim", 1.0}, {"surger", 1.0}};  // 2 slots each

  ForestServer server(forest, ClassifierOptions{}, opt);
  std::vector<std::future<ServeResult>> futures;
  futures.push_back(server.submit(queries, 0.0, "surger"));
  futures.push_back(server.submit(queries, 0.0, "surger"));
  // Reserved share + spare (none) exhausted: the surger is shed with the
  // quota-specific error, not generic overload.
  EXPECT_THROW(server.submit(queries, 0.0, "surger"), QuotaError);
  // The victim's reserved slots are untouched by the surge.
  futures.push_back(server.submit(queries, 0.0, "victim"));
  futures.push_back(server.submit(queries, 0.0, "victim"));
  EXPECT_THROW(server.submit(queries, 0.0, "victim"), QuotaError);

  server.resume();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_quota, 2u);
  EXPECT_EQ(stats.rejected_overload, 0u);  // quota shedding is its own reason
  EXPECT_EQ(stats.completed, 4u);

  const std::vector<TenantCounters> rows = server.tenant_stats();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "victim");
  EXPECT_EQ(rows[0].admitted, 2u);
  EXPECT_EQ(rows[0].shed, 1u);
  EXPECT_EQ(rows[1].name, "surger");
  EXPECT_EQ(rows[1].admitted, 2u);
  EXPECT_EQ(rows[1].shed, 1u);
  EXPECT_EQ(rows[0].queued + rows[1].queued, 0u);  // drained after resume
}

TEST(ServerTenantQuotas, MetricsExportCarriesTenantFamiliesAndPassesSchema) {
  const Forest forest = small_forest();
  const Dataset queries = make_random_queries(8, 7, 5);

  ServerOptions opt;
  opt.num_workers = 1;
  opt.queue_capacity = 8;
  opt.quotas.tenants = {{"alpha", 3.0}, {"beta", 1.0}};

  ForestServer server(forest, ClassifierOptions{}, opt);
  server.submit(queries, 0.0, "alpha").get();
  server.submit(queries, 0.0, "beta").get();

  const obs::MetricsSnapshot snap = server.metrics_snapshot();
  ASSERT_EQ(snap.tenants.size(), 2u);
  EXPECT_EQ(snap.tenants[0].name, "alpha");
  EXPECT_EQ(snap.tenants[0].admitted, 1u);
  ASSERT_NE(snap.counters.find("requests.rejected_quota"), snap.counters.end());

  const std::string prom = obs::to_prometheus(snap);
  EXPECT_NE(prom.find("hrf_tenant_weight{tenant=\"alpha\"}"), std::string::npos);
  EXPECT_NE(prom.find("hrf_tenant_quota_shed_total{tenant=\"beta\"}"), std::string::npos);
  const std::string json = obs::snapshot_to_json(snap).dump();
  EXPECT_NO_THROW(obs::check_metrics_schema(prom, json));
}

}  // namespace
}  // namespace hrf::serve
