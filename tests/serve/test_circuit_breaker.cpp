// CircuitBreaker state machine, driven by an injected fake clock so
// cooldown expiry is deterministic (no sleeps).

#include "serve/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hrf::serve {
namespace {

class CircuitBreakerTest : public testing::Test {
 protected:
  CircuitBreaker make(int threshold, double open_seconds, int probes = 1) {
    CircuitBreakerOptions opt;
    opt.failure_threshold = threshold;
    opt.open_seconds = open_seconds;
    opt.half_open_probes = probes;
    return CircuitBreaker(opt, [this] { return now_; });
  }

  double now_ = 0.0;
};

TEST_F(CircuitBreakerTest, StartsClosedAndAllowsRequests) {
  CircuitBreaker b = make(3, 1.0);
  EXPECT_EQ(b.state(), CircuitState::Closed);
  EXPECT_TRUE(b.allow_request());
  EXPECT_EQ(b.trips(), 0u);
}

TEST_F(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreaker b = make(3, 1.0);
  b.record_failure();
  b.record_failure();
  EXPECT_EQ(b.state(), CircuitState::Closed);
  EXPECT_EQ(b.consecutive_failures(), 2);
  b.record_failure();
  EXPECT_EQ(b.state(), CircuitState::Open);
  EXPECT_EQ(b.trips(), 1u);
  EXPECT_FALSE(b.allow_request());  // cooldown not elapsed
}

TEST_F(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreaker b = make(3, 1.0);
  b.record_failure();
  b.record_failure();
  b.record_success();
  EXPECT_EQ(b.consecutive_failures(), 0);
  b.record_failure();
  b.record_failure();
  EXPECT_EQ(b.state(), CircuitState::Closed);  // never 3 in a row
}

TEST_F(CircuitBreakerTest, CooldownAdmitsOneProbe) {
  CircuitBreaker b = make(1, 2.0);
  b.record_failure();  // trip
  now_ = 1.0;
  EXPECT_FALSE(b.allow_request());  // still cooling down
  now_ = 2.0;
  EXPECT_TRUE(b.allow_request());  // the probe
  EXPECT_EQ(b.state(), CircuitState::HalfOpen);
  EXPECT_EQ(b.probes(), 1u);
  EXPECT_FALSE(b.allow_request());  // probe budget spent, rest to fallback
}

TEST_F(CircuitBreakerTest, ProbeSuccessCloses) {
  CircuitBreaker b = make(1, 1.0);
  b.record_failure();
  now_ = 1.5;
  ASSERT_TRUE(b.allow_request());
  b.record_success();
  EXPECT_EQ(b.state(), CircuitState::Closed);
  EXPECT_TRUE(b.allow_request());
  EXPECT_EQ(b.trips(), 1u);
}

TEST_F(CircuitBreakerTest, ProbeFailureReopensWithFreshCooldown) {
  CircuitBreaker b = make(1, 1.0);
  b.record_failure();
  now_ = 1.5;
  ASSERT_TRUE(b.allow_request());
  b.record_failure();  // probe failed
  EXPECT_EQ(b.state(), CircuitState::Open);
  EXPECT_EQ(b.trips(), 2u);
  EXPECT_FALSE(b.allow_request());  // new cooldown runs from the re-open
  now_ = 2.5;
  EXPECT_TRUE(b.allow_request());  // next probe window
}

TEST_F(CircuitBreakerTest, MultipleProbeBudget) {
  CircuitBreaker b = make(1, 1.0, /*probes=*/2);
  b.record_failure();
  now_ = 1.0;
  EXPECT_TRUE(b.allow_request());
  EXPECT_TRUE(b.allow_request());
  EXPECT_FALSE(b.allow_request());
  EXPECT_EQ(b.probes(), 2u);
}

TEST_F(CircuitBreakerTest, StragglerFailureWhileOpenIsIgnored) {
  CircuitBreaker b = make(2, 10.0);
  b.record_failure();
  b.record_failure();  // trip
  ASSERT_EQ(b.state(), CircuitState::Open);
  b.record_failure();  // admitted before the trip, finished after
  EXPECT_EQ(b.state(), CircuitState::Open);
  EXPECT_EQ(b.trips(), 1u);
}

TEST_F(CircuitBreakerTest, ProbeAdmittedExactlyAtCooldownBoundary) {
  CircuitBreaker b = make(1, 1.0);
  b.record_failure();  // trip at t=0: open until t=1
  now_ = 1.0;          // exactly the boundary, not strictly past it
  EXPECT_TRUE(b.allow_request());
  EXPECT_EQ(b.state(), CircuitState::HalfOpen);
  EXPECT_EQ(b.probes(), 1u);
}

TEST_F(CircuitBreakerTest, ProbeTimeoutAtDeadlineBoundaryReopensInsteadOfLeakingTheProbe) {
  CircuitBreaker b = make(1, 1.0);
  b.record_failure();  // trip at t=0
  now_ = 1.0;
  ASSERT_TRUE(b.allow_request());  // the probe
  // The probe's request deadline expires exactly as the attempt would
  // complete: the worker reports neither success nor failure. The spent
  // probe charge must still be resolved, or the breaker is stuck
  // HalfOpen with zero budget and no recovery path.
  b.record_timeout();
  EXPECT_EQ(b.state(), CircuitState::Open);
  EXPECT_EQ(b.trips(), 2u);
  EXPECT_EQ(b.probes(), 1u);
  now_ = 2.0;  // fresh cooldown runs from the re-open
  EXPECT_TRUE(b.allow_request());
  EXPECT_EQ(b.state(), CircuitState::HalfOpen);
}

TEST_F(CircuitBreakerTest, StragglerFailureAfterProbeTimeoutDoesNotDoubleCount) {
  CircuitBreaker b = make(1, 1.0);
  b.record_failure();  // trip #1
  now_ = 1.0;
  ASSERT_TRUE(b.allow_request());
  b.record_timeout();  // probe resolved: trip #2
  // The timed-out probe's failure surfaces later anyway (e.g. the shed
  // request's DeadlineError also reported as a failure by a sloppy
  // caller): the breaker is Open, so it must be ignored, not counted as
  // a third trip.
  b.record_failure();
  EXPECT_EQ(b.state(), CircuitState::Open);
  EXPECT_EQ(b.trips(), 2u);
}

TEST_F(CircuitBreakerTest, TimeoutWhileClosedOrOpenIsNotAFailure) {
  CircuitBreaker b = make(2, 1.0);
  b.record_timeout();  // Closed: a deadline is the client's budget
  EXPECT_EQ(b.state(), CircuitState::Closed);
  EXPECT_EQ(b.consecutive_failures(), 0);
  b.record_failure();
  b.record_timeout();  // must not advance the consecutive count either
  EXPECT_EQ(b.consecutive_failures(), 1);
  b.record_failure();  // trip
  ASSERT_EQ(b.state(), CircuitState::Open);
  b.record_timeout();  // Open: straggler, ignored
  EXPECT_EQ(b.state(), CircuitState::Open);
  EXPECT_EQ(b.trips(), 1u);
}

TEST_F(CircuitBreakerTest, OptionsAreValidated) {
  CircuitBreakerOptions bad;
  bad.failure_threshold = 0;
  EXPECT_THROW(CircuitBreaker b(bad), ConfigError);
  CircuitBreakerOptions neg;
  neg.open_seconds = -1.0;
  EXPECT_THROW(CircuitBreaker b(neg), ConfigError);
}

}  // namespace
}  // namespace hrf::serve
