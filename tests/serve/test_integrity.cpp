// Silent-corruption defense (docs/robustness.md, serve/integrity.hpp):
//
//   * The cross-check property the header promises: layout_crc32() over a
//     built layout equals folding the per-section CRC32s that layout_io
//     writes into the same layout's v2 blob — pinned here for all three
//     resident variants (CSR, independent hierarchical, hybrid).
//   * corrupt_replica_copy() produces a structurally valid copy whose CRC
//     drifts and whose predictions diverge, without touching the source.
//   * ForestServer self-healing: the scrubber detects and repairs an
//     injected replica corruption; sampled shadow audits serve the oracle
//     answer on divergence and trigger a repair; the watchdog rescues a
//     hung worker's request and replaces the thread.
//
// All deterministic and fast enough for tier1; the concurrent soak lives
// in test_integrity_chaos.cpp (chaos label).

#include "serve/integrity.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "layout/layout_io.hpp"
#include "serve/server.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"

namespace hrf::serve {
namespace {

Forest demo_forest() {
  RandomForestSpec spec;
  spec.num_trees = 8;
  spec.max_depth = 8;
  spec.num_features = 9;
  spec.num_classes = 3;
  spec.seed = 91;
  return make_random_forest(spec);
}

std::string tmp_path(const char* name) { return testing::TempDir() + "/" + name; }

// Walks a v2 blob (8-byte preamble, then {u64 size, u32 crc, payload}
// frames), asserting each section's stored CRC matches its payload, and
// returns the chained CRC over all payloads in file order.
std::uint32_t fold_blob_section_crcs(const std::string& path, std::size_t expect_sections) {
  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::size_t off = 8;  // u32 magic + u32 version
  std::uint32_t folded = 0;
  std::size_t sections = 0;
  while (off < bytes.size()) {
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
    EXPECT_LE(off + 12, bytes.size());
    std::memcpy(&size, bytes.data() + off, sizeof size);
    off += sizeof size;
    std::memcpy(&crc, bytes.data() + off, sizeof crc);
    off += sizeof crc;
    EXPECT_LE(off + size, bytes.size());
    EXPECT_EQ(crc32(bytes.data() + off, size), crc) << "section " << sections;
    folded = crc32(bytes.data() + off, size, folded);
    off += size;
    ++sections;
  }
  EXPECT_EQ(off, bytes.size());
  EXPECT_EQ(sections, expect_sections);
  return folded;
}

TEST(IntegrityCrc, CsrReplicaCrcEqualsFoldedBlobSectionCrcs) {
  const CsrForest csr = CsrForest::build(demo_forest());
  const std::string path = tmp_path("hrf_integrity_csr.hrfc");
  save_csr(csr, path);
  // header, feature_id, value, children_arr, children_arr_idx, tree_root
  EXPECT_EQ(layout_crc32(csr), fold_blob_section_crcs(path, 6));
  std::remove(path.c_str());
}

TEST(IntegrityCrc, HierarchicalReplicaCrcEqualsFoldedBlobSectionCrcs) {
  const Forest f = demo_forest();
  // Independent (RSD defaults to SD) and hybrid (RSD > SD) layouts frame
  // the same eight sections; the fold must match for both.
  const HierConfig configs[] = {HierConfig{.subtree_depth = 4},
                                HierConfig{.subtree_depth = 4, .root_subtree_depth = 6}};
  for (const HierConfig& cfg : configs) {
    const HierarchicalForest h = HierarchicalForest::build(f, cfg);
    const std::string path = tmp_path("hrf_integrity_hier.hrfh");
    save_hierarchical(h, path);
    EXPECT_EQ(layout_crc32(h), fold_blob_section_crcs(path, 8))
        << "subtree_depth=" << cfg.subtree_depth << " rsd=" << cfg.root_subtree_depth;
    std::remove(path.c_str());
  }
}

TEST(IntegrityCrc, CrcIsStableAcrossRebuildsAndSensitiveToCorruption) {
  const Forest f = demo_forest();
  const CsrForest a = CsrForest::build(f);
  const CsrForest b = CsrForest::build(f);
  EXPECT_EQ(layout_crc32(a), layout_crc32(b));
  EXPECT_NE(layout_crc32(a), layout_crc32(corrupt_replica_copy(a)));
  const HierarchicalForest h = HierarchicalForest::build(f, HierConfig{.subtree_depth = 4});
  EXPECT_NE(layout_crc32(h), layout_crc32(corrupt_replica_copy(h)));
}

TEST(IntegrityCorrupt, CopyDivergesWithoutTouchingTheSourceOrTopology) {
  const Forest f = demo_forest();
  const CsrForest csr = CsrForest::build(f);
  const std::uint32_t before = layout_crc32(csr);
  const CsrForest bad = corrupt_replica_copy(csr);  // validates via from_parts
  EXPECT_EQ(layout_crc32(csr), before);             // source untouched
  EXPECT_EQ(bad.num_nodes(), csr.num_nodes());      // topology intact
  const Dataset q = make_random_queries(64, 9, 92);
  std::size_t diverged = 0;
  for (std::size_t i = 0; i < q.num_samples(); ++i) {
    if (bad.classify(q.sample(i)) != csr.classify(q.sample(i))) ++diverged;
  }
  // Every internal threshold is clobbered: silent, but not subtle.
  EXPECT_GT(diverged, 0u);
}

// ---------------------------------------------------------------------------
// ForestServer self-healing behavior.

struct ServeFixture {
  Forest forest = demo_forest();
  Dataset queries = make_random_queries(16, 9, 93);
  std::vector<std::uint8_t> reference =
      forest.classify_batch(queries.features(), queries.num_samples());
};

// Polls self_heal() until `done` passes or the deadline expires.
template <typename Pred>
bool wait_for(ForestServer& server, Pred done, double seconds = 5.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done(server.self_heal())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done(server.self_heal());
}

TEST(IntegrityServer, ScrubberDetectsAndRepairsInjectedCorruption) {
  FaultInjector::global().disarm_all();
  ServeFixture fx;

  ClassifierOptions copt;
  copt.backend = Backend::GpuSim;
  copt.variant = Variant::Hybrid;
  copt.layout.subtree_depth = 4;

  ServerOptions sopt;
  sopt.num_workers = 1;
  sopt.integrity.scrub_interval_seconds = 0.005;
  ForestServer server(fx.forest, copt, sopt);

  // Let at least one clean pass land so "passes without corruption" is
  // also covered, then poison the single worker's replica.
  ASSERT_TRUE(wait_for(server, [](const SelfHealStats& s) { return s.scrub_passes > 0; }));
  EXPECT_EQ(server.self_heal().scrub_corruptions, 0u);

  FaultInjector::global().arm("corrupt:replica", 1);
  ASSERT_TRUE(wait_for(server, [](const SelfHealStats& s) {
    return s.scrub_corruptions >= 1 && s.scrub_repairs >= 1;
  }));
  EXPECT_EQ(FaultInjector::global().fired("corrupt:replica"), 1u);

  // The rebuilt replica serves bit-exact predictions again.
  const ServeResult res = server.submit(fx.queries).get();
  EXPECT_EQ(res.report.predictions, fx.reference);

  const DrainReport drain = server.shutdown();
  EXPECT_EQ(drain.abandoned, 0u);
  EXPECT_TRUE(server.healthy());
  FaultInjector::global().disarm_all();
}

TEST(IntegrityServer, ShadowAuditServesOracleAnswerAndTriggersRepair) {
  FaultInjector::global().disarm_all();
  ServeFixture fx;

  ClassifierOptions copt;
  copt.backend = Backend::CpuNative;
  copt.variant = Variant::Csr;

  ServerOptions sopt;
  sopt.num_workers = 1;
  sopt.integrity.audit_sample_every = 1;  // audit every request
  sopt.integrity.audit_mismatch_threshold = 2;
  ForestServer server(fx.forest, copt, sopt);

  FaultInjector::global().arm("corrupt:replica", 1);
  // The corruption lands on the monitor's next poll; wait for the charge
  // to be consumed so the request loop genuinely runs against a poisoned
  // replica.
  ASSERT_TRUE(wait_for(server, [](const SelfHealStats&) {
    return FaultInjector::global().fired("corrupt:replica") == 1;
  }));
  // From now until the repair lands, every response must still carry the
  // oracle predictions (the audit is authoritative on divergence).
  bool saw_audit_note = false;
  const auto loop_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < loop_deadline) {
    const ServeResult res = server.submit(fx.queries).get();
    ASSERT_EQ(res.report.predictions, fx.reference);
    for (const std::string& d : res.report.degradations) {
      if (d.find("audit") != std::string::npos) saw_audit_note = true;
    }
    const SelfHealStats s = server.self_heal();
    if (s.scrub_repairs >= 1 && s.audit_mismatches >= 1) break;
  }
  const SelfHealStats s = server.self_heal();
  EXPECT_GT(s.audit_sampled, 0u);
  EXPECT_GE(s.audit_mismatches, 1u);
  EXPECT_GE(s.scrub_repairs, 1u);  // audit streak handed the monitor a repair
  EXPECT_TRUE(saw_audit_note);

  // After the repair: audits keep sampling, mismatches stop accruing.
  const std::uint64_t mismatches_after_repair = server.self_heal().audit_mismatches;
  for (int i = 0; i < 5; ++i) {
    const ServeResult res = server.submit(fx.queries).get();
    EXPECT_EQ(res.report.predictions, fx.reference);
    EXPECT_TRUE(res.report.degradations.empty());
  }
  EXPECT_EQ(server.self_heal().audit_mismatches, mismatches_after_repair);

  const DrainReport drain = server.shutdown();
  EXPECT_EQ(drain.abandoned, 0u);
  EXPECT_EQ(server.counters().value("requests.failed"), 0u);
  FaultInjector::global().disarm_all();
}

TEST(IntegrityServer, WatchdogRescuesHungWorkerAndReplacesThread) {
  FaultInjector::global().disarm_all();
  ServeFixture fx;

  ClassifierOptions copt;
  copt.backend = Backend::CpuNative;
  copt.variant = Variant::Csr;

  ServerOptions sopt;
  sopt.num_workers = 1;
  sopt.integrity.hang_timeout_seconds = 0.05;
  sopt.integrity.inject_hang_seconds = 0.5;  // well past the timeout
  ForestServer server(fx.forest, copt, sopt);

  FaultInjector::global().arm("hang:worker", 1);
  const ServeResult rescued = server.submit(fx.queries).get();
  // Rescued, not lost: the watchdog answered on the CPU oracle and said so.
  EXPECT_EQ(rescued.report.predictions, fx.reference);
  bool noted = false;
  for (const std::string& d : rescued.report.degradations) {
    if (d.find("watchdog") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);

  // The promise resolves inside the rescue, a beat before the monitor
  // finishes replacing the thread — poll for the restart rather than
  // racing it.
  ASSERT_TRUE(wait_for(server, [](const SelfHealStats& s) {
    return s.watchdog_worker_restarts >= 1;
  }));
  const SelfHealStats s = server.self_heal();
  EXPECT_GE(s.watchdog_missed_heartbeats, 1u);
  EXPECT_EQ(s.watchdog_worker_restarts, 1u);

  // The replacement thread serves normally (no degradation trail).
  for (int i = 0; i < 5; ++i) {
    const ServeResult res = server.submit(fx.queries).get();
    EXPECT_EQ(res.report.predictions, fx.reference);
    EXPECT_TRUE(res.report.degradations.empty());
  }

  // The zombie (still sleeping in the injected hang) joins at shutdown.
  const DrainReport drain = server.shutdown();
  EXPECT_EQ(drain.abandoned, 0u);
  EXPECT_EQ(server.counters().value("requests.failed"), 0u);
  EXPECT_TRUE(server.healthy());
  FaultInjector::global().disarm_all();
}

TEST(IntegrityServer, UnconfiguredServerReportsAllZeros) {
  ServeFixture fx;
  ClassifierOptions copt;
  copt.backend = Backend::CpuNative;
  copt.variant = Variant::Csr;
  ForestServer server(fx.forest, copt, ServerOptions{});
  (void)server.submit(fx.queries).get();
  const SelfHealStats s = server.self_heal();
  EXPECT_EQ(s.scrub_passes, 0u);
  EXPECT_EQ(s.audit_sampled, 0u);
  EXPECT_EQ(s.watchdog_worker_restarts, 0u);
  (void)server.shutdown();
}

}  // namespace
}  // namespace hrf::serve
