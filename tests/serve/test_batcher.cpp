// Micro-batching coverage (docs/serving.md, "Dynamic micro-batching"):
// fake-clock BatchFormer unit tests (the former never reads a clock, so
// every flush rule is pinned on synthetic time with zero sleeps), then
// ForestServer integration — batched responses bit-identical to the
// oracle, expired members shed without poisoning batchmates, poison
// requests isolated by per-member re-run, shape-incompatible requests
// kept out of combined batches, QoS counters balanced under batching.
// The whole file also runs under ThreadSanitizer via tools/check.sh.

#include "serve/batcher.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf::serve {
namespace {

using TimePoint = BatchFormer::TimePoint;
using std::chrono::microseconds;
using std::chrono::milliseconds;

TimePoint t0() { return TimePoint{} + std::chrono::hours(1); }

BatchOptions batching(std::size_t max_requests, double max_wait_seconds = 100e-3,
                      double deadline_fraction = 0.5) {
  BatchOptions opt;
  opt.max_requests = max_requests;
  opt.max_wait_seconds = max_wait_seconds;
  opt.deadline_fraction = deadline_fraction;
  return opt;
}

TEST(BackendBatchGranularity, MatchesBackendNativeUnits) {
  gpusim::DeviceConfig gpu = gpusim::DeviceConfig::titan_xp();
  EXPECT_EQ(backend_batch_granularity(Backend::GpuSim, gpu),
            static_cast<std::size_t>(gpu.warp_size));
  gpu.warp_size = 64;
  EXPECT_EQ(backend_batch_granularity(Backend::GpuSim, gpu), 64u);
  EXPECT_EQ(backend_batch_granularity(Backend::FpgaSim, gpu), 32u);
  EXPECT_EQ(backend_batch_granularity(Backend::CpuNative, gpu), 16u);
}

TEST(BatchOptionsTest, EnabledOnlyAboveOneRequest) {
  EXPECT_FALSE(BatchOptions{}.enabled());
  EXPECT_FALSE(batching(1).enabled());
  EXPECT_TRUE(batching(2).enabled());
}

TEST(BatchFormerTest, RejectsBadOptions) {
  EXPECT_THROW(BatchFormer(batching(4), 0), ConfigError);
  EXPECT_THROW(BatchFormer(batching(4, -1.0), 32), ConfigError);
  EXPECT_THROW(BatchFormer(batching(4, 1e-3, 1.5), 32), ConfigError);
  EXPECT_THROW(BatchFormer(batching(4, 1e-3, -0.1), 32), ConfigError);
}

TEST(BatchFormerTest, FlushesWhenMemberBudgetFills) {
  BatchFormer former(batching(3), 32);
  EXPECT_FALSE(former.should_flush(t0()));  // empty formers never flush
  former.add(t0(), 4, false, {});
  former.add(t0(), 4, false, {});
  EXPECT_FALSE(former.full());
  EXPECT_FALSE(former.should_flush(t0()));
  former.add(t0(), 4, false, {});
  EXPECT_TRUE(former.full());
  // Full flushes immediately, long before the 100ms wait budget.
  EXPECT_TRUE(former.should_flush(t0()));
  EXPECT_EQ(former.size(), 3u);
  EXPECT_EQ(former.rows(), 12u);
}

TEST(BatchFormerTest, FlushesWhenRowBudgetFills) {
  // max_rows auto-resolves to max_requests x granularity = 4 x 8 = 32.
  BatchFormer former(batching(4), 8);
  EXPECT_EQ(former.max_rows(), 32u);
  former.add(t0(), 20, false, {});
  EXPECT_TRUE(former.fits(12));
  EXPECT_FALSE(former.fits(13));  // 20 + 13 > 32: leave it for the next batch
  former.add(t0(), 12, false, {});
  EXPECT_TRUE(former.full());
  EXPECT_TRUE(former.should_flush(t0()));
}

TEST(BatchFormerTest, EmptyFormerAlwaysFitsOneOversizedMember) {
  BatchFormer former(batching(4), 8);
  EXPECT_TRUE(former.fits(1000));  // never starve a request larger than max_rows
  former.add(t0(), 1000, false, {});
  EXPECT_TRUE(former.full());  // ...but it forms a batch of one
  EXPECT_FALSE(former.fits(1));
}

TEST(BatchFormerTest, FlushesOnMaxWaitExpiry) {
  BatchFormer former(batching(8, 100e-3), 32);
  former.add(t0(), 4, false, {});
  EXPECT_EQ(former.flush_deadline(), t0() + milliseconds(100));
  EXPECT_FALSE(former.should_flush(t0() + milliseconds(99)));
  EXPECT_TRUE(former.should_flush(t0() + milliseconds(100)));
}

TEST(BatchFormerTest, TightestMemberDeadlineClosesTheBatchEarly) {
  BatchFormer former(batching(8, 100e-3, 0.5), 32);
  // Member 1: 1s of budget left, grant = min(100ms, 500ms) = 100ms.
  former.add(t0(), 4, true, t0() + std::chrono::seconds(1));
  EXPECT_EQ(former.flush_deadline(), t0() + milliseconds(100));
  // Member 2 joins 10ms later with 40ms of budget: grant 20ms tightens
  // the whole batch to t0+30ms — the nearly-expired member wins.
  former.add(t0() + milliseconds(10), 4, true, t0() + milliseconds(50));
  EXPECT_EQ(former.flush_deadline(), t0() + milliseconds(30));
  EXPECT_FALSE(former.should_flush(t0() + milliseconds(29)));
  EXPECT_TRUE(former.should_flush(t0() + milliseconds(30)));
  // A later patient member cannot loosen the deadline back.
  former.add(t0() + milliseconds(11), 4, false, {});
  EXPECT_EQ(former.flush_deadline(), t0() + milliseconds(30));
}

TEST(BatchFormerTest, ExpiredMemberGrantsZeroWait) {
  BatchFormer former(batching(8, 100e-3), 32);
  former.add(t0(), 4, false, {});
  // A member already past its deadline grants nothing: the batch flushes
  // now, so the server sheds it at dispatch instead of letting it rot.
  former.add(t0() + milliseconds(5), 4, true, t0());
  EXPECT_TRUE(former.should_flush(t0() + milliseconds(5)));
}

TEST(BatchFormerTest, ResetForgetsMembersAndDeadline) {
  BatchFormer former(batching(4, 1e-3), 32);
  former.add(t0(), 8, true, t0() + milliseconds(1));
  former.reset();
  EXPECT_EQ(former.size(), 0u);
  EXPECT_EQ(former.rows(), 0u);
  EXPECT_FALSE(former.should_flush(t0() + std::chrono::hours(2)));
  former.add(t0() + milliseconds(10), 4, false, {});
  EXPECT_EQ(former.flush_deadline(), t0() + milliseconds(11));
}

// ---------------------------------------------------------------------------
// ForestServer integration
// ---------------------------------------------------------------------------

Forest small_forest() {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 9;
  spec.num_features = 7;
  spec.seed = 33;
  return make_random_forest(spec);
}

ClassifierOptions gpu_hybrid_options() {
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.variant = Variant::Hybrid;
  opt.layout.subtree_depth = 4;
  opt.gpu = gpusim::DeviceConfig::titan_xp();
  opt.gpu.num_sms = 4;
  opt.fallback.enabled = false;
  return opt;
}

ServerOptions batched_server(std::size_t workers, std::size_t batch_max,
                             double max_wait_seconds = 500e-6) {
  ServerOptions s;
  s.num_workers = workers;
  s.queue_capacity = 64;
  s.retry.max_retries = 0;
  s.retry.backoff_base_seconds = 1e-5;
  s.breaker.failure_threshold = 1000;
  s.batching.max_requests = batch_max;
  s.batching.max_wait_seconds = max_wait_seconds;
  return s;
}

class BatchedServerTest : public testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().disarm_all(); }
  void TearDown() override { FaultInjector::global().disarm_all(); }

  Forest forest_ = small_forest();
  Dataset queries_ = make_random_queries(12, 7, 5);
  std::vector<std::uint8_t> reference_ =
      forest_.classify_batch(queries_.features(), queries_.num_samples());
};

TEST_F(BatchedServerTest, BatchedBacklogServesBitIdentically) {
  ServerOptions sopt = batched_server(1, 8);
  sopt.start_paused = true;  // deterministic backlog: everything coalesces
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  constexpr int kRequests = 24;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kRequests; ++i) futures.push_back(server.submit(queries_));
  server.resume();
  for (std::future<ServeResult>& f : futures) {
    ServeResult res = f.get();
    EXPECT_EQ(res.report.predictions, reference_);
    EXPECT_FALSE(res.via_fallback);
  }

  // 24 queued requests through batch-max 8 on one worker: every dispatch
  // is a full batch, and every member is accounted exactly once.
  EXPECT_EQ(server.counters().value("requests.completed"),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(server.counters().value("requests.batched"),
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(server.counters().value("batch.formed"), 3u);
  const LatencyStats lat = server.latency();
  EXPECT_EQ(lat.batch_size.total, 3u);
  EXPECT_EQ(lat.batch_size.max_ns, 8u);  // member-count domain
  EXPECT_EQ(lat.queue_wait.total, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(lat.end_to_end.total, static_cast<std::uint64_t>(kRequests));
  server.shutdown();
}

TEST_F(BatchedServerTest, LoneRequestFlushesByDeadlineAndStillServes) {
  // Nothing else arrives, so the batch of one closes via max-wait expiry.
  ForestServer server(forest_, gpu_hybrid_options(), batched_server(1, 8, 200e-6));
  ServeResult res = server.submit(queries_).get();
  EXPECT_EQ(res.report.predictions, reference_);
  EXPECT_EQ(server.counters().value("batch.formed"), 1u);
  EXPECT_EQ(server.counters().value("batch.flush_deadline"), 1u);
  // A batch of one is not "batched" traffic.
  EXPECT_EQ(server.counters().value("requests.batched"), 0u);
  server.shutdown();
}

TEST_F(BatchedServerTest, ExpiredMemberIsShedWithoutPoisoningBatchmates) {
  ServerOptions sopt = batched_server(1, 8);
  sopt.start_paused = true;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  // Two patient members first (the head's wait grant keeps the batch
  // open), then a doomed member whose deadline expires while paused.
  std::future<ServeResult> ok1 = server.submit(queries_, 0.0);
  std::future<ServeResult> ok2 = server.submit(queries_, 0.0);
  std::future<ServeResult> doomed = server.submit(queries_, 1e-3);
  std::this_thread::sleep_for(milliseconds(20));  // doomed is now expired
  server.resume();

  EXPECT_EQ(ok1.get().report.predictions, reference_);
  EXPECT_EQ(ok2.get().report.predictions, reference_);
  EXPECT_THROW(doomed.get(), DeadlineError);

  EXPECT_EQ(server.counters().value("requests.shed_deadline"), 1u);
  EXPECT_EQ(server.counters().value("requests.completed"), 2u);
  EXPECT_EQ(server.counters().value("requests.deadline_expired"), 0u);
  server.shutdown();
}

TEST_F(BatchedServerTest, PoisonMemberFailsAloneBatchmatesComplete) {
  ServerOptions sopt = batched_server(1, 8);
  sopt.start_paused = true;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  Dataset poison = queries_;
  poison.sample(0)[0] = std::numeric_limits<float>::quiet_NaN();

  // The poison row fails the *combined* validation, which the batch
  // cannot pin on one member — the server re-runs each member alone, so
  // only the poison request sees the ConfigError.
  std::future<ServeResult> ok1 = server.submit(queries_);
  std::future<ServeResult> bad = server.submit(poison);
  std::future<ServeResult> ok2 = server.submit(queries_);
  server.resume();

  EXPECT_EQ(ok1.get().report.predictions, reference_);
  EXPECT_EQ(ok2.get().report.predictions, reference_);
  EXPECT_THROW(bad.get(), ConfigError);
  EXPECT_EQ(server.counters().value("requests.completed"), 2u);
  EXPECT_EQ(server.counters().value("requests.failed"), 1u);
  server.shutdown();
}

TEST_F(BatchedServerTest, ShapeMismatchedRequestNeverJoinsABatch) {
  ServerOptions sopt = batched_server(1, 8);
  sopt.start_paused = true;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  // 5-feature queries against a 7-feature model: invalid, but the batcher
  // must isolate it by shape *before* execution — the good requests
  // around it still coalesce and serve.
  std::future<ServeResult> ok1 = server.submit(queries_);
  std::future<ServeResult> bad = server.submit(make_random_queries(4, 5, 9));
  std::future<ServeResult> ok2 = server.submit(queries_);
  server.resume();

  EXPECT_EQ(ok1.get().report.predictions, reference_);
  EXPECT_EQ(ok2.get().report.predictions, reference_);
  EXPECT_THROW(bad.get(), ConfigError);
  server.shutdown();
}

TEST_F(BatchedServerTest, QuotaCountersBalancePerTenantUnderBatching) {
  ServerOptions sopt = batched_server(2, 4);
  sopt.queue_capacity = 32;
  sopt.quotas.tenants = {{"alpha", 1.0}, {"beta", 1.0}};
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  constexpr int kPerTenant = 20;
  std::atomic<int> ok_alpha{0}, ok_beta{0}, shed{0};
  const auto client = [&](const std::string& tenant, std::atomic<int>& ok) {
    for (int i = 0; i < kPerTenant; ++i) {
      try {
        ServeResult res = server.submit(queries_, 0.0, tenant).get();
        if (res.report.predictions == reference_) ok.fetch_add(1);
      } catch (const QuotaError&) {
        shed.fetch_add(1);
      }
    }
  };
  std::thread a(client, "alpha", std::ref(ok_alpha));
  std::thread b(client, "beta", std::ref(ok_beta));
  a.join();
  b.join();

  // Every admitted request completed bit-identically; admitted + shed
  // accounts for every submission, per tenant.
  const std::vector<TenantCounters> rows = server.tenant_stats();
  ASSERT_EQ(rows.size(), 2u);
  std::uint64_t admitted = 0, quota_shed = 0;
  for (const TenantCounters& t : rows) {
    EXPECT_EQ(t.admitted + t.shed, static_cast<std::uint64_t>(kPerTenant)) << t.name;
    admitted += t.admitted;
    quota_shed += t.shed;
  }
  EXPECT_EQ(static_cast<int>(admitted), ok_alpha.load() + ok_beta.load());
  EXPECT_EQ(static_cast<int>(quota_shed), shed.load());
  EXPECT_EQ(server.counters().value("requests.completed"), admitted);
  EXPECT_EQ(server.counters().value("requests.failed"), 0u);
  server.shutdown();
}

TEST_F(BatchedServerTest, DrainCompletesEveryQueuedBatchMember) {
  ServerOptions sopt = batched_server(2, 8);
  sopt.start_paused = true;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(server.submit(queries_));
  // shutdown() resumes a paused server; the backlog drains through the
  // batcher (stopping workers flush immediately instead of waiting out
  // the batch deadline).
  const DrainReport drain = server.shutdown();
  EXPECT_EQ(drain.abandoned, 0u);
  std::size_t answered = 0;
  for (std::future<ServeResult>& f : futures) {
    ServeResult res = f.get();
    EXPECT_EQ(res.report.predictions, reference_);
    ++answered;
  }
  EXPECT_EQ(answered, futures.size());
}

}  // namespace
}  // namespace hrf::serve
