// Batching chaos gate (docs/serving.md, "Dynamic micro-batching"):
// 8 concurrent clients across mixed tenants hammer a micro-batching
// ForestServer while the freeze:batcher fault site repeatedly wedges
// formed batches at dispatch. The gate: no response is lost or
// duplicated (every submission resolves exactly once, with the
// bit-exact oracle predictions when it succeeds), per-tenant QoS
// counters balance (admitted = completed + shed, per tenant), and zero
// deadline-SLO violations are attributable to batch waiting — the
// deadlines are generous multiples of the batch wait budget, so any
// shed/expiry here would mean the batcher held requests past its
// contract. Labeled "chaos" (ctest -L chaos; also run under TSan by
// tools/check.sh --batch-chaos) — wall-clock heavy, so not tier1.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf::serve {
namespace {

TEST(BatchChaos, NoLostOrDuplicatedResponsesAndQuotasBalanceUnderFreeze) {
  FaultInjector::global().disarm_all();

  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 8;
  spec.num_features = 9;
  spec.seed = 77;
  const Forest forest = make_random_forest(spec);
  const Dataset queries = make_random_queries(8, 9, 21);
  const std::vector<std::uint8_t> reference =
      forest.classify_batch(queries.features(), queries.num_samples());

  ClassifierOptions copt;
  copt.backend = Backend::GpuSim;
  copt.variant = Variant::Hybrid;
  copt.layout.subtree_depth = 4;
  copt.gpu.num_sms = 4;

  ServerOptions sopt;
  sopt.num_workers = 2;
  // Tight queue (alpha reserves 4 slots, beta 2, no spare) so the 5+3
  // client mix actually trips quota shedding while batches form.
  sopt.queue_capacity = 6;
  sopt.batching.max_requests = 8;
  sopt.batching.max_wait_seconds = 200e-6;
  sopt.quotas.tenants = {{"alpha", 2.0}, {"beta", 1.0}};
  // Freezes stall a batch ~10ms; the 5s deadline is ~25000x the batch
  // wait budget, so any deadline shed would be the batcher's fault.
  sopt.default_deadline_seconds = 5.0;
  sopt.inject_freeze_seconds = 0.01;
  ForestServer server(forest, copt, sopt);

  FaultInjector::global().arm("freeze:batcher", 40);

  constexpr int kClients = 8;
  constexpr int kPerClient = 30;
  std::mutex mu;
  std::map<std::string, std::uint64_t> client_ok, client_quota_shed;
  std::atomic<std::uint64_t> other_failures{0}, wrong{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    // Mixed tenants: 5 alpha clients, 3 beta clients.
    const std::string tenant = c < 5 ? "alpha" : "beta";
    clients.emplace_back([&, tenant] {
      std::uint64_t ok = 0, shed = 0;
      for (int i = 0; i < kPerClient; ++i) {
        try {
          ServeResult res = server.submit(queries, 0.0, tenant).get();
          if (res.report.predictions == reference) {
            ++ok;
          } else {
            wrong.fetch_add(1);
          }
        } catch (const QuotaError&) {
          ++shed;
        } catch (const Error&) {
          other_failures.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      client_ok[tenant] += ok;
      client_quota_shed[tenant] += shed;
    });
  }
  for (std::thread& t : clients) t.join();

  // Every response carried the oracle predictions — a mis-sliced or
  // cross-wired demultiplex under the freeze storm would land here.
  EXPECT_EQ(wrong.load(), 0u);
  // Nothing but quota shedding may fail: zero deadline-SLO violations
  // attributable to batch waiting.
  EXPECT_EQ(other_failures.load(), 0u);
  EXPECT_EQ(server.counters().value("requests.shed_deadline"), 0u);
  EXPECT_EQ(server.counters().value("requests.deadline_expired"), 0u);

  // No lost or duplicated responses: per tenant, every submission
  // resolved exactly once, and the server-side admission counters agree
  // with what the clients observed (admitted = completed + shed).
  std::uint64_t total_ok = 0;
  const std::vector<TenantCounters> rows = server.tenant_stats();
  ASSERT_EQ(rows.size(), 2u);
  for (const TenantCounters& t : rows) {
    const std::uint64_t submissions = t.name == "alpha" ? 5u * kPerClient : 3u * kPerClient;
    EXPECT_EQ(client_ok[t.name] + client_quota_shed[t.name], submissions) << t.name;
    EXPECT_EQ(t.admitted, client_ok[t.name]) << t.name;
    EXPECT_EQ(t.shed, client_quota_shed[t.name]) << t.name;
    total_ok += client_ok[t.name];
  }
  EXPECT_EQ(server.counters().value("requests.completed"), total_ok);
  EXPECT_EQ(server.counters().value("requests.failed"), 0u);

  // The freeze site actually fired into formed batches.
  EXPECT_GT(FaultInjector::global().fired("freeze:batcher"), 0u);
  EXPECT_GT(server.counters().value("batch.formed"), 0u);

  const DrainReport drain = server.shutdown();
  EXPECT_EQ(drain.abandoned, 0u);
  EXPECT_TRUE(server.healthy());
  FaultInjector::global().disarm_all();
}

}  // namespace
}  // namespace hrf::serve
