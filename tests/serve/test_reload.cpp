// Hot-reload state-machine coverage (docs/model-lifecycle.md): promote
// with canary traffic, every rejection and rollback trigger (bad CRC,
// shadow mismatch, canary starvation, post-promotion error spike, torn
// store manifest), and an 8-client reload-under-load stress test that
// must show zero client-visible failures and bit-identical predictions
// across swaps. The whole file also runs under ThreadSanitizer via
// tools/check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "layout/layout_io.hpp"
#include "serve/model_store.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf::serve {
namespace {

namespace fs = std::filesystem;

Forest make_forest(std::uint64_t seed) {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 8;
  spec.num_features = 7;
  spec.seed = seed;
  return make_random_forest(spec);
}

HierarchicalForest hier_layout(const Forest& forest) {
  HierConfig cfg;
  cfg.subtree_depth = 4;
  return HierarchicalForest::build(forest, cfg);
}

ClassifierOptions gpu_hybrid_options() {
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.variant = Variant::Hybrid;
  opt.layout.subtree_depth = 4;
  opt.gpu = gpusim::DeviceConfig::titan_xp();
  opt.gpu.num_sms = 4;
  // Failures must reach the server (retry / breaker / health counters),
  // so the in-classifier fallback chain stays off.
  opt.fallback.enabled = false;
  return opt;
}

ServerOptions fast_server(std::size_t workers = 2) {
  ServerOptions s;
  s.num_workers = workers;
  s.queue_capacity = 64;
  s.retry.max_retries = 0;
  s.retry.backoff_base_seconds = 1e-5;
  s.breaker.failure_threshold = 1000;  // effectively off unless a test lowers it
  return s;
}

/// Background client pool: hammers the server until halt(), tallying
/// correctness against a fixed reference (the lifecycle contract is that
/// good reloads are bit-identical, so one reference validates all).
class Traffic {
 public:
  void start(ForestServer& server, const Dataset& queries,
             const std::vector<std::uint8_t>& reference, int clients) {
    for (int c = 0; c < clients; ++c) {
      threads_.emplace_back([this, &server, &queries, &reference] {
        while (!stop_.load(std::memory_order_acquire)) {
          try {
            const ServeResult res = server.submit(queries).get();
            ok_.fetch_add(1, std::memory_order_relaxed);
            if (res.report.predictions != reference) {
              wrong_.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const Error&) {
            failed_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  void halt() {
    stop_.store(true, std::memory_order_release);
    for (std::thread& t : threads_) t.join();
    threads_.clear();
  }
  ~Traffic() { halt(); }

  std::uint64_t ok() const { return ok_.load(std::memory_order_relaxed); }
  std::uint64_t wrong() const { return wrong_.load(std::memory_order_relaxed); }
  std::uint64_t failed() const { return failed_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> ok_{0}, wrong_{0}, failed_{0};
  std::vector<std::thread> threads_;
};

class ModelReloadTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::global().disarm_all();
    dir_ = testing::TempDir() + "/hrf_reload_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    store_.emplace(ModelStore::open(dir_));
    store_->publish(forest_, hier_layout(forest_), "gen1");
  }
  void TearDown() override {
    FaultInjector::global().disarm_all();
    store_.reset();
    fs::remove_all(dir_);
  }

  /// Reload options tuned for test runtime: no canary / no watch unless a
  /// test opts in.
  ReloadOptions quick_opts() const {
    ReloadOptions r;
    r.shadow_queries = 64;
    r.canary_success_requests = 0;
    r.post_promotion_watch_requests = 0;
    return r;
  }

  /// Publishes a generation whose layout was compiled from a *different*
  /// forest: structurally valid, behaviorally wrong — exactly what shadow
  /// validation exists to catch.
  std::uint64_t publish_behaviorally_wrong() {
    const std::string model_path = dir_ + "/wrong_model.hrff";
    const std::string blob_path = dir_ + "/wrong_layout.hrfl";
    forest_.save(model_path);
    save_hierarchical(hier_layout(make_forest(909)), blob_path);
    return store_->publish_files(model_path, blob_path, "behaviorally wrong");
  }

  void corrupt_generation_blob(std::uint64_t id) {
    char gen[32];
    std::snprintf(gen, sizeof gen, "gen-%06llu", static_cast<unsigned long long>(id));
    const std::string name = dir_ + "/" + gen + "/layout.hrfl";
    std::fstream f(name, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << name;
    f.seekg(64);
    char byte = 0;
    f.read(&byte, 1);
    byte ^= '\x5A';
    f.seekp(64);
    f.write(&byte, 1);
  }

  std::string dir_;
  Forest forest_ = make_forest(33);
  std::optional<ModelStore> store_;
  Dataset queries_ = make_random_queries(64, 7, 5);
  std::vector<std::uint8_t> reference_ =
      forest_.classify_batch(queries_.features(), queries_.num_samples());
};

TEST_F(ModelReloadTest, ServesStoreGenerationBitIdentically) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server());
  EXPECT_EQ(server.generation(), 1u);
  EXPECT_EQ(server.stats().model_generation, 1u);
  const ServeResult res = server.submit(queries_).get();
  EXPECT_EQ(res.report.predictions, reference_);
}

TEST_F(ModelReloadTest, ConstructionFromEmptyStoreThrows) {
  const std::string empty = dir_ + "_empty";
  ModelStore store = ModelStore::open(empty);
  EXPECT_THROW(ForestServer(store, gpu_hybrid_options(), fast_server()), ConfigError);
  fs::remove_all(empty);
}

TEST_F(ModelReloadTest, PromotesImmediatelyWithoutCanary) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server());
  store_->publish(forest_, hier_layout(forest_), "gen2");
  const ReloadReport rep = server.reload_latest(*store_, quick_opts());
  EXPECT_EQ(rep.outcome, ReloadOutcome::Promoted);
  EXPECT_EQ(rep.from_generation, 1u);
  EXPECT_EQ(rep.to_generation, 2u);
  EXPECT_EQ(server.generation(), 2u);
  // Same forest republished: the swap must be invisible in predictions.
  EXPECT_EQ(server.submit(queries_).get().report.predictions, reference_);
  EXPECT_EQ(server.stats().reloads_promoted, 1u);
}

TEST_F(ModelReloadTest, ReloadLatestIsNoOpWhenCurrent) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server());
  const ReloadReport rep = server.reload_latest(*store_, quick_opts());
  EXPECT_EQ(rep.outcome, ReloadOutcome::NoOp);
  EXPECT_TRUE(server.reload_history().empty());  // polling no-ops are not attempts
}

TEST_F(ModelReloadTest, CanaryPromotesUnderLiveTraffic) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server());
  Traffic traffic;
  traffic.start(server, queries_, reference_, 4);

  store_->publish(forest_, hier_layout(forest_), "gen2");
  ReloadOptions opts = quick_opts();
  opts.canary_success_requests = 3;
  opts.canary_timeout_seconds = 10.0;
  const ReloadReport rep = server.reload(*store_, 2, opts);
  traffic.halt();

  EXPECT_EQ(rep.outcome, ReloadOutcome::Promoted);
  EXPECT_EQ(server.generation(), 2u);
  EXPECT_EQ(traffic.wrong(), 0u);
  EXPECT_EQ(traffic.failed(), 0u);
  EXPECT_GT(traffic.ok(), 0u);
}

TEST_F(ModelReloadTest, CanaryWithoutTrafficRollsBack) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server());
  store_->publish(forest_, hier_layout(forest_), "gen2");
  ReloadOptions opts = quick_opts();
  opts.canary_success_requests = 2;
  opts.canary_timeout_seconds = 0.05;  // no traffic is coming
  const ReloadReport rep = server.reload(*store_, 2, opts);
  EXPECT_EQ(rep.outcome, ReloadOutcome::RolledBackCanary);
  EXPECT_EQ(server.generation(), 1u);
  EXPECT_EQ(server.stats().reloads_rolled_back, 1u);
  // The rolled-back server still serves the old model correctly.
  EXPECT_EQ(server.submit(queries_).get().report.predictions, reference_);
}

TEST_F(ModelReloadTest, CorruptBlobIsRejectedAtLoad) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server());
  const std::uint64_t id = store_->publish(forest_, hier_layout(forest_), "gen2");
  corrupt_generation_blob(id);
  const ReloadReport rep = server.reload(*store_, id, quick_opts());
  EXPECT_EQ(rep.outcome, ReloadOutcome::RejectedLoad);
  EXPECT_NE(rep.reason.find("checksum mismatch"), std::string::npos) << rep.reason;
  EXPECT_EQ(server.generation(), 1u);
  EXPECT_EQ(server.stats().reloads_rejected, 1u);
  EXPECT_EQ(server.submit(queries_).get().report.predictions, reference_);
}

TEST_F(ModelReloadTest, ShadowMismatchIsRejected) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server());
  const std::uint64_t id = publish_behaviorally_wrong();
  const ReloadReport rep = server.reload(*store_, id, quick_opts());
  EXPECT_EQ(rep.outcome, ReloadOutcome::RejectedShadow);
  EXPECT_GT(rep.shadow_mismatches, 0u);
  EXPECT_GT(rep.shadow_queries, 0u);
  EXPECT_EQ(server.generation(), 1u);
  EXPECT_EQ(server.submit(queries_).get().report.predictions, reference_);
}

TEST_F(ModelReloadTest, PostPromotionErrorSpikeRollsBackAllWorkers) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server());
  Traffic traffic;
  traffic.start(server, queries_, reference_, 4);

  store_->publish(forest_, hier_layout(forest_), "gen2");
  // Every primary attempt fails from here on; clients still succeed via
  // the CPU fallback, but the health counters see the error spike. Shadow
  // validation would also trip over the persistent fault, so it is off —
  // this test targets the post-promotion watch in isolation.
  FaultInjector::global().arm("resource:gpu", -1);
  ReloadOptions opts = quick_opts();
  opts.shadow_validation = false;
  opts.post_promotion_watch_requests = 200;
  opts.post_promotion_error_threshold = 3;
  opts.post_promotion_timeout_seconds = 10.0;
  const ReloadReport rep = server.reload(*store_, 2, opts);
  FaultInjector::global().disarm_all();
  traffic.halt();

  EXPECT_EQ(rep.outcome, ReloadOutcome::RolledBackPostPromotion);
  EXPECT_EQ(server.generation(), 1u);
  EXPECT_EQ(server.stats().reloads_rolled_back, 1u);
  // The spike was never client-visible: every request got served (by the
  // fallback replica) with correct predictions.
  EXPECT_EQ(traffic.wrong(), 0u);
  EXPECT_EQ(traffic.failed(), 0u);
}

TEST_F(ModelReloadTest, TornStoreManifestDoesNotStopReloads) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server());
  store_->publish(forest_, hier_layout(forest_), "gen2");
  {
    std::ofstream f(dir_ + "/MANIFEST.json", std::ios::trunc);
    f << "{\"schema\": 1, \"curr";  // torn mid-write
  }
  // current() falls back to scanning for the newest complete generation.
  const ReloadReport rep = server.reload_latest(*store_, quick_opts());
  EXPECT_EQ(rep.outcome, ReloadOutcome::Promoted);
  EXPECT_EQ(server.generation(), 2u);
}

TEST_F(ModelReloadTest, ReloadHistoryRecordsEveryAttempt) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server());
  store_->publish(forest_, hier_layout(forest_), "gen2");
  server.reload(*store_, 2, quick_opts());
  const std::uint64_t bad = publish_behaviorally_wrong();
  server.reload(*store_, bad, quick_opts());

  const std::vector<ReloadReport> history = server.reload_history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].outcome, ReloadOutcome::Promoted);
  EXPECT_EQ(history[1].outcome, ReloadOutcome::RejectedShadow);
  EXPECT_FALSE(history[0].phases.empty());
  EXPECT_FALSE(history[1].to_string().empty());
  EXPECT_GT(server.latency().reload.total, 0u);
}

// The headline guarantee: 8 persistent clients, repeated good-swap /
// bad-reject cycles, zero client-visible failures, bit-identical
// predictions throughout. TSan-clean via tools/check.sh.
TEST_F(ModelReloadTest, StressReloadUnderLoadZeroClientImpact) {
  ForestServer server(*store_, gpu_hybrid_options(), fast_server(3));
  Traffic traffic;
  traffic.start(server, queries_, reference_, 8);

  constexpr int kCycles = 3;
  std::uint64_t expected_gen = 1;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    // Good publish: same forest recompiled — must promote through a canary.
    const std::uint64_t good = store_->publish(forest_, hier_layout(forest_), "good");
    ReloadOptions opts = quick_opts();
    opts.canary_success_requests = 2;
    opts.canary_timeout_seconds = 10.0;
    const ReloadReport promoted = server.reload(*store_, good, opts);
    ASSERT_EQ(promoted.outcome, ReloadOutcome::Promoted) << promoted.to_string();
    expected_gen = good;

    // Bad publish: behaviorally wrong — must be rejected by shadow.
    const std::uint64_t bad = publish_behaviorally_wrong();
    const ReloadReport rejected = server.reload(*store_, bad, quick_opts());
    ASSERT_EQ(rejected.outcome, ReloadOutcome::RejectedShadow) << rejected.to_string();
    ASSERT_EQ(server.generation(), expected_gen);
  }
  traffic.halt();

  EXPECT_GT(traffic.ok(), 0u);
  EXPECT_EQ(traffic.wrong(), 0u);   // bit-identical across every swap
  EXPECT_EQ(traffic.failed(), 0u);  // zero client-visible failures
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.reloads_promoted, static_cast<std::uint64_t>(kCycles));
  EXPECT_EQ(stats.reloads_rejected, static_cast<std::uint64_t>(kCycles));
  EXPECT_TRUE(server.healthy());
}

}  // namespace
}  // namespace hrf::serve
