// Versioned model store coverage (docs/model-lifecycle.md): publish /
// load round trips, checksummed generation manifests, torn-write and
// crash recovery (newest complete generation wins, damage quarantined
// with a reason, never silently deleted), and the crash:publish /
// crash:manifest fault sites via gtest death tests.

#include "serve/model_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "forest/random_forest_gen.hpp"
#include "layout/layout_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf::serve {
namespace {

namespace fs = std::filesystem;

Forest test_forest(std::uint64_t seed = 33) {
  RandomForestSpec spec;
  spec.num_trees = 5;
  spec.max_depth = 7;
  spec.num_features = 7;
  spec.seed = seed;
  return make_random_forest(spec);
}

HierarchicalForest hier_layout(const Forest& forest) {
  HierConfig cfg;
  cfg.subtree_depth = 4;
  return HierarchicalForest::build(forest, cfg);
}

void corrupt_file(const std::string& path, std::size_t offset = 64) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte ^= '\x5A';  // guaranteed different from the original
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

void overwrite_text(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::trunc);
  f << text;
}

class ModelStoreTest : public testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::global().disarm_all();
    dir_ = testing::TempDir() + "/hrf_store_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::global().disarm_all();
    fs::remove_all(dir_);
  }

  std::string dir_;
  Forest forest_ = test_forest();
};

TEST_F(ModelStoreTest, EmptyStoreHasNoCurrentGeneration) {
  ModelStore store = ModelStore::open(dir_);
  EXPECT_FALSE(store.current().has_value());
  EXPECT_TRUE(store.generations().empty());
  EXPECT_TRUE(store.report().quarantined.empty());
}

TEST_F(ModelStoreTest, PublishCsrRoundTrips) {
  ModelStore store = ModelStore::open(dir_);
  const std::uint64_t id = store.publish(forest_, CsrForest::build(forest_), "first");
  EXPECT_EQ(id, 1u);
  ASSERT_TRUE(store.current().has_value());
  EXPECT_EQ(*store.current(), 1u);

  const Generation gen = store.info(1);
  EXPECT_EQ(gen.layout_kind, "csr");
  EXPECT_EQ(gen.note, "first");
  EXPECT_EQ(gen.files.size(), 2u);  // forest.hrff + layout.hrfl
  EXPECT_GT(gen.total_bytes(), 0u);

  const LoadedModel m = store.load(1);
  EXPECT_EQ(m.generation, 1u);
  EXPECT_EQ(m.layout_kind, "csr");
  ASSERT_TRUE(m.csr.has_value());
  EXPECT_FALSE(m.hier.has_value());
  EXPECT_EQ(m.forest.num_features(), forest_.num_features());
}

TEST_F(ModelStoreTest, PublishHierarchicalRoundTrips) {
  ModelStore store = ModelStore::open(dir_);
  store.publish(forest_, hier_layout(forest_), "hier");
  const LoadedModel m = store.load(1);
  EXPECT_EQ(m.layout_kind, "hierarchical");
  ASSERT_TRUE(m.hier.has_value());
  EXPECT_FALSE(m.csr.has_value());
}

TEST_F(ModelStoreTest, PublishFilesCopiesArtifactsByteForByte) {
  ModelStore store = ModelStore::open(dir_);
  const std::string model_path = dir_ + "/external_model.hrff";
  const std::string blob_path = dir_ + "/external_layout.hrfl";
  forest_.save(model_path);
  save_hierarchical(hier_layout(forest_), blob_path);

  const std::uint64_t id = store.publish_files(model_path, blob_path, "copied");
  const LoadedModel m = store.load(id);
  EXPECT_EQ(m.layout_kind, "hierarchical");
  ASSERT_TRUE(m.hier.has_value());
}

TEST_F(ModelStoreTest, GenerationIdsAreMonotonic) {
  ModelStore store = ModelStore::open(dir_);
  EXPECT_EQ(store.publish(forest_, CsrForest::build(forest_)), 1u);
  EXPECT_EQ(store.publish(forest_, CsrForest::build(forest_)), 2u);
  EXPECT_EQ(store.publish(forest_, hier_layout(forest_)), 3u);
  EXPECT_EQ(*store.current(), 3u);
  EXPECT_EQ(store.generations().size(), 3u);
}

TEST_F(ModelStoreTest, TornManifestIsRebuiltFromScan) {
  {
    ModelStore store = ModelStore::open(dir_);
    store.publish(forest_, CsrForest::build(forest_));
    store.publish(forest_, CsrForest::build(forest_));
  }
  overwrite_text(dir_ + "/MANIFEST.json", "{\"schema\": 1, \"curr");  // torn mid-write

  ModelStore reopened = ModelStore::open(dir_);
  EXPECT_TRUE(reopened.report().manifest_recovered);
  ASSERT_TRUE(reopened.current().has_value());
  EXPECT_EQ(*reopened.current(), 2u);
  EXPECT_TRUE(reopened.report().quarantined.empty());  // generations intact
}

TEST_F(ModelStoreTest, StaleManifestNewestCompleteGenerationWins) {
  {
    ModelStore store = ModelStore::open(dir_);
    store.publish(forest_, CsrForest::build(forest_));
    store.publish(forest_, CsrForest::build(forest_));
  }
  // Publisher died between gen.json and the MANIFEST update (the
  // crash:manifest site): the pointer still names generation 1.
  overwrite_text(dir_ + "/MANIFEST.json", "{\"schema\": 1, \"current\": 1}");

  ModelStore reopened = ModelStore::open(dir_);
  EXPECT_TRUE(reopened.report().manifest_recovered);
  EXPECT_EQ(*reopened.current(), 2u);
}

TEST_F(ModelStoreTest, PartialGenerationIsQuarantinedNotDeleted) {
  {
    ModelStore store = ModelStore::open(dir_);
    store.publish(forest_, CsrForest::build(forest_));
    store.publish(forest_, CsrForest::build(forest_));
  }
  // The crash:publish shape: blobs on disk, no gen.json yet.
  fs::remove(dir_ + "/gen-000002/gen.json");

  ModelStore reopened = ModelStore::open(dir_);
  EXPECT_EQ(*reopened.current(), 1u);
  ASSERT_EQ(reopened.report().quarantined.size(), 1u);
  EXPECT_NE(reopened.report().quarantined[0].reason.find("manifest missing"), std::string::npos);
  // Renamed aside with the data intact — recoverable forensics, not rm -rf.
  EXPECT_TRUE(fs::exists(dir_ + "/gen-000002.quarantined/forest.hrff"));
  EXPECT_FALSE(fs::exists(dir_ + "/gen-000002"));
}

TEST_F(ModelStoreTest, CorruptedBlobQuarantinedWithChecksumReason) {
  {
    ModelStore store = ModelStore::open(dir_);
    store.publish(forest_, CsrForest::build(forest_));
    store.publish(forest_, CsrForest::build(forest_));
  }
  corrupt_file(dir_ + "/gen-000002/layout.hrfl");

  ModelStore reopened = ModelStore::open(dir_);
  EXPECT_EQ(*reopened.current(), 1u);
  ASSERT_EQ(reopened.report().quarantined.size(), 1u);
  EXPECT_NE(reopened.report().quarantined[0].reason.find("checksum mismatch"),
            std::string::npos);
}

TEST_F(ModelStoreTest, LoadDetectsDamageAfterOpen) {
  ModelStore store = ModelStore::open(dir_);
  store.publish(forest_, CsrForest::build(forest_));
  corrupt_file(dir_ + "/gen-000001/layout.hrfl");  // bit rot after recovery ran
  EXPECT_THROW(store.load(1), FormatError);
}

TEST_F(ModelStoreTest, CurrentQuarantinesDamageDetectedAfterOpen) {
  ModelStore store = ModelStore::open(dir_);
  store.publish(forest_, CsrForest::build(forest_));
  store.publish(forest_, CsrForest::build(forest_));
  corrupt_file(dir_ + "/gen-000002/layout.hrfl");

  // The polling path re-verifies the pointed-at generation on every read:
  // rot that lands after open() is quarantined on the spot (renamed
  // aside, recorded in read_quarantined()) and the poll falls back to the
  // newest complete generation instead of handing the damage to a reload
  // that would re-validate, reject, and poll into the same rot forever.
  EXPECT_EQ(*store.current(), 1u);
  EXPECT_FALSE(fs::exists(dir_ + "/gen-000002"));
  EXPECT_TRUE(fs::exists(dir_ + "/gen-000002.quarantined"));
  ASSERT_EQ(store.read_quarantined().size(), 1u);
  EXPECT_NE(store.read_quarantined()[0].reason.find("checksum mismatch"),
            std::string::npos);

  // The manifest was repointed at the survivor, so the next poll takes
  // the fast path and nothing is quarantined twice.
  EXPECT_EQ(*store.current(), 1u);
  EXPECT_EQ(store.read_quarantined().size(), 1u);
}

TEST_F(ModelStoreTest, QuarantinedIdIsNeverReused) {
  {
    ModelStore store = ModelStore::open(dir_);
    store.publish(forest_, CsrForest::build(forest_));
    store.publish(forest_, CsrForest::build(forest_));
  }
  fs::remove(dir_ + "/gen-000002/gen.json");
  ModelStore reopened = ModelStore::open(dir_);  // quarantines generation 2
  EXPECT_EQ(reopened.publish(forest_, CsrForest::build(forest_)), 3u);
  EXPECT_EQ(*reopened.current(), 3u);
}

TEST_F(ModelStoreTest, InfoThrowsConfigErrorForUnknownGeneration) {
  ModelStore store = ModelStore::open(dir_);
  EXPECT_THROW(store.info(7), ConfigError);
  EXPECT_THROW(store.load(7), ConfigError);
}

using ModelStoreDeathTest = ModelStoreTest;

TEST_F(ModelStoreDeathTest, CrashBeforeGenManifestLeavesRecoverableStore) {
  ModelStore store = ModelStore::open(dir_);
  store.publish(forest_, CsrForest::build(forest_), "survivor");
  EXPECT_EXIT(
      {
        FaultInjector::global().arm("crash:publish", 1);
        store.publish(forest_, CsrForest::build(forest_), "doomed");
      },
      testing::ExitedWithCode(137), "");

  ModelStore reopened = ModelStore::open(dir_);
  EXPECT_EQ(*reopened.current(), 1u);
  ASSERT_EQ(reopened.report().quarantined.size(), 1u);
  EXPECT_EQ(reopened.load(1).generation, 1u);  // survivor still fully loadable
}

TEST_F(ModelStoreDeathTest, CrashBeforeStoreManifestIsReconciledForward) {
  ModelStore store = ModelStore::open(dir_);
  store.publish(forest_, CsrForest::build(forest_), "old");
  EXPECT_EXIT(
      {
        FaultInjector::global().arm("crash:manifest", 1);
        store.publish(forest_, CsrForest::build(forest_), "new");
      },
      testing::ExitedWithCode(137), "");

  // Generation 2 committed (gen.json landed) before the death, so the
  // newest-complete-wins rule rolls the pointer forward, not back.
  ModelStore reopened = ModelStore::open(dir_);
  EXPECT_TRUE(reopened.report().manifest_recovered);
  EXPECT_EQ(*reopened.current(), 2u);
  EXPECT_TRUE(reopened.report().quarantined.empty());
}

}  // namespace
}  // namespace hrf::serve
