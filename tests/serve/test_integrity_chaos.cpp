// Integrity chaos gate (docs/robustness.md, "Silent-corruption defense"):
// 8 concurrent clients hammer a ForestServer while the corrupt:replica
// site repeatedly poisons worker replicas and hang:worker wedges
// dispatches past the watchdog timeout. The gate: every submission
// resolves exactly once with the bit-exact oracle predictions (audits
// sample every request here, so a corrupted replica can never leak a
// wrong answer to a client), success is 100% — comfortably above the
// 99% SLO — the scrubber/audit pipeline actually repaired replicas, the
// watchdog actually replaced workers, and the drain abandons nothing.
// Labeled "chaos" (ctest -L chaos; also run under TSan by tools/check.sh
// --integrity-chaos) — wall-clock heavy, so not tier1.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf::serve {
namespace {

TEST(IntegrityChaos, SelfHealsUnderCorruptionAndHangsWithoutWrongOrLostAnswers) {
  FaultInjector::global().disarm_all();

  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 8;
  spec.num_features = 9;
  spec.seed = 78;
  const Forest forest = make_random_forest(spec);
  const Dataset queries = make_random_queries(8, 9, 22);
  const std::vector<std::uint8_t> reference =
      forest.classify_batch(queries.features(), queries.num_samples());

  ClassifierOptions copt;
  copt.backend = Backend::GpuSim;
  copt.variant = Variant::Hybrid;
  copt.layout.subtree_depth = 4;
  copt.gpu.num_sms = 4;

  ServerOptions sopt;
  sopt.num_workers = 4;
  sopt.queue_capacity = 16;
  sopt.integrity.scrub_interval_seconds = 0.01;
  sopt.integrity.audit_sample_every = 1;  // every answer oracle-checked
  sopt.integrity.audit_mismatch_threshold = 2;
  sopt.integrity.hang_timeout_seconds = 0.05;
  sopt.integrity.inject_hang_seconds = 0.2;
  ForestServer server(forest, copt, sopt);

  // Poison replicas round-robin (consumed by the monitor poll) while
  // hangs wedge dispatches; both storms overlap the client load.
  FaultInjector::global().arm("corrupt:replica", 6);
  FaultInjector::global().arm("hang:worker", 3);

  constexpr int kClients = 8;
  constexpr int kPerClient = 30;
  std::atomic<std::uint64_t> ok{0}, wrong{0}, failed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        try {
          const ServeResult res = server.submit(queries).get();
          if (res.report.predictions == reference) {
            ok.fetch_add(1);
          } else {
            wrong.fetch_add(1);
          }
        } catch (const Error&) {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Audit authority: even mid-corruption, no client ever saw a wrong
  // prediction; nothing failed, nothing was lost or duplicated.
  constexpr std::uint64_t kTotal = std::uint64_t{kClients} * kPerClient;
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_EQ(ok.load(), kTotal);
  EXPECT_EQ(server.counters().value("requests.completed"), kTotal);
  EXPECT_EQ(server.counters().value("requests.failed"), 0u);

  // Both fault sites genuinely fired, and the defenses genuinely healed:
  // corrupted replicas were detected (by CRC scrub or audit streak) and
  // rebuilt; hung workers were rescued and replaced.
  EXPECT_GT(FaultInjector::global().fired("corrupt:replica"), 0u);
  EXPECT_GT(FaultInjector::global().fired("hang:worker"), 0u);
  const SelfHealStats heal = server.self_heal();
  EXPECT_GT(heal.scrub_passes, 0u);
  EXPECT_GT(heal.scrub_repairs, 0u);
  EXPECT_GT(heal.audit_sampled, 0u);
  EXPECT_GT(heal.watchdog_worker_restarts, 0u);

  const DrainReport drain = server.shutdown();
  EXPECT_EQ(drain.abandoned, 0u);
  EXPECT_TRUE(server.healthy());
  FaultInjector::global().disarm_all();
}

}  // namespace
}  // namespace hrf::serve
