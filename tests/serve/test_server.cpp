// ForestServer concurrency + robustness coverage: admission control,
// deadline shedding and time-boxing, retry, breaker trip/half-open/close,
// graceful drain — all driven deterministically by the global
// FaultInjector. The whole file also runs under ThreadSanitizer via
// tools/check.sh.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"
#include "obs/exporter.hpp"
#include "util/fault.hpp"

namespace hrf::serve {
namespace {

Forest small_forest() {
  RandomForestSpec spec;
  spec.num_trees = 6;
  spec.max_depth = 9;
  spec.num_features = 7;
  spec.seed = 33;
  return make_random_forest(spec);
}

ClassifierOptions gpu_hybrid_options() {
  ClassifierOptions opt;
  opt.backend = Backend::GpuSim;
  opt.variant = Variant::Hybrid;
  opt.layout.subtree_depth = 4;
  opt.gpu = gpusim::DeviceConfig::titan_xp();
  opt.gpu.num_sms = 4;
  // Failures must reach the server's retry + breaker, so the in-classifier
  // chain stays off here (its composition is covered separately below).
  opt.fallback.enabled = false;
  return opt;
}

ServerOptions fast_server(std::size_t workers = 2) {
  ServerOptions s;
  s.num_workers = workers;
  s.queue_capacity = 64;
  s.retry.max_retries = 0;
  s.retry.backoff_base_seconds = 1e-5;
  s.breaker.failure_threshold = 1000;  // effectively off unless a test lowers it
  return s;
}

class ForestServerTest : public testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().disarm_all(); }
  void TearDown() override { FaultInjector::global().disarm_all(); }

  Forest forest_ = small_forest();
  Dataset queries_ = make_random_queries(200, 7, 5);
  std::vector<std::uint8_t> reference_ =
      forest_.classify_batch(queries_.features(), queries_.num_samples());
};

TEST_F(ForestServerTest, ServesConcurrentClientsBitIdentically) {
  ForestServer server(forest_, gpu_hybrid_options(), fast_server(3));
  EXPECT_TRUE(server.ready());

  constexpr int kClients = 4;
  constexpr int kPerClient = 5;
  std::atomic<int> correct{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < kPerClient; ++r) {
        ServeResult res = server.submit(queries_).get();
        if (res.report.predictions == reference_ && !res.via_fallback) correct.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(correct.load(), kClients * kPerClient);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.fallback_served, 0u);

  const DrainReport drain = server.shutdown();
  EXPECT_EQ(drain.abandoned, 0u);
  EXPECT_FALSE(drain.deadline_hit);
  EXPECT_TRUE(server.healthy());
}

TEST_F(ForestServerTest, LatencyHistogramsTrackEveryCompletedRequest) {
  ForestServer server(forest_, gpu_hybrid_options(), fast_server(2));
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    ServeResult res = server.submit(queries_).get();
    EXPECT_GT(res.service_seconds, 0.0);
  }

  const LatencyStats lat = server.latency();
  EXPECT_EQ(lat.queue_wait.total, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(lat.execute.total, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(lat.end_to_end.total, static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(lat.execute.percentile_ns(50), 0.0);
  // End-to-end bounds execute: each sample is queue-wait + execute.
  EXPECT_GE(lat.end_to_end.max_ns, lat.execute.max_ns);
  EXPECT_GE(lat.end_to_end.percentile_ns(95), lat.execute.percentile_ns(50));

  const std::string md = lat.to_markdown();
  for (const char* stage : {"queue-wait", "execute", "end-to-end", "p95", "p99"}) {
    EXPECT_NE(md.find(stage), std::string::npos) << stage;
  }
  server.shutdown();
}

TEST_F(ForestServerTest, AdmissionControlRejectsWhenQueueFull) {
  ServerOptions sopt = fast_server(1);
  sopt.queue_capacity = 4;
  sopt.start_paused = true;  // stage a backlog deterministically
  ForestServer server(forest_, gpu_hybrid_options(), sopt);
  EXPECT_FALSE(server.ready());  // paused

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.submit(queries_));
  EXPECT_EQ(server.queue_depth(), 4u);
  EXPECT_THROW(server.submit(queries_), OverloadError);
  EXPECT_EQ(server.stats().rejected_overload, 1u);

  server.resume();
  EXPECT_TRUE(server.ready());
  for (auto& f : futures) EXPECT_EQ(f.get().report.predictions, reference_);
  EXPECT_EQ(server.stats().completed, 4u);
}

// Unbatched shedding semantics; order-robust (no assumption about which
// queue position dispatches first). The batched counterpart — an expired
// member shed at dispatch without poisoning batchmates — is
// BatchedServerTest.ExpiredMemberIsShedWithoutPoisoningBatchmates.
TEST_F(ForestServerTest, ExpiredQueuedRequestsAreShedBeforeDispatch) {
  ServerOptions sopt = fast_server(1);
  sopt.start_paused = true;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  std::future<ServeResult> doomed = server.submit(queries_, /*deadline_seconds=*/1e-4);
  std::future<ServeResult> fine = server.submit(queries_);  // no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // let the deadline pass
  server.resume();

  EXPECT_THROW(doomed.get(), DeadlineError);
  EXPECT_EQ(fine.get().report.predictions, reference_);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_deadline, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST_F(ForestServerTest, ExecutionIsTimeBoxedByChunkedCancellation) {
  ServerOptions sopt = fast_server(1);
  sopt.deadline_chunk_size = 1;  // poll the deadline after every query
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  // 4000 single-query simulated-GPU chunks cannot finish in 2 ms, so the
  // deadline expires mid-execution and the remaining work is abandoned.
  Dataset big = make_random_queries(4000, 7, 6);
  std::future<ServeResult> fut = server.submit(std::move(big), /*deadline_seconds=*/2e-3);
  EXPECT_THROW(fut.get(), DeadlineError);
  // On a loaded host the 2 ms can already be gone at dispatch, in which
  // case the request is shed from the queue instead of expiring
  // mid-execution; either way the deadline did the time-boxing.
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.deadline_expired + stats.shed_deadline, 1u);
}

TEST_F(ForestServerTest, TransientFaultIsRetriedOnThePrimary) {
  FaultInjector::global().arm("resource:gpu", 1);  // first attempt fails
  ServerOptions sopt = fast_server(1);
  sopt.retry.max_retries = 2;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  ServeResult res = server.submit(queries_).get();
  EXPECT_EQ(res.report.predictions, reference_);
  EXPECT_FALSE(res.via_fallback);  // recovered on the primary
  EXPECT_EQ(res.retries, 1);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.fallback_served, 0u);
  EXPECT_EQ(stats.breaker, CircuitState::Closed);
}

TEST_F(ForestServerTest, PersistentFaultTripsBreakerAndDegradesToFallback) {
  FaultInjector::global().arm("resource:gpu", -1);
  ServerOptions sopt = fast_server(1);
  sopt.breaker.failure_threshold = 3;
  sopt.breaker.open_seconds = 60.0;  // stays open for the whole test
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  for (int i = 0; i < 5; ++i) {
    ServeResult res = server.submit(queries_).get();
    EXPECT_EQ(res.report.predictions, reference_);  // degraded, never wrong
    EXPECT_TRUE(res.via_fallback);
    ASSERT_FALSE(res.report.degradations.empty());
    EXPECT_NE(res.report.degradations.back().find("cpu-native fallback"), std::string::npos);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.fallback_served, 5u);
  EXPECT_EQ(stats.breaker, CircuitState::Open);
  EXPECT_EQ(stats.breaker_trips, 1u);
  // Requests 4 and 5 skipped the primary entirely.
  EXPECT_EQ(stats.breaker_short_circuited, 2u);
}

TEST_F(ForestServerTest, BreakerHalfOpensOnProbeAndClosesOnRecovery) {
  FaultInjector::global().arm("resource:gpu", 1);  // one failure, then healthy
  ServerOptions sopt = fast_server(1);
  sopt.breaker.failure_threshold = 1;
  sopt.breaker.open_seconds = 0.02;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  ServeResult degraded = server.submit(queries_).get();
  EXPECT_TRUE(degraded.via_fallback);
  EXPECT_EQ(server.breaker_state(), CircuitState::Open);

  std::this_thread::sleep_for(std::chrono::milliseconds(40));  // cooldown elapses
  ServeResult probe = server.submit(queries_).get();
  EXPECT_FALSE(probe.via_fallback);  // the probe succeeded on the primary
  EXPECT_EQ(probe.report.predictions, reference_);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.breaker, CircuitState::Closed);
  EXPECT_EQ(stats.breaker_probes, 1u);
  EXPECT_EQ(stats.breaker_trips, 1u);
}

TEST_F(ForestServerTest, BreakerReopensWhenTheProbeFails) {
  FaultInjector::global().arm("resource:gpu", -1);
  ServerOptions sopt = fast_server(1);
  sopt.breaker.failure_threshold = 1;
  sopt.breaker.open_seconds = 0.02;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  EXPECT_TRUE(server.submit(queries_).get().via_fallback);  // trip 1
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ServeResult res = server.submit(queries_).get();  // probe fails -> trip 2
  EXPECT_TRUE(res.via_fallback);
  EXPECT_EQ(res.report.predictions, reference_);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.breaker, CircuitState::Open);
  EXPECT_EQ(stats.breaker_trips, 2u);
  EXPECT_EQ(stats.breaker_probes, 1u);
}

TEST_F(ForestServerTest, GracefulShutdownDrainsTheBacklog) {
  ServerOptions sopt = fast_server(2);
  sopt.start_paused = true;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(queries_));

  // shutdown() resumes a paused server so the backlog still drains.
  const DrainReport drain = server.shutdown(/*drain_deadline_seconds=*/30.0);
  EXPECT_EQ(drain.drained, 8u);
  EXPECT_EQ(drain.abandoned, 0u);
  EXPECT_FALSE(drain.deadline_hit);
  for (auto& f : futures) EXPECT_EQ(f.get().report.predictions, reference_);
  EXPECT_FALSE(server.ready());
}

TEST_F(ForestServerTest, DrainDeadlineAbandonsLeftoverRequests) {
  ServerOptions sopt = fast_server(1);
  sopt.start_paused = true;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server.submit(queries_));

  const DrainReport drain = server.shutdown(/*drain_deadline_seconds=*/0.0);
  EXPECT_EQ(drain.abandoned, 6u);
  EXPECT_TRUE(drain.deadline_hit);
  for (auto& f : futures) EXPECT_THROW(f.get(), ShutdownError);
  EXPECT_EQ(server.stats().abandoned, 6u);

  // Idempotent: a second shutdown returns the same report.
  const DrainReport again = server.shutdown();
  EXPECT_EQ(again.abandoned, 6u);
}

TEST_F(ForestServerTest, SubmissionsAfterShutdownAreRejected) {
  ForestServer server(forest_, gpu_hybrid_options(), fast_server(1));
  server.shutdown();
  EXPECT_THROW(server.submit(queries_), ShutdownError);
  EXPECT_EQ(server.stats().rejected_shutdown, 1u);
}

TEST_F(ForestServerTest, InvalidQueriesFailTheRequestNotTheServer) {
  ForestServer server(forest_, gpu_hybrid_options(), fast_server(1));
  Dataset wrong_shape = make_random_queries(10, 3, 5);  // model expects 7 features
  std::future<ServeResult> fut = server.submit(std::move(wrong_shape));
  EXPECT_THROW(fut.get(), ConfigError);
  // The worker survives the bad request and keeps serving.
  EXPECT_EQ(server.submit(queries_).get().report.predictions, reference_);
  EXPECT_TRUE(server.healthy());
}

TEST_F(ForestServerTest, InClassifierFallbackPolicyDegradationsPropagate) {
  FaultInjector::global().arm("resource:gpu", -1);
  ClassifierOptions copt = gpu_hybrid_options();
  copt.fallback.enabled = true;  // the classifier absorbs the fault itself
  ForestServer server(forest_, copt, fast_server(1));

  ServeResult res = server.submit(queries_).get();
  EXPECT_EQ(res.report.predictions, reference_);
  EXPECT_FALSE(res.via_fallback);  // the server-level breaker never engaged
  EXPECT_TRUE(res.report.degraded());  // but the policy's trail is visible
  EXPECT_EQ(server.stats().fallback_served, 0u);
}

// The acceptance scenario: 8 concurrent clients against a persistently
// failing GPU backend. Every request must either complete degraded
// (breaker -> CPU fallback, bit-identical predictions) or be rejected by
// admission control; no crashes, no hangs, clean drain.
TEST_F(ForestServerTest, ConcurrentClientsUnderPersistentFaultAllDegradeOrShed) {
  FaultInjector::global().arm("resource:gpu", -1);
  ServerOptions sopt = fast_server(4);
  sopt.queue_capacity = 8;  // small enough that overload is plausible
  sopt.retry.max_retries = 1;
  sopt.breaker.failure_threshold = 2;
  sopt.breaker.open_seconds = 0.005;  // exercises open/half-open churn too
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  constexpr int kClients = 8;
  constexpr int kPerClient = 8;
  std::atomic<int> ok{0}, overloaded{0}, wrong{0}, unexpected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < kPerClient; ++r) {
        try {
          ServeResult res = server.submit(queries_).get();
          ok.fetch_add(1);
          if (res.report.predictions != reference_) wrong.fetch_add(1);
        } catch (const OverloadError&) {
          overloaded.fetch_add(1);
        } catch (...) {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(ok.load() + overloaded.load(), kClients * kPerClient);
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_TRUE(server.healthy());

  const DrainReport drain = server.shutdown();
  EXPECT_EQ(drain.abandoned, 0u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(ok.load()));
  EXPECT_EQ(stats.fallback_served, stats.completed);  // the GPU never answered
  EXPECT_GE(stats.breaker_trips, 1u);
}


// --- Tracing + telemetry snapshot ----------------------------------------

const trace::SpanData* find_span(const trace::Trace& t, const std::string& prefix) {
  for (const trace::SpanData& s : t.spans) {
    if (s.name.rfind(prefix, 0) == 0) return &s;
  }
  return nullptr;
}

bool has_attr(const trace::SpanData& span, const std::string& key) {
  for (const auto& [k, v] : span.attributes) {
    if (k == key) return true;
  }
  return false;
}

TEST_F(ForestServerTest, FullSamplingTracesTheWholeRequestPath) {
  ServerOptions sopt = fast_server(1);
  sopt.trace_sampling = 1.0;
  sopt.default_deadline_seconds = 30.0;  // chunked path: per-chunk spans
  sopt.deadline_chunk_size = 64;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);
  for (int i = 0; i < 3; ++i) (void)server.submit(queries_).get();

  const auto traces = server.tracer().traces();
  ASSERT_EQ(traces.size(), 3u);
  for (const auto& t : traces) {
    const trace::SpanData& root = t->root();
    EXPECT_EQ(root.name, "request");
    EXPECT_TRUE(has_attr(root, "queries"));
    EXPECT_TRUE(has_attr(root, "outcome"));

    const trace::SpanData* queue = find_span(*t, "queue");
    ASSERT_NE(queue, nullptr);
    EXPECT_EQ(queue->parent_id, root.id);

    const trace::SpanData* exec = find_span(*t, "execute");
    ASSERT_NE(exec, nullptr);
    EXPECT_TRUE(has_attr(*exec, "worker"));
    EXPECT_TRUE(has_attr(*exec, "breaker"));

    const trace::SpanData* attempt = find_span(*t, "attempt-0");
    ASSERT_NE(attempt, nullptr);
    EXPECT_EQ(attempt->parent_id, exec->id);
    // GpuSim run: the attempt carries the device counters as attributes.
    EXPECT_TRUE(has_attr(*attempt, "gpu.branch_efficiency"));
    EXPECT_TRUE(has_attr(*attempt, "gpu.txn_per_request"));

    // 200 queries / 64-query chunks = 4 chunk spans under the attempt.
    const trace::SpanData* chunk = find_span(*t, "chunk-3");
    ASSERT_NE(chunk, nullptr);
    EXPECT_EQ(chunk->parent_id, attempt->id);
    EXPECT_TRUE(has_attr(*chunk, "gpu.branch_efficiency"));
  }
  server.shutdown();
}

TEST_F(ForestServerTest, ZeroSamplingKeepsSpansInactive) {
  ServerOptions sopt = fast_server(1);  // trace_sampling defaults to 0
  ForestServer server(forest_, gpu_hybrid_options(), sopt);
  for (int i = 0; i < 3; ++i) (void)server.submit(queries_).get();
  const trace::TracerSummary sum = server.tracer().summary();
  EXPECT_EQ(sum.started, 3u);
  EXPECT_EQ(sum.sampled, 0u);
  EXPECT_EQ(sum.retained, 0u);
  server.shutdown();
}

TEST_F(ForestServerTest, RejectedSubmissionsRecordTheOutcome) {
  ServerOptions sopt = fast_server(1);
  sopt.queue_capacity = 2;
  sopt.start_paused = true;
  sopt.trace_sampling = 1.0;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);
  auto f1 = server.submit(queries_);
  auto f2 = server.submit(queries_);
  EXPECT_THROW(server.submit(queries_), OverloadError);
  server.resume();
  (void)f1.get();
  (void)f2.get();
  bool saw_rejected = false;
  for (const auto& t : server.tracer().traces()) {
    for (const auto& [k, v] : t->root().attributes) {
      if (k == "outcome" && v == "rejected_overload") saw_rejected = true;
    }
  }
  EXPECT_TRUE(saw_rejected);
  server.shutdown();
}

TEST_F(ForestServerTest, MetricsSnapshotCarriesTheFullTelemetrySurface) {
  ServerOptions sopt = fast_server(2);
  sopt.trace_sampling = 1.0;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) (void)server.submit(queries_).get();

  const obs::MetricsSnapshot snap = server.metrics_snapshot();
  // Zero-fill contract: every documented counter is present even if unhit.
  for (const std::string& name : obs::counter_catalogue()) {
    EXPECT_TRUE(snap.counters.count(name)) << name;
  }
  EXPECT_EQ(snap.counters.at("requests.completed"), static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(snap.gauges.at("workers"), 2.0);
  ASSERT_EQ(snap.histograms.size(), 5u);  // queue_wait/execute/end_to_end/reload/batch_size
  EXPECT_EQ(snap.histograms[0].second.total, static_cast<std::uint64_t>(kRequests));

  ASSERT_EQ(snap.rollups.size(), 1u);
  EXPECT_EQ(snap.rollups[0].first.label(), "hybrid/gpu-sim/gen0");
  EXPECT_EQ(snap.rollups[0].second.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_GT(snap.rollups[0].second.branch_efficiency(), 0.0);
  EXPECT_GT(snap.rollups[0].second.txn_per_request(), 0.0);

  EXPECT_TRUE(snap.has_traces);
  EXPECT_EQ(snap.traces.completed, static_cast<std::uint64_t>(kRequests));

  // The snapshot renders and validates through both exporters.
  EXPECT_NO_THROW(obs::check_metrics_schema(
      obs::to_prometheus(snap), obs::snapshot_to_json(snap).dump(2)));
  server.shutdown();
}

TEST_F(ForestServerTest, ConcurrentTracedTrafficWithLiveExport) {
  // The TSan stress: 8 clients under full sampling while a reader thread
  // snapshots metrics and renders traces concurrently.
  ServerOptions sopt = fast_server(3);
  sopt.trace_sampling = 1.0;
  sopt.trace_capacity = 16;
  ForestServer server(forest_, gpu_hybrid_options(), sopt);

  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snap = server.metrics_snapshot();
      (void)obs::to_prometheus(snap);
      for (const auto& t : server.tracer().slowest(4)) (void)t->to_string();
    }
  });
  constexpr int kClients = 8;
  constexpr int kPerClient = 6;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < kPerClient; ++r) {
        if (server.submit(queries_).get().report.predictions == reference_) ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  exporter.join();

  EXPECT_EQ(ok.load(), kClients * kPerClient);
  const trace::TracerSummary sum = server.tracer().summary();
  EXPECT_EQ(sum.completed, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(sum.retained, 16u);
  server.shutdown();
}

// The chaos harness replays failure scenarios expecting identical retry
// timing run-to-run: the jittered exponential backoff must be a pure
// function of (policy, attempt, rng state), bit-for-bit reproducible on
// any platform.
TEST(RetryBackoff, SequenceIsDeterministicUnderAFixedSeed) {
  const RetryPolicy policy;  // base 1e-3, max 0.1, jitter 0.5
  Xoshiro256 a(2024), b(2024);
  std::vector<double> seq;
  for (int attempt = 0; attempt < 8; ++attempt) {
    seq.push_back(retry_backoff_seconds(policy, attempt, a));
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    // Bitwise equality, not near-equality: same seed, same stream.
    EXPECT_EQ(seq[static_cast<std::size_t>(attempt)], retry_backoff_seconds(policy, attempt, b));
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    // Every draw stays inside nominal * [1 - jitter, 1 + jitter].
    const double nominal =
        std::min(std::ldexp(policy.backoff_base_seconds, attempt), policy.backoff_max_seconds);
    EXPECT_GE(seq[static_cast<std::size_t>(attempt)], nominal * 0.5);
    EXPECT_LE(seq[static_cast<std::size_t>(attempt)], nominal * 1.5);
  }
  // Attempts 7+ are capped: nominal growth stops at backoff_max_seconds.
  EXPECT_LE(seq[7], policy.backoff_max_seconds * 1.5);
}

TEST(RetryBackoff, GoldenSequencePinsTheCrossPlatformBitStream) {
  // Literals generated once from Xoshiro256(7).uniform(-1, 1); ldexp and
  // IEEE multiply are exactly rounded, so any platform reproduces these
  // bits. Regenerate only if the backoff algorithm itself changes.
  RetryPolicy policy;
  policy.backoff_base_seconds = 1e-3;
  policy.backoff_max_seconds = 0.1;
  policy.jitter_fraction = 0.5;
  Xoshiro256 rng(7);
  std::vector<double> seq;
  for (int attempt = 0; attempt < 4; ++attempt) {
    seq.push_back(retry_backoff_seconds(policy, attempt, rng));
  }
  const std::vector<double> golden = {
      0x1.3ab952e8c38edp-10,  // 0.0012005764821796897
      0x1.984a387f9c39bp-10,  // 0.0015575024589475686
      0x1.5f2ce08ce27b6p-8,   // 0.0053585098475056794
      0x1.8442c92a1b234p-7,   // 0.01184878180011948
  };
  ASSERT_EQ(seq.size(), golden.size());
  for (std::size_t i = 0; i < seq.size(); ++i) EXPECT_EQ(seq[i], golden[i]);
}

}  // namespace
}  // namespace hrf::serve
