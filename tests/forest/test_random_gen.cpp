#include "forest/random_forest_gen.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/math.hpp"

namespace hrf {
namespace {

TEST(RandomForestGen, SpecValidation) {
  RandomForestSpec s;
  s.num_trees = 0;
  EXPECT_THROW(make_random_forest(s), ConfigError);
  s = RandomForestSpec{};
  s.max_depth = 0;
  EXPECT_THROW(make_random_forest(s), ConfigError);
  s = RandomForestSpec{};
  s.branch_prob = 1.5;
  EXPECT_THROW(make_random_forest(s), ConfigError);
  s = RandomForestSpec{};
  s.num_features = 0;
  EXPECT_THROW(make_random_forest(s), ConfigError);
}

TEST(RandomForestGen, ProducesValidForests) {
  RandomForestSpec s;
  s.num_trees = 10;
  s.max_depth = 12;
  const Forest f = make_random_forest(s);
  EXPECT_NO_THROW(f.validate());
  EXPECT_EQ(f.tree_count(), 10u);
}

TEST(RandomForestGen, SpineGuaranteesExactMaxDepth) {
  for (int depth : {1, 2, 5, 10, 20}) {
    RandomForestSpec s;
    s.num_trees = 3;
    s.max_depth = depth;
    s.branch_prob = 0.3;  // sparse: without the spine depth would be lower
    s.seed = static_cast<std::uint64_t>(depth);
    const Forest f = make_random_forest(s);
    for (std::size_t t = 0; t < f.tree_count(); ++t) {
      EXPECT_EQ(f.tree(t).stats().max_depth, depth) << "tree " << t;
    }
  }
}

TEST(RandomForestGen, BranchProbOneGivesCompleteTrees) {
  RandomForestSpec s;
  s.num_trees = 2;
  s.max_depth = 8;
  s.branch_prob = 1.0;
  const Forest f = make_random_forest(s);
  for (std::size_t t = 0; t < f.tree_count(); ++t) {
    EXPECT_EQ(f.tree(t).node_count(), complete_tree_nodes(8));
    EXPECT_EQ(f.tree(t).stats().leaf_count, pow2(7));
  }
}

TEST(RandomForestGen, BranchProbZeroGivesSpineOnly) {
  RandomForestSpec s;
  s.num_trees = 1;
  s.max_depth = 6;
  s.branch_prob = 0.0;
  const Forest f = make_random_forest(s);
  // Pure spine: one forced path of 5 inner nodes, each with one leaf
  // sibling, plus the final leaf -> 11 nodes.
  EXPECT_EQ(f.tree(0).node_count(), 11u);
  EXPECT_EQ(f.tree(0).stats().max_depth, 6);
}

TEST(RandomForestGen, DeterministicUnderSeed) {
  RandomForestSpec s;
  s.num_trees = 4;
  s.max_depth = 9;
  const Forest a = make_random_forest(s);
  const Forest b = make_random_forest(s);
  for (std::size_t t = 0; t < a.tree_count(); ++t) {
    ASSERT_EQ(a.tree(t).node_count(), b.tree(t).node_count());
  }
}

TEST(RandomForestGen, FeaturesWithinRange) {
  RandomForestSpec s;
  s.num_trees = 5;
  s.max_depth = 10;
  s.num_features = 7;
  const Forest f = make_random_forest(s);
  for (std::size_t t = 0; t < f.tree_count(); ++t) {
    for (const TreeNode& n : f.tree(t).nodes()) {
      if (!n.is_leaf()) {
        EXPECT_GE(n.feature, 0);
        EXPECT_LT(n.feature, 7);
        EXPECT_GT(n.value, 0.0f);
        EXPECT_LT(n.value, 1.0f);
      }
    }
  }
}

TEST(RandomForestGen, SparserProbMeansFewerNodes) {
  RandomForestSpec dense;
  dense.num_trees = 5;
  dense.max_depth = 12;
  dense.branch_prob = 0.9;
  RandomForestSpec sparse = dense;
  sparse.branch_prob = 0.3;
  EXPECT_GT(make_random_forest(dense).stats().total_nodes,
            make_random_forest(sparse).stats().total_nodes);
}

}  // namespace
}  // namespace hrf
