#include "forest/importance.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "data/dataset.hpp"
#include "train/forest_trainer.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

TEST(FeatureImportance, SingleSplitGivesAllMassToOneFeature) {
  std::vector<TreeNode> nodes(3);
  nodes[0] = {2, 0.5f, 1, 2};
  nodes[1] = {kLeafFeature, 0.f, -1, -1};
  nodes[2] = {kLeafFeature, 1.f, -1, -1};
  std::vector<DecisionTree> trees;
  trees.emplace_back(std::move(nodes));
  const Forest f(std::move(trees), 4);
  const auto imp = feature_importance(f);
  EXPECT_DOUBLE_EQ(imp[2], 1.0);
  EXPECT_DOUBLE_EQ(imp[0] + imp[1] + imp[3], 0.0);
}

TEST(FeatureImportance, NormalizesToOne) {
  Dataset ds(3000, 5);
  Xoshiro256 rng(4);
  std::vector<float> row(5);
  for (int i = 0; i < 3000; ++i) {
    for (auto& v : row) v = rng.uniform_float();
    ds.push_back(row, (row[0] + row[3] > 1.f) ? 1 : 0);
  }
  TrainConfig cfg;
  cfg.num_trees = 10;
  cfg.max_depth = 8;
  const Forest f = train_forest(ds, cfg);
  const auto imp = feature_importance(f);
  EXPECT_NEAR(std::accumulate(imp.begin(), imp.end(), 0.0), 1.0, 1e-9);
}

TEST(FeatureImportance, RelevantFeaturesOutrankNoise) {
  // Label depends on features 0 and 3 only; 1, 2, 4 are noise.
  Dataset ds(6000, 5);
  Xoshiro256 rng(5);
  std::vector<float> row(5);
  for (int i = 0; i < 6000; ++i) {
    for (auto& v : row) v = rng.uniform_float();
    ds.push_back(row, (row[0] + row[3] > 1.f) ? 1 : 0);
  }
  TrainConfig cfg;
  cfg.num_trees = 20;
  cfg.max_depth = 9;
  cfg.features_per_split = 5;
  const Forest f = train_forest(ds, cfg);
  const auto imp = feature_importance(f);
  for (std::size_t noise : {1u, 2u, 4u}) {
    EXPECT_GT(imp[0], imp[noise]);
    EXPECT_GT(imp[3], imp[noise]);
  }
  const auto top = top_features(f, 2);
  EXPECT_TRUE((top[0] == 0 && top[1] == 3) || (top[0] == 3 && top[1] == 0));
}

TEST(FeatureImportance, RootSplitsOutweighDeepSplits) {
  // A tree splitting feature 0 at the root and feature 1 once below must
  // attribute more mass to feature 0 (mass 1.0 vs 0.5).
  std::vector<TreeNode> nodes(5);
  nodes[0] = {0, 0.5f, 1, 2};
  nodes[1] = {1, 0.25f, 3, 4};
  nodes[2] = {kLeafFeature, 1.f, -1, -1};
  nodes[3] = {kLeafFeature, 0.f, -1, -1};
  nodes[4] = {kLeafFeature, 1.f, -1, -1};
  std::vector<DecisionTree> trees;
  trees.emplace_back(std::move(nodes));
  const Forest f(std::move(trees), 2);
  const auto imp = feature_importance(f);
  EXPECT_NEAR(imp[0], 1.0 / 1.5, 1e-12);
  EXPECT_NEAR(imp[1], 0.5 / 1.5, 1e-12);
}

TEST(TopFeatures, ClampsToFeatureCount) {
  std::vector<TreeNode> nodes(1);
  nodes[0] = {kLeafFeature, 0.f, -1, -1};
  std::vector<DecisionTree> trees;
  trees.emplace_back(std::move(nodes));
  const Forest f(std::move(trees), 3);
  EXPECT_EQ(top_features(f, 10).size(), 3u);
}

}  // namespace
}  // namespace hrf
