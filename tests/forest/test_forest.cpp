#include "forest/forest.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "../common/paper_example.hpp"
#include "forest/random_forest_gen.hpp"
#include "util/error.hpp"

namespace hrf {
namespace {

/// Forest of three single-leaf trees voting (a, b, c).
Forest voting_forest(float a, float b, float c) {
  std::vector<DecisionTree> trees;
  for (float v : {a, b, c}) trees.push_back(DecisionTree({TreeNode{kLeafFeature, v, -1, -1}}));
  return Forest(std::move(trees), 1);
}

TEST(Forest, RejectsEmptyForest) {
  EXPECT_THROW(Forest({}, 3), ConfigError);
}

TEST(Forest, RejectsZeroFeatures) {
  std::vector<DecisionTree> trees;
  trees.push_back(DecisionTree({TreeNode{kLeafFeature, 0.f, -1, -1}}));
  EXPECT_THROW(Forest(std::move(trees), 0), ConfigError);
}

TEST(Forest, MajorityVoteFollowsFig1a) {
  const float q[1] = {0.0f};
  EXPECT_EQ(voting_forest(1, 1, 0).classify(q), 1);
  EXPECT_EQ(voting_forest(0, 0, 1).classify(q), 0);
  EXPECT_EQ(voting_forest(0, 0, 0).classify(q), 0);
  EXPECT_EQ(voting_forest(1, 1, 1).classify(q), 1);
}

TEST(Forest, VoteSumCountsClassBTrees) {
  const float q[1] = {0.0f};
  EXPECT_EQ(voting_forest(1, 0, 1).vote_sum(q), 2u);
}

TEST(Forest, EvenTreeCountTieResolvesToClassB) {
  // Fig. 1a line 4: tmp < N/2 ? A : B — a 1-1 tie means tmp == N/2 => B.
  std::vector<DecisionTree> trees;
  trees.push_back(DecisionTree({TreeNode{kLeafFeature, 0.f, -1, -1}}));
  trees.push_back(DecisionTree({TreeNode{kLeafFeature, 1.f, -1, -1}}));
  const Forest f(std::move(trees), 1);
  const float q[1] = {0.0f};
  EXPECT_EQ(f.classify(q), 1);
}

TEST(Forest, ClassifyBatchMatchesScalar) {
  const Forest f = testutil::fig2_forest();
  const auto qa = testutil::fig2_query_class_a();
  const auto qb = testutil::fig2_query_class_b();
  std::vector<float> matrix;
  matrix.insert(matrix.end(), qa.begin(), qa.end());
  matrix.insert(matrix.end(), qb.begin(), qb.end());
  const auto preds = f.classify_batch(matrix, 2);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], 0);
  EXPECT_EQ(preds[1], 1);
}

TEST(Forest, ClassifyBatchRejectsBadShape) {
  const Forest f = testutil::fig2_forest();
  std::vector<float> matrix(5, 0.f);
  EXPECT_THROW(f.classify_batch(matrix, 2), ConfigError);
}

TEST(Forest, AccuracyCountsMatches) {
  const Forest f = testutil::fig2_forest();
  const auto qa = testutil::fig2_query_class_a();
  const auto qb = testutil::fig2_query_class_b();
  std::vector<float> matrix;
  matrix.insert(matrix.end(), qa.begin(), qa.end());
  matrix.insert(matrix.end(), qb.begin(), qb.end());
  const std::uint8_t labels_right[2] = {0, 1};
  const std::uint8_t labels_half[2] = {0, 0};
  EXPECT_DOUBLE_EQ(f.accuracy(matrix, labels_right), 1.0);
  EXPECT_DOUBLE_EQ(f.accuracy(matrix, labels_half), 0.5);
}

TEST(Forest, StatsAggregateOverTrees) {
  RandomForestSpec spec;
  spec.num_trees = 5;
  spec.max_depth = 7;
  const Forest f = make_random_forest(spec);
  const ForestStats s = f.stats();
  EXPECT_EQ(s.tree_count, 5u);
  EXPECT_EQ(s.max_depth, 7);
  EXPECT_GT(s.total_nodes, 5u * 7u);
  EXPECT_GT(s.total_leaves, 0u);
  EXPECT_GT(s.mean_leaf_depth, 1.0);
}

TEST(Forest, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/hrf_forest_rt.hrff";
  RandomForestSpec spec;
  spec.num_trees = 4;
  spec.max_depth = 6;
  const Forest f = make_random_forest(spec);
  f.save(path);
  const Forest loaded = Forest::load(path);
  EXPECT_EQ(loaded.tree_count(), f.tree_count());
  EXPECT_EQ(loaded.num_features(), f.num_features());
  for (std::size_t t = 0; t < f.tree_count(); ++t) {
    ASSERT_EQ(loaded.tree(t).node_count(), f.tree(t).node_count());
    for (std::size_t i = 0; i < f.tree(t).node_count(); ++i) {
      EXPECT_EQ(loaded.tree(t).node(i).feature, f.tree(t).node(i).feature);
      EXPECT_FLOAT_EQ(loaded.tree(t).node(i).value, f.tree(t).node(i).value);
    }
  }
  std::remove(path.c_str());
}

TEST(Forest, LoadRejectsBadMagic) {
  const std::string path = testing::TempDir() + "/hrf_forest_badmagic.hrff";
  std::ofstream(path, std::ios::binary) << "garbage bytes here, not a forest";
  EXPECT_THROW(Forest::load(path), FormatError);
  std::remove(path.c_str());
}

TEST(Forest, LoadRejectsCorruptTopology) {
  // Valid header, malformed node wiring: load must validate and reject.
  const std::string path = testing::TempDir() + "/hrf_forest_corrupt.hrff";
  {
    std::vector<DecisionTree> trees;
    trees.push_back(DecisionTree({TreeNode{0, 0.5f, 1, 2}, TreeNode{kLeafFeature, 0.f, -1, -1},
                                  TreeNode{kLeafFeature, 1.f, -1, -1}}));
    Forest(std::move(trees), 2).save(path);
  }
  // Corrupt the right-child index of the root (point it at itself).
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  // Header: magic(4) version(4) features(8) trees(8) nodecount(8) = 32 bytes,
  // then node 0 = {feature(4), value(4), left(4), right(4)}.
  file.seekp(32 + 12);
  const std::int32_t self = 0;
  file.write(reinterpret_cast<const char*>(&self), sizeof self);
  file.close();
  EXPECT_THROW(Forest::load(path), FormatError);
  std::remove(path.c_str());
}

TEST(Forest, LoadRejectsTruncation) {
  const std::string path = testing::TempDir() + "/hrf_forest_trunc.hrff";
  testutil::fig2_forest().save(path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary) << bytes.substr(0, bytes.size() - 16);
  EXPECT_THROW(Forest::load(path), FormatError);
  std::remove(path.c_str());
}

TEST(Forest, ValidatePropagatesTreeErrors) {
  std::vector<DecisionTree> trees;
  trees.push_back(DecisionTree({TreeNode{99, 0.5f, 1, 2}, TreeNode{kLeafFeature, 0.f, -1, -1},
                                TreeNode{kLeafFeature, 1.f, -1, -1}}));
  const Forest f(std::move(trees), 4);  // feature 99 out of range
  EXPECT_THROW(f.validate(), FormatError);
}

}  // namespace
}  // namespace hrf
