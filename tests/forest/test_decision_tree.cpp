#include "forest/decision_tree.hpp"

#include <gtest/gtest.h>

#include "../common/paper_example.hpp"
#include "util/error.hpp"

namespace hrf {
namespace {

using testutil::fig2_tree;

TEST(DecisionTree, Fig2WalkthroughClassifiesAsA) {
  // §2.1: feature 1 = 1.25 < 2.5 goes left to leaf node 1, class A (0).
  const DecisionTree t = fig2_tree();
  const auto q = testutil::fig2_query_class_a();
  EXPECT_FLOAT_EQ(t.traverse(q), 0.0f);
  EXPECT_EQ(t.classify(q), 0);
}

TEST(DecisionTree, Fig2RightPathsReachEveryLeaf) {
  const DecisionTree t = fig2_tree();
  std::vector<float> q(testutil::kFig2Features, 0.0f);
  // 0 -> 2 -> 3 -> 7 (A): f1>=2.5, f4<0.5, f8<5.4
  q[1] = 9.f;
  q[4] = 0.f;
  q[8] = 0.f;
  EXPECT_EQ(t.classify(q), 0);
  // 0 -> 2 -> 3 -> 8 (B): f8 >= 5.4
  q[8] = 6.f;
  EXPECT_EQ(t.classify(q), 1);
  // 0 -> 2 -> 4 -> 5 (B): f4>=0.5, f20<8.8
  q[4] = 0.9f;
  q[20] = 0.f;
  EXPECT_EQ(t.classify(q), 1);
  // 0 -> 2 -> 4 -> 6 (A): f20 >= 8.8
  q[20] = 9.f;
  EXPECT_EQ(t.classify(q), 0);
}

TEST(DecisionTree, BoundaryComparisonIsStrictLess) {
  // "f[n] < val": a query exactly at the threshold goes right.
  const DecisionTree t = fig2_tree();
  std::vector<float> q(testutil::kFig2Features, 0.0f);
  q[1] = 2.5f;  // not < 2.5 -> right subtree
  q[4] = 0.0f;  // < 0.5 -> node 3
  q[8] = 0.0f;  // < 5.4 -> leaf 7 (A)
  EXPECT_EQ(t.classify(q), 0);
}

TEST(DecisionTree, StatsMatchFig2Shape) {
  const TreeStats s = fig2_tree().stats();
  EXPECT_EQ(s.node_count, 9u);
  EXPECT_EQ(s.leaf_count, 5u);
  EXPECT_EQ(s.max_depth, 4);
  // Leaves: node 1 at depth 2, nodes 5-8 at depth 4.
  EXPECT_DOUBLE_EQ(s.mean_leaf_depth, (2.0 + 4 * 4.0) / 5.0);
}

TEST(DecisionTree, SingleLeafStats) {
  DecisionTree t({TreeNode{kLeafFeature, 1.0f, -1, -1}});
  const TreeStats s = t.stats();
  EXPECT_EQ(s.node_count, 1u);
  EXPECT_EQ(s.leaf_count, 1u);
  EXPECT_EQ(s.max_depth, 1);
}

TEST(DecisionTree, AddNodeReturnsIndex) {
  DecisionTree t;
  EXPECT_EQ(t.add_node(TreeNode{}), 0);
  EXPECT_EQ(t.add_node(TreeNode{}), 1);
  EXPECT_EQ(t.node_count(), 2u);
}

TEST(DecisionTreeValidate, AcceptsFig2Tree) {
  EXPECT_NO_THROW(fig2_tree().validate(testutil::kFig2Features));
}

TEST(DecisionTreeValidate, RejectsEmptyTree) {
  DecisionTree t;
  EXPECT_THROW(t.validate(4), FormatError);
}

TEST(DecisionTreeValidate, RejectsFeatureOutOfRange) {
  // Fig. 2 uses feature 20; claiming only 10 features must fail.
  EXPECT_THROW(fig2_tree().validate(10), FormatError);
}

TEST(DecisionTreeValidate, RejectsOutOfRangeChild) {
  DecisionTree t({TreeNode{0, 0.5f, 1, 99}, TreeNode{kLeafFeature, 0.f, -1, -1}});
  EXPECT_THROW(t.validate(4), FormatError);
}

TEST(DecisionTreeValidate, RejectsSelfLoop) {
  DecisionTree t({TreeNode{0, 0.5f, 0, 0}});
  EXPECT_THROW(t.validate(4), FormatError);
}

TEST(DecisionTreeValidate, RejectsSharedChild) {
  // Both children point at node 1: node 1 has two parents.
  DecisionTree t({TreeNode{0, 0.5f, 1, 1}, TreeNode{kLeafFeature, 0.f, -1, -1}});
  EXPECT_THROW(t.validate(4), FormatError);
}

TEST(DecisionTreeValidate, RejectsRootWithParent) {
  // Node 1 points back to the root.
  DecisionTree t({TreeNode{0, 0.5f, 1, 2}, TreeNode{0, 0.5f, 0, 2},
                  TreeNode{kLeafFeature, 0.f, -1, -1}});
  EXPECT_THROW(t.validate(4), FormatError);
}

TEST(DecisionTreeValidate, RejectsUnreachableNode) {
  // Node 3 exists but nothing points at it.
  DecisionTree t({TreeNode{0, 0.5f, 1, 2}, TreeNode{kLeafFeature, 0.f, -1, -1},
                  TreeNode{kLeafFeature, 1.f, -1, -1}, TreeNode{kLeafFeature, 1.f, -1, -1}});
  EXPECT_THROW(t.validate(4), FormatError);
}

TEST(DecisionTreeValidate, RejectsNonBinaryLeafValue) {
  DecisionTree t({TreeNode{kLeafFeature, 0.7f, -1, -1}});
  EXPECT_THROW(t.validate(4), FormatError);
}

}  // namespace
}  // namespace hrf
