#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {
namespace {

// --- Bucket boundaries ---------------------------------------------------

TEST(LatencyHistogram, ExactRegionBucketsAreExact) {
  // Values below kSubBuckets get one bucket each; bounds are [v, v+1).
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    const int idx = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(idx, static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::bucket_lower_bound(idx), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper_bound(idx), v + 1);
  }
}

TEST(LatencyHistogram, PowerOfTwoBoundariesStartNewBuckets) {
  // Every octave boundary 8, 16, 32, ... is the lower bound of its bucket,
  // and the value one below it falls in the previous bucket.
  for (int shift = 3; shift < 62; ++shift) {
    const std::uint64_t boundary = std::uint64_t{1} << shift;
    const int idx = LatencyHistogram::bucket_index(boundary);
    EXPECT_EQ(LatencyHistogram::bucket_lower_bound(idx), boundary) << "boundary=" << boundary;
    EXPECT_EQ(LatencyHistogram::bucket_index(boundary - 1), idx - 1) << "boundary=" << boundary;
  }
}

TEST(LatencyHistogram, EveryValueFallsInsideItsBucketBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform values across the full range, plus the small exact region.
    const int shift = static_cast<int>(rng.bounded(62));
    const std::uint64_t v = (std::uint64_t{1} << shift) + rng.bounded(1u << 16);
    const int idx = LatencyHistogram::bucket_index(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets);
    ASSERT_LE(LatencyHistogram::bucket_lower_bound(idx), v) << "v=" << v;
    ASSERT_GT(LatencyHistogram::bucket_upper_bound(idx), v) << "v=" << v;
  }
}

TEST(LatencyHistogram, BucketsAreContiguous) {
  // upper_bound(i) == lower_bound(i+1) everywhere: no gaps, no overlaps.
  for (int i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    ASSERT_EQ(LatencyHistogram::bucket_upper_bound(i),
              LatencyHistogram::bucket_lower_bound(i + 1))
        << "bucket " << i;
  }
}

TEST(LatencyHistogram, RelativeQuantizationErrorBounded) {
  // Log-linear promise: bucket width / lower bound <= 1/kSubBuckets above
  // the exact region.
  for (int i = LatencyHistogram::kSubBuckets; i < LatencyHistogram::kNumBuckets - 1; ++i) {
    const double lower = static_cast<double>(LatencyHistogram::bucket_lower_bound(i));
    const double width = static_cast<double>(LatencyHistogram::bucket_upper_bound(i)) - lower;
    ASSERT_LE(width / lower, 1.0 / LatencyHistogram::kSubBuckets + 1e-12) << "bucket " << i;
  }
}

// --- Percentiles ---------------------------------------------------------

TEST(LatencyHistogram, PercentilesOnKnownDistribution) {
  LatencyHistogram h;
  // 100 samples: 1..100 us. All land above the exact region; percentile
  // returns the bucket lower bound, so accept the 12.5% quantization.
  for (std::uint64_t us = 1; us <= 100; ++us) h.record_ns(us * 1000);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.total, 100u);
  EXPECT_EQ(s.max_ns, 100'000u);
  EXPECT_NEAR(s.percentile_ns(50), 50'000, 50'000 * 0.125);
  EXPECT_NEAR(s.percentile_ns(95), 95'000, 95'000 * 0.125);
  EXPECT_NEAR(s.percentile_ns(99), 99'000, 99'000 * 0.125);
  EXPECT_EQ(s.percentile_ns(100), 100'000);  // clamped to the exact max
  EXPECT_NEAR(s.mean_ns(), 50'500, 1e-9);    // sum is exact, not bucketized
}

TEST(LatencyHistogram, ConstantDistributionIsExactOnBoundary) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record_ns(4096);  // a bucket lower bound
  const HistogramSnapshot s = h.snapshot();
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(s.percentile_ns(p), 4096) << "p=" << p;
  }
}

TEST(LatencyHistogram, EmptySnapshotIsZero) {
  const HistogramSnapshot s = LatencyHistogram().snapshot();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.percentile_ns(50), 0.0);
  EXPECT_EQ(s.mean_ns(), 0.0);
  EXPECT_EQ(s.max_ns, 0u);
}

TEST(LatencyHistogram, PercentileValidatesRange) {
  EXPECT_THROW(HistogramSnapshot{}.percentile_ns(-1), ConfigError);
  EXPECT_THROW(HistogramSnapshot{}.percentile_ns(101), ConfigError);
}

TEST(LatencyHistogram, RecordSecondsConverts) {
  LatencyHistogram h;
  h.record_seconds(1.5e-6);  // 1500 ns
  h.record_seconds(-0.1);    // clamped to 0, not UB
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.total, 2u);
  EXPECT_EQ(s.max_ns, 1500u);
}

// --- Cumulative (Prometheus) buckets -------------------------------------

TEST(LatencyHistogram, CumulativeBucketsRunningSumMatchesTotal) {
  LatencyHistogram h;
  Xoshiro256 rng(11);
  for (int i = 0; i < 5000; ++i) h.record_ns(rng.bounded(1u << 24));
  const HistogramSnapshot s = h.snapshot();
  const auto buckets = s.cumulative();
  ASSERT_FALSE(buckets.empty());
  // Monotone non-decreasing, inclusive upper bounds, final bucket == total.
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i].cumulative, buckets[i - 1].cumulative);
    EXPECT_GT(buckets[i].le_ns, buckets[i - 1].le_ns);
  }
  EXPECT_EQ(buckets.back().cumulative, s.total);
}

TEST(LatencyHistogram, PercentilesFromCumulativeBucketsMatchNative) {
  // Cross-check: percentile_ns() recomputed from the Prometheus-style
  // cumulative buckets must agree with the native implementation to
  // within one bucket width (both quantize to bucket bounds).
  LatencyHistogram h;
  Xoshiro256 rng(23);
  for (int i = 0; i < 20000; ++i) h.record_ns(100 + rng.bounded(1u << 22));
  const HistogramSnapshot s = h.snapshot();
  const auto buckets = s.cumulative();

  const auto percentile_from_buckets = [&](double p) {
    const double rank = p / 100.0 * static_cast<double>(s.total);
    for (const HistogramSnapshot::CumulativeBucket& b : buckets) {
      if (static_cast<double>(b.cumulative) >= rank) {
        return static_cast<double>(b.le_ns);
      }
    }
    return static_cast<double>(buckets.back().le_ns);
  };

  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double native = s.percentile_ns(p);
    const double from_buckets = percentile_from_buckets(p);
    // An inclusive `le` bound sits one below the native bucket's exclusive
    // upper bound; both must land inside the same bucket.
    const int native_idx = LatencyHistogram::bucket_index(static_cast<std::uint64_t>(native));
    const int bucket_idx =
        LatencyHistogram::bucket_index(static_cast<std::uint64_t>(from_buckets));
    EXPECT_EQ(native_idx, bucket_idx) << "p" << p;
  }
}

TEST(LatencyHistogram, CumulativeOfEmptyIsEmpty) {
  EXPECT_TRUE(LatencyHistogram{}.snapshot().cumulative().empty());
}

// --- Merge ---------------------------------------------------------------

HistogramSnapshot make_snapshot(std::uint64_t seed, int n) {
  LatencyHistogram h;
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i) h.record_ns(rng.bounded(1u << 20));
  return h.snapshot();
}

void expect_same(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.sum_ns, b.sum_ns);
  EXPECT_EQ(a.max_ns, b.max_ns);
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative) {
  const HistogramSnapshot a = make_snapshot(1, 500);
  const HistogramSnapshot b = make_snapshot(2, 300);
  const HistogramSnapshot c = make_snapshot(3, 700);

  HistogramSnapshot ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  HistogramSnapshot a_bc = b;   // a + (b + c), built right-to-left
  a_bc.merge(c);
  HistogramSnapshot left = a;
  left.merge(a_bc);
  expect_same(ab_c, left);

  HistogramSnapshot cba = c;    // commuted order
  cba.merge(b);
  cba.merge(a);
  expect_same(ab_c, cba);

  EXPECT_EQ(ab_c.total, 1500u);
}

TEST(LatencyHistogram, MergeMatchesRecordingIntoOne) {
  LatencyHistogram all;
  Xoshiro256 rng(11);
  LatencyHistogram h1, h2;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.bounded(1u << 24);
    all.record_ns(v);
    (i % 2 == 0 ? h1 : h2).record_ns(v);
  }
  HistogramSnapshot merged = h1.snapshot();
  merged.merge(h2.snapshot());
  expect_same(all.snapshot(), merged);
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  const HistogramSnapshot a = make_snapshot(5, 200);
  HistogramSnapshot m = a;
  m.merge(HistogramSnapshot{});
  expect_same(a, m);
  HistogramSnapshot e;
  e.merge(a);
  expect_same(a, e);
}

// --- Concurrency (also runs under TSan via tools/check.sh) ---------------

TEST(LatencyHistogram, ConcurrentRecordsLoseNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) h.record_ns(rng.bounded(1u << 22));
    });
  }
  for (std::thread& t : pool) t.join();

  // Replay the same deterministic streams serially; the concurrent result
  // must be byte-identical (no lost updates, exact sum and max).
  LatencyHistogram serial;
  for (int t = 0; t < kThreads; ++t) {
    Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
    for (int i = 0; i < kPerThread; ++i) serial.record_ns(rng.bounded(1u << 22));
  }
  expect_same(serial.snapshot(), h.snapshot());
  EXPECT_EQ(h.snapshot().total, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogram, SnapshotDuringConcurrentRecordsNeverTears) {
  LatencyHistogram h;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) h.record_ns(v++ % 4096);
  });
  for (int i = 0; i < 200; ++i) {
    const HistogramSnapshot s = h.snapshot();
    std::uint64_t total = 0;
    for (const std::uint64_t c : s.counts) total += c;
    // total is recomputed from counts inside snapshot(), so this checks
    // internal consistency of one pass over live atomics.
    EXPECT_EQ(total, s.total);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record_ns(123);
  h.reset();
  EXPECT_TRUE(h.snapshot().empty());
}

// --- Delta snapshots (windowed telemetry primitive) ----------------------

TEST(HistogramDelta, DeltaMatchesFreshHistogramOfNewSamples) {
  // The windowed-telemetry contract: recording A, snapshotting, recording
  // B, and subtracting must reproduce a histogram built from B alone —
  // counts, total, sum, and therefore every percentile.
  LatencyHistogram cumulative;
  LatencyHistogram fresh;
  Xoshiro256 rng(11);
  for (int i = 0; i < 5000; ++i) {
    cumulative.record_ns(rng.next() % 1'000'000);
  }
  const HistogramSnapshot before = cumulative.snapshot();
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next() % 1'000'000;
    cumulative.record_ns(v);
    fresh.record_ns(v);
  }
  const HistogramSnapshot delta = cumulative.snapshot().delta_since(before);
  const HistogramSnapshot expect = fresh.snapshot();

  ASSERT_EQ(delta.counts.size(), expect.counts.size());
  for (std::size_t b = 0; b < expect.counts.size(); ++b) {
    EXPECT_EQ(delta.counts[b], expect.counts[b]) << "bucket " << b;
  }
  EXPECT_EQ(delta.total, expect.total);
  EXPECT_EQ(delta.sum_ns, expect.sum_ns);
  for (const double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    EXPECT_EQ(delta.percentile_ns(p), expect.percentile_ns(p)) << "p" << p;
  }
}

TEST(HistogramDelta, MaxIsExactWhenTopBucketStillOccupied) {
  LatencyHistogram h;
  h.record_ns(100);
  const HistogramSnapshot before = h.snapshot();
  h.record_ns(50'000);  // new max lands in a strictly higher bucket
  const HistogramSnapshot delta = h.snapshot().delta_since(before);
  EXPECT_EQ(delta.total, 1u);
  // The cumulative max belongs to the delta's own top occupied bucket, so
  // the exact value carries over.
  EXPECT_EQ(delta.max_ns, 50'000u);
}

TEST(HistogramDelta, MaxFallsBackToBucketBoundWhenOldMaxLeft) {
  LatencyHistogram h;
  h.record_ns(900'000);  // the all-time max, entirely inside `before`
  const HistogramSnapshot before = h.snapshot();
  h.record_ns(100);
  const HistogramSnapshot delta = h.snapshot().delta_since(before);
  EXPECT_EQ(delta.total, 1u);
  // The cumulative max's bucket has a zero delta count, so the window max
  // degrades to the top occupied delta bucket's inclusive upper bound —
  // never the stale 900us value.
  EXPECT_LT(delta.max_ns, 900'000u);
  const int idx = LatencyHistogram::bucket_index(100);
  EXPECT_EQ(delta.max_ns, LatencyHistogram::bucket_upper_bound(idx) - 1);
}

TEST(HistogramDelta, EmptyWindowIsEmpty) {
  LatencyHistogram h;
  h.record_ns(123);
  const HistogramSnapshot s = h.snapshot();
  const HistogramSnapshot delta = s.delta_since(s);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.total, 0u);
  EXPECT_EQ(delta.sum_ns, 0u);
}

TEST(HistogramDelta, ClampsWhenEarlierIsAhead) {
  // A reset between samples makes "earlier" read ahead of "current";
  // deltas clamp at zero instead of underflowing.
  LatencyHistogram a;
  a.record_ns(1000);
  a.record_ns(1000);
  const HistogramSnapshot big = a.snapshot();
  LatencyHistogram b;
  b.record_ns(1000);
  const HistogramSnapshot delta = b.snapshot().delta_since(big);
  EXPECT_EQ(delta.total, 0u);
  for (const std::uint64_t c : delta.counts) EXPECT_EQ(c, 0u);
}

// --- Rendering -----------------------------------------------------------

TEST(FormatNs, HumanUnits) {
  EXPECT_EQ(format_ns(850), "850ns");
  EXPECT_EQ(format_ns(12'400), "12.4us");
  EXPECT_EQ(format_ns(3.1e6), "3.10ms");
  EXPECT_EQ(format_ns(2.0e9), "2.00s");
}

TEST(LatencyTableMarkdown, RendersStages) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record_ns(1000);
  const std::string md = latency_table_markdown({{"queue-wait", h.snapshot()},
                                                 {"end-to-end", h.snapshot()}});
  EXPECT_NE(md.find("queue-wait"), std::string::npos);
  EXPECT_NE(md.find("end-to-end"), std::string::npos);
  EXPECT_NE(md.find("p95"), std::string::npos);
  EXPECT_NE(md.find("1.0us"), std::string::npos);
}

}  // namespace
}  // namespace hrf
