#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace hrf {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, DeterministicUnderSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformIsInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformFloatIsInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform_float();
    ASSERT_GE(u, 0.0f);
    ASSERT_LT(u, 1.0f);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.5);
  }
}

TEST(Xoshiro256, UniformMeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.bounded(17), 17u);
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro256, BoundedOneReturnsZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, BoundedIsApproximatelyUniform) {
  Xoshiro256 rng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> hist{};
  for (int i = 0; i < kDraws; ++i) ++hist[rng.bounded(kBuckets)];
  for (int count : hist) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Xoshiro256, NormalMomentsMatchStandardNormal) {
  Xoshiro256 rng(17);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Xoshiro256, NormalWithParamsShiftsAndScales) {
  Xoshiro256 rng(19);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(23);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 a(31);
  Xoshiro256 b(31);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a.next());
  int overlap = 0;
  for (int i = 0; i < 1000; ++i) overlap += first.count(b.next());
  EXPECT_EQ(overlap, 0);
}

TEST(Xoshiro256, SplitLeavesOriginalUntouched) {
  Xoshiro256 a(37);
  Xoshiro256 reference(37);
  const Xoshiro256 child = a.split(0);
  (void)child;
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next(), reference.next());
}

TEST(Xoshiro256, SplitStreamsAreDistinct) {
  const Xoshiro256 base(41);
  Xoshiro256 s0 = base.split(0);
  Xoshiro256 s1 = base.split(1);
  int same = 0;
  for (int i = 0; i < 256; ++i) same += s0.next() == s1.next();
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 rng(43);
  std::vector<int> v{1, 2, 3, 4, 5};
  // Compiles and runs with <random>-style shuffling.
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    std::swap(v[i], v[rng.bounded(i + 1)]);
  }
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace hrf
