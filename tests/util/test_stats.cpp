#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hrf {
namespace {

TEST(Summarize, EmptyGivesZeros) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleElement) {
  const std::vector<double> xs{4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, KnownValues) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, NegativeValues) {
  const std::vector<double> xs{-1.0, 1.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, -1.0);
}

TEST(Percentile, EmptyGivesZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25), 2.5);
}

TEST(Percentile, ExtremesPickMinAndMax) {
  const std::vector<double> xs{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 9.0);
}

TEST(GeometricMean, EmptyGivesZero) {
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
}

TEST(GeometricMean, KnownValue) {
  const std::vector<double> xs{2.0, 8.0};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
}

TEST(GeometricMean, NonPositiveGivesZero) {
  const std::vector<double> xs{2.0, 0.0};
  EXPECT_DOUBLE_EQ(geometric_mean(xs), 0.0);
  const std::vector<double> ys{2.0, -1.0};
  EXPECT_DOUBLE_EQ(geometric_mean(ys), 0.0);
}

}  // namespace
}  // namespace hrf
