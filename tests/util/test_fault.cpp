#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace hrf {
namespace {

TEST(FaultInjector, SitesFireExactlyCountTimes) {
  FaultInjector inj;
  inj.arm("resource:gpu", 2);
  EXPECT_TRUE(inj.enabled());
  EXPECT_EQ(inj.remaining("resource:gpu"), 2);
  EXPECT_TRUE(inj.consume("resource:gpu"));
  EXPECT_TRUE(inj.consume("resource:gpu"));
  EXPECT_FALSE(inj.consume("resource:gpu"));  // charges spent
  EXPECT_FALSE(inj.enabled());
}

TEST(FaultInjector, NegativeCountFiresForever) {
  FaultInjector inj;
  inj.arm("resource:fpga", -1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(inj.consume("resource:fpga"));
  inj.disarm("resource:fpga");
  EXPECT_FALSE(inj.consume("resource:fpga"));
}

TEST(FaultInjector, UnarmedSitesNeverFire) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  EXPECT_FALSE(inj.consume("resource:gpu"));
  EXPECT_NO_THROW(inj.maybe_throw_resource("resource:gpu"));
}

TEST(FaultInjector, MaybeThrowRaisesResourceError) {
  FaultInjector inj;
  inj.arm("resource:gpu-smem", 1);
  EXPECT_THROW(inj.maybe_throw_resource("resource:gpu-smem"), ResourceError);
  EXPECT_NO_THROW(inj.maybe_throw_resource("resource:gpu-smem"));  // consumed
}

TEST(FaultInjector, SpecParsing) {
  FaultInjector inj;
  inj.arm_spec("resource:gpu");
  EXPECT_EQ(inj.remaining("resource:gpu"), 1);
  inj.arm_spec("resource:fpga:3");
  EXPECT_EQ(inj.remaining("resource:fpga"), 3);
  inj.arm_spec("resource:gpu:-1");
  EXPECT_EQ(inj.remaining("resource:gpu"), -1);
  inj.arm_specs("bitflip:layout,corrupt:node:2");
  EXPECT_EQ(inj.remaining("bitflip:layout"), 1);
  EXPECT_EQ(inj.remaining("corrupt:node"), 2);
  inj.disarm_all();
  EXPECT_FALSE(inj.enabled());
}

TEST(FaultInjector, RouterSitesParseAndCountFires) {
  // The cluster chaos harness (tools/chaos.sh, tests/cluster) arms these
  // at the router layer; exact fired() counts are what its assertions
  // key on, so pin the arithmetic here.
  FaultInjector inj;
  inj.arm_spec("crash:route:2");
  EXPECT_EQ(inj.remaining("crash:route"), 2);
  EXPECT_THROW(inj.maybe_throw_resource("crash:route"), ResourceError);
  EXPECT_TRUE(inj.consume("crash:route"));
  EXPECT_FALSE(inj.consume("crash:route"));  // charges spent
  EXPECT_EQ(inj.fired("crash:route"), 2u);

  inj.arm_spec("freeze:shard");
  EXPECT_EQ(inj.remaining("freeze:shard"), 1);
  EXPECT_TRUE(inj.consume("freeze:shard"));
  EXPECT_FALSE(inj.consume("freeze:shard"));
  EXPECT_EQ(inj.fired("freeze:shard"), 1u);
  inj.arm_spec("freeze:shard:3");  // re-arm keeps the cumulative count
  inj.consume("freeze:shard");
  EXPECT_EQ(inj.fired("freeze:shard"), 2u);
  EXPECT_EQ(inj.remaining("freeze:shard"), 2);

  EXPECT_THROW(inj.arm_spec("freeze:router"), ConfigError);  // unknown target
  EXPECT_THROW(inj.arm_spec("crash:shard"), ConfigError);    // wrong kind pairing
  inj.disarm_all();
}

TEST(FaultInjector, BadSpecsAreRejected) {
  FaultInjector inj;
  EXPECT_THROW(inj.arm_spec("resource"), ConfigError);          // no target
  EXPECT_THROW(inj.arm_spec("resource:warp"), ConfigError);     // unknown target
  EXPECT_THROW(inj.arm_spec("explode:gpu"), ConfigError);       // unknown kind
  EXPECT_THROW(inj.arm_spec("resource:gpu:x"), ConfigError);    // bad count
  EXPECT_THROW(inj.arm_spec("resource:gpu:0"), ConfigError);    // zero count
  EXPECT_FALSE(inj.enabled());  // nothing was armed along the way
}

TEST(FaultInjector, BitFlipsAreDeterministicPerSeed) {
  std::vector<std::byte> a(64, std::byte{0}), b(64, std::byte{0}), c(64, std::byte{0});
  FaultInjector i1(7), i2(7), i3(8);
  const auto f1 = i1.flip_random_bits(a, 5);
  const auto f2 = i2.flip_random_bits(b, 5);
  const auto f3 = i3.flip_random_bits(c, 5);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(a, b);
  EXPECT_NE(f1, f3);  // different seed, different positions
  EXPECT_EQ(f1.size(), 5u);
}

TEST(FaultInjector, FlipBitTogglesExactlyOneBit) {
  std::vector<std::byte> bytes(4, std::byte{0});
  FaultInjector::flip_bit(bytes, 9);  // byte 1, bit 1
  EXPECT_EQ(bytes[1], std::byte{0x02});
  FaultInjector::flip_bit(bytes, 9);
  EXPECT_EQ(bytes[1], std::byte{0x00});
  EXPECT_THROW(FaultInjector::flip_bit(bytes, 32), ConfigError);
}

TEST(FaultInjector, GlobalInstanceIsShared) {
  FaultInjector::global().arm("resource:gpu", 1);
  EXPECT_TRUE(FaultInjector::global().armed("resource:gpu"));
  FaultInjector::global().disarm_all();
  EXPECT_FALSE(FaultInjector::global().armed("resource:gpu"));
}

TEST(FaultInjector, FiredCountsCumulativeFires) {
  FaultInjector inj;
  inj.arm("resource:gpu", 2);
  EXPECT_EQ(inj.fired("resource:gpu"), 0u);
  inj.consume("resource:gpu");
  inj.consume("resource:gpu");
  inj.consume("resource:gpu");  // spent: does not fire
  EXPECT_EQ(inj.fired("resource:gpu"), 2u);
  inj.arm("resource:gpu", 1);  // re-arm keeps the cumulative count
  inj.consume("resource:gpu");
  EXPECT_EQ(inj.fired("resource:gpu"), 3u);
  EXPECT_EQ(inj.fired("resource:fpga"), 0u);  // never armed
}

// The serving layer's workers hit injection sites concurrently: N armed
// charges must fire exactly N times total, with no lost or doubled
// charges, whatever the interleaving (run under TSan by tools/check.sh).
TEST(FaultInjector, ConcurrentConsumersFireExactlyCountTimes) {
  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 500;
  constexpr int kCharges = 1000;  // < kThreads * kAttemptsPerThread
  FaultInjector inj;
  inj.arm("resource:gpu", kCharges);

  std::vector<std::thread> pool;
  std::vector<int> fires(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&inj, &fires, t] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        if (inj.consume("resource:gpu")) ++fires[t];
      }
    });
  }
  for (std::thread& t : pool) t.join();

  int total = 0;
  for (int f : fires) total += f;
  EXPECT_EQ(total, kCharges);
  EXPECT_EQ(inj.fired("resource:gpu"), static_cast<std::uint64_t>(kCharges));
  EXPECT_EQ(inj.remaining("resource:gpu"), 0);
  EXPECT_FALSE(inj.enabled());
}

TEST(FaultInjector, ConcurrentConsumersOnInfiniteSiteAlwaysFire) {
  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 200;
  FaultInjector inj;
  inj.arm("resource:fpga", -1);

  std::atomic<int> fires{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        if (inj.consume("resource:fpga")) fires.fetch_add(1);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(fires.load(), kThreads * kAttemptsPerThread);
  EXPECT_TRUE(inj.enabled());
  inj.disarm_all();
}

TEST(FaultInjector, ConcurrentArmAndConsumeDoesNotRace) {
  // Structural churn (arm/disarm/queries) while workers consume: the
  // assertion here is simply "no crash, no TSan report".
  FaultInjector inj;
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 200; ++i) (void)inj.consume("resource:gpu");
    });
  }
  pool.emplace_back([&] {
    for (int i = 0; i < 100; ++i) {
      inj.arm("resource:gpu", 3);
      inj.arm("bitflip:layout", 1);
      (void)inj.remaining("resource:gpu");
      (void)inj.armed("bitflip:layout");
      inj.disarm("bitflip:layout");
    }
  });
  for (std::thread& t : pool) t.join();
  inj.disarm_all();
  EXPECT_FALSE(inj.enabled());
}

}  // namespace
}  // namespace hrf
