#include "util/math.hpp"

#include <gtest/gtest.h>

namespace hrf {
namespace {

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 1), 1u);
}

TEST(CeilDiv, IsConstexpr) {
  static_assert(ceil_div(7, 2) == 4);
}

TEST(Ilog2, PowersOfTwo) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(1024), 10);
}

TEST(Ilog2, FloorsNonPowers) {
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1025), 10);
}

TEST(Pow2, Values) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(32), 1ull << 32);
}

TEST(CompleteTreeNodes, MatchesFormula) {
  EXPECT_EQ(complete_tree_nodes(1), 1u);   // single root
  EXPECT_EQ(complete_tree_nodes(3), 7u);   // Fig. 3's subtree 0
  EXPECT_EQ(complete_tree_nodes(10), 1023u);
}

TEST(AlignUp, AlreadyAligned) {
  EXPECT_EQ(align_up(256, 256), 256u);
  EXPECT_EQ(align_up(0, 256), 0u);
}

TEST(AlignUp, RoundsUp) {
  EXPECT_EQ(align_up(1, 256), 256u);
  EXPECT_EQ(align_up(257, 256), 512u);
}

TEST(SlotArithmetic, ChildrenOfCompleteTreeSlots) {
  // The layout's core identity: children of slot n are 2n+1 and 2n+2,
  // and the level of slot p is ilog2(p+1).
  for (std::uint64_t p = 0; p < 1000; ++p) {
    const std::uint64_t left = 2 * p + 1;
    EXPECT_EQ(ilog2(left + 1), ilog2(p + 1) + 1);
    EXPECT_EQ(ilog2(left + 2), ilog2(p + 1) + 1);
  }
}

}  // namespace
}  // namespace hrf
