#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hrf::trace {
namespace {

// --- Sampling ------------------------------------------------------------

TEST(Tracer, ZeroSamplingRecordsNothing) {
  Tracer tracer({0.0, 16});
  for (int i = 0; i < 10; ++i) {
    Span s = tracer.start_trace("request");
    EXPECT_FALSE(s.active());
    s.set_attr("ignored", std::uint64_t{1});  // no-ops must be safe
    Span c = s.child("never");
    EXPECT_FALSE(c.active());
  }
  const TracerSummary sum = tracer.summary();
  EXPECT_EQ(sum.started, 10u);
  EXPECT_EQ(sum.sampled, 0u);
  EXPECT_EQ(sum.retained, 0u);
}

TEST(Tracer, FullSamplingRecordsEverything) {
  Tracer tracer({1.0, 16});
  for (int i = 0; i < 5; ++i) {
    Span s = tracer.start_trace("request");
    EXPECT_TRUE(s.active());
  }
  const TracerSummary sum = tracer.summary();
  EXPECT_EQ(sum.started, 5u);
  EXPECT_EQ(sum.sampled, 5u);
  EXPECT_EQ(sum.completed, 5u);  // destructor ended each root
  EXPECT_EQ(sum.retained, 5u);
}

TEST(Tracer, FractionalSamplingIsDeterministic) {
  // Counter-based sampler: rate 0.25 over 100 traces records exactly 25,
  // and the pattern is identical run to run (no RNG).
  Tracer tracer({0.25, 128});
  std::vector<bool> pattern;
  for (int i = 0; i < 100; ++i) pattern.push_back(tracer.start_trace("t").active());
  EXPECT_EQ(tracer.summary().sampled, 25u);

  Tracer again({0.25, 128});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(again.start_trace("t").active(), pattern[static_cast<std::size_t>(i)]) << i;
  }
}

// --- Span tree structure -------------------------------------------------

TEST(Span, ParentChildLinksAndAttributes) {
  Tracer tracer({1.0, 4});
  {
    Span root = tracer.start_trace("request");
    root.set_attr("queries", std::uint64_t{256});
    Span queue = root.child("queue");
    queue.set_attr("seconds", 0.5);
    queue.end();
    Span exec = root.child("execute");
    Span chunk = exec.child("chunk-0");
    chunk.set_attr("ok", true);
    chunk.end();
    exec.end();
    root.end();
  }
  const auto traces = tracer.traces();
  ASSERT_EQ(traces.size(), 1u);
  const Trace& t = *traces[0];
  ASSERT_EQ(t.spans.size(), 4u);

  const SpanData& root = t.spans[0];
  EXPECT_EQ(root.name, "request");
  EXPECT_EQ(root.parent_id, 0u);
  ASSERT_EQ(root.attributes.size(), 1u);
  EXPECT_EQ(root.attributes[0].first, "queries");
  EXPECT_EQ(root.attributes[0].second, "256");

  EXPECT_EQ(t.spans[1].name, "queue");
  EXPECT_EQ(t.spans[1].parent_id, root.id);
  EXPECT_EQ(t.spans[2].name, "execute");
  EXPECT_EQ(t.spans[2].parent_id, root.id);
  EXPECT_EQ(t.spans[3].name, "chunk-0");
  EXPECT_EQ(t.spans[3].parent_id, t.spans[2].id);
  EXPECT_EQ(t.spans[3].attributes[0].second, "true");
}

TEST(Span, EndIsIdempotentAndTimestampsAreMonotonic) {
  Tracer tracer({1.0, 4});
  Span root = tracer.start_trace("r");
  Span child = root.child("c");
  child.end();
  child.end();  // second end must not move the timestamp
  root.end();
  const auto traces = tracer.traces();
  ASSERT_EQ(traces.size(), 1u);
  const Trace& t = *traces[0];
  EXPECT_GE(t.spans[1].start_ns, t.spans[0].start_ns);
  EXPECT_GE(t.spans[1].end_ns, t.spans[1].start_ns);
  EXPECT_GE(t.spans[0].end_ns, t.spans[1].end_ns);
}

TEST(Span, RootEndClosesOpenChildren) {
  Tracer tracer({1.0, 4});
  Span root = tracer.start_trace("r");
  Span child = root.child("left-open");
  root.end();  // retires the trace; the open child gets stamped
  const auto traces = tracer.traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_GT(traces[0]->spans[1].end_ns, 0u);
  // A child handle outliving the finished trace must be inert.
  child.set_attr("late", std::uint64_t{1});
  child.end();
  EXPECT_FALSE(root.child("after-finish").active());
}

TEST(Span, MoveTransfersOwnership) {
  Tracer tracer({1.0, 4});
  Span root = tracer.start_trace("r");
  Span moved = std::move(root);
  EXPECT_FALSE(root.active());  // NOLINT(bugprone-use-after-move): testing the contract
  EXPECT_TRUE(moved.active());
  moved.end();
  EXPECT_EQ(tracer.summary().completed, 1u);
}

// --- Retention ring ------------------------------------------------------

TEST(Tracer, RingEvictsOldestBeyondCapacity) {
  Tracer tracer({1.0, 3});
  for (int i = 0; i < 8; ++i) tracer.start_trace("t").end();
  const TracerSummary sum = tracer.summary();
  EXPECT_EQ(sum.completed, 8u);
  EXPECT_EQ(sum.evicted, 5u);
  EXPECT_EQ(sum.retained, 3u);
  const auto traces = tracer.traces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_LT(traces[0]->id, traces[2]->id);  // oldest first, newest kept
}

TEST(Tracer, SlowestSortsByDuration) {
  Tracer tracer({1.0, 8});
  const auto spin_ns = [](std::uint64_t ns) {
    const auto until = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
    while (std::chrono::steady_clock::now() < until) {
    }
  };
  for (std::uint64_t i = 1; i <= 4; ++i) {
    Span s = tracer.start_trace("t");
    spin_ns(i * 200'000);
    s.end();
  }
  const auto top = tracer.slowest(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_GE(top[0]->duration_seconds(), top[1]->duration_seconds());
  const auto all = tracer.slowest(100);  // n beyond retained clamps
  EXPECT_EQ(all.size(), 4u);
  EXPECT_GE(all.front()->duration_seconds(), all.back()->duration_seconds());
}

TEST(Tracer, ClearDropsTracesButKeepsCounters) {
  Tracer tracer({1.0, 8});
  for (int i = 0; i < 3; ++i) tracer.start_trace("t").end();
  tracer.clear();
  EXPECT_EQ(tracer.summary().retained, 0u);
  EXPECT_EQ(tracer.summary().completed, 3u);
}

// --- Rendering -----------------------------------------------------------

TEST(Trace, ToStringRendersIndentedTreeWithAttrs) {
  Tracer tracer({1.0, 4});
  Span root = tracer.start_trace("request");
  root.set_attr("outcome", "completed");
  Span exec = root.child("execute");
  Span chunk = exec.child("chunk-0");
  chunk.set_attr("queries", std::uint64_t{64});
  chunk.end();
  exec.end();
  root.end();
  const std::string text = tracer.traces()[0]->to_string();
  EXPECT_NE(text.find("request"), std::string::npos);
  EXPECT_NE(text.find("outcome=completed"), std::string::npos);
  EXPECT_NE(text.find("  execute"), std::string::npos);
  EXPECT_NE(text.find("    chunk-0"), std::string::npos);
  EXPECT_NE(text.find("queries=64"), std::string::npos);
}

// --- Concurrency ---------------------------------------------------------

TEST(Tracer, ConcurrentSpanCreationAndExport) {
  // 8 threads each complete traces with children while a reader thread
  // exports concurrently; run under TSan via tools/check.sh.
  Tracer tracer({1.0, 32});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& t : tracer.slowest(4)) (void)t->to_string();
      (void)tracer.summary();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&tracer, w] {
      for (int i = 0; i < kPerThread; ++i) {
        Span root = tracer.start_trace("request");
        root.set_attr("thread", static_cast<std::uint64_t>(w));
        Span child = root.child("work");
        child.set_attr("i", static_cast<std::uint64_t>(i));
        child.end();
        root.end();
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  const TracerSummary sum = tracer.summary();
  EXPECT_EQ(sum.started, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(sum.completed, sum.sampled);
  EXPECT_EQ(sum.retained, 32u);
}

TEST(Tracer, CrossThreadSpansLandInOneTrace) {
  // The serving pattern: root opened on the client thread, children on a
  // worker thread.
  Tracer tracer({1.0, 4});
  Span root = tracer.start_trace("request");
  std::thread worker([&] {
    Span exec = root.child("execute");
    exec.set_attr("worker", std::uint64_t{0});
    exec.end();
  });
  worker.join();
  root.end();
  const auto traces = tracer.traces();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0]->spans.size(), 2u);
  EXPECT_EQ(traces[0]->spans[1].name, "execute");
}

}  // namespace
}  // namespace hrf::trace
