#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace hrf {
namespace {

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), ConfigError);
}

TEST(Table, MarkdownRendersHeaderSeparatorAndRows) {
  Table t({"a", "b"});
  t.row().cell("x").cell(std::int64_t{1});
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| a"), std::string::npos);
  EXPECT_NE(md.find("|--"), std::string::npos);
  EXPECT_NE(md.find("| x"), std::string::npos);
  EXPECT_NE(md.find("| 1"), std::string::npos);
}

TEST(Table, MarkdownAlignsColumnWidths) {
  Table t({"col", "x"});
  t.row().cell("longvalue").cell("1");
  const std::string md = t.markdown();
  // Header row and data row must have the same length (padded cells).
  const auto first_nl = md.find('\n');
  const auto header = md.substr(0, first_nl);
  const auto last_row_start = md.rfind("| longvalue");
  const auto last_row = md.substr(last_row_start, md.find('\n', last_row_start) - last_row_start);
  EXPECT_EQ(header.size(), last_row.size());
}

TEST(Table, DoubleCellUsesPrecision) {
  Table t({"v"});
  t.row().cell(3.14159, 2);
  EXPECT_NE(t.markdown().find("3.14"), std::string::npos);
  EXPECT_EQ(t.markdown().find("3.142"), std::string::npos);
}

TEST(Table, CellWithoutRowThrows) {
  Table t({"v"});
  EXPECT_THROW(t.cell("x"), ConfigError);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"v"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), ConfigError);
}

TEST(Table, IncompleteRowDetectedOnNextRow) {
  Table t({"a", "b"});
  t.row().cell("only one");
  EXPECT_THROW(t.row(), ConfigError);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"v"});
  t.row().cell("a,b");
  t.row().cell("say \"hi\"");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t({"a", "b"});
  t.row().cell(std::int64_t{1}).cell(std::int64_t{2});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.row().cell("1").cell("2").cell("3");
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, WriteCsvRoundTrips) {
  Table t({"x"});
  t.row().cell("val");
  const std::string path = testing::TempDir() + "/hrf_table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x");
  std::getline(f, line);
  EXPECT_EQ(line, "val");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvToBadPathThrows) {
  Table t({"x"});
  t.row().cell("v");
  EXPECT_THROW(t.write_csv("/nonexistent-dir-zz/file.csv"), Error);
}

}  // namespace
}  // namespace hrf
