#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/error.hpp"

namespace hrf {
namespace {

TEST(ConfusionMatrix, ValidatesInput) {
  const std::vector<std::uint8_t> p{0, 1};
  const std::vector<std::uint8_t> l{0};
  EXPECT_THROW(ConfusionMatrix(p, l, 2), ConfigError);
  const std::vector<std::uint8_t> bad{0, 5};
  const std::vector<std::uint8_t> ok{0, 1};
  EXPECT_THROW(ConfusionMatrix(bad, ok, 2), ConfigError);
  EXPECT_THROW(ConfusionMatrix(ok, ok, 1), ConfigError);
}

TEST(ConfusionMatrix, CountsCells) {
  //            pred: 0  1
  const std::vector<std::uint8_t> preds{0, 0, 1, 1, 1, 0};
  const std::vector<std::uint8_t> truth{0, 1, 1, 1, 0, 0};
  const ConfusionMatrix cm(preds, truth, 2);
  EXPECT_EQ(cm.total(), 6u);
  EXPECT_EQ(cm.at(0, 0), 2u);  // true 0 predicted 0
  EXPECT_EQ(cm.at(0, 1), 1u);
  EXPECT_EQ(cm.at(1, 0), 1u);
  EXPECT_EQ(cm.at(1, 1), 2u);
}

TEST(ConfusionMatrix, DerivedScores) {
  const std::vector<std::uint8_t> preds{0, 0, 1, 1, 1, 0};
  const std::vector<std::uint8_t> truth{0, 1, 1, 1, 0, 0};
  const ConfusionMatrix cm(preds, truth, 2);
  EXPECT_NEAR(cm.accuracy(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(cm.precision(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.recall(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.f1(1), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrix, PerfectPredictor) {
  const std::vector<std::uint8_t> labels{0, 1, 2, 1, 0, 2};
  const ConfusionMatrix cm(labels, labels, 3);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrix, NeverPredictedClassHasZeroPrecision) {
  const std::vector<std::uint8_t> preds{0, 0, 0};
  const std::vector<std::uint8_t> truth{0, 1, 2};
  const ConfusionMatrix cm(preds, truth, 3);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(1), 0.0);
  EXPECT_GT(cm.macro_f1(), 0.0);  // class 0 still contributes
}

TEST(ConfusionMatrix, MarkdownContainsScores) {
  const std::vector<std::uint8_t> labels{0, 1, 1, 0};
  const ConfusionMatrix cm(labels, labels, 2);
  const std::string md = cm.to_markdown();
  EXPECT_NE(md.find("precision"), std::string::npos);
  EXPECT_NE(md.find("accuracy 1"), std::string::npos);
}

TEST(CounterRegistry, CountsAndSnapshots) {
  CounterRegistry reg;
  EXPECT_EQ(reg.value("requests.completed"), 0u);  // untouched reads as 0
  reg.add("requests.completed");
  reg.add("requests.completed", 4);
  reg.add("requests.failed");
  EXPECT_EQ(reg.value("requests.completed"), 5u);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("requests.failed"), 1u);
  const std::string md = reg.to_markdown();
  EXPECT_NE(md.find("requests.completed"), std::string::npos);
  EXPECT_NE(md.find("5"), std::string::npos);
}

TEST(CounterRegistry, AddBatchAppliesEveryDelta) {
  CounterRegistry reg;
  reg.add("requests.completed", 2);
  reg.add_batch({{"requests.completed", 3}, {"requests.retried", 7}});
  reg.add_batch({});  // empty batch is a no-op
  EXPECT_EQ(reg.value("requests.completed"), 5u);
  EXPECT_EQ(reg.value("requests.retried"), 7u);
  EXPECT_EQ(reg.snapshot().size(), 2u);
}

TEST(CounterRegistry, ConcurrentBatchesLoseNothing) {
  // The serving hot path accumulates per-request deltas locally and flushes
  // them with one add_batch; interleaved batches must still sum exactly.
  constexpr int kThreads = 8;
  constexpr int kBatchesPerThread = 1000;
  CounterRegistry reg;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kBatchesPerThread; ++i) {
        reg.add_batch({{"requests.completed", 1}, {"requests.retried", 2}});
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.value("requests.completed"),
            static_cast<std::uint64_t>(kThreads * kBatchesPerThread));
  EXPECT_EQ(reg.value("requests.retried"),
            static_cast<std::uint64_t>(kThreads * kBatchesPerThread * 2));
}

TEST(CounterRegistry, ConcurrentAddsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 2000;
  CounterRegistry reg;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kAddsPerThread; ++i) reg.add("shared");
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.value("shared"), static_cast<std::uint64_t>(kThreads * kAddsPerThread));
}

}  // namespace
}  // namespace hrf
