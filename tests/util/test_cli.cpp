#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace hrf {
namespace {

CliArgs parse(std::vector<const char*> argv) {
  return CliArgs(static_cast<int>(argv.size()), const_cast<char**>(argv.data()));
}

TEST(CliArgs, ParsesKeyValuePairs) {
  auto args = parse({"prog", "--depth", "20", "--name", "susy"});
  EXPECT_EQ(args.get_int("depth", 0), 20);
  EXPECT_EQ(args.get("name", ""), "susy");
}

TEST(CliArgs, ParsesEqualsSyntax) {
  auto args = parse({"prog", "--depth=25"});
  EXPECT_EQ(args.get_int("depth", 0), 25);
}

TEST(CliArgs, BareFlagIsTruthy) {
  auto args = parse({"prog", "--verbose"});
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_FALSE(args.get_flag("quiet"));
}

TEST(CliArgs, FallbacksApplyWhenAbsent) {
  auto args = parse({"prog"});
  EXPECT_EQ(args.get_int("depth", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0.5), 0.5);
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
}

TEST(CliArgs, ParsesDoubles) {
  auto args = parse({"prog", "--scale", "0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.25);
}

TEST(CliArgs, RejectsNonNumericInt) {
  auto args = parse({"prog", "--depth", "abc"});
  EXPECT_THROW(args.get_int("depth", 0), ConfigError);
}

TEST(CliArgs, RejectsNonNumericDouble) {
  auto args = parse({"prog", "--scale", "zz"});
  EXPECT_THROW(args.get_double("scale", 0), ConfigError);
}

TEST(CliArgs, RejectsPositionalArguments) {
  EXPECT_THROW(parse({"prog", "positional"}), ConfigError);
}

TEST(CliArgs, ParsesIntLists) {
  auto args = parse({"prog", "--depths", "15,20,25"});
  EXPECT_EQ(args.get_int_list("depths", {}), (std::vector<int>{15, 20, 25}));
}

TEST(CliArgs, IntListFallback) {
  auto args = parse({"prog"});
  EXPECT_EQ(args.get_int_list("depths", {4, 6}), (std::vector<int>{4, 6}));
}

TEST(CliArgs, EmptyIntListThrows) {
  auto args = parse({"prog", "--depths", ","});
  EXPECT_THROW(args.get_int_list("depths", {}), ConfigError);
}

TEST(CliArgs, ValidateAcceptsAllowedKeys) {
  auto args = parse({"prog", "--depth", "5"});
  args.allow("depth", "tree depth");
  EXPECT_TRUE(args.validate());
}

TEST(CliArgs, ValidateRejectsUnknownKeys) {
  auto args = parse({"prog", "--tpyo", "5"});
  args.allow("typo", "correctly spelled");
  EXPECT_FALSE(args.validate());
}

TEST(CliArgs, HelpShortCircuitsValidation) {
  auto args = parse({"prog", "--help"});
  EXPECT_FALSE(args.validate());
}

TEST(CliArgs, NegativeNumbersAreValuesNotFlags) {
  // "--delta -3" would read -3 as a flag start; equals syntax must work.
  auto args = parse({"prog", "--delta=-3"});
  EXPECT_EQ(args.get_int("delta", 0), -3);
}

}  // namespace
}  // namespace hrf
