#include "util/json.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.hpp"

namespace hrf::json {
namespace {

TEST(Json, BuildsAndDumpsCompact) {
  Value root = Value::object();
  root["name"] = "hrf";
  root["version"] = 1;
  root["ok"] = true;
  root["nothing"] = Value();
  Value arr = Value::array();
  arr.push_back(1.5);
  arr.push_back("two");
  root["items"] = std::move(arr);
  EXPECT_EQ(root.dump(),
            R"({"name":"hrf","version":1,"ok":true,"nothing":null,"items":[1.5,"two"]})");
}

TEST(Json, IntegersPrintWithoutFraction) {
  Value v = Value(1234567890.0);
  EXPECT_EQ(v.dump(), "1234567890");
  EXPECT_EQ(Value(0.25).dump(), "0.25");
}

TEST(Json, PrettyPrintIndents) {
  Value root = Value::object();
  root["a"] = 1;
  const std::string pretty = root.dump(2);
  EXPECT_NE(pretty.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(Json, ParsesRoundTrip) {
  const std::string text =
      R"({"s":"a\"b\\c\nd","n":-1.25e2,"t":true,"f":false,"z":null,"arr":[1,2,3],"obj":{"k":"v"}})";
  const Value v = Value::parse(text);
  EXPECT_EQ(v.get("s").as_string(), "a\"b\\c\nd");
  EXPECT_EQ(v.get("n").as_number(), -125.0);
  EXPECT_TRUE(v.get("t").as_bool());
  EXPECT_FALSE(v.get("f").as_bool());
  EXPECT_TRUE(v.get("z").is_null());
  EXPECT_EQ(v.get("arr").size(), 3u);
  EXPECT_EQ(v.get("arr").at(2).as_number(), 3.0);
  EXPECT_EQ(v.get("obj").get("k").as_string(), "v");
  // Dump -> parse -> dump is a fixed point.
  EXPECT_EQ(Value::parse(v.dump()).dump(), v.dump());
}

TEST(Json, ParsesWhitespaceAndNesting) {
  const Value v = Value::parse("  [ { \"a\" : [ [ ] , { } ] } ]  ");
  EXPECT_TRUE(v.is_array());
  EXPECT_EQ(v.at(0).get("a").size(), 2u);
}

TEST(Json, ControlCharactersRoundTripViaEscapes) {
  Value v = Value(std::string("tab\tnl\nctl\x01"));
  const std::string dumped = v.dump();
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
  EXPECT_EQ(Value::parse(dumped).as_string(), v.as_string());
}

TEST(Json, MissingRequiredKeyThrows) {
  const Value v = Value::parse(R"({"present":1})");
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW(v.get("absent"), FormatError);
}

TEST(Json, TypeMismatchThrows) {
  const Value v = Value::parse(R"({"n":1})");
  EXPECT_THROW(v.get("n").as_string(), FormatError);
  EXPECT_THROW(v.get("n").as_bool(), FormatError);
  EXPECT_THROW(v.at(0), FormatError);
}

TEST(Json, MalformedInputThrows) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
                          "{\"a\":1} trailing", "{'single':1}", "[1 2]"}) {
    EXPECT_THROW(Value::parse(bad), FormatError) << "input: " << bad;
  }
}

TEST(Json, NonFiniteNumbersRefuseToSerialize) {
  EXPECT_THROW(Value(std::numeric_limits<double>::infinity()).dump(), FormatError);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Value v = Value::object();
  v["z"] = 1;
  v["a"] = 2;
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
}

}  // namespace
}  // namespace hrf::json
