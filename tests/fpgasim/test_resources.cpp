#include "fpgasim/resources.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hrf::fpgasim {
namespace {

HierConfig layout_sd(int sd, int rsd = 0) {
  HierConfig cfg;
  cfg.subtree_depth = sd;
  cfg.root_subtree_depth = rsd;
  return cfg;
}

TEST(Resources, PaperPlacementsAreReproduced) {
  // §4.4: independent and hybrid close timing at 4 SLRs x 12 CUs and
  // 300 MHz; the split hybrid fits only 10 stage-2 CUs per SLR next to
  // its stage-1 CU and drops to 245 MHz.
  const HierConfig layout = layout_sd(10);
  const auto indep12 = check_placement(FpgaKernelKind::Independent, 12, layout);
  EXPECT_TRUE(indep12.fits);
  EXPECT_DOUBLE_EQ(indep12.clock_mhz, 300.0);

  const auto hybrid12 = check_placement(FpgaKernelKind::Hybrid, 12, layout);
  EXPECT_TRUE(hybrid12.fits);
  EXPECT_DOUBLE_EQ(hybrid12.clock_mhz, 300.0);

  EXPECT_EQ(max_cus_per_slr(FpgaKernelKind::HybridSplitStage2, layout,
                            SlrBudget::alveo_u250_slr(), /*add_split_stage1=*/true),
            10);
  const auto split10 = check_placement(FpgaKernelKind::HybridSplitStage2, 10, layout,
                                       SlrBudget::alveo_u250_slr(), true);
  EXPECT_TRUE(split10.fits);
  EXPECT_LT(split10.clock_mhz, 300.0);  // congestion derate, paper: 245 MHz
  EXPECT_NEAR(split10.clock_mhz, 245.0, 20.0);
}

TEST(Resources, SplitStage2DoesNotFitTwelve) {
  const HierConfig layout = layout_sd(10);
  EXPECT_FALSE(check_placement(FpgaKernelKind::HybridSplitStage2, 12, layout,
                               SlrBudget::alveo_u250_slr(), true)
                   .fits);
  EXPECT_FALSE(check_placement(FpgaKernelKind::HybridSplitStage2, 11, layout,
                               SlrBudget::alveo_u250_slr(), true)
                   .fits);
}

TEST(Resources, BiggerRootSubtreeCostsMoreMemoryBlocks) {
  const auto small = estimate_cu_resources(FpgaKernelKind::Hybrid, layout_sd(8, 8));
  const auto big = estimate_cu_resources(FpgaKernelKind::Hybrid, layout_sd(8, 14));
  EXPECT_GT(big.urams + big.bram36, small.urams + small.bram36);
}

TEST(Resources, CollaborativeBuffersScaleWithSubtreeDepth) {
  const auto sd4 = estimate_cu_resources(FpgaKernelKind::Collaborative, layout_sd(4));
  const auto sd14 = estimate_cu_resources(FpgaKernelKind::Collaborative, layout_sd(14));
  EXPECT_GT(sd14.urams + sd14.bram36, sd4.urams + sd4.bram36);
}

TEST(Resources, HugeRootSubtreeExhaustsUram) {
  // RSD 24 needs (2^24 - 1) * 8 B = 134 MB of on-chip buffer: impossible.
  const auto report =
      check_placement(FpgaKernelKind::Hybrid, 1, layout_sd(8, 24));
  EXPECT_FALSE(report.fits);
}

TEST(Resources, UsageAccumulates) {
  ResourceUsage a{1, 2, 3, 4, 5};
  const ResourceUsage b{10, 20, 30, 40, 50};
  a += b;
  EXPECT_EQ(a.luts, 11u);
  EXPECT_EQ(a.dsps, 55u);
}

TEST(Resources, PlacementValidatesInput) {
  EXPECT_THROW(check_placement(FpgaKernelKind::Csr, 0, layout_sd(4)), hrf::ConfigError);
}

TEST(Resources, MaxCusIsMonotoneInCuSize) {
  // The CSR CU is smaller than the split stage-2 CU, so more of them fit.
  const HierConfig layout = layout_sd(8);
  EXPECT_GE(max_cus_per_slr(FpgaKernelKind::Csr, layout),
            max_cus_per_slr(FpgaKernelKind::HybridSplitStage2, layout));
}

TEST(Resources, KindNamesAreStable) {
  EXPECT_STREQ(to_string(FpgaKernelKind::Independent), "independent");
  EXPECT_STREQ(to_string(FpgaKernelKind::HybridSplitStage1), "hybrid-split-stage1");
}

TEST(Resources, DetailStringMentionsFit) {
  const auto ok = check_placement(FpgaKernelKind::Independent, 2, layout_sd(6));
  EXPECT_NE(ok.detail.find("fits"), std::string::npos);
}

}  // namespace
}  // namespace hrf::fpgasim
