#include "fpgasim/pipeline.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace hrf::fpgasim {
namespace {

StageModel simple_stage(double ii, std::uint64_t iters) {
  StageModel s;
  s.name = "s";
  s.ii = ii;
  s.pipeline_depth = 10;
  s.iterations = iters;
  return s;
}

TEST(FpgaPipeline, ValidatesLayout) {
  const FpgaConfig cfg;
  EXPECT_THROW(evaluate(cfg, CuLayout{5, 1, 300.0}, {simple_stage(1, 10)}, "1"),
               hrf::ConfigError);
  EXPECT_THROW(evaluate(cfg, CuLayout{1, 0, 300.0}, {simple_stage(1, 10)}, "1"),
               hrf::ConfigError);
  EXPECT_THROW(evaluate(cfg, CuLayout{}, {}, "1"), hrf::ConfigError);
  EXPECT_THROW(evaluate(cfg, CuLayout{}, {simple_stage(0, 10)}, "0"), hrf::ConfigError);
}

TEST(FpgaPipeline, PipelineBoundCyclesFollowTheIiFormula) {
  const FpgaConfig cfg;
  const auto r = evaluate(cfg, CuLayout{}, {simple_stage(76, 1'000'000)}, "76");
  // depth + II * iters, inflated by the base stall only.
  const double expected = (10 + 76.0 * 1e6) / (1.0 - cfg.base_stall) / 300e6;
  EXPECT_NEAR(r.seconds, expected, expected * 1e-9);
  EXPECT_EQ(r.limiter, "pipeline");
  EXPECT_NEAR(r.stall_pct, cfg.base_stall * 100.0, 0.01);
}

TEST(FpgaPipeline, ReportEchoesMetadata) {
  const FpgaConfig cfg;
  const auto r = evaluate(cfg, CuLayout{2, 3, 250.0}, {simple_stage(3, 100)}, "3/76");
  EXPECT_EQ(r.ii_desc, "3/76");
  EXPECT_DOUBLE_EQ(r.clock_mhz, 250.0);
  ASSERT_EQ(r.stage_names.size(), 1u);
  EXPECT_EQ(r.stage_names[0], "s");
}

TEST(FpgaPipeline, ReplicationDividesPipelineTime) {
  const FpgaConfig cfg;
  const auto one = evaluate(cfg, CuLayout{1, 1, 300.0}, {simple_stage(76, 48'000'000)}, "76");
  const auto rep = evaluate(cfg, CuLayout{4, 12, 300.0}, {simple_stage(76, 48'000'000)}, "76");
  EXPECT_NEAR(one.seconds / rep.seconds, 48.0, 0.5);
}

TEST(FpgaPipeline, NonReplicatedStageOnlySplitsAcrossSlrs) {
  const FpgaConfig cfg;
  StageModel s = simple_stage(3, 48'000'000);
  s.replicate_within_slr = false;
  const auto one = evaluate(cfg, CuLayout{1, 1, 300.0}, {s}, "3");
  const auto rep = evaluate(cfg, CuLayout{4, 12, 300.0}, {s}, "3");
  EXPECT_NEAR(one.seconds / rep.seconds, 4.0, 0.1);
}

TEST(FpgaPipeline, RandomAccessesCanDominate) {
  const FpgaConfig cfg;
  StageModel s = simple_stage(3, 1'000'000);
  s.random_accesses = 2'000'000;  // 2 per iteration at II 3: heavy demand
  const auto r = evaluate(cfg, CuLayout{}, {s}, "3");
  EXPECT_EQ(r.limiter, "memory");
  EXPECT_GT(r.stall_pct, 60.0);
  const auto light = evaluate(cfg, CuLayout{}, {simple_stage(3, 1'000'000)}, "3");
  EXPECT_GT(r.seconds, 5.0 * light.seconds);
}

TEST(FpgaPipeline, GentleRandomTrafficHidesUnderPipeline) {
  const FpgaConfig cfg;
  StageModel s = simple_stage(292, 1'000'000);
  s.random_accesses = 5'000'000;  // 5 per iteration at II 292: easily hidden
  const auto r = evaluate(cfg, CuLayout{}, {s}, "292");
  EXPECT_EQ(r.limiter, "pipeline");
  EXPECT_NEAR(r.stall_pct, cfg.base_stall * 100.0, 0.1);
}

TEST(FpgaPipeline, BurstTrafficUsesFullBandwidth) {
  const FpgaConfig cfg;
  StageModel s = simple_stage(1, 1000);
  s.burst_accesses = 64'000'000;  // 4 GB of bursts
  const auto r = evaluate(cfg, CuLayout{}, {s}, "1");
  // 64e6 bursts * 64 B / 19.2 GB/s ~= 0.213 s, plus base stall.
  const double expected = 64e6 * 64 / 19.2e9 / (1.0 - cfg.base_stall);
  EXPECT_NEAR(r.seconds, expected, expected * 0.01);
}

TEST(FpgaPipeline, StagesAccumulateSequentially) {
  const FpgaConfig cfg;
  const auto a = evaluate(cfg, CuLayout{}, {simple_stage(3, 1000)}, "3");
  const auto b =
      evaluate(cfg, CuLayout{}, {simple_stage(3, 1000), simple_stage(76, 1000)}, "3/76");
  EXPECT_GT(b.seconds, a.seconds);
  EXPECT_EQ(b.stage_names.size(), 2u);
}

TEST(FpgaPipeline, LowerClockIsSlower) {
  const FpgaConfig cfg;
  const auto fast = evaluate(cfg, CuLayout{1, 1, 300.0}, {simple_stage(76, 1'000'000)}, "76");
  const auto slow = evaluate(cfg, CuLayout{1, 1, 245.0}, {simple_stage(76, 1'000'000)}, "76");
  EXPECT_NEAR(slow.seconds / fast.seconds, 300.0 / 245.0, 1e-6);
}

TEST(FpgaPipeline, SoloCuGetsDeeperOutstandingQueue) {
  // A single CU that owns its channel services random reads faster per CU
  // than one of twelve contending CUs.
  const FpgaConfig cfg;
  StageModel s = simple_stage(3, 10'000'000);
  s.random_accesses = 10'000'000;
  const auto solo = evaluate(cfg, CuLayout{1, 1, 300.0}, {s}, "3");
  // Same per-CU work with 12 CUs: 12x the total work on one SLR.
  StageModel s12 = s;
  s12.iterations *= 12;
  s12.random_accesses *= 12;
  const auto twelve = evaluate(cfg, CuLayout{1, 12, 300.0}, {s12}, "3");
  // Not 12x worse: the channel aggregates outstanding requests.
  EXPECT_LT(twelve.seconds, 12.0 * solo.seconds);
  EXPECT_GT(twelve.seconds, solo.seconds);
}

TEST(FpgaConfig, AlveoPresetMatchesPaperNumbers) {
  const FpgaConfig cfg = FpgaConfig::alveo_u250();
  EXPECT_EQ(cfg.num_slrs, 4);
  EXPECT_DOUBLE_EQ(cfg.clock_mhz, 300.0);
  EXPECT_NEAR(cfg.channel_gbps * 4, 76.8, 0.1);  // ~77 GB/s total (§4.5)
  EXPECT_EQ(cfg.onchip_bytes_per_slr, 13'500'000u);  // 13.5 MB per SLR (§2.3)
  EXPECT_NEAR(cfg.burst_bytes_per_cycle(), 64.0, 1e-9);
}

}  // namespace
}  // namespace hrf::fpgasim
