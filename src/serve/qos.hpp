#pragma once

// Multi-tenant quality of service for the serving layer (docs/cluster.md).
//
// Two mechanisms, two layers:
//
//   TenantQuotas     per-server admission quotas: the bounded request queue
//                    is carved into reserved per-tenant shares (weighted
//                    max-min over the configured weights) plus a shared
//                    spare pool. A tenant that exceeds its share is shed
//                    with QuotaError *before* it can displace a single
//                    queued request from a well-behaved tenant — victim
//                    protection is structural, not reactive.
//
//   AdaptiveLimiter  router-level AIMD concurrency limiting: the in-flight
//                    request ceiling grows additively (+1 per healthy
//                    epoch) and shrinks multiplicatively when the observed
//                    epoch p95 breaches the target or a deadline expires,
//                    so the fleet backs off *before* shard queues saturate
//                    instead of after timeouts cascade.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hrf::serve {

/// One configured tenant: a stable name and a relative weight.
struct TenantQuota {
  std::string name;
  double weight = 1.0;
};

struct TenantQuotaOptions {
  /// Tenants with reserved queue shares. Empty = quotas disabled (every
  /// request competes for the whole queue, PR-2 behavior). Tenants not
  /// listed here — including the anonymous "" tenant — are admitted from
  /// the spare pool only.
  std::vector<TenantQuota> tenants;

  bool enabled() const { return !tenants.empty(); }
};

/// Point-in-time accounting for one tenant (configured or first-seen).
struct TenantCounters {
  std::string name;
  double weight = 0.0;        // 0 for unconfigured tenants
  std::size_t reserved = 0;   // queue slots reserved for this tenant
  std::size_t queued = 0;     // slots currently held (reserved + spare)
  std::uint64_t admitted = 0; // requests admitted, cumulative
  std::uint64_t shed = 0;     // quota rejections, cumulative
};

/// Weighted max-min sharing of a bounded queue's capacity.
///
/// Each configured tenant t reserves floor(capacity * w_t / sum(w)) slots;
/// the remainder is a spare pool any tenant (known or not) may draw from
/// first-come-first-served. Acquire takes a reserved slot when one is
/// free, else a spare slot, else fails — so a surging tenant can consume
/// at most (its reservation + the whole spare pool) and can never starve
/// another tenant's reservation.
///
/// NOT internally synchronized: the owner (ForestServer) already holds its
/// queue mutex across admission and dequeue, and quota state must stay
/// consistent with the queue it meters, so it shares that lock.
class TenantQuotas {
 public:
  /// Throws ConfigError on duplicate names, empty names, or non-positive
  /// weights.
  TenantQuotas(const TenantQuotaOptions& options, std::size_t queue_capacity);

  /// Takes one queue slot for `tenant`: its reserved share first, then
  /// the spare pool. Returns false (and counts a shed) when both are
  /// exhausted — the caller throws QuotaError without enqueueing.
  bool try_acquire(const std::string& tenant);

  /// Returns the slot taken by the oldest outstanding acquire for
  /// `tenant` (spare first while the tenant holds spare slots, keeping
  /// reserved occupancy maximal). Called at dequeue and at shutdown
  /// queue-clear, under the same lock as try_acquire.
  void release(const std::string& tenant);

  std::size_t reserved_slots(const std::string& tenant) const;
  std::size_t spare_capacity() const { return spare_capacity_; }
  std::size_t spare_in_use() const { return spare_in_use_; }

  /// One row per tenant ever seen (configured first, then first-seen
  /// order for unknowns), suitable for MetricsSnapshot::tenants.
  std::vector<TenantCounters> snapshot() const;

 private:
  struct Entry {
    double weight = 0.0;
    std::size_t reserved = 0;
    std::size_t queued = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
  };

  Entry& entry(const std::string& tenant);

  std::size_t spare_capacity_ = 0;
  std::size_t spare_in_use_ = 0;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;  // configured then first-seen
};

struct AdaptiveLimitOptions {
  bool enabled = false;
  std::size_t initial_limit = 32;
  std::size_t min_limit = 2;
  std::size_t max_limit = 4096;
  /// Epoch p95 above this backs the limit off multiplicatively.
  double target_p95_seconds = 0.05;
  /// Multiplicative-decrease factor, applied on breach or deadline.
  double decrease_factor = 0.7;
  /// Completed requests per AIMD evaluation epoch.
  std::size_t epoch_samples = 32;
};

/// AIMD concurrency limiter. Thread-safe; one mutex guards the limit,
/// the in-flight count, and the epoch's latency samples (all cheap next
/// to the classifications being limited).
class AdaptiveLimiter {
 public:
  explicit AdaptiveLimiter(const AdaptiveLimitOptions& options);

  /// Admission: true reserves one in-flight slot; false means the caller
  /// must reject (the limit is reached).
  bool try_acquire();

  /// Completes an admitted request. `seconds` is the observed end-to-end
  /// latency; `deadline_expired` triggers an immediate multiplicative
  /// decrease (a timeout is the strongest congestion signal there is).
  void release(double seconds, bool deadline_expired);

  std::size_t limit() const;
  std::size_t in_flight() const;
  std::uint64_t increases() const;
  std::uint64_t decreases() const;

  const AdaptiveLimitOptions& options() const { return options_; }

 private:
  void decrease_locked();

  AdaptiveLimitOptions options_;
  mutable std::mutex mu_;
  std::size_t limit_;
  std::size_t in_flight_ = 0;
  std::vector<double> epoch_;
  std::uint64_t increases_ = 0;
  std::uint64_t decreases_ = 0;
};

}  // namespace hrf::serve
