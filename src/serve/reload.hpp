#pragma once

// Zero-downtime model reload: options, outcomes, and the per-reload
// report (docs/model-lifecycle.md). The reload state machine itself is
// implemented by ForestServer (serve/reload.cpp) over the versioned
// ModelStore (serve/model_store.hpp):
//
//   load -> validate -> shadow -> build -> canary -> promote -> watch
//
// Any failing phase rejects (before promotion) or rolls back (after),
// and the previous generation keeps serving throughout — in-flight
// requests always finish on the model they started on, and a request
// never observes a half-loaded forest (per-worker replicas swap via a
// mutex-guarded shared-pointer flip between requests).

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace hrf::serve {

struct ReloadOptions {
  /// Shadow validation: the candidate's predictions on a probe set must
  /// match the CPU reference oracle (Forest::classify_batch) exactly.
  /// `probe` supplies a held-out probe set; when null, a deterministic
  /// synthetic probe of `shadow_queries` rows (seed `shadow_seed`) is
  /// generated against the candidate's feature count.
  bool shadow_validation = true;
  std::size_t shadow_queries = 128;
  const Dataset* probe = nullptr;
  std::uint64_t shadow_seed = 1234;

  /// Staged rollout: the candidate is installed on worker 0 first and
  /// must complete this many requests with zero primary errors before
  /// the remaining workers flip. 0 skips the canary stage (immediate
  /// full promotion). No traffic within the timeout = rollback (a model
  /// that cannot demonstrate health is not promoted).
  std::uint64_t canary_success_requests = 4;
  double canary_timeout_seconds = 5.0;

  /// Post-promotion watch: after all workers flip, observe this many
  /// completed requests; `post_promotion_error_threshold` primary errors
  /// (or any circuit-breaker trip) within the window reverts every
  /// worker to the previous generation. 0 skips the watch. A quiet
  /// timeout (not enough traffic) counts as success — unlike the
  /// canary, the promotion already happened and silence is not failure.
  std::uint64_t post_promotion_watch_requests = 0;
  std::uint64_t post_promotion_error_threshold = 3;
  double post_promotion_timeout_seconds = 5.0;
};

enum class ReloadOutcome {
  Promoted,                 // candidate now serving on every worker
  NoOp,                     // already on the requested generation
  RejectedLoad,             // store/blob damage (CRC, framing, missing)
  RejectedValidation,       // candidate incompatible with serve config
  RejectedShadow,           // predictions diverge from the CPU oracle
  RolledBackCanary,         // canary worker errored or never proved health
  RolledBackPostPromotion,  // error spike / breaker trip after full flip
};

const char* to_string(ReloadOutcome outcome);

/// One timed phase of a reload attempt.
struct ReloadPhase {
  std::string name;
  double seconds = 0.0;
};

/// Everything one reload attempt did, kept in ForestServer's reload
/// history and printed by the CLI lifecycle demo.
struct ReloadReport {
  std::uint64_t from_generation = 0;
  std::uint64_t to_generation = 0;
  ReloadOutcome outcome = ReloadOutcome::NoOp;
  /// Human-readable cause for any non-Promoted outcome (validation
  /// error text, shadow mismatch counts, canary/watch trigger).
  std::string reason;
  std::vector<ReloadPhase> phases;  // in execution order
  std::size_t shadow_queries = 0;
  std::size_t shadow_mismatches = 0;
  double total_seconds = 0.0;

  bool promoted() const { return outcome == ReloadOutcome::Promoted; }
  bool rolled_back() const {
    return outcome == ReloadOutcome::RolledBackCanary ||
           outcome == ReloadOutcome::RolledBackPostPromotion;
  }
  /// One-paragraph summary ("reload gen 1 -> 2: promoted ...").
  std::string to_string() const;
};

}  // namespace hrf::serve
