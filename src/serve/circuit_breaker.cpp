#include "serve/circuit_breaker.hpp"

#include <chrono>

#include "util/error.hpp"

namespace hrf::serve {

const char* to_string(CircuitState s) {
  switch (s) {
    case CircuitState::Closed: return "closed";
    case CircuitState::Open: return "open";
    case CircuitState::HalfOpen: return "half-open";
  }
  return "?";
}

namespace {
double steady_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options, Clock clock)
    : options_(options), clock_(clock ? std::move(clock) : Clock(steady_seconds)) {
  require(options_.failure_threshold >= 1, "breaker failure_threshold must be >= 1");
  require(options_.open_seconds >= 0.0, "breaker open_seconds must be >= 0");
  require(options_.half_open_probes >= 1, "breaker half_open_probes must be >= 1");
}

bool CircuitBreaker::allow_request() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case CircuitState::Closed:
      return true;
    case CircuitState::Open:
      if (clock_() < open_until_) return false;
      state_ = CircuitState::HalfOpen;
      probes_left_ = options_.half_open_probes;
      [[fallthrough]];
    case CircuitState::HalfOpen:
      if (probes_left_ <= 0) return false;  // probes already in flight
      --probes_left_;
      ++probes_;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == CircuitState::HalfOpen) state_ = CircuitState::Closed;
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == CircuitState::HalfOpen) {
    trip_locked();
    return;
  }
  if (state_ == CircuitState::Closed && ++consecutive_failures_ >= options_.failure_threshold) {
    trip_locked();
  }
  // Open: a straggler that was admitted before the trip; nothing to add.
}

void CircuitBreaker::record_timeout() {
  std::lock_guard<std::mutex> lock(mu_);
  // Only a HalfOpen probe must be resolved; exactly one transition, so a
  // straggler record_failure() for the same request (arriving once the
  // breaker is already Open again) cannot double-count the probe.
  if (state_ == CircuitState::HalfOpen) trip_locked();
}

void CircuitBreaker::trip_locked() {
  state_ = CircuitState::Open;
  open_until_ = clock_() + options_.open_seconds;
  consecutive_failures_ = 0;
  ++trips_;
}

CircuitState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

std::uint64_t CircuitBreaker::probes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probes_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

}  // namespace hrf::serve
