#include "serve/circuit_breaker.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "util/error.hpp"

namespace hrf::serve {

const char* to_string(CircuitState s) {
  switch (s) {
    case CircuitState::Closed: return "closed";
    case CircuitState::Open: return "open";
    case CircuitState::HalfOpen: return "half-open";
  }
  return "?";
}

namespace {
double steady_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

using Transition = std::optional<std::pair<CircuitState, CircuitState>>;
}  // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options, Clock clock)
    : options_(options), clock_(clock ? std::move(clock) : Clock(steady_seconds)) {
  require(options_.failure_threshold >= 1, "breaker failure_threshold must be >= 1");
  require(options_.open_seconds >= 0.0, "breaker open_seconds must be >= 0");
  require(options_.half_open_probes >= 1, "breaker half_open_probes must be >= 1");
}

bool CircuitBreaker::allow_request() {
  Transition t;
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
      case CircuitState::Closed:
        admitted = true;
        break;
      case CircuitState::Open:
        if (clock_() < open_until_) break;
        state_ = CircuitState::HalfOpen;
        probes_left_ = options_.half_open_probes;
        t = {{CircuitState::Open, CircuitState::HalfOpen}};
        [[fallthrough]];
      case CircuitState::HalfOpen:
        if (probes_left_ <= 0) break;  // probes already in flight
        --probes_left_;
        ++probes_;
        admitted = true;
        break;
    }
  }
  if (t && options_.on_transition) options_.on_transition(t->first, t->second);
  return admitted;
}

void CircuitBreaker::record_success() {
  Transition t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_failures_ = 0;
    if (state_ == CircuitState::HalfOpen) {
      state_ = CircuitState::Closed;
      t = {{CircuitState::HalfOpen, CircuitState::Closed}};
    }
  }
  if (t && options_.on_transition) options_.on_transition(t->first, t->second);
}

void CircuitBreaker::record_failure() {
  Transition t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == CircuitState::HalfOpen) {
      t = {{state_, CircuitState::Open}};
      trip_locked();
    } else if (state_ == CircuitState::Closed &&
               ++consecutive_failures_ >= options_.failure_threshold) {
      t = {{state_, CircuitState::Open}};
      trip_locked();
    }
    // Open: a straggler that was admitted before the trip; nothing to add.
  }
  if (t && options_.on_transition) options_.on_transition(t->first, t->second);
}

void CircuitBreaker::record_timeout() {
  Transition t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Only a HalfOpen probe must be resolved; exactly one transition, so a
    // straggler record_failure() for the same request (arriving once the
    // breaker is already Open again) cannot double-count the probe.
    if (state_ == CircuitState::HalfOpen) {
      t = {{state_, CircuitState::Open}};
      trip_locked();
    }
  }
  if (t && options_.on_transition) options_.on_transition(t->first, t->second);
}

void CircuitBreaker::trip_locked() {
  state_ = CircuitState::Open;
  open_until_ = clock_() + options_.open_seconds;
  consecutive_failures_ = 0;
  ++trips_;
}

CircuitState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

std::uint64_t CircuitBreaker::probes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probes_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

}  // namespace hrf::serve
