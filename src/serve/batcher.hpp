#pragma once

// Deadline-aware dynamic micro-batching for the serving layer
// (docs/serving.md, "Dynamic micro-batching").
//
// The paper's GPU/FPGA speedups come from amortizing stage-1 subtree
// staging and memory transactions across many rows (§3.2); a server that
// executes every request alone re-stages the root subtree per request and
// runs warps under-occupied. The BatchFormer closes that gap: a worker
// that dequeues a request keeps coalescing *consecutive, shape-compatible*
// queued requests into one backend-native batch until
//
//   - the batch is full (max_requests members, or max_rows rows aligned
//     to the backend's native granularity — warp size on GpuSim), or
//   - the flush deadline passes: every member, when it joins, grants the
//     batch at most min(max_wait_seconds, deadline_fraction x its own
//     remaining deadline budget) of further waiting, and the batch closes
//     at the *tightest* of those grants. A member that joins already past
//     its deadline grants nothing — the batch flushes immediately.
//
// The former is a pure state machine over caller-supplied
// steady_clock::time_points (no clock reads of its own), so unit tests
// drive it on a fake clock with zero sleeps. ForestServer owns the
// waiting (cv_.wait_until on flush_deadline(), never a spin) and the
// execution/demultiplex; see server.cpp.

#include <chrono>
#include <cstddef>

#include "core/classifier.hpp"

namespace hrf::serve {

/// Dynamic micro-batching knobs (ServerOptions::batching). Disabled by
/// default: max_requests <= 1 keeps the PR-2 one-request-per-dispatch
/// path byte-for-byte intact.
struct BatchOptions {
  /// Most member requests per batch; <= 1 disables batching entirely.
  std::size_t max_requests = 1;
  /// Most total query rows per batch. 0 = auto: max_requests x the
  /// backend's native granularity (GpuSim warp size; see
  /// backend_batch_granularity).
  std::size_t max_rows = 0;
  /// Hard cap on how long a batch may wait for more members, counted
  /// from each member's join. Kept well under typical deadlines so
  /// batching trades microseconds of wait for backend efficiency.
  double max_wait_seconds = 500e-6;
  /// Fraction of a member's *remaining* deadline budget the batch may
  /// spend waiting (0..1). The tightest member wins: one nearly-expired
  /// request closes the batch early instead of being shed by batchmates'
  /// patience.
  double deadline_fraction = 0.5;

  bool enabled() const { return max_requests > 1; }
};

/// The backend's native batch granularity in rows: the unit the paper's
/// kernels fill before adding rows stops being free. GpuSim: the warp
/// size (32 on the modeled TITAN Xp) — an under-filled warp still costs
/// a full warp of lock-step work. FpgaSim: the pipeline restart overhead
/// amortizes over a burst, modeled as one warp-equivalent. CpuNative: an
/// OpenMP chunk's worth.
std::size_t backend_batch_granularity(Backend backend, const gpusim::DeviceConfig& gpu);

/// Pure batch-forming state machine. All methods take "now" explicitly;
/// the former never reads a clock, so tests feed it synthetic time.
class BatchFormer {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// Throws ConfigError on out-of-range options (negative max_wait,
  /// deadline_fraction outside [0,1]) or zero granularity. max_rows 0
  /// resolves to max_requests * granularity.
  BatchFormer(const BatchOptions& options, std::size_t granularity);

  /// True when `rows` more rows still fit under max_rows — the caller
  /// checks before add() and leaves an oversized head request for the
  /// next batch instead of splitting it. An empty former always fits one
  /// member (a request larger than max_rows forms a batch of one).
  bool fits(std::size_t rows) const;

  /// Adds one member joining at `now`. `deadline` is meaningful only
  /// when has_deadline. Tightens the flush deadline per the member's
  /// wait grant (see file header).
  void add(TimePoint now, std::size_t rows, bool has_deadline, TimePoint deadline);

  std::size_t size() const { return members_; }
  std::size_t rows() const { return rows_; }
  std::size_t max_rows() const { return max_rows_; }

  /// Full = no more members may join (member or row budget exhausted).
  bool full() const { return members_ >= max_requests_ || rows_ >= max_rows_; }

  /// The instant the batch must flush even if not full: the tightest
  /// member wait grant seen so far. Meaningful once a member was added.
  TimePoint flush_deadline() const { return flush_deadline_; }

  /// True when the batch must stop waiting at `now`: full, or the flush
  /// deadline has passed. Empty formers never flush.
  bool should_flush(TimePoint now) const {
    return members_ > 0 && (full() || now >= flush_deadline_);
  }

  /// Forget all members (the server hands the popped requests to
  /// execution and reuses the former for the next batch).
  void reset();

 private:
  std::size_t max_requests_ = 1;
  std::size_t max_rows_ = 1;
  std::chrono::steady_clock::duration max_wait_{};
  double deadline_fraction_ = 0.5;

  std::size_t members_ = 0;
  std::size_t rows_ = 0;
  TimePoint flush_deadline_{};
};

}  // namespace hrf::serve
