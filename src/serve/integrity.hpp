#pragma once

// Runtime integrity for the serving layer (docs/robustness.md).
//
// The paper's hybrid scheme keeps a built layout resident for the lifetime
// of a model generation, so load-time gates (blob CRCs, ModelStore
// quarantine at open()) stop protecting it the moment a worker starts
// serving. This header holds the pieces the ForestServer's integrity
// monitor is built from:
//
//   * layout_crc32() — a replica checksum over a *built* layout, defined
//     to equal the chained per-section CRC32s that layout_io writes into
//     the v2 blob for the same layout (a cross-check property the tests
//     pin). The scrubber captures it per worker at install time and
//     re-verifies it on a timer; any drift means silent memory corruption.
//   * corrupt_replica_copy() — the corrupt:replica fault payload: a deep
//     copy of a layout with every internal-node threshold clobbered.
//     Structural validation still passes (topology is untouched), so only
//     the scrubber's CRC or a shadow audit can catch it — which is the
//     point. The copy-and-swap shape keeps readers race-free: a live
//     replica's bytes are never mutated in place.
//   * IntegrityOptions / SelfHealStats — the server-facing configuration
//     and drain-time summary of the scrubber, the sampled shadow audits,
//     and the worker watchdog.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"

namespace hrf::serve {

/// Configuration of the server's integrity monitor. Everything defaults
/// to off so an unconfigured server pays nothing; see ServerOptions.
struct IntegrityOptions {
  /// Scrubber cadence: every interval each worker replica's layout CRC is
  /// re-verified against the value captured at install. 0 = scrubber off.
  double scrub_interval_seconds = 0.0;

  /// Shadow audits: every Nth completed request is re-executed on the CPU
  /// oracle (the pristine forest) and compared. 0 = audits off.
  std::size_t audit_sample_every = 0;

  /// Consecutive audit mismatches on one replica that trigger the
  /// quarantine-and-rebuild path (a single mismatch could be the audit
  /// racing a legitimate reload; K in a row cannot).
  int audit_mismatch_threshold = 3;

  /// Worker watchdog: a worker whose heartbeat is older than this while a
  /// request is in flight is declared hung — its request is answered on
  /// the CPU oracle (as a degradation, never a lost response) and the
  /// thread is replaced. 0 = watchdog off.
  double hang_timeout_seconds = 0.0;

  /// Monitor loop cadence; the scrubber and watchdog share one thread and
  /// wake this often to check their timers.
  double monitor_poll_seconds = 0.002;

  /// Preferred rebuild source for a quarantined replica: when set and the
  /// store's current generation matches the corrupted replica's, the
  /// repair re-loads the blobs from disk (their CRCs re-verified on read)
  /// instead of recompiling from the in-memory forest.
  std::string rebuild_store_dir;

  /// hang:worker fault site: how long a wedged worker sleeps at dispatch.
  /// Finite (unlike a real hang) so runs without a watchdog still drain.
  double inject_hang_seconds = 0.05;
};

/// Self-heal ledger reported on drain (and as scrub.*/audit.*/watchdog.*
/// counter families in the metrics snapshot).
struct SelfHealStats {
  std::uint64_t scrub_passes = 0;        // per-replica CRC verifications
  std::uint64_t scrub_corruptions = 0;   // CRC drifts detected
  std::uint64_t scrub_repairs = 0;       // replicas rebuilt (scrub or audit)
  std::uint64_t audit_sampled = 0;       // requests shadow-audited
  std::uint64_t audit_mismatches = 0;    // oracle disagreements
  std::uint64_t watchdog_missed_heartbeats = 0;
  std::uint64_t watchdog_worker_restarts = 0;
};

/// CRC-32 of a built layout's resident arrays. Feeds bytes in exactly the
/// order and framing save_csr()/save_hierarchical() buffer their v2
/// section payloads (header pods, then each array as u64 count + raw
/// elements), so the result equals folding the blob's per-section CRCs
/// with the incremental crc32() — the cross-check the tests enforce.
std::uint32_t layout_crc32(const CsrForest& layout);
std::uint32_t layout_crc32(const HierarchicalForest& layout);

/// Deep-copies `layout` with every internal-node threshold forced to an
/// extreme, silently re-routing traversals while keeping the topology
/// valid. Requires at least one internal node (any trained forest has
/// them) so the copy's CRC always differs from the original's.
CsrForest corrupt_replica_copy(const CsrForest& layout);
HierarchicalForest corrupt_replica_copy(const HierarchicalForest& layout);

}  // namespace hrf::serve
