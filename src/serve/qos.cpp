#include "serve/qos.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hrf::serve {

TenantQuotas::TenantQuotas(const TenantQuotaOptions& options, std::size_t queue_capacity) {
  require(queue_capacity >= 1, "tenant quotas need a queue capacity >= 1");
  double total_weight = 0.0;
  for (const TenantQuota& t : options.tenants) {
    require(!t.name.empty(), "tenant names must be non-empty");
    require(t.weight > 0.0, "tenant weights must be > 0 (tenant '" + t.name + "')");
    require(entries_.find(t.name) == entries_.end(),
            "duplicate tenant '" + t.name + "' in quota config");
    entries_[t.name].weight = t.weight;
    order_.push_back(t.name);
    total_weight += t.weight;
  }
  // floor() keeps sum(reserved) <= capacity, so the spare pool is never
  // negative; a tenant whose share floors to zero lives off spare alone.
  std::size_t reserved_total = 0;
  for (const TenantQuota& t : options.tenants) {
    const auto share = static_cast<std::size_t>(
        std::floor(static_cast<double>(queue_capacity) * t.weight / total_weight));
    entries_[t.name].reserved = share;
    reserved_total += share;
  }
  spare_capacity_ = queue_capacity - reserved_total;
}

TenantQuotas::Entry& TenantQuotas::entry(const std::string& tenant) {
  const auto [it, inserted] = entries_.try_emplace(tenant);
  if (inserted) order_.push_back(tenant);  // unconfigured: weight 0, reserved 0
  return it->second;
}

bool TenantQuotas::try_acquire(const std::string& tenant) {
  Entry& e = entry(tenant);
  if (e.queued < e.reserved) {
    ++e.queued;
    ++e.admitted;
    return true;
  }
  if (spare_in_use_ < spare_capacity_) {
    ++spare_in_use_;
    ++e.queued;
    ++e.admitted;
    return true;
  }
  ++e.shed;
  return false;
}

void TenantQuotas::release(const std::string& tenant) {
  Entry& e = entry(tenant);
  require(e.queued > 0, "quota release without a matching acquire (tenant '" + tenant + "')");
  // Slots beyond the reservation were necessarily drawn from spare.
  if (e.queued > e.reserved) {
    require(spare_in_use_ > 0, "quota spare accounting underflow");
    --spare_in_use_;
  }
  --e.queued;
}

std::size_t TenantQuotas::reserved_slots(const std::string& tenant) const {
  const auto it = entries_.find(tenant);
  return it == entries_.end() ? 0 : it->second.reserved;
}

std::vector<TenantCounters> TenantQuotas::snapshot() const {
  std::vector<TenantCounters> rows;
  rows.reserve(order_.size());
  for (const std::string& name : order_) {
    const Entry& e = entries_.at(name);
    TenantCounters row;
    row.name = name;
    row.weight = e.weight;
    row.reserved = e.reserved;
    row.queued = e.queued;
    row.admitted = e.admitted;
    row.shed = e.shed;
    rows.push_back(std::move(row));
  }
  return rows;
}

AdaptiveLimiter::AdaptiveLimiter(const AdaptiveLimitOptions& options)
    : options_(options), limit_(options.initial_limit) {
  require(options_.min_limit >= 1, "adaptive limit min_limit must be >= 1");
  require(options_.max_limit >= options_.min_limit,
          "adaptive limit max_limit must be >= min_limit");
  require(options_.decrease_factor > 0.0 && options_.decrease_factor < 1.0,
          "adaptive limit decrease_factor must be in (0, 1)");
  require(options_.epoch_samples >= 1, "adaptive limit epoch_samples must be >= 1");
  limit_ = std::clamp(limit_, options_.min_limit, options_.max_limit);
  epoch_.reserve(options_.epoch_samples);
}

bool AdaptiveLimiter::try_acquire() {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ >= limit_) return false;
  ++in_flight_;
  return true;
}

void AdaptiveLimiter::decrease_locked() {
  const auto next = static_cast<std::size_t>(
      std::floor(static_cast<double>(limit_) * options_.decrease_factor));
  limit_ = std::max(options_.min_limit, next);
  ++decreases_;
  epoch_.clear();  // the old epoch's samples predate the new limit
}

void AdaptiveLimiter::release(double seconds, bool deadline_expired) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  if (deadline_expired) {
    decrease_locked();
    return;
  }
  epoch_.push_back(seconds);
  if (epoch_.size() < options_.epoch_samples) return;
  // Nearest-rank p95 of the completed epoch.
  std::sort(epoch_.begin(), epoch_.end());
  const double p95 =
      epoch_[static_cast<std::size_t>(0.95 * static_cast<double>(epoch_.size() - 1))];
  if (p95 > options_.target_p95_seconds) {
    decrease_locked();
  } else {
    limit_ = std::min(options_.max_limit, limit_ + 1);
    ++increases_;
    epoch_.clear();
  }
}

std::size_t AdaptiveLimiter::limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limit_;
}

std::size_t AdaptiveLimiter::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

std::uint64_t AdaptiveLimiter::increases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return increases_;
}

std::uint64_t AdaptiveLimiter::decreases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decreases_;
}

}  // namespace hrf::serve
