#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "serve/model_store.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace hrf::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(std::max(0.0, seconds)));
}

/// The CPU-native replica that serves while the breaker is open. Keeps
/// the hierarchical layout when the primary uses one (same predictions,
/// same indexing scheme), else the CSR baseline.
Variant fallback_variant(Variant primary) {
  switch (primary) {
    case Variant::Independent:
    case Variant::Collaborative:
    case Variant::Hybrid:
      return Variant::Independent;
    case Variant::Csr:
    case Variant::FilBaseline:
      return Variant::Csr;
  }
  return Variant::Csr;
}

std::string format_seconds(double s) {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed << s;
  return out.str();
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now().time_since_epoch())
          .count());
}

/// Reference CRC of a replica's resident layout (serve/integrity.hpp).
/// Disengaged for FilBaseline, which builds its layout inside the kernel
/// per call — nothing resident for the scrubber to verify.
std::optional<std::uint32_t> classifier_layout_crc(const Classifier& clf) {
  switch (clf.options().variant) {
    case Variant::Csr:
      return layout_crc32(clf.csr());
    case Variant::FilBaseline:
      return std::nullopt;
    default:
      return layout_crc32(clf.hierarchical());
  }
}

}  // namespace

void ForestServer::validate_options() const {
  require(options_.num_workers >= 1, "num_workers must be >= 1");
  require(options_.queue_capacity >= 1, "queue_capacity must be >= 1");
  require(options_.trace_sampling >= 0.0 && options_.trace_sampling <= 1.0,
          "trace_sampling must be in [0, 1]");
  require(options_.trace_capacity >= 1, "trace_capacity must be >= 1");
  require(options_.deadline_chunk_size >= 1, "deadline_chunk_size must be >= 1");
  require(options_.retry.max_retries >= 0, "retry.max_retries must be >= 0");
  require(options_.retry.backoff_base_seconds >= 0.0 &&
              options_.retry.backoff_max_seconds >= 0.0,
          "retry backoff seconds must be >= 0");
  require(options_.retry.jitter_fraction >= 0.0 && options_.retry.jitter_fraction <= 1.0,
          "retry.jitter_fraction must be in [0, 1]");
  require(options_.batching.max_wait_seconds >= 0.0,
          "batching.max_wait_seconds must be >= 0");
  require(options_.batching.deadline_fraction >= 0.0 &&
              options_.batching.deadline_fraction <= 1.0,
          "batching.deadline_fraction must be in [0, 1]");
  require(options_.integrity.scrub_interval_seconds >= 0.0,
          "integrity.scrub_interval_seconds must be >= 0");
  require(options_.integrity.hang_timeout_seconds >= 0.0,
          "integrity.hang_timeout_seconds must be >= 0");
  require(options_.integrity.audit_mismatch_threshold >= 1,
          "integrity.audit_mismatch_threshold must be >= 1");
  require(options_.integrity.monitor_poll_seconds > 0.0,
          "integrity.monitor_poll_seconds must be > 0");
  require(options_.integrity.inject_hang_seconds >= 0.0,
          "integrity.inject_hang_seconds must be >= 0");
}

std::shared_ptr<const ForestServer::WorkerModel> ForestServer::build_worker_model(
    const Forest& forest, const CsrForest* csr, const HierarchicalForest* hier,
    std::uint64_t generation, std::shared_ptr<ModelHealth> health) const {
  ClassifierOptions fb = classifier_options_;
  fb.backend = Backend::CpuNative;
  fb.variant = fallback_variant(classifier_options_.variant);
  fb.fallback = FallbackPolicy{};  // the CPU path has nothing to degrade to

  auto model = std::make_shared<WorkerModel>();
  // Precompiled layout when the store supplied one (shape/kind checked by
  // the Classifier ctor); otherwise compile from the forest.
  if (csr != nullptr) {
    model->primary = std::make_shared<const Classifier>(forest, *csr, classifier_options_);
  } else if (hier != nullptr) {
    model->primary = std::make_shared<const Classifier>(forest, *hier, classifier_options_);
  } else {
    model->primary = std::make_shared<const Classifier>(forest, classifier_options_);
  }
  // The fallback twin always compiles its own (cheap) CPU layout.
  model->fallback = std::make_shared<const Classifier>(forest, fb);
  model->generation = generation;
  model->health = std::move(health);
  // Scrubber reference: recaptured on every legitimate install (ctor,
  // reload, repair) because they all build their models right here.
  model->layout_crc = classifier_layout_crc(*model->primary);
  return model;
}

std::shared_ptr<const ForestServer::WorkerModel> ForestServer::model_for(std::size_t w) const {
  std::lock_guard<std::mutex> lock(slots_[w].mu);
  return slots_[w].model;
}

void ForestServer::install_model(std::size_t w, std::shared_ptr<const WorkerModel> m) {
  std::lock_guard<std::mutex> lock(slots_[w].mu);
  slots_[w].model = std::move(m);
}

void ForestServer::start_workers() {
  Xoshiro256 jitter_base(options_.seed);
  jitter_.reserve(options_.num_workers);
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    jitter_.push_back(jitter_base.split(static_cast<int>(w) + 1));
  }
  runtimes_.reserve(options_.num_workers);
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    runtimes_.push_back(std::make_unique<WorkerRuntime>());
  }
  started_ = !options_.start_paused;
  workers_.reserve(options_.num_workers);
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  if (integrity_enabled()) monitor_ = std::thread([this] { monitor_loop(); });
}

namespace {

/// Attaches a breaker-transition -> flight-recorder bridge when a
/// recorder is configured and the caller did not install its own hook.
/// Captures the recorder pointer and scope by value: the callback must
/// not depend on the server object (it can fire during construction).
CircuitBreakerOptions wire_breaker_events(CircuitBreakerOptions breaker,
                                          obs::FlightRecorder* recorder, std::string scope) {
  if (recorder != nullptr && !breaker.on_transition) {
    breaker.on_transition = [recorder, scope = std::move(scope)](CircuitState from,
                                                                CircuitState to) {
      const char* name = to == CircuitState::Open      ? "breaker_open"
                         : to == CircuitState::HalfOpen ? "breaker_probe"
                                                         : "breaker_closed";
      recorder->record("breaker", name, scope,
                       std::string(to_string(from)) + " -> " + to_string(to));
    };
  }
  return breaker;
}

}  // namespace

void ForestServer::flight_event(const char* category, const char* name,
                                std::string detail) const {
  if (options_.flight_recorder != nullptr) {
    options_.flight_recorder->record(category, name, options_.flight_scope, std::move(detail));
  }
}

ForestServer::ForestServer(Forest forest, ClassifierOptions classifier_options,
                           ServerOptions options)
    : options_(options),
      classifier_options_(classifier_options),
      slots_(options.num_workers),
      breaker_(wire_breaker_events(options.breaker, options.flight_recorder,
                                   options.flight_scope)),
      tracer_({options.trace_sampling, options.trace_capacity}) {
  validate_options();
  batch_granularity_ = backend_batch_granularity(classifier_options_.backend,
                                                 classifier_options_.gpu);
  if (options_.quotas.enabled()) quotas_.emplace(options_.quotas, options_.queue_capacity);
  auto health = std::make_shared<ModelHealth>();
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    install_model(w, build_worker_model(forest, nullptr, nullptr, 0, health));
  }
  start_workers();
}

ForestServer::ForestServer(const ModelStore& store, ClassifierOptions classifier_options,
                           ServerOptions options)
    : options_(options),
      classifier_options_(classifier_options),
      slots_(options.num_workers),
      breaker_(wire_breaker_events(options.breaker, options.flight_recorder,
                                   options.flight_scope)),
      tracer_({options.trace_sampling, options.trace_capacity}) {
  validate_options();
  batch_granularity_ = backend_batch_granularity(classifier_options_.backend,
                                                 classifier_options_.gpu);
  if (options_.quotas.enabled()) quotas_.emplace(options_.quotas, options_.queue_capacity);
  const std::optional<std::uint64_t> cur = store.current();
  if (!cur) {
    throw ConfigError("model store has no complete generation to serve: " + store.dir());
  }
  const LoadedModel m = store.load(*cur);
  auto health = std::make_shared<ModelHealth>();
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    install_model(w, build_worker_model(m.forest, m.csr ? &*m.csr : nullptr,
                                        m.hier ? &*m.hier : nullptr, m.generation, health));
  }
  current_generation_.store(m.generation, std::memory_order_release);
  start_workers();
}

ForestServer::~ForestServer() {
  try {
    shutdown();
  } catch (...) {
    // A destructor must not throw; the drain report is lost but every
    // queued promise was still failed with ShutdownError.
  }
}

std::future<ServeResult> ForestServer::submit(Dataset queries) {
  return submit(std::move(queries), options_.default_deadline_seconds);
}

std::future<ServeResult> ForestServer::submit(Dataset queries, double deadline_seconds) {
  return submit(std::move(queries), deadline_seconds, std::string());
}

std::future<ServeResult> ForestServer::submit(Dataset queries, double deadline_seconds,
                                              const std::string& tenant,
                                              std::uint64_t router_request) {
  counters_.add("requests.submitted");
  Request req;
  req.span = tracer_.start_trace("request");
  if (req.span.active()) {
    req.span.set_attr("queries", static_cast<std::uint64_t>(queries.num_samples()));
    if (deadline_seconds > 0.0) req.span.set_attr("deadline_s", deadline_seconds);
    if (!tenant.empty()) req.span.set_attr("tenant", tenant);
    if (router_request != 0) req.span.set_attr("router_request", router_request);
  }
  req.queries = std::move(queries);
  req.tenant = tenant;
  req.enqueued = SteadyClock::now();
  req.has_deadline = deadline_seconds > 0.0;
  if (req.has_deadline) req.deadline = req.enqueued + to_duration(deadline_seconds);
  std::future<ServeResult> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) {
      counters_.add("requests.rejected_shutdown");
      req.span.set_attr("outcome", "rejected_shutdown");
      throw ShutdownError("server is shutting down; submission rejected");
    }
    if (quotas_) {
      // Quotas subsume the plain capacity check: every queued request
      // holds exactly one slot, and the slots sum to queue_capacity — so
      // a failed acquire always means *this tenant* is past its share,
      // never that another tenant's traffic displaced it.
      if (!quotas_->try_acquire(req.tenant)) {
        counters_.add("requests.rejected_quota");
        req.span.set_attr("outcome", "rejected_quota");
        flight_event("quota", "quota_shed",
                     "tenant " + (req.tenant.empty() ? "<anonymous>" : req.tenant));
        throw QuotaError("tenant '" + (req.tenant.empty() ? "<anonymous>" : req.tenant) +
                         "' exceeded its admission quota (" +
                         std::to_string(quotas_->reserved_slots(req.tenant)) +
                         " reserved slots + shared spare exhausted); back off and retry");
      }
    } else if (queue_.size() >= options_.queue_capacity) {
      counters_.add("requests.rejected_overload");
      req.span.set_attr("outcome", "rejected_overload");
      flight_event("overload", "overload_shed",
                   "queue full at " + std::to_string(options_.queue_capacity));
      throw OverloadError("request queue full (capacity " +
                          std::to_string(options_.queue_capacity) +
                          "); back off and retry");
    }
    req.queue_span = req.span.child("queue");
    queue_.push_back(std::move(req));
  }
  cv_.notify_one();
  return fut;
}

void ForestServer::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  cv_.notify_all();
}

DrainReport ForestServer::shutdown() { return shutdown(options_.drain_deadline_seconds); }

DrainReport ForestServer::shutdown(double drain_deadline_seconds) {
  // Serialized so a concurrent second shutdown() cannot double-join.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return drain_report_;
    accepting_ = false;
    started_ = true;  // a paused server still drains its backlog
    drain_deadline_ = SteadyClock::now() + to_duration(drain_deadline_seconds);
    stopping_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  // The monitor joins first: workers_/zombies_ are mutated only by it, so
  // once it is gone the join loops below race nothing. Any in-flight hang
  // is finite (inject_hang_seconds), so losing the watchdog here cannot
  // wedge the drain.
  monitor_stop_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  WallTimer timer;
  for (std::thread& t : workers_) t.join();
  for (std::thread& t : zombies_) t.join();

  DrainReport rep;
  rep.drain_seconds = timer.seconds();
  std::lock_guard<std::mutex> lock(mu_);
  rep.abandoned = queue_.size();
  rep.deadline_hit = !queue_.empty();
  for (Request& r : queue_) {
    if (quotas_) quotas_->release(r.tenant);
    r.promise.set_exception(std::make_exception_ptr(ShutdownError(
        "request abandoned: drain deadline (" + format_seconds(drain_deadline_seconds) +
        "s) passed during shutdown")));
  }
  queue_.clear();
  if (rep.abandoned > 0) counters_.add("requests.abandoned", rep.abandoned);
  rep.drained = drained_after_stop_.load(std::memory_order_relaxed);
  drain_report_ = rep;
  shut_down_ = true;
  return rep;
}

bool ForestServer::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepting_ && started_ && !stopping_.load(std::memory_order_relaxed);
}

bool ForestServer::healthy() const { return !worker_failed_.load(std::memory_order_relaxed); }

void ForestServer::record_run(const Classifier& clf, std::uint64_t generation,
                              const RunReport& report) {
  rollups_.record(to_string(clf.options().variant), to_string(clf.options().backend), generation,
                  report);
}

obs::MetricsSnapshot ForestServer::metrics_snapshot() const {
  obs::MetricsSnapshot snap;
  // Zero-fill the documented names first, then overlay live values: an
  // idle server still exposes the full counter schema.
  for (const std::string& name : obs::counter_catalogue()) snap.counters[name] = 0;
  for (const auto& [name, value] : counters_.snapshot()) snap.counters[name] = value;
  snap.counters["breaker.trips"] = breaker_.trips();
  snap.counters["breaker.probes"] = breaker_.probes();
  snap.gauges["queue_depth"] = static_cast<double>(queue_depth());
  snap.gauges["workers"] = static_cast<double>(options_.num_workers);
  snap.gauges["breaker_state"] = static_cast<double>(breaker_.state());
  snap.gauges["model_generation"] =
      static_cast<double>(current_generation_.load(std::memory_order_acquire));
  snap.histograms = {{"queue_wait", hist_queue_wait_.snapshot()},
                     {"execute", hist_execute_.snapshot()},
                     {"end_to_end", hist_end_to_end_.snapshot()},
                     {"reload", hist_reload_.snapshot()},
                     {"batch_size", hist_batch_size_.snapshot()}};
  snap.rollups = rollups_.snapshot();
  snap.traces = tracer_.summary();
  snap.has_traces = true;
  // Fault-injector fire counts by site (empty unless chaos armed some):
  // a failing chaos run is debuggable from the snapshot alone.
  snap.fault_fired = FaultInjector::global().fired_counts();
  for (const TenantCounters& t : tenant_stats()) {
    obs::TenantStat row;
    row.name = t.name;
    row.weight = t.weight;
    row.reserved = t.reserved;
    row.queued = t.queued;
    row.admitted = t.admitted;
    row.shed = t.shed;
    snap.tenants.push_back(std::move(row));
  }
  return snap;
}

std::vector<TenantCounters> ForestServer::tenant_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quotas_ ? quotas_->snapshot() : std::vector<TenantCounters>{};
}

LatencyStats ForestServer::latency() const {
  LatencyStats s;
  s.queue_wait = hist_queue_wait_.snapshot();
  s.execute = hist_execute_.snapshot();
  s.end_to_end = hist_end_to_end_.snapshot();
  s.reload = hist_reload_.snapshot();
  s.batch_size = hist_batch_size_.snapshot();
  return s;
}

std::string LatencyStats::to_markdown() const {
  return latency_table_markdown({{"queue-wait", queue_wait},
                                 {"execute", execute},
                                 {"end-to-end", end_to_end},
                                 {"reload", reload}});
}

std::size_t ForestServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ServerStats ForestServer::stats() const {
  ServerStats s;
  s.queue_depth = queue_depth();
  s.breaker = breaker_.state();
  s.breaker_trips = breaker_.trips();
  s.breaker_probes = breaker_.probes();
  s.submitted = counters_.value("requests.submitted");
  s.rejected_overload = counters_.value("requests.rejected_overload");
  s.rejected_quota = counters_.value("requests.rejected_quota");
  s.rejected_shutdown = counters_.value("requests.rejected_shutdown");
  s.shed_deadline = counters_.value("requests.shed_deadline");
  s.deadline_expired = counters_.value("requests.deadline_expired");
  s.completed = counters_.value("requests.completed");
  s.failed = counters_.value("requests.failed");
  s.retries = counters_.value("requests.retried");
  s.fallback_served = counters_.value("fallback.served");
  s.breaker_short_circuited = counters_.value("breaker.short_circuited");
  s.abandoned = counters_.value("requests.abandoned");
  s.model_generation = current_generation_.load(std::memory_order_acquire);
  s.reloads_promoted = counters_.value("reload.promoted");
  s.reloads_rejected = counters_.value("reload.rejected");
  s.reloads_rolled_back = counters_.value("reload.rolled_back");
  return s;
}

std::vector<ReloadReport> ForestServer::reload_history() const {
  std::lock_guard<std::mutex> lock(reload_history_mu_);
  return reload_history_;
}

void ForestServer::record_reload(const ReloadReport& rep) {
  hist_reload_.record_seconds(rep.total_seconds);
  const std::string gens =
      "gen " + std::to_string(rep.from_generation) + " -> " + std::to_string(rep.to_generation);
  switch (rep.outcome) {
    case ReloadOutcome::Promoted:
      counters_.add("reload.promoted");
      flight_event("reload", "reload_promoted", gens);
      break;
    case ReloadOutcome::NoOp:
      break;
    case ReloadOutcome::RejectedLoad:
    case ReloadOutcome::RejectedValidation:
    case ReloadOutcome::RejectedShadow:
      counters_.add("reload.rejected");
      flight_event("reload", "reload_rejected", gens + ": " + rep.reason);
      break;
    case ReloadOutcome::RolledBackCanary:
    case ReloadOutcome::RolledBackPostPromotion:
      counters_.add("reload.rolled_back");
      flight_event("reload", "reload_rolled_back", gens + ": " + rep.reason);
      break;
  }
  std::lock_guard<std::mutex> lock(reload_history_mu_);
  reload_history_.push_back(rep);
}

ForestServer::Request ForestServer::pop_front_locked() {
  Request req = std::move(queue_.front());
  queue_.pop_front();
  // The quota slot meters *queued* requests; it frees at dequeue so
  // a tenant's share caps its backlog, not its lifetime throughput.
  if (quotas_) quotas_->release(req.tenant);
  return req;
}

void ForestServer::worker_loop(std::size_t w) {
  try {
    const bool batching = options_.batching.enabled();
    for (;;) {
      // Liveness heartbeat for the watchdog (one relaxed store per loop).
      runtimes_[w]->heartbeat_ns.store(steady_ns(), std::memory_order_relaxed);
      std::vector<Request> batch;
      bool deadline_flush = false;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return stopping_.load(std::memory_order_acquire) || (started_ && !queue_.empty());
        });
        if (stopping_.load(std::memory_order_acquire)) {
          if (queue_.empty()) return;                         // drained clean
          if (SteadyClock::now() >= drain_deadline_) return;  // budget exhausted
        }
        if (queue_.empty()) continue;
        batch.push_back(pop_front_locked());
        if (batching) {
          // Coalesce consecutive shape-compatible requests until the
          // former is full or its flush deadline passes (batcher.hpp).
          BatchFormer former(options_.batching, batch_granularity_);
          // Snapshot the head's shape: push_back below may reallocate
          // `batch`, so holding a reference into it would dangle.
          const auto head_features = batch.front().queries.num_features();
          const auto head_classes = batch.front().queries.num_classes();
          former.add(SteadyClock::now(), batch.front().queries.num_samples(),
                     batch.front().has_deadline, batch.front().deadline);
          for (;;) {
            if (former.should_flush(SteadyClock::now())) {
              // Closed by the wait deadline, not by filling up.
              deadline_flush = !former.full();
              break;
            }
            if (!queue_.empty()) {
              const Request& next = queue_.front();
              // Only shape-compatible neighbours join: a mismatched
              // request runs (or fails validation) alone rather than
              // poisoning a combined batch.
              if (next.queries.num_features() != head_features ||
                  next.queries.num_classes() != head_classes ||
                  !former.fits(next.queries.num_samples())) {
                break;
              }
              former.add(SteadyClock::now(), next.queries.num_samples(), next.has_deadline,
                         next.deadline);
              batch.push_back(pop_front_locked());
              continue;
            }
            if (stopping_.load(std::memory_order_acquire)) break;  // drain: flush now
            // Empty queue: sleep until an arrival or the flush deadline —
            // never a spin.
            if (!cv_.wait_until(lock, former.flush_deadline(), [&] {
                  return stopping_.load(std::memory_order_acquire) || !queue_.empty();
                })) {
              deadline_flush = true;
              break;
            }
          }
        }
      }
      if (batching) {
        hist_batch_size_.record_ns(static_cast<std::uint64_t>(batch.size()));
        CounterDeltas delta;
        ++delta["batch.formed"];
        if (deadline_flush) ++delta["batch.flush_deadline"];
        if (batch.size() >= 2) delta["requests.batched"] += batch.size();
        counters_.add_batch(delta);
      }
      if (batch.size() == 1) {
        // Batches of one take the exact PR-2 single-request path, wrapped
        // in the watchdog's claim window. A false return means the
        // watchdog declared this thread hung and already replaced it.
        if (!dispatch_one(w, std::move(batch.front()))) return;
      } else {
        process_batch(w, std::move(batch));
      }
    }
  } catch (...) {
    // Per-request failures are delivered through promises; only an
    // unexpected infrastructure error lands here. Flag it for healthy()
    // rather than taking the process down from a worker thread.
    worker_failed_.store(true, std::memory_order_relaxed);
  }
}

void ForestServer::process(std::size_t w, Request req) {
  // Chaos site: stall this worker at dispatch as if the shard wedged.
  // Placed before the deadline check so the frozen request lands in the
  // shed path — exactly the deadline storm the cluster router's hedging
  // has to absorb (docs/cluster.md).
  if (FaultInjector::global().enabled() && FaultInjector::global().consume("freeze:shard")) {
    std::this_thread::sleep_for(to_duration(options_.inject_freeze_seconds));
  }
  // Chaos site: requests from the configured surge tenant stall their
  // worker — a noisy neighbor whose requests are heavy as well as
  // frequent, so QoS tests get a deterministic hog.
  if (FaultInjector::global().enabled() && !options_.surge_tenant.empty() &&
      req.tenant == options_.surge_tenant &&
      FaultInjector::global().consume("surge:tenant")) {
    std::this_thread::sleep_for(to_duration(options_.inject_surge_seconds));
  }
  const SteadyClock::time_point now = SteadyClock::now();
  const double queue_s = std::chrono::duration<double>(now - req.enqueued).count();
  hist_queue_wait_.record_seconds(queue_s);
  if (req.queue_span.active()) req.queue_span.set_attr("seconds", queue_s);
  req.queue_span.end();
  CounterDeltas delta;
  if (req.has_deadline && now >= req.deadline) {
    ++delta["requests.shed_deadline"];
    ++delta["requests.failed"];
    counters_.add_batch(delta);
    req.span.set_attr("outcome", "shed_deadline");
    req.span.end();  // retire the trace before the client's future wakes
    req.promise.set_exception(std::make_exception_ptr(DeadlineError(
        "deadline expired after " + format_seconds(queue_s) + "s in queue; shed before dispatch")));
    return;
  }
  finish_one(w, std::move(req), queue_s, std::move(delta));
}

void ForestServer::finish_one(std::size_t w, Request req, double queue_s, CounterDeltas delta) {
  try {
    WallTimer timer;
    trace::Span exec_span = req.span.child("execute");
    if (exec_span.active()) exec_span.set_attr("worker", static_cast<std::uint64_t>(w));
    ServeResult res = execute(w, req, exec_span, delta);
    exec_span.end();
    res.queue_seconds = queue_s;
    res.service_seconds = timer.seconds();
    hist_execute_.record_seconds(res.service_seconds);
    hist_end_to_end_.record_seconds(queue_s + res.service_seconds);
    ++delta["requests.completed"];
    counters_.add_batch(delta);
    req.span.set_attr("outcome", "completed");
    if (stopping_.load(std::memory_order_relaxed)) {
      drained_after_stop_.fetch_add(1, std::memory_order_relaxed);
    }
    // End (and retire) the root span before fulfilling the promise: once the
    // client's future.get() returns, metrics_snapshot() must already count
    // this trace as completed.
    req.span.end();
    req.promise.set_value(std::move(res));
  } catch (...) {
    ++delta["requests.failed"];
    counters_.add_batch(delta);
    req.span.set_attr("outcome", "failed");
    req.span.end();
    req.promise.set_exception(std::current_exception());
  }
}

void ForestServer::process_batch(std::size_t w, std::vector<Request> batch) {
  // Chaos site: stall the whole formed batch at dispatch — the batcher
  // analogue of freeze:shard, driving deadline-shed of *formed* batches
  // in the chaos suite without touching single-request dispatch.
  if (FaultInjector::global().enabled() && FaultInjector::global().consume("freeze:batcher")) {
    std::this_thread::sleep_for(to_duration(options_.inject_freeze_seconds));
  }
  const SteadyClock::time_point now = SteadyClock::now();
  std::vector<Member> live;
  live.reserve(batch.size());
  CounterDeltas delta;
  for (Request& req : batch) {
    const double queue_s = std::chrono::duration<double>(now - req.enqueued).count();
    hist_queue_wait_.record_seconds(queue_s);
    if (req.queue_span.active()) req.queue_span.set_attr("seconds", queue_s);
    req.queue_span.end();
    if (req.has_deadline && now >= req.deadline) {
      // Shed this member alone; its batchmates proceed unharmed.
      ++delta["requests.shed_deadline"];
      ++delta["requests.failed"];
      req.span.set_attr("outcome", "shed_deadline");
      req.span.end();
      req.promise.set_exception(std::make_exception_ptr(DeadlineError(
          "deadline expired after " + format_seconds(queue_s) +
          "s in queue; shed before dispatch")));
      continue;
    }
    live.push_back(Member{std::move(req), queue_s});
  }
  counters_.add_batch(delta);
  if (live.empty()) return;
  if (live.size() == 1) {
    Member m = std::move(live.front());
    finish_one(w, std::move(m.req), m.queue_seconds, CounterDeltas{});
    return;
  }
  execute_members(w, std::move(live));
}

void ForestServer::execute_members(std::size_t w, std::vector<Member> live) {
  // One model snapshot, one breaker verdict, one retry chain for the
  // whole batch: the members were coalesced precisely so they share a
  // backend run, so they share its routing decisions too.
  const std::shared_ptr<const WorkerModel> m = model_for(w);

  const Dataset& first = live.front().req.queries;
  std::size_t rows = 0;
  for (const Member& mem : live) rows += mem.req.queries.num_samples();
  Dataset all(rows, first.num_features(), first.num_classes());
  for (const Member& mem : live) {
    for (std::size_t i = 0; i < mem.req.queries.num_samples(); ++i) {
      all.push_back(mem.req.queries.sample(i), mem.req.queries.label(i));
    }
  }

  // The first member's trace hosts the combined execution spans; every
  // member's own root span still records the batch shape and outcome.
  for (Member& mem : live) {
    if (mem.req.span.active()) {
      mem.req.span.set_attr("batch_members", static_cast<std::uint64_t>(live.size()));
      mem.req.span.set_attr("batch_rows", static_cast<std::uint64_t>(rows));
    }
  }
  trace::Span exec_span = live.front().req.span.child("execute");
  if (exec_span.active()) exec_span.set_attr("worker", static_cast<std::uint64_t>(w));

  SteadyClock::time_point tightest{};
  bool has_tightest = false;
  for (const Member& mem : live) {
    if (!mem.req.has_deadline) continue;
    if (!has_tightest || mem.req.deadline < tightest) tightest = mem.req.deadline;
    has_tightest = true;
  }

  CounterDeltas delta;
  WallTimer timer;
  ServeResult base;  // shared skeleton: report + retries + via_fallback
  bool have = false;
  try {
    const std::string primary_desc = std::string(to_string(m->primary->options().backend)) +
                                     "/" + to_string(m->primary->options().variant);
    if (exec_span.active()) {
      exec_span.set_attr("generation", m->generation);
      exec_span.set_attr("primary", primary_desc);
    }
    std::string primary_note;
    bool primary_errored = false;
    const bool allowed = breaker_.allow_request();
    if (exec_span.active()) exec_span.set_attr("breaker", to_string(breaker_.state()));
    if (allowed) {
      const int tries = 1 + options_.retry.max_retries;
      std::string last_error;
      for (int attempt = 0; attempt < tries && !have; ++attempt) {
        trace::Span attempt_span = exec_span.child("attempt-" + std::to_string(attempt));
        try {
          base.report = run_batch(*m->primary, all, live, attempt_span);
          breaker_.record_success();
          m->health->completed.fetch_add(live.size(), std::memory_order_relaxed);
          record_run(*m->primary, m->generation, base.report);
          have = true;
        } catch (const DeadlineError&) {
          // Resolve a possible HalfOpen probe charge (see execute()).
          breaker_.record_timeout();
          throw;
        } catch (const ResourceError& e) {
          breaker_.record_failure();
          last_error = e.what();
          attempt_span.set_attr("error", last_error);
          if (attempt + 1 < tries) {
            ++base.retries;
            ++delta["requests.retried"];  // one backend attempt retried, N members aboard
            // Backoff gated on the tightest member deadline: if any member
            // would expire during the nap, skip straight to the fallback.
            const double backoff = retry_backoff_seconds(options_.retry, attempt, jitter_[w]);
            if (has_tightest && SteadyClock::now() + to_duration(backoff) >= tightest) break;
            if (backoff > 0.0) {
              std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
            }
          }
        }
      }
      if (!have) {
        primary_errored = true;  // retries exhausted: this model's primary is sick
        primary_note = "primary " + primary_desc + " failed after " +
                       std::to_string(base.retries + 1) + " attempt(s) (" + last_error + ")";
      }
    } else {
      ++delta["breaker.short_circuited"];  // one verdict covers the whole batch
      if (exec_span.active()) exec_span.set_attr("short_circuited", true);
      primary_note = "breaker open: skipped primary " + primary_desc;
    }
    if (!have) {
      trace::Span fallback_span = exec_span.child("fallback");
      base.report = run_batch(*m->fallback, all, live, fallback_span);
      fallback_span.end();
      record_run(*m->fallback, m->generation, base.report);
      base.via_fallback = true;
      delta["fallback.served"] += live.size();
      std::string note = "serve: " + primary_note + " -> cpu-native fallback";
      if (m->generation > 0) note += " [gen " + std::to_string(m->generation) + "]";
      base.report.degradations.push_back(std::move(note));
      if (primary_errored) m->health->primary_errors.fetch_add(1, std::memory_order_relaxed);
      m->health->completed.fetch_add(live.size(), std::memory_order_relaxed);
    }
  } catch (const DeadlineError& e) {
    // The combined run was cancelled — only possible when every member
    // carries a deadline and the *loosest* one passed (run_batch), so
    // every member is expired. Fail them all individually.
    exec_span.end();
    delta["requests.deadline_expired"] += live.size();
    delta["requests.failed"] += live.size();
    counters_.add_batch(delta);
    const std::string what = e.what();
    for (Member& mem : live) {
      mem.req.span.set_attr("outcome", "failed");
      mem.req.span.end();
      mem.req.promise.set_exception(std::make_exception_ptr(DeadlineError(what)));
    }
    return;
  } catch (...) {
    // A fault the batch cannot pin on one member — typically ConfigError
    // from combined validation (one malformed row). Re-run each member
    // alone: the poison request fails with its own error and batchmates
    // complete normally. No promise was fulfilled yet, so no double-set.
    exec_span.end();
    counters_.add_batch(delta);
    for (Member& mem : live) {
      finish_one(w, std::move(mem.req), mem.queue_seconds, CounterDeltas{});
    }
    return;
  }
  exec_span.end();

  // Demultiplex: each member takes its slice of the predictions plus a
  // copy of the shared timing / degradation / backend-counter trail.
  const double service_s = timer.seconds();
  delta["requests.completed"] += live.size();
  counters_.add_batch(delta);
  const bool stopping = stopping_.load(std::memory_order_relaxed);
  std::size_t offset = 0;
  for (Member& mem : live) {
    const std::size_t n = mem.req.queries.num_samples();
    ServeResult res;
    res.report.predictions.assign(base.report.predictions.begin() + offset,
                                  base.report.predictions.begin() + offset + n);
    offset += n;
    res.report.seconds = base.report.seconds;
    res.report.simulated = base.report.simulated;
    res.report.degradations = base.report.degradations;
    res.report.latency = base.report.latency;
    res.report.gpu_counters = base.report.gpu_counters;
    res.report.fpga_report = base.report.fpga_report;
    res.retries = base.retries;
    res.via_fallback = base.via_fallback;
    res.queue_seconds = mem.queue_seconds;
    res.service_seconds = service_s;
    hist_execute_.record_seconds(service_s);
    hist_end_to_end_.record_seconds(mem.queue_seconds + service_s);
    mem.req.span.set_attr("outcome", "completed");
    if (stopping) drained_after_stop_.fetch_add(1, std::memory_order_relaxed);
    mem.req.span.end();
    mem.req.promise.set_value(std::move(res));
  }
}

RunReport ForestServer::run_batch(const Classifier& clf, const Dataset& all,
                                  const std::vector<Member>& live, const trace::Span& span) {
  // Cancellation policy: a combined run may only be cancelled when every
  // member carries a deadline, and then at the *loosest* of them — at
  // that instant every member is past its own deadline, so failing the
  // whole batch strands nobody who still had budget. One deadline-less
  // member pins the run to completion (its batchmates shed at dispatch
  // or simply receive their answer late, same as a slow single request).
  bool all_deadlined = true;
  SteadyClock::time_point loosest{};
  for (const Member& mem : live) {
    if (!mem.req.has_deadline) {
      all_deadlined = false;
      break;
    }
    loosest = std::max(loosest, mem.req.deadline);
  }
  std::function<bool()> cancel = [] { return false; };
  if (all_deadlined) {
    const SteadyClock::time_point deadline = loosest;
    cancel = [deadline] { return SteadyClock::now() >= deadline; };
  }
  Classifier::StreamReport s =
      clf.classify_stream(all, options_.deadline_chunk_size, cancel, span);
  if (!s.completed) {
    throw DeadlineError("deadline expired during batched execution (" +
                        std::to_string(s.predictions.size()) + " of " +
                        std::to_string(all.num_samples()) + " queries done)");
  }
  RunReport r;
  r.predictions = std::move(s.predictions);
  r.seconds = s.total_seconds;
  r.simulated = s.simulated;
  r.degradations = std::move(s.degradations);
  r.latency = std::move(s.chunk_latency);
  r.gpu_counters = std::move(s.gpu_counters);
  r.fpga_report = std::move(s.fpga_report);
  if (span.active()) {
    span.set_attr("seconds", r.seconds);
    span.set_attr("chunks", static_cast<std::uint64_t>(s.chunks));
    span.set_attr("batch_rows", static_cast<std::uint64_t>(all.num_samples()));
    set_backend_span_attrs(span, r);
  }
  return r;
}

ServeResult ForestServer::execute(std::size_t w, Request& req, const trace::Span& span,
                                  CounterDeltas& delta) {
  // One snapshot per request: a concurrent reload flips the slot pointer,
  // but this request runs start to finish on the model it grabbed here.
  const std::shared_ptr<const WorkerModel> m = model_for(w);
  ServeResult out;
  const std::string primary_desc = std::string(to_string(m->primary->options().backend)) + "/" +
                                   to_string(m->primary->options().variant);
  if (span.active()) {
    span.set_attr("generation", m->generation);
    span.set_attr("primary", primary_desc);
  }
  std::string primary_note;
  bool primary_errored = false;
  const bool allowed = breaker_.allow_request();
  if (span.active()) span.set_attr("breaker", to_string(breaker_.state()));
  if (allowed) {
    const int tries = 1 + options_.retry.max_retries;
    std::string last_error;
    for (int attempt = 0; attempt < tries; ++attempt) {
      trace::Span attempt_span = span.child("attempt-" + std::to_string(attempt));
      try {
        out.report = run_one(*m->primary, req, attempt_span, delta);
        breaker_.record_success();
        m->health->completed.fetch_add(1, std::memory_order_relaxed);
        record_run(*m->primary, m->generation, out.report);
        maybe_audit(w, *m, req.queries, out.report, delta);
        return out;
      } catch (const DeadlineError&) {
        // The attempt outlived the request's deadline: not a backend
        // verdict, so no failure is counted — but a HalfOpen probe must
        // still resolve the charge it spent at allow_request(), else the
        // breaker is stuck HalfOpen with zero budget (see record_timeout).
        breaker_.record_timeout();
        throw;
      } catch (const ResourceError& e) {
        breaker_.record_failure();
        last_error = e.what();
        attempt_span.set_attr("error", last_error);
        if (attempt + 1 < tries) {
          ++out.retries;
          ++delta["requests.retried"];
          if (!backoff_sleep(w, attempt, req)) break;  // deadline too close
        }
      }
    }
    primary_errored = true;  // retries exhausted: this model's primary is sick
    primary_note = "primary " + primary_desc + " failed after " +
                   std::to_string(out.retries + 1) + " attempt(s) (" + last_error + ")";
  } else {
    ++delta["breaker.short_circuited"];
    if (span.active()) span.set_attr("short_circuited", true);
    primary_note = "breaker open: skipped primary " + primary_desc;
  }
  // The CPU-native fallback replica — bit-identical predictions, degraded
  // latency only, recorded like every other degradation.
  trace::Span fallback_span = span.child("fallback");
  out.report = run_one(*m->fallback, req, fallback_span, delta);
  fallback_span.end();
  record_run(*m->fallback, m->generation, out.report);
  out.via_fallback = true;
  ++delta["fallback.served"];
  std::string note = "serve: " + primary_note + " -> cpu-native fallback";
  if (m->generation > 0) note += " [gen " + std::to_string(m->generation) + "]";
  out.report.degradations.push_back(std::move(note));
  // Health after the fact: a fallback-served request still completed, but
  // a primary failure is what the canary / post-promotion watch act on.
  if (primary_errored) m->health->primary_errors.fetch_add(1, std::memory_order_relaxed);
  m->health->completed.fetch_add(1, std::memory_order_relaxed);
  return out;
}

RunReport ForestServer::run_one(const Classifier& clf, const Request& req,
                                const trace::Span& span, CounterDeltas& delta) {
  if (!req.has_deadline) {
    RunReport r = clf.classify(req.queries);
    if (span.active()) {
      span.set_attr("seconds", r.seconds);
      set_backend_span_attrs(span, r);
    }
    return r;
  }
  // Time-boxed execution: chunked, cancel polled between chunks, so an
  // expired request stops burning the backend after at most one chunk.
  const SteadyClock::time_point deadline = req.deadline;
  Classifier::StreamReport s =
      clf.classify_stream(req.queries, options_.deadline_chunk_size,
                          [deadline] { return SteadyClock::now() >= deadline; }, span);
  if (!s.completed) {
    ++delta["requests.deadline_expired"];
    throw DeadlineError("deadline expired during execution (" +
                        std::to_string(s.predictions.size()) + " of " +
                        std::to_string(req.queries.num_samples()) + " queries done)");
  }
  RunReport r;
  r.predictions = std::move(s.predictions);
  r.seconds = s.total_seconds;
  r.simulated = s.simulated;
  r.degradations = std::move(s.degradations);
  r.latency = std::move(s.chunk_latency);
  r.gpu_counters = std::move(s.gpu_counters);
  r.fpga_report = std::move(s.fpga_report);
  if (span.active()) {
    span.set_attr("seconds", r.seconds);
    span.set_attr("chunks", static_cast<std::uint64_t>(s.chunks));
    set_backend_span_attrs(span, r);
  }
  return r;
}

// --- Integrity monitor (scrubber / shadow audits / watchdog) ------------

bool ForestServer::integrity_enabled() const {
  const IntegrityOptions& i = options_.integrity;
  return i.scrub_interval_seconds > 0.0 || i.hang_timeout_seconds > 0.0 ||
         i.audit_sample_every > 0;
}

SelfHealStats ForestServer::self_heal() const {
  SelfHealStats s;
  s.scrub_passes = counters_.value("scrub.passes");
  s.scrub_corruptions = counters_.value("scrub.corruptions");
  s.scrub_repairs = counters_.value("scrub.repairs");
  s.audit_sampled = counters_.value("audit.sampled");
  s.audit_mismatches = counters_.value("audit.mismatches");
  s.watchdog_missed_heartbeats = counters_.value("watchdog.missed_heartbeats");
  s.watchdog_worker_restarts = counters_.value("watchdog.worker_restarts");
  return s;
}

bool ForestServer::install_model_if(std::size_t w,
                                    const std::shared_ptr<const WorkerModel>& expected,
                                    std::shared_ptr<const WorkerModel> next) {
  std::lock_guard<std::mutex> lock(slots_[w].mu);
  if (slots_[w].model != expected) return false;
  slots_[w].model = std::move(next);
  return true;
}

bool ForestServer::dispatch_one(std::size_t w, Request req) {
  FaultInjector& inj = FaultInjector::global();
  if (options_.integrity.hang_timeout_seconds <= 0.0) {
    // No watchdog: an injected hang degenerates to a finite stall (the
    // sleep is bounded precisely so undefended runs still drain).
    if (inj.enabled() && inj.consume("hang:worker")) {
      std::this_thread::sleep_for(to_duration(options_.integrity.inject_hang_seconds));
    }
    process(w, std::move(req));
    return true;
  }
  // Publish the request so the watchdog can rescue it, then (possibly)
  // wedge at the hang:worker site, then race the watchdog for the claim.
  // Whoever flips `claimed` first owns the promise — exactly one side
  // fulfils it, so a rescue is never a lost or duplicate response.
  auto inf = std::make_shared<InFlight>();
  inf->dispatched = SteadyClock::now();
  inf->req.emplace(std::move(req));
  {
    std::lock_guard<std::mutex> lock(runtimes_[w]->mu);
    runtimes_[w]->inflight = inf;
  }
  if (inj.enabled() && inj.consume("hang:worker")) {
    std::this_thread::sleep_for(to_duration(options_.integrity.inject_hang_seconds));
  }
  std::optional<Request> claimed;
  {
    std::lock_guard<std::mutex> lock(inf->mu);
    if (!inf->claimed) {
      inf->claimed = true;
      claimed.emplace(std::move(*inf->req));
      inf->req.reset();
    }
  }
  {
    std::lock_guard<std::mutex> lock(runtimes_[w]->mu);
    if (runtimes_[w]->inflight == inf) runtimes_[w]->inflight.reset();
  }
  if (!claimed) return false;  // rescued: this thread was declared hung
  process(w, std::move(*claimed));
  return true;
}

void ForestServer::maybe_audit(std::size_t w, const WorkerModel& m, const Dataset& queries,
                               RunReport& report, CounterDeltas& delta) {
  const std::size_t every = options_.integrity.audit_sample_every;
  if (every == 0) return;
  if (audit_tick_.fetch_add(1, std::memory_order_relaxed) % every != 0) return;
  ++delta["audit.sampled"];
  RunReport oracle;
  try {
    oracle = m.fallback->classify(queries);
  } catch (...) {
    return;  // an oracle failure is its own incident, not replica evidence
  }
  if (oracle.predictions == report.predictions) {
    runtimes_[w]->audit_streak.store(0, std::memory_order_relaxed);
    return;
  }
  ++delta["audit.mismatches"];
  flight_event("integrity", "audit_mismatch", "worker " + std::to_string(w));
  // The oracle is authoritative — every variant/backend agrees
  // bit-for-bit on an uncorrupted layout (the cross-backend equivalence
  // the tier-1 suite pins) — so serve its answer and note the divergence.
  report.predictions = oracle.predictions;
  report.degradations.push_back("audit: worker " + std::to_string(w) +
                                " diverged from the cpu oracle -> served oracle result");
  const int streak = runtimes_[w]->audit_streak.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= options_.integrity.audit_mismatch_threshold) {
    // One mismatch could be the audit racing something legitimate; K in a
    // row on one replica cannot. Hand the repair to the monitor thread.
    runtimes_[w]->repair_requested.store(true, std::memory_order_release);
  }
}

void ForestServer::monitor_loop() {
  FaultInjector& inj = FaultInjector::global();
  const IntegrityOptions& iopt = options_.integrity;
  TimePoint last_scrub = SteadyClock::now();
  while (!monitor_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(to_duration(iopt.monitor_poll_seconds));
    if (monitor_stop_.load(std::memory_order_acquire)) break;
    // Chaos: corrupt one replica copy-and-swap (readers never race the
    // flip; only the scrubber's CRC or an audit can tell).
    if (inj.enabled() && inj.consume("corrupt:replica")) inject_replica_corruption();
    if (iopt.hang_timeout_seconds > 0.0) watchdog_scan();
    for (std::size_t w = 0; w < options_.num_workers; ++w) {
      if (runtimes_[w]->repair_requested.exchange(false, std::memory_order_acq_rel)) {
        repair_replica(w, model_for(w));
      }
    }
    if (iopt.scrub_interval_seconds > 0.0 &&
        SteadyClock::now() - last_scrub >= to_duration(iopt.scrub_interval_seconds)) {
      last_scrub = SteadyClock::now();
      scrub_pass();
    }
  }
}

void ForestServer::watchdog_scan() {
  const TimePoint now = SteadyClock::now();
  const SteadyClock::duration threshold = to_duration(options_.integrity.hang_timeout_seconds);
  const std::uint64_t now_ns = steady_ns();
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    std::shared_ptr<InFlight> inf;
    {
      std::lock_guard<std::mutex> lock(runtimes_[w]->mu);
      inf = runtimes_[w]->inflight;
    }
    if (!inf || now - inf->dispatched < threshold) continue;
    // Corroborate with the loop heartbeat: a worker that stamped recently
    // is alive (mid-claim), whatever the in-flight timestamp says.
    const std::uint64_t beat = runtimes_[w]->heartbeat_ns.load(std::memory_order_relaxed);
    if (now_ns - beat < static_cast<std::uint64_t>(
                            std::chrono::duration_cast<std::chrono::nanoseconds>(threshold)
                                .count())) {
      continue;
    }
    std::optional<Request> rescued;
    {
      std::lock_guard<std::mutex> lock(inf->mu);
      if (!inf->claimed) {
        inf->claimed = true;
        rescued.emplace(std::move(*inf->req));
        inf->req.reset();
      }
    }
    if (!rescued) continue;  // the worker woke up and claimed first
    counters_.add("watchdog.missed_heartbeats");
    watchdog_answer(w, std::move(*rescued));
    // The wedged thread fails its claim and exits; park its handle and
    // run a replacement in its slot (joined with everyone at shutdown).
    zombies_.push_back(std::move(workers_[w]));
    workers_[w] = std::thread([this, w] { worker_loop(w); });
    counters_.add("watchdog.worker_restarts");
    flight_event("integrity", "watchdog_restart", "worker " + std::to_string(w));
    {
      std::lock_guard<std::mutex> lock(runtimes_[w]->mu);
      if (runtimes_[w]->inflight == inf) runtimes_[w]->inflight.reset();
    }
  }
}

void ForestServer::watchdog_answer(std::size_t w, Request req) {
  const std::shared_ptr<const WorkerModel> m = model_for(w);
  const double queue_s = std::chrono::duration<double>(SteadyClock::now() - req.enqueued).count();
  hist_queue_wait_.record_seconds(queue_s);
  if (req.queue_span.active()) req.queue_span.set_attr("seconds", queue_s);
  req.queue_span.end();
  CounterDeltas delta;
  try {
    WallTimer timer;
    trace::Span exec_span = req.span.child("execute");
    if (exec_span.active()) {
      exec_span.set_attr("worker", static_cast<std::uint64_t>(w));
      exec_span.set_attr("watchdog_rescue", true);
    }
    ServeResult res;
    res.report = m->fallback->classify(req.queries);
    exec_span.end();
    record_run(*m->fallback, m->generation, res.report);
    res.via_fallback = true;
    ++delta["fallback.served"];
    std::string note = "watchdog: worker " + std::to_string(w) +
                       " hung past hang_timeout -> answered on cpu-native fallback";
    if (m->generation > 0) note += " [gen " + std::to_string(m->generation) + "]";
    res.report.degradations.push_back(std::move(note));
    res.queue_seconds = queue_s;
    res.service_seconds = timer.seconds();
    hist_execute_.record_seconds(res.service_seconds);
    hist_end_to_end_.record_seconds(queue_s + res.service_seconds);
    ++delta["requests.completed"];
    counters_.add_batch(delta);
    m->health->completed.fetch_add(1, std::memory_order_relaxed);
    req.span.set_attr("outcome", "completed");
    if (stopping_.load(std::memory_order_relaxed)) {
      drained_after_stop_.fetch_add(1, std::memory_order_relaxed);
    }
    req.span.end();
    req.promise.set_value(std::move(res));
  } catch (...) {
    ++delta["requests.failed"];
    counters_.add_batch(delta);
    req.span.set_attr("outcome", "failed");
    req.span.end();
    req.promise.set_exception(std::current_exception());
  }
}

void ForestServer::scrub_pass() {
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    const std::shared_ptr<const WorkerModel> m = model_for(w);
    if (!m->layout_crc) continue;  // FilBaseline: nothing resident to scrub
    counters_.add("scrub.passes");
    const std::optional<std::uint32_t> live = classifier_layout_crc(*m->primary);
    if (live && *live == *m->layout_crc) continue;
    counters_.add("scrub.corruptions");
    flight_event("integrity", "scrub_corruption", "worker " + std::to_string(w));
    repair_replica(w, m);
  }
}

void ForestServer::repair_replica(std::size_t w, std::shared_ptr<const WorkerModel> suspect) {
  // Quarantine first: the CPU oracle replica (never corrupted — audits
  // and rescues already trust it) takes over as primary, so this worker
  // keeps answering correctly for the whole rebuild.
  auto degraded = std::make_shared<WorkerModel>();
  degraded->primary = suspect->fallback;
  degraded->fallback = suspect->fallback;
  degraded->generation = suspect->generation;
  degraded->health = suspect->health;
  degraded->layout_crc = classifier_layout_crc(*suspect->fallback);
  if (!install_model_if(w, suspect, degraded)) return;  // a reload got there first
  flight_event("integrity", "replica_quarantined", "worker " + std::to_string(w));
  runtimes_[w]->audit_streak.store(0, std::memory_order_relaxed);

  // Rebuild. Preferred source: the store's current generation, whose blob
  // CRCs are re-verified on read; otherwise recompile from the pristine
  // in-memory forest the fallback replica carries.
  std::shared_ptr<const WorkerModel> fresh;
  if (!options_.integrity.rebuild_store_dir.empty()) {
    try {
      const ModelStore store = ModelStore::open(options_.integrity.rebuild_store_dir);
      const std::optional<std::uint64_t> cur = store.current();
      if (cur && *cur == suspect->generation) {
        const LoadedModel lm = store.load(*cur);
        fresh = build_worker_model(lm.forest, lm.csr ? &*lm.csr : nullptr,
                                   lm.hier ? &*lm.hier : nullptr, lm.generation, suspect->health);
      }
    } catch (const std::exception&) {
      fresh = nullptr;  // unusable store: recompile below instead
    }
  }
  if (!fresh) {
    try {
      fresh = build_worker_model(suspect->fallback->forest(), nullptr, nullptr,
                                 suspect->generation, suspect->health);
    } catch (const std::exception&) {
      return;  // keep serving degraded-but-correct on the oracle
    }
  }
  if (install_model_if(w, degraded, std::move(fresh))) {
    counters_.add("scrub.repairs");
    flight_event("integrity", "replica_repaired", "worker " + std::to_string(w));
  }
}

void ForestServer::inject_replica_corruption() {
  const std::size_t w = corrupt_rr_++ % options_.num_workers;
  const std::shared_ptr<const WorkerModel> m = model_for(w);
  if (!m->layout_crc) return;  // FilBaseline: no resident layout to corrupt
  auto poisoned = std::make_shared<WorkerModel>();
  try {
    if (m->primary->options().variant == Variant::Csr) {
      poisoned->primary = std::make_shared<const Classifier>(
          m->primary->forest(), corrupt_replica_copy(m->primary->csr()), classifier_options_);
    } else {
      poisoned->primary = std::make_shared<const Classifier>(
          m->primary->forest(), corrupt_replica_copy(m->primary->hierarchical()),
          classifier_options_);
    }
  } catch (const std::exception&) {
    return;  // e.g. a stump forest with no internal node: nothing to flip
  }
  poisoned->fallback = m->fallback;
  poisoned->generation = m->generation;
  poisoned->health = m->health;
  // Keep the pristine reference CRC: the whole point is that the live
  // layout now drifts from it, which only the scrubber/audits can see.
  poisoned->layout_crc = m->layout_crc;
  install_model_if(w, m, std::move(poisoned));
}

double retry_backoff_seconds(const RetryPolicy& policy, int attempt, Xoshiro256& rng) {
  // ldexp scales by 2^attempt exactly (no libm rounding variance), so the
  // whole expression is reproducible bit-for-bit across platforms.
  const double exponential = std::ldexp(policy.backoff_base_seconds, attempt);
  double backoff = std::min(exponential, policy.backoff_max_seconds);
  backoff *= 1.0 + policy.jitter_fraction * rng.uniform(-1.0, 1.0);
  return backoff;
}

bool ForestServer::backoff_sleep(std::size_t w, int attempt, const Request& req) {
  // Deterministic jitter (per-worker stream of the server seed) spreads
  // retries from concurrent workers so they do not re-converge on the
  // recovering backend in lockstep.
  const double backoff = retry_backoff_seconds(options_.retry, attempt, jitter_[w]);
  if (req.has_deadline &&
      SteadyClock::now() + to_duration(backoff) >= req.deadline) {
    return false;
  }
  if (backoff > 0.0) std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  return true;
}

}  // namespace hrf::serve
