#pragma once

// Per-backend circuit breaker for the serving layer (docs/serving.md).
//
// A breaker protects the primary (simulated-accelerator) backend from
// being hammered while it is persistently failing, and protects request
// latency from burning retry budgets against a dead device. Classic
// three-state machine:
//
//   Closed   requests flow to the primary; `failure_threshold`
//            *consecutive* failures trip the breaker.
//   Open     the primary is skipped entirely (callers route to the
//            CPU-native fallback); after `open_seconds` of cooldown the
//            next admission check moves to HalfOpen.
//   HalfOpen up to `half_open_probes` probe requests may try the primary;
//            a probe success closes the breaker, a probe failure re-opens
//            it (a new trip, a new cooldown).
//
// The clock is injectable so unit tests drive cooldown expiry
// deterministically instead of sleeping.

#include <cstdint>
#include <functional>
#include <mutex>

namespace hrf::serve {

enum class CircuitState { Closed, Open, HalfOpen };

const char* to_string(CircuitState s);

struct CircuitBreakerOptions {
  /// Consecutive primary failures (across requests and retries) that trip
  /// Closed -> Open.
  int failure_threshold = 5;
  /// Cooldown before an Open breaker lets probe traffic through.
  double open_seconds = 1.0;
  /// Probe budget per HalfOpen episode.
  int half_open_probes = 1;
  /// Invoked on every state transition, outside the breaker mutex (so it
  /// may call back into anything, e.g. an obs::FlightRecorder). Multiple
  /// transitions report in the order they happened.
  std::function<void(CircuitState from, CircuitState to)> on_transition = {};
};

/// Thread-safe; all transitions happen under one mutex (the protected
/// operation — a classification — is orders of magnitude heavier).
class CircuitBreaker {
 public:
  /// Monotonic seconds; defaults to steady_clock. Tests inject a fake.
  using Clock = std::function<double()>;

  explicit CircuitBreaker(CircuitBreakerOptions options, Clock clock = nullptr);

  /// Admission check: true when the caller may try the primary backend.
  /// Performs the Open -> HalfOpen transition when the cooldown elapsed
  /// (the admitted request is then a probe), and spends one probe charge
  /// per admission while HalfOpen.
  bool allow_request();

  /// Reports the admitted request's outcome. Success closes a HalfOpen
  /// breaker and clears the consecutive-failure count; failure counts
  /// toward the threshold (Closed) or re-opens the breaker (HalfOpen).
  void record_success();
  void record_failure();

  /// Reports that the admitted request's deadline expired before the
  /// primary produced an outcome. A timeout is not evidence either way
  /// while Closed (the deadline is the client's latency budget, not a
  /// backend fault), but a HalfOpen probe that times out MUST still
  /// resolve its probe charge: without this the charge spent by
  /// allow_request() leaks and the breaker sticks HalfOpen with zero
  /// budget — every later request short-circuits to fallback with no
  /// path back to Closed. HalfOpen re-opens (a new trip, a new
  /// cooldown); Closed and Open are left untouched.
  void record_timeout();

  /// Stored state; does not anticipate cooldown expiry (allow_request
  /// performs that transition).
  CircuitState state() const;

  /// Transitions into Open, cumulative (Closed->Open and HalfOpen->Open).
  std::uint64_t trips() const;

  /// HalfOpen probe admissions, cumulative.
  std::uint64_t probes() const;

  int consecutive_failures() const;

  const CircuitBreakerOptions& options() const { return options_; }

 private:
  void trip_locked();

  CircuitBreakerOptions options_;
  Clock clock_;
  mutable std::mutex mu_;
  CircuitState state_ = CircuitState::Closed;
  int consecutive_failures_ = 0;
  int probes_left_ = 0;       // HalfOpen probe budget remaining
  double open_until_ = 0.0;   // cooldown end (clock_ seconds)
  std::uint64_t trips_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace hrf::serve
