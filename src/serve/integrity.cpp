#include "serve/integrity.hpp"

#include <span>

#include "util/crc32.hpp"
#include "util/error.hpp"

namespace hrf::serve {

namespace {

/// Accumulates bytes exactly the way layout_io's SectionWriter buffers a
/// v2 section payload: pods raw, arrays as u64 count + raw elements. The
/// incremental crc32() folds section payloads the same way folding the
/// blob's per-section CRCs does, so one running checksum suffices.
class CrcAccumulator {
 public:
  template <typename T>
  CrcAccumulator& pod(const T& v) {
    crc_ = crc32(&v, sizeof v, crc_);
    return *this;
  }

  template <typename T>
  CrcAccumulator& array(std::span<const T> xs) {
    pod(static_cast<std::uint64_t>(xs.size()));
    if (!xs.empty()) crc_ = crc32(xs.data(), xs.size_bytes(), crc_);
    return *this;
  }

  std::uint32_t value() const { return crc_; }

 private:
  std::uint32_t crc_ = 0;
};

/// Re-routes every internal node: feature_id == -1 marks leaves (and
/// hierarchical padding slots), whose class votes must stay intact so the
/// corrupted replica still emits valid labels — silent, not crashing.
void clobber_thresholds(std::span<const std::int32_t> feature_id, std::vector<float>& value) {
  bool touched = false;
  for (std::size_t i = 0; i < feature_id.size(); ++i) {
    if (feature_id[i] >= 0) {
      value[i] = -1e30f;
      touched = true;
    }
  }
  require(touched, "corrupt_replica_copy needs at least one internal node");
}

}  // namespace

std::uint32_t layout_crc32(const CsrForest& layout) {
  CrcAccumulator acc;
  acc.pod(static_cast<std::uint64_t>(layout.num_features()))
      .pod(static_cast<std::uint32_t>(layout.num_classes()))
      .array(layout.feature_id())
      .array(layout.value())
      .array(layout.children_arr())
      .array(layout.children_arr_idx())
      .array(layout.tree_root());
  return acc.value();
}

std::uint32_t layout_crc32(const HierarchicalForest& layout) {
  CrcAccumulator acc;
  acc.pod(static_cast<std::uint64_t>(layout.num_features()))
      .pod(static_cast<std::uint32_t>(layout.num_classes()))
      .pod(static_cast<std::int32_t>(layout.config().subtree_depth))
      .pod(static_cast<std::int32_t>(layout.config().root_subtree_depth))
      .pod(static_cast<std::uint64_t>(layout.real_nodes()))
      .array(layout.subtree_node_offsets())
      .array(layout.subtree_depths())
      .array(layout.connection_offsets())
      .array(layout.subtree_connection())
      .array(layout.feature_id())
      .array(layout.value())
      .array(layout.tree_subtree_begin());
  return acc.value();
}

CsrForest corrupt_replica_copy(const CsrForest& layout) {
  std::vector<std::int32_t> feature_id(layout.feature_id().begin(), layout.feature_id().end());
  std::vector<float> value(layout.value().begin(), layout.value().end());
  std::vector<std::int32_t> children(layout.children_arr().begin(), layout.children_arr().end());
  std::vector<std::int32_t> children_idx(layout.children_arr_idx().begin(),
                                         layout.children_arr_idx().end());
  std::vector<std::int32_t> roots(layout.tree_root().begin(), layout.tree_root().end());
  clobber_thresholds(feature_id, value);
  return CsrForest::from_parts(std::move(feature_id), std::move(value), std::move(children),
                               std::move(children_idx), std::move(roots), layout.num_features(),
                               layout.num_classes());
}

HierarchicalForest corrupt_replica_copy(const HierarchicalForest& layout) {
  std::vector<std::uint32_t> node_offset(layout.subtree_node_offsets().begin(),
                                         layout.subtree_node_offsets().end());
  std::vector<std::uint8_t> depth(layout.subtree_depths().begin(), layout.subtree_depths().end());
  std::vector<std::uint32_t> conn_offset(layout.connection_offsets().begin(),
                                         layout.connection_offsets().end());
  std::vector<std::int32_t> connection(layout.subtree_connection().begin(),
                                       layout.subtree_connection().end());
  std::vector<std::int32_t> feature_id(layout.feature_id().begin(), layout.feature_id().end());
  std::vector<float> value(layout.value().begin(), layout.value().end());
  std::vector<std::uint32_t> begin(layout.tree_subtree_begin().begin(),
                                   layout.tree_subtree_begin().end());
  clobber_thresholds(feature_id, value);
  return HierarchicalForest::from_parts(layout.config(), layout.num_features(),
                                        layout.num_classes(), layout.real_nodes(),
                                        std::move(node_offset), std::move(depth),
                                        std::move(conn_offset), std::move(connection),
                                        std::move(feature_id), std::move(value),
                                        std::move(begin));
}

}  // namespace hrf::serve
