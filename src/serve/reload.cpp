// ForestServer's model-lifecycle state machine (docs/model-lifecycle.md):
//
//   load -> validate -> shadow -> build -> canary -> promote -> watch
//
// Every phase runs on the caller's thread (typically the store watcher),
// never on a worker — workers keep serving the previous generation until
// their slot pointer flips, and flip back automatically on rollback.

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "data/synthetic.hpp"
#include "serve/model_store.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace hrf::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(std::max(0.0, seconds)));
}

// Health-poll tick. The reload thread is the only poller (workers never
// wait on it), so a short sleep loop is simpler than a condition variable
// threaded through the hot request path, and trivially TSan-clean.
constexpr std::chrono::milliseconds kPollTick{1};

}  // namespace

const char* to_string(ReloadOutcome outcome) {
  switch (outcome) {
    case ReloadOutcome::Promoted: return "promoted";
    case ReloadOutcome::NoOp: return "no-op";
    case ReloadOutcome::RejectedLoad: return "rejected-load";
    case ReloadOutcome::RejectedValidation: return "rejected-validation";
    case ReloadOutcome::RejectedShadow: return "rejected-shadow";
    case ReloadOutcome::RolledBackCanary: return "rolled-back-canary";
    case ReloadOutcome::RolledBackPostPromotion: return "rolled-back-post-promotion";
  }
  return "unknown";
}

std::string ReloadReport::to_string() const {
  std::string out = "reload gen " + std::to_string(from_generation) + " -> " +
                    std::to_string(to_generation) + ": " + serve::to_string(outcome);
  if (!reason.empty()) out += " (" + reason + ")";
  out += " in " + std::to_string(total_seconds) + "s [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) out += ", ";
    out += phases[i].name + " " + std::to_string(phases[i].seconds) + "s";
  }
  out += "]";
  return out;
}

ReloadReport ForestServer::reload_latest(const ModelStore& store, const ReloadOptions& opts) {
  const std::optional<std::uint64_t> cur = store.current();
  if (!cur || *cur == generation()) {
    // A polling no-op is not a reload attempt: nothing recorded.
    ReloadReport rep;
    rep.from_generation = generation();
    rep.to_generation = cur.value_or(generation());
    rep.outcome = ReloadOutcome::NoOp;
    rep.reason = cur ? "already serving generation " + std::to_string(*cur)
                     : "store has no complete generation";
    return rep;
  }
  return reload(store, *cur, opts);
}

ReloadReport ForestServer::reload(const ModelStore& store, std::uint64_t gen,
                                  const ReloadOptions& opts) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  WallTimer total;
  ReloadReport rep;
  rep.from_generation = generation();
  rep.to_generation = gen;

  // The reload state machine is traced like a request (sampling applies):
  // one "reload" trace with a child span per phase.
  trace::Span rspan = tracer_.start_trace("reload");
  if (rspan.active()) {
    rspan.set_attr("from_generation", rep.from_generation);
    rspan.set_attr("to_generation", rep.to_generation);
  }
  trace::Span phase_span;

  const auto finish = [&](ReloadOutcome outcome, std::string reason) {
    rep.outcome = outcome;
    rep.reason = std::move(reason);
    rep.total_seconds = total.seconds();
    if (rspan.active()) {
      rspan.set_attr("outcome", serve::to_string(outcome));
      if (!rep.reason.empty()) rspan.set_attr("reason", rep.reason);
    }
    rspan.end();
    record_reload(rep);
    return rep;
  };
  const auto begin_phase = [&](const char* name) {
    phase_span = rspan.child(name);
    return WallTimer{};
  };
  const auto end_phase = [&](const char* name, const WallTimer& t) {
    rep.phases.push_back({name, t.seconds()});
    phase_span.end();
  };

  // --- load: pull the generation off disk, full CRC + format checks ----
  LoadedModel model;
  {
    WallTimer t = begin_phase("load");
    try {
      model = store.load(gen);
    } catch (const Error& e) {
      end_phase("load", t);
      return finish(ReloadOutcome::RejectedLoad, e.what());
    }
    end_phase("load", t);
  }
  const CsrForest* csr = model.csr ? &*model.csr : nullptr;
  const HierarchicalForest* hier = model.hier ? &*model.hier : nullptr;

  // --- validate: can this model actually be built into our replica
  // configuration? (layout-kind vs variant, feature/class shape) --------
  auto health = std::make_shared<ModelHealth>();
  std::shared_ptr<const WorkerModel> candidate0;
  {
    WallTimer t = begin_phase("validate");
    try {
      candidate0 = build_worker_model(model.forest, csr, hier, gen, health);
    } catch (const Error& e) {
      end_phase("validate", t);
      return finish(ReloadOutcome::RejectedValidation, e.what());
    }
    end_phase("validate", t);
  }

  // --- shadow: differential run against the CPU reference oracle ------
  if (opts.shadow_validation) {
    WallTimer t = begin_phase("shadow");
    std::optional<Dataset> generated;
    if (opts.probe == nullptr) {
      generated = make_random_queries(opts.shadow_queries,
                                      static_cast<int>(model.forest.num_features()),
                                      opts.shadow_seed);
    }
    const Dataset& probe = opts.probe ? *opts.probe : *generated;
    rep.shadow_queries = probe.num_samples();
    try {
      const std::vector<std::uint8_t> expected =
          model.forest.classify_batch(probe.features(), probe.num_samples());
      const RunReport got = candidate0->primary->classify(probe);
      std::size_t mismatches = 0;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        if (got.predictions.at(i) != expected[i]) ++mismatches;
      }
      rep.shadow_mismatches = mismatches;
      if (mismatches > 0) {
        end_phase("shadow", t);
        return finish(ReloadOutcome::RejectedShadow,
                      "shadow validation: " + std::to_string(mismatches) + " of " +
                          std::to_string(expected.size()) +
                          " predictions differ from the CPU oracle (layout does not match "
                          "the published forest?)");
      }
    } catch (const Error& e) {
      end_phase("shadow", t);
      return finish(ReloadOutcome::RejectedShadow,
                    std::string("shadow run failed: ") + e.what());
    }
    end_phase("shadow", t);
  }

  // --- build: replicas for the remaining workers ----------------------
  std::vector<std::shared_ptr<const WorkerModel>> candidates(options_.num_workers);
  candidates[0] = candidate0;
  {
    WallTimer t = begin_phase("build");
    try {
      for (std::size_t w = 1; w < options_.num_workers; ++w) {
        candidates[w] = build_worker_model(model.forest, csr, hier, gen, health);
      }
    } catch (const Error& e) {
      end_phase("build", t);
      return finish(ReloadOutcome::RejectedValidation, e.what());
    }
    end_phase("build", t);
  }

  // Pre-flip snapshot of every slot: what rollback restores.
  std::vector<std::shared_ptr<const WorkerModel>> previous(options_.num_workers);
  for (std::size_t w = 0; w < options_.num_workers; ++w) previous[w] = model_for(w);

  // --- canary: candidate serves on worker 0 only; it must prove itself
  // with live traffic before anyone else flips -------------------------
  if (opts.canary_success_requests > 0) {
    WallTimer t = begin_phase("canary");
    install_model(0, candidates[0]);
    const SteadyClock::time_point deadline =
        SteadyClock::now() + to_duration(opts.canary_timeout_seconds);
    std::string failure;
    for (;;) {
      if (stopping_.load(std::memory_order_acquire)) {
        failure = "server began shutdown during canary";
        break;
      }
      const std::uint64_t errors = health->primary_errors.load(std::memory_order_relaxed);
      if (errors > 0) {
        failure = "canary worker recorded " + std::to_string(errors) + " primary error(s)";
        break;
      }
      const std::uint64_t done = health->completed.load(std::memory_order_relaxed);
      if (done >= opts.canary_success_requests) break;  // proven healthy
      if (SteadyClock::now() >= deadline) {
        failure = "canary saw only " + std::to_string(done) + " of " +
                  std::to_string(opts.canary_success_requests) +
                  " required requests before the " +
                  std::to_string(opts.canary_timeout_seconds) + "s timeout";
        break;
      }
      std::this_thread::sleep_for(kPollTick);
    }
    if (!failure.empty()) {
      install_model(0, previous[0]);  // old model resumes on the canary worker
      end_phase("canary", t);
      return finish(ReloadOutcome::RolledBackCanary, failure);
    }
    end_phase("canary", t);
  }

  // --- promote: flip every worker's slot ------------------------------
  {
    WallTimer t = begin_phase("promote");
    for (std::size_t w = 0; w < options_.num_workers; ++w) install_model(w, candidates[w]);
    current_generation_.store(gen, std::memory_order_release);
    end_phase("promote", t);
  }

  // --- watch: post-promotion error-spike detection --------------------
  if (opts.post_promotion_watch_requests > 0) {
    WallTimer t = begin_phase("watch");
    const std::uint64_t base_completed = health->completed.load(std::memory_order_relaxed);
    const std::uint64_t base_errors = health->primary_errors.load(std::memory_order_relaxed);
    const std::uint64_t base_trips = breaker_.trips();
    const SteadyClock::time_point deadline =
        SteadyClock::now() + to_duration(opts.post_promotion_timeout_seconds);
    std::string failure;
    for (;;) {
      if (stopping_.load(std::memory_order_acquire)) break;  // shutdown: keep promotion
      const std::uint64_t errors =
          health->primary_errors.load(std::memory_order_relaxed) - base_errors;
      const std::uint64_t trips = breaker_.trips() - base_trips;
      if (errors >= opts.post_promotion_error_threshold || trips > 0) {
        failure = trips > 0
                      ? "circuit breaker tripped " + std::to_string(trips) +
                            " time(s) after promotion"
                      : std::to_string(errors) + " primary error(s) within the watch window";
        break;
      }
      const std::uint64_t done =
          health->completed.load(std::memory_order_relaxed) - base_completed;
      if (done >= opts.post_promotion_watch_requests) break;  // watched enough
      // A quiet timeout keeps the promotion: unlike the canary, silence
      // after a successful canary is not evidence of failure.
      if (SteadyClock::now() >= deadline) break;
      std::this_thread::sleep_for(kPollTick);
    }
    if (!failure.empty()) {
      for (std::size_t w = 0; w < options_.num_workers; ++w) install_model(w, previous[w]);
      current_generation_.store(rep.from_generation, std::memory_order_release);
      end_phase("watch", t);
      return finish(ReloadOutcome::RolledBackPostPromotion, failure);
    }
    end_phase("watch", t);
  }

  return finish(ReloadOutcome::Promoted, "");
}

}  // namespace hrf::serve
