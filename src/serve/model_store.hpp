#pragma once

// Versioned on-disk model store for zero-downtime serving
// (docs/model-lifecycle.md).
//
// A store is a directory of immutable, numbered *generations*, each a
// subdirectory holding the forest model, the compiled inference layout
// blob, and a checksummed generation manifest (`gen.json`) written last —
// a generation exists only once its manifest commits, so readers never
// observe a half-published model:
//
//   store/
//     MANIFEST.json            # store pointer: schema + current generation
//     gen-000001/
//       forest.hrff            # Forest::save (crash-safe atomic write)
//       layout.hrfl            # save_csr / save_hierarchical (v2, CRC'd)
//       gen.json               # id, layout kind, per-file byte count + CRC-32
//     gen-000002.quarantined/  # damaged generation set aside, never deleted
//
// Every file is written via util/atomic_file (temp + fsync + rename), and
// `gen.json` commits after the blobs while `MANIFEST.json` commits after
// `gen.json` — so a publisher killed at any instant (fault sites
// crash:publish / crash:manifest) leaves either a recoverable partial
// generation or a stale pointer, never a corrupt store. open() runs
// recovery: damaged or partial generations are *quarantined* (renamed
// aside with the reason reported, never silently deleted), and the
// newest complete generation wins as current.
//
// Concurrency model: one publisher at a time; any number of readers.
// current() is a cheap poll (one small JSON read + completeness check) on
// the happy path; when the pointed-at generation is found damaged it
// quarantines the rot and repoints the manifest, so a reload never
// receives a generation that decayed after open().

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "forest/forest.hpp"
#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"

namespace hrf::serve {

/// One file of a generation as recorded in gen.json.
struct StoredFile {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
};

/// A complete (validated-manifest) generation.
struct Generation {
  std::uint64_t id = 0;
  std::string dir;          // absolute path of the generation directory
  std::string layout_kind;  // "csr" | "hierarchical"
  std::string note;
  std::vector<StoredFile> files;

  std::uint64_t total_bytes() const;
};

/// A generation recovery set aside: partial publish, failed checksum,
/// unparseable manifest. The directory is renamed `<dir>.quarantined`
/// (data kept for forensics), and `reason` carries the validation error —
/// including FormatError's section/byte-offset detail when available.
struct QuarantinedGeneration {
  std::string dir;     // post-rename path
  std::string reason;
};

/// What open()/recover() found and did.
struct StoreReport {
  std::optional<std::uint64_t> current;      // newest complete generation
  std::vector<Generation> generations;       // complete, ascending id
  std::vector<QuarantinedGeneration> quarantined;
  /// True when MANIFEST.json was missing, torn, or stale (pointing at a
  /// damaged or non-newest generation) and was rebuilt from the scan.
  bool manifest_recovered = false;
};

/// A generation fully loaded and validated, ready to build classifier
/// replicas from. Exactly one of csr/hier is set, per layout_kind.
struct LoadedModel {
  std::uint64_t generation = 0;
  Forest forest;
  std::string layout_kind;
  std::optional<CsrForest> csr;
  std::optional<HierarchicalForest> hier;
};

class ModelStore {
 public:
  /// Opens (creating if needed) the store at `dir` and runs recovery:
  /// quarantines damaged generations and reconciles MANIFEST.json to the
  /// newest complete generation. Throws hrf::Error when the directory is
  /// unusable.
  static ModelStore open(const std::string& dir);

  const std::string& dir() const { return dir_; }
  /// The recovery outcome of open() / the last explicit recover() call.
  const StoreReport& report() const { return report_; }

  /// Re-runs the open()-time recovery scan against current disk state.
  StoreReport recover();

  /// Poll of the current generation: the manifest pointer when it names a
  /// still-complete generation (one small JSON read + CRC manifest check,
  /// the happy path). When the pointed-at generation was damaged *after*
  /// open() — silent on-disk corruption — the rot is quarantined on the
  /// spot (renamed aside, recorded in read_quarantined()) and the
  /// manifest is repointed at the newest surviving complete generation,
  /// so the watcher never hands a decayed generation to a reload.
  /// nullopt for an empty store.
  std::optional<std::uint64_t> current() const;

  /// Generations quarantined by current() polls (damage detected after
  /// open), oldest first. open()/recover()-time quarantines are in
  /// report().quarantined instead.
  std::vector<QuarantinedGeneration> read_quarantined() const;

  /// Complete generations on disk, ascending id (fresh scan).
  std::vector<Generation> generations() const;
  Generation info(std::uint64_t id) const;  // ConfigError when absent

  /// Publishes a new generation from an in-memory model + layout. Writes
  /// blobs, then gen.json, then the MANIFEST pointer, each atomically;
  /// returns the new generation id.
  std::uint64_t publish(const Forest& forest, const CsrForest& layout,
                        const std::string& note = "");
  std::uint64_t publish(const Forest& forest, const HierarchicalForest& layout,
                        const std::string& note = "");

  /// Publishes by copying existing artifact files byte-for-byte (the CLI
  /// `publish` path). The layout blob is fingerprinted (peek_layout_kind)
  /// but deliberately NOT semantically validated — structural and shadow
  /// validation happen at reload time, which is what lets tests publish
  /// behaviorally-wrong generations to exercise rejection.
  std::uint64_t publish_files(const std::string& forest_path, const std::string& layout_path,
                              const std::string& note = "");

  /// Loads and fully validates a generation: per-file size + CRC against
  /// gen.json, then format-level parse (Forest::load, load_csr /
  /// load_hierarchical, each with its own framing checks). Throws
  /// FormatError (with section/offset detail) on any damage, ConfigError
  /// when the generation does not exist.
  LoadedModel load(std::uint64_t id) const;

 private:
  explicit ModelStore(std::string dir) : dir_(std::move(dir)) {}

  /// Shared publish sequence: allocate id, `write_blobs(gen_dir)` (returns
  /// the layout kind), fingerprint, commit gen.json, then the MANIFEST.
  std::uint64_t publish_with(const std::function<std::string(const std::string&)>& write_blobs,
                             const std::string& note);

  /// current() is const but must record the quarantines it performs, and
  /// multiple watcher threads may poll; shared_ptr keeps ModelStore
  /// movable (open() returns by value) despite the mutex.
  struct ReadQuarantineLog {
    std::mutex mu;
    std::vector<QuarantinedGeneration> items;
  };

  std::string dir_;
  StoreReport report_;
  std::shared_ptr<ReadQuarantineLog> read_quarantine_log_ =
      std::make_shared<ReadQuarantineLog>();
};

}  // namespace hrf::serve
