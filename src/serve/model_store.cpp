#include "serve/model_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "layout/layout_io.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace hrf::serve {

namespace fs = std::filesystem;

namespace {

constexpr int kGenSchema = 1;
constexpr int kManifestSchema = 1;
constexpr const char* kManifestName = "MANIFEST.json";
constexpr const char* kGenManifestName = "gen.json";
constexpr const char* kForestName = "forest.hrff";
constexpr const char* kLayoutName = "layout.hrfl";
constexpr const char* kQuarantineSuffix = ".quarantined";

std::string gen_dir_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "gen-%06llu", static_cast<unsigned long long>(id));
  return buf;
}

/// Parses "gen-NNNNNN" exactly; nullopt for anything else (quarantined
/// dirs, staging temp files, unrelated entries).
std::optional<std::uint64_t> parse_gen_dir(const std::string& name) {
  if (name.rfind("gen-", 0) != 0 || name.size() <= 4) return std::nullopt;
  std::uint64_t id = 0;
  for (std::size_t i = 4; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return id;
}

std::vector<std::byte> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw Error("cannot open for reading: " + path);
  std::vector<std::byte> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  if (!in) throw Error("read failed: " + path);
  return bytes;
}

StoredFile fingerprint(const std::string& dir, const std::string& name) {
  const std::vector<std::byte> bytes = read_file_bytes(dir + "/" + name);
  return StoredFile{name, bytes.size(), crc32(bytes)};
}

/// Publisher death sites (kill -9 semantics): std::_Exit skips every
/// destructor and buffer flush, exactly like the process being killed.
void maybe_crash(const char* site) {
  FaultInjector& inj = FaultInjector::global();
  if (inj.enabled() && inj.consume(site)) std::_Exit(137);
}

json::Value gen_manifest_json(const Generation& gen) {
  json::Value doc = json::Value::object();
  doc["schema"] = kGenSchema;
  doc["id"] = gen.id;
  doc["layout_kind"] = gen.layout_kind;
  doc["note"] = gen.note;
  json::Value files = json::Value::array();
  for (const StoredFile& f : gen.files) {
    json::Value entry = json::Value::object();
    entry["name"] = f.name;
    entry["bytes"] = f.bytes;
    entry["crc32"] = static_cast<std::uint64_t>(f.crc32);
    files.push_back(std::move(entry));
  }
  doc["files"] = std::move(files);
  return doc;
}

/// Reads + fully validates one generation directory: gen.json must parse,
/// match the directory's id, and every listed file must exist with the
/// recorded byte count and CRC-32. Throws FormatError/Error with an
/// actionable reason on any damage.
Generation validate_generation(const std::string& gdir, std::uint64_t id) {
  const std::string manifest_path = gdir + "/" + kGenManifestName;
  if (!fs::exists(manifest_path)) {
    throw FormatError("generation manifest missing (partial publish?): " + manifest_path);
  }
  const json::Value doc = json::Value::parse(read_file_text(manifest_path));
  if (static_cast<int>(doc.get("schema").as_number()) != kGenSchema) {
    throw FormatError("unsupported generation manifest schema in " + manifest_path);
  }
  Generation gen;
  gen.id = static_cast<std::uint64_t>(doc.get("id").as_number());
  if (gen.id != id) {
    throw FormatError("generation manifest id " + std::to_string(gen.id) +
                      " does not match directory " + gdir);
  }
  gen.dir = gdir;
  gen.layout_kind = doc.get("layout_kind").as_string();
  gen.note = doc.get("note").as_string();
  const json::Value& files = doc.get("files");
  for (std::size_t i = 0; i < files.size(); ++i) {
    StoredFile f;
    f.name = files.at(i).get("name").as_string();
    f.bytes = static_cast<std::uint64_t>(files.at(i).get("bytes").as_number());
    f.crc32 = static_cast<std::uint32_t>(files.at(i).get("crc32").as_number());
    const std::string path = gdir + "/" + f.name;
    if (!fs::exists(path)) throw FormatError("generation file missing: " + path);
    const std::vector<std::byte> bytes = read_file_bytes(path);
    if (bytes.size() != f.bytes) {
      throw FormatError("generation file size mismatch (" + std::to_string(bytes.size()) +
                        " vs recorded " + std::to_string(f.bytes) + "): " + path);
    }
    if (crc32(bytes) != f.crc32) {
      throw FormatError("generation file checksum mismatch (torn write or bit rot): " + path,
                        f.name, 0);
    }
    gen.files.push_back(std::move(f));
  }
  if (gen.files.empty()) throw FormatError("generation lists no files: " + manifest_path);
  return gen;
}

std::optional<std::uint64_t> read_manifest_current(const std::string& store_dir) {
  const std::string path = store_dir + "/" + kManifestName;
  if (!fs::exists(path)) return std::nullopt;
  const json::Value doc = json::Value::parse(read_file_text(path));  // may throw FormatError
  if (static_cast<int>(doc.get("schema").as_number()) != kManifestSchema) {
    throw FormatError("unsupported store manifest schema in " + path);
  }
  const json::Value* cur = doc.find("current");
  if (cur == nullptr || cur->is_null()) return std::nullopt;
  return static_cast<std::uint64_t>(cur->as_number());
}

void write_manifest(const std::string& store_dir, std::optional<std::uint64_t> current) {
  json::Value doc = json::Value::object();
  doc["schema"] = kManifestSchema;
  doc["current"] = current ? json::Value(*current) : json::Value();
  write_file_atomic(store_dir + "/" + kManifestName, doc.dump(2) + "\n");
}

/// Renames a damaged generation aside with a unique suffix (repeated
/// recoveries never collide). Returns the post-rename path, or the
/// original when the rename itself failed (data still never deleted).
std::string quarantine_dir(const std::string& gdir) {
  std::string target = gdir + kQuarantineSuffix;
  for (int n = 2; fs::exists(target); ++n) {
    target = gdir + kQuarantineSuffix + "." + std::to_string(n);
  }
  std::error_code ec;
  fs::rename(gdir, target, ec);
  return ec ? gdir : target;
}

/// All generation ids ever used in this store — complete, damaged, or
/// quarantined — so a fresh publish never reuses a quarantined id.
std::uint64_t max_seen_id(const std::string& store_dir) {
  std::uint64_t max_id = 0;
  for (const fs::directory_entry& e : fs::directory_iterator(store_dir)) {
    if (!e.is_directory()) continue;
    std::string name = e.path().filename().string();
    // Strip quarantine decoration: "gen-000002.quarantined[.N]" still
    // reserves id 2.
    const std::size_t dot = name.find('.');
    if (dot != std::string::npos) name.resize(dot);
    if (const auto id = parse_gen_dir(name)) max_id = std::max(max_id, *id);
  }
  return max_id;
}

}  // namespace

std::uint64_t Generation::total_bytes() const {
  std::uint64_t sum = 0;
  for (const StoredFile& f : files) sum += f.bytes;
  return sum;
}

ModelStore ModelStore::open(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir)) {
    throw Error("cannot open model store directory: " + dir + (ec ? " (" + ec.message() + ")" : ""));
  }
  ModelStore store(dir);
  store.recover();
  return store;
}

StoreReport ModelStore::recover() {
  StoreReport rep;
  std::vector<std::pair<std::uint64_t, std::string>> candidates;  // id, dir
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    const std::string name = e.path().filename().string();
    if (!e.is_directory()) continue;
    if (const auto id = parse_gen_dir(name)) {
      candidates.emplace_back(*id, e.path().string());
    } else if (name.find(kQuarantineSuffix) != std::string::npos) {
      rep.quarantined.push_back({e.path().string(), "(quarantined by an earlier recovery)"});
    }
  }
  std::sort(candidates.begin(), candidates.end());

  for (const auto& [id, gdir] : candidates) {
    try {
      rep.generations.push_back(validate_generation(gdir, id));
    } catch (const Error& e) {
      // Damaged: set aside with the reason, never delete.
      rep.quarantined.push_back({quarantine_dir(gdir), e.what()});
    }
  }
  if (!rep.generations.empty()) rep.current = rep.generations.back().id;

  // Reconcile the store pointer: the newest *complete* generation wins.
  // A torn/missing manifest, or one stale from a crash between gen.json
  // and the MANIFEST update, is rebuilt here.
  std::optional<std::uint64_t> on_disk;
  bool manifest_readable = true;
  try {
    on_disk = read_manifest_current(dir_);
  } catch (const Error&) {
    manifest_readable = false;  // torn or unparseable
  }
  if (!manifest_readable || on_disk != rep.current ||
      !fs::exists(dir_ + "/" + kManifestName)) {
    write_manifest(dir_, rep.current);
    rep.manifest_recovered = true;
  }
  report_ = rep;
  return rep;
}

std::optional<std::uint64_t> ModelStore::current() const {
  // Fast path: a valid manifest naming a complete generation. The
  // completeness re-check means a reader never acts on a pointer whose
  // generation rotted after publication.
  std::optional<std::uint64_t> pointed;
  try {
    pointed = read_manifest_current(dir_);
    if (!pointed) return std::nullopt;
    validate_generation(dir_ + "/" + gen_dir_name(*pointed), *pointed);
    return pointed;
  } catch (const Error& e) {
    // The pointed-at generation rotted after open() (or the manifest
    // tore). Quarantine the damage right here rather than leaving it for
    // a reload to trip over: the reload would re-validate, reject, and
    // keep polling into the same rot forever.
    if (pointed) {
      const std::string gdir = dir_ + "/" + gen_dir_name(*pointed);
      if (fs::is_directory(gdir)) {
        std::lock_guard<std::mutex> lock(read_quarantine_log_->mu);
        read_quarantine_log_->items.push_back({quarantine_dir(gdir), e.what()});
      }
    }
  }
  std::optional<std::uint64_t> newest;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    if (!e.is_directory()) continue;
    const auto id = parse_gen_dir(e.path().filename().string());
    if (!id || (newest && *newest >= *id)) continue;
    try {
      validate_generation(e.path().string(), *id);
      newest = *id;
    } catch (const Error&) {
      // incomplete — recover() will quarantine it; keep scanning
    }
  }
  // Repoint the store at what is actually servable so the next poll is
  // back on the fast path (best-effort: a read-only filesystem just
  // means the scan repeats next time).
  try {
    write_manifest(dir_, newest);
  } catch (const Error&) {
  }
  return newest;
}

std::vector<QuarantinedGeneration> ModelStore::read_quarantined() const {
  std::lock_guard<std::mutex> lock(read_quarantine_log_->mu);
  return read_quarantine_log_->items;
}

std::vector<Generation> ModelStore::generations() const {
  std::vector<Generation> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    if (!e.is_directory()) continue;
    if (const auto id = parse_gen_dir(e.path().filename().string())) {
      try {
        out.push_back(validate_generation(e.path().string(), *id));
      } catch (const Error&) {
        // damaged generations are report()/recover() business
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Generation& a, const Generation& b) { return a.id < b.id; });
  return out;
}

Generation ModelStore::info(std::uint64_t id) const {
  const std::string gdir = dir_ + "/" + gen_dir_name(id);
  if (!fs::is_directory(gdir)) {
    throw ConfigError("model store has no generation " + std::to_string(id) + " in " + dir_);
  }
  return validate_generation(gdir, id);
}

std::uint64_t ModelStore::publish(const Forest& forest, const CsrForest& layout,
                                  const std::string& note) {
  return publish_with(
      [&](const std::string& gdir) {
        forest.save(gdir + "/" + kForestName);
        save_csr(layout, gdir + "/" + kLayoutName);
        return std::string("csr");
      },
      note);
}

std::uint64_t ModelStore::publish(const Forest& forest, const HierarchicalForest& layout,
                                  const std::string& note) {
  return publish_with(
      [&](const std::string& gdir) {
        forest.save(gdir + "/" + kForestName);
        save_hierarchical(layout, gdir + "/" + kLayoutName);
        return std::string("hierarchical");
      },
      note);
}

std::uint64_t ModelStore::publish_files(const std::string& forest_path,
                                        const std::string& layout_path,
                                        const std::string& note) {
  const std::string kind = peek_layout_kind(layout_path);  // fingerprint only
  return publish_with(
      [&](const std::string& gdir) {
        write_file_atomic(gdir + "/" + kForestName, read_file_bytes(forest_path));
        write_file_atomic(gdir + "/" + kLayoutName, read_file_bytes(layout_path));
        return kind;
      },
      note);
}

std::uint64_t ModelStore::publish_with(
    const std::function<std::string(const std::string&)>& write_blobs,
    const std::string& note) {
  const std::uint64_t id = max_seen_id(dir_) + 1;
  const std::string gdir = dir_ + "/" + gen_dir_name(id);
  std::error_code ec;
  fs::create_directory(gdir, ec);
  if (ec) throw Error("cannot create generation directory " + gdir + ": " + ec.message());

  Generation gen;
  gen.id = id;
  gen.dir = gdir;
  gen.note = note;
  gen.layout_kind = write_blobs(gdir);
  gen.files.push_back(fingerprint(gdir, kForestName));
  gen.files.push_back(fingerprint(gdir, kLayoutName));

  // Death here leaves a partial generation (no gen.json): recovery
  // quarantines it and the previous generation stays current.
  maybe_crash("crash:publish");
  write_file_atomic(gdir + "/" + kGenManifestName, gen_manifest_json(gen).dump(2) + "\n");
  // Death here leaves a complete generation with a stale store pointer:
  // recovery reconciles the manifest (newest complete generation wins).
  maybe_crash("crash:manifest");
  write_manifest(dir_, id);
  return id;
}

LoadedModel ModelStore::load(std::uint64_t id) const {
  const Generation gen = info(id);  // CRC + manifest validation
  LoadedModel out;
  out.generation = id;
  out.layout_kind = gen.layout_kind;
  out.forest = Forest::load(gen.dir + "/" + kForestName);
  const std::string layout_path = gen.dir + "/" + kLayoutName;
  const std::string blob_kind = peek_layout_kind(layout_path);
  if (blob_kind != gen.layout_kind) {
    throw FormatError("layout blob kind '" + blob_kind + "' does not match manifest kind '" +
                      gen.layout_kind + "' in " + gen.dir);
  }
  if (gen.layout_kind == "csr") {
    out.csr = load_csr(layout_path);
  } else if (gen.layout_kind == "hierarchical") {
    out.hier = load_hierarchical(layout_path);
  } else {
    throw FormatError("unknown layout kind '" + gen.layout_kind + "' in " + gen.dir);
  }
  return out;
}

}  // namespace hrf::serve
