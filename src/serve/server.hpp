#pragma once

// Concurrent serving layer over the Classifier (docs/serving.md).
//
// A ForestServer owns a pool of worker threads, each holding its own
// Classifier replica (primary backend) plus a CPU-native fallback
// replica, fed from one bounded MPMC request queue. Robustness features,
// in request order:
//
//   admission   queue full -> submit() throws OverloadError immediately
//               (bounded memory, fast feedback) instead of queueing
//               unboundedly; after shutdown begins, ShutdownError.
//   deadlines   a request past its deadline is shed before dispatch, and
//               time-boxed during execution by chunked classification
//               (cancel polled between chunks) — both DeadlineError.
//   retry       transient ResourceError from the primary is retried with
//               exponential backoff + deterministic jitter.
//   breaker     a per-server circuit breaker trips after N consecutive
//               primary failures; while open, requests route straight to
//               the CPU-native fallback (bit-identical predictions, noted
//               in RunReport::degradations), and probe requests half-open
//               it before it closes.
//   drain       shutdown() stops admission, drains in-flight and queued
//               requests up to a drain deadline, and fails whatever is
//               left with ShutdownError, reporting counts.
//   reload      zero-downtime model swap from a versioned ModelStore:
//               candidate replicas are built off-thread, shadow-validated
//               against the CPU oracle, canaried on one worker, then
//               promoted via an atomic per-worker slot flip — with
//               automatic rollback on any failure (serve/reload.hpp,
//               docs/model-lifecycle.md).
//   integrity   runtime silent-corruption defense (serve/integrity.hpp):
//               a background scrubber re-verifies each replica's layout
//               CRC against the value captured at install; sampled shadow
//               audits re-execute every Nth request on the CPU oracle
//               (serving the oracle's answer on divergence); a watchdog
//               answers a hung worker's in-flight request on the oracle
//               and replaces the thread. A corrupted replica is
//               quarantined (the oracle serves as primary) and rebuilt in
//               place while the other workers keep serving.
//
// Composition with the fault-injection harness (util/fault): injection
// sites fire inside worker threads, driving the retry and breaker paths
// deterministically in tests. Degradations recorded by the per-replica
// FallbackPolicy propagate into each response's RunReport.
//
// Model hot-swap memory model: each worker owns a *slot* holding a
// shared_ptr to an immutable WorkerModel (primary + fallback replica +
// generation + shared health counters). A worker snapshots the pointer
// once per request, so an in-flight request finishes entirely on the
// model it started with; reload flips the pointers between requests.
// Slots are mutex-guarded (uncontended in steady state — one lock per
// request) rather than lock-free, keeping the swap trivially TSan-clean.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/classifier.hpp"
#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/rollup.hpp"
#include "serve/batcher.hpp"
#include "serve/circuit_breaker.hpp"
#include "serve/integrity.hpp"
#include "serve/qos.hpp"
#include "serve/reload.hpp"
#include "util/histogram.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace hrf::serve {

class ModelStore;
struct LoadedModel;

/// Server-level retry of transient primary-backend failures. Distinct
/// from FallbackPolicy::max_retries (which retries *inside* one classify
/// call): this one backs off between attempts, so a device that needs a
/// moment to recover is not hammered.
struct RetryPolicy {
  int max_retries = 2;                 // extra primary attempts per request
  double backoff_base_seconds = 1e-3;  // first backoff; doubles per attempt
  double backoff_max_seconds = 0.1;    // exponential growth cap
  double jitter_fraction = 0.5;        // backoff scaled by 1 +/- U*fraction
};

/// Jittered exponential backoff for 0-based `attempt`:
/// min(base * 2^attempt, max) scaled by 1 + jitter_fraction * U(-1, 1)
/// with U drawn from `rng`. Pure given the rng state: a fixed seed
/// reproduces the exact sequence bit-for-bit on any platform (the base
/// is scaled by ldexp, not pow, so no libm rounding leaks in), which the
/// chaos harness's deterministic replays rely on.
double retry_backoff_seconds(const RetryPolicy& policy, int attempt, Xoshiro256& rng);

struct ServerOptions {
  std::size_t num_workers = 2;
  std::size_t queue_capacity = 64;
  /// Applied to submit(queries) without an explicit deadline; 0 = none.
  double default_deadline_seconds = 0.0;
  /// Chunk size for deadline-bounded (time-boxed) execution.
  std::size_t deadline_chunk_size = 256;
  RetryPolicy retry{};
  CircuitBreakerOptions breaker{};
  /// Default drain budget for shutdown() / the destructor.
  double drain_deadline_seconds = 5.0;
  /// When true, workers do not dequeue until resume() — admission is
  /// still open, which tests and warmup flows use to stage a backlog
  /// deterministically.
  bool start_paused = false;
  /// Seed for backoff jitter (per-worker streams split from it).
  std::uint64_t seed = 42;
  /// Request-trace sampling rate in [0, 1] (util/trace): 0 disables
  /// tracing entirely (span operations become no-ops), 1 records every
  /// request. Sampling is deterministic — rate r records every 1/r-th
  /// submission.
  double trace_sampling = 0.0;
  /// Completed traces retained in the tracer's ring buffer.
  std::size_t trace_capacity = 128;
  /// How long a worker stalls when the `freeze:shard` fault site fires at
  /// dispatch (chaos only; the site is never armed in production). The
  /// frozen worker then proceeds normally — typically into the
  /// deadline-shed path, which is the point: a wedged shard that the
  /// cluster router's hedging and probes must route around.
  double inject_freeze_seconds = 0.25;
  /// Per-tenant admission quotas (serve/qos.hpp): weighted reserved
  /// shares of queue_capacity plus a shared spare pool. Empty = disabled.
  TenantQuotaOptions quotas{};
  /// Tenant whose requests the `surge:tenant` fault site stalls, and for
  /// how long per charge (chaos only — a deterministic noisy neighbor
  /// whose requests are heavy as well as frequent).
  std::string surge_tenant;
  double inject_surge_seconds = 0.05;
  /// Dynamic micro-batching (serve/batcher.hpp, docs/serving.md): a
  /// worker coalesces consecutive shape-compatible queued requests into
  /// one backend-native classify_stream batch and demultiplexes the
  /// responses. Disabled by default (max_requests <= 1); batches of one
  /// take the exact unbatched dispatch path.
  BatchOptions batching{};
  /// Runtime integrity monitor (serve/integrity.hpp): replica scrubber,
  /// sampled shadow audits, worker watchdog. All off by default — an
  /// unconfigured server starts no monitor thread and audits nothing.
  IntegrityOptions integrity{};
  /// Incident flight recorder (obs/flight_recorder.hpp): when set, the
  /// server pushes structured events — breaker transitions, reload
  /// outcomes, quota sheds, watchdog restarts, scrub repairs — tagged
  /// with `flight_scope` ("" for a standalone server, "shard:N" when a
  /// cluster router owns this server). Not owned; must outlive the
  /// server. Null disables event recording entirely.
  obs::FlightRecorder* flight_recorder = nullptr;
  std::string flight_scope;
};

/// One served request's outcome.
struct ServeResult {
  RunReport report;            // predictions + degradation trail
  int retries = 0;             // server-level retry attempts spent
  bool via_fallback = false;   // breaker routed this to the CPU replica
  double queue_seconds = 0.0;  // submit -> dispatch
  double service_seconds = 0.0;
};

/// Point-in-time statistics snapshot (also exported as named counters via
/// counters(), see util/metrics CounterRegistry).
struct ServerStats {
  std::size_t queue_depth = 0;
  CircuitState breaker = CircuitState::Closed;
  std::uint64_t submitted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_quota = 0;  // tenant exceeded its share (QuotaError)
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t shed_deadline = 0;     // expired while queued
  std::uint64_t deadline_expired = 0;  // expired during execution/backoff
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  // failed with an exception (incl. deadline)
  std::uint64_t retries = 0;
  std::uint64_t fallback_served = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_probes = 0;
  std::uint64_t breaker_short_circuited = 0;  // primary skipped: breaker open
  std::uint64_t abandoned = 0;                // failed by shutdown drain
  /// Model lifecycle (serve/reload.hpp). model_generation is 0 for a
  /// server constructed directly from a Forest (no store attached).
  std::uint64_t model_generation = 0;
  std::uint64_t reloads_promoted = 0;
  std::uint64_t reloads_rejected = 0;
  std::uint64_t reloads_rolled_back = 0;
};

/// Per-stage latency distributions (docs/benchmarking.md): queue wait
/// (submit -> dispatch, recorded for every dispatched request), execute
/// (backend service time of completed requests), and end-to-end (queue
/// wait + service of completed requests). Snapshots of the server's
/// lock-free histograms; mergeable across servers/shards.
struct LatencyStats {
  HistogramSnapshot queue_wait;
  HistogramSnapshot execute;
  HistogramSnapshot end_to_end;
  HistogramSnapshot reload;  // total seconds of each reload attempt
  /// Members per dispatched batch when micro-batching is enabled (the
  /// value recorded is a member count, not nanoseconds — one sample per
  /// formed batch, including batches of one). Empty with batching off.
  HistogramSnapshot batch_size;

  /// "stage | count | mean | p50 | p95 | p99 | max" markdown table
  /// (time-domain stages only; batch_size is a count distribution).
  std::string to_markdown() const;
};

/// What graceful shutdown accomplished.
struct DrainReport {
  std::size_t drained = 0;    // requests completed after shutdown began
  std::size_t abandoned = 0;  // queued requests failed with ShutdownError
  bool deadline_hit = false;  // drain stopped by the deadline, not emptiness
  double drain_seconds = 0.0;
};

class ForestServer {
 public:
  /// Builds per-worker primary replicas from (forest, classifier_options)
  /// and per-worker CPU-native fallback replicas, then starts the worker
  /// pool (paused when options.start_paused).
  ForestServer(Forest forest, ClassifierOptions classifier_options, ServerOptions options);

  /// Serves the store's current generation (precompiled layout blob);
  /// throws ConfigError when the store has no complete generation or the
  /// layout kind does not fit classifier_options. The server remembers
  /// nothing about the store — pass it again to reload()/reload_latest().
  ForestServer(const ModelStore& store, ClassifierOptions classifier_options,
               ServerOptions options);

  ~ForestServer();  // shutdown(options().drain_deadline_seconds) if still up

  ForestServer(const ForestServer&) = delete;
  ForestServer& operator=(const ForestServer&) = delete;

  /// Enqueues a request. Throws OverloadError when the queue is full and
  /// ShutdownError once shutdown began; otherwise returns a future that
  /// yields the result or the request's failure exception. The deadline
  /// (seconds from now; <= 0 = none) bounds queue wait + execution.
  /// With tenant quotas configured, `tenant` names the admission bucket
  /// — a tenant past its reserved share and the spare pool is shed with
  /// QuotaError (never displacing other tenants' queued requests).
  std::future<ServeResult> submit(Dataset queries);
  std::future<ServeResult> submit(Dataset queries, double deadline_seconds);
  /// `router_request` (nonzero when a cluster router dispatched this
  /// submission) is stamped on the request's root span as the
  /// "router_request" attribute, so one routed query's spans correlate
  /// across every shard tracer it touched (failover, hedging).
  std::future<ServeResult> submit(Dataset queries, double deadline_seconds,
                                  const std::string& tenant, std::uint64_t router_request = 0);

  /// Starts paused workers (no-op when already running).
  void resume();

  /// Graceful shutdown: stops admission, lets workers drain the queue
  /// until empty or the drain deadline passes, then fails leftovers with
  /// ShutdownError. Idempotent — later calls return the first report.
  DrainReport shutdown();
  DrainReport shutdown(double drain_deadline_seconds);

  /// Readiness: accepting requests and workers are running (false while
  /// start_paused and after shutdown begins).
  bool ready() const;
  /// Health: no worker thread has died on an unexpected exception
  /// (per-request failures are delivered through futures, not here).
  bool healthy() const;

  std::size_t queue_depth() const;
  ServerStats stats() const;
  /// Per-tenant quota accounting; empty when quotas are disabled.
  std::vector<TenantCounters> tenant_stats() const;
  /// Point-in-time snapshot of the per-stage latency histograms.
  LatencyStats latency() const;
  const CounterRegistry& counters() const { return counters_; }
  CircuitState breaker_state() const { return breaker_.state(); }
  const ServerOptions& options() const { return options_; }
  /// Self-heal ledger: scrubber passes/repairs, shadow-audit samples and
  /// mismatches, watchdog rescues. All zero with integrity off.
  SelfHealStats self_heal() const;

  /// The request tracer (sampling per options().trace_sampling). Read
  /// retained traces with tracer().slowest(n) / traces().
  const trace::Tracer& tracer() const { return tracer_; }
  /// Backend metric rollups keyed variant × backend × generation.
  const obs::RollupRegistry& rollups() const { return rollups_; }
  /// One consistent snapshot of everything the server exports: counters
  /// (documented names zero-filled so idle servers expose the full
  /// schema), gauges, per-stage latency histograms, backend rollups, and
  /// tracer summary — ready for obs::to_prometheus / snapshot_to_json.
  obs::MetricsSnapshot metrics_snapshot() const;

  // --- Model lifecycle (implemented in serve/reload.cpp) ---------------

  /// Atomically hot-reloads generation `gen` from `store` through the
  /// full state machine (load -> validate -> shadow -> build -> canary ->
  /// promote -> watch). Serving never stops: every phase runs off the
  /// worker threads, and on any rejection or rollback the previous model
  /// keeps serving. Concurrent reload() calls are serialized. Never
  /// throws for model problems — the outcome is in the returned report.
  ReloadReport reload(const ModelStore& store, std::uint64_t gen,
                      const ReloadOptions& opts = {});

  /// reload(store.current()) — NoOp report when already current or the
  /// store has no complete generation. This is the watcher's call.
  ReloadReport reload_latest(const ModelStore& store, const ReloadOptions& opts = {});

  /// Generation currently serving (0 = constructed without a store).
  std::uint64_t generation() const {
    return current_generation_.load(std::memory_order_acquire);
  }
  /// Every reload attempt since construction, in order.
  std::vector<ReloadReport> reload_history() const;

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  struct Request {
    Dataset queries;
    std::promise<ServeResult> promise;
    std::string tenant;  // admission bucket ("" = anonymous)
    TimePoint enqueued;
    TimePoint deadline;  // meaningful only when has_deadline
    bool has_deadline = false;
    /// Root span of this request's trace (inactive when unsampled) and
    /// the queue-wait child opened at enqueue, ended at dispatch. Both
    /// travel with the request through the queue to the worker thread.
    trace::Span span;
    trace::Span queue_span;
  };

  /// Health counters shared by every replica of one model generation;
  /// the canary and post-promotion watch read them to decide rollback.
  struct ModelHealth {
    std::atomic<std::uint64_t> completed{0};       // requests finished OK
    std::atomic<std::uint64_t> primary_errors{0};  // primary exhausted retries
  };

  /// An immutable model installation for one worker: the primary replica,
  /// its CPU-native fallback twin, and the generation they came from.
  /// Swapped wholesale — a request sees one WorkerModel end to end.
  struct WorkerModel {
    std::shared_ptr<const Classifier> primary;
    std::shared_ptr<const Classifier> fallback;
    std::uint64_t generation = 0;
    std::shared_ptr<ModelHealth> health;
    /// Reference CRC of the primary's resident layout, captured when the
    /// model is built (so every legitimate install — ctor, reload, repair
    /// — recaptures it for free). The scrubber recomputes the live CRC
    /// and compares. Disengaged for FilBaseline, whose layout is built
    /// inside the kernel with nothing resident to scrub.
    std::optional<std::uint32_t> layout_crc;
  };

  /// One worker's swap point. The mutex is uncontended except during a
  /// reload flip (one lock acquisition per request).
  struct Slot {
    mutable std::mutex mu;
    std::shared_ptr<const WorkerModel> model;
  };

  void validate_options() const;
  void start_workers();
  /// Builds one worker's replica pair from a forest and optional
  /// precompiled layout (ConfigError on shape/kind mismatch).
  std::shared_ptr<const WorkerModel> build_worker_model(
      const Forest& forest, const CsrForest* csr, const HierarchicalForest* hier,
      std::uint64_t generation, std::shared_ptr<ModelHealth> health) const;

  std::shared_ptr<const WorkerModel> model_for(std::size_t w) const;
  void install_model(std::size_t w, std::shared_ptr<const WorkerModel> m);

  /// Folds one successful run into the rollup registry under the
  /// classifier that actually served it (primary or fallback replica).
  void record_run(const Classifier& clf, std::uint64_t generation, const RunReport& report);

  void record_reload(const ReloadReport& rep);

  /// Pushes one structured event into options_.flight_recorder (no-op
  /// when none is configured), tagged with options_.flight_scope.
  void flight_event(const char* category, const char* name, std::string detail = "") const;

  /// Per-request counter deltas, applied in one CounterRegistry
  /// add_batch() at the end of process() — one lock acquisition per
  /// request instead of one per counter.
  using CounterDeltas = std::map<std::string, std::uint64_t>;

  /// A dequeued batch member with its dispatch-time queue wait.
  struct Member {
    Request req;
    double queue_seconds = 0.0;
  };

  void worker_loop(std::size_t w);
  /// Pops the queue head (mu_ must be held), releasing its quota slot.
  Request pop_front_locked();
  /// Multi-member dispatch for a formed batch (size >= 2): sheds expired
  /// members individually, executes the survivors as one concatenated
  /// classify run, and demultiplexes per-member responses.
  void process_batch(std::size_t w, std::vector<Request> batch);
  /// The execute/fulfill tail shared by process() and single-survivor
  /// batches (queue wait already recorded, pre-dispatch shed already done).
  void finish_one(std::size_t w, Request req, double queue_s, CounterDeltas delta);
  /// Runs `live` (size >= 2) as one combined classify on worker w's
  /// replica pair — breaker verdict, retry chain, and fallback decided
  /// once for the whole batch — then fulfills every member promise. A
  /// non-resource fault the batch cannot attribute to one member (e.g. a
  /// malformed row failing combined validation) re-runs each member
  /// alone, so a poison request never fails its batchmates.
  void execute_members(std::size_t w, std::vector<Member> live);
  /// One combined classify of `all` on `clf` for the members in `live`:
  /// chunked and cancellable at the *loosest* member deadline when every
  /// member carries one (cancelling then strands no member that still
  /// had budget), one-shot otherwise. Throws DeadlineError on cancel.
  RunReport run_batch(const Classifier& clf, const Dataset& all,
                      const std::vector<Member>& live, const trace::Span& span);
  void process(std::size_t w, Request req);
  ServeResult execute(std::size_t w, Request& req, const trace::Span& span,
                      CounterDeltas& delta);
  /// One classify on `clf`, honouring the request deadline by chunked
  /// cancellable execution; throws DeadlineError on mid-run expiry.
  /// Chunk child spans hang off `span`; backend counter attributes are
  /// stamped onto it.
  RunReport run_one(const Classifier& clf, const Request& req, const trace::Span& span,
                    CounterDeltas& delta);
  /// Sleeps the jittered exponential backoff for `attempt`. Returns false
  /// without sleeping when the request's deadline would pass while asleep
  /// — the caller then skips straight to the fallback instead of burning
  /// the remaining budget on a nap.
  bool backoff_sleep(std::size_t w, int attempt, const Request& req);

  // --- Integrity monitor (scrubber / audits / watchdog) -----------------

  /// A request published by its worker before dispatch so the watchdog
  /// can rescue it. Whoever flips `claimed` first owns the promise: the
  /// worker claims it back after the (possibly injected-hang) dispatch
  /// window, or the watchdog claims it past the hang threshold.
  struct InFlight {
    std::mutex mu;
    bool claimed = false;
    std::optional<Request> req;
    TimePoint dispatched{};
  };

  /// Per-worker liveness/audit state, stable for the server's lifetime
  /// (worker threads may be replaced; their runtime record is not).
  struct WorkerRuntime {
    std::mutex mu;                       // guards inflight
    std::shared_ptr<InFlight> inflight;  // engaged while a rescue is possible
    std::atomic<std::uint64_t> heartbeat_ns{0};  // last worker_loop activity
    std::atomic<int> audit_streak{0};            // consecutive oracle mismatches
    std::atomic<bool> repair_requested{false};   // audit streak hit K
  };

  bool integrity_enabled() const;
  /// Single-request dispatch with the watchdog's claim window around it.
  /// Returns false when the watchdog claimed the request — the calling
  /// worker thread was declared hung and replaced, so it must exit.
  bool dispatch_one(std::size_t w, Request req);
  /// Every Nth successful primary run: re-execute on the CPU oracle and
  /// compare. On divergence the oracle's predictions are served (with a
  /// degradation note) and K consecutive mismatches flag the replica for
  /// quarantine-and-rebuild.
  void maybe_audit(std::size_t w, const WorkerModel& m, const Dataset& queries,
                   RunReport& report, CounterDeltas& delta);
  /// The shared monitor thread: corrupt:replica injection, watchdog
  /// scans, audit-requested repairs, and timed scrub passes.
  void monitor_loop();
  void watchdog_scan();
  /// Fulfils a rescued request on worker w's CPU fallback replica, with
  /// the full counter/histogram/trace treatment of a normal completion
  /// plus a degradation note — never a lost response.
  void watchdog_answer(std::size_t w, Request req);
  /// Re-verifies every replica's layout CRC against its reference.
  void scrub_pass();
  /// Quarantines worker w's replica (the CPU oracle serves as primary)
  /// and rebuilds the real primary — from the configured store's current
  /// generation when possible, else recompiled from the pristine forest
  /// the fallback replica holds. No-op if the slot moved on (a reload).
  void repair_replica(std::size_t w, std::shared_ptr<const WorkerModel> suspect);
  /// corrupt:replica payload: copy-clobber-swap one worker's layout,
  /// keeping the reference CRC so the scrubber sees the drift.
  void inject_replica_corruption();
  /// Compare-and-swap install: replaces worker w's model only when the
  /// slot still holds `expected` (repairs never clobber a fresh reload).
  bool install_model_if(std::size_t w, const std::shared_ptr<const WorkerModel>& expected,
                        std::shared_ptr<const WorkerModel> next);

  ServerOptions options_;
  ClassifierOptions classifier_options_;  // replica recipe, reused by reload
  std::vector<Slot> slots_;               // one per worker, never resized
  std::vector<Xoshiro256> jitter_;        // one per worker
  CircuitBreaker breaker_;
  CounterRegistry counters_;
  trace::Tracer tracer_;
  obs::RollupRegistry rollups_;
  LatencyHistogram hist_queue_wait_;   // every dispatched request
  LatencyHistogram hist_execute_;      // completed requests only
  LatencyHistogram hist_end_to_end_;   // completed requests only
  LatencyHistogram hist_reload_;       // per reload attempt (total seconds)
  LatencyHistogram hist_batch_size_;   // members per formed batch (count, not ns)
  /// Backend-native batch granularity in rows (warp size on GpuSim);
  /// resolved once at construction for the batch former's row budget.
  std::size_t batch_granularity_ = 1;

  std::atomic<std::uint64_t> current_generation_{0};
  std::mutex reload_mu_;  // serializes reload state machines
  mutable std::mutex reload_history_mu_;
  std::vector<ReloadReport> reload_history_;

  mutable std::mutex mu_;     // guards queue + lifecycle flags + quotas
  std::mutex shutdown_mu_;    // serializes shutdown() callers (join once)
  std::condition_variable cv_;
  std::deque<Request> queue_;
  /// Engaged when options_.quotas has tenants. Shares mu_ with the queue
  /// it meters: every queued request holds exactly one quota slot.
  std::optional<TenantQuotas> quotas_;
  bool accepting_ = true;
  bool started_ = false;
  bool shut_down_ = false;
  std::atomic<bool> stopping_{false};
  TimePoint drain_deadline_{};
  DrainReport drain_report_{};

  std::atomic<bool> worker_failed_{false};
  std::atomic<std::uint64_t> drained_after_stop_{0};
  std::vector<std::thread> workers_;

  /// Integrity monitor state. workers_ and zombies_ are mutated only by
  /// the monitor thread after construction; shutdown() joins the monitor
  /// before touching either, so no lock is needed.
  std::vector<std::unique_ptr<WorkerRuntime>> runtimes_;  // one per worker
  std::thread monitor_;
  std::atomic<bool> monitor_stop_{false};
  std::vector<std::thread> zombies_;  // superseded workers, joined at shutdown
  std::size_t corrupt_rr_ = 0;        // round-robin corruption victim picker
  std::atomic<std::uint64_t> audit_tick_{0};  // global audit sampling counter
};

}  // namespace hrf::serve
