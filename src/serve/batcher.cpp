#include "serve/batcher.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hrf::serve {

namespace {

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(std::max(0.0, seconds)));
}

}  // namespace

std::size_t backend_batch_granularity(Backend backend, const gpusim::DeviceConfig& gpu) {
  switch (backend) {
    case Backend::GpuSim:
      // One warp of lock-step lanes: the smallest unit the SIMT model
      // schedules, and the paper's natural fill target — a 7-row request
      // occupies a whole warp either way.
      return static_cast<std::size_t>(std::max(1, gpu.warp_size));
    case Backend::FpgaSim:
      // The pipeline's fill/drain overhead amortizes over a burst of
      // queries; one warp-equivalent keeps the two simulated backends'
      // batch shapes comparable in the bench sweeps.
      return 32;
    case Backend::CpuNative:
      // An OpenMP chunk's worth — enough rows that the parallel-for
      // fork/join is amortized, small enough not to inflate latency.
      return 16;
  }
  return 1;
}

BatchFormer::BatchFormer(const BatchOptions& options, std::size_t granularity) {
  require(granularity >= 1, "batch granularity must be >= 1");
  require(options.max_wait_seconds >= 0.0, "batching.max_wait_seconds must be >= 0");
  require(options.deadline_fraction >= 0.0 && options.deadline_fraction <= 1.0,
          "batching.deadline_fraction must be in [0, 1]");
  max_requests_ = std::max<std::size_t>(1, options.max_requests);
  max_rows_ = options.max_rows != 0 ? options.max_rows : max_requests_ * granularity;
  max_wait_ = to_duration(options.max_wait_seconds);
  deadline_fraction_ = options.deadline_fraction;
}

bool BatchFormer::fits(std::size_t rows) const {
  if (members_ == 0) return true;  // never starve an oversized request
  return members_ < max_requests_ && rows_ + rows <= max_rows_;
}

void BatchFormer::add(TimePoint now, std::size_t rows, bool has_deadline, TimePoint deadline) {
  // This member's wait grant: the hard cap, tightened by its remaining
  // deadline budget. An already-expired member grants zero further wait —
  // should_flush(now) turns true immediately and the server sheds it at
  // dispatch rather than letting it rot while batchmates trickle in.
  std::chrono::steady_clock::duration grant = max_wait_;
  if (has_deadline) {
    const auto remaining = deadline > now ? deadline - now : std::chrono::steady_clock::duration{};
    const auto budget = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(
            std::chrono::duration<double>(remaining).count() * deadline_fraction_));
    grant = std::min(grant, budget);
  }
  const TimePoint member_flush = now + grant;
  flush_deadline_ = members_ == 0 ? member_flush : std::min(flush_deadline_, member_flush);
  ++members_;
  rows_ += rows;
}

void BatchFormer::reset() {
  members_ = 0;
  rows_ = 0;
  flush_deadline_ = TimePoint{};
}

}  // namespace hrf::serve
