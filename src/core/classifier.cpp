#include "core/classifier.hpp"

#include <algorithm>
#include <cmath>

#include "cpu/cpu_kernels.hpp"
#include "fpgakernels/fpga_kernels.hpp"
#include "gpukernels/kernels.hpp"
#include "train/forest_trainer.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace hrf {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::CpuNative: return "cpu-native";
    case Backend::GpuSim: return "gpu-sim";
    case Backend::FpgaSim: return "fpga-sim";
  }
  return "?";
}

const char* to_string(Variant v) {
  switch (v) {
    case Variant::Csr: return "csr";
    case Variant::Independent: return "independent";
    case Variant::Collaborative: return "collaborative";
    case Variant::Hybrid: return "hybrid";
    case Variant::FilBaseline: return "fil-baseline";
  }
  return "?";
}

double RunReport::accuracy(std::span<const std::uint8_t> labels) const {
  require(labels.size() == predictions.size(), "label count != prediction count");
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) correct += predictions[i] == labels[i];
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

void Classifier::check_variant_backend() const {
  if (options_.variant == Variant::FilBaseline) {
    require(options_.backend == Backend::GpuSim,
            "the FIL baseline models cuML and only exists on the GPU backend");
  }
  if (options_.variant == Variant::Collaborative || options_.variant == Variant::Hybrid) {
    require(options_.backend != Backend::CpuNative,
            "collaborative/hybrid variants model on-chip memory; use GpuSim or FpgaSim "
            "(CpuNative supports Csr and Independent)");
  }
}

Classifier::Classifier(Forest forest, ClassifierOptions options)
    : forest_(std::move(forest)), options_(options) {
  check_variant_backend();
  switch (options_.variant) {
    case Variant::Csr:
      csr_.emplace(CsrForest::build(forest_));
      break;
    case Variant::FilBaseline:
      break;  // the FIL layout is built inside the kernel
    default:
      hier_.emplace(HierarchicalForest::build(forest_, options_.layout));
      break;
  }
}

Classifier::Classifier(Forest forest, CsrForest layout, ClassifierOptions options)
    : forest_(std::move(forest)), options_(options) {
  require(options_.variant == Variant::Csr,
          "a precompiled CSR layout requires the csr variant");
  check_variant_backend();
  require(layout.num_features() == forest_.num_features() &&
              layout.num_classes() == forest_.num_classes(),
          "precompiled CSR layout does not match the forest's feature/class shape");
  csr_.emplace(std::move(layout));
}

Classifier::Classifier(Forest forest, HierarchicalForest layout, ClassifierOptions options)
    : forest_(std::move(forest)), options_(options) {
  require(options_.variant == Variant::Independent ||
              options_.variant == Variant::Collaborative || options_.variant == Variant::Hybrid,
          "a precompiled hierarchical layout requires a hierarchical variant "
          "(independent/collaborative/hybrid)");
  check_variant_backend();
  require(layout.num_features() == forest_.num_features() &&
              layout.num_classes() == forest_.num_classes(),
          "precompiled hierarchical layout does not match the forest's feature/class shape");
  options_.layout = layout.config();
  hier_.emplace(std::move(layout));
}

Classifier Classifier::train(const Dataset& train, const TrainConfig& train_config,
                             ClassifierOptions options) {
  return Classifier(train_forest(train, train_config), options);
}

Classifier Classifier::load(const std::string& path, ClassifierOptions options) {
  return Classifier(Forest::load(path), options);
}

const HierarchicalForest& Classifier::hierarchical() const {
  require(hier_.has_value(), "this variant does not use the hierarchical layout");
  return *hier_;
}

const CsrForest& Classifier::csr() const {
  require(csr_.has_value(), "this variant does not use the CSR layout");
  return *csr_;
}

Classifier::StreamReport Classifier::classify_stream(const Dataset& queries,
                                                     std::size_t chunk_size) const {
  return classify_stream(queries, chunk_size, nullptr);
}

Classifier::StreamReport Classifier::classify_stream(const Dataset& queries,
                                                     std::size_t chunk_size,
                                                     const std::function<bool()>& cancel) const {
  return classify_stream(queries, chunk_size, cancel, trace::Span{});
}

Classifier::StreamReport Classifier::classify_stream(const Dataset& queries,
                                                     std::size_t chunk_size,
                                                     const std::function<bool()>& cancel,
                                                     const trace::Span& parent) const {
  require(chunk_size >= 1, "chunk_size must be >= 1");
  StreamReport out;
  out.predictions.reserve(queries.num_samples());
  LatencyHistogram chunk_hist;
  for (std::size_t lo = 0; lo < queries.num_samples(); lo += chunk_size) {
    if (cancel && cancel()) {
      out.completed = false;
      out.chunk_latency = chunk_hist.snapshot();
      return out;
    }
    const std::size_t hi = std::min(lo + chunk_size, queries.num_samples());
    Dataset chunk(hi - lo, queries.num_features(), queries.num_classes());
    chunk.set_name(queries.name());
    for (std::size_t i = lo; i < hi; ++i) chunk.push_back(queries.sample(i), queries.label(i));
    trace::Span span = parent.child("chunk-" + std::to_string(out.chunks));
    const RunReport r = classify(chunk);
    if (span.active()) {
      span.set_attr("queries", static_cast<std::uint64_t>(hi - lo));
      span.set_attr("seconds", r.seconds);
      set_backend_span_attrs(span, r);
    }
    out.predictions.insert(out.predictions.end(), r.predictions.begin(), r.predictions.end());
    out.total_seconds += r.seconds;
    out.max_chunk_seconds = std::max(out.max_chunk_seconds, r.seconds);
    chunk_hist.record_seconds(r.seconds);
    out.simulated = r.simulated;
    if (r.gpu_counters) {
      if (!out.gpu_counters) out.gpu_counters.emplace();
      *out.gpu_counters += *r.gpu_counters;
    }
    if (r.fpga_report) {
      if (!out.fpga_report) {
        // First chunk seeds the descriptive fields (clock, II, limiter).
        out.fpga_report = *r.fpga_report;
      } else {
        out.fpga_report->seconds += r.fpga_report->seconds;
        out.fpga_report->pipeline_cycles += r.fpga_report->pipeline_cycles;
        out.fpga_report->total_cycles += r.fpga_report->total_cycles;
        out.fpga_report->stall_pct =
            out.fpga_report->total_cycles > 0.0
                ? 100.0 * (1.0 - out.fpga_report->pipeline_cycles / out.fpga_report->total_cycles)
                : 0.0;
      }
    }
    // Deduplicated so a persistent per-chunk degradation (e.g. every chunk
    // retried once) reads as one trail, not chunks-many copies.
    for (const std::string& d : r.degradations) {
      if (std::find(out.degradations.begin(), out.degradations.end(), d) ==
          out.degradations.end()) {
        out.degradations.push_back(d);
      }
    }
    ++out.chunks;
  }
  out.chunk_latency = chunk_hist.snapshot();
  return out;
}

void set_backend_span_attrs(const trace::Span& span, const RunReport& report) {
  if (!span.active()) return;
  if (report.gpu_counters) {
    const gpusim::Counters& c = *report.gpu_counters;
    span.set_attr("gpu.branch_efficiency", c.branch_efficiency());
    span.set_attr("gpu.txn_per_request", c.transactions_per_request());
    span.set_attr("gpu.dram_transactions", c.dram_transactions);
    span.set_attr("gpu.l2_hits", c.l2_hits);
    span.set_attr("gpu.smem_loads", c.smem_loads);
  }
  if (report.fpga_report) {
    const fpgasim::FpgaReport& f = *report.fpga_report;
    span.set_attr("fpga.ii", f.ii_desc);
    span.set_attr("fpga.stall_pct", f.stall_pct);
    span.set_attr("fpga.limiter", f.limiter);
    span.set_attr("fpga.ii_stall_cycles",
                  f.total_cycles > f.pipeline_cycles ? f.total_cycles - f.pipeline_cycles : 0.0);
  }
}

void Classifier::validate_queries(const Dataset& queries) const {
  if (queries.num_features() != forest_.num_features()) {
    throw ConfigError("query batch has " + std::to_string(queries.num_features()) +
                      " features but the model expects " +
                      std::to_string(forest_.num_features()));
  }
  const std::span<const float> feats = queries.features();
  for (std::size_t i = 0; i < feats.size(); ++i) {
    if (!std::isfinite(feats[i])) {
      const std::size_t row = i / queries.num_features();
      const std::size_t col = i % queries.num_features();
      throw ConfigError("query " + std::to_string(row) + " feature " + std::to_string(col) +
                        " is not finite (NaN/Inf); rejecting the batch");
    }
  }
}

RunReport Classifier::run_backend(Backend backend, Variant variant, const CsrForest* csr,
                                  const HierarchicalForest* hier,
                                  const Dataset& queries) const {
  RunReport r;
  switch (backend) {
    case Backend::CpuNative: {
      WallTimer timer;
      r.predictions = variant == Variant::Csr ? cpu::classify_csr(*csr, queries)
                                              : cpu::classify_hierarchical(*hier, queries);
      r.seconds = timer.seconds();
      r.simulated = false;
      break;
    }
    case Backend::GpuSim: {
      gpusim::Device device(options_.gpu);
      gpukernels::KernelResult k;
      switch (variant) {
        case Variant::Csr: k = gpukernels::run_csr(device, *csr, queries); break;
        case Variant::Independent:
          k = gpukernels::run_independent(device, *hier, queries);
          break;
        case Variant::Collaborative:
          k = gpukernels::run_collaborative(device, *hier, queries);
          break;
        case Variant::Hybrid: k = gpukernels::run_hybrid(device, *hier, queries); break;
        case Variant::FilBaseline:
          k = gpukernels::run_fil_baseline(device, forest_, queries);
          break;
      }
      r.predictions = std::move(k.predictions);
      r.seconds = k.timing.seconds;
      r.gpu_counters = k.counters;
      r.gpu_timing = k.timing;
      break;
    }
    case Backend::FpgaSim: {
      fpgakernels::FpgaResult k;
      switch (variant) {
        case Variant::Csr:
          k = fpgakernels::run_csr_fpga(*csr, queries, options_.fpga, options_.fpga_layout);
          break;
        case Variant::Independent:
          k = fpgakernels::run_independent_fpga(*hier, queries, options_.fpga,
                                                options_.fpga_layout);
          break;
        case Variant::Collaborative:
          k = fpgakernels::run_collaborative_fpga(*hier, queries, options_.fpga,
                                                  options_.fpga_layout);
          break;
        case Variant::Hybrid:
          k = fpgakernels::run_hybrid_fpga(*hier, queries, options_.fpga, options_.fpga_layout,
                                           options_.fpga_split_stage1);
          break;
        case Variant::FilBaseline:
          throw ConfigError("FIL baseline is GPU-only");  // unreachable: ctor rejects
      }
      r.predictions = std::move(k.predictions);
      r.seconds = k.report.seconds;
      r.fpga_report = std::move(k.report);
      break;
    }
  }
  return r;
}

int Classifier::max_fitting_rsd() const {
  // Both backends store 8-byte nodes on chip (PackedNode on the GPU,
  // int32 feature + float value on the FPGA).
  constexpr std::size_t kNodeBytes = 8;
  std::size_t capacity = 0;
  if (options_.backend == Backend::GpuSim) {
    capacity = options_.gpu.shared_mem_per_block;
  } else if (options_.backend == Backend::FpgaSim) {
    const std::size_t cus = options_.fpga_split_stage1
                                ? 1
                                : static_cast<std::size_t>(options_.fpga_layout.cus_per_slr);
    capacity = options_.fpga.onchip_bytes_per_slr / std::max<std::size_t>(cus, 1);
  }
  if (capacity == 0) return 0;
  const std::size_t max_nodes = capacity / kNodeBytes;  // need 2^rsd - 1 <= max_nodes
  int rsd = 0;
  while (rsd < 24 && ((1ull << (rsd + 1)) - 1) <= max_nodes) ++rsd;
  return rsd;
}

RunReport Classifier::classify(const Dataset& queries) const {
  validate_queries(queries);

  const FallbackPolicy& fb = options_.fallback;
  if (!fb.enabled) {
    return run_backend(options_.backend, options_.variant, csr_ ? &*csr_ : nullptr,
                       hier_ ? &*hier_ : nullptr, queries);
  }

  struct Attempt {
    Backend backend;
    Variant variant;
    const CsrForest* csr;
    const HierarchicalForest* hier;
    std::string note;  // degradation entry recorded when the chain reaches it
  };

  // Layouts materialized only if their chain step is reached would be
  // nicer, but both builds are cheap relative to classification and the
  // chain is only constructed on the (rare) configured path.
  std::optional<HierarchicalForest> shrunk;
  std::optional<CsrForest> cpu_csr;

  std::vector<Attempt> plan;
  plan.push_back({options_.backend, options_.variant, csr_ ? &*csr_ : nullptr,
                  hier_ ? &*hier_ : nullptr, ""});
  if (options_.backend != Backend::CpuNative) {
    if (fb.allow_layout_shrink && options_.variant == Variant::Hybrid && hier_) {
      const int fit = max_fitting_rsd();
      const int cur = options_.layout.effective_root_depth();
      if (fit >= 1 && fit < cur) {
        HierConfig cfg = options_.layout;
        cfg.root_subtree_depth = fit;
        shrunk.emplace(HierarchicalForest::build(forest_, cfg));
        plan.push_back({options_.backend, Variant::Hybrid, nullptr, &*shrunk,
                        "shrink rsd " + std::to_string(cur) + " -> " + std::to_string(fit)});
      }
    }
    if (fb.allow_variant_downgrade) {
      if ((options_.variant == Variant::Hybrid || options_.variant == Variant::Collaborative) &&
          hier_) {
        plan.push_back({options_.backend, Variant::Independent, nullptr, &*hier_,
                        std::string("variant ") + to_string(options_.variant) +
                            " -> independent"});
      } else if (options_.variant == Variant::FilBaseline) {
        cpu_csr.emplace(CsrForest::build(forest_));
        plan.push_back({options_.backend, Variant::Csr, &*cpu_csr, nullptr,
                        "variant fil-baseline -> csr"});
      }
    }
    if (fb.allow_cpu_fallback) {
      const std::string note =
          std::string("backend ") + to_string(options_.backend) + " -> cpu-native";
      if (hier_) {
        plan.push_back({Backend::CpuNative, Variant::Independent, nullptr, &*hier_,
                        note + " (independent)"});
      } else {
        if (!csr_ && !cpu_csr) cpu_csr.emplace(CsrForest::build(forest_));
        plan.push_back({Backend::CpuNative, Variant::Csr, csr_ ? &*csr_ : &*cpu_csr, nullptr,
                        note + " (csr)"});
      }
    }
  }

  std::vector<std::string> degradations;
  std::string last_error;
  for (const Attempt& a : plan) {
    if (!a.note.empty()) degradations.push_back("degrade: " + a.note);
    const int tries = 1 + std::max(0, fb.max_retries);
    for (int t = 0; t < tries; ++t) {
      try {
        RunReport r = run_backend(a.backend, a.variant, a.csr, a.hier, queries);
        r.degradations = std::move(degradations);
        return r;
      } catch (const ResourceError& e) {
        last_error = e.what();
        degradations.push_back(std::string(to_string(a.backend)) + "/" + to_string(a.variant) +
                               " attempt " + std::to_string(t + 1) + " failed: " + e.what());
      }
    }
  }
  throw ResourceError("classification failed after exhausting the fallback chain (" +
                      std::to_string(plan.size()) + " configurations); last error: " +
                      last_error);
}

}  // namespace hrf
