#include "core/classifier.hpp"

#include <algorithm>

#include "cpu/cpu_kernels.hpp"
#include "fpgakernels/fpga_kernels.hpp"
#include "gpukernels/kernels.hpp"
#include "train/forest_trainer.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace hrf {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::CpuNative: return "cpu-native";
    case Backend::GpuSim: return "gpu-sim";
    case Backend::FpgaSim: return "fpga-sim";
  }
  return "?";
}

const char* to_string(Variant v) {
  switch (v) {
    case Variant::Csr: return "csr";
    case Variant::Independent: return "independent";
    case Variant::Collaborative: return "collaborative";
    case Variant::Hybrid: return "hybrid";
    case Variant::FilBaseline: return "fil-baseline";
  }
  return "?";
}

double RunReport::accuracy(std::span<const std::uint8_t> labels) const {
  require(labels.size() == predictions.size(), "label count != prediction count");
  if (labels.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) correct += predictions[i] == labels[i];
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

Classifier::Classifier(Forest forest, ClassifierOptions options)
    : forest_(std::move(forest)), options_(options) {
  if (options_.variant == Variant::FilBaseline) {
    require(options_.backend == Backend::GpuSim,
            "the FIL baseline models cuML and only exists on the GPU backend");
  }
  if (options_.variant == Variant::Collaborative || options_.variant == Variant::Hybrid) {
    require(options_.backend != Backend::CpuNative,
            "collaborative/hybrid variants model on-chip memory; use GpuSim or FpgaSim "
            "(CpuNative supports Csr and Independent)");
  }
  switch (options_.variant) {
    case Variant::Csr:
      csr_.emplace(CsrForest::build(forest_));
      break;
    case Variant::FilBaseline:
      break;  // the FIL layout is built inside the kernel
    default:
      hier_.emplace(HierarchicalForest::build(forest_, options_.layout));
      break;
  }
}

Classifier Classifier::train(const Dataset& train, const TrainConfig& train_config,
                             ClassifierOptions options) {
  return Classifier(train_forest(train, train_config), options);
}

Classifier Classifier::load(const std::string& path, ClassifierOptions options) {
  return Classifier(Forest::load(path), options);
}

const HierarchicalForest& Classifier::hierarchical() const {
  require(hier_.has_value(), "this variant does not use the hierarchical layout");
  return *hier_;
}

const CsrForest& Classifier::csr() const {
  require(csr_.has_value(), "this variant does not use the CSR layout");
  return *csr_;
}

Classifier::StreamReport Classifier::classify_stream(const Dataset& queries,
                                                     std::size_t chunk_size) const {
  require(chunk_size >= 1, "chunk_size must be >= 1");
  StreamReport out;
  out.predictions.reserve(queries.num_samples());
  for (std::size_t lo = 0; lo < queries.num_samples(); lo += chunk_size) {
    const std::size_t hi = std::min(lo + chunk_size, queries.num_samples());
    Dataset chunk(hi - lo, queries.num_features(), queries.num_classes());
    chunk.set_name(queries.name());
    for (std::size_t i = lo; i < hi; ++i) chunk.push_back(queries.sample(i), queries.label(i));
    const RunReport r = classify(chunk);
    out.predictions.insert(out.predictions.end(), r.predictions.begin(), r.predictions.end());
    out.total_seconds += r.seconds;
    out.max_chunk_seconds = std::max(out.max_chunk_seconds, r.seconds);
    out.simulated = r.simulated;
    ++out.chunks;
  }
  return out;
}

RunReport Classifier::classify(const Dataset& queries) const {
  RunReport r;
  switch (options_.backend) {
    case Backend::CpuNative: {
      WallTimer timer;
      r.predictions = options_.variant == Variant::Csr
                          ? cpu::classify_csr(*csr_, queries)
                          : cpu::classify_hierarchical(*hier_, queries);
      r.seconds = timer.seconds();
      r.simulated = false;
      break;
    }
    case Backend::GpuSim: {
      gpusim::Device device(options_.gpu);
      gpukernels::KernelResult k;
      switch (options_.variant) {
        case Variant::Csr: k = gpukernels::run_csr(device, *csr_, queries); break;
        case Variant::Independent:
          k = gpukernels::run_independent(device, *hier_, queries);
          break;
        case Variant::Collaborative:
          k = gpukernels::run_collaborative(device, *hier_, queries);
          break;
        case Variant::Hybrid: k = gpukernels::run_hybrid(device, *hier_, queries); break;
        case Variant::FilBaseline:
          k = gpukernels::run_fil_baseline(device, forest_, queries);
          break;
      }
      r.predictions = std::move(k.predictions);
      r.seconds = k.timing.seconds;
      r.gpu_counters = k.counters;
      r.gpu_timing = k.timing;
      break;
    }
    case Backend::FpgaSim: {
      fpgakernels::FpgaResult k;
      switch (options_.variant) {
        case Variant::Csr:
          k = fpgakernels::run_csr_fpga(*csr_, queries, options_.fpga, options_.fpga_layout);
          break;
        case Variant::Independent:
          k = fpgakernels::run_independent_fpga(*hier_, queries, options_.fpga,
                                                options_.fpga_layout);
          break;
        case Variant::Collaborative:
          k = fpgakernels::run_collaborative_fpga(*hier_, queries, options_.fpga,
                                                  options_.fpga_layout);
          break;
        case Variant::Hybrid:
          k = fpgakernels::run_hybrid_fpga(*hier_, queries, options_.fpga, options_.fpga_layout,
                                           options_.fpga_split_stage1);
          break;
        case Variant::FilBaseline:
          throw ConfigError("FIL baseline is GPU-only");  // unreachable: ctor rejects
      }
      r.predictions = std::move(k.predictions);
      r.seconds = k.report.seconds;
      r.fpga_report = std::move(k.report);
      break;
    }
  }
  return r;
}

}  // namespace hrf
