#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "forest/forest.hpp"
#include "fpgasim/config.hpp"
#include "fpgasim/pipeline.hpp"
#include "gpusim/config.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "util/histogram.hpp"
#include "util/trace.hpp"
#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"
#include "train/tree_trainer.hpp"

namespace hrf {

/// Where inference runs.
enum class Backend {
  CpuNative,  // OpenMP on the host, wall-clock timing
  GpuSim,     // simulated TITAN Xp (transaction-level SIMT model)
  FpgaSim,    // modeled Alveo U250 (analytical pipeline model)
};

/// Which code variant / layout runs (paper §3.2).
enum class Variant {
  Csr,            // baseline CSR layout
  Independent,    // hierarchical, one thread/work-item per query
  Collaborative,  // hierarchical, lock-step subtree sweeps
  Hybrid,         // hierarchical, on-chip root subtree + independent tail
  FilBaseline,    // cuML FIL stand-in (GpuSim only)
};

const char* to_string(Backend b);
const char* to_string(Variant v);

struct RunReport;

/// Stamps a run's backend metrics onto a span as `gpu.*` / `fpga.*`
/// attributes (branch efficiency, transactions/request, memory-service
/// mix, II stalls...). No-op for inactive spans and CPU-native runs.
void set_backend_span_attrs(const trace::Span& span, const RunReport& report);

/// Everything a classification run reports.
struct RunReport {
  std::vector<std::uint8_t> predictions;
  /// Simulated seconds for GpuSim/FpgaSim; wall-clock seconds for CpuNative.
  double seconds = 0.0;
  bool simulated = true;
  std::optional<gpusim::Counters> gpu_counters;
  std::optional<gpusim::Timing> gpu_timing;
  std::optional<fpgasim::FpgaReport> fpga_report;

  /// Human-readable trail of every retry and fallback step taken to
  /// produce this result (empty when the configured backend succeeded
  /// first try). See FallbackPolicy: callers observe degraded runs here
  /// instead of silently getting different performance.
  std::vector<std::string> degradations;
  bool degraded() const { return !degradations.empty(); }

  /// Chunk-level latency distribution when this report came from the
  /// chunked path (classify_stream, serving's time-boxed execution):
  /// one sample per chunk, in ns. nullopt for one-shot classify() runs,
  /// which have a single number (`seconds`) rather than a distribution.
  std::optional<HistogramSnapshot> latency;

  /// Fraction of predictions matching `labels`.
  double accuracy(std::span<const std::uint8_t> labels) const;
};

/// Graceful-degradation policy for classify(): when a simulated backend
/// raises ResourceError, the classifier walks a degradation chain instead
/// of failing the request. In order (each step gated by its flag):
///   1. retry the failing configuration up to `max_retries` extra times
///      (transient faults);
///   2. shrink the hybrid root subtree (RSD) to the largest depth that
///      fits the backend's on-chip memory and rebuild the layout;
///   3. downgrade the variant: Hybrid/Collaborative -> Independent,
///      FilBaseline -> Csr (same backend);
///   4. fall back to Backend::CpuNative as the last resort.
/// Predictions are bit-identical along the whole chain (all variants and
/// backends agree functionally); only performance degrades. Every step is
/// recorded in RunReport::degradations.
struct FallbackPolicy {
  bool enabled = false;
  int max_retries = 1;
  bool allow_layout_shrink = true;
  bool allow_variant_downgrade = true;
  bool allow_cpu_fallback = true;
};

/// Classifier configuration. Layout parameters apply to the hierarchical
/// variants; device configs to their respective backends.
struct ClassifierOptions {
  Variant variant = Variant::Hybrid;
  Backend backend = Backend::GpuSim;
  HierConfig layout{};
  gpusim::DeviceConfig gpu = gpusim::DeviceConfig::titan_xp();
  fpgasim::FpgaConfig fpga = fpgasim::FpgaConfig::alveo_u250();
  fpgasim::CuLayout fpga_layout{};
  bool fpga_split_stage1 = false;
  FallbackPolicy fallback{};
};

/// The library's front door: owns a trained forest plus the inference
/// layout(s) it was compiled into, and dispatches classification to the
/// configured backend/variant.
///
///   Forest f = train_forest(train_set, TrainConfig{});
///   Classifier clf(std::move(f), {.variant = Variant::Hybrid,
///                                 .backend = Backend::GpuSim});
///   RunReport r = clf.classify(test_set);
///
/// Invalid combinations (e.g. FilBaseline on FpgaSim) throw ConfigError at
/// construction; resource overruns (root subtree vs shared memory/BRAM)
/// throw ResourceError at classify time, mirroring real launch failures.
class Classifier {
 public:
  Classifier(Forest forest, ClassifierOptions options);

  /// Wraps a forest plus a *precompiled* layout blob (layout_io), skipping
  /// the layout build — the production path where model compilation
  /// happened offline. The layout must match the forest's feature/class
  /// shape (ConfigError otherwise); variant must be Csr for a CSR layout,
  /// hierarchical for a hierarchical one.
  Classifier(Forest forest, CsrForest layout, ClassifierOptions options);
  Classifier(Forest forest, HierarchicalForest layout, ClassifierOptions options);

  /// Trains a forest on `train` and wraps it.
  static Classifier train(const Dataset& train, const TrainConfig& train_config,
                          ClassifierOptions options);

  /// Loads a serialized forest (Forest::save) and wraps it.
  static Classifier load(const std::string& path, ClassifierOptions options);

  /// Classifies a query batch. Queries are validated up front: a feature
  /// count differing from the model's, or any NaN/Inf feature value,
  /// throws ConfigError before any traversal runs. ResourceError from a
  /// simulated backend is retried/degraded per options().fallback when
  /// enabled (see FallbackPolicy), else propagated.
  RunReport classify(const Dataset& queries) const;

  /// Chunked classification for latency-bounded serving: classifies
  /// `queries` in chunks of `chunk_size`, reporting total and worst-chunk
  /// time. Predictions are identical to classify() — chunking only
  /// affects scheduling (verified by tests).
  struct StreamReport {
    std::vector<std::uint8_t> predictions;
    double total_seconds = 0.0;
    double max_chunk_seconds = 0.0;
    std::size_t chunks = 0;
    bool simulated = true;
    /// False when a cancel callback stopped the run early; `predictions`
    /// then holds only the chunks finished before cancellation.
    bool completed = true;
    /// Degradation trail aggregated (deduplicated) across chunks; see
    /// RunReport::degradations.
    std::vector<std::string> degradations;
    /// Per-chunk latency histogram (one record per finished chunk, in
    /// ns of `seconds` — simulated or wall per the backend).
    HistogramSnapshot chunk_latency;
    /// Backend hardware counters summed across finished chunks (GpuSim
    /// backends), and the FPGA pipeline report aggregated the same way
    /// (seconds/cycles summed, descriptive fields from the first chunk).
    /// nullopt when the serving backend produced neither.
    std::optional<gpusim::Counters> gpu_counters;
    std::optional<fpgasim::FpgaReport> fpga_report;
  };
  StreamReport classify_stream(const Dataset& queries, std::size_t chunk_size) const;

  /// Cancellable variant: `cancel` is polled between chunks (never
  /// mid-chunk), and a true return abandons the remaining work with
  /// `completed == false`. This is the serving layer's execution
  /// time-box: a worker passes a deadline check so an expired request
  /// stops burning the backend after at most one chunk.
  StreamReport classify_stream(const Dataset& queries, std::size_t chunk_size,
                               const std::function<bool()>& cancel) const;

  /// Traced variant: when `parent` is an active span, each chunk gets a
  /// "chunk-N" child span carrying its duration and backend counter
  /// attributes (see set_backend_span_attrs). Inactive spans cost nothing,
  /// so the serving layer calls this unconditionally.
  StreamReport classify_stream(const Dataset& queries, std::size_t chunk_size,
                               const std::function<bool()>& cancel,
                               const trace::Span& parent) const;

  const Forest& forest() const { return forest_; }
  const ClassifierOptions& options() const { return options_; }
  /// The hierarchical layout (built lazily; throws for CSR/FIL variants).
  const HierarchicalForest& hierarchical() const;
  const CsrForest& csr() const;

 private:
  void check_variant_backend() const;
  void validate_queries(const Dataset& queries) const;
  /// One backend execution against explicit layouts (the fallback chain
  /// swaps these without touching the classifier's own state).
  RunReport run_backend(Backend backend, Variant variant, const CsrForest* csr,
                        const HierarchicalForest* hier, const Dataset& queries) const;
  /// Largest RSD whose root subtree fits the configured backend's on-chip
  /// memory (0 when not applicable).
  int max_fitting_rsd() const;

  Forest forest_;
  ClassifierOptions options_;
  std::optional<CsrForest> csr_;
  std::optional<HierarchicalForest> hier_;
};

}  // namespace hrf
