#pragma once

/// Umbrella header for the hrf library: hierarchical random forest
/// classification on simulated GPU and FPGA backends, reproducing
/// Shah et al., "Accelerating Random Forest Classification on GPU and
/// FPGA" (ICPP 2022).
///
/// Typical use:
///
///   #include "core/hrf.hpp"
///
///   hrf::Dataset data = hrf::make_susy_like(300'000);
///   auto [train, test] = data.split();
///   hrf::Classifier clf = hrf::Classifier::train(
///       train, hrf::TrainConfig{.num_trees = 100, .max_depth = 20},
///       {.variant = hrf::Variant::Hybrid, .backend = hrf::Backend::GpuSim,
///        .layout = {.subtree_depth = 8, .root_subtree_depth = 12}});
///   hrf::RunReport r = clf.classify(test);

#include "core/classifier.hpp"
#include "core/paper.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "forest/forest.hpp"
#include "forest/random_forest_gen.hpp"
#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"
#include "layout/layout_io.hpp"
#include "layout/quantized.hpp"
#include "layout/tree_clustering.hpp"
#include "serve/server.hpp"
#include "train/forest_trainer.hpp"
#include "train/regression.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
