#include "core/paper.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>

#include "train/forest_trainer.hpp"
#include "util/error.hpp"

namespace hrf::paper {

const char* name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::Covertype: return "covertype";
    case DatasetKind::Susy: return "susy";
    case DatasetKind::Higgs: return "higgs";
  }
  return "?";
}

std::size_t paper_samples(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::Covertype: return 581'012;
    case DatasetKind::Susy: return 3'000'000;
    case DatasetKind::Higgs: return 2'750'000;
  }
  return 0;
}

std::size_t default_samples(DatasetKind kind, double scale) {
  require(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  const auto n = static_cast<std::size_t>(scale * static_cast<double>(paper_samples(kind)));
  return std::max<std::size_t>(n, 20'000);
}

SyntheticSpec spec(DatasetKind kind, std::size_t num_samples) {
  switch (kind) {
    case DatasetKind::Covertype: return covertype_like_spec(num_samples);
    case DatasetKind::Susy: return susy_like_spec(num_samples);
    case DatasetKind::Higgs: return higgs_like_spec(num_samples);
  }
  return {};
}

TrainConfig train_config(DatasetKind kind, int max_depth, int num_trees, ForestUse use) {
  TrainConfig cfg;
  cfg.max_depth = max_depth;
  cfg.num_trees = num_trees;
  cfg.seed = 42;
  if (use == ForestUse::Accuracy && kind == DatasetKind::Covertype) {
    // Full-feature splits let greedy CART resolve the covertype-like
    // teacher's deep structure, landing the Fig. 5 plateau at ~88-89%.
    cfg.features_per_split = 54;
  }
  return cfg;
}

std::vector<int> selected_depths(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::Covertype: return {30, 35, 40};
    case DatasetKind::Susy: return {15, 20, 25};
    case DatasetKind::Higgs: return {25, 30, 35};
  }
  return {};
}

namespace {

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Dataset cached_dataset(DatasetKind kind, std::size_t num_samples, const std::string& cache_dir) {
  char path[512];
  std::snprintf(path, sizeof path, "%s/%s_%zu.hrfd", cache_dir.c_str(), name(kind), num_samples);
  if (file_exists(path)) return Dataset::load(path);
  Dataset ds = make_synthetic(spec(kind, num_samples));
  if (!cache_dir.empty()) ds.save(path);
  return ds;
}

}  // namespace

Dataset test_half(DatasetKind kind, std::size_t num_samples, const std::string& cache_dir) {
  return cached_dataset(kind, num_samples, cache_dir).split().second;
}

Dataset train_half(DatasetKind kind, std::size_t num_samples, const std::string& cache_dir) {
  return cached_dataset(kind, num_samples, cache_dir).split().first;
}

Forest cached_forest(DatasetKind kind, int max_depth, int num_trees, std::size_t num_samples,
                     const std::string& cache_dir) {
  char path[512];
  std::snprintf(path, sizeof path, "%s/%s_d%d_t%d_n%zu.hrff", cache_dir.c_str(), name(kind),
                max_depth, num_trees, num_samples);
  if (file_exists(path)) return Forest::load(path);
  const Dataset train = train_half(kind, num_samples, cache_dir);
  Forest f =
      train_forest(train, train_config(kind, max_depth, num_trees, ForestUse::Timing));
  if (!cache_dir.empty()) f.save(path);
  return f;
}

}  // namespace hrf::paper
