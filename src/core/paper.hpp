#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "forest/forest.hpp"
#include "train/tree_trainer.hpp"

namespace hrf::paper {

/// The paper's three evaluation datasets (Table 1), as synthetic stand-ins.
enum class DatasetKind { Covertype, Susy, Higgs };

inline constexpr DatasetKind kAllDatasets[] = {DatasetKind::Covertype, DatasetKind::Susy,
                                               DatasetKind::Higgs};

const char* name(DatasetKind kind);

/// Paper sample counts (Table 1): 581,012 / 3,000,000 / 2,750,000.
std::size_t paper_samples(DatasetKind kind);

/// Default bench sample count: `scale` * paper count, floored at 20k.
/// Benches default to scale 0.1 so the full harness runs on small hosts.
std::size_t default_samples(DatasetKind kind, double scale);

/// Synthetic generator spec for the dataset at the given sample count.
SyntheticSpec spec(DatasetKind kind, std::size_t num_samples);

/// What a trained forest will be used for. Accuracy forests use per-dataset
/// feature-sampling tuned so the Fig. 5 plateaus land at the paper's
/// levels; timing forests use sqrt-feature sampling, which grows the deep
/// sparse trees (depth 30-40) whose traversal the timing experiments
/// measure.
enum class ForestUse { Accuracy, Timing };

TrainConfig train_config(DatasetKind kind, int max_depth, int num_trees, ForestUse use);

/// The accuracy-selected tree-depth ranges of §4.1: Covertype 30-40,
/// Susy 15-25, Higgs 25-35.
std::vector<int> selected_depths(DatasetKind kind);

/// Trains (or loads from `cache_dir` if previously trained) the timing
/// forest for the given configuration. Caching matters: the bench suite
/// revisits the same forests across experiments.
Forest cached_forest(DatasetKind kind, int max_depth, int num_trees, std::size_t num_samples,
                     const std::string& cache_dir);

/// Generates (or loads from cache) the dataset and returns its test half
/// (the query set: the paper slices train:test 1:1).
Dataset test_half(DatasetKind kind, std::size_t num_samples, const std::string& cache_dir);

/// Train half, for accuracy experiments.
Dataset train_half(DatasetKind kind, std::size_t num_samples, const std::string& cache_dir);

}  // namespace hrf::paper
