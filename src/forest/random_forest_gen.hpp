#pragma once

#include <cstdint>

#include "forest/forest.hpp"

namespace hrf {

/// Parameters for synthesizing a random forest *topology* (no training).
/// Used by the Table 3 reproduction — the paper's FPGA variant comparison
/// runs on a synthetic dataset (d=15, t=40, q=250k) — and by property
/// tests that need many structurally diverse forests cheaply.
struct RandomForestSpec {
  int num_trees = 40;
  /// Target maximum depth (root = 1). One spine per tree is forced to this
  /// depth so `Forest::stats().max_depth == max_depth` exactly.
  int max_depth = 15;
  /// Probability that a non-spine node at depth < max_depth branches;
  /// controls sparsity (expected nodes per tree ~ (2*branch_prob)^depth).
  double branch_prob = 0.72;
  int num_features = 20;
  /// Leaf class votes are drawn uniformly from [0, num_classes).
  int num_classes = 2;
  std::uint64_t seed = 99;
};

/// Builds a random forest per the spec. Thresholds are uniform in [0,1),
/// features uniform over [0, num_features), leaf votes uniform over the
/// classes. Deterministic in spec.seed.
Forest make_random_forest(const RandomForestSpec& spec);

}  // namespace hrf
