#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hrf {

/// Sentinel feature id marking a leaf node (matches the paper's Fig. 2c,
/// where feature_id = -1 denotes a leaf).
inline constexpr std::int32_t kLeafFeature = -1;

/// One node of a binary decision tree.
///
/// Inner node: `feature >= 0`, traversal goes left iff
/// `query[feature] < value`, children indices in `left` / `right`.
/// Leaf node: `feature == kLeafFeature`, `value` holds the class vote as
/// a small non-negative integer stored in float (0.0 = class A, 1.0 =
/// class B in the paper's binary setting; larger ids for multi-class).
struct TreeNode {
  std::int32_t feature = kLeafFeature;
  float value = 0.0f;
  std::int32_t left = -1;
  std::int32_t right = -1;

  bool is_leaf() const { return feature == kLeafFeature; }
};

/// Aggregate structural statistics of a tree (used by the memory-footprint
/// analysis and by reports).
struct TreeStats {
  std::size_t node_count = 0;
  std::size_t leaf_count = 0;
  int max_depth = 0;       // root counts as depth 1
  double mean_leaf_depth = 0.0;
};

/// A trained binary decision tree stored as a flat node vector with the
/// root at index 0. This is the canonical in-memory model from which the
/// CSR and hierarchical inference layouts are derived.
class DecisionTree {
 public:
  DecisionTree() = default;
  explicit DecisionTree(std::vector<TreeNode> nodes);

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  const TreeNode& node(std::size_t i) const { return nodes_[i]; }
  std::size_t node_count() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Reserves and appends; returns the new node's index.
  std::int32_t add_node(const TreeNode& n);
  TreeNode& mutable_node(std::size_t i) { return nodes_[i]; }

  /// Returns the leaf class vote for the query. The tree must be
  /// non-empty and well formed.
  std::uint8_t classify(std::span<const float> query) const;

  /// Leaf value reached by the query (the class id as float), mirroring
  /// the paper's tree_traverse return.
  float traverse(std::span<const float> query) const;

  TreeStats stats() const;

  /// Depth of the tree (root = 1); 0 for an empty tree.
  int depth() const { return stats().max_depth; }

  /// Verifies structural invariants: children in range, exactly one parent
  /// per non-root node, every path ends at a leaf, no cycles, leaf values
  /// are integral class ids below `num_classes`. Throws FormatError
  /// describing the first violation.
  void validate(std::size_t num_features, int num_classes = 2) const;

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace hrf
