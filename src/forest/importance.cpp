#include "forest/importance.hpp"

#include <algorithm>
#include <numeric>

namespace hrf {

std::vector<double> feature_importance(const Forest& forest) {
  std::vector<double> scores(forest.num_features(), 0.0);
  for (std::size_t t = 0; t < forest.tree_count(); ++t) {
    const DecisionTree& tree = forest.tree(t);
    // Iterative DFS carrying the balanced-mass estimate per node.
    std::vector<std::pair<std::int32_t, double>> stack{{0, 1.0}};
    while (!stack.empty()) {
      const auto [id, mass] = stack.back();
      stack.pop_back();
      const TreeNode& n = tree.node(static_cast<std::size_t>(id));
      if (n.is_leaf()) continue;
      scores[static_cast<std::size_t>(n.feature)] += mass;
      stack.emplace_back(n.left, mass / 2.0);
      stack.emplace_back(n.right, mass / 2.0);
    }
  }
  const double total = std::accumulate(scores.begin(), scores.end(), 0.0);
  if (total > 0.0) {
    for (double& s : scores) s /= total;
  }
  return scores;
}

std::vector<std::size_t> top_features(const Forest& forest, std::size_t k) {
  const std::vector<double> scores = feature_importance(forest);
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace hrf
