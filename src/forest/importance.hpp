#pragma once

#include <vector>

#include "forest/forest.hpp"

namespace hrf {

/// Structural feature importance of a trained (or loaded) forest.
///
/// Each inner node contributes its estimated probability mass — 2^-(depth-1),
/// the balanced-split estimate, since serialized models carry no sample
/// counts — to the feature it splits on; scores are summed over all trees
/// and normalized to sum to 1. This is the split-frequency proxy for
/// mean-decrease-in-impurity: features used often and near the roots score
/// high. It needs no training data, so it also works on deserialized
/// models (e.g. in `hrf_cli --mode info`).
std::vector<double> feature_importance(const Forest& forest);

/// Indices of the `k` most important features, descending (ties by lower
/// feature id).
std::vector<std::size_t> top_features(const Forest& forest, std::size_t k);

}  // namespace hrf
