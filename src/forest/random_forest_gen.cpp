#include "forest/random_forest_gen.hpp"

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {

namespace {

DecisionTree make_random_tree(const RandomForestSpec& spec, Xoshiro256& rng) {
  DecisionTree tree;
  struct Work {
    std::int32_t node_id;
    int depth;
    bool on_spine;  // forced-branch path guaranteeing the max depth
  };
  std::vector<Work> stack;
  tree.add_node(TreeNode{});
  stack.push_back({0, 1, true});

  while (!stack.empty()) {
    const Work w = stack.back();
    stack.pop_back();
    TreeNode& placeholder = tree.mutable_node(static_cast<std::size_t>(w.node_id));

    const bool branch =
        w.depth < spec.max_depth && (w.on_spine || rng.bernoulli(spec.branch_prob));
    if (!branch) {
      placeholder.feature = kLeafFeature;
      placeholder.value = static_cast<float>(rng.bounded(spec.num_classes));
      continue;
    }
    placeholder.feature = static_cast<std::int32_t>(rng.bounded(spec.num_features));
    placeholder.value = static_cast<float>(rng.uniform(0.05, 0.95));
    const std::int32_t left = tree.add_node(TreeNode{});
    const std::int32_t right = tree.add_node(TreeNode{});
    // add_node may reallocate; re-fetch the parent before wiring children.
    TreeNode& parent = tree.mutable_node(static_cast<std::size_t>(w.node_id));
    parent.left = left;
    parent.right = right;
    const bool spine_goes_left = rng.bernoulli(0.5);
    stack.push_back({left, w.depth + 1, w.on_spine && spine_goes_left});
    stack.push_back({right, w.depth + 1, w.on_spine && !spine_goes_left});
  }
  return tree;
}

}  // namespace

Forest make_random_forest(const RandomForestSpec& spec) {
  require(spec.num_trees >= 1, "need at least one tree");
  require(spec.max_depth >= 1 && spec.max_depth <= 60, "max_depth must be in [1, 60]");
  require(spec.branch_prob >= 0.0 && spec.branch_prob <= 1.0, "branch_prob must be in [0,1]");
  require(spec.num_features >= 1, "need at least one feature");
  require(spec.num_classes >= 2 && spec.num_classes <= 256, "num_classes must be in [2, 256]");

  Xoshiro256 rng(spec.seed);
  std::vector<DecisionTree> trees;
  trees.reserve(static_cast<std::size_t>(spec.num_trees));
  for (int t = 0; t < spec.num_trees; ++t) {
    trees.push_back(make_random_tree(spec, rng));
  }
  Forest f(std::move(trees), static_cast<std::size_t>(spec.num_features), spec.num_classes);
  return f;
}

}  // namespace hrf
