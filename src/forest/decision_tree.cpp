#include "forest/decision_tree.hpp"

#include <string>
#include <vector>

#include "util/error.hpp"

namespace hrf {

DecisionTree::DecisionTree(std::vector<TreeNode> nodes) : nodes_(std::move(nodes)) {}

std::int32_t DecisionTree::add_node(const TreeNode& n) {
  nodes_.push_back(n);
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

float DecisionTree::traverse(std::span<const float> query) const {
  std::size_t n = 0;
  while (!nodes_[n].is_leaf()) {
    const TreeNode& node = nodes_[n];
    n = static_cast<std::size_t>(query[static_cast<std::size_t>(node.feature)] < node.value
                                     ? node.left
                                     : node.right);
  }
  return nodes_[n].value;
}

std::uint8_t DecisionTree::classify(std::span<const float> query) const {
  return static_cast<std::uint8_t>(traverse(query));
}

TreeStats DecisionTree::stats() const {
  TreeStats s;
  s.node_count = nodes_.size();
  if (nodes_.empty()) return s;
  // Iterative DFS with explicit depth tracking (no recursion: trees can be
  // thousands of nodes deep in adversarial inputs).
  std::vector<std::pair<std::int32_t, int>> stack{{0, 1}};
  std::size_t leaf_depth_sum = 0;
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[static_cast<std::size_t>(id)];
    s.max_depth = depth > s.max_depth ? depth : s.max_depth;
    if (n.is_leaf()) {
      ++s.leaf_count;
      leaf_depth_sum += static_cast<std::size_t>(depth);
    } else {
      stack.emplace_back(n.left, depth + 1);
      stack.emplace_back(n.right, depth + 1);
    }
  }
  s.mean_leaf_depth =
      s.leaf_count ? static_cast<double>(leaf_depth_sum) / static_cast<double>(s.leaf_count) : 0.0;
  return s;
}

void DecisionTree::validate(std::size_t num_features, int num_classes) const {
  if (nodes_.empty()) throw FormatError("tree has no nodes");
  const auto n = static_cast<std::int32_t>(nodes_.size());
  std::vector<int> parents(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& node = nodes_[i];
    if (node.is_leaf()) {
      const float v = node.value;
      if (v < 0.0f || v >= static_cast<float>(num_classes) ||
          v != static_cast<float>(static_cast<int>(v))) {
        throw FormatError("leaf " + std::to_string(i) + " has invalid class value");
      }
      continue;
    }
    if (node.feature < 0 || static_cast<std::size_t>(node.feature) >= num_features) {
      throw FormatError("node " + std::to_string(i) + " references invalid feature " +
                        std::to_string(node.feature));
    }
    if (node.left < 0 || node.left >= n || node.right < 0 || node.right >= n) {
      throw FormatError("node " + std::to_string(i) + " has out-of-range child");
    }
    if (node.left == static_cast<std::int32_t>(i) || node.right == static_cast<std::int32_t>(i)) {
      throw FormatError("node " + std::to_string(i) + " is its own child");
    }
    ++parents[static_cast<std::size_t>(node.left)];
    ++parents[static_cast<std::size_t>(node.right)];
  }
  if (parents[0] != 0) throw FormatError("root node has a parent");
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (parents[i] != 1) {
      throw FormatError("node " + std::to_string(i) + " has " + std::to_string(parents[i]) +
                        " parents (expected 1)");
    }
  }
  // Reachability + acyclicity: DFS from the root must visit every node
  // exactly once given the single-parent property checked above.
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<std::int32_t> stack{0};
  std::size_t visited = 0;
  while (!stack.empty()) {
    const auto id = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    if (seen[id]) throw FormatError("cycle detected at node " + std::to_string(id));
    seen[id] = 1;
    ++visited;
    const TreeNode& node = nodes_[id];
    if (!node.is_leaf()) {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  if (visited != nodes_.size()) throw FormatError("tree contains unreachable nodes");
}

}  // namespace hrf
