#include "forest/forest.hpp"

#include <fstream>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace hrf {

namespace {
constexpr std::uint32_t kMagic = 0x48524646;  // "HRFF"
constexpr std::uint32_t kVersion = 2;  // v2 added num_classes

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw FormatError("forest file truncated");
  return v;
}
}  // namespace

Forest::Forest(std::vector<DecisionTree> trees, std::size_t num_features, int num_classes)
    : trees_(std::move(trees)), num_features_(num_features), num_classes_(num_classes) {
  require(!trees_.empty(), "forest needs at least one tree");
  require(num_features_ > 0, "forest needs at least one feature");
  require(num_classes >= 2 && num_classes <= 256, "num_classes must be in [2, 256]");
}

std::uint32_t Forest::vote_sum(std::span<const float> query) const {
  require(num_classes_ == 2, "vote_sum is the paper's binary accumulator");
  std::uint32_t tmp = 0;
  for (const DecisionTree& t : trees_) tmp += t.classify(query) == 1;
  return tmp;
}

std::uint8_t Forest::vote_winner(std::span<const std::uint32_t> votes) {
  // Argmax with ties to the higher class id: with two classes and
  // votes[1] == N/2 this selects class B, i.e. Fig. 1a's tmp < N/2 ? A : B.
  std::size_t best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] >= votes[best]) best = c;
  }
  return static_cast<std::uint8_t>(best);
}

std::uint8_t Forest::classify(std::span<const float> query) const {
  std::uint32_t votes[256] = {};
  for (const DecisionTree& t : trees_) ++votes[t.classify(query)];
  return vote_winner({votes, static_cast<std::size_t>(num_classes_)});
}

std::vector<std::uint8_t> Forest::classify_batch(std::span<const float> queries,
                                                 std::size_t num_queries) const {
  require(queries.size() == num_queries * num_features_,
          "query matrix size mismatch");
  std::vector<std::uint8_t> out(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    out[i] = classify(queries.subspan(i * num_features_, num_features_));
  }
  return out;
}

double Forest::accuracy(std::span<const float> queries,
                        std::span<const std::uint8_t> labels) const {
  const std::size_t n = labels.size();
  require(queries.size() == n * num_features_, "query matrix size mismatch");
  if (n == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    correct += classify(queries.subspan(i * num_features_, num_features_)) == labels[i];
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

ForestStats Forest::stats() const {
  ForestStats s;
  s.tree_count = trees_.size();
  double depth_sum = 0.0;
  double leaf_depth_weighted = 0.0;
  for (const DecisionTree& t : trees_) {
    const TreeStats ts = t.stats();
    s.total_nodes += ts.node_count;
    s.total_leaves += ts.leaf_count;
    s.max_depth = ts.max_depth > s.max_depth ? ts.max_depth : s.max_depth;
    depth_sum += ts.max_depth;
    leaf_depth_weighted += ts.mean_leaf_depth * static_cast<double>(ts.leaf_count);
  }
  if (!trees_.empty()) s.mean_depth = depth_sum / static_cast<double>(trees_.size());
  if (s.total_leaves) {
    s.mean_leaf_depth = leaf_depth_weighted / static_cast<double>(s.total_leaves);
  }
  return s;
}

void Forest::validate() const {
  for (const DecisionTree& t : trees_) t.validate(num_features_, num_classes_);
}

void Forest::save(const std::string& path) const {
  // Crash-safe: staged via AtomicFile, committed by atomic rename, so a
  // crash mid-save never leaves a truncated model behind.
  AtomicFile out(path);
  std::ostream& f = out.stream();
  write_pod(f, kMagic);
  write_pod(f, kVersion);
  write_pod(f, static_cast<std::uint64_t>(num_features_));
  write_pod(f, static_cast<std::uint32_t>(num_classes_));
  write_pod(f, static_cast<std::uint64_t>(trees_.size()));
  for (const DecisionTree& t : trees_) {
    write_pod(f, static_cast<std::uint64_t>(t.node_count()));
    f.write(reinterpret_cast<const char*>(t.nodes().data()),
            static_cast<std::streamsize>(t.node_count() * sizeof(TreeNode)));
  }
  if (!f) throw Error("write failed: " + path);
  out.commit();
}

Forest Forest::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open for reading: " + path);
  if (read_pod<std::uint32_t>(f) != kMagic) throw FormatError("bad forest magic in " + path);
  if (read_pod<std::uint32_t>(f) != kVersion) {
    throw FormatError("unsupported forest version in " + path);
  }
  const auto num_features = read_pod<std::uint64_t>(f);
  const auto num_classes = read_pod<std::uint32_t>(f);
  if (num_classes < 2 || num_classes > 256) {
    throw FormatError("implausible class count in " + path);
  }
  const auto num_trees = read_pod<std::uint64_t>(f);
  if (num_features == 0 || num_features > (1u << 20)) {
    throw FormatError("implausible feature count in " + path);
  }
  if (num_trees == 0 || num_trees > (1u << 24)) {
    throw FormatError("implausible tree count in " + path);
  }
  std::vector<DecisionTree> trees;
  trees.reserve(num_trees);
  for (std::uint64_t i = 0; i < num_trees; ++i) {
    const auto n = read_pod<std::uint64_t>(f);
    if (n == 0 || n > (1u << 30)) throw FormatError("implausible node count in " + path);
    std::vector<TreeNode> nodes(n);
    f.read(reinterpret_cast<char*>(nodes.data()),
           static_cast<std::streamsize>(n * sizeof(TreeNode)));
    if (!f) throw FormatError("forest file truncated: " + path);
    trees.emplace_back(std::move(nodes));
  }
  Forest out(std::move(trees), num_features, static_cast<int>(num_classes));
  out.validate();  // loads are untrusted: reject malformed topology
  return out;
}

}  // namespace hrf
