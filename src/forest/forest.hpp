#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "forest/decision_tree.hpp"

namespace hrf {

/// Aggregate statistics over a forest.
struct ForestStats {
  std::size_t tree_count = 0;
  std::size_t total_nodes = 0;
  std::size_t total_leaves = 0;
  int max_depth = 0;
  double mean_depth = 0.0;       // mean over trees of per-tree max depth
  double mean_leaf_depth = 0.0;  // mean over all leaves
};

/// A trained random forest: an ensemble of binary decision trees plus the
/// feature-space width and class count it was trained for. Classification
/// is a majority vote over per-tree leaf votes. In the paper's binary
/// setting this is exactly Fig. 1a's `tmp < N/2 ? A : B`; the multi-class
/// generalization is argmax over per-class vote counts with ties resolved
/// to the HIGHER class id (which reduces to the paper's rule at k = 2).
class Forest {
 public:
  Forest() = default;
  Forest(std::vector<DecisionTree> trees, std::size_t num_features, int num_classes = 2);

  std::size_t tree_count() const { return trees_.size(); }
  std::size_t num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }
  const DecisionTree& tree(std::size_t i) const { return trees_[i]; }
  const std::vector<DecisionTree>& trees() const { return trees_; }

  /// Majority-vote classification of a single query (argmax of class
  /// votes, ties to the higher class id — at k = 2 this is exactly
  /// `tmp < N/2 ? A : B`).
  std::uint8_t classify(std::span<const float> query) const;

  /// Sum of per-tree class-1 votes (the paper's `tmp` accumulator;
  /// binary forests only).
  std::uint32_t vote_sum(std::span<const float> query) const;

  /// Winner of a per-class vote histogram under the library's tie rule.
  static std::uint8_t vote_winner(std::span<const std::uint32_t> votes);

  /// Classifies every row of the row-major query matrix.
  std::vector<std::uint8_t> classify_batch(std::span<const float> queries,
                                           std::size_t num_queries) const;

  /// Fraction of queries whose prediction matches `labels`.
  double accuracy(std::span<const float> queries, std::span<const std::uint8_t> labels) const;

  ForestStats stats() const;

  /// Validates every tree (see DecisionTree::validate).
  void validate() const;

  /// Binary model (de)serialization (magic + version + per-tree node
  /// arrays). Throws FormatError on malformed input.
  void save(const std::string& path) const;
  static Forest load(const std::string& path);

 private:
  std::vector<DecisionTree> trees_;
  std::size_t num_features_ = 0;
  int num_classes_ = 2;
};

}  // namespace hrf
