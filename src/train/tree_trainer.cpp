#include "train/tree_trainer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hrf {

TreeTrainer::TreeTrainer(const BinnedDataset& data, const TrainConfig& config)
    : data_(data), config_(config) {
  require(config.max_depth >= 1, "max_depth must be >= 1");
  require(config.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  require(config.min_samples_split >= 2, "min_samples_split must be >= 2");
  features_per_split_ =
      config.features_per_split > 0
          ? std::min<int>(config.features_per_split, static_cast<int>(data.num_features()))
          : std::max(1, static_cast<int>(std::sqrt(static_cast<double>(data.num_features()))));
}

TreeTrainer::Split TreeTrainer::best_split(std::span<const std::uint32_t> indices,
                                           std::span<const std::uint32_t> parent_class_counts,
                                           Xoshiro256& rng) const {
  const auto k = static_cast<std::size_t>(data_.num_classes());
  const double total = static_cast<double>(indices.size());

  // Gini "score" of one partition side, expressed as the quantity to
  // maximize: sum over classes of n_c^2 / n. Constant offsets cancel, so
  // maximizing the sum over both sides minimizes weighted Gini impurity.
  const auto side_score = [k](const std::uint32_t* counts, double n) {
    if (n <= 0.0) return 0.0;
    double s = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      s += static_cast<double>(counts[c]) * static_cast<double>(counts[c]);
    }
    return s / n;
  };
  const double parent_score = side_score(parent_class_counts.data(), total);

  Split best;
  // Sample features without replacement via partial Fisher–Yates over a
  // small local id array.
  thread_local std::vector<int> feat_ids;
  feat_ids.resize(data_.num_features());
  for (std::size_t f = 0; f < feat_ids.size(); ++f) feat_ids[f] = static_cast<int>(f);

  thread_local std::vector<std::uint32_t> hist;   // [bin][class]
  thread_local std::vector<std::uint32_t> left;   // running left class counts

  for (int pick = 0; pick < features_per_split_; ++pick) {
    const auto j = pick + static_cast<int>(rng.bounded(feat_ids.size() - static_cast<std::size_t>(pick)));
    std::swap(feat_ids[static_cast<std::size_t>(pick)], feat_ids[static_cast<std::size_t>(j)]);
    const int f = feat_ids[static_cast<std::size_t>(pick)];

    const int bins = data_.bins_used(static_cast<std::size_t>(f));
    if (bins < 2) continue;
    hist.assign(static_cast<std::size_t>(bins) * k, 0u);
    const std::uint8_t* col = data_.column(static_cast<std::size_t>(f)).data();
    const std::uint8_t* labels = data_.labels().data();
    for (std::uint32_t i : indices) {
      ++hist[static_cast<std::size_t>(col[i]) * k + labels[i]];
    }

    // Scan split points "code < b" for b in [1, bins-1].
    left.assign(k, 0u);
    double left_cnt = 0.0;
    for (int b = 1; b < bins; ++b) {
      const std::uint32_t* bin_counts = hist.data() + static_cast<std::size_t>(b - 1) * k;
      for (std::size_t c = 0; c < k; ++c) {
        left[c] += bin_counts[c];
        left_cnt += bin_counts[c];
      }
      const double right_cnt = total - left_cnt;
      if (left_cnt < config_.min_samples_leaf || right_cnt < config_.min_samples_leaf) continue;

      double right_sq = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        const double rc = static_cast<double>(parent_class_counts[c]) - left[c];
        right_sq += rc * rc;
      }
      const double gain =
          side_score(left.data(), left_cnt) + right_sq / right_cnt - parent_score;
      // Ties break on (feature, bin) so the chosen split is independent of
      // the random order features were sampled in — this keeps training
      // bit-reproducible across schedules.
      const bool better = gain > best.gain + 1e-12;
      const bool tie = best.feature >= 0 && std::abs(gain - best.gain) <= 1e-12 &&
                       (f < best.feature || (f == best.feature && b < best.bin));
      if (better || tie) {
        best.feature = f;
        best.bin = b;
        best.gain = gain;
      }
    }
  }
  return best;
}

DecisionTree TreeTrainer::train(std::vector<std::uint32_t> indices, Xoshiro256& rng) const {
  require(!indices.empty(), "cannot train a tree on zero samples");
  const auto k = static_cast<std::size_t>(data_.num_classes());
  DecisionTree tree;
  tree.add_node(TreeNode{});  // root placeholder, filled below

  std::vector<Work> stack;
  stack.push_back(Work{0, static_cast<std::uint32_t>(indices.size()), 1, 0});

  const std::uint8_t* labels = data_.labels().data();
  std::vector<std::uint32_t> class_counts(k);

  while (!stack.empty()) {
    const Work w = stack.back();
    stack.pop_back();
    const std::uint32_t n = w.end - w.begin;

    class_counts.assign(k, 0u);
    for (std::uint32_t i = w.begin; i < w.end; ++i) ++class_counts[labels[indices[i]]];

    const auto make_leaf = [&] {
      TreeNode& node = tree.mutable_node(static_cast<std::size_t>(w.node_id));
      node.feature = kLeafFeature;
      // Majority class; ties resolve to the higher class id, matching the
      // forest-level vote rule (and the paper's binary tmp < N/2 ? A : B).
      std::size_t best = 0;
      for (std::size_t c = 1; c < k; ++c) {
        if (class_counts[c] >= class_counts[best]) best = c;
      }
      node.value = static_cast<float>(best);
      node.left = node.right = -1;
    };

    bool pure = false;
    for (std::size_t c = 0; c < k; ++c) pure = pure || class_counts[c] == n;
    if (w.depth >= config_.max_depth || n < static_cast<std::uint32_t>(config_.min_samples_split) ||
        pure) {
      make_leaf();
      continue;
    }

    const Split split = best_split(
        std::span<const std::uint32_t>(indices).subspan(w.begin, n), class_counts, rng);
    if (split.feature < 0) {  // no admissible split found
      make_leaf();
      continue;
    }

    // Partition indices in place: left side = code < split.bin.
    const std::uint8_t* col = data_.column(static_cast<std::size_t>(split.feature)).data();
    const auto mid_it = std::partition(
        indices.begin() + w.begin, indices.begin() + w.end,
        [&](std::uint32_t i) { return col[i] < split.bin; });
    const auto mid = static_cast<std::uint32_t>(mid_it - indices.begin());
    // best_split only returns partitions with both sides >= min_samples_leaf.
    require(mid > w.begin && mid < w.end, "internal error: degenerate split");

    const std::int32_t left_id = tree.add_node(TreeNode{});
    const std::int32_t right_id = tree.add_node(TreeNode{});
    TreeNode& node = tree.mutable_node(static_cast<std::size_t>(w.node_id));
    node.feature = split.feature;
    node.value = data_.edge(static_cast<std::size_t>(split.feature), split.bin);
    node.left = left_id;
    node.right = right_id;

    stack.push_back(Work{w.begin, mid, w.depth + 1, left_id});
    stack.push_back(Work{mid, w.end, w.depth + 1, right_id});
  }
  return tree;
}

}  // namespace hrf
