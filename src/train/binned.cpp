#include "train/binned.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {

BinnedDataset::BinnedDataset(const Dataset& train, int max_bins) {
  require(max_bins >= 2 && max_bins <= 256, "max_bins must be in [2, 256]");
  require(train.num_samples() > 0, "cannot bin an empty dataset");
  num_samples_ = train.num_samples();
  num_features_ = train.num_features();
  num_classes_ = train.num_classes();
  max_bins_ = max_bins;
  labels_.assign(train.labels().begin(), train.labels().end());
  codes_.resize(num_samples_ * num_features_);
  edges_.resize(num_features_);

  // Quantile edges from a subsample keep binning O(n) in practice.
  constexpr std::size_t kMaxQuantileSample = 50'000;
  Xoshiro256 rng(0xb1a5ULL);
  std::vector<float> sample;
  sample.reserve(std::min(num_samples_, kMaxQuantileSample));

  for (std::size_t f = 0; f < num_features_; ++f) {
    sample.clear();
    if (num_samples_ <= kMaxQuantileSample) {
      for (std::size_t i = 0; i < num_samples_; ++i) sample.push_back(train.sample(i)[f]);
    } else {
      for (std::size_t k = 0; k < kMaxQuantileSample; ++k) {
        sample.push_back(train.sample(rng.bounded(num_samples_))[f]);
      }
    }
    std::sort(sample.begin(), sample.end());

    std::vector<float>& edges = edges_[f];
    edges.reserve(static_cast<std::size_t>(max_bins - 1));
    for (int b = 1; b < max_bins; ++b) {
      const auto idx = static_cast<std::size_t>(
          static_cast<double>(b) / max_bins * static_cast<double>(sample.size() - 1));
      const float e = sample[idx];
      // Keep only edges that actually separate data: ties collapse, and an
      // edge at (or below) the minimum has an empty left side.
      if (e > sample.front() && (edges.empty() || e > edges.back())) edges.push_back(e);
    }

    // Assign codes: code = number of edges <= x  (so "x < edges[c]" <=> code < c+1).
    std::uint8_t* col = codes_.data() + f * num_samples_;
    for (std::size_t i = 0; i < num_samples_; ++i) {
      const float x = train.sample(i)[f];
      const auto it = std::upper_bound(edges.begin(), edges.end(), x);
      // upper_bound: first edge > x, so (it - begin) = #edges <= x... we want
      // code c such that x < edges[c] for all c > code. Using lower_bound on
      // "x < e" semantics: count of edges e with e <= x.
      col[i] = static_cast<std::uint8_t>(it - edges.begin());
    }
  }
}

}  // namespace hrf
