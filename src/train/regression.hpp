#pragma once

// Random-forest *regression* (paper §1: "RFs are a commonly used machine
// learning method for classification and regression"). The paper's
// acceleration work targets classification; this module provides the
// regression half of the training substrate as a self-contained stack —
// trees reuse TreeNode (leaf value = mean target), prediction averages
// the per-tree leaf values. The GPU/FPGA inference layouts remain
// classification-only, as in the paper.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "forest/decision_tree.hpp"
#include "train/binned.hpp"

namespace hrf {

struct RegressionConfig {
  int num_trees = 100;
  int max_depth = 20;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
  int max_bins = 64;
  /// Features examined per split; 0 selects num_features / 3,
  /// scikit-learn's regression default.
  int features_per_split = 0;
  bool bootstrap = true;
  std::uint64_t seed = 42;
};

/// An ensemble of regression trees; prediction is the mean of per-tree
/// leaf values (each leaf stores the mean target of its training rows).
class RegressionForest {
 public:
  RegressionForest() = default;
  RegressionForest(std::vector<DecisionTree> trees, std::size_t num_features);

  std::size_t tree_count() const { return trees_.size(); }
  std::size_t num_features() const { return num_features_; }
  const DecisionTree& tree(std::size_t i) const { return trees_[i]; }

  /// Mean of the per-tree leaf values for one query.
  float predict(std::span<const float> query) const;

  /// Predicts every row of a row-major query matrix.
  std::vector<float> predict_batch(std::span<const float> queries,
                                   std::size_t num_queries) const;

  /// Mean squared error against `targets`.
  double mse(std::span<const float> queries, std::span<const float> targets) const;

  /// R^2 coefficient of determination against `targets`.
  double r2(std::span<const float> queries, std::span<const float> targets) const;

  /// Structural validation (topology only; leaf values are free floats).
  void validate() const;

 private:
  std::vector<DecisionTree> trees_;
  std::size_t num_features_ = 0;
};

/// Trains a regression forest on `features` rows (the Dataset's labels are
/// ignored) against float targets. Splits maximize variance reduction on
/// the binned feature view; leaves store the node's mean target.
/// OpenMP-parallel across trees; deterministic in config.seed.
RegressionForest train_regression_forest(const Dataset& features,
                                         std::span<const float> targets,
                                         const RegressionConfig& config);

}  // namespace hrf
