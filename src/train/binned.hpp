#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace hrf {

/// Quantile-binned view of a training set.
///
/// The CART trainer (this library's scikit-learn substitute) is
/// histogram-based, like LightGBM: every feature is discretized once into at
/// most `max_bins` quantile bins, and per-node split search scans 256-entry
/// histograms instead of sorting samples. Split thresholds are mapped back
/// to real feature values via the stored bin edges, so the trained tree is
/// evaluated on raw floats and is independent of the binning.
class BinnedDataset {
 public:
  /// Bins `train`. Bin edges are derived from per-feature quantiles of a
  /// subsample (capped for speed); ties collapse so a feature may end up
  /// with fewer bins than max_bins.
  BinnedDataset(const Dataset& train, int max_bins);

  std::size_t num_samples() const { return num_samples_; }
  std::size_t num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }
  int max_bins() const { return max_bins_; }

  /// Bin code of sample `i`, feature `f`. Codes are stored column-major so
  /// histogram construction streams through memory.
  std::uint8_t code(std::size_t f, std::size_t i) const { return codes_[f * num_samples_ + i]; }

  /// Column of codes for feature `f` (length num_samples()).
  std::span<const std::uint8_t> column(std::size_t f) const {
    return {codes_.data() + f * num_samples_, num_samples_};
  }

  /// Number of distinct bins actually used by feature `f`.
  int bins_used(std::size_t f) const { return static_cast<int>(edges_[f].size()) + 1; }

  /// Real-valued threshold for a split "code < b" on feature `f`:
  /// x < edge(f, b). Requires 1 <= b <= edges(f).size().
  float edge(std::size_t f, int b) const { return edges_[f][static_cast<std::size_t>(b - 1)]; }

  std::uint8_t label(std::size_t i) const { return labels_[i]; }
  std::span<const std::uint8_t> labels() const { return labels_; }

 private:
  std::size_t num_samples_ = 0;
  std::size_t num_features_ = 0;
  int num_classes_ = 2;
  int max_bins_ = 256;
  std::vector<std::uint8_t> codes_;          // column-major [f][i]
  std::vector<std::vector<float>> edges_;    // per feature, ascending; code c
                                             // covers [edges[c-1], edges[c])
  std::vector<std::uint8_t> labels_;
};

}  // namespace hrf
