#include "train/regression.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hrf {

namespace {

/// Variance-reduction tree growth on the binned view. The split score per
/// side is sum^2 / n (the constant sum-of-squares term cancels between
/// parent and children, so maximizing this minimizes within-node SSE).
class RegressionTreeTrainer {
 public:
  RegressionTreeTrainer(const BinnedDataset& data, std::span<const float> targets,
                        const RegressionConfig& config)
      : data_(data), targets_(targets), config_(config) {
    features_per_split_ =
        config.features_per_split > 0
            ? std::min<int>(config.features_per_split, static_cast<int>(data.num_features()))
            : std::max(1, static_cast<int>(data.num_features()) / 3);
  }

  DecisionTree train(std::vector<std::uint32_t> indices, Xoshiro256& rng) const {
    require(!indices.empty(), "cannot train a tree on zero samples");
    DecisionTree tree;
    tree.add_node(TreeNode{});

    struct Work {
      std::uint32_t begin, end;
      std::int32_t depth, node_id;
    };
    std::vector<Work> stack{{0, static_cast<std::uint32_t>(indices.size()), 1, 0}};

    while (!stack.empty()) {
      const Work w = stack.back();
      stack.pop_back();
      const std::uint32_t n = w.end - w.begin;

      double sum = 0.0, sumsq = 0.0;
      for (std::uint32_t i = w.begin; i < w.end; ++i) {
        const double y = targets_[indices[i]];
        sum += y;
        sumsq += y * y;
      }
      const double mean = sum / n;
      const double sse = sumsq - sum * mean;  // within-node squared error

      const auto make_leaf = [&] {
        TreeNode& node = tree.mutable_node(static_cast<std::size_t>(w.node_id));
        node.feature = kLeafFeature;
        node.value = static_cast<float>(mean);
        node.left = node.right = -1;
      };

      if (w.depth >= config_.max_depth ||
          n < static_cast<std::uint32_t>(config_.min_samples_split) || sse <= 1e-12) {
        make_leaf();
        continue;
      }

      const Split split =
          best_split({indices.data() + w.begin, n}, sum, rng);
      if (split.feature < 0) {
        make_leaf();
        continue;
      }

      const std::uint8_t* col = data_.column(static_cast<std::size_t>(split.feature)).data();
      const auto mid_it =
          std::partition(indices.begin() + w.begin, indices.begin() + w.end,
                         [&](std::uint32_t i) { return col[i] < split.bin; });
      const auto mid = static_cast<std::uint32_t>(mid_it - indices.begin());
      require(mid > w.begin && mid < w.end, "internal error: degenerate regression split");

      const std::int32_t left_id = tree.add_node(TreeNode{});
      const std::int32_t right_id = tree.add_node(TreeNode{});
      TreeNode& node = tree.mutable_node(static_cast<std::size_t>(w.node_id));
      node.feature = split.feature;
      node.value = data_.edge(static_cast<std::size_t>(split.feature), split.bin);
      node.left = left_id;
      node.right = right_id;
      stack.push_back({w.begin, mid, w.depth + 1, left_id});
      stack.push_back({mid, w.end, w.depth + 1, right_id});
    }
    return tree;
  }

 private:
  struct Split {
    int feature = -1;
    int bin = 0;
    double gain = 0.0;
  };

  Split best_split(std::span<const std::uint32_t> indices, double total_sum,
                   Xoshiro256& rng) const {
    const double total = static_cast<double>(indices.size());
    const double parent_score = total_sum * total_sum / total;

    Split best;
    thread_local std::vector<int> feat_ids;
    feat_ids.resize(data_.num_features());
    std::iota(feat_ids.begin(), feat_ids.end(), 0);

    double bin_sum[256];
    std::uint32_t bin_cnt[256];

    for (int pick = 0; pick < features_per_split_; ++pick) {
      const auto j =
          pick + static_cast<int>(rng.bounded(feat_ids.size() - static_cast<std::size_t>(pick)));
      std::swap(feat_ids[static_cast<std::size_t>(pick)], feat_ids[static_cast<std::size_t>(j)]);
      const int f = feat_ids[static_cast<std::size_t>(pick)];

      const int bins = data_.bins_used(static_cast<std::size_t>(f));
      if (bins < 2) continue;
      std::fill(bin_sum, bin_sum + bins, 0.0);
      std::fill(bin_cnt, bin_cnt + bins, 0u);
      const std::uint8_t* col = data_.column(static_cast<std::size_t>(f)).data();
      for (std::uint32_t i : indices) {
        bin_sum[col[i]] += targets_[i];
        ++bin_cnt[col[i]];
      }

      double left_sum = 0.0;
      double left_cnt = 0.0;
      for (int b = 1; b < bins; ++b) {
        left_sum += bin_sum[b - 1];
        left_cnt += bin_cnt[b - 1];
        const double right_cnt = total - left_cnt;
        if (left_cnt < config_.min_samples_leaf || right_cnt < config_.min_samples_leaf) continue;
        const double right_sum = total_sum - left_sum;
        const double gain =
            left_sum * left_sum / left_cnt + right_sum * right_sum / right_cnt - parent_score;
        const bool better = gain > best.gain + 1e-12;
        const bool tie = best.feature >= 0 && std::abs(gain - best.gain) <= 1e-12 &&
                         (f < best.feature || (f == best.feature && b < best.bin));
        if (better || tie) {
          best.feature = f;
          best.bin = b;
          best.gain = gain;
        }
      }
    }
    return best;
  }

  const BinnedDataset& data_;
  std::span<const float> targets_;
  const RegressionConfig& config_;
  int features_per_split_;
};

}  // namespace

RegressionForest::RegressionForest(std::vector<DecisionTree> trees, std::size_t num_features)
    : trees_(std::move(trees)), num_features_(num_features) {
  require(!trees_.empty(), "regression forest needs at least one tree");
  require(num_features_ > 0, "regression forest needs at least one feature");
}

float RegressionForest::predict(std::span<const float> query) const {
  double sum = 0.0;
  for (const DecisionTree& t : trees_) sum += t.traverse(query);
  return static_cast<float>(sum / static_cast<double>(trees_.size()));
}

std::vector<float> RegressionForest::predict_batch(std::span<const float> queries,
                                                   std::size_t num_queries) const {
  require(queries.size() == num_queries * num_features_, "query matrix size mismatch");
  std::vector<float> out(num_queries);
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < num_queries; ++i) {
    out[i] = predict(queries.subspan(i * num_features_, num_features_));
  }
  return out;
}

double RegressionForest::mse(std::span<const float> queries,
                             std::span<const float> targets) const {
  const auto preds = predict_batch(queries, targets.size());
  double err = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const double d = static_cast<double>(preds[i]) - targets[i];
    err += d * d;
  }
  return targets.empty() ? 0.0 : err / static_cast<double>(targets.size());
}

double RegressionForest::r2(std::span<const float> queries,
                            std::span<const float> targets) const {
  if (targets.empty()) return 0.0;
  double mean = 0.0;
  for (float y : targets) mean += y;
  mean /= static_cast<double>(targets.size());
  double var = 0.0;
  for (float y : targets) var += (y - mean) * (y - mean);
  if (var <= 0.0) return 0.0;
  return 1.0 - mse(queries, targets) * static_cast<double>(targets.size()) / var;
}

void RegressionForest::validate() const {
  // Topology checks only: leaf values are unconstrained floats, so borrow
  // the class check with an effectively unbounded "class" range.
  for (const DecisionTree& t : trees_) {
    TreeStats s = t.stats();
    require(s.node_count > 0, "empty regression tree");
    (void)s;
  }
}

RegressionForest train_regression_forest(const Dataset& features,
                                         std::span<const float> targets,
                                         const RegressionConfig& config) {
  require(targets.size() == features.num_samples(), "one target per sample required");
  require(config.num_trees >= 1, "num_trees must be >= 1");
  require(config.max_depth >= 1, "max_depth must be >= 1");
  require(config.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  require(config.min_samples_split >= 2, "min_samples_split must be >= 2");

  const BinnedDataset binned(features, config.max_bins);
  const RegressionTreeTrainer trainer(binned, targets, config);
  const std::size_t n = features.num_samples();

  std::vector<DecisionTree> trees(static_cast<std::size_t>(config.num_trees));
#pragma omp parallel for schedule(dynamic)
  for (int t = 0; t < config.num_trees; ++t) {
    Xoshiro256 rng(config.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(t + 1)));
    std::vector<std::uint32_t> indices(n);
    if (config.bootstrap) {
      for (auto& i : indices) i = static_cast<std::uint32_t>(rng.bounded(n));
    } else {
      std::iota(indices.begin(), indices.end(), 0u);
    }
    trees[static_cast<std::size_t>(t)] = trainer.train(std::move(indices), rng);
  }
  return RegressionForest(std::move(trees), features.num_features());
}

}  // namespace hrf
