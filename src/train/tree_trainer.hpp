#pragma once

#include <cstdint>
#include <vector>

#include "forest/decision_tree.hpp"
#include "train/binned.hpp"
#include "util/rng.hpp"

namespace hrf {

/// Training hyper-parameters, mirroring the scikit-learn
/// RandomForestClassifier knobs the paper tunes (§4.1): maximum tree depth
/// and number of trees, plus the usual CART stopping controls.
struct TrainConfig {
  int num_trees = 100;
  int max_depth = 30;            // root counts as depth 1
  int min_samples_leaf = 1;
  int min_samples_split = 2;
  int max_bins = 64;             // histogram resolution for split search
  /// Features examined per split; 0 selects floor(sqrt(num_features)),
  /// scikit-learn's classification default.
  int features_per_split = 0;
  bool bootstrap = true;         // sample n rows with replacement per tree
  std::uint64_t seed = 42;
};

/// Grows one CART decision tree on a binned training set (binary or
/// multi-class — the class count comes from the BinnedDataset).
///
/// Split criterion is Gini impurity; split search is histogram-based
/// (O(samples-in-node * features-tried * classes) per node). Produced
/// trees are sparse and can be much deeper than log2(n) on noisy data —
/// exactly the regime the paper's hierarchical layout targets.
class TreeTrainer {
 public:
  TreeTrainer(const BinnedDataset& data, const TrainConfig& config);

  /// Trains a tree on the given sample indices (typically a bootstrap
  /// draw). `rng` drives feature subsampling. Indices are consumed
  /// (reordered in place).
  DecisionTree train(std::vector<std::uint32_t> indices, Xoshiro256& rng) const;

 private:
  struct Work {  // a pending node: index range + depth + output slot
    std::uint32_t begin;
    std::uint32_t end;
    std::int32_t depth;
    std::int32_t node_id;
  };

  struct Split {
    int feature = -1;
    int bin = 0;        // go left iff code < bin
    double gain = 0.0;  // Gini impurity decrease (unnormalized)
  };

  Split best_split(std::span<const std::uint32_t> indices,
                   std::span<const std::uint32_t> parent_class_counts, Xoshiro256& rng) const;

  const BinnedDataset& data_;
  TrainConfig config_;
  int features_per_split_;
};

}  // namespace hrf
