#include "train/forest_trainer.hpp"

#include <omp.h>

#include <numeric>

#include "util/error.hpp"

namespace hrf {

Forest train_forest(const BinnedDataset& binned, std::size_t num_features,
                    const TrainConfig& config) {
  require(config.num_trees >= 1, "num_trees must be >= 1");
  const std::size_t n = binned.num_samples();
  const TreeTrainer trainer(binned, config);

  std::vector<DecisionTree> trees(static_cast<std::size_t>(config.num_trees));

#pragma omp parallel for schedule(dynamic)
  for (int t = 0; t < config.num_trees; ++t) {
    // Per-tree stream: deterministic regardless of scheduling.
    Xoshiro256 rng(config.seed ^ (0x517cc1b727220a95ULL * static_cast<std::uint64_t>(t + 1)));
    std::vector<std::uint32_t> indices(n);
    if (config.bootstrap) {
      for (auto& i : indices) i = static_cast<std::uint32_t>(rng.bounded(n));
    } else {
      std::iota(indices.begin(), indices.end(), 0u);
    }
    trees[static_cast<std::size_t>(t)] = trainer.train(std::move(indices), rng);
  }

  return Forest(std::move(trees), num_features, binned.num_classes());
}

Forest train_forest(const Dataset& train, const TrainConfig& config) {
  const BinnedDataset binned(train, config.max_bins);
  return train_forest(binned, train.num_features(), config);
}

}  // namespace hrf
