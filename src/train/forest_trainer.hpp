#pragma once

#include "data/dataset.hpp"
#include "forest/forest.hpp"
#include "train/tree_trainer.hpp"

namespace hrf {

/// Trains a random forest: bootstrap-resamples the training set per tree,
/// grows each tree with feature subsampling, OpenMP-parallel across trees
/// (training parallelism is embarrassing across trees, §1 of the paper).
/// Deterministic in config.seed regardless of thread count: every tree
/// derives its RNG stream independently from (seed, tree index).
Forest train_forest(const Dataset& train, const TrainConfig& config);

/// As train_forest but reuses an already-binned view (the Fig. 5 accuracy
/// grid trains dozens of forests on the same data; binning once saves time).
Forest train_forest(const BinnedDataset& binned, std::size_t num_features,
                    const TrainConfig& config);

}  // namespace hrf
