#pragma once

#include <cstdint>
#include <string>

#include "fpgasim/config.hpp"
#include "layout/hierarchical.hpp"

namespace hrf::fpgasim {

/// Estimated fabric resources of one compute unit (or fixed function).
struct ResourceUsage {
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;
  std::uint64_t bram36 = 0;  // 36 Kb block RAMs
  std::uint64_t urams = 0;   // 288 Kb UltraRAMs
  std::uint64_t dsps = 0;

  ResourceUsage& operator+=(const ResourceUsage& o) {
    luts += o.luts;
    ffs += o.ffs;
    bram36 += o.bram36;
    urams += o.urams;
    dsps += o.dsps;
    return *this;
  }
};

/// Per-SLR resource budget. The Alveo U250 preset divides the paper's §4
/// card totals (1.7M LUTs, 3.5M FFs, 2000 BRAMs, 1280 URAMs, 12228 DSPs)
/// by its four SLRs.
struct SlrBudget {
  std::uint64_t luts = 425'000;
  std::uint64_t ffs = 875'000;
  std::uint64_t bram36 = 500;
  std::uint64_t urams = 320;
  std::uint64_t dsps = 3'057;

  static SlrBudget alveo_u250_slr() { return SlrBudget{}; }
};

/// The kernels whose fabric footprint the model estimates.
enum class FpgaKernelKind {
  Csr,
  Independent,
  Collaborative,
  Hybrid,
  HybridSplitStage1,  // the split design's dedicated stage-1 CU
  HybridSplitStage2,  // the split design's replicated stage-2 CU
};

const char* to_string(FpgaKernelKind kind);

/// Per-CU resource estimate. Logic sizes are calibrated to the paper's
/// observed placements (independent and hybrid close timing at 12 CUs/SLR
/// and 300 MHz; the split hybrid only fits 10 stage-2 CUs next to its
/// stage-1 CU and drops to 245 MHz). On-chip buffers (query tile, subtree
/// or root-subtree storage) are translated into BRAM/URAM blocks.
ResourceUsage estimate_cu_resources(FpgaKernelKind kind, const HierConfig& layout);

/// Result of placing a CU configuration onto one SLR.
struct PlacementReport {
  bool fits = false;
  double lut_utilization = 0.0;  // fraction of the SLR budget
  /// Achievable clock: 300 MHz up to 85% LUT utilization, then derated
  /// linearly to ~230 MHz at full utilization (routing congestion).
  double clock_mhz = 0.0;
  std::string detail;
};

/// Checks `cus_per_slr` copies of `kind` (plus, for the split design, one
/// HybridSplitStage1 CU) against the SLR budget and estimates the clock.
PlacementReport check_placement(FpgaKernelKind kind, int cus_per_slr, const HierConfig& layout,
                                const SlrBudget& budget = SlrBudget::alveo_u250_slr(),
                                bool add_split_stage1 = false);

/// Largest CU count of `kind` that fits one SLR (0 if even one doesn't).
int max_cus_per_slr(FpgaKernelKind kind, const HierConfig& layout,
                    const SlrBudget& budget = SlrBudget::alveo_u250_slr(),
                    bool add_split_stage1 = false);

}  // namespace hrf::fpgasim
