#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpgasim/config.hpp"

namespace hrf::fpgasim {

/// One pipelined HLS loop, with iteration and memory-access counts for the
/// *whole problem* (all queries); replication divides the counts across
/// compute units.
struct StageModel {
  std::string name;
  double ii = 1.0;              // initiation interval (cycles/iteration)
  double pipeline_depth = 40;   // fill latency (cycles)
  std::uint64_t iterations = 0;
  /// Irregular external reads (latency-bound random accesses).
  std::uint64_t random_accesses = 0;
  /// Sequential burst reads, in units of burst_bytes (bandwidth-bound).
  std::uint64_t burst_accesses = 0;
  /// When true this stage is NOT replicated across CUs within an SLR (the
  /// paper's "split" hybrid keeps one stage-1 CU per SLR).
  bool replicate_within_slr = true;
};

/// Timing verdict for one kernel configuration.
struct FpgaReport {
  double seconds = 0.0;
  double stall_pct = 0.0;       // 1 - ideal pipeline cycles / actual cycles
  double clock_mhz = 0.0;
  std::string ii_desc;          // "292", "3/76", ... as in Table 3
  double pipeline_cycles = 0.0; // ideal per-CU pipeline cycles (critical SLR)
  double total_cycles = 0.0;    // modeled cycles on the critical SLR
  std::string limiter;          // "pipeline" | "memory"
  std::vector<std::string> stage_names;
};

/// Evaluates the analytical model for a kernel made of `stages` under the
/// given CU layout. Work (iterations/accesses) is split evenly over CUs;
/// stages with replicate_within_slr=false run on one CU per SLR and their
/// work splits only across SLRs. Per SLR, the DDR channel serves its CUs'
/// random accesses at min(cus*outstanding/latency, eff_bw) accesses/cycle
/// and burst traffic at the sequential bandwidth; the SLR finishes when
/// both its pipelines and its channel are done. A base stall fraction
/// models arbitration/refresh overheads on external-memory loops.
FpgaReport evaluate(const FpgaConfig& cfg, const CuLayout& layout,
                    const std::vector<StageModel>& stages, const std::string& ii_desc);

}  // namespace hrf::fpgasim
