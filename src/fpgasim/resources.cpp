#include "fpgasim/resources.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"
#include "util/math.hpp"

namespace hrf::fpgasim {

namespace {

constexpr std::uint64_t kBram36Bytes = 4'608;    // 36 Kb
constexpr std::uint64_t kUramBytes = 36'864;     // 288 Kb
/// Query tile buffered per CU (the independent/collaborative kernels
/// stream query rows through BRAM in tiles of this size).
constexpr std::uint64_t kQueryTileBytes = 64 * 1024;

/// Buffer bytes -> memory blocks, preferring URAM for big buffers.
void add_buffer(ResourceUsage& r, std::uint64_t bytes) {
  if (bytes == 0) return;
  if (bytes >= 4 * kBram36Bytes) {
    r.urams += ceil_div(bytes, kUramBytes);
  } else {
    r.bram36 += ceil_div(bytes, kBram36Bytes);
  }
}

}  // namespace

const char* to_string(FpgaKernelKind kind) {
  switch (kind) {
    case FpgaKernelKind::Csr: return "csr";
    case FpgaKernelKind::Independent: return "independent";
    case FpgaKernelKind::Collaborative: return "collaborative";
    case FpgaKernelKind::Hybrid: return "hybrid";
    case FpgaKernelKind::HybridSplitStage1: return "hybrid-split-stage1";
    case FpgaKernelKind::HybridSplitStage2: return "hybrid-split-stage2";
  }
  return "?";
}

ResourceUsage estimate_cu_resources(FpgaKernelKind kind, const HierConfig& layout) {
  ResourceUsage r;
  // Base traversal pipeline: comparator, address generators, AXI adapters.
  // LUT/FF figures are calibrated to the paper's achieved placements.
  switch (kind) {
    case FpgaKernelKind::Csr:
      r = {24'000, 30'000, 8, 0, 4};
      add_buffer(r, kQueryTileBytes);
      break;
    case FpgaKernelKind::Independent:
      r = {30'000, 38'000, 10, 0, 4};
      add_buffer(r, kQueryTileBytes);  // §3.2.2: query features in BRAM
      break;
    case FpgaKernelKind::Collaborative: {
      r = {28'000, 36'000, 12, 0, 4};
      const std::uint64_t subtree_bytes = complete_tree_nodes(layout.subtree_depth) * 8;
      add_buffer(r, subtree_bytes);
      break;
    }
    case FpgaKernelKind::Hybrid: {
      // Both stages in one CU: deeper control, two AXI masters.
      r = {30'000, 40'000, 12, 0, 6};
      const std::uint64_t root_bytes =
          complete_tree_nodes(layout.effective_root_depth()) * 8;
      add_buffer(r, root_bytes);
      break;
    }
    case FpgaKernelKind::HybridSplitStage1: {
      // Dedicated stage-1 CU: root-subtree buffer + inter-stage FIFOs.
      r = {40'000, 52'000, 24, 0, 6};
      const std::uint64_t root_bytes =
          complete_tree_nodes(layout.effective_root_depth()) * 8;
      add_buffer(r, root_bytes);
      break;
    }
    case FpgaKernelKind::HybridSplitStage2:
      // Stage-2-only CU, but with the FIFO plumbing back to stage 1 —
      // the "kernel complexity" the paper says limited replication to 10.
      r = {36'000, 46'000, 14, 0, 4};
      break;
  }
  return r;
}

PlacementReport check_placement(FpgaKernelKind kind, int cus_per_slr, const HierConfig& layout,
                                const SlrBudget& budget, bool add_split_stage1) {
  require(cus_per_slr >= 1, "need at least one CU");
  ResourceUsage total;
  for (int i = 0; i < cus_per_slr; ++i) total += estimate_cu_resources(kind, layout);
  if (add_split_stage1) {
    total += estimate_cu_resources(FpgaKernelKind::HybridSplitStage1, layout);
  }

  PlacementReport report;
  report.fits = total.luts <= budget.luts && total.ffs <= budget.ffs &&
                total.bram36 <= budget.bram36 && total.urams <= budget.urams &&
                total.dsps <= budget.dsps;
  report.lut_utilization = static_cast<double>(total.luts) / static_cast<double>(budget.luts);

  // Timing closure: full speed to 85% LUT utilization, then linear derate
  // (routing congestion) down to ~230 MHz when the SLR is packed solid.
  const double util = std::min(report.lut_utilization, 1.0);
  report.clock_mhz = util <= 0.85 ? 300.0 : 300.0 - (util - 0.85) / 0.15 * 70.0;

  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%d x %s%s: %llu LUTs (%.0f%%), %llu BRAM, %llu URAM -> %s at ~%.0f MHz",
                cus_per_slr, to_string(kind), add_split_stage1 ? " + stage1" : "",
                static_cast<unsigned long long>(total.luts), 100.0 * report.lut_utilization,
                static_cast<unsigned long long>(total.bram36),
                static_cast<unsigned long long>(total.urams),
                report.fits ? "fits" : "DOES NOT FIT", report.clock_mhz);
  report.detail = buf;
  return report;
}

int max_cus_per_slr(FpgaKernelKind kind, const HierConfig& layout, const SlrBudget& budget,
                    bool add_split_stage1) {
  int best = 0;
  for (int c = 1; c <= 64; ++c) {
    if (check_placement(kind, c, layout, budget, add_split_stage1).fits) {
      best = c;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace hrf::fpgasim
