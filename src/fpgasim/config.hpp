#pragma once

#include <cstddef>
#include <cstdint>

namespace hrf::fpgasim {

/// Parameters of the simulated FPGA accelerator card.
///
/// The FPGA model is *analytical*: Vitis HLS produces deterministic
/// pipelines whose performance is fixed by the initiation interval (II),
/// pipeline depth, iteration counts and external-memory behaviour, so —
/// unlike the GPU — no dynamic simulation is needed. Kernels measure exact
/// iteration/access counts from the functional traversal and feed them to
/// this model. IIs are taken from the paper's HLS reports (§3.2.2,
/// Table 3): CSR 292, independent 76 (147 without query buffering),
/// collaborative 3, hybrid 3/76.
///
/// The default preset models the Xilinx Alveo U250 (§4): four super logic
/// regions (SLRs), each with its own 16 GB DDR4-2400 channel and ~13.5 MB
/// of BRAM+URAM.
struct FpgaConfig {
  int num_slrs = 4;
  double clock_mhz = 300.0;
  /// Per-SLR DDR4 channel peak bandwidth (4 channels ~= 77 GB/s total).
  double channel_gbps = 19.2;
  /// DDR access granularity (one AXI beat's worth of useful burst data).
  std::size_t burst_bytes = 64;
  /// Random (non-burst) reads are latency-bound: a channel sustains at
  /// most `max_outstanding / dram_latency_cycles` of them per cycle, per
  /// CU. A CU that owns its channel outright gets the full AXI adapter
  /// reordering depth (`max_outstanding_solo`).
  int max_outstanding = 8;
  int max_outstanding_solo = 16;
  double dram_latency_cycles = 150.0;
  /// Random-access bandwidth derating (row misses, short bursts).
  double random_efficiency = 0.35;
  /// Oversubscription collapse: when a stage demands random accesses
  /// faster than the channel sustains, effective throughput degrades as
  /// sustainable / (1 + gamma * (oversubscription - 1)) — AXI arbitration
  /// and DRAM bank conflicts worsen under pressure. This is what makes the
  /// replicated hybrid (stage 1 at II 3) stall at ~80% in Table 3 while
  /// the gentler independent kernel (II 76) scales to 4S12C.
  double arbitration_gamma = 0.25;
  /// On-chip BRAM + URAM per SLR (paper §2.3: 13.5 MB).
  std::size_t onchip_bytes_per_slr = 13'500'000;
  /// Residual stall fraction observed even on pipeline-bound kernels
  /// (refresh, AXI arbitration; Table 3 reports ~11% for CSR).
  double base_stall = 0.105;

  static FpgaConfig alveo_u250() { return FpgaConfig{}; }

  /// Sequential-burst bytes a channel moves per kernel clock cycle.
  double burst_bytes_per_cycle() const { return channel_gbps * 1e3 / clock_mhz; }
};

/// Placement of compute units: `slrs_used` SLRs with `cus_per_slr` copies
/// of the execution pipeline each (paper notation: xSyC = x SLRs, y CUs).
struct CuLayout {
  int slrs_used = 1;
  int cus_per_slr = 1;
  /// Achieved kernel clock; dense designs close timing at a lower clock
  /// (the paper's split hybrid runs at 245 MHz instead of 300 MHz).
  double clock_mhz = 300.0;

  int total_cus() const { return slrs_used * cus_per_slr; }
};

}  // namespace hrf::fpgasim
