#include "fpgasim/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf::fpgasim {

FpgaReport evaluate(const FpgaConfig& cfg, const CuLayout& layout,
                    const std::vector<StageModel>& stages, const std::string& ii_desc) {
  fault_point("resource:fpga");  // models place-and-route / XRT bring-up failure
  require(layout.slrs_used >= 1 && layout.slrs_used <= cfg.num_slrs,
          "CU layout uses more SLRs than the device has");
  require(layout.cus_per_slr >= 1, "need at least one CU per SLR");
  require(!stages.empty(), "kernel needs at least one stage");

  const double clock_hz = layout.clock_mhz * 1e6;
  // Channel capabilities at the achieved clock (in accesses per cycle).
  const double burst_per_cycle = cfg.channel_gbps * 1e9 / clock_hz / cfg.burst_bytes;
  const double rand_bw_cap = burst_per_cycle * cfg.random_efficiency;

  // All SLRs carry identical shares, so model one (the critical) SLR.
  const double slr_share = 1.0 / layout.slrs_used;

  // Stages run back to back; each is bounded by its own pipeline time and
  // by the time the SLR's DDR channel needs for its traffic.
  double pipeline_cycles = 0.0;
  double total_busy = 0.0;
  bool memory_bound_any = false;
  for (const StageModel& s : stages) {
    require(s.ii > 0, "stage II must be positive");
    const int cus = s.replicate_within_slr ? layout.cus_per_slr : 1;
    const double iters_cu =
        static_cast<double>(s.iterations) * slr_share / static_cast<double>(cus);
    const double p = s.pipeline_depth + s.ii * iters_cu;
    pipeline_cycles += p;

    const double rand_slr = static_cast<double>(s.random_accesses) * slr_share;
    const double burst_slr = static_cast<double>(s.burst_accesses) * slr_share;

    // Random service rate: limited by outstanding requests per CU and by
    // the derated DRAM bandwidth; collapses further when the stage demands
    // more than the channel sustains (AXI arbitration, bank conflicts).
    const double outstanding =
        cus == 1 ? cfg.max_outstanding_solo
                 : static_cast<double>(cus) * cfg.max_outstanding;
    const double sustainable =
        std::min(outstanding / cfg.dram_latency_cycles, rand_bw_cap);
    double rand_cycles = 0.0;
    if (rand_slr > 0.0) {
      // All CUs of the SLR run concurrently for ~p cycles, so the channel
      // sees their combined request stream at rand_slr / p per cycle.
      const double demand = p > 0.0 ? rand_slr / p : rand_slr;
      double effective = sustainable;
      if (demand > sustainable) {
        effective = sustainable / (1.0 + cfg.arbitration_gamma * (demand / sustainable - 1.0));
      }
      rand_cycles = rand_slr / effective;
    }
    const double m = rand_cycles + burst_slr / burst_per_cycle;
    if (m > p) memory_bound_any = true;
    total_busy += std::max(p, m);
  }

  const double total = total_busy / (1.0 - cfg.base_stall);

  FpgaReport r;
  r.pipeline_cycles = pipeline_cycles;
  r.total_cycles = total;
  r.seconds = total / clock_hz;
  r.stall_pct = total > 0 ? 100.0 * (1.0 - pipeline_cycles / total) : 0.0;
  r.clock_mhz = layout.clock_mhz;
  r.ii_desc = ii_desc;
  r.limiter = memory_bound_any ? "memory" : "pipeline";
  for (const StageModel& s : stages) r.stage_names.push_back(s.name);
  return r;
}

}  // namespace hrf::fpgasim
