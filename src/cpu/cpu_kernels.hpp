#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"

namespace hrf::cpu {

/// Native host inference over the CSR layout, OpenMP-parallel across
/// queries. These kernels exist so the layout comparison can also be
/// measured in *wall-clock* time on a real memory hierarchy (see
/// bench/micro_traversal) — the hierarchical layout's cache behaviour
/// helps CPUs for the same reason it helps GPUs.
std::vector<std::uint8_t> classify_csr(const CsrForest& csr, const Dataset& queries);

/// Native host inference over the hierarchical layout (independent-variant
/// traversal order), OpenMP-parallel across queries.
std::vector<std::uint8_t> classify_hierarchical(const HierarchicalForest& forest,
                                                const Dataset& queries);

/// Tree-blocked hierarchical inference: iterates trees in the outer loop
/// so each tree's top subtrees stay cache-resident across queries (the
/// host analogue of the hybrid variant's data reuse).
std::vector<std::uint8_t> classify_hierarchical_blocked(const HierarchicalForest& forest,
                                                        const Dataset& queries,
                                                        std::size_t query_block = 4096);

}  // namespace hrf::cpu
