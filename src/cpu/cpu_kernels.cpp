#include "cpu/cpu_kernels.hpp"

#include <omp.h>

#include "util/error.hpp"

namespace hrf::cpu {

std::vector<std::uint8_t> classify_csr(const CsrForest& csr, const Dataset& queries) {
  require(csr.num_features() == queries.num_features(), "query width != forest features");
  const std::size_t nq = queries.num_samples();
  std::vector<std::uint8_t> out(nq);
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < nq; ++i) {
    out[i] = csr.classify(queries.sample(i));
  }
  return out;
}

std::vector<std::uint8_t> classify_hierarchical(const HierarchicalForest& forest,
                                                const Dataset& queries) {
  require(forest.num_features() == queries.num_features(), "query width != forest features");
  const std::size_t nq = queries.num_samples();
  std::vector<std::uint8_t> out(nq);
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < nq; ++i) {
    out[i] = forest.classify(queries.sample(i));
  }
  return out;
}

std::vector<std::uint8_t> classify_hierarchical_blocked(const HierarchicalForest& forest,
                                                        const Dataset& queries,
                                                        std::size_t query_block) {
  require(forest.num_features() == queries.num_features(), "query width != forest features");
  require(query_block >= 1, "query_block must be >= 1");
  const std::size_t nq = queries.num_samples();
  const std::size_t nt = forest.num_trees();
  const auto k = static_cast<std::size_t>(forest.num_classes());
  std::vector<std::uint32_t> votes(nq * k, 0);

  // Process queries in blocks; within a block, iterate trees in the outer
  // loop so each tree's hot subtrees are reused across the whole block.
#pragma omp parallel for schedule(dynamic)
  for (std::size_t b = 0; b < (nq + query_block - 1) / query_block; ++b) {
    const std::size_t lo = b * query_block;
    const std::size_t hi = lo + query_block < nq ? lo + query_block : nq;
    for (std::size_t t = 0; t < nt; ++t) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto cls =
            static_cast<std::uint8_t>(forest.traverse_tree(t, queries.sample(i)));
        ++votes[i * k + cls];
      }
    }
  }

  std::vector<std::uint8_t> out(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    out[i] = Forest::vote_winner({votes.data() + i * k, k});
  }
  return out;
}

}  // namespace hrf::cpu
