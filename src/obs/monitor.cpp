#include "obs/monitor.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace hrf::obs {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::chrono::milliseconds to_duration(double seconds) {
  return std::chrono::milliseconds(static_cast<long long>(seconds * 1e3));
}

}  // namespace

Monitor::Monitor(MonitorOptions options, MetricsSource source, FlightRecorder* recorder,
                 const trace::Tracer* tracer, Clock clock)
    : options_(std::move(options)),
      source_(std::move(source)),
      recorder_(recorder),
      tracer_(tracer),
      clock_(clock ? std::move(clock) : Clock(&steady_seconds)),
      registry_({options_.interval_seconds, options_.window_capacity}) {
  require(static_cast<bool>(source_), "monitor needs a metrics source");
  if (options_.slo_enabled) {
    // on_fire runs inside tick() with mu_ held: it only queues the
    // bundle reason; the write happens later in the same tick.
    engine_ = std::make_unique<SloEngine>(
        options_.slo, recorder_, [this](const SloAlertState& alert) {
          pending_reasons_.push_back("alert:" + alert.scope + "/" + alert.objective);
        });
  }
  if (options_.start_thread) {
    thread_ = std::thread([this] { loop(); });
  }
}

Monitor::~Monitor() { stop(); }

void Monitor::stop() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Monitor::loop() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    wake_cv_.wait_for(lock, to_duration(options_.interval_seconds),
                      [this] { return stopping_.load(std::memory_order_acquire); });
    if (stopping_.load(std::memory_order_acquire)) break;
    lock.unlock();
    tick(clock_());
    lock.lock();
  }
}

void Monitor::tick(double now) {
  MetricsSnapshot snap = source_();
  std::lock_guard<std::mutex> lock(mu_);
  last_snapshot_ = snap;
  registry_.sample(snap, now);
  if (engine_) {
    const std::uint64_t total = registry_.total_windows();
    if (total > fed_windows_) {
      for (const WindowSample& w : registry_.recent(static_cast<std::size_t>(total - fed_windows_))) {
        engine_->observe(w);
      }
      fed_windows_ = total;
    }
  }
  if (!pending_reasons_.empty()) {
    if (!options_.incident_dir.empty()) {
      std::string reason = pending_reasons_.front();
      for (std::size_t i = 1; i < pending_reasons_.size(); ++i) {
        reason += "; " + pending_reasons_[i];
      }
      write_bundle_locked(reason, now);
    }
    pending_reasons_.clear();
  }
}

MetricsSnapshot Monitor::snapshot() const {
  MetricsSnapshot snap = source_();
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_) {
    snap.slo = engine_->alerts();
    snap.has_slo = true;
  }
  return snap;
}

void Monitor::trigger_incident(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_reasons_.push_back(reason.empty() ? "manual" : reason);
}

std::vector<SloAlertState> Monitor::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!engine_) return {};
  return engine_->alerts();
}

std::uint64_t Monitor::windows_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return registry_.total_windows();
}

std::uint64_t Monitor::bundles_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundles_written_;
}

std::string Monitor::last_bundle_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_bundle_path_;
}

std::uint64_t Monitor::alerts_fired_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_ ? engine_->fired_total() : 0;
}

json::Value Monitor::build_bundle_locked(const std::string& reason, double now) const {
  json::Value doc = json::Value::object();
  doc["schema"] = "hrf-incident";
  doc["version"] = 1;
  doc["reason"] = reason;
  doc["monitor_seconds"] = now;
  doc["written_unix"] =
      std::chrono::duration<double>(std::chrono::system_clock::now().time_since_epoch()).count();
  doc["build"] = build_info_json();
  doc["uptime_seconds"] = uptime_seconds();

  json::Value alerts = json::Value::array();
  if (engine_) {
    for (const SloAlertState& a : engine_->alerts()) {
      json::Value row = json::Value::object();
      row["objective"] = a.objective;
      row["scope"] = a.scope;
      row["firing"] = a.firing;
      row["fast_burn"] = a.fast_burn;
      row["slow_burn"] = a.slow_burn;
      row["fired"] = a.fired_total;
      row["cleared"] = a.cleared_total;
      alerts.push_back(std::move(row));
    }
  }
  doc["alerts"] = std::move(alerts);

  json::Value windows = json::Value::array();
  for (const WindowSample& w : registry_.recent(options_.bundle_windows)) {
    json::Value row = json::Value::object();
    row["index"] = w.index;
    row["start_seconds"] = w.start_seconds;
    row["end_seconds"] = w.end_seconds;
    json::Value counters = json::Value::object();
    for (const auto& [name, delta] : w.counter_deltas) {
      if (delta != 0) counters[name] = delta;  // sparse: zero deltas add noise, not signal
    }
    row["counters"] = std::move(counters);
    json::Value latency = json::Value::array();
    for (const auto& [stage, hist] : w.histogram_deltas) {
      if (hist.total == 0) continue;
      json::Value h = json::Value::object();
      h["stage"] = stage;
      h["count"] = hist.total;
      h["p50_ms"] = hist.percentile_ns(50) / 1e6;
      h["p95_ms"] = hist.percentile_ns(95) / 1e6;
      h["p99_ms"] = hist.percentile_ns(99) / 1e6;
      latency.push_back(std::move(h));
    }
    row["latency"] = std::move(latency);
    windows.push_back(std::move(row));
  }
  doc["windows"] = std::move(windows);

  json::Value events = json::Value::array();
  if (recorder_ != nullptr) {
    std::vector<FlightEvent> all = recorder_->events();
    const std::size_t start =
        all.size() > options_.bundle_events ? all.size() - options_.bundle_events : 0;
    for (std::size_t i = start; i < all.size(); ++i) {
      const FlightEvent& e = all[i];
      json::Value row = json::Value::object();
      row["sequence"] = e.sequence;
      row["seconds"] = e.seconds;
      row["category"] = e.category;
      row["name"] = e.name;
      row["scope"] = e.scope;
      row["detail"] = e.detail;
      events.push_back(std::move(row));
    }
    doc["events_recorded"] = recorder_->recorded();
    doc["events_dropped"] = recorder_->dropped();
  }
  doc["events"] = std::move(events);

  json::Value traces = json::Value::array();
  if (tracer_ != nullptr) {
    for (const auto& t : tracer_->slowest(options_.bundle_traces)) {
      json::Value row = json::Value::object();
      row["id"] = t->id;
      row["duration_ms"] = t->duration_seconds() * 1e3;
      row["root"] = t->root().name;
      row["spans"] = static_cast<std::uint64_t>(t->spans.size());
      row["text"] = t->to_string();
      traces.push_back(std::move(row));
    }
  }
  doc["traces"] = std::move(traces);

  // Self-healing ledger: the cumulative integrity/watchdog/reload
  // counters at dump time, so the bundle shows whether the system was
  // already repairing itself before the alert.
  json::Value heal = json::Value::object();
  for (const auto& [name, value] : last_snapshot_.counters) {
    if (name.rfind("scrub.", 0) == 0 || name.rfind("audit.", 0) == 0 ||
        name.rfind("watchdog.", 0) == 0 || name.rfind("reload.", 0) == 0 ||
        name.rfind("breaker.", 0) == 0) {
      heal[name] = value;
    }
  }
  doc["self_heal"] = std::move(heal);
  return doc;
}

void Monitor::write_bundle_locked(const std::string& reason, double now) {
  const json::Value doc = build_bundle_locked(reason, now);
  std::error_code ec;
  std::filesystem::create_directories(options_.incident_dir, ec);
  char name[64];
  std::snprintf(name, sizeof name, "incident-%06llu.json",
                static_cast<unsigned long long>(bundle_seq_++));
  const std::string path = options_.incident_dir + "/" + name;
  write_file_atomic(path, doc.dump(2) + "\n");
  bundles_written_ += 1;
  last_bundle_path_ = path;
  if (recorder_ != nullptr) recorder_->record("incident", "bundle_written", "", path);
}

void check_incident_bundle(const json::Value& bundle) {
  const auto fail = [](const std::string& what) -> void {
    throw FormatError("incident bundle check failed: " + what);
  };
  if (bundle.get("schema").as_string() != "hrf-incident") {
    fail("schema tag is not 'hrf-incident'");
  }
  if (bundle.get("version").as_number() != 1) fail("unsupported bundle version");
  if (bundle.get("reason").as_string().empty()) fail("empty reason");
  const json::Value& build = bundle.get("build");
  build.get("version").as_string();
  build.get("commit").as_string();
  build.get("compiler").as_string();
  bundle.get("uptime_seconds").as_number();
  const json::Value& alerts = bundle.get("alerts");
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const json::Value& a = alerts.at(i);
    a.get("objective").as_string();
    a.get("scope").as_string();
    a.get("firing").as_bool();
    a.get("fast_burn").as_number();
    a.get("slow_burn").as_number();
  }
  const json::Value& windows = bundle.get("windows");
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const json::Value& w = windows.at(i);
    w.get("index").as_number();
    w.get("start_seconds").as_number();
    w.get("end_seconds").as_number();
    w.get("counters");
    const json::Value& latency = w.get("latency");
    for (std::size_t j = 0; j < latency.size(); ++j) {
      const json::Value& h = latency.at(j);
      h.get("stage").as_string();
      h.get("count").as_number();
      h.get("p95_ms").as_number();
    }
  }
  const json::Value& events = bundle.get("events");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& e = events.at(i);
    e.get("sequence").as_number();
    e.get("seconds").as_number();
    e.get("category").as_string();
    e.get("name").as_string();
  }
  bundle.get("traces");
  bundle.get("self_heal");
}

}  // namespace hrf::obs
