#pragma once

// Unified telemetry export (docs/observability.md).
//
// One MetricsSnapshot gathers everything the serving layer knows at a
// point in time — counter registry, stage latency histograms, backend
// rollups, tracer summary — and the exporter renders it two ways from
// the same struct: Prometheus text exposition (for scrapers / file
// tailing) and a JSON document (for tooling and tests). A matching
// parser + schema checker guards against silent export drift
// (tools/check.sh metrics-schema step).

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/rollup.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/trace.hpp"

namespace hrf::obs {

/// One shard's health row in a cluster-level snapshot. Plain ints and
/// doubles only: obs sits below serve in the layer graph, so the cluster
/// router flattens its per-shard state (breaker enum, atomics) into this
/// before export.
struct ShardHealth {
  std::uint64_t index = 0;
  bool up = true;            // shard not killed / shut down
  bool partitioned = false;  // router -> shard link administratively cut
  int breaker_state = 0;     // router-side breaker: 0 closed, 1 open, 2 half-open
  std::uint64_t queue_depth = 0;
  std::uint64_t generation = 0;  // shard's live model generation
  std::uint64_t routed = 0;      // requests the router dispatched to it
  std::uint64_t failures = 0;    // dispatch failures the router observed
  std::uint64_t repairs = 0;     // replicas quarantined + rebuilt (scrub.repairs)
  std::uint64_t worker_restarts = 0;  // watchdog thread replacements
};

/// One tenant's admission-quota row (serve/qos.hpp TenantCounters,
/// flattened here for the same layering reason as ShardHealth). Exported
/// as hrf_tenant_* families labeled {tenant="name"}.
struct TenantStat {
  std::string name;
  double weight = 0.0;         // 0 for unconfigured (spare-pool-only) tenants
  std::uint64_t reserved = 0;  // queue slots reserved for this tenant
  std::uint64_t queued = 0;    // slots currently held
  std::uint64_t admitted = 0;  // requests admitted, cumulative
  std::uint64_t shed = 0;      // quota rejections, cumulative
};

/// One SLO alert's exported state (docs/observability.md, "Time series,
/// SLOs, and incident bundles"). Plain data for the same layering reason
/// as ShardHealth: the obs::SloEngine produces these and whoever owns the
/// engine (obs::Monitor) folds them into the snapshot it exports.
struct SloAlertState {
  std::string objective;  // "success_rate" | "p95_latency"
  std::string scope;      // "server" | "shard:N" | "tenant:NAME"
  bool firing = false;
  double fast_burn = 0.0;  // burn rate over the fast (~1 min) window
  double slow_burn = 0.0;  // burn rate over the slow (~30 min) window
  std::uint64_t fired_total = 0;    // fire transitions, cumulative
  std::uint64_t cleared_total = 0;  // clear transitions, cumulative
};

/// Point-in-time view of every exported metric. Build one with
/// ForestServer::metrics_snapshot() / ClusterRouter::metrics_snapshot()
/// or assemble by hand in tests.
struct MetricsSnapshot {
  /// Monotonic counters (CounterRegistry names, e.g. "requests.completed").
  std::map<std::string, std::uint64_t> counters;
  /// Instantaneous values (e.g. "queue_depth", "model_generation").
  std::map<std::string, double> gauges;
  /// Stage name -> latency distribution ("queue_wait", "execute", ...).
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  /// Backend rollups keyed variant × backend × generation.
  std::vector<std::pair<RollupKey, BackendRollup>> rollups;
  /// Tracer statistics; `has_traces` false when no tracer is attached.
  trace::TracerSummary traces{};
  bool has_traces = false;
  /// Per-shard health rows; empty for a single server, one per shard in
  /// cluster snapshots (exported as hrf_shard_* families, {shard="i"}).
  std::vector<ShardHealth> shards;
  /// Per-tenant quota rows; empty unless tenant quotas are configured
  /// (exported as hrf_tenant_* families, {tenant="name"}).
  std::vector<TenantStat> tenants;
  /// Cumulative fault-injector fire counts by site (FaultInjector::
  /// fired_counts()); empty when no site was ever armed. Exported as
  /// hrf_fault_fired_total{site="kind:target"} so chaos runs are
  /// debuggable from the snapshot alone.
  std::map<std::string, std::uint64_t> fault_fired;
  /// SLO burn-rate alert states, one per (objective, scope) pair; empty
  /// unless an SloEngine is armed (exported as hrf_slo_* families labeled
  /// {objective,scope}, gated on the hrf_slo_objectives sentinel gauge).
  std::vector<SloAlertState> slo;
  bool has_slo = false;
};

/// Build attribution (satellite of docs/observability.md): compiled-in
/// version/commit/compiler identity, exported as hrf_build_info{...} 1
/// and stamped into incident bundles so every artifact names its build.
struct BuildInfo {
  std::string version;   // project version (CMake)
  std::string commit;    // git short hash at configure time, or "unknown"
  std::string compiler;  // compiler id + version
};
const BuildInfo& build_info();

/// Seconds since process start (steady clock); exported as
/// hrf_uptime_seconds on every snapshot.
double uptime_seconds();

/// build_info() as a JSON object ({version, commit, compiler}); shared by
/// the metrics export and the incident-bundle writer.
json::Value build_info_json();

/// Sanitizes a registry name into a Prometheus metric name component:
/// '.', '-', and any other non-[a-zA-Z0-9_] become '_'.
std::string prometheus_name(const std::string& name);

/// Renders the snapshot as Prometheus text exposition format (# TYPE
/// lines, escaped labels, histogram `le` buckets in seconds with +Inf,
/// _sum/_count). Counters become `hrf_<name>_total`; rollup metrics are
/// labeled {variant=,backend=,generation=} and every rollup family is
/// emitted for every key (GPU metrics read 0 on FPGA-only keys and vice
/// versa) so the exposition schema does not depend on traffic mix.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Renders the snapshot as a JSON document (schema "hrf-metrics" v1):
/// counters/gauges objects, histograms with cumulative `le_ns` buckets,
/// rollups with derived ratios, tracer summary.
json::Value snapshot_to_json(const MetricsSnapshot& snapshot);

/// One parsed Prometheus sample: label set plus value.
struct PromSample {
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// One parsed metric family: declared type ("counter" | "gauge" |
/// "histogram" | "untyped") and its samples, keyed by the sample's full
/// metric name (so histogram `_bucket`/`_sum`/`_count` series live under
/// their own names, attached to the family by prefix).
struct PromFamily {
  std::string type = "untyped";
  std::vector<PromSample> samples;
};

/// Parses Prometheus text exposition into name -> family. Throws
/// FormatError (with line number) on malformed lines, bad label syntax,
/// or unparseable values.
std::map<std::string, PromFamily> parse_prometheus(const std::string& text);

/// One documented metric family (docs/observability.md catalogue).
struct MetricInfo {
  std::string name;  // full Prometheus family name, e.g. "hrf_latency_seconds"
  std::string type;  // "counter" | "gauge" | "histogram"
  /// True for rollup families, which only exist once traffic produced at
  /// least one (variant, backend, generation) key.
  bool per_rollup_key = false;
  /// True for cluster families, which only a ClusterRouter snapshot
  /// exports (detected via the hrf_cluster_shards gauge).
  bool cluster_only = false;
  /// True for tenant families, which only exist when tenant quotas are
  /// configured (detected via the hrf_tenant_weight gauge).
  bool tenant_only = false;
  /// True for the fault-injection family, which only exists when some
  /// fault site was armed during the process lifetime.
  bool fault_only = false;
  /// True for SLO families, which only exist when an SloEngine is armed
  /// (detected via the hrf_slo_objectives gauge).
  bool slo_only = false;
};

/// The documented Prometheus metric catalogue, in docs order.
const std::vector<MetricInfo>& metric_catalogue();

/// The documented CounterRegistry names the server always exports (it
/// zero-fills these so idle servers still expose the full schema).
const std::vector<std::string>& counter_catalogue();

/// The cluster router's own CounterRegistry names (zero-filled by
/// ClusterRouter::metrics_snapshot() on top of counter_catalogue()).
const std::vector<std::string>& cluster_counter_catalogue();

/// Validates an exported Prometheus file + JSON snapshot pair against the
/// documented catalogue: every catalogue family present with the declared
/// type, histogram series complete (_bucket/_sum/_count, +Inf), JSON
/// schema/version match, every documented counter present in the JSON,
/// and rollup entries carrying branch_efficiency/txn_per_request. Throws
/// FormatError describing the first violation.
void check_metrics_schema(const std::string& prometheus_text, const std::string& json_text);

/// Writes `path` (Prometheus text) and `path + ".json"` atomically
/// (util/atomic_file): a scraper or tail never sees a half-written file.
void write_metrics_files(const MetricsSnapshot& snapshot, const std::string& path);

}  // namespace hrf::obs
