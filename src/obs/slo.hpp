#pragma once

// SLO burn-rate engine (docs/observability.md, "Time series, SLOs, and
// incident bundles").
//
// Consumes the windowed samples the TimeSeriesRegistry produces and
// maintains multi-window burn-rate alerts in the Google-SRE style: an
// alert fires only when BOTH a fast (~1 min) and a slow (~30 min) window
// burn their error budget faster than the configured thresholds, which
// keeps one bad sample from paging while still catching fast burns
// quickly. Objectives:
//
//   success_rate  - fraction of requests that fail, per server scope
//                   (requests.failed vs completed+failed), per shard
//                   (router-observed failures vs routed, with a downed
//                   shard counting as a 100% error ratio so losing a
//                   shard is alertable even when client-visible success
//                   stays high through failover), and per tenant (quota
//                   sheds vs admitted+shed).
//   p95_latency   - fraction of end_to_end samples over the target; the
//                   budget is the 5% a "95% under T" objective allows.
//
// Fire/clear transitions use a consecutive-evaluation hysteresis and a
// post-clear cooldown so a burn hovering at the threshold cannot flap.
// Transitions are pushed into the FlightRecorder and surfaced through
// an optional on_fire callback (the Monitor uses it to dump an incident
// bundle). The engine is passive and single-threaded by design: the
// owner calls observe() for every window, from one thread.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeseries.hpp"

namespace hrf::obs {

/// Objectives and alerting policy for one SloEngine.
struct SloObjectives {
  /// Success-rate objective (e.g. 0.99 = "99% of requests succeed");
  /// the error budget is 1 - target.
  double success_target = 0.99;
  /// Latency objective: target for the end_to_end p95, in seconds.
  /// 0 disables the latency objective. The error budget is the 5% of
  /// samples a p95 objective allows over the target.
  double p95_target_seconds = 0.0;
  /// Fast / slow burn windows (seconds). Both must breach to fire.
  double fast_window_seconds = 60.0;
  double slow_window_seconds = 1800.0;
  /// Burn-rate thresholds: a burn of N means the scope is consuming its
  /// error budget N times faster than the objective allows.
  double fast_burn_threshold = 14.0;
  double slow_burn_threshold = 6.0;
  /// Consecutive breaching (clearing) evaluations before a fire (clear).
  int hysteresis_evaluations = 2;
  /// After a clear, the alert may not re-fire for this long.
  double cooldown_seconds = 60.0;
  /// Track per-shard / per-tenant scopes from the window's health rows.
  bool shard_scopes = true;
  bool tenant_scopes = true;
};

class SloEngine {
 public:
  using FireFn = std::function<void(const SloAlertState&)>;

  /// `recorder` (optional) receives "alert" category events on every
  /// fire/clear; `on_fire` (optional) runs synchronously inside
  /// observe() on each fire transition.
  explicit SloEngine(SloObjectives objectives, FlightRecorder* recorder = nullptr,
                     FireFn on_fire = {});

  /// Feeds one window (oldest first). The window's end time is the
  /// engine's clock: cooldowns and burn windows are measured against it.
  void observe(const WindowSample& window);

  /// Current alert rows, one per (objective, scope): server scope first,
  /// then shards, then tenants. Never empty once observe() ran — the
  /// server-scope rows exist even with zero traffic, so the hrf_slo_*
  /// exposition block is complete whenever the engine is armed.
  std::vector<SloAlertState> alerts() const;

  std::uint64_t evaluations() const { return evaluations_; }
  std::uint64_t fired_total() const;
  const SloObjectives& objectives() const { return objectives_; }

 private:
  struct ScopeWindow {
    double end_seconds = 0.0;
    std::uint64_t errors = 0;
    std::uint64_t attempts = 0;
    std::uint64_t lat_over = 0;
    std::uint64_t lat_total = 0;
  };

  struct AlertRow {
    bool firing = false;
    int breach_streak = 0;
    int clear_streak = 0;
    double cooldown_until = 0.0;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    std::uint64_t fired_total = 0;
    std::uint64_t cleared_total = 0;
  };

  struct ScopeState {
    std::deque<ScopeWindow> history;
    AlertRow success;
    AlertRow latency;
    // Previous cumulative readings for scopes whose window rows are
    // point-in-time cumulative (shard failures/routed, tenant sheds).
    std::uint64_t prev_errors = 0;
    std::uint64_t prev_attempts = 0;
    bool primed = false;
  };

  void push_window(ScopeState& state, ScopeWindow window);
  void evaluate(const std::string& scope, const std::string& objective, ScopeState& state,
                AlertRow& row, bool success_objective, double now);
  double burn_over(const ScopeState& state, double window_seconds, double now,
                   bool success_objective, double budget) const;
  SloAlertState row_state(const std::string& scope, const std::string& objective,
                          const AlertRow& row) const;

  SloObjectives objectives_;
  FlightRecorder* recorder_ = nullptr;
  FireFn on_fire_;
  ScopeState server_;
  std::map<std::string, ScopeState> shards_;   // key "shard:N"
  std::map<std::string, ScopeState> tenants_;  // key "tenant:NAME"
  std::uint64_t evaluations_ = 0;
};

}  // namespace hrf::obs
