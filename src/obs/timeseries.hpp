#pragma once

// Windowed telemetry time-series (docs/observability.md).
//
// Every signal the exporter renders is cumulative-at-"now": counters
// only grow, histograms only accumulate. TimeSeriesRegistry turns that
// into operable rates: it samples a MetricsSnapshot on a fixed cadence
// and retains a bounded ring of *windows*, each carrying the per-window
// counter deltas (and derived per-second rates) plus per-window
// HistogramSnapshot deltas (HistogramSnapshot::delta_since), so windowed
// p50/p95/p99 are one percentile_ns() call away. The registry is
// passive and clock-agnostic — callers push (snapshot, now) pairs, which
// is what makes it fake-clock testable and lets the obs::Monitor thread,
// tests, and the bench harness share one implementation.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/exporter.hpp"
#include "util/histogram.hpp"

namespace hrf::obs {

/// One closed sampling window: everything that happened between two
/// consecutive samples of the same snapshot source.
struct WindowSample {
  std::uint64_t index = 0;       // monotone window number (never reused)
  double start_seconds = 0.0;    // clock value at the window's opening sample
  double end_seconds = 0.0;      // clock value at the closing sample
  /// Counter increments inside the window. Counters are monotone, so
  /// every delta is >= 0 (a counter that shrank — snapshot source swap —
  /// clamps to 0 rather than going negative).
  std::map<std::string, std::uint64_t> counter_deltas;
  /// Per-window latency distributions, one per snapshot histogram stage
  /// ("queue_wait", "execute", "end_to_end", ...).
  std::vector<std::pair<std::string, HistogramSnapshot>> histogram_deltas;
  /// Point-in-time gauge values at the closing sample.
  std::map<std::string, double> gauges;
  /// Per-shard / per-tenant rows at the closing sample (point-in-time;
  /// the SLO engine derives per-scope deltas across windows itself).
  std::vector<ShardHealth> shards;
  std::vector<TenantStat> tenants;

  double seconds() const { return end_seconds - start_seconds; }
  /// Delta for one counter; 0 when the counter is absent.
  std::uint64_t delta(const std::string& counter) const;
  /// delta / window seconds; 0 for an empty or zero-length window.
  double rate_per_second(const std::string& counter) const;
  /// Windowed delta for one histogram stage; nullptr when absent.
  const HistogramSnapshot* histogram(const std::string& stage) const;
};

class TimeSeriesRegistry {
 public:
  struct Options {
    /// Nominal sampling cadence; informational (the caller's clock
    /// drives actual window edges) but exported for bundle readers.
    double interval_seconds = 0.25;
    /// Windows retained in the ring; older windows are evicted.
    std::size_t capacity = 240;
  };

  TimeSeriesRegistry();
  explicit TimeSeriesRegistry(Options options);

  /// Feeds one fresh snapshot at clock value `now_seconds`. The first
  /// call only opens window 0; every later call closes the current
  /// window (delta vs the previous sample) and opens the next.
  void sample(const MetricsSnapshot& snapshot, double now_seconds);

  /// Closed windows, oldest -> newest (at most `capacity`).
  std::vector<WindowSample> windows() const;
  /// The newest `n` closed windows, oldest -> newest.
  std::vector<WindowSample> recent(std::size_t n) const;
  /// Closed windows ever produced (>= windows().size()).
  std::uint64_t total_windows() const { return next_index_; }
  /// Windows evicted from the ring.
  std::uint64_t evicted() const { return evicted_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  bool primed_ = false;
  double prev_time_ = 0.0;
  MetricsSnapshot prev_;
  std::vector<WindowSample> ring_;  // oldest -> newest
  std::uint64_t next_index_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace hrf::obs
