#pragma once

// Server-level backend metric rollups (docs/observability.md).
//
// A single RunReport already carries the paper's hardware counters
// (gpusim::Counters, fpgasim::FpgaReport); the rollup registry is where
// they accumulate under production traffic, keyed by
// variant × backend × model generation — so a hot reload's effect on
// memory behavior (did the new forest still hit on-chip for stage 1?)
// shows up as a new key next to the old one instead of averaging into it.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/classifier.hpp"
#include "gpusim/counters.hpp"

namespace hrf::obs {

/// Rollup aggregation key. Generation 0 = a model that never came from a
/// versioned store (CLI --model path or in-process construction).
struct RollupKey {
  std::string variant;
  std::string backend;
  std::uint64_t generation = 0;

  bool operator<(const RollupKey& o) const {
    if (variant != o.variant) return variant < o.variant;
    if (backend != o.backend) return backend < o.backend;
    return generation < o.generation;
  }

  /// "hybrid/gpu-sim/gen3" — human-readable form for tables and logs.
  std::string label() const {
    return variant + "/" + backend + "/gen" + std::to_string(generation);
  }
};

/// Accumulated backend metrics for one key.
struct BackendRollup {
  std::uint64_t requests = 0;  // runs folded in
  std::uint64_t queries = 0;   // total queries classified
  double seconds = 0.0;        // summed (simulated or wall) backend seconds

  // GPU: hardware counters summed over runs that reported them.
  std::uint64_t gpu_runs = 0;
  gpusim::Counters gpu{};

  // FPGA: cycle totals summed over runs that reported a pipeline model.
  std::uint64_t fpga_runs = 0;
  double fpga_total_cycles = 0.0;
  double fpga_pipeline_cycles = 0.0;

  /// Folds another rollup of the same key into this one (the cluster
  /// router aggregates per-shard rollups into fleet-level rows). Every
  /// field is a sum, so merging is associative and commutative.
  void merge(const BackendRollup& other) {
    requests += other.requests;
    queries += other.queries;
    seconds += other.seconds;
    gpu_runs += other.gpu_runs;
    gpu += other.gpu;
    fpga_runs += other.fpga_runs;
    fpga_total_cycles += other.fpga_total_cycles;
    fpga_pipeline_cycles += other.fpga_pipeline_cycles;
  }

  /// nvprof-style branch efficiency over the whole aggregate.
  double branch_efficiency() const { return gpu.branch_efficiency(); }
  /// Average global-load transactions per request (coalescing).
  double txn_per_request() const { return gpu.transactions_per_request(); }
  /// Fraction of all load traffic serviced on-chip (shared memory + L1 +
  /// L2) rather than from DRAM. Note this blends every access the kernel
  /// makes — staging in shared memory shrinks the total while the cold-miss
  /// DRAM floor stays, so use stage1_onchip_hit_rate() for the paper's
  /// staging claim rather than this aggregate.
  double onchip_hit_rate() const {
    const double onchip = static_cast<double>(gpu.smem_loads + gpu.l1_hits + gpu.l2_hits);
    const double total = onchip + static_cast<double>(gpu.dram_transactions);
    return total > 0.0 ? onchip / total : 0.0;
  }
  /// On-chip service rate of stage-1 (root-subtree) node traversal — the
  /// paper's §3.2 staging claim in counter form. Variants that stage root
  /// subtrees into shared memory (hybrid, collaborative) serve every
  /// stage-1 node read from smem, which is on-chip SRAM and cannot miss,
  /// so their stage-1 rate is smem hits over smem accesses. Variants with
  /// no staging read stage-1 nodes through the cache hierarchy, where the
  /// measurable proxy is the overall on-chip rate (< 1 whenever any load
  /// reached DRAM).
  double stage1_onchip_hit_rate() const {
    if (gpu.smem_loads > 0) {
      return 1.0;  // smem traversal: hits == accesses by construction
    }
    return onchip_hit_rate();
  }
  /// Cycles lost to initiation-interval stalls (modeled minus ideal).
  double fpga_ii_stall_cycles() const {
    return fpga_total_cycles > fpga_pipeline_cycles
               ? fpga_total_cycles - fpga_pipeline_cycles
               : 0.0;
  }
  /// Stall share of all modeled cycles, in percent (FpgaReport::stall_pct
  /// aggregated over runs).
  double fpga_stall_pct() const {
    return fpga_total_cycles > 0.0 ? 100.0 * fpga_ii_stall_cycles() / fpga_total_cycles : 0.0;
  }

  void fold(const RunReport& report);
};

/// Thread-safe variant × backend × generation rollup accumulator.
class RollupRegistry {
 public:
  /// Folds one run's backend metrics into the (variant, backend,
  /// generation) bucket. The variant/backend must describe the classifier
  /// that actually served the run (after any fallback), not the one that
  /// was asked for.
  void record(const std::string& variant, const std::string& backend,
              std::uint64_t generation, const RunReport& report);

  /// Consistent point-in-time copy of every bucket, key-sorted.
  std::vector<std::pair<RollupKey, BackendRollup>> snapshot() const;

  /// "key | requests | queries | branch_eff | txn/req | onchip | ii_stalls"
  /// markdown table (CLI drain dump).
  std::string to_markdown() const;

 private:
  mutable std::mutex mu_;
  std::map<RollupKey, BackendRollup> rollups_;
};

}  // namespace hrf::obs
