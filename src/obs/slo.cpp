#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hrf::obs {

namespace {

/// Samples in `h` strictly over `threshold_ns`, resolved at bucket
/// granularity. A bucket straddling the threshold counts as under —
/// optimistic on purpose, so a target sitting mid-bucket cannot fire a
/// latency alert while every sample is actually under it; gross
/// violations land in higher buckets and are always counted.
std::uint64_t count_over(const HistogramSnapshot& h, std::uint64_t threshold_ns) {
  std::uint64_t over = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::uint64_t lower = i == 0 ? 0 : LatencyHistogram::bucket_upper_bound(static_cast<int>(i) - 1);
    if (lower > threshold_ns) over += h.counts[i];
  }
  return over;
}

}  // namespace

SloEngine::SloEngine(SloObjectives objectives, FlightRecorder* recorder, FireFn on_fire)
    : objectives_(std::move(objectives)), recorder_(recorder), on_fire_(std::move(on_fire)) {
  require(objectives_.success_target > 0.0 && objectives_.success_target < 1.0,
          "SLO success target must be in (0, 1)");
  require(objectives_.fast_window_seconds > 0.0 &&
              objectives_.slow_window_seconds >= objectives_.fast_window_seconds,
          "SLO windows must be positive with slow >= fast");
  require(objectives_.hysteresis_evaluations >= 1, "SLO hysteresis must be >= 1");
}

void SloEngine::push_window(ScopeState& state, ScopeWindow window) {
  state.history.push_back(window);
  const double horizon = window.end_seconds - objectives_.slow_window_seconds;
  while (!state.history.empty() && state.history.front().end_seconds <= horizon) {
    state.history.pop_front();
  }
}

double SloEngine::burn_over(const ScopeState& state, double window_seconds, double now,
                            bool success_objective, double budget) const {
  std::uint64_t errors = 0;
  std::uint64_t attempts = 0;
  for (const ScopeWindow& w : state.history) {
    if (w.end_seconds <= now - window_seconds) continue;
    if (success_objective) {
      errors += w.errors;
      attempts += w.attempts;
    } else {
      errors += w.lat_over;
      attempts += w.lat_total;
    }
  }
  if (attempts == 0) return 0.0;
  const double ratio = static_cast<double>(errors) / static_cast<double>(attempts);
  return ratio / budget;
}

SloAlertState SloEngine::row_state(const std::string& scope, const std::string& objective,
                                   const AlertRow& row) const {
  SloAlertState s;
  s.objective = objective;
  s.scope = scope;
  s.firing = row.firing;
  s.fast_burn = row.fast_burn;
  s.slow_burn = row.slow_burn;
  s.fired_total = row.fired_total;
  s.cleared_total = row.cleared_total;
  return s;
}

void SloEngine::evaluate(const std::string& scope, const std::string& objective,
                         ScopeState& state, AlertRow& row, bool success_objective, double now) {
  const double budget =
      success_objective ? 1.0 - objectives_.success_target : 0.05;  // p95 => 5% allowed over
  row.fast_burn = burn_over(state, objectives_.fast_window_seconds, now, success_objective, budget);
  row.slow_burn = burn_over(state, objectives_.slow_window_seconds, now, success_objective, budget);
  const bool breach = row.fast_burn >= objectives_.fast_burn_threshold &&
                      row.slow_burn >= objectives_.slow_burn_threshold;
  if (breach) {
    row.clear_streak = 0;
    row.breach_streak += 1;
    if (!row.firing && row.breach_streak >= objectives_.hysteresis_evaluations &&
        now >= row.cooldown_until) {
      row.firing = true;
      row.fired_total += 1;
      const SloAlertState fired = row_state(scope, objective, row);
      if (recorder_ != nullptr) {
        recorder_->record("alert", "slo_fired", scope,
                          objective + " fast=" + std::to_string(row.fast_burn) +
                              " slow=" + std::to_string(row.slow_burn));
      }
      if (on_fire_) on_fire_(fired);
    }
  } else {
    row.breach_streak = 0;
    row.clear_streak += 1;
    if (row.firing && row.clear_streak >= objectives_.hysteresis_evaluations) {
      row.firing = false;
      row.cleared_total += 1;
      row.cooldown_until = now + objectives_.cooldown_seconds;
      if (recorder_ != nullptr) {
        recorder_->record("alert", "slo_cleared", scope, objective);
      }
    }
  }
}

void SloEngine::observe(const WindowSample& window) {
  const double now = window.end_seconds;
  evaluations_ += 1;

  // Server scope: counter deltas are already per-window.
  {
    ScopeWindow w;
    w.end_seconds = now;
    w.errors = window.delta("requests.failed");
    w.attempts = w.errors + window.delta("requests.completed");
    if (const HistogramSnapshot* h = window.histogram("end_to_end")) {
      w.lat_total = h->total;
      if (objectives_.p95_target_seconds > 0.0) {
        const auto threshold_ns =
            static_cast<std::uint64_t>(objectives_.p95_target_seconds * 1e9);
        w.lat_over = count_over(*h, threshold_ns);
      }
    }
    push_window(server_, w);
    evaluate("server", "success_rate", server_, server_.success, true, now);
    if (objectives_.p95_target_seconds > 0.0) {
      evaluate("server", "p95_latency", server_, server_.latency, false, now);
    }
  }

  // Shard scopes: the window carries cumulative router-observed counts,
  // so delta against the previous reading. A downed shard burns budget
  // at ratio 1.0 regardless of traffic — failover hides it from the
  // client-visible success rate, but losing a replica is exactly what
  // the shard-scope objective exists to page on.
  if (objectives_.shard_scopes) {
    for (const ShardHealth& shard : window.shards) {
      const std::string scope = "shard:" + std::to_string(shard.index);
      ScopeState& state = shards_[scope];
      std::uint64_t errors = 0;
      std::uint64_t attempts = 0;
      if (state.primed) {
        errors = shard.failures >= state.prev_errors ? shard.failures - state.prev_errors : 0;
        attempts = shard.routed >= state.prev_attempts ? shard.routed - state.prev_attempts : 0;
      }
      state.prev_errors = shard.failures;
      state.prev_attempts = shard.routed;
      state.primed = true;
      if (!shard.up) {
        attempts = std::max<std::uint64_t>(attempts, 1);
        errors = attempts;
      }
      ScopeWindow w;
      w.end_seconds = now;
      w.errors = errors;
      w.attempts = attempts;
      push_window(state, w);
      evaluate(scope, "success_rate", state, state.success, true, now);
    }
  }

  // Tenant scopes: quota sheds against admitted+shed attempts.
  if (objectives_.tenant_scopes) {
    for (const TenantStat& tenant : window.tenants) {
      const std::string scope = "tenant:" + tenant.name;
      ScopeState& state = tenants_[scope];
      const std::uint64_t shed_cum = tenant.shed;
      const std::uint64_t attempts_cum = tenant.admitted + tenant.shed;
      std::uint64_t errors = 0;
      std::uint64_t attempts = 0;
      if (state.primed) {
        errors = shed_cum >= state.prev_errors ? shed_cum - state.prev_errors : 0;
        attempts = attempts_cum >= state.prev_attempts ? attempts_cum - state.prev_attempts : 0;
      }
      state.prev_errors = shed_cum;
      state.prev_attempts = attempts_cum;
      state.primed = true;
      ScopeWindow w;
      w.end_seconds = now;
      w.errors = errors;
      w.attempts = attempts;
      push_window(state, w);
      evaluate(scope, "success_rate", state, state.success, true, now);
    }
  }
}

std::vector<SloAlertState> SloEngine::alerts() const {
  std::vector<SloAlertState> out;
  out.push_back(row_state("server", "success_rate", server_.success));
  if (objectives_.p95_target_seconds > 0.0) {
    out.push_back(row_state("server", "p95_latency", server_.latency));
  }
  for (const auto& [scope, state] : shards_) {
    out.push_back(row_state(scope, "success_rate", state.success));
  }
  for (const auto& [scope, state] : tenants_) {
    out.push_back(row_state(scope, "success_rate", state.success));
  }
  return out;
}

std::uint64_t SloEngine::fired_total() const {
  std::uint64_t n = server_.success.fired_total + server_.latency.fired_total;
  for (const auto& [scope, state] : shards_) n += state.success.fired_total;
  for (const auto& [scope, state] : tenants_) n += state.success.fired_total;
  return n;
}

}  // namespace hrf::obs
