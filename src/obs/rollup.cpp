#include "obs/rollup.hpp"

#include <cstdio>

#include "util/table.hpp"

namespace hrf::obs {

void BackendRollup::fold(const RunReport& report) {
  ++requests;
  queries += report.predictions.size();
  seconds += report.seconds;
  if (report.gpu_counters) {
    ++gpu_runs;
    gpu += *report.gpu_counters;
  }
  if (report.fpga_report) {
    ++fpga_runs;
    fpga_total_cycles += report.fpga_report->total_cycles;
    fpga_pipeline_cycles += report.fpga_report->pipeline_cycles;
  }
}

void RollupRegistry::record(const std::string& variant, const std::string& backend,
                            std::uint64_t generation, const RunReport& report) {
  std::lock_guard<std::mutex> lock(mu_);
  rollups_[RollupKey{variant, backend, generation}].fold(report);
}

std::vector<std::pair<RollupKey, BackendRollup>> RollupRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {rollups_.begin(), rollups_.end()};
}

namespace {
std::string fixed3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}
}  // namespace

std::string RollupRegistry::to_markdown() const {
  Table t({"variant/backend/gen", "requests", "queries", "branch_eff", "txn/req", "onchip",
           "stage1", "ii_stall_pct"});
  for (const auto& [key, r] : snapshot()) {
    t.row()
        .cell(key.label())
        .cell(r.requests)
        .cell(r.queries)
        .cell(r.gpu_runs ? fixed3(r.branch_efficiency()) : "-")
        .cell(r.gpu_runs ? fixed3(r.txn_per_request()) : "-")
        .cell(r.gpu_runs ? fixed3(r.onchip_hit_rate()) : "-")
        .cell(r.gpu_runs ? fixed3(r.stage1_onchip_hit_rate()) : "-")
        .cell(r.fpga_runs ? fixed3(r.fpga_stall_pct()) : "-");
  }
  return t.markdown();
}

}  // namespace hrf::obs
