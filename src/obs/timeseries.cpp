#include "obs/timeseries.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hrf::obs {

std::uint64_t WindowSample::delta(const std::string& counter) const {
  const auto it = counter_deltas.find(counter);
  return it == counter_deltas.end() ? 0 : it->second;
}

double WindowSample::rate_per_second(const std::string& counter) const {
  const double s = seconds();
  if (s <= 0.0) return 0.0;
  return static_cast<double>(delta(counter)) / s;
}

const HistogramSnapshot* WindowSample::histogram(const std::string& stage) const {
  for (const auto& [name, snap] : histogram_deltas) {
    if (name == stage) return &snap;
  }
  return nullptr;
}

TimeSeriesRegistry::TimeSeriesRegistry() : TimeSeriesRegistry(Options{}) {}

TimeSeriesRegistry::TimeSeriesRegistry(Options options) : options_(options) {
  require(options_.capacity >= 1, "time-series capacity must be >= 1");
  require(options_.interval_seconds > 0.0, "time-series interval must be > 0");
}

void TimeSeriesRegistry::sample(const MetricsSnapshot& snapshot, double now_seconds) {
  if (!primed_) {
    prev_ = snapshot;
    prev_time_ = now_seconds;
    primed_ = true;
    return;
  }

  WindowSample w;
  w.index = next_index_++;
  w.start_seconds = prev_time_;
  w.end_seconds = now_seconds;

  for (const auto& [name, value] : snapshot.counters) {
    const auto it = prev_.counters.find(name);
    const std::uint64_t before = it == prev_.counters.end() ? 0 : it->second;
    w.counter_deltas[name] = value >= before ? value - before : 0;
  }
  for (const auto& [stage, cur] : snapshot.histograms) {
    const HistogramSnapshot* before = nullptr;
    for (const auto& [pname, psnap] : prev_.histograms) {
      if (pname == stage) {
        before = &psnap;
        break;
      }
    }
    w.histogram_deltas.emplace_back(
        stage, before ? cur.delta_since(*before) : cur.delta_since(HistogramSnapshot{}));
  }
  w.gauges = snapshot.gauges;
  w.shards = snapshot.shards;
  w.tenants = snapshot.tenants;

  ring_.push_back(std::move(w));
  if (ring_.size() > options_.capacity) {
    const std::size_t excess = ring_.size() - options_.capacity;
    ring_.erase(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(excess));
    evicted_ += excess;
  }

  prev_ = snapshot;
  prev_time_ = now_seconds;
}

std::vector<WindowSample> TimeSeriesRegistry::windows() const { return ring_; }

std::vector<WindowSample> TimeSeriesRegistry::recent(std::size_t n) const {
  const std::size_t take = std::min(n, ring_.size());
  return {ring_.end() - static_cast<std::ptrdiff_t>(take), ring_.end()};
}

}  // namespace hrf::obs
