#include "obs/exporter.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace hrf::obs {

namespace {

// Captured at static-init time so uptime_seconds() measures from process
// start, not from the first snapshot.
const std::chrono::steady_clock::time_point kProcessStart = std::chrono::steady_clock::now();

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string escape_label(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string rollup_labels(const RollupKey& key) {
  return "{variant=\"" + escape_label(key.variant) + "\",backend=\"" +
         escape_label(key.backend) + "\",generation=\"" + std::to_string(key.generation) + "\"}";
}

void emit_type(std::string& out, const std::string& family, const std::string& type) {
  out += "# TYPE " + family + " " + type + "\n";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

const BuildInfo& build_info() {
  static const BuildInfo kInfo = [] {
    BuildInfo b;
#ifdef HRF_VERSION_STRING
    b.version = HRF_VERSION_STRING;
#else
    b.version = "unknown";
#endif
#ifdef HRF_GIT_COMMIT
    b.commit = HRF_GIT_COMMIT;
#else
    b.commit = "unknown";
#endif
#if defined(__clang__)
    b.compiler = "clang " + std::to_string(__clang_major__) + "." +
                 std::to_string(__clang_minor__);
#elif defined(__GNUC__)
    b.compiler = "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__);
#else
    b.compiler = "unknown";
#endif
    return b;
  }();
  return kInfo;
}

double uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - kProcessStart)
      .count();
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  // Build attribution + uptime lead every exposition: scrapes and
  // incident bundles are attributable to a build before anything else.
  const BuildInfo& build = build_info();
  emit_type(out, "hrf_build_info", "gauge");
  out += "hrf_build_info{version=\"" + escape_label(build.version) + "\",commit=\"" +
         escape_label(build.commit) + "\",compiler=\"" + escape_label(build.compiler) +
         "\"} 1\n";
  emit_type(out, "hrf_uptime_seconds", "gauge");
  out += "hrf_uptime_seconds " + format_value(uptime_seconds()) + "\n";

  for (const auto& [name, value] : snapshot.counters) {
    const std::string family = "hrf_" + prometheus_name(name) + "_total";
    emit_type(out, family, "counter");
    out += family + " " + std::to_string(value) + "\n";
  }

  for (const auto& [name, value] : snapshot.gauges) {
    const std::string family = "hrf_" + prometheus_name(name);
    emit_type(out, family, "gauge");
    out += family + " " + format_value(value) + "\n";
  }

  if (!snapshot.histograms.empty()) {
    emit_type(out, "hrf_latency_seconds", "histogram");
    for (const auto& [stage, snap] : snapshot.histograms) {
      const std::string stage_label = "stage=\"" + escape_label(stage) + "\"";
      for (const auto& bucket : snap.cumulative()) {
        out += "hrf_latency_seconds_bucket{" + stage_label + ",le=\"" +
               format_value(static_cast<double>(bucket.le_ns) / 1e9) + "\"} " +
               std::to_string(bucket.cumulative) + "\n";
      }
      out += "hrf_latency_seconds_bucket{" + stage_label + ",le=\"+Inf\"} " +
             std::to_string(snap.total) + "\n";
      out += "hrf_latency_seconds_sum{" + stage_label + "} " +
             format_value(static_cast<double>(snap.sum_ns) / 1e9) + "\n";
      out += "hrf_latency_seconds_count{" + stage_label + "} " + std::to_string(snap.total) +
             "\n";
    }
  }

  if (!snapshot.rollups.empty()) {
    // Every family is emitted for every key — a GPU-only deployment still
    // exports zeroed FPGA gauges, so dashboards and the schema checker
    // never see families appear and disappear with traffic mix.
    struct RollupMetric {
      const char* family;
      const char* type;
      double (*get)(const BackendRollup&);
    };
    static const RollupMetric kMetrics[] = {
        {"hrf_backend_requests_total", "counter",
         [](const BackendRollup& r) { return static_cast<double>(r.requests); }},
        {"hrf_backend_queries_total", "counter",
         [](const BackendRollup& r) { return static_cast<double>(r.queries); }},
        {"hrf_backend_seconds_total", "counter", [](const BackendRollup& r) { return r.seconds; }},
        {"hrf_backend_branch_efficiency", "gauge",
         [](const BackendRollup& r) { return r.gpu_runs ? r.branch_efficiency() : 0.0; }},
        {"hrf_backend_txn_per_request", "gauge",
         [](const BackendRollup& r) { return r.txn_per_request(); }},
        {"hrf_backend_onchip_hit_rate", "gauge",
         [](const BackendRollup& r) { return r.onchip_hit_rate(); }},
        {"hrf_backend_stage1_onchip_hit_rate", "gauge",
         [](const BackendRollup& r) { return r.stage1_onchip_hit_rate(); }},
        {"hrf_backend_dram_transactions_total", "counter",
         [](const BackendRollup& r) { return static_cast<double>(r.gpu.dram_transactions); }},
        {"hrf_backend_fpga_ii_stall_cycles", "gauge",
         [](const BackendRollup& r) { return r.fpga_ii_stall_cycles(); }},
        {"hrf_backend_fpga_stall_pct", "gauge",
         [](const BackendRollup& r) { return r.fpga_stall_pct(); }},
    };
    for (const RollupMetric& m : kMetrics) {
      emit_type(out, m.family, m.type);
      for (const auto& [key, rollup] : snapshot.rollups) {
        out += std::string(m.family) + rollup_labels(key) + " " + format_value(m.get(rollup)) +
               "\n";
      }
    }
  }

  if (!snapshot.shards.empty()) {
    // Like the rollup families: every shard family is emitted for every
    // shard so a dashboard row never appears or vanishes with health.
    struct ShardMetric {
      const char* family;
      const char* type;
      double (*get)(const ShardHealth&);
    };
    static const ShardMetric kShardMetrics[] = {
        {"hrf_shard_up", "gauge", [](const ShardHealth& s) { return s.up ? 1.0 : 0.0; }},
        {"hrf_shard_partitioned", "gauge",
         [](const ShardHealth& s) { return s.partitioned ? 1.0 : 0.0; }},
        {"hrf_shard_breaker_state", "gauge",
         [](const ShardHealth& s) { return static_cast<double>(s.breaker_state); }},
        {"hrf_shard_queue_depth", "gauge",
         [](const ShardHealth& s) { return static_cast<double>(s.queue_depth); }},
        {"hrf_shard_model_generation", "gauge",
         [](const ShardHealth& s) { return static_cast<double>(s.generation); }},
        {"hrf_shard_routed_total", "counter",
         [](const ShardHealth& s) { return static_cast<double>(s.routed); }},
        {"hrf_shard_failures_total", "counter",
         [](const ShardHealth& s) { return static_cast<double>(s.failures); }},
        {"hrf_shard_repairs_total", "counter",
         [](const ShardHealth& s) { return static_cast<double>(s.repairs); }},
        {"hrf_shard_worker_restarts_total", "counter",
         [](const ShardHealth& s) { return static_cast<double>(s.worker_restarts); }},
    };
    for (const ShardMetric& m : kShardMetrics) {
      emit_type(out, m.family, m.type);
      for (const ShardHealth& s : snapshot.shards) {
        out += std::string(m.family) + "{shard=\"" + std::to_string(s.index) + "\"} " +
               format_value(m.get(s)) + "\n";
      }
    }
  }

  if (!snapshot.tenants.empty()) {
    // Same contract as the shard families: every tenant family is emitted
    // for every tenant row, so a shed-free tenant still exports a zeroed
    // hrf_tenant_quota_shed_total rather than no series at all.
    struct TenantMetric {
      const char* family;
      const char* type;
      double (*get)(const TenantStat&);
    };
    static const TenantMetric kTenantMetrics[] = {
        {"hrf_tenant_weight", "gauge", [](const TenantStat& t) { return t.weight; }},
        {"hrf_tenant_reserved_slots", "gauge",
         [](const TenantStat& t) { return static_cast<double>(t.reserved); }},
        {"hrf_tenant_queue_depth", "gauge",
         [](const TenantStat& t) { return static_cast<double>(t.queued); }},
        {"hrf_tenant_admitted_total", "counter",
         [](const TenantStat& t) { return static_cast<double>(t.admitted); }},
        {"hrf_tenant_quota_shed_total", "counter",
         [](const TenantStat& t) { return static_cast<double>(t.shed); }},
    };
    for (const TenantMetric& m : kTenantMetrics) {
      emit_type(out, m.family, m.type);
      for (const TenantStat& t : snapshot.tenants) {
        out += std::string(m.family) + "{tenant=\"" + escape_label(t.name) + "\"} " +
               format_value(m.get(t)) + "\n";
      }
    }
  }

  if (!snapshot.fault_fired.empty()) {
    // Fired-zero sites are emitted too: "armed but never fired" is
    // exactly what a failing chaos run needs to see.
    emit_type(out, "hrf_fault_fired_total", "counter");
    for (const auto& [site, count] : snapshot.fault_fired) {
      out += "hrf_fault_fired_total{site=\"" + escape_label(site) + "\"} " +
             std::to_string(count) + "\n";
    }
  }

  if (snapshot.has_slo) {
    // Same block contract as the shard/tenant families: every SLO family
    // is emitted for every (objective, scope) pair, and the sentinel
    // gauge hrf_slo_objectives marks the export as SLO-armed even when
    // the pair list is momentarily empty.
    emit_type(out, "hrf_slo_objectives", "gauge");
    out += "hrf_slo_objectives " + std::to_string(snapshot.slo.size()) + "\n";
    struct SloMetric {
      const char* family;
      const char* type;
      double (*get)(const SloAlertState&);
    };
    static const SloMetric kSloMetrics[] = {
        {"hrf_slo_state", "gauge",
         [](const SloAlertState& a) { return a.firing ? 1.0 : 0.0; }},
        {"hrf_slo_burn_rate_fast", "gauge", [](const SloAlertState& a) { return a.fast_burn; }},
        {"hrf_slo_burn_rate_slow", "gauge", [](const SloAlertState& a) { return a.slow_burn; }},
        {"hrf_slo_alerts_fired_total", "counter",
         [](const SloAlertState& a) { return static_cast<double>(a.fired_total); }},
        {"hrf_slo_alerts_cleared_total", "counter",
         [](const SloAlertState& a) { return static_cast<double>(a.cleared_total); }},
    };
    for (const SloMetric& m : kSloMetrics) {
      emit_type(out, m.family, m.type);
      for (const SloAlertState& a : snapshot.slo) {
        out += std::string(m.family) + "{objective=\"" + escape_label(a.objective) +
               "\",scope=\"" + escape_label(a.scope) + "\"} " + format_value(m.get(a)) + "\n";
      }
    }
  }

  if (snapshot.has_traces) {
    const trace::TracerSummary& t = snapshot.traces;
    emit_type(out, "hrf_traces_started_total", "counter");
    out += "hrf_traces_started_total " + std::to_string(t.started) + "\n";
    emit_type(out, "hrf_traces_sampled_total", "counter");
    out += "hrf_traces_sampled_total " + std::to_string(t.sampled) + "\n";
    emit_type(out, "hrf_traces_completed_total", "counter");
    out += "hrf_traces_completed_total " + std::to_string(t.completed) + "\n";
    emit_type(out, "hrf_traces_evicted_total", "counter");
    out += "hrf_traces_evicted_total " + std::to_string(t.evicted) + "\n";
    emit_type(out, "hrf_traces_retained", "gauge");
    out += "hrf_traces_retained " + std::to_string(t.retained) + "\n";
    emit_type(out, "hrf_trace_sampling_rate", "gauge");
    out += "hrf_trace_sampling_rate " + format_value(t.sampling) + "\n";
  }

  return out;
}

json::Value build_info_json() {
  const BuildInfo& build = build_info();
  json::Value b = json::Value::object();
  b["version"] = build.version;
  b["commit"] = build.commit;
  b["compiler"] = build.compiler;
  return b;
}

json::Value snapshot_to_json(const MetricsSnapshot& snapshot) {
  json::Value doc = json::Value::object();
  doc["schema"] = "hrf-metrics";
  doc["version"] = 1;
  doc["build"] = build_info_json();
  doc["uptime_seconds"] = uptime_seconds();

  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snapshot.counters) counters[name] = value;
  doc["counters"] = std::move(counters);

  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snapshot.gauges) gauges[name] = value;
  doc["gauges"] = std::move(gauges);

  json::Value histograms = json::Value::array();
  for (const auto& [stage, snap] : snapshot.histograms) {
    json::Value h = json::Value::object();
    h["stage"] = stage;
    h["count"] = snap.total;
    h["sum_ns"] = snap.sum_ns;
    h["max_ns"] = snap.max_ns;
    h["mean_ns"] = snap.mean_ns();
    h["p50_ns"] = snap.percentile_ns(50);
    h["p95_ns"] = snap.percentile_ns(95);
    h["p99_ns"] = snap.percentile_ns(99);
    json::Value buckets = json::Value::array();
    for (const auto& bucket : snap.cumulative()) {
      json::Value b = json::Value::object();
      b["le_ns"] = bucket.le_ns;
      b["cumulative"] = bucket.cumulative;
      buckets.push_back(std::move(b));
    }
    h["buckets"] = std::move(buckets);
    histograms.push_back(std::move(h));
  }
  doc["histograms"] = std::move(histograms);

  json::Value rollups = json::Value::array();
  for (const auto& [key, r] : snapshot.rollups) {
    json::Value entry = json::Value::object();
    entry["variant"] = key.variant;
    entry["backend"] = key.backend;
    entry["generation"] = key.generation;
    entry["requests"] = r.requests;
    entry["queries"] = r.queries;
    entry["seconds"] = r.seconds;
    entry["gpu_runs"] = r.gpu_runs;
    entry["branch_efficiency"] = r.gpu_runs ? r.branch_efficiency() : 0.0;
    entry["txn_per_request"] = r.txn_per_request();
    entry["onchip_hit_rate"] = r.onchip_hit_rate();
    entry["stage1_onchip_hit_rate"] = r.stage1_onchip_hit_rate();
    entry["dram_transactions"] = r.gpu.dram_transactions;
    entry["smem_loads"] = r.gpu.smem_loads;
    entry["l2_hits"] = r.gpu.l2_hits;
    entry["fpga_runs"] = r.fpga_runs;
    entry["fpga_ii_stall_cycles"] = r.fpga_ii_stall_cycles();
    entry["fpga_stall_pct"] = r.fpga_stall_pct();
    rollups.push_back(std::move(entry));
  }
  doc["rollups"] = std::move(rollups);

  if (!snapshot.tenants.empty()) {
    json::Value tenants = json::Value::array();
    for (const TenantStat& t : snapshot.tenants) {
      json::Value row = json::Value::object();
      row["name"] = t.name;
      row["weight"] = t.weight;
      row["reserved"] = t.reserved;
      row["queued"] = t.queued;
      row["admitted"] = t.admitted;
      row["shed"] = t.shed;
      tenants.push_back(std::move(row));
    }
    doc["tenants"] = std::move(tenants);
  }

  if (!snapshot.shards.empty()) {
    json::Value shards = json::Value::array();
    for (const ShardHealth& s : snapshot.shards) {
      json::Value row = json::Value::object();
      row["index"] = s.index;
      row["up"] = s.up;
      row["partitioned"] = s.partitioned;
      row["breaker_state"] = static_cast<std::uint64_t>(s.breaker_state);
      row["queue_depth"] = s.queue_depth;
      row["generation"] = s.generation;
      row["routed"] = s.routed;
      row["failures"] = s.failures;
      row["repairs"] = s.repairs;
      row["worker_restarts"] = s.worker_restarts;
      shards.push_back(std::move(row));
    }
    doc["shards"] = std::move(shards);
  }

  if (!snapshot.fault_fired.empty()) {
    json::Value faults = json::Value::object();
    for (const auto& [site, count] : snapshot.fault_fired) faults[site] = count;
    doc["fault_fired"] = std::move(faults);
  }

  if (snapshot.has_slo) {
    json::Value alerts = json::Value::array();
    for (const SloAlertState& a : snapshot.slo) {
      json::Value row = json::Value::object();
      row["objective"] = a.objective;
      row["scope"] = a.scope;
      row["firing"] = a.firing;
      row["fast_burn"] = a.fast_burn;
      row["slow_burn"] = a.slow_burn;
      row["fired"] = a.fired_total;
      row["cleared"] = a.cleared_total;
      alerts.push_back(std::move(row));
    }
    doc["slo"] = std::move(alerts);
  }

  if (snapshot.has_traces) {
    json::Value t = json::Value::object();
    t["started"] = snapshot.traces.started;
    t["sampled"] = snapshot.traces.sampled;
    t["completed"] = snapshot.traces.completed;
    t["evicted"] = snapshot.traces.evicted;
    t["retained"] = static_cast<std::uint64_t>(snapshot.traces.retained);
    t["sampling"] = snapshot.traces.sampling;
    t["capacity"] = static_cast<std::uint64_t>(snapshot.traces.capacity);
    doc["traces"] = std::move(t);
  }

  return doc;
}

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& what) {
  throw FormatError("prometheus parse error at line " + std::to_string(line_no) + ": " + what);
}

/// Family name of a sample: histogram series collapse onto their family.
std::string family_of(const std::string& sample_name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (sample_name.size() > s.size() &&
        sample_name.compare(sample_name.size() - s.size(), s.size(), s) == 0) {
      return sample_name.substr(0, sample_name.size() - s.size());
    }
  }
  return sample_name;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

}  // namespace

std::map<std::string, PromFamily> parse_prometheus(const std::string& text) {
  std::map<std::string, PromFamily> families;
  // Types are declared per *family*; histogram sample names (_bucket etc.)
  // map back to the family that declared them.
  std::map<std::string, std::string> declared_types;

  std::size_t pos = 0, line_no = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // Only "# TYPE <name> <type>" is meaningful; other comments skip.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string::npos) parse_fail(line_no, "malformed TYPE line");
        const std::string name = rest.substr(0, sp);
        const std::string type = rest.substr(sp + 1);
        if (!valid_metric_name(name)) parse_fail(line_no, "bad metric name in TYPE line");
        if (type != "counter" && type != "gauge" && type != "histogram" && type != "untyped") {
          parse_fail(line_no, "unknown metric type '" + type + "'");
        }
        declared_types[name] = type;
        families[name].type = type;
      }
      continue;
    }

    // Sample line: name[{labels}] value
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    const std::string name = line.substr(0, i);
    if (!valid_metric_name(name)) parse_fail(line_no, "bad metric name '" + name + "'");

    PromSample sample;
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t eq = line.find('=', i);
        if (eq == std::string::npos) parse_fail(line_no, "label without '='");
        const std::string key = line.substr(i, eq - i);
        if (!valid_metric_name(key)) parse_fail(line_no, "bad label name '" + key + "'");
        if (eq + 1 >= line.size() || line[eq + 1] != '"') {
          parse_fail(line_no, "label value must be quoted");
        }
        std::string value;
        std::size_t j = eq + 2;
        while (j < line.size() && line[j] != '"') {
          if (line[j] == '\\' && j + 1 < line.size()) {
            const char esc = line[j + 1];
            value += esc == 'n' ? '\n' : esc;
            j += 2;
          } else {
            value += line[j++];
          }
        }
        if (j >= line.size()) parse_fail(line_no, "unterminated label value");
        sample.labels[key] = value;
        i = j + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) parse_fail(line_no, "unterminated label set");
      ++i;  // '}'
    }
    while (i < line.size() && line[i] == ' ') ++i;
    const std::string value_text = line.substr(i);
    if (value_text.empty()) parse_fail(line_no, "missing sample value");
    if (value_text == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        parse_fail(line_no, "unparseable value '" + value_text + "'");
      }
    }

    PromFamily& family = families[name];
    const auto declared = declared_types.find(family_of(name));
    if (declared != declared_types.end()) family.type = declared->second;
    family.samples.push_back(std::move(sample));
  }
  return families;
}

const std::vector<MetricInfo>& metric_catalogue() {
  static const std::vector<MetricInfo> kCatalogue = [] {
    std::vector<MetricInfo> v;
    for (const std::string& name : counter_catalogue()) {
      v.push_back({"hrf_" + prometheus_name(name) + "_total", "counter", false});
    }
    v.push_back({"hrf_build_info", "gauge", false});
    v.push_back({"hrf_uptime_seconds", "gauge", false});
    v.push_back({"hrf_queue_depth", "gauge", false});
    v.push_back({"hrf_workers", "gauge", false});
    v.push_back({"hrf_breaker_state", "gauge", false});
    v.push_back({"hrf_model_generation", "gauge", false});
    v.push_back({"hrf_latency_seconds", "histogram", false});
    v.push_back({"hrf_traces_started_total", "counter", false});
    v.push_back({"hrf_traces_sampled_total", "counter", false});
    v.push_back({"hrf_traces_completed_total", "counter", false});
    v.push_back({"hrf_traces_evicted_total", "counter", false});
    v.push_back({"hrf_traces_retained", "gauge", false});
    v.push_back({"hrf_trace_sampling_rate", "gauge", false});
    v.push_back({"hrf_backend_requests_total", "counter", true});
    v.push_back({"hrf_backend_queries_total", "counter", true});
    v.push_back({"hrf_backend_seconds_total", "counter", true});
    v.push_back({"hrf_backend_branch_efficiency", "gauge", true});
    v.push_back({"hrf_backend_txn_per_request", "gauge", true});
    v.push_back({"hrf_backend_onchip_hit_rate", "gauge", true});
    v.push_back({"hrf_backend_stage1_onchip_hit_rate", "gauge", true});
    v.push_back({"hrf_backend_dram_transactions_total", "counter", true});
    v.push_back({"hrf_backend_fpga_ii_stall_cycles", "gauge", true});
    v.push_back({"hrf_backend_fpga_stall_pct", "gauge", true});
    for (const std::string& name : cluster_counter_catalogue()) {
      v.push_back({"hrf_" + prometheus_name(name) + "_total", "counter", false, true});
    }
    v.push_back({"hrf_cluster_shards", "gauge", false, true});
    v.push_back({"hrf_cluster_shards_available", "gauge", false, true});
    v.push_back({"hrf_cluster_hedge_delay_seconds", "gauge", false, true});
    v.push_back({"hrf_cluster_concurrency_limit", "gauge", false, true});
    v.push_back({"hrf_cluster_in_flight", "gauge", false, true});
    v.push_back({"hrf_shard_up", "gauge", false, true});
    v.push_back({"hrf_shard_partitioned", "gauge", false, true});
    v.push_back({"hrf_shard_breaker_state", "gauge", false, true});
    v.push_back({"hrf_shard_queue_depth", "gauge", false, true});
    v.push_back({"hrf_shard_model_generation", "gauge", false, true});
    v.push_back({"hrf_shard_routed_total", "counter", false, true});
    v.push_back({"hrf_shard_failures_total", "counter", false, true});
    v.push_back({"hrf_shard_repairs_total", "counter", false, true});
    v.push_back({"hrf_shard_worker_restarts_total", "counter", false, true});
    v.push_back({"hrf_tenant_weight", "gauge", false, false, true});
    v.push_back({"hrf_tenant_reserved_slots", "gauge", false, false, true});
    v.push_back({"hrf_tenant_queue_depth", "gauge", false, false, true});
    v.push_back({"hrf_tenant_admitted_total", "counter", false, false, true});
    v.push_back({"hrf_tenant_quota_shed_total", "counter", false, false, true});
    v.push_back({"hrf_fault_fired_total", "counter", false, false, false, true});
    v.push_back({"hrf_slo_objectives", "gauge", false, false, false, false, true});
    v.push_back({"hrf_slo_state", "gauge", false, false, false, false, true});
    v.push_back({"hrf_slo_burn_rate_fast", "gauge", false, false, false, false, true});
    v.push_back({"hrf_slo_burn_rate_slow", "gauge", false, false, false, false, true});
    v.push_back({"hrf_slo_alerts_fired_total", "counter", false, false, false, false, true});
    v.push_back({"hrf_slo_alerts_cleared_total", "counter", false, false, false, false, true});
    return v;
  }();
  return kCatalogue;
}

const std::vector<std::string>& counter_catalogue() {
  // Mirrors the names ForestServer actually feeds its CounterRegistry
  // (see docs/observability.md catalogue); metrics_snapshot() zero-fills
  // these so they are present even before first use.
  static const std::vector<std::string> kCounters = {
      "requests.submitted",       "requests.completed",
      "requests.failed",          "requests.rejected_overload",
      "requests.rejected_quota",  "requests.rejected_shutdown",
      "requests.shed_deadline",   "requests.deadline_expired",
      "requests.retried",         "requests.abandoned",
      "requests.batched",         "batch.formed",
      "batch.flush_deadline",     "fallback.served",
      "breaker.short_circuited",  "breaker.trips",
      "breaker.probes",           "reload.promoted",
      "reload.rejected",          "reload.rolled_back",
      "scrub.passes",             "scrub.corruptions",
      "scrub.repairs",            "audit.sampled",
      "audit.mismatches",         "watchdog.missed_heartbeats",
      "watchdog.worker_restarts",
  };
  return kCounters;
}

const std::vector<std::string>& cluster_counter_catalogue() {
  // Mirrors the names ClusterRouter feeds its own CounterRegistry (on top
  // of the per-shard server counters it sums into counter_catalogue()).
  static const std::vector<std::string> kCounters = {
      "cluster.submitted",          "cluster.completed",
      "cluster.failed",             "cluster.failovers",
      "cluster.hedged",             "cluster.hedge_wins",
      "cluster.no_shard_available", "cluster.probes",
      "cluster.probe_failures",     "cluster.reload_waves",
      "cluster.reload_waves_halted", "cluster.shard_rollbacks",
      "cluster.quota_shed",         "cluster.limited",
      "cluster.scale_ups",          "cluster.scale_downs",
      "autoscaler.evaluations",     "autoscaler.scale_ups",
      "autoscaler.scale_downs",     "autoscaler.stalled",
  };
  return kCounters;
}

namespace {

[[noreturn]] void schema_fail(const std::string& what) {
  throw FormatError("metrics schema check failed: " + what);
}

}  // namespace

void check_metrics_schema(const std::string& prometheus_text, const std::string& json_text) {
  const std::map<std::string, PromFamily> families = parse_prometheus(prometheus_text);

  const auto has_family = [&](const std::string& name) {
    const auto it = families.find(name);
    return it != families.end() && !it->second.samples.empty();
  };

  const bool have_rollups = has_family("hrf_backend_requests_total");
  // Cluster families are required as a block: a router snapshot exports
  // all of them, a single-server snapshot none. Tenant families likewise
  // come and go together with the quota configuration.
  const bool have_cluster = has_family("hrf_cluster_shards");
  const bool have_tenants = has_family("hrf_tenant_weight");
  const bool have_faults = has_family("hrf_fault_fired_total");
  const bool have_slo = has_family("hrf_slo_objectives");
  for (const MetricInfo& info : metric_catalogue()) {
    if (info.per_rollup_key && !have_rollups) continue;
    if (info.cluster_only && !have_cluster) continue;
    if (info.tenant_only && !have_tenants) continue;
    if (info.fault_only && !have_faults) continue;
    if (info.slo_only && !have_slo) continue;
    if (info.type == "histogram") {
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        if (!has_family(info.name + suffix)) {
          schema_fail("histogram series " + info.name + suffix + " missing");
        }
      }
      bool saw_inf = false;
      for (const PromSample& s : families.at(info.name + "_bucket").samples) {
        const auto le = s.labels.find("le");
        if (le == s.labels.end()) schema_fail(info.name + "_bucket sample without le label");
        if (le->second == "+Inf") saw_inf = true;
      }
      if (!saw_inf) schema_fail(info.name + " has no +Inf bucket");
      continue;
    }
    if (!has_family(info.name)) schema_fail("metric " + info.name + " missing");
    const std::string& declared = families.at(info.name).type;
    if (declared != info.type) {
      schema_fail("metric " + info.name + " declared as '" + declared + "', catalogue says '" +
                  info.type + "'");
    }
  }

  const json::Value doc = json::Value::parse(json_text);
  if (doc.get("schema").as_string() != "hrf-metrics") {
    schema_fail("JSON schema tag is not 'hrf-metrics'");
  }
  if (doc.get("version").as_number() != 1) schema_fail("unsupported JSON schema version");
  const json::Value& build = doc.get("build");
  build.get("version").as_string();
  build.get("commit").as_string();
  build.get("compiler").as_string();
  doc.get("uptime_seconds").as_number();
  const json::Value& counters = doc.get("counters");
  for (const std::string& name : counter_catalogue()) {
    if (!counters.find(name)) schema_fail("JSON counters missing '" + name + "'");
  }
  if (have_cluster) {
    for (const std::string& name : cluster_counter_catalogue()) {
      if (!counters.find(name)) schema_fail("JSON counters missing '" + name + "'");
    }
    const json::Value* shards = doc.find("shards");
    if (!shards || shards->size() == 0) {
      schema_fail("cluster snapshot without a per-shard health array");
    }
    for (std::size_t i = 0; i < shards->size(); ++i) {
      const json::Value& s = shards->at(i);
      s.get("index").as_number();
      s.get("up").as_bool();
      s.get("partitioned").as_bool();
      s.get("breaker_state").as_number();
      s.get("generation").as_number();
      s.get("routed").as_number();
      s.get("failures").as_number();
      s.get("repairs").as_number();
      s.get("worker_restarts").as_number();
    }
  }
  if (have_faults) {
    const json::Value* faults = doc.find("fault_fired");
    if (!faults) schema_fail("fault families exported without a JSON fault_fired object");
    for (const PromSample& s : families.at("hrf_fault_fired_total").samples) {
      const auto site = s.labels.find("site");
      if (site == s.labels.end()) schema_fail("hrf_fault_fired_total sample without site label");
      if (!faults->find(site->second)) {
        schema_fail("JSON fault_fired missing site '" + site->second + "'");
      }
    }
  }
  if (have_slo) {
    const json::Value* slo = doc.find("slo");
    if (!slo || slo->size() == 0) {
      schema_fail("SLO families exported without a JSON slo alert array");
    }
    for (std::size_t i = 0; i < slo->size(); ++i) {
      const json::Value& a = slo->at(i);
      a.get("objective").as_string();
      a.get("scope").as_string();
      a.get("firing").as_bool();
      a.get("fast_burn").as_number();
      a.get("slow_burn").as_number();
      a.get("fired").as_number();
      a.get("cleared").as_number();
    }
  }
  if (have_tenants) {
    const json::Value* tenants = doc.find("tenants");
    if (!tenants || tenants->size() == 0) {
      schema_fail("tenant families exported without a per-tenant array");
    }
    for (std::size_t i = 0; i < tenants->size(); ++i) {
      const json::Value& t = tenants->at(i);
      t.get("name").as_string();
      t.get("weight").as_number();
      t.get("reserved").as_number();
      t.get("queued").as_number();
      t.get("admitted").as_number();
      t.get("shed").as_number();
    }
  }
  const json::Value& histograms = doc.get("histograms");
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const json::Value& h = histograms.at(i);
    h.get("stage").as_string();
    h.get("count").as_number();
    h.get("buckets");
  }
  const json::Value& rollups = doc.get("rollups");
  for (std::size_t i = 0; i < rollups.size(); ++i) {
    const json::Value& r = rollups.at(i);
    r.get("variant").as_string();
    r.get("backend").as_string();
    r.get("generation").as_number();
    r.get("branch_efficiency").as_number();
    r.get("txn_per_request").as_number();
    r.get("onchip_hit_rate").as_number();
    r.get("stage1_onchip_hit_rate").as_number();
    r.get("fpga_ii_stall_cycles").as_number();
  }
  if (have_rollups && rollups.size() == 0) {
    schema_fail("Prometheus file has rollups but JSON rollups array is empty");
  }
}

void write_metrics_files(const MetricsSnapshot& snapshot, const std::string& path) {
  write_file_atomic(path, to_prometheus(snapshot));
  write_file_atomic(path + ".json", snapshot_to_json(snapshot).dump(2) + "\n");
}

}  // namespace hrf::obs
