#pragma once

// Incident flight recorder (docs/observability.md).
//
// A bounded ring of structured events fed from every serving subsystem:
// breaker transitions, reload phases, replica quarantines/repairs,
// watchdog restarts, autoscaler actions, quota sheds, failovers, and SLO
// alert fire/clear. The record path is lock-cheap — writers claim a slot
// with one relaxed fetch_add and then take only that slot's own mutex,
// so concurrent writers contend only when the ring wraps onto the same
// slot — which is what lets the hot serving paths log transitions
// without a global lock. Readers assemble a consistent oldest->newest
// view at any time; the ring keeps the last `capacity` events and counts
// what it overwrote.
//
// This module is intentionally below serve in the layer graph (plain
// strings and doubles, no serve/cluster types): subsystems push events
// into a FlightRecorder* handed down through their options structs.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hrf::obs {

/// One recorded event. `seconds` is the recorder's monotonic clock
/// (steady_clock by default; injectable for deterministic tests).
struct FlightEvent {
  std::uint64_t sequence = 0;  // global record order, starts at 0
  double seconds = 0.0;        // monotonic timestamp
  std::string category;        // "breaker" | "reload" | "integrity" | ...
  std::string name;            // e.g. "breaker_open", "reload_promoted"
  std::string scope;           // "" | "shard:2" | "tenant:acme" | ...
  std::string detail;          // freeform context, may be empty
};

class FlightRecorder {
 public:
  /// `now` overrides the timestamp source (tests); default reads
  /// steady_clock seconds.
  explicit FlightRecorder(std::size_t capacity = 512, double (*now)() = nullptr);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event; safe from any thread.
  void record(std::string category, std::string name, std::string scope = "",
              std::string detail = "");

  /// Consistent copy of the retained events, oldest -> newest.
  std::vector<FlightEvent> events() const;

  std::uint64_t recorded() const { return next_.load(std::memory_order_relaxed); }
  /// Events overwritten by the ring wrapping.
  std::uint64_t dropped() const;
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    mutable std::mutex mu;
    bool used = false;
    FlightEvent event;
  };

  double now_seconds() const;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> next_{0};
  double (*now_)() = nullptr;
};

}  // namespace hrf::obs
