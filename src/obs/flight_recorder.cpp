#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

namespace hrf::obs {

FlightRecorder::FlightRecorder(std::size_t capacity, double (*now)()) : now_(now) {
  require(capacity >= 1, "flight recorder capacity must be >= 1");
  slots_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) slots_.push_back(std::make_unique<Slot>());
}

double FlightRecorder::now_seconds() const {
  if (now_ != nullptr) return now_();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void FlightRecorder::record(std::string category, std::string name, std::string scope,
                            std::string detail) {
  const double t = now_seconds();
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = *slots_[seq % slots_.size()];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.used = true;
  slot.event.sequence = seq;
  slot.event.seconds = t;
  slot.event.category = std::move(category);
  slot.event.name = std::move(name);
  slot.event.scope = std::move(scope);
  slot.event.detail = std::move(detail);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->used) out.push_back(slot->event);
  }
  // Slots fill in claim order but wrap, so the flat scan is rotated;
  // sequence restores global record order. A slot mid-overwrite holds
  // either the old or the new event, never a torn mix.
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) { return a.sequence < b.sequence; });
  return out;
}

std::uint64_t FlightRecorder::dropped() const {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  return n > slots_.size() ? n - slots_.size() : 0;
}

}  // namespace hrf::obs
