#pragma once

// Observability monitor: the owner of the third pillar (docs/
// observability.md, "Time series, SLOs, and incident bundles").
//
// A Monitor periodically pulls a MetricsSnapshot from its source (a
// ForestServer or ClusterRouter, handed in as a plain callable so obs
// stays below serve in the layer graph), feeds it into a
// TimeSeriesRegistry for windowed rates/percentiles, runs the resulting
// windows through an SloEngine, and — when an alert fires, a signal
// arrives, or trigger_incident() is called — atomically dumps an
// *incident bundle*: one schema-versioned JSON file capturing the recent
// windows, active alerts, the flight-recorder event ring, the slowest
// retained traces, and the self-healing counters. The bundle is the
// post-mortem artifact: everything needed to reconstruct the minutes
// before an incident, written at the moment it happened.
//
// Determinism hooks mirror cluster/autoscaler.hpp: the clock is
// injectable and tick() is public, so tests drive the whole loop with a
// fake clock — no background thread, no sleeps. Production uses
// start_thread=true.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "util/json.hpp"
#include "util/trace.hpp"

namespace hrf::obs {

struct MonitorOptions {
  /// Sampling cadence (thread mode) and window-ring size; together they
  /// bound the lookback (240 x 0.25 s = one minute by default).
  double interval_seconds = 0.25;
  std::size_t window_capacity = 240;
  /// SLO policy; `slo_enabled` false leaves the engine unarmed (windows
  /// are still recorded, hrf_slo_* families are not exported).
  bool slo_enabled = false;
  SloObjectives slo{};
  /// Directory for incident bundles; empty disables bundle writing
  /// (alerts still fire and export). Created on first write.
  std::string incident_dir;
  /// Caps inside each bundle.
  std::size_t bundle_windows = 64;
  std::size_t bundle_events = 256;
  std::size_t bundle_traces = 4;
  /// False = no background thread; the owner calls tick() (tests).
  bool start_thread = true;
};

class Monitor {
 public:
  using MetricsSource = std::function<MetricsSnapshot()>;
  using Clock = std::function<double()>;

  /// `recorder` and `tracer` may be null; both enrich snapshots and
  /// bundles when present. `clock` overrides steady-clock seconds.
  Monitor(MonitorOptions options, MetricsSource source, FlightRecorder* recorder = nullptr,
          const trace::Tracer* tracer = nullptr, Clock clock = {});
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Stops the sampling thread (idempotent; the destructor calls it).
  void stop();

  /// One sampling step at `now`: snapshot the source, record a window,
  /// evaluate SLOs, write a bundle if an alert fired or a trigger is
  /// pending. Thread mode calls this on the cadence; tests call it
  /// directly with a fake clock.
  void tick(double now);

  /// The source's snapshot with the SLO alert rows folded in — what the
  /// metrics writer should export once a Monitor owns the SLO engine.
  MetricsSnapshot snapshot() const;

  /// Requests an incident bundle outside the alert path (CLI `incident
  /// --trigger`, SIGUSR1). Written on the next tick; returns immediately.
  void trigger_incident(const std::string& reason);

  /// Current alert rows (empty when SLOs are disabled).
  std::vector<SloAlertState> alerts() const;

  std::uint64_t windows_recorded() const;
  std::uint64_t bundles_written() const;
  std::string last_bundle_path() const;
  std::uint64_t alerts_fired_total() const;
  const MonitorOptions& options() const { return options_; }

 private:
  void loop();
  void write_bundle_locked(const std::string& reason, double now);
  json::Value build_bundle_locked(const std::string& reason, double now) const;

  MonitorOptions options_;
  MetricsSource source_;
  FlightRecorder* recorder_ = nullptr;
  const trace::Tracer* tracer_ = nullptr;
  Clock clock_;

  mutable std::mutex mu_;  // guards registry/engine/bundle state
  TimeSeriesRegistry registry_;
  MetricsSnapshot last_snapshot_;  // latest source snapshot (self-heal ledger)
  std::unique_ptr<SloEngine> engine_;  // null when SLOs are disabled
  std::uint64_t fed_windows_ = 0;
  std::vector<std::string> pending_reasons_;
  std::uint64_t bundles_written_ = 0;
  std::uint64_t bundle_seq_ = 0;
  std::string last_bundle_path_;

  std::atomic<bool> stopping_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::thread thread_;
};

/// Validates a parsed incident bundle against the documented schema
/// ("hrf-incident" v1): tag/version/reason/build/alert rows/window
/// rows/event rows all present with the right shapes. Throws FormatError
/// describing the first violation — the CLI `incident` mode and the CI
/// schema gate both call this.
void check_incident_bundle(const json::Value& bundle);

}  // namespace hrf::obs
