#include "fpgakernels/traversal_counts.hpp"

#include <omp.h>

#include "util/error.hpp"
#include "util/math.hpp"

namespace hrf::fpgakernels {

TraversalCounts count_traversal(const HierarchicalForest& forest, const Dataset& queries) {
  require(forest.num_features() == queries.num_features(), "query width != forest features");
  const std::size_t nq = queries.num_samples();
  const std::size_t nt = forest.num_trees();

  TraversalCounts total;
  total.predictions.resize(nq);

  std::uint64_t node_visits = 0;
  std::uint64_t root_visits = 0;
  std::uint64_t hops = 0;

  const auto k = static_cast<std::size_t>(forest.num_classes());
#pragma omp parallel for schedule(static) \
    reduction(+ : node_visits, root_visits, hops)
  for (std::size_t qi = 0; qi < nq; ++qi) {
    const auto query = queries.sample(qi);
    std::uint32_t votes[256] = {};
    for (std::size_t t = 0; t < nt; ++t) {
      const std::uint32_t root_st = forest.root_subtree(t);
      std::uint32_t st = root_st;
      float leaf_value = 0.0f;
      for (bool done = false; !done;) {
        const std::uint32_t off = forest.subtree_node_offset(st);
        const int d = forest.subtree_depth(st);
        const auto bottom_first = static_cast<std::uint32_t>(pow2(d - 1) - 1);
        std::uint32_t p = 0;
        for (;;) {
          ++node_visits;
          if (st == root_st) ++root_visits;
          const std::int32_t f = forest.feature_id()[off + p];
          if (f == kLeafFeature) {
            leaf_value = forest.value()[off + p];
            done = true;
            break;
          }
          const bool go_left =
              query[static_cast<std::size_t>(f)] < forest.value()[off + p];
          if (p >= bottom_first) {
            const std::uint32_t ci =
                forest.connection_offset(st) + 2 * (p - bottom_first) + (go_left ? 0u : 1u);
            st = static_cast<std::uint32_t>(forest.subtree_connection()[ci]);
            ++hops;
            break;
          }
          p = 2 * p + (go_left ? 1u : 2u);
        }
      }
      ++votes[static_cast<std::uint8_t>(leaf_value)];
    }
    total.predictions[qi] = Forest::vote_winner({votes, k});
  }

  total.node_visits = node_visits;
  total.root_subtree_visits = root_visits;
  total.subtree_hops = hops;
  total.leaf_visits = static_cast<std::uint64_t>(nq) * nt;
  return total;
}

}  // namespace hrf::fpgakernels
