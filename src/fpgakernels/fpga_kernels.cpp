#include "fpgakernels/fpga_kernels.hpp"

#include <omp.h>

#include <string>

#include "fpgakernels/traversal_counts.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/math.hpp"

namespace hrf::fpgakernels {

namespace {

// Initiation intervals reported by the paper's Vitis HLS builds (§3.2.2,
// Table 3). The RAW dependency on the current-node register bounds the
// traversal loops; the collaborative/hybrid on-chip loops reach II 3.
constexpr double kCsrII = 292.0;
constexpr double kIndependentII = 76.0;
constexpr double kIndependentNoBufferII = 147.0;
constexpr double kOnChipII = 3.0;
constexpr double kPipelineDepth = 60.0;

/// Burst reads needed to stream all query rows into BRAM once.
std::uint64_t query_burst_accesses(const Dataset& queries, const fpgasim::FpgaConfig& cfg) {
  const std::uint64_t row_bytes = queries.num_features() * sizeof(float);
  return queries.num_samples() * ceil_div(row_bytes, cfg.burst_bytes);
}

}  // namespace

FpgaResult run_csr_fpga(const CsrForest& csr, const Dataset& queries,
                        const fpgasim::FpgaConfig& cfg, const fpgasim::CuLayout& layout) {
  require(csr.num_features() == queries.num_features(), "query width != forest features");
  const std::size_t nq = queries.num_samples();
  const std::size_t nt = csr.num_trees();

  FpgaResult out;
  out.predictions.resize(nq);
  std::uint64_t node_visits = 0;
  const auto k = static_cast<std::size_t>(csr.num_classes());

#pragma omp parallel for schedule(static) reduction(+ : node_visits)
  for (std::size_t qi = 0; qi < nq; ++qi) {
    const auto query = queries.sample(qi);
    std::uint32_t votes[256] = {};
    for (std::size_t t = 0; t < nt; ++t) {
      auto n = static_cast<std::size_t>(csr.tree_root()[t]);
      while (csr.feature_id()[n] != kLeafFeature) {
        ++node_visits;
        const bool go_left =
            query[static_cast<std::size_t>(csr.feature_id()[n])] < csr.value()[n];
        const auto idx = static_cast<std::size_t>(csr.children_arr_idx()[n]) + (go_left ? 0u : 1u);
        n = static_cast<std::size_t>(csr.children_arr()[idx]);
      }
      ++node_visits;  // leaf
      ++votes[static_cast<std::uint8_t>(csr.value()[n])];
    }
    out.predictions[qi] = Forest::vote_winner({votes, k});
  }

  const std::uint64_t leaves = static_cast<std::uint64_t>(nq) * nt;
  fpgasim::StageModel stage;
  stage.name = "csr-traversal";
  stage.ii = kCsrII;
  stage.pipeline_depth = kPipelineDepth;
  stage.iterations = node_visits;
  // Inner step: feature_id, value, children_arr_idx, children_arr, query
  // feature — all irregular external reads. Leaf step: feature_id + value.
  stage.random_accesses = 5 * (node_visits - leaves) + 2 * leaves;
  out.report = fpgasim::evaluate(cfg, layout, {stage}, "292");
  return out;
}

FpgaResult run_independent_fpga(const HierarchicalForest& forest, const Dataset& queries,
                                const fpgasim::FpgaConfig& cfg, const fpgasim::CuLayout& layout,
                                bool buffer_queries) {
  TraversalCounts counts = count_traversal(forest, queries);

  fpgasim::StageModel stage;
  stage.name = "independent-traversal";
  stage.ii = buffer_queries ? kIndependentII : kIndependentNoBufferII;
  stage.pipeline_depth = kPipelineDepth;
  stage.iterations = counts.node_visits + counts.subtree_hops;
  // Per node visit: feature_id + value (children are arithmetic). Per
  // subtree hop: connection entry + node offset + depth + connection
  // offset. The query feature read is external only when not buffered.
  stage.random_accesses = 2 * counts.node_visits + 4 * counts.subtree_hops +
                          (buffer_queries ? 0 : counts.node_visits - counts.leaf_visits);
  if (buffer_queries) stage.burst_accesses = query_burst_accesses(queries, cfg);

  FpgaResult out;
  out.predictions = std::move(counts.predictions);
  out.report = fpgasim::evaluate(cfg, layout, {stage}, buffer_queries ? "76" : "147");
  return out;
}

FpgaResult run_collaborative_fpga(const HierarchicalForest& forest, const Dataset& queries,
                                  const fpgasim::FpgaConfig& cfg,
                                  const fpgasim::CuLayout& layout) {
  // The largest subtree must fit in on-chip memory next to the pipeline.
  fault_point("resource:fpga-bram");
  const std::size_t max_subtree_bytes =
      complete_tree_nodes(forest.config().subtree_depth) *
      (sizeof(std::int32_t) + sizeof(float));
  if (max_subtree_bytes * static_cast<std::size_t>(layout.cus_per_slr) >
      cfg.onchip_bytes_per_slr) {
    throw ResourceError("collaborative FPGA kernel: subtree buffers exceed BRAM/URAM");
  }

  TraversalCounts counts = count_traversal(forest, queries);

  // Burst-load every subtree once per tree pass; then flush *every* query
  // through *every* subtree at II 3, touching external memory for the
  // query's traversal state (current subtree/node) and its feature.
  fpgasim::StageModel load;
  load.name = "subtree-burst-load";
  load.ii = 1.0;
  load.pipeline_depth = kPipelineDepth;
  const std::uint64_t stored_bytes =
      forest.feature_id().size() * (sizeof(std::int32_t) + sizeof(float));
  load.iterations = ceil_div(stored_bytes, cfg.burst_bytes);
  load.burst_accesses = load.iterations;

  fpgasim::StageModel sweep;
  sweep.name = "collaborative-sweep";
  sweep.ii = kOnChipII;
  sweep.pipeline_depth = kPipelineDepth;
  sweep.iterations = static_cast<std::uint64_t>(queries.num_samples()) * forest.num_subtrees();
  sweep.random_accesses = 2 * sweep.iterations;

  FpgaResult out;
  out.predictions = std::move(counts.predictions);
  out.report = fpgasim::evaluate(cfg, layout, {load, sweep}, "3");
  return out;
}

FpgaResult run_hybrid_fpga(const HierarchicalForest& forest, const Dataset& queries,
                           const fpgasim::FpgaConfig& cfg, const fpgasim::CuLayout& layout,
                           bool split_stage1) {
  fault_point("resource:fpga-bram");
  const int rsd = forest.config().effective_root_depth();
  const std::size_t root_bytes =
      complete_tree_nodes(rsd) * (sizeof(std::int32_t) + sizeof(float));
  const std::size_t stage1_cus =
      split_stage1 ? 1 : static_cast<std::size_t>(layout.cus_per_slr);
  if (root_bytes * stage1_cus > cfg.onchip_bytes_per_slr) {
    throw ResourceError("hybrid FPGA kernel: root subtree buffers exceed BRAM/URAM; reduce RSD");
  }

  TraversalCounts counts = count_traversal(forest, queries);

  // Stage 1: queries stream through the BRAM-resident root subtree. Root
  // subtrees are burst-loaded once per tree; query rows once overall.
  std::uint64_t root_burst = 0;
  for (std::size_t t = 0; t < forest.num_trees(); ++t) {
    const std::uint32_t st = forest.root_subtree(t);
    const std::uint64_t bytes =
        complete_tree_nodes(forest.subtree_depth(st)) * (sizeof(std::int32_t) + sizeof(float));
    root_burst += ceil_div(bytes, cfg.burst_bytes);
  }
  fpgasim::StageModel stage1;
  stage1.name = "hybrid-stage1";
  stage1.ii = kOnChipII;
  stage1.pipeline_depth = kPipelineDepth;
  stage1.iterations = counts.root_subtree_visits;
  // The BRAM budget holds the root subtree and inter-stage state FIFOs, so
  // each step's query-feature read goes to external memory — at II 3 this
  // demands random accesses far faster than the channel sustains, which is
  // the stalling the paper observed when replicating stage 1 (§4.4).
  stage1.random_accesses = counts.root_subtree_visits;
  stage1.burst_accesses = root_burst;
  stage1.replicate_within_slr = !split_stage1;

  // Stage 2: independent traversal of everything below the root subtrees.
  fpgasim::StageModel stage2;
  stage2.name = "hybrid-stage2";
  stage2.ii = kIndependentII;
  stage2.pipeline_depth = kPipelineDepth;
  const std::uint64_t deeper_visits = counts.node_visits - counts.root_subtree_visits;
  stage2.iterations = deeper_visits + counts.subtree_hops;
  // feature_id + value + query feature per visit, plus the four indirect
  // reads per subtree hop (connection entry and subtree metadata).
  stage2.random_accesses = 3 * deeper_visits + 4 * counts.subtree_hops;

  FpgaResult out;
  out.predictions = std::move(counts.predictions);
  out.report = fpgasim::evaluate(cfg, layout, {stage1, stage2}, "3/76");
  return out;
}

}  // namespace hrf::fpgakernels
