#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"

namespace hrf::fpgakernels {

/// Exact work counts of classifying every query against every tree of a
/// hierarchical forest, measured by an instrumented functional traversal.
/// Since hierarchical traversal visits exactly the same real nodes as the
/// CSR traversal (padding is unreachable), these counts parameterize every
/// FPGA code variant:
///   * CSR / independent pipelines iterate once per node visit;
///   * hybrid splits visits into root-subtree (stage 1) vs deeper (stage 2);
///   * collaborative pipelines all queries through every subtree.
struct TraversalCounts {
  std::uint64_t node_visits = 0;        // total nodes processed (incl. leaves)
  std::uint64_t root_subtree_visits = 0;  // subset within each tree's root subtree
  std::uint64_t subtree_hops = 0;       // crossings between subtrees
  std::uint64_t leaf_visits = 0;        // == queries * trees
  std::vector<std::uint8_t> predictions;  // majority vote per query
};

/// Runs the instrumented traversal (OpenMP-parallel over queries).
TraversalCounts count_traversal(const HierarchicalForest& forest, const Dataset& queries);

}  // namespace hrf::fpgakernels
