#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "fpgasim/config.hpp"
#include "fpgasim/pipeline.hpp"
#include "layout/csr.hpp"
#include "layout/hierarchical.hpp"

namespace hrf::fpgakernels {

/// Result of one modeled FPGA execution: exact predictions plus the
/// analytical timing report.
struct FpgaResult {
  std::vector<std::uint8_t> predictions;
  fpgasim::FpgaReport report;
};

/// CSR baseline (Table 3 row "Baseline (CSR)"): one pipeline iterating all
/// (query, tree, node) steps at II 292, five random external reads per
/// inner step (node attributes, both topology indirections, query feature).
FpgaResult run_csr_fpga(const CsrForest& csr, const Dataset& queries,
                        const fpgasim::FpgaConfig& cfg = fpgasim::FpgaConfig::alveo_u250(),
                        const fpgasim::CuLayout& layout = {});

/// Independent variant (§3.2.2): II 76 with query features buffered in
/// BRAM (II 147 without — `buffer_queries` toggles the paper's ablation);
/// two random external reads per step plus four per subtree hop.
FpgaResult run_independent_fpga(const HierarchicalForest& forest, const Dataset& queries,
                                const fpgasim::FpgaConfig& cfg = fpgasim::FpgaConfig::alveo_u250(),
                                const fpgasim::CuLayout& layout = {},
                                bool buffer_queries = true);

/// Collaborative variant (§3.2.2): each subtree burst-loaded into
/// BRAM/URAM, then *every* query pipelined through it at II 3; query state
/// stays in external memory (random accesses), which is what makes this
/// variant memory-stalled (~90% in Table 3) despite its low II.
FpgaResult run_collaborative_fpga(const HierarchicalForest& forest, const Dataset& queries,
                                  const fpgasim::FpgaConfig& cfg = fpgasim::FpgaConfig::alveo_u250(),
                                  const fpgasim::CuLayout& layout = {});

/// Hybrid variant (§3.2.2): stage 1 walks the BRAM-resident root subtree
/// at II 3; stage 2 equals the independent variant at II 76 for nodes
/// below the root subtree. With `split_stage1`, stage 1 runs on a single
/// CU per SLR while stage 2 replicates (the paper's "Hybrid Split").
FpgaResult run_hybrid_fpga(const HierarchicalForest& forest, const Dataset& queries,
                           const fpgasim::FpgaConfig& cfg = fpgasim::FpgaConfig::alveo_u250(),
                           const fpgasim::CuLayout& layout = {}, bool split_stage1 = false);

}  // namespace hrf::fpgakernels
