#pragma once

// Histogram-driven fleet autoscaling (docs/cluster.md).
//
// A ClusterAutoscaler watches a ClusterRouter and resizes its active
// shard set through scale_up()/scale_down(). Each evaluation samples
// the *interval* route p95 — the latency distribution since the
// previous evaluation, obtained by diffing cumulative histogram bucket
// counts — plus the mean queue depth per active shard, and compares
// both against scale-up/scale-down thresholds:
//
//   scale up    p95 above scale_up_p95_seconds OR queue depth above
//               scale_up_queue_depth, for hysteresis_evaluations
//               consecutive evaluations, and active < max_shards
//   scale down  p95 below scale_down_p95_seconds AND queue depth below
//               scale_down_queue_depth, equally persistent, active >
//               min_shards
//   hold        anything in between (the hysteresis band) resets both
//               streaks; after any resize a cooldown window ignores
//               signals while the fleet re-balances
//
// Determinism hooks mirror serve/circuit_breaker.hpp: the clock and the
// metrics source are injectable, and evaluate() is public, so tests
// drive the whole control loop with a fake clock and synthetic samples
// — no background thread, no sleeps. Production uses start_thread=true
// and the built-in sampler.
//
// Chaos: the `stall:autoscaler` fault site (util/fault) wedges an
// evaluation for inject_stall_seconds before it reads metrics — the
// fleet must keep serving at its current size while the control loop is
// stuck, and the stall is visible as autoscaler.stalled.

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "cluster/cluster.hpp"

namespace hrf::cluster {

struct AutoscalerOptions {
  /// Active-shard bounds; scale_down never goes below min_shards and
  /// scale_up never above max_shards (also capped by the router's slot
  /// count, ClusterOptions::max_shards).
  std::size_t min_shards = 1;
  std::size_t max_shards = 4;
  /// Control-loop cadence (thread mode).
  double evaluation_interval_seconds = 0.05;
  /// Breach thresholds (see file comment). Queue depths are mean queued
  /// requests per active shard.
  double scale_up_p95_seconds = 0.05;
  double scale_up_queue_depth = 2.0;
  double scale_down_p95_seconds = 0.01;
  double scale_down_queue_depth = 0.25;
  /// Consecutive breaching evaluations before a resize.
  int hysteresis_evaluations = 3;
  /// Quiet period after a resize before signals count again.
  double cooldown_seconds = 0.25;
  /// False = no background thread; the owner calls evaluate() (tests).
  bool start_thread = true;
  /// How long a consumed stall:autoscaler charge wedges an evaluation.
  double inject_stall_seconds = 0.25;
};

/// One evaluation's input: what the fleet looked like since the last
/// evaluation.
struct AutoscalerSample {
  double route_p95_seconds = 0.0;  // interval p95 of successful routes
  double avg_queue_depth = 0.0;    // mean queued requests per active shard
};

struct AutoscalerStats {
  std::size_t active_shards = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t stalled = 0;  // stall:autoscaler charges consumed
  int up_streak = 0;          // consecutive scale-up breaches so far
  int down_streak = 0;        // consecutive scale-down breaches so far
};

/// Grows and shrinks a ClusterRouter's active shard set. Thread-safe;
/// evaluate() may be called concurrently with the background thread
/// (evaluations are serialized internally).
class ClusterAutoscaler {
 public:
  /// Injectable time (seconds, monotonic) and metrics source. Defaults:
  /// steady_clock and a sampler built on router.route_latency() /
  /// router.stats().
  using Clock = std::function<double()>;
  using MetricsSource = std::function<AutoscalerSample()>;

  /// The router must outlive the autoscaler.
  ClusterAutoscaler(ClusterRouter& router, AutoscalerOptions options, Clock clock = nullptr,
                    MetricsSource source = nullptr);
  ~ClusterAutoscaler();  // stop()

  ClusterAutoscaler(const ClusterAutoscaler&) = delete;
  ClusterAutoscaler& operator=(const ClusterAutoscaler&) = delete;

  /// One control step: sample, update streaks, maybe resize. Public so
  /// fake-clock tests drive the loop deterministically.
  void evaluate();

  /// Stops the background thread (no-op without one). Idempotent.
  void stop();

  AutoscalerStats stats() const;
  const AutoscalerOptions& options() const { return options_; }

 private:
  AutoscalerSample sample_from_router();
  void loop();

  ClusterRouter& router_;
  AutoscalerOptions options_;
  Clock clock_;
  MetricsSource source_;

  mutable std::mutex mu_;  // serializes evaluations, guards state below
  int up_streak_ = 0;
  int down_streak_ = 0;
  double cooldown_until_ = 0.0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  std::uint64_t stalled_ = 0;
  /// Previous cumulative route histogram; the interval distribution is
  /// the element-wise difference against the current snapshot.
  HistogramSnapshot prev_route_{};

  std::atomic<bool> stopping_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::thread thread_;
};

}  // namespace hrf::cluster
