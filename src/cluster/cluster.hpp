#pragma once

// Fault-tolerant sharded serving (docs/cluster.md).
//
// A ClusterRouter fronts N ForestServer shards and keeps answering while
// individual shards die, stall, or reload:
//
//   routing    consistent-hash (rendezvous order on the query key) or
//              least-loaded (ascending queue depth); either policy skips
//              shards whose router-side breaker is not Closed
//   breakers   one CircuitBreaker per shard *in the router*, distinct
//              from each server's in-process breaker: the server breaker
//              guards its accelerator backend, the router breaker guards
//              the dispatch path to the whole shard (kill, partition,
//              overload) — fed by client outcomes and by the probe loop
//   probes     a background loop sends a 1-row synthetic request to every
//              shard each interval; successes close recovered breakers,
//              timeouts/failures keep sick shards quarantined
//   failover   a failed attempt moves to the next candidate shard, up to
//              max_failovers extra attempts per request
//   hedging    when a request outlives the hedge delay — derived from
//              the router's observed p95, floored at HedgeOptions::
//              min_seconds — a second attempt is launched on the next
//              candidate shard and the first answer wins
//   reload     rolling_reload() walks the fleet one shard at a time
//              through the serve/reload state machine and, if any shard
//              rejects or rolls back, halts the wave and reverts the
//              already-promoted shards to the generation they ran before
//   admission  an optional AIMD concurrency limiter (serve/qos.hpp) caps
//              in-flight query() calls: the limit grows by one per clean
//              epoch and multiplicatively shrinks when the observed route
//              p95 breaches the target or a deadline expires — overload
//              is refused at the door instead of queued into a collapse
//   scaling    the fleet is a fixed array of max_shards slots of which
//              the first num_shards start active; scale_up() activates
//              the lowest inactive slot with a freshly built server,
//              scale_down() deactivates the highest active slot and
//              drains it through DrainReport. Rendezvous scores are per
//              (key, slot) and independent of the active set, so a
//              combined add+remove only remaps keys that ranked a
//              changed slot first (minimal disruption).
//
// Multi-tenant QoS lives in the shards (serve/qos.hpp): the router only
// forwards QueryOptions::tenant and accounts quota rejections as
// cluster.quota_shed — a shed tenant is not shard sickness, so it never
// feeds the shard breaker.
//
// Chaos sites: `crash:route` (util/fault) fails a client dispatch at the
// router->shard link; `freeze:shard` stalls a shard worker mid-dispatch;
// `surge:tenant` inflates one tenant's service time (noisy neighbor);
// `stall:autoscaler` wedges the control loop (cluster/autoscaler.hpp).
// tools/chaos.sh and tests/cluster drive all four against the
// degraded-mode SLOs in docs/cluster.md. Shard-internal integrity faults
// (`corrupt:replica`, `hang:worker` — serve/integrity.hpp) fire inside
// individual shard servers; the router surfaces each shard's self-heal
// outcome (repairs, worker restarts) in ShardStatus / ShardHealth rows.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.hpp"
#include "serve/server.hpp"

namespace hrf::cluster {

enum class RoutingPolicy { ConsistentHash, LeastLoaded };

const char* to_string(RoutingPolicy p);
/// Parses "hash" / "consistent-hash" / "least-loaded"; throws ConfigError.
RoutingPolicy routing_policy_from_name(const std::string& name);

/// Rendezvous (highest-random-weight) candidate order for `key` over
/// `num_shards` shards: shards sorted by a per-(key, shard) hash score.
/// Deterministic given (key, salt), and removing one shard only remaps
/// the keys that ranked it first — the property that keeps cache-warm
/// shards warm across fleet resizes. Free function so tests can pin
/// stability, balance, and minimal-disruption directly.
std::vector<std::size_t> rendezvous_order(std::uint64_t key, std::size_t num_shards,
                                          std::uint64_t salt = 0);

/// Rendezvous order restricted to an arbitrary subset of shard ids. Each
/// (key, id) score is computed exactly as rendezvous_order computes it
/// for shard `id` — independent of which other ids are present — so any
/// combination of additions and removals only remaps the keys whose
/// top-ranked id changed. This is what lets the autoscaler grow and
/// shrink the active set with minimal cache disruption.
std::vector<std::size_t> rendezvous_order_subset(std::uint64_t key,
                                                 const std::vector<std::size_t>& shard_ids,
                                                 std::uint64_t salt = 0);

struct HedgeOptions {
  bool enabled = true;
  /// Hedge delay floor (CLI --hedge-ms); also used verbatim until the
  /// router has min_samples completed requests to derive a p95 from.
  double min_seconds = 0.01;
  /// Hedge once a request has been in flight p95_multiplier * p95.
  double p95_multiplier = 2.0;
  /// Completed requests before the observed p95 is trusted.
  std::uint64_t min_samples = 32;
};

struct ClusterOptions {
  /// Shards active at construction.
  std::size_t num_shards = 2;
  /// Upper bound for scale_up(): the fleet owns max_shards slots for its
  /// whole life (stable slot ids = stable rendezvous scores). 0 means
  /// "= num_shards" — a fixed fleet that cannot scale.
  std::size_t max_shards = 0;
  /// Router-level adaptive admission (AIMD on the observed route p95);
  /// disabled by default.
  serve::AdaptiveLimitOptions limit{};
  RoutingPolicy policy = RoutingPolicy::ConsistentHash;
  /// Extra shards tried after a failed attempt (bounded cross-shard
  /// retry); the hedge attempt draws from the same candidate list but
  /// has its own single-shot budget.
  int max_failovers = 2;
  HedgeOptions hedge{};
  /// Router-side per-shard breaker. Defaults trip faster and cool down
  /// quicker than the in-server breaker: a dead shard should be
  /// quarantined within a few requests, and the probe loop (not client
  /// traffic) pays for recovery checks.
  serve::CircuitBreakerOptions shard_breaker{.failure_threshold = 3, .open_seconds = 0.1};
  /// Health probe loop cadence and the probe request's deadline. The
  /// probe loop never blocks on a wedged shard longer than the deadline
  /// plus a small margin — it abandons the future and counts a failure.
  double probe_interval_seconds = 0.02;
  double probe_deadline_seconds = 0.25;
  /// Tests that need full determinism turn the probe loop off.
  bool start_probes = true;
  /// Salt folded into rendezvous hashing (fleet identity).
  std::uint64_t hash_salt = 0x9e3779b97f4a7c15ULL;
  /// Incident flight recorder (obs/flight_recorder.hpp): handed down to
  /// every shard server (scope "shard:N") and fed router-level events —
  /// router breaker transitions, failovers, hedges, scale ops, reload
  /// waves, kills. Not owned; must outlive the router. Null disables.
  obs::FlightRecorder* flight_recorder = nullptr;
};

/// Per-request routing inputs.
struct QueryOptions {
  std::uint64_t key = 0;          // routing key (consistent-hash policy)
  double deadline_seconds = 0.0;  // per-attempt deadline; <= 0 = none
  /// Tenant charged for the shard's admission quota (serve/qos.hpp);
  /// empty = anonymous (spare-pool-only when quotas are configured).
  std::string tenant;
};

/// One routed request's outcome.
struct ClusterResult {
  serve::ServeResult result;
  std::size_t shard = 0;   // shard that answered
  int failovers = 0;       // attempts rerouted past a failed shard
  bool hedged = false;     // a hedge attempt was launched
  bool hedge_won = false;  // ... and it answered first
  /// Router-assigned id for this query, stamped as the "router_request"
  /// attribute on every shard-level root span the query touched — the
  /// correlation key for failover/hedge traces across shard tracers.
  std::uint64_t request_id = 0;
};

struct ShardStatus {
  std::size_t index = 0;
  bool active = true;  // slot is part of the serving fleet (autoscaling)
  bool alive = true;
  bool partitioned = false;
  serve::CircuitState breaker = serve::CircuitState::Closed;
  std::size_t queue_depth = 0;
  std::uint64_t generation = 0;
  std::uint64_t routed = 0;    // requests dispatched to this shard
  std::uint64_t failures = 0;  // dispatch failures the router observed
  std::uint64_t repairs = 0;   // replicas quarantined + rebuilt in the shard
  std::uint64_t worker_restarts = 0;  // watchdog thread replacements
};

struct ClusterStats {
  std::size_t shards = 0;     // active slots
  std::size_t available = 0;  // alive, reachable, breaker Closed
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t failovers = 0;
  std::uint64_t hedged = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t no_shard_available = 0;
  std::uint64_t quota_shed = 0;  // attempts refused by a tenant quota
  std::uint64_t limited = 0;     // query() calls refused by the AIMD limiter
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t reload_waves = 0;
  std::uint64_t reload_waves_halted = 0;
  std::uint64_t shard_rollbacks = 0;
  std::vector<ShardStatus> shard_status;
};

struct RollingReloadOptions {
  /// Per-shard reload options (shadow/canary/watch phases).
  serve::ReloadOptions reload{};
  /// Revert already-promoted shards to their wave-entry generation when
  /// the wave halts, most recently promoted first.
  bool rollback_wave = true;
};

struct ShardReload {
  std::size_t shard = 0;
  serve::ReloadReport report;
};

/// What one rolling-reload wave accomplished.
struct RollingReloadReport {
  std::uint64_t to_generation = 0;
  bool completed = false;  // every shard promoted (or was already current)
  std::string reason;      // why the wave halted; empty when completed
  std::vector<ShardReload> shards;     // reload attempts in wave order
  std::vector<ShardReload> rollbacks;  // wave-rollback reverts, reverse order
  double total_seconds = 0.0;

  std::string to_string() const;
};

/// Routes requests across a fleet of in-process ForestServer shards.
/// Thread-safe: query(), chaos controls, snapshots, and rolling_reload()
/// may be called concurrently from any thread.
class ClusterRouter {
 public:
  /// Every shard serves replicas built from the same (forest, options).
  ClusterRouter(const Forest& forest, const ClassifierOptions& classifier_options,
                const serve::ServerOptions& shard_options, const ClusterOptions& options);
  /// Every shard serves the store's current generation and stays
  /// reload()-able (what rolling_reload() requires for rollback).
  ClusterRouter(const serve::ModelStore& store, const ClassifierOptions& classifier_options,
                const serve::ServerOptions& shard_options, const ClusterOptions& options);
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Routes one request: candidate order by policy, bounded failover,
  /// one hedge attempt after the hedge delay. Throws the last shard
  /// error when every attempt failed, OverloadError when no shard was
  /// routable at all or the AIMD limiter refused admission (counted as
  /// cluster.limited), QuotaError when every attempt was shed by the
  /// request's tenant quota, ShutdownError after shutdown().
  ClusterResult query(const Dataset& queries, const QueryOptions& qopt = {});

  // --- Elastic fleet (cluster/autoscaler.hpp drives these) -------------

  /// Activates the lowest-index inactive slot with a freshly built
  /// server and a fresh breaker. Returns false when every slot is
  /// already active. Serialized against scale_down().
  bool scale_up();
  /// Deactivates the highest-index active slot — new candidate orders
  /// stop listing it immediately — then drains it gracefully. In-flight
  /// requests finish (or fail over); the slot can be reused by a later
  /// scale_up(). Returns the drain report, or nullopt when only one
  /// active shard remains (a cluster never scales to zero).
  std::optional<serve::DrainReport> scale_down();
  /// Slots currently serving (num_shards() counts the same thing; the
  /// fleet owns options().max_shards slots in total).
  std::size_t active_shards() const;
  /// Autoscaler hook: folds a control-loop counter (autoscaler.*) into
  /// the router registry so it exports with the cluster families.
  void add_counter(const std::string& name, std::uint64_t delta = 1);
  /// The flight recorder the fleet shares (options().flight_recorder);
  /// null when none was configured. The autoscaler records through this.
  obs::FlightRecorder* flight_recorder() const { return options_.flight_recorder; }
  /// Adaptive admission observability (0 / 0 when the limiter is off).
  std::size_t concurrency_limit() const;
  std::size_t limiter_in_flight() const;

  /// Walks shards in index order through the reload state machine; halts
  /// on the first non-promoted outcome and (by default) reverts the
  /// already-promoted prefix. Waves are serialized against each other.
  RollingReloadReport rolling_reload(const serve::ModelStore& store, std::uint64_t gen,
                                     const RollingReloadOptions& opts = {});

  // --- Chaos controls (tests/cluster, tools/chaos.sh) ------------------

  /// Abrupt shard death: immediate shutdown with zero drain budget.
  /// The router is told nothing — its breaker must discover the loss.
  void kill_shard(std::size_t shard);
  /// Cuts (or heals) the router->shard link: dispatches and probes fail
  /// with ResourceError while partitioned. The shard process keeps
  /// running untouched.
  void set_partitioned(std::size_t shard, bool partitioned);

  /// Active slots (equals the constructed num_shards until a scale op).
  std::size_t num_shards() const { return active_shards(); }
  /// Active shards that are alive, reachable, and have a Closed breaker.
  std::size_t available_shards() const;
  serve::CircuitState shard_breaker_state(std::size_t shard) const;
  /// The server in slot `shard`; throws when the slot never held one.
  serve::ForestServer& shard(std::size_t shard);

  ClusterStats stats() const;
  /// Per-stage latency merged across every shard.
  serve::LatencyStats latency() const;
  /// Router-observed end-to-end latency of successful query() calls
  /// (queueing + execution + failover + hedging — what a client sees).
  HistogramSnapshot route_latency() const;
  /// The hedge delay the next request would use.
  double hedge_delay_seconds() const;
  /// Fleet-level snapshot: summed shard counters plus the router's own
  /// cluster.* counters, merged histograms (with the extra "route"
  /// stage), merged rollups, summed tracer stats, cluster gauges, and
  /// one ShardHealth row per shard. check_metrics_schema-clean.
  obs::MetricsSnapshot metrics_snapshot() const;

  const ClusterOptions& options() const { return options_; }

  /// Stops the probe loop, then drains every shard. Idempotent.
  void shutdown();

 private:
  /// One fleet slot. Slots outlive the servers they hold: a scale_down()
  /// drains and parks the server object, a later scale_up() installs a
  /// fresh one. `mu` guards the server pointer swap; readers take a
  /// shared_ptr snapshot and never hold the lock across a dispatch.
  struct Shard {
    mutable std::mutex mu;
    std::shared_ptr<serve::ForestServer> server;  // null = slot never activated
    std::unique_ptr<serve::CircuitBreaker> breaker;
    std::atomic<bool> active{false};
    std::atomic<bool> alive{true};
    std::atomic<bool> partitioned{false};
    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> failures{0};
  };

  struct Attempt {
    std::size_t shard = 0;
    std::future<serve::ServeResult> fut;
  };

  using MakeServer =
      std::function<std::unique_ptr<serve::ForestServer>(const serve::ServerOptions&)>;

  void init_shards(const ClassifierOptions& classifier_options,
                   const serve::ServerOptions& shard_options, MakeServer make_server);
  /// Per-shard options for slot `s` (distinct jitter seed per slot).
  serve::ServerOptions slot_options(std::size_t s) const;
  /// Lock-free-ish read of a slot's server (snapshot under the slot mu).
  std::shared_ptr<serve::ForestServer> server_of(std::size_t s) const;
  /// Slot ids currently active, ascending.
  std::vector<std::size_t> active_ids() const;
  bool routable(std::size_t shard) const;
  std::vector<std::size_t> candidate_order(std::uint64_t key) const;
  /// Dispatches to one shard. Consults crash:route and the partition
  /// flag for client dispatches only (probes must not spend chaos
  /// charges armed for clients — fired counts stay deterministic).
  std::future<serve::ServeResult> dispatch(std::size_t shard, const Dataset& queries,
                                           const QueryOptions& qopt, bool is_probe,
                                           std::uint64_t router_request = 0);
  /// query() minus the admission limiter (which wraps it).
  ClusterResult query_routed(const Dataset& queries, const QueryOptions& qopt);
  void shard_failed(std::size_t shard);
  /// Router-level event into options_.flight_recorder (no-op when null).
  void flight_event(const char* category, const char* name, std::string scope,
                    std::string detail = "") const;
  void probe_loop();
  void probe_shard(std::size_t shard);
  double effective_hedge_delay() const;

  ClusterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;  // max_shards slots, fixed size
  serve::ServerOptions shard_options_;          // base per-shard options
  MakeServer make_server_;                      // builds a server for scale_up()
  serve::AdaptiveLimiter limiter_;
  CounterRegistry counters_;
  LatencyHistogram hist_route_;
  Dataset probe_queries_;
  /// Router-assigned query ids ("router_request" span attribute); starts
  /// at 1 so 0 always means "not router-dispatched".
  std::atomic<std::uint64_t> next_request_id_{1};

  std::mutex scale_mu_;   // serializes scale_up()/scale_down()
  std::mutex reload_mu_;  // serializes rolling-reload waves

  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  std::thread probe_thread_;
};

}  // namespace hrf::cluster
