#pragma once

// Fault-tolerant sharded serving (docs/cluster.md).
//
// A ClusterRouter fronts N ForestServer shards and keeps answering while
// individual shards die, stall, or reload:
//
//   routing    consistent-hash (rendezvous order on the query key) or
//              least-loaded (ascending queue depth); either policy skips
//              shards whose router-side breaker is not Closed
//   breakers   one CircuitBreaker per shard *in the router*, distinct
//              from each server's in-process breaker: the server breaker
//              guards its accelerator backend, the router breaker guards
//              the dispatch path to the whole shard (kill, partition,
//              overload) — fed by client outcomes and by the probe loop
//   probes     a background loop sends a 1-row synthetic request to every
//              shard each interval; successes close recovered breakers,
//              timeouts/failures keep sick shards quarantined
//   failover   a failed attempt moves to the next candidate shard, up to
//              max_failovers extra attempts per request
//   hedging    when a request outlives the hedge delay — derived from
//              the router's observed p95, floored at HedgeOptions::
//              min_seconds — a second attempt is launched on the next
//              candidate shard and the first answer wins
//   reload     rolling_reload() walks the fleet one shard at a time
//              through the serve/reload state machine and, if any shard
//              rejects or rolls back, halts the wave and reverts the
//              already-promoted shards to the generation they ran before
//
// Chaos sites: `crash:route` (util/fault) fails a client dispatch at the
// router->shard link; `freeze:shard` stalls a shard worker mid-dispatch.
// tools/chaos.sh and tests/cluster drive both against the degraded-mode
// SLOs in docs/cluster.md.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.hpp"
#include "serve/server.hpp"

namespace hrf::cluster {

enum class RoutingPolicy { ConsistentHash, LeastLoaded };

const char* to_string(RoutingPolicy p);
/// Parses "hash" / "consistent-hash" / "least-loaded"; throws ConfigError.
RoutingPolicy routing_policy_from_name(const std::string& name);

/// Rendezvous (highest-random-weight) candidate order for `key` over
/// `num_shards` shards: shards sorted by a per-(key, shard) hash score.
/// Deterministic given (key, salt), and removing one shard only remaps
/// the keys that ranked it first — the property that keeps cache-warm
/// shards warm across fleet resizes. Free function so tests can pin
/// stability, balance, and minimal-disruption directly.
std::vector<std::size_t> rendezvous_order(std::uint64_t key, std::size_t num_shards,
                                          std::uint64_t salt = 0);

struct HedgeOptions {
  bool enabled = true;
  /// Hedge delay floor (CLI --hedge-ms); also used verbatim until the
  /// router has min_samples completed requests to derive a p95 from.
  double min_seconds = 0.01;
  /// Hedge once a request has been in flight p95_multiplier * p95.
  double p95_multiplier = 2.0;
  /// Completed requests before the observed p95 is trusted.
  std::uint64_t min_samples = 32;
};

struct ClusterOptions {
  std::size_t num_shards = 2;
  RoutingPolicy policy = RoutingPolicy::ConsistentHash;
  /// Extra shards tried after a failed attempt (bounded cross-shard
  /// retry); the hedge attempt draws from the same candidate list but
  /// has its own single-shot budget.
  int max_failovers = 2;
  HedgeOptions hedge{};
  /// Router-side per-shard breaker. Defaults trip faster and cool down
  /// quicker than the in-server breaker: a dead shard should be
  /// quarantined within a few requests, and the probe loop (not client
  /// traffic) pays for recovery checks.
  serve::CircuitBreakerOptions shard_breaker{.failure_threshold = 3, .open_seconds = 0.1};
  /// Health probe loop cadence and the probe request's deadline. The
  /// probe loop never blocks on a wedged shard longer than the deadline
  /// plus a small margin — it abandons the future and counts a failure.
  double probe_interval_seconds = 0.02;
  double probe_deadline_seconds = 0.25;
  /// Tests that need full determinism turn the probe loop off.
  bool start_probes = true;
  /// Salt folded into rendezvous hashing (fleet identity).
  std::uint64_t hash_salt = 0x9e3779b97f4a7c15ULL;
};

/// Per-request routing inputs.
struct QueryOptions {
  std::uint64_t key = 0;          // routing key (consistent-hash policy)
  double deadline_seconds = 0.0;  // per-attempt deadline; <= 0 = none
};

/// One routed request's outcome.
struct ClusterResult {
  serve::ServeResult result;
  std::size_t shard = 0;   // shard that answered
  int failovers = 0;       // attempts rerouted past a failed shard
  bool hedged = false;     // a hedge attempt was launched
  bool hedge_won = false;  // ... and it answered first
};

struct ShardStatus {
  std::size_t index = 0;
  bool alive = true;
  bool partitioned = false;
  serve::CircuitState breaker = serve::CircuitState::Closed;
  std::size_t queue_depth = 0;
  std::uint64_t generation = 0;
  std::uint64_t routed = 0;    // requests dispatched to this shard
  std::uint64_t failures = 0;  // dispatch failures the router observed
};

struct ClusterStats {
  std::size_t shards = 0;
  std::size_t available = 0;  // alive, reachable, breaker Closed
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t failovers = 0;
  std::uint64_t hedged = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t no_shard_available = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t reload_waves = 0;
  std::uint64_t reload_waves_halted = 0;
  std::uint64_t shard_rollbacks = 0;
  std::vector<ShardStatus> shard_status;
};

struct RollingReloadOptions {
  /// Per-shard reload options (shadow/canary/watch phases).
  serve::ReloadOptions reload{};
  /// Revert already-promoted shards to their wave-entry generation when
  /// the wave halts, most recently promoted first.
  bool rollback_wave = true;
};

struct ShardReload {
  std::size_t shard = 0;
  serve::ReloadReport report;
};

/// What one rolling-reload wave accomplished.
struct RollingReloadReport {
  std::uint64_t to_generation = 0;
  bool completed = false;  // every shard promoted (or was already current)
  std::string reason;      // why the wave halted; empty when completed
  std::vector<ShardReload> shards;     // reload attempts in wave order
  std::vector<ShardReload> rollbacks;  // wave-rollback reverts, reverse order
  double total_seconds = 0.0;

  std::string to_string() const;
};

/// Routes requests across a fleet of in-process ForestServer shards.
/// Thread-safe: query(), chaos controls, snapshots, and rolling_reload()
/// may be called concurrently from any thread.
class ClusterRouter {
 public:
  /// Every shard serves replicas built from the same (forest, options).
  ClusterRouter(const Forest& forest, const ClassifierOptions& classifier_options,
                const serve::ServerOptions& shard_options, const ClusterOptions& options);
  /// Every shard serves the store's current generation and stays
  /// reload()-able (what rolling_reload() requires for rollback).
  ClusterRouter(const serve::ModelStore& store, const ClassifierOptions& classifier_options,
                const serve::ServerOptions& shard_options, const ClusterOptions& options);
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Routes one request: candidate order by policy, bounded failover,
  /// one hedge attempt after the hedge delay. Throws the last shard
  /// error when every attempt failed, OverloadError when no shard was
  /// routable at all, ShutdownError after shutdown().
  ClusterResult query(const Dataset& queries, const QueryOptions& qopt = {});

  /// Walks shards in index order through the reload state machine; halts
  /// on the first non-promoted outcome and (by default) reverts the
  /// already-promoted prefix. Waves are serialized against each other.
  RollingReloadReport rolling_reload(const serve::ModelStore& store, std::uint64_t gen,
                                     const RollingReloadOptions& opts = {});

  // --- Chaos controls (tests/cluster, tools/chaos.sh) ------------------

  /// Abrupt shard death: immediate shutdown with zero drain budget.
  /// The router is told nothing — its breaker must discover the loss.
  void kill_shard(std::size_t shard);
  /// Cuts (or heals) the router->shard link: dispatches and probes fail
  /// with ResourceError while partitioned. The shard process keeps
  /// running untouched.
  void set_partitioned(std::size_t shard, bool partitioned);

  std::size_t num_shards() const { return shards_.size(); }
  /// Shards that are alive, reachable, and have a Closed breaker.
  std::size_t available_shards() const;
  serve::CircuitState shard_breaker_state(std::size_t shard) const;
  serve::ForestServer& shard(std::size_t shard);

  ClusterStats stats() const;
  /// Per-stage latency merged across every shard.
  serve::LatencyStats latency() const;
  /// Router-observed end-to-end latency of successful query() calls
  /// (queueing + execution + failover + hedging — what a client sees).
  HistogramSnapshot route_latency() const;
  /// The hedge delay the next request would use.
  double hedge_delay_seconds() const;
  /// Fleet-level snapshot: summed shard counters plus the router's own
  /// cluster.* counters, merged histograms (with the extra "route"
  /// stage), merged rollups, summed tracer stats, cluster gauges, and
  /// one ShardHealth row per shard. check_metrics_schema-clean.
  obs::MetricsSnapshot metrics_snapshot() const;

  const ClusterOptions& options() const { return options_; }

  /// Stops the probe loop, then drains every shard. Idempotent.
  void shutdown();

 private:
  struct Shard {
    std::unique_ptr<serve::ForestServer> server;
    std::unique_ptr<serve::CircuitBreaker> breaker;
    std::atomic<bool> alive{true};
    std::atomic<bool> partitioned{false};
    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> failures{0};
  };

  struct Attempt {
    std::size_t shard = 0;
    std::future<serve::ServeResult> fut;
  };

  void init_shards(const ClassifierOptions& classifier_options,
                   const serve::ServerOptions& shard_options,
                   const std::function<std::unique_ptr<serve::ForestServer>(
                       const serve::ServerOptions&)>& make_server);
  bool routable(std::size_t shard) const;
  std::vector<std::size_t> candidate_order(std::uint64_t key) const;
  /// Dispatches to one shard. Consults crash:route and the partition
  /// flag for client dispatches only (probes must not spend chaos
  /// charges armed for clients — fired counts stay deterministic).
  std::future<serve::ServeResult> dispatch(std::size_t shard, const Dataset& queries,
                                           double deadline_seconds, bool is_probe);
  void shard_failed(std::size_t shard);
  void probe_loop();
  void probe_shard(std::size_t shard);
  double effective_hedge_delay() const;

  ClusterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  CounterRegistry counters_;
  LatencyHistogram hist_route_;
  Dataset probe_queries_;

  std::mutex reload_mu_;  // serializes rolling-reload waves

  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;
  bool shutdown_done_ = false;
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  std::thread probe_thread_;
};

}  // namespace hrf::cluster
