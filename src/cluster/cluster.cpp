#include "cluster/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "serve/model_store.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hrf::cluster {

namespace {

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(std::max(0.0, seconds)));
}

/// Router-side shard breaker options with a transition -> flight
/// recorder bridge attached (scope "shard:N", names router_breaker_*,
/// distinct from the in-server breaker_* events).
serve::CircuitBreakerOptions wire_router_breaker(serve::CircuitBreakerOptions breaker,
                                                 obs::FlightRecorder* recorder,
                                                 std::size_t shard) {
  if (recorder != nullptr && !breaker.on_transition) {
    breaker.on_transition = [recorder, scope = "shard:" + std::to_string(shard)](
                                serve::CircuitState from, serve::CircuitState to) {
      const char* name = to == serve::CircuitState::Open      ? "router_breaker_open"
                         : to == serve::CircuitState::HalfOpen ? "router_breaker_probe"
                                                                : "router_breaker_closed";
      recorder->record("breaker", name, scope,
                       std::string(serve::to_string(from)) + " -> " + serve::to_string(to));
    };
  }
  return breaker;
}

/// The probe request: one all-zeros row. Predictions are irrelevant —
/// the probe only proves the dispatch path and a worker are alive.
Dataset make_probe_queries(std::size_t num_features, int num_classes) {
  Dataset d(1, num_features, num_classes);
  const std::vector<float> row(num_features, 0.0f);
  d.push_back(row, 0);
  d.set_name("cluster-probe");
  return d;
}

}  // namespace

const char* to_string(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::ConsistentHash: return "consistent-hash";
    case RoutingPolicy::LeastLoaded: return "least-loaded";
  }
  return "?";
}

RoutingPolicy routing_policy_from_name(const std::string& name) {
  if (name == "hash" || name == "consistent-hash") return RoutingPolicy::ConsistentHash;
  if (name == "least-loaded") return RoutingPolicy::LeastLoaded;
  throw ConfigError("unknown routing policy '" + name +
                    "' (expected consistent-hash|hash|least-loaded)");
}

std::vector<std::size_t> rendezvous_order_subset(std::uint64_t key,
                                                 const std::vector<std::size_t>& shard_ids,
                                                 std::uint64_t salt) {
  std::vector<std::pair<std::uint64_t, std::size_t>> scored;
  scored.reserve(shard_ids.size());
  for (const std::size_t s : shard_ids) {
    // SplitMix64 finalization over (key, salt, shard) gives each pair an
    // independent uniform score; the shard ranking is the sorted order.
    // The score depends only on (key, salt, s) — never on which other
    // ids are in the subset — which is the whole minimal-disruption
    // argument: resizing the set cannot reorder the survivors.
    SplitMix64 mix(key ^ (salt + 0x9e3779b97f4a7c15ULL * (s + 1)));
    scored.emplace_back(mix.next(), s);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;  // highest score first
    return a.second < b.second;
  });
  std::vector<std::size_t> order;
  order.reserve(scored.size());
  for (const auto& [score, s] : scored) order.push_back(s);
  return order;
}

std::vector<std::size_t> rendezvous_order(std::uint64_t key, std::size_t num_shards,
                                          std::uint64_t salt) {
  std::vector<std::size_t> ids(num_shards);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  return rendezvous_order_subset(key, ids, salt);
}

std::string RollingReloadReport::to_string() const {
  std::string out = "rolling reload -> gen " + std::to_string(to_generation) + ": ";
  out += completed ? "completed" : "HALTED";
  out += " after " + std::to_string(shards.size()) + " shard(s)";
  if (!completed) out += " (" + reason + ")";
  if (!rollbacks.empty()) {
    out += "; rolled back " + std::to_string(rollbacks.size()) + " promoted shard(s)";
  }
  for (const ShardReload& sr : shards) {
    out += "\n  shard " + std::to_string(sr.shard) + ": " + sr.report.to_string();
  }
  for (const ShardReload& sr : rollbacks) {
    out += "\n  rollback shard " + std::to_string(sr.shard) + ": " + sr.report.to_string();
  }
  return out;
}

ClusterRouter::ClusterRouter(const Forest& forest, const ClassifierOptions& classifier_options,
                             const serve::ServerOptions& shard_options,
                             const ClusterOptions& options)
    : options_(options),
      limiter_(options.limit),
      probe_queries_(make_probe_queries(forest.num_features(), forest.num_classes())) {
  // The factory outlives this constructor (scale_up() replays it), so it
  // owns a copy of the model instead of borrowing the caller's.
  auto model = std::make_shared<const Forest>(forest);
  init_shards(classifier_options, shard_options,
              [model, classifier_options](const serve::ServerOptions& per_shard) {
                return std::make_unique<serve::ForestServer>(*model, classifier_options,
                                                             per_shard);
              });
}

ClusterRouter::ClusterRouter(const serve::ModelStore& store,
                             const ClassifierOptions& classifier_options,
                             const serve::ServerOptions& shard_options,
                             const ClusterOptions& options)
    : options_(options), limiter_(options.limit) {
  {
    // One load up front for the probe shape; each shard loads its own
    // copy through the store constructor so it stays reload()-able.
    const std::optional<std::uint64_t> current = store.current();
    require(current.has_value(), "cluster: model store has no complete generation");
    const serve::LoadedModel model = store.load(*current);
    probe_queries_ =
        make_probe_queries(model.forest.num_features(), model.forest.num_classes());
  }
  // The store is captured by reference: it must outlive the router (the
  // same lifetime rolling_reload() already requires).
  init_shards(classifier_options, shard_options,
              [&store, classifier_options](const serve::ServerOptions& per_shard) {
                return std::make_unique<serve::ForestServer>(store, classifier_options,
                                                             per_shard);
              });
}

void ClusterRouter::init_shards(const ClassifierOptions& /*classifier_options*/,
                                const serve::ServerOptions& shard_options,
                                MakeServer make_server) {
  require(options_.num_shards >= 1, "cluster needs at least one shard");
  if (options_.max_shards == 0) options_.max_shards = options_.num_shards;
  require(options_.max_shards >= options_.num_shards,
          "cluster max_shards must be >= num_shards");
  require(options_.max_failovers >= 0, "cluster max_failovers must be >= 0");
  require(options_.hedge.min_seconds >= 0.0, "cluster hedge min_seconds must be >= 0");
  require(options_.hedge.p95_multiplier > 0.0, "cluster hedge p95_multiplier must be > 0");
  require(options_.probe_interval_seconds > 0.0, "cluster probe_interval_seconds must be > 0");
  require(options_.probe_deadline_seconds > 0.0, "cluster probe_deadline_seconds must be > 0");

  shard_options_ = shard_options;
  make_server_ = std::move(make_server);
  // All max_shards slots exist for the router's whole life (stable slot
  // ids keep rendezvous scores stable); only the first num_shards get a
  // server now — the rest wait for scale_up().
  shards_.reserve(options_.max_shards);
  for (std::size_t s = 0; s < options_.max_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->breaker = std::make_unique<serve::CircuitBreaker>(
        wire_router_breaker(options_.shard_breaker, options_.flight_recorder, s));
    if (s < options_.num_shards) {
      shard->server = make_server_(slot_options(s));
      shard->active.store(true, std::memory_order_release);
    }
    shards_.push_back(std::move(shard));
  }
  if (options_.start_probes) {
    probe_thread_ = std::thread([this] { probe_loop(); });
  }
}

serve::ServerOptions ClusterRouter::slot_options(std::size_t s) const {
  serve::ServerOptions per_shard = shard_options_;
  // Distinct jitter streams per slot, same reproducibility per seed.
  per_shard.seed = shard_options_.seed + 7919 * s;
  // Every shard server shares the fleet's flight recorder; its scope
  // names the slot so bundle readers can tell shards apart.
  per_shard.flight_recorder = options_.flight_recorder;
  per_shard.flight_scope = "shard:" + std::to_string(s);
  return per_shard;
}

void ClusterRouter::flight_event(const char* category, const char* name, std::string scope,
                                 std::string detail) const {
  if (options_.flight_recorder != nullptr) {
    options_.flight_recorder->record(category, name, std::move(scope), std::move(detail));
  }
}

std::shared_ptr<serve::ForestServer> ClusterRouter::server_of(std::size_t s) const {
  std::lock_guard<std::mutex> lock(shards_[s]->mu);
  return shards_[s]->server;
}

std::vector<std::size_t> ClusterRouter::active_ids() const {
  std::vector<std::size_t> ids;
  ids.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s]->active.load(std::memory_order_acquire)) ids.push_back(s);
  }
  return ids;
}

std::size_t ClusterRouter::active_shards() const { return active_ids().size(); }

ClusterRouter::~ClusterRouter() {
  try {
    shutdown();
  } catch (...) {  // NOLINT(bugprone-empty-catch): destructor must not throw
  }
}

void ClusterRouter::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shutdown_done_) return;
  shutdown_done_ = true;
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> probe_lock(probe_mu_);
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::shared_ptr<serve::ForestServer> server = server_of(s);
    if (server) server->shutdown();
  }
}

bool ClusterRouter::scale_up() {
  std::lock_guard<std::mutex> lock(scale_mu_);
  if (stopping_.load(std::memory_order_acquire)) return false;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    if (sh.active.load(std::memory_order_acquire)) continue;
    // A previously drained slot's server is shut down for good — build a
    // fresh one, and a fresh breaker so drain-era failures don't
    // quarantine the newcomer.
    std::unique_ptr<serve::ForestServer> server = make_server_(slot_options(s));
    {
      std::lock_guard<std::mutex> slot_lock(sh.mu);
      sh.server = std::move(server);
    }
    sh.breaker = std::make_unique<serve::CircuitBreaker>(
        wire_router_breaker(options_.shard_breaker, options_.flight_recorder, s));
    sh.alive.store(true, std::memory_order_release);
    sh.partitioned.store(false, std::memory_order_release);
    // Publish last: candidate orders only list the slot once the server
    // and breaker above are in place.
    sh.active.store(true, std::memory_order_release);
    counters_.add("cluster.scale_ups");
    flight_event("cluster", "scale_up", "shard:" + std::to_string(s));
    return true;
  }
  return false;  // every slot already active
}

std::optional<serve::DrainReport> ClusterRouter::scale_down() {
  std::lock_guard<std::mutex> lock(scale_mu_);
  if (stopping_.load(std::memory_order_acquire)) return std::nullopt;
  const std::vector<std::size_t> ids = active_ids();
  if (ids.size() <= 1) return std::nullopt;  // never scale to zero
  Shard& sh = *shards_[ids.back()];
  // Deactivate first: new candidate orders stop listing the slot, then
  // the graceful drain finishes what already reached it. A racing
  // dispatch that slips in shuts out with ShutdownError and fails over —
  // the client request still completes elsewhere.
  sh.active.store(false, std::memory_order_release);
  const std::shared_ptr<serve::ForestServer> server = server_of(ids.back());
  counters_.add("cluster.scale_downs");
  flight_event("cluster", "scale_down", "shard:" + std::to_string(ids.back()));
  return server->shutdown();
}

void ClusterRouter::add_counter(const std::string& name, std::uint64_t delta) {
  counters_.add(name, delta);
}

std::size_t ClusterRouter::concurrency_limit() const {
  return limiter_.options().enabled ? limiter_.limit() : 0;
}

std::size_t ClusterRouter::limiter_in_flight() const {
  return limiter_.options().enabled ? limiter_.in_flight() : 0;
}

bool ClusterRouter::routable(std::size_t shard) const {
  // state() does not consume probe charges: client traffic only rides
  // shards the probe loop (or a prior client probe) has proven; the
  // Open -> HalfOpen recovery transition belongs to probe_shard().
  return shards_[shard]->breaker->state() == serve::CircuitState::Closed;
}

std::vector<std::size_t> ClusterRouter::candidate_order(std::uint64_t key) const {
  const std::vector<std::size_t> ids = active_ids();
  if (options_.policy == RoutingPolicy::ConsistentHash) {
    return rendezvous_order_subset(key, ids, options_.hash_salt);
  }
  // Least-loaded: ascending queue depth, index as the deterministic tie
  // break. Depths are sampled once per request — racy by nature, but a
  // stale read only costs a slightly suboptimal choice.
  std::vector<std::pair<std::size_t, std::size_t>> load;
  load.reserve(ids.size());
  for (const std::size_t s : ids) {
    const std::shared_ptr<serve::ForestServer> server = server_of(s);
    if (!server) continue;  // deactivating race: the slot is on its way out
    load.emplace_back(server->queue_depth(), s);
  }
  std::sort(load.begin(), load.end());
  std::vector<std::size_t> order;
  order.reserve(load.size());
  for (const auto& [depth, s] : load) order.push_back(s);
  return order;
}

std::future<serve::ServeResult> ClusterRouter::dispatch(std::size_t shard, const Dataset& queries,
                                                        const QueryOptions& qopt, bool is_probe,
                                                        std::uint64_t router_request) {
  Shard& sh = *shards_[shard];
  if (!is_probe) fault_point("crash:route");
  if (sh.partitioned.load(std::memory_order_acquire)) {
    throw ResourceError("cluster: shard " + std::to_string(shard) +
                        " unreachable (network partition)");
  }
  const std::shared_ptr<serve::ForestServer> server = server_of(shard);
  if (!server) {
    throw ResourceError("cluster: shard " + std::to_string(shard) + " has no server");
  }
  // <= 0 falls back to the server's own default deadline, matching a
  // direct submit(queries) call.
  const double deadline = qopt.deadline_seconds > 0.0
                              ? qopt.deadline_seconds
                              : server->options().default_deadline_seconds;
  return server->submit(queries, deadline, qopt.tenant, router_request);
}

void ClusterRouter::shard_failed(std::size_t shard) {
  shards_[shard]->failures.fetch_add(1, std::memory_order_relaxed);
  shards_[shard]->breaker->record_failure();
}

ClusterResult ClusterRouter::query(const Dataset& queries, const QueryOptions& qopt) {
  if (stopping_.load(std::memory_order_acquire)) {
    throw ShutdownError("cluster router is shut down");
  }
  // Adaptive admission first: a refused request never touches a shard
  // queue, so overload is shed at the cheapest possible point.
  if (!limiter_.try_acquire()) {
    counters_.add("cluster.limited");
    throw OverloadError("cluster: adaptive concurrency limit reached (limit " +
                        std::to_string(limiter_.limit()) + ", in flight " +
                        std::to_string(limiter_.in_flight()) + "); back off and retry");
  }
  WallTimer limiter_timer;
  try {
    ClusterResult out = query_routed(queries, qopt);
    limiter_.release(limiter_timer.seconds(), /*deadline_expired=*/false);
    return out;
  } catch (const DeadlineError&) {
    // A blown deadline is the AIMD backoff signal even when the p95
    // epoch has not filled yet.
    limiter_.release(limiter_timer.seconds(), /*deadline_expired=*/true);
    throw;
  } catch (...) {
    limiter_.release(limiter_timer.seconds(), /*deadline_expired=*/false);
    throw;
  }
}

ClusterResult ClusterRouter::query_routed(const Dataset& queries, const QueryOptions& qopt) {
  counters_.add("cluster.submitted");
  WallTimer request_timer;
  const std::vector<std::size_t> order = candidate_order(qopt.key);

  ClusterResult out;
  out.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  std::size_t next = 0;
  int started = 0;
  int quota_sheds = 0;
  const int budget = 1 + options_.max_failovers;
  std::exception_ptr last_error;

  // Starts an attempt on the next routable untried candidate. A dispatch
  // that throws (partition, crash:route, overload, shutdown) feeds the
  // shard breaker and moves on — it consumed a budget slot, matching the
  // "bounded cross-shard retry" contract.
  const auto next_attempt = [&]() -> std::optional<Attempt> {
    while (next < order.size() && started < budget) {
      const std::size_t s = order[next++];
      if (!routable(s)) continue;
      ++started;
      try {
        Attempt a{s, dispatch(s, queries, qopt, /*is_probe=*/false, out.request_id)};
        shards_[s]->routed.fetch_add(1, std::memory_order_relaxed);
        return a;
      } catch (const QuotaError&) {
        // The shard is healthy — this tenant is over its admission
        // quota. No breaker verdict and no failover count (nothing
        // failed), but the attempt still spent a budget slot: another
        // shard may have spare capacity for the tenant.
        last_error = std::current_exception();
        ++quota_sheds;
        counters_.add("cluster.quota_shed");
      } catch (const Error&) {
        // A reroute past a shard that refused the dispatch (dead,
        // partitioned, overloaded) is a failover the operator should see,
        // same as a started-then-failed attempt.
        last_error = std::current_exception();
        shard_failed(s);
        ++out.failovers;
        counters_.add("cluster.failovers");
        flight_event("cluster", "failover", "shard:" + std::to_string(s),
                     "dispatch refused");
      }
    }
    return std::nullopt;
  };

  std::optional<Attempt> primary = next_attempt();
  if (!primary) {
    counters_.add("cluster.no_shard_available");
    counters_.add("cluster.failed");
    if (last_error) std::rethrow_exception(last_error);
    throw OverloadError("cluster: no routable shard (all breakers open)");
  }

  std::optional<Attempt> hedge;
  bool hedge_spent = false;
  WallTimer hedge_timer;
  const double hedge_delay = options_.hedge.enabled ? effective_hedge_delay() : -1.0;

  while (primary || hedge) {
    if (primary && !hedge_spent && hedge_delay >= 0.0 &&
        hedge_timer.seconds() >= hedge_delay) {
      // One hedge per request, win or lose: hedging is a tail-latency
      // device, not extra retry budget.
      hedge_spent = true;
      hedge = next_attempt();
      if (hedge) {
        out.hedged = true;
        counters_.add("cluster.hedged");
        flight_event("cluster", "hedge_started", "shard:" + std::to_string(hedge->shard));
      }
    }

    for (std::optional<Attempt>* slot : {&primary, &hedge}) {
      if (!slot->has_value()) continue;
      const bool is_hedge = (slot == &hedge);
      Attempt& att = **slot;
      // Short poll slices keep the hedge timer honest while waiting.
      if (att.fut.wait_for(std::chrono::microseconds(500)) != std::future_status::ready) {
        continue;
      }
      try {
        out.result = att.fut.get();
        out.shard = att.shard;
        out.hedge_won = is_hedge;
        // A shed-then-served request is a degraded success: the tenant
        // was over quota somewhere, and the caller should see that in
        // the same trail as backend fallbacks — distinct from overload.
        if (quota_sheds > 0) {
          out.result.report.degradations.push_back(
              "cluster: tenant '" + qopt.tenant + "' quota-shed at " +
              std::to_string(quota_sheds) + " shard(s) -> served by shard " +
              std::to_string(att.shard));
        }
        shards_[att.shard]->breaker->record_success();
        counters_.add("cluster.completed");
        if (is_hedge) counters_.add("cluster.hedge_wins");
        // The other attempt (if any) is abandoned: its outcome is
        // unknown, so the breaker hears nothing about it.
        hist_route_.record_seconds(request_timer.seconds());
        return out;
      } catch (const DeadlineError&) {
        // Not a shard-health verdict — but a HalfOpen probe admission
        // must still be resolved (see CircuitBreaker::record_timeout).
        shards_[att.shard]->breaker->record_timeout();
        shards_[att.shard]->failures.fetch_add(1, std::memory_order_relaxed);
        last_error = std::current_exception();
      } catch (const Error&) {
        shard_failed(att.shard);
        last_error = std::current_exception();
      }
      const std::size_t failed_shard = att.shard;
      slot->reset();
      if (!is_hedge) {
        primary = next_attempt();
        if (primary) {
          ++out.failovers;
          counters_.add("cluster.failovers");
          flight_event("cluster", "failover", "shard:" + std::to_string(failed_shard),
                       "attempt failed -> shard:" + std::to_string(primary->shard));
          hedge_timer.reset();  // the hedge clock restarts with the attempt
        }
      }
    }
  }

  counters_.add("cluster.failed");
  if (last_error) std::rethrow_exception(last_error);
  throw OverloadError("cluster: request failed with no shard available");
}

RollingReloadReport ClusterRouter::rolling_reload(const serve::ModelStore& store,
                                                  std::uint64_t gen,
                                                  const RollingReloadOptions& opts) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  WallTimer timer;
  counters_.add("cluster.reload_waves");
  RollingReloadReport rep;
  rep.to_generation = gen;

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]->active.load(std::memory_order_acquire)) continue;
    const std::shared_ptr<serve::ForestServer> server = server_of(s);
    if (!server) continue;
    serve::ReloadReport r = server->reload(store, gen, opts.reload);
    const bool ok = r.promoted() || r.outcome == serve::ReloadOutcome::NoOp;
    rep.shards.push_back({s, std::move(r)});
    if (ok) continue;

    const serve::ReloadReport& bad = rep.shards.back().report;
    rep.reason = "shard " + std::to_string(s) + ": " +
                 (bad.reason.empty() ? std::string(serve::to_string(bad.outcome)) : bad.reason);
    counters_.add("cluster.reload_waves_halted");
    flight_event("reload", "wave_halted", "shard:" + std::to_string(s), rep.reason);
    if (opts.rollback_wave) {
      // Most recently promoted shard reverts first, so at every instant
      // the fleet is a contiguous mix of exactly two generations.
      for (std::size_t i = rep.shards.size() - 1; i-- > 0;) {
        const ShardReload& done = rep.shards[i];
        if (!done.report.promoted()) continue;
        serve::ReloadOptions rollback = opts.reload;
        // The wave-entry generation already proved itself in production;
        // a canary would stall the revert waiting for client traffic.
        rollback.canary_success_requests = 0;
        rollback.post_promotion_watch_requests = 0;
        serve::ReloadReport undo =
            server_of(done.shard)->reload(store, done.report.from_generation, rollback);
        counters_.add("cluster.shard_rollbacks");
        flight_event("reload", "shard_rolled_back", "shard:" + std::to_string(done.shard));
        rep.rollbacks.push_back({done.shard, std::move(undo)});
      }
    }
    rep.total_seconds = timer.seconds();
    return rep;
  }

  rep.completed = true;
  rep.total_seconds = timer.seconds();
  return rep;
}

void ClusterRouter::kill_shard(std::size_t shard) {
  require(shard < shards_.size(), "kill_shard: no such shard");
  const std::shared_ptr<serve::ForestServer> server = server_of(shard);
  require(server != nullptr, "kill_shard: slot has no server");
  shards_[shard]->alive.store(false, std::memory_order_release);
  flight_event("chaos", "shard_killed", "shard:" + std::to_string(shard));
  // Zero drain budget: queued requests fail with ShutdownError, as close
  // to kill -9 as an in-process shard gets.
  server->shutdown(0.0);
}

void ClusterRouter::set_partitioned(std::size_t shard, bool partitioned) {
  require(shard < shards_.size(), "set_partitioned: no such shard");
  shards_[shard]->partitioned.store(partitioned, std::memory_order_release);
}

std::size_t ClusterRouter::available_shards() const {
  std::size_t n = 0;
  for (const std::size_t s : active_ids()) {
    if (shards_[s]->alive.load(std::memory_order_acquire) &&
        !shards_[s]->partitioned.load(std::memory_order_acquire) && routable(s)) {
      ++n;
    }
  }
  return n;
}

serve::CircuitState ClusterRouter::shard_breaker_state(std::size_t shard) const {
  require(shard < shards_.size(), "shard_breaker_state: no such shard");
  return shards_[shard]->breaker->state();
}

serve::ForestServer& ClusterRouter::shard(std::size_t shard) {
  require(shard < shards_.size(), "shard: no such shard");
  const std::shared_ptr<serve::ForestServer> server = server_of(shard);
  require(server != nullptr, "shard: slot has no server");
  return *server;
}

void ClusterRouter::probe_loop() {
  std::unique_lock<std::mutex> lock(probe_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    probe_cv_.wait_for(lock, to_duration(options_.probe_interval_seconds),
                       [this] { return stopping_.load(std::memory_order_acquire); });
    if (stopping_.load(std::memory_order_acquire)) break;
    lock.unlock();
    for (const std::size_t s : active_ids()) probe_shard(s);
    lock.lock();
  }
}

void ClusterRouter::probe_shard(std::size_t shard) {
  Shard& sh = *shards_[shard];
  // allow_request() owns the Open -> HalfOpen transition: while the
  // breaker cools down this returns false and the shard rests.
  if (!sh.breaker->allow_request()) return;
  counters_.add("cluster.probes");
  try {
    QueryOptions probe_qopt;
    probe_qopt.deadline_seconds = options_.probe_deadline_seconds;
    std::future<serve::ServeResult> fut =
        dispatch(shard, probe_queries_, probe_qopt, /*is_probe=*/true);
    // Bounded wait, never .get() on a silent future: a frozen worker
    // holds queued requests past their deadline (shedding happens at
    // dispatch), and an unbounded wait would wedge the probe loop with
    // the shard. Abandoning the future is safe — the promise keeps the
    // shared state alive.
    const auto patience = to_duration(options_.probe_deadline_seconds + 0.05);
    if (fut.wait_for(patience) == std::future_status::ready) {
      fut.get();
      sh.breaker->record_success();
      return;
    }
    sh.breaker->record_failure();
  } catch (const QuotaError&) {
    // Admission answered — the shard is alive, the anonymous probe just
    // lost to quota pressure. Not a health verdict either way, but a
    // HalfOpen probe charge must still be resolved (record_timeout
    // re-opens HalfOpen and is a no-op when Closed). Without this, a
    // noisy neighbor filling the spare pool would trip every breaker
    // through the probe loop and collapse the fleet.
    sh.breaker->record_timeout();
    return;
  } catch (const Error&) {
    sh.breaker->record_failure();
  }
  counters_.add("cluster.probe_failures");
}

double ClusterRouter::effective_hedge_delay() const {
  const HistogramSnapshot snap = hist_route_.snapshot();
  if (snap.total < options_.hedge.min_samples) return options_.hedge.min_seconds;
  const double p95_seconds = snap.percentile_ns(95) / 1e9;
  return std::max(options_.hedge.min_seconds, options_.hedge.p95_multiplier * p95_seconds);
}

double ClusterRouter::hedge_delay_seconds() const { return effective_hedge_delay(); }

HistogramSnapshot ClusterRouter::route_latency() const { return hist_route_.snapshot(); }

serve::LatencyStats ClusterRouter::latency() const {
  serve::LatencyStats merged;
  // All slots that ever held a server, active or not: drained shards'
  // history stays in the fleet view until the slot is reused.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::shared_ptr<serve::ForestServer> server = server_of(s);
    if (!server) continue;
    const serve::LatencyStats one = server->latency();
    merged.queue_wait.merge(one.queue_wait);
    merged.execute.merge(one.execute);
    merged.end_to_end.merge(one.end_to_end);
    merged.reload.merge(one.reload);
  }
  return merged;
}

ClusterStats ClusterRouter::stats() const {
  ClusterStats out;
  out.shards = active_shards();
  out.available = available_shards();
  const std::map<std::string, std::uint64_t> c = counters_.snapshot();
  const auto get = [&](const char* name) {
    const auto it = c.find(name);
    return it == c.end() ? std::uint64_t{0} : it->second;
  };
  out.submitted = get("cluster.submitted");
  out.completed = get("cluster.completed");
  out.failed = get("cluster.failed");
  out.failovers = get("cluster.failovers");
  out.hedged = get("cluster.hedged");
  out.hedge_wins = get("cluster.hedge_wins");
  out.no_shard_available = get("cluster.no_shard_available");
  out.quota_shed = get("cluster.quota_shed");
  out.limited = get("cluster.limited");
  out.scale_ups = get("cluster.scale_ups");
  out.scale_downs = get("cluster.scale_downs");
  out.probes = get("cluster.probes");
  out.probe_failures = get("cluster.probe_failures");
  out.reload_waves = get("cluster.reload_waves");
  out.reload_waves_halted = get("cluster.reload_waves_halted");
  out.shard_rollbacks = get("cluster.shard_rollbacks");
  // Status rows cover the active fleet (index order); drained or
  // never-activated slots are not part of the serving picture.
  for (const std::size_t s : active_ids()) {
    const Shard& sh = *shards_[s];
    const std::shared_ptr<serve::ForestServer> server = server_of(s);
    if (!server) continue;
    ShardStatus st;
    st.index = s;
    st.active = true;
    st.alive = sh.alive.load(std::memory_order_acquire);
    st.partitioned = sh.partitioned.load(std::memory_order_acquire);
    st.breaker = sh.breaker->state();
    st.queue_depth = server->queue_depth();
    st.generation = server->generation();
    st.routed = sh.routed.load(std::memory_order_relaxed);
    st.failures = sh.failures.load(std::memory_order_relaxed);
    const serve::SelfHealStats heal = server->self_heal();
    st.repairs = heal.scrub_repairs;
    st.worker_restarts = heal.watchdog_worker_restarts;
    out.shard_status.push_back(st);
  }
  return out;
}

obs::MetricsSnapshot ClusterRouter::metrics_snapshot() const {
  obs::MetricsSnapshot snap;
  // Zero-fill both catalogues so an idle cluster still exposes the full
  // schema (same contract as ForestServer::metrics_snapshot).
  for (const std::string& name : obs::counter_catalogue()) snap.counters[name] = 0;
  for (const std::string& name : obs::cluster_counter_catalogue()) snap.counters[name] = 0;
  for (const auto& [name, value] : counters_.snapshot()) snap.counters[name] += value;

  serve::LatencyStats lat;
  std::map<obs::RollupKey, obs::BackendRollup> merged_rollups;
  trace::TracerSummary traces{};
  double total_queue_depth = 0.0;
  double total_workers = 0.0;
  double worst_breaker = 0.0;  // in-server breakers, numeric max
  double min_generation = std::numeric_limits<double>::infinity();
  bool any_traces = false;
  // Tenant rows merge across shards by name (each shard runs the same
  // quota config; reserved slots sum to the fleet-wide reservation).
  std::vector<obs::TenantStat> tenants;
  std::map<std::string, std::size_t> tenant_index;

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = *shards_[s];
    const bool active = sh.active.load(std::memory_order_acquire);
    const std::shared_ptr<serve::ForestServer> server = server_of(s);
    // Cumulative series (counters, histograms, rollups, traces, tenant
    // admission counts) sum over every slot that ever served, so totals
    // stay monotonic across a scale_down; instantaneous gauges and the
    // health rows describe only the active fleet.
    if (!server) continue;
    const obs::MetricsSnapshot one = server->metrics_snapshot();
    for (const auto& [name, value] : one.counters) snap.counters[name] += value;
    for (const auto& [stage, hist] : one.histograms) {
      if (stage == "queue_wait") lat.queue_wait.merge(hist);
      if (stage == "execute") lat.execute.merge(hist);
      if (stage == "end_to_end") lat.end_to_end.merge(hist);
      if (stage == "reload") lat.reload.merge(hist);
    }
    for (const auto& [key, rollup] : one.rollups) merged_rollups[key].merge(rollup);
    if (one.has_traces) {
      any_traces = true;
      traces.started += one.traces.started;
      traces.sampled += one.traces.sampled;
      traces.completed += one.traces.completed;
      traces.evicted += one.traces.evicted;
      traces.retained += one.traces.retained;
      traces.sampling = one.traces.sampling;  // uniform fleet config
      traces.capacity += one.traces.capacity;
    }
    for (const obs::TenantStat& t : one.tenants) {
      const auto [it, inserted] = tenant_index.try_emplace(t.name, tenants.size());
      if (inserted) {
        tenants.push_back(t);
        if (!active) {
          // Drained slot: keep the cumulative counts, drop the live ones.
          tenants.back().reserved = 0;
          tenants.back().queued = 0;
        }
        continue;
      }
      obs::TenantStat& row = tenants[it->second];
      row.admitted += t.admitted;
      row.shed += t.shed;
      if (active) {
        row.reserved += t.reserved;
        row.queued += t.queued;
      }
    }
    if (!active) continue;

    const auto g = one.gauges;
    const auto find_gauge = [&](const char* name) {
      const auto it = g.find(name);
      return it == g.end() ? 0.0 : it->second;
    };
    total_queue_depth += find_gauge("queue_depth");
    total_workers += find_gauge("workers");
    worst_breaker = std::max(worst_breaker, find_gauge("breaker_state"));
    min_generation = std::min(min_generation, find_gauge("model_generation"));

    obs::ShardHealth health;
    health.index = s;
    health.up = sh.alive.load(std::memory_order_acquire);
    health.partitioned = sh.partitioned.load(std::memory_order_acquire);
    health.breaker_state = static_cast<int>(sh.breaker->state());
    health.queue_depth = server->queue_depth();
    health.generation = server->generation();
    health.routed = sh.routed.load(std::memory_order_relaxed);
    health.failures = sh.failures.load(std::memory_order_relaxed);
    const serve::SelfHealStats heal = server->self_heal();
    health.repairs = heal.scrub_repairs;
    health.worker_restarts = heal.watchdog_worker_restarts;
    snap.shards.push_back(health);
  }

  snap.tenants = std::move(tenants);
  snap.gauges["queue_depth"] = total_queue_depth;
  snap.gauges["workers"] = total_workers;
  snap.gauges["breaker_state"] = worst_breaker;
  snap.gauges["model_generation"] = std::isfinite(min_generation) ? min_generation : 0.0;
  snap.gauges["cluster_shards"] = static_cast<double>(active_shards());
  snap.gauges["cluster_shards_available"] = static_cast<double>(available_shards());
  snap.gauges["cluster_hedge_delay_seconds"] = effective_hedge_delay();
  snap.gauges["cluster_concurrency_limit"] = static_cast<double>(concurrency_limit());
  snap.gauges["cluster_in_flight"] = static_cast<double>(limiter_in_flight());

  snap.histograms.emplace_back("queue_wait", lat.queue_wait);
  snap.histograms.emplace_back("execute", lat.execute);
  snap.histograms.emplace_back("end_to_end", lat.end_to_end);
  snap.histograms.emplace_back("reload", lat.reload);
  snap.histograms.emplace_back("route", hist_route_.snapshot());

  snap.rollups.assign(merged_rollups.begin(), merged_rollups.end());
  snap.traces = traces;
  snap.has_traces = any_traces;
  // The injector is process-global, so take its counts once here rather
  // than summing per-shard snapshots (which would multiply them).
  snap.fault_fired = FaultInjector::global().fired_counts();
  return snap;
}

}  // namespace hrf::cluster
