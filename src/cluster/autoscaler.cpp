#include "cluster/autoscaler.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace hrf::cluster {

namespace {

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(std::max(0.0, seconds)));
}

double steady_now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ClusterAutoscaler::ClusterAutoscaler(ClusterRouter& router, AutoscalerOptions options,
                                     Clock clock, MetricsSource source)
    : router_(router),
      options_(options),
      clock_(clock ? std::move(clock) : steady_now_seconds),
      source_(std::move(source)) {
  require(options_.min_shards >= 1, "autoscaler min_shards must be >= 1");
  require(options_.max_shards >= options_.min_shards,
          "autoscaler max_shards must be >= min_shards");
  require(options_.evaluation_interval_seconds > 0.0,
          "autoscaler evaluation_interval_seconds must be > 0");
  require(options_.hysteresis_evaluations >= 1, "autoscaler hysteresis_evaluations must be >= 1");
  require(options_.cooldown_seconds >= 0.0, "autoscaler cooldown_seconds must be >= 0");
  require(options_.scale_down_p95_seconds < options_.scale_up_p95_seconds,
          "autoscaler scale_down_p95_seconds must be below scale_up_p95_seconds");
  require(options_.scale_down_queue_depth < options_.scale_up_queue_depth,
          "autoscaler scale_down_queue_depth must be below scale_up_queue_depth");
  prev_route_ = router_.route_latency();
  if (options_.start_thread) {
    thread_ = std::thread([this] { loop(); });
  }
}

ClusterAutoscaler::~ClusterAutoscaler() { stop(); }

void ClusterAutoscaler::stop() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ClusterAutoscaler::loop() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    wake_cv_.wait_for(lock, to_duration(options_.evaluation_interval_seconds),
                      [this] { return stopping_.load(std::memory_order_acquire); });
    if (stopping_.load(std::memory_order_acquire)) break;
    lock.unlock();
    evaluate();
    lock.lock();
  }
}

AutoscalerSample ClusterAutoscaler::sample_from_router() {
  AutoscalerSample s;
  const HistogramSnapshot cur = router_.route_latency();
  const HistogramSnapshot interval = cur.delta_since(prev_route_);
  prev_route_ = cur;
  if (!interval.empty()) s.route_p95_seconds = interval.percentile_ns(95) / 1e9;
  const ClusterStats stats = router_.stats();
  if (!stats.shard_status.empty()) {
    double queued = 0.0;
    for (const ShardStatus& st : stats.shard_status) {
      queued += static_cast<double>(st.queue_depth);
    }
    s.avg_queue_depth = queued / static_cast<double>(stats.shard_status.size());
  }
  return s;
}

void ClusterAutoscaler::evaluate() {
  // The stall site wedges the control loop *before* it reads metrics —
  // the fleet must keep serving at its current size while the operator
  // brain is stuck, which is exactly what the chaos test asserts.
  if (FaultInjector::global().enabled() &&
      FaultInjector::global().consume("stall:autoscaler")) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stalled_;
    }
    router_.add_counter("autoscaler.stalled");
    if (obs::FlightRecorder* rec = router_.flight_recorder()) {
      rec->record("autoscaler", "evaluation_stalled", "",
                  std::to_string(options_.inject_stall_seconds) + "s stall consumed");
    }
    std::this_thread::sleep_for(to_duration(options_.inject_stall_seconds));
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++evaluations_;
  router_.add_counter("autoscaler.evaluations");
  const AutoscalerSample s = source_ ? source_() : sample_from_router();
  const double now = clock_();
  if (now < cooldown_until_) {
    // Post-resize quiet period: the fleet is still re-balancing, so
    // breaches observed now would double-count the event that caused
    // the resize.
    up_streak_ = 0;
    down_streak_ = 0;
    return;
  }

  const bool up_breach = s.route_p95_seconds > options_.scale_up_p95_seconds ||
                         s.avg_queue_depth > options_.scale_up_queue_depth;
  const bool down_breach = s.route_p95_seconds < options_.scale_down_p95_seconds &&
                           s.avg_queue_depth < options_.scale_down_queue_depth;
  if (up_breach) {
    ++up_streak_;
    down_streak_ = 0;
  } else if (down_breach) {
    ++down_streak_;
    up_streak_ = 0;
  } else {
    // Hysteresis band: healthy-but-not-idle resets both streaks, so the
    // fleet holds its size instead of flapping.
    up_streak_ = 0;
    down_streak_ = 0;
  }

  if (up_streak_ >= options_.hysteresis_evaluations) {
    up_streak_ = 0;
    if (router_.active_shards() < options_.max_shards && router_.scale_up()) {
      ++scale_ups_;
      router_.add_counter("autoscaler.scale_ups");
      if (obs::FlightRecorder* rec = router_.flight_recorder()) {
        rec->record("autoscaler", "scale_up", "",
                    "p95=" + std::to_string(s.route_p95_seconds) +
                        "s queue=" + std::to_string(s.avg_queue_depth));
      }
      cooldown_until_ = now + options_.cooldown_seconds;
    }
  } else if (down_streak_ >= options_.hysteresis_evaluations) {
    down_streak_ = 0;
    if (router_.active_shards() > options_.min_shards && router_.scale_down().has_value()) {
      ++scale_downs_;
      router_.add_counter("autoscaler.scale_downs");
      if (obs::FlightRecorder* rec = router_.flight_recorder()) {
        rec->record("autoscaler", "scale_down", "",
                    "p95=" + std::to_string(s.route_p95_seconds) +
                        "s queue=" + std::to_string(s.avg_queue_depth));
      }
      cooldown_until_ = now + options_.cooldown_seconds;
    }
  }
}

AutoscalerStats ClusterAutoscaler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AutoscalerStats out;
  out.active_shards = router_.active_shards();
  out.evaluations = evaluations_;
  out.scale_ups = scale_ups_;
  out.scale_downs = scale_downs_;
  out.stalled = stalled_;
  out.up_streak = up_streak_;
  out.down_streak = down_streak_;
  return out;
}

}  // namespace hrf::cluster
