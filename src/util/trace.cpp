#include "util/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace hrf::trace {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string format_ns(std::uint64_t ns) {
  char buf[64];
  if (ns < 1'000ULL) {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(ns));
  } else if (ns < 1'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1'000'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

void append_span_tree(std::string& out, const Trace& t, const SpanData& span,
                      std::uint64_t trace_start_ns, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += span.name;
  out += "  ";
  out += span.end_ns ? format_ns(span.end_ns - span.start_ns) : "open";
  if (span.parent_id != 0) {
    out += "  (+";
    out += format_ns(span.start_ns >= trace_start_ns ? span.start_ns - trace_start_ns : 0);
    out += ")";
  }
  if (!span.attributes.empty()) {
    out += "  [";
    bool first = true;
    for (const auto& [k, v] : span.attributes) {
      if (!first) out += " ";
      first = false;
      out += k;
      out += "=";
      out += v;
    }
    out += "]";
  }
  out += "\n";
  for (const SpanData& s : t.spans) {
    if (s.parent_id == span.id) append_span_tree(out, t, s, trace_start_ns, depth + 1);
  }
}

std::string format_double(double v) {
  char buf[64];
  // Trim to a compact form: integers print without a fraction.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

std::string Trace::to_string() const {
  std::string out = "trace #" + std::to_string(id) + "  " +
                    format_ns(root().end_ns - root().start_ns) + "\n";
  if (!spans.empty()) append_span_tree(out, *this, root(), root().start_ns, 1);
  return out;
}

// ---------------------------------------------------------------------------
// Span

Span::Span(std::shared_ptr<detail::TraceContext> ctx, std::size_t index)
    : ctx_(std::move(ctx)), index_(index), open_(true) {}

Span::Span(Span&& other) noexcept
    : ctx_(std::move(other.ctx_)), index_(other.index_), open_(other.open_) {
  other.ctx_.reset();
  other.open_ = false;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    ctx_ = std::move(other.ctx_);
    index_ = other.index_;
    open_ = other.open_;
    other.ctx_.reset();
    other.open_ = false;
  }
  return *this;
}

Span::~Span() { end(); }

Span Span::child(const std::string& name) const {
  if (!ctx_ || !open_) return Span{};
  const std::uint64_t start = now_ns();
  std::lock_guard<std::mutex> lock(ctx_->mu);
  if (ctx_->finished) return Span{};
  SpanData s;
  s.id = ctx_->next_span_id++;
  s.parent_id = ctx_->trace.spans[index_].id;
  s.name = name;
  s.start_ns = start;
  ctx_->trace.spans.push_back(std::move(s));
  return Span{ctx_, ctx_->trace.spans.size() - 1};
}

void Span::set_attr(const std::string& key, std::string value) const {
  if (!ctx_ || !open_) return;
  std::lock_guard<std::mutex> lock(ctx_->mu);
  if (ctx_->finished) return;
  ctx_->trace.spans[index_].attributes.emplace_back(key, std::move(value));
}

void Span::set_attr(const std::string& key, const char* value) const {
  set_attr(key, std::string(value));
}

void Span::set_attr(const std::string& key, double value) const {
  set_attr(key, format_double(value));
}

void Span::set_attr(const std::string& key, std::uint64_t value) const {
  set_attr(key, std::to_string(value));
}

void Span::set_attr(const std::string& key, std::int64_t value) const {
  set_attr(key, std::to_string(value));
}

void Span::set_attr(const std::string& key, bool value) const {
  set_attr(key, std::string(value ? "true" : "false"));
}

void Span::end() {
  if (!ctx_ || !open_) return;
  open_ = false;
  const std::uint64_t end = now_ns();
  bool retire_trace = false;
  Trace finished;
  Tracer* tracer = nullptr;
  {
    std::lock_guard<std::mutex> lock(ctx_->mu);
    if (!ctx_->finished) {
      SpanData& s = ctx_->trace.spans[index_];
      if (s.end_ns == 0) s.end_ns = end;
      if (s.parent_id == 0) {
        // Root span closed: stamp any still-open children so the
        // exported trace never contains dangling intervals, then retire.
        for (SpanData& child : ctx_->trace.spans) {
          if (child.end_ns == 0) child.end_ns = end;
        }
        ctx_->finished = true;
        finished = std::move(ctx_->trace);
        tracer = ctx_->tracer;
        retire_trace = true;
      }
    }
  }
  if (retire_trace && tracer) tracer->retire(std::move(finished));
  ctx_.reset();
}

// ---------------------------------------------------------------------------
// Tracer

Span Tracer::start_trace(const std::string& name) {
  const std::uint64_t n = started_.fetch_add(1, std::memory_order_relaxed) + 1;
  const double rate = std::clamp(options_.sampling, 0.0, 1.0);
  // Deterministic sampler: trace n is recorded iff the integer part of
  // n*rate advanced, which spreads samples evenly (rate 0.25 -> every
  // 4th trace) and makes 0.0 / 1.0 exactly none / all.
  if (std::floor(static_cast<double>(n) * rate) <=
      std::floor(static_cast<double>(n - 1) * rate)) {
    return Span{};
  }
  auto ctx = std::make_shared<detail::TraceContext>();
  ctx->tracer = this;
  SpanData root;
  root.name = name;
  root.start_ns = now_ns();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++sampled_;
    ctx->trace.id = next_trace_id_++;
  }
  root.id = ctx->next_span_id++;
  ctx->trace.spans.push_back(std::move(root));
  return Span{std::move(ctx), 0};
}

void Tracer::retire(Trace&& t) {
  auto done = std::make_shared<const Trace>(std::move(t));
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  ring_.push_back(std::move(done));
  while (ring_.size() > options_.capacity) {
    ring_.pop_front();
    ++evicted_;
  }
}

std::vector<std::shared_ptr<const Trace>> Tracer::traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<std::shared_ptr<const Trace>> Tracer::slowest(std::size_t n) const {
  std::vector<std::shared_ptr<const Trace>> all = traces();
  std::stable_sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a->duration_seconds() > b->duration_seconds();
  });
  if (all.size() > n) all.resize(n);
  return all;
}

TracerSummary Tracer::summary() const {
  TracerSummary s;
  s.started = started_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.sampled = sampled_;
  s.completed = completed_;
  s.evicted = evicted_;
  s.retained = ring_.size();
  s.sampling = options_.sampling;
  s.capacity = options_.capacity;
  return s;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

}  // namespace hrf::trace
