#pragma once

// Deterministic fault injection for robustness testing.
//
// A FaultInjector holds a set of *armed sites* — named failure points that
// production code consults via fault_point() / consume(). Arming is
// explicit (tests, or hrf_cli --inject-fault), so an unarmed injector adds
// a single relaxed atomic load to every hook. All randomness (bit
// positions for blob corruption) derives from a caller-supplied seed, so a
// given (seed, spec) pair reproduces the exact same fault sequence.
//
// Site names follow a `kind:target` grammar (see arm_spec):
//   resource:gpu        GpuSim device bring-up fails with ResourceError
//   resource:gpu-smem   hybrid GPU kernel's shared-memory reservation fails
//   resource:fpga       FpgaSim pipeline evaluation fails with ResourceError
//   resource:fpga-bram  collaborative/hybrid FPGA BRAM reservation fails
//   bitflip:layout      layout blob bytes are bit-flipped before parsing
//   corrupt:node        a node field is corrupted after a layout blob parses
//   corrupt:replica     one serving worker's resident layout is bit-flipped
//                       in place mid-traffic (a copy is corrupted and
//                       swapped in, so readers never race the flip) — the
//                       integrity scrubber / shadow audits must detect,
//                       quarantine, and rebuild the replica
//   hang:worker         a serving worker wedges indefinitely at dispatch
//                       (until the watchdog's hang threshold); the watchdog
//                       must answer the stuck request on the CPU oracle and
//                       replace the worker thread
//   crash:publish       model-store publisher dies (std::_Exit, kill -9
//                       semantics) after the blobs, before the generation
//                       manifest — leaves a partial generation on disk
//   crash:manifest      publisher dies after the generation committed but
//                       before the store manifest update — leaves a stale
//                       store pointer for recovery to reconcile
//   crash:route         the router->shard dispatch link dies: the cluster
//                       router fails that dispatch with ResourceError and
//                       fails over to the next candidate shard (client
//                       dispatches only; health probes never consume it)
//   freeze:shard        a shard worker stalls at dispatch for
//                       ServerOptions::inject_freeze_seconds before
//                       continuing — simulates a wedged shard so deadline
//                       storms and router hedging have a deterministic
//                       trigger
//   freeze:batcher      a worker stalls for inject_freeze_seconds at
//                       formed-batch dispatch (micro-batching only), so
//                       every member of one coalesced batch ages together
//                       — the batch chaos suite's deterministic trigger
//   surge:tenant        a request from ServerOptions::surge_tenant stalls
//                       its worker for ServerOptions::inject_surge_seconds
//                       — simulates a noisy neighbor whose requests are
//                       heavy as well as frequent, so QoS tests can pin
//                       victim-tenant SLOs against a deterministic hog
//   stall:autoscaler    one autoscaler evaluation sleeps for
//                       AutoscalerOptions::inject_stall_seconds before
//                       acting — the fleet must keep serving at its
//                       current size while the control loop is wedged
//
// Thread safety: every member is safe to call concurrently. Charges are
// atomic, so N armed charges fire exactly N times no matter how many
// worker threads hit the site simultaneously (the serving layer's workers
// all consult the global injector). Site entries are never erased while
// armed-or-exhausted — disarming zeroes the charge instead — so consume()
// can decrement lock-free on a stable node after a brief lookup.
//
// docs/robustness.md documents the failure model end to end.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hrf {

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0);

  /// Re-seeds the corruption RNG (does not change armed sites).
  void seed(std::uint64_t seed);

  /// Arms `site` to fire `count` times (count < 0 = every time). Each
  /// consume()/fault_point hit spends one charge until the site disarms.
  void arm(const std::string& site, int count = 1);

  /// Parses and arms a `kind:target[:count]` spec, e.g. "resource:gpu",
  /// "resource:fpga:2", "bitflip:layout". Unknown kinds/targets throw
  /// ConfigError listing the valid sites.
  void arm_spec(const std::string& spec);

  /// Arms a comma-separated list of specs ("resource:gpu,bitflip:layout").
  void arm_specs(const std::string& specs);

  void disarm(const std::string& site);
  void disarm_all();

  /// True when the site has charges left (does not spend one).
  bool armed(const std::string& site) const;
  int remaining(const std::string& site) const;

  /// Times `site` has fired since construction (cumulative across
  /// re-arms). Lets concurrency tests assert exact fire counts.
  std::uint64_t fired(const std::string& site) const;

  /// Cumulative fired counts for every site ever armed (fired-zero sites
  /// included). Feeds the `fault.fired` labeled metric family so chaos
  /// runs are debuggable from a metrics snapshot alone.
  std::map<std::string, std::uint64_t> fired_counts() const;

  /// Spends one charge of `site`; returns true when the site fired.
  /// Atomic: concurrent callers collectively fire exactly min(hits,
  /// charges) times.
  bool consume(const std::string& site);

  /// Throws ResourceError("injected fault at <site>: ...") when `site`
  /// fires; no-op otherwise.
  void maybe_throw_resource(const std::string& site);

  /// Flips `nbits` random bit positions in `bytes` (positions drawn from
  /// the injector's seeded RNG). Returns the flipped bit indices.
  std::vector<std::size_t> flip_random_bits(std::span<std::byte> bytes, std::size_t nbits = 1);

  /// Flips one specific bit (for exhaustive header sweeps in tests).
  static void flip_bit(std::span<std::byte> bytes, std::size_t bit_index);

  /// Fast path for hooks: false when nothing is armed anywhere.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The process-wide injector consulted by fault_point() hooks in the
  /// simulated backends and the layout loader. CLI flags and tests arm it.
  static FaultInjector& global();

 private:
  /// One armed (or exhausted) site. Lives at a stable address for the
  /// injector's lifetime so worker threads can operate on the atomics
  /// after the map lookup drops the structural lock.
  struct Site {
    std::atomic<int> remaining{0};        // charges left (<0 = inf, 0 = inert)
    std::atomic<std::uint64_t> fired{0};  // cumulative successful fires
  };

  const Site* find_site(const std::string& site) const;
  /// Recomputes enabled_ from the live charge counts (post-exhaustion).
  void refresh_enabled();

  mutable std::mutex mu_;  // guards map structure and the RNG
  Xoshiro256 rng_;
  std::map<std::string, Site> sites_;
  std::atomic<bool> enabled_{false};
};

/// Hook placed at injectable failure sites in production code. Throws
/// ResourceError when the global injector has `site` armed; otherwise a
/// single cheap flag check.
inline void fault_point(const char* site) {
  FaultInjector& g = FaultInjector::global();
  if (g.enabled()) g.maybe_throw_resource(site);
}

}  // namespace hrf
