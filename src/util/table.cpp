#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace hrf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table requires at least one column");
}

Table& Table::row() {
  if (!rows_.empty()) {
    require(rows_.back().size() == headers_.size(),
            "previous table row is incomplete");
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  require(!rows_.empty(), "call row() before cell()");
  require(rows_.back().size() < headers_.size(), "too many cells in table row");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return cell(std::string(buf));
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

std::string Table::markdown() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << v << std::string(width[c] - v.size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::csv() const {
  auto escape = [](const std::string& v) {
    if (v.find_first_of(",\"\n") == std::string::npos) return v;
    std::string out = "\"";
    for (char ch : v) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << escape(headers_[c]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << escape(r[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw Error("cannot open for writing: " + path);
  f << csv();
  if (!f) throw Error("write failed: " + path);
}

void print_table(std::ostream& os, const std::string& title, const Table& table) {
  os << "\n### " << title << "\n\n" << table.markdown() << '\n';
}

}  // namespace hrf
