#pragma once

// Minimal JSON value type for the benchmark-report format (BENCH_hrf.json,
// docs/benchmarking.md). Emits and parses the subset this repo writes:
// objects (insertion-ordered), arrays, strings, finite numbers, booleans,
// null. No external dependency — the container has no JSON library, and
// the regression gate must be runnable from the C++ CLI alone.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hrf::json {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : kind_(Kind::Null) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(double n) : kind_(Kind::Number), number_(n) {}
  Value(int n) : Value(static_cast<double>(n)) {}
  Value(std::int64_t n) : Value(static_cast<double>(n)) {}
  Value(std::uint64_t n) : Value(static_cast<double>(n)) {}
  Value(const char* s) : kind_(Kind::String), string_(s) {}
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

  static Value array() { Value v; v.kind_ = Kind::Array; return v; }
  static Value object() { Value v; v.kind_ = Kind::Object; return v; }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_bool() const { return kind_ == Kind::Bool; }

  /// Typed accessors; throw FormatError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const;  // array/object element count
  const Value& at(std::size_t i) const;
  void push_back(Value v);

  /// Object access: operator[] inserts a null member on first use
  /// (mutation), find() returns nullptr when absent, get() throws
  /// FormatError when absent (schema-required fields).
  Value& operator[](const std::string& key);
  const Value* find(const std::string& key) const;
  const Value& get(const std::string& key) const;
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Serialization. indent > 0 pretty-prints with that many spaces per
  /// level; 0 emits compact single-line JSON.
  std::string dump(int indent = 0) const;

  /// Parses `text` (complete document; trailing garbage is an error).
  /// Throws FormatError with position info on malformed input.
  static Value parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

}  // namespace hrf::json
