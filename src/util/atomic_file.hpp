#pragma once

// Crash-safe file replacement (docs/model-lifecycle.md).
//
// Every durable artifact this repo writes — layout blobs, forest models,
// model-store manifests — goes through AtomicFile: the payload is staged
// in memory, written to a uniquely-named temp file *in the target
// directory*, fsync'd, and atomically rename(2)'d over the destination,
// followed by an fsync of the directory. A crash (or kill -9) at any
// point leaves either the old complete file or the new complete file,
// never a truncated hybrid; stray `*.tmp.<pid>` staging files are inert
// and ignored by every loader.

#include <span>
#include <sstream>
#include <string>

namespace hrf {

/// Buffered writer committing via temp-file + fsync + atomic rename.
///
///   AtomicFile out(path);
///   out.stream() << ...;          // or out.write(bytes)
///   out.commit();                 // durable, atomic; throws hrf::Error
///
/// Destruction without commit() discards the buffer and removes any
/// staged temp file — an exception mid-serialization never clobbers the
/// previous version of the file.
class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// The in-memory staging stream (nothing touches disk until commit()).
  std::ostream& stream() { return buf_; }

  void write(std::span<const std::byte> bytes);
  void write(const std::string& text);

  /// Writes the staged bytes to `<path>.tmp.<pid>`, fsyncs, renames over
  /// `path`, and fsyncs the parent directory. Throws hrf::Error on any
  /// I/O failure (the temp file is removed; the destination is untouched).
  /// At most one commit per AtomicFile.
  void commit();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ostringstream buf_;
  bool committed_ = false;
};

/// One-shot helpers over AtomicFile.
void write_file_atomic(const std::string& path, std::span<const std::byte> bytes);
void write_file_atomic(const std::string& path, const std::string& text);

/// Reads a whole file into memory; throws hrf::Error when unreadable.
std::string read_file_text(const std::string& path);

}  // namespace hrf
