#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hrf {

/// Multi-class confusion matrix and the usual derived scores.
/// Rows = true class, columns = predicted class.
class ConfusionMatrix {
 public:
  /// Builds from parallel prediction/label arrays with labels in
  /// [0, num_classes). Throws ConfigError on shape/range errors.
  ConfusionMatrix(std::span<const std::uint8_t> predictions,
                  std::span<const std::uint8_t> labels, int num_classes);

  int num_classes() const { return num_classes_; }
  std::size_t total() const { return total_; }

  /// Count of samples with true class `t` predicted as class `p`.
  std::size_t at(int truth, int predicted) const;

  double accuracy() const;
  /// Precision of one class: tp / (tp + fp); 0 when the class was never
  /// predicted.
  double precision(int cls) const;
  /// Recall of one class: tp / (tp + fn); 0 when the class never occurs.
  double recall(int cls) const;
  /// Harmonic mean of precision and recall (0 when both are 0).
  double f1(int cls) const;
  /// Unweighted mean F1 over classes (macro averaging).
  double macro_f1() const;

  /// Markdown rendering with per-class precision/recall/F1 rows.
  std::string to_markdown() const;

 private:
  int num_classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // row-major [truth][predicted]
};

}  // namespace hrf
