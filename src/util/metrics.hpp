#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace hrf {

/// Thread-safe named monotonic counters for operational statistics
/// (queue depth aside, everything the serving layer reports only goes
/// up). Writers call add() from any thread; readers take a consistent
/// snapshot(). Names are created on first use, so call sites stay a
/// single line and a registry dump always lists exactly the counters
/// that were touched.
class CounterRegistry {
 public:
  /// Adds `delta` to `name` (creating it at 0 first).
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Applies a whole map of deltas under one lock acquisition. Hot paths
  /// that bump several counters per event (the serving layer touches up
  /// to ~6 per request) accumulate deltas locally and flush them here
  /// once, instead of paying a mutex round-trip per counter.
  void add_batch(const std::map<std::string, std::uint64_t>& deltas);

  /// Current value; 0 for counters never touched.
  std::uint64_t value(const std::string& name) const;

  /// Consistent point-in-time copy of every counter.
  std::map<std::string, std::uint64_t> snapshot() const;

  /// Two-column "counter | value" markdown table, rows sorted by name.
  std::string to_markdown() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
};

/// Multi-class confusion matrix and the usual derived scores.
/// Rows = true class, columns = predicted class.
class ConfusionMatrix {
 public:
  /// Builds from parallel prediction/label arrays with labels in
  /// [0, num_classes). Throws ConfigError on shape/range errors.
  ConfusionMatrix(std::span<const std::uint8_t> predictions,
                  std::span<const std::uint8_t> labels, int num_classes);

  int num_classes() const { return num_classes_; }
  std::size_t total() const { return total_; }

  /// Count of samples with true class `t` predicted as class `p`.
  std::size_t at(int truth, int predicted) const;

  double accuracy() const;
  /// Precision of one class: tp / (tp + fp); 0 when the class was never
  /// predicted.
  double precision(int cls) const;
  /// Recall of one class: tp / (tp + fn); 0 when the class never occurs.
  double recall(int cls) const;
  /// Harmonic mean of precision and recall (0 when both are 0).
  double f1(int cls) const;
  /// Unweighted mean F1 over classes (macro averaging).
  double macro_f1() const;

  /// Markdown rendering with per-class precision/recall/F1 rows.
  std::string to_markdown() const;

 private:
  int num_classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // row-major [truth][predicted]
};

}  // namespace hrf
