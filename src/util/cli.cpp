#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace hrf {

CliArgs::CliArgs(int argc, char** argv) : program_(argc > 0 ? argv[0] : "prog") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw ConfigError("positional arguments are not supported: " + arg);
    }
    std::string key = arg.substr(2);
    std::string value = "1";  // bare flags read as truthy
    auto eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    values_[key] = value;
  }
}

CliArgs& CliArgs::allow(const std::string& key, const std::string& help) {
  allowed_.emplace_back(key, help);
  return *this;
}

bool CliArgs::validate() const {
  if (has("help")) {
    std::printf("usage: %s [--key value ...]\n", program_.c_str());
    for (const auto& [k, h] : allowed_) std::printf("  --%-18s %s\n", k.c_str(), h.c_str());
    return false;
  }
  for (const auto& [k, v] : values_) {
    (void)v;
    bool known = k == "help";
    for (const auto& [a, h] : allowed_) {
      (void)h;
      if (a == k) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "unknown option --%s (try --help)\n", k.c_str());
      return false;
    }
  }
  return true;
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) != 0; }

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw ConfigError("option --" + key + " expects an integer, got '" + it->second + "'");
  }
  return v;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw ConfigError("option --" + key + " expects a number, got '" + it->second + "'");
  }
  return v;
}

std::vector<int> CliArgs::get_int_list(const std::string& key, std::vector<int> fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<int> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    out.push_back(static_cast<int>(std::strtol(tok.c_str(), nullptr, 10)));
  }
  if (out.empty()) {
    throw ConfigError("option --" + key + " expects a comma-separated integer list");
  }
  return out;
}

}  // namespace hrf
