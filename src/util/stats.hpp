#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hrf {

/// Simple descriptive statistics over a sample, used by benchmark reports
/// and the dataset generators' self-checks.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One-pass (Welford) summary of `xs`. Returns zeros for an empty span.
Summary summarize(std::span<const double> xs);

/// Exact percentile via sorting a copy; p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Geometric mean of strictly positive values (returns 0 if any value <= 0).
double geometric_mean(std::span<const double> xs);

}  // namespace hrf
