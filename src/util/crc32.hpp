#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace hrf {

namespace detail {

/// CRC-32 (IEEE 802.3 / zlib polynomial, reflected) lookup table.
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// Incremental CRC-32 update: feeds `bytes` into a running checksum
/// (start from crc32() of the previous chunk, or omit `crc` for the first).
inline std::uint32_t crc32(std::span<const std::byte> bytes, std::uint32_t crc = 0) {
  crc = ~crc;
  for (std::byte b : bytes) {
    crc = detail::kCrc32Table[(crc ^ static_cast<std::uint32_t>(b)) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

inline std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc = 0) {
  return crc32({static_cast<const std::byte*>(data), size}, crc);
}

}  // namespace hrf
