#include "util/fault.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"

namespace hrf {

namespace {

// Every site production code consults, by spec kind. arm_spec validates
// against this list so a typoed --inject-fault fails loudly instead of
// silently injecting nothing.
constexpr std::array<const char*, 4> kResourceTargets = {"gpu", "gpu-smem", "fpga", "fpga-bram"};
constexpr std::array<const char*, 1> kBitflipTargets = {"layout"};
// node: one node field corrupted after a blob parses (load-time defense).
// replica: a serving worker's resident layout bit-flipped mid-traffic; the
// runtime integrity subsystem (scrubber / shadow audits) must catch it.
constexpr std::array<const char*, 2> kCorruptTargets = {"node", "replica"};
// publish/manifest: hard process death (std::_Exit, kill -9 semantics)
// inside the model store's publish sequence; drives the torn-write
// recovery tests. route: the cluster router's dispatch link dies
// (ResourceError + failover), consumed by client dispatches only.
constexpr std::array<const char*, 3> kCrashTargets = {"publish", "manifest", "route"};
// shard: a worker stalls mid-dispatch (deadline storms / hedging trigger).
// batcher: a worker stalls at formed-batch dispatch, so every member of a
// coalesced batch ages past its deadline together (batch chaos trigger).
constexpr std::array<const char*, 2> kFreezeTargets = {"shard", "batcher"};
// One tenant's requests stall their workers (noisy-neighbor QoS trigger).
constexpr std::array<const char*, 1> kSurgeTargets = {"tenant"};
// One autoscaler evaluation wedges; the fleet must keep serving as-is.
constexpr std::array<const char*, 1> kStallTargets = {"autoscaler"};
// A serving worker wedges indefinitely at dispatch; the watchdog must
// answer its in-flight request and replace the thread.
constexpr std::array<const char*, 1> kHangTargets = {"worker"};

template <std::size_t N>
bool known_target(const std::array<const char*, N>& targets, const std::string& t) {
  return std::find(targets.begin(), targets.end(), t) != targets.end();
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw ConfigError("bad fault spec '" + spec + "': " + why +
                    " (valid: resource:{gpu|gpu-smem|fpga|fpga-bram}, bitflip:layout, "
                    "corrupt:{node|replica}, crash:{publish|manifest|route}, "
                    "freeze:{shard|batcher}, surge:tenant, stall:autoscaler, hang:worker, "
                    "each with an optional :count)");
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

void FaultInjector::seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Xoshiro256(seed);
}

void FaultInjector::arm(const std::string& site, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  // Entries are kept (zeroed) on disarm rather than erased so a concurrent
  // consume() holding a Site* never sees its node die under it.
  sites_.try_emplace(site).first->second.remaining.store(count, std::memory_order_release);
  bool any = false;
  for (const auto& [name, s] : sites_) any |= s.remaining.load(std::memory_order_relaxed) != 0;
  enabled_.store(any, std::memory_order_relaxed);
}

void FaultInjector::arm_spec(const std::string& spec) {
  // kind:target[:count]
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos) bad_spec(spec, "expected kind:target");
  const std::string kind = spec.substr(0, c1);
  const std::size_t c2 = spec.find(':', c1 + 1);
  const std::string target =
      c2 == std::string::npos ? spec.substr(c1 + 1) : spec.substr(c1 + 1, c2 - c1 - 1);
  int count = 1;
  if (c2 != std::string::npos) {
    try {
      count = std::stoi(spec.substr(c2 + 1));
    } catch (const std::exception&) {
      bad_spec(spec, "count is not an integer");
    }
    if (count == 0) bad_spec(spec, "count must be nonzero (negative = every time)");
  }

  const bool ok = (kind == "resource" && known_target(kResourceTargets, target)) ||
                  (kind == "bitflip" && known_target(kBitflipTargets, target)) ||
                  (kind == "corrupt" && known_target(kCorruptTargets, target)) ||
                  (kind == "crash" && known_target(kCrashTargets, target)) ||
                  (kind == "freeze" && known_target(kFreezeTargets, target)) ||
                  (kind == "surge" && known_target(kSurgeTargets, target)) ||
                  (kind == "stall" && known_target(kStallTargets, target)) ||
                  (kind == "hang" && known_target(kHangTargets, target));
  if (!ok) bad_spec(spec, "unknown site '" + kind + ":" + target + "'");
  arm(kind + ":" + target, count);
}

void FaultInjector::arm_specs(const std::string& specs) {
  std::size_t pos = 0;
  while (pos <= specs.size()) {
    const std::size_t comma = specs.find(',', pos);
    const std::string one =
        comma == std::string::npos ? specs.substr(pos) : specs.substr(pos, comma - pos);
    if (!one.empty()) arm_spec(one);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
}

void FaultInjector::disarm(const std::string& site) { arm(site, 0); }

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, s] : sites_) s.remaining.store(0, std::memory_order_release);
  enabled_.store(false, std::memory_order_relaxed);
}

const FaultInjector::Site* FaultInjector::find_site(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : &it->second;
}

void FaultInjector::refresh_enabled() {
  std::lock_guard<std::mutex> lock(mu_);
  bool any = false;
  for (const auto& [name, s] : sites_) any |= s.remaining.load(std::memory_order_relaxed) != 0;
  enabled_.store(any, std::memory_order_relaxed);
}

bool FaultInjector::armed(const std::string& site) const { return remaining(site) != 0; }

int FaultInjector::remaining(const std::string& site) const {
  const Site* s = find_site(site);
  return s ? s->remaining.load(std::memory_order_acquire) : 0;
}

std::uint64_t FaultInjector::fired(const std::string& site) const {
  const Site* s = find_site(site);
  return s ? s->fired.load(std::memory_order_acquire) : 0;
}

std::map<std::string, std::uint64_t> FaultInjector::fired_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, s] : sites_) out[name] = s.fired.load(std::memory_order_acquire);
  return out;
}

bool FaultInjector::consume(const std::string& site) {
  // The structural lock is held only for the lookup; the charge itself is
  // spent with a CAS so concurrent workers settle exactly who got each
  // charge (map nodes are stable and never erased — see arm()).
  Site* s = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    s = &it->second;
  }
  int cur = s->remaining.load(std::memory_order_acquire);
  while (cur != 0) {
    if (cur < 0) {  // infinite charges: no decrement to race on
      s->fired.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (s->remaining.compare_exchange_weak(cur, cur - 1, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      s->fired.fetch_add(1, std::memory_order_relaxed);
      if (cur == 1) refresh_enabled();  // this fire exhausted the site
      return true;
    }
  }
  return false;
}

void FaultInjector::maybe_throw_resource(const std::string& site) {
  if (consume(site)) {
    throw ResourceError("injected fault at " + site + ": simulated resource failure");
  }
}

std::vector<std::size_t> FaultInjector::flip_random_bits(std::span<std::byte> bytes,
                                                         std::size_t nbits) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::size_t> flipped;
  if (bytes.empty()) return flipped;
  const std::size_t total_bits = bytes.size() * 8;
  flipped.reserve(nbits);
  for (std::size_t i = 0; i < nbits; ++i) {
    const std::size_t bit = rng_.next() % total_bits;
    bytes[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
    flipped.push_back(bit);
  }
  return flipped;
}

void FaultInjector::flip_bit(std::span<std::byte> bytes, std::size_t bit_index) {
  require(bit_index < bytes.size() * 8, "flip_bit index out of range");
  bytes[bit_index / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit_index % 8))};
}

FaultInjector& FaultInjector::global() {
  static FaultInjector instance;
  return instance;
}

}  // namespace hrf
