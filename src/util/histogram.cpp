#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"
#include "util/table.hpp"

namespace hrf {

double HistogramSnapshot::percentile_ns(double p) const {
  require(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  if (total == 0) return 0.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(p/100 * total); rank 0 (p = 0) means the first occupied bucket.
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(p / 100.0 * static_cast<double>(total))));
  // The nearest-rank statistic at the last sample is the maximum itself,
  // which is tracked exactly rather than bucketized.
  if (rank >= total) return static_cast<double>(max_ns);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      const auto lower =
          static_cast<double>(LatencyHistogram::bucket_lower_bound(static_cast<int>(i)));
      // The true value cannot exceed the exact max; the top occupied
      // bucket's lower bound may (max lives somewhere inside it).
      return std::min(lower, static_cast<double>(max_ns));
    }
  }
  return static_cast<double>(max_ns);
}

std::vector<HistogramSnapshot::CumulativeBucket> HistogramSnapshot::cumulative() const {
  std::vector<CumulativeBucket> out;
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    running += counts[i];
    // Native upper bounds are exclusive; Prometheus `le` is inclusive.
    out.push_back({LatencyHistogram::bucket_upper_bound(static_cast<int>(i)) - 1, running});
  }
  return out;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (counts.size() < other.counts.size()) counts.resize(other.counts.size(), 0);
  for (std::size_t i = 0; i < other.counts.size(); ++i) counts[i] += other.counts[i];
  total += other.total;
  sum_ns += other.sum_ns;
  max_ns = std::max(max_ns, other.max_ns);
}

HistogramSnapshot HistogramSnapshot::delta_since(const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  out.counts.assign(counts.size(), 0);
  std::size_t last = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t before = i < earlier.counts.size() ? earlier.counts[i] : 0;
    out.counts[i] = counts[i] >= before ? counts[i] - before : 0;
    if (out.counts[i] != 0) last = i + 1;
    out.total += out.counts[i];
  }
  out.counts.resize(last);
  out.sum_ns = sum_ns >= earlier.sum_ns ? sum_ns - earlier.sum_ns : 0;
  if (out.total == 0) return out;
  // Provable window max: the cumulative max belongs to this window only
  // if its bucket gained a count; otherwise fall back to the top occupied
  // delta bucket's inclusive upper bound.
  const std::uint64_t top =
      LatencyHistogram::bucket_upper_bound(static_cast<int>(last) - 1) - 1;
  if (max_ns <= top && LatencyHistogram::bucket_index(max_ns) ==
                           static_cast<int>(last) - 1) {
    out.max_ns = max_ns;
  } else {
    out.max_ns = top;
  }
  return out;
}

std::string format_ns(double ns) {
  char buf[32];
  if (ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  }
  return buf;
}

int LatencyHistogram::bucket_index(std::uint64_t ns) {
  if (ns < kSubBuckets) return static_cast<int>(ns);
  const int msb = 63 - std::countl_zero(ns);  // >= kSubBucketBits here
  const int octave = msb - kSubBucketBits;
  const auto sub = static_cast<int>((ns >> octave) - kSubBuckets);  // [0, kSubBuckets)
  const int index = kSubBuckets + octave * kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

std::uint64_t LatencyHistogram::bucket_lower_bound(int index) {
  require(index >= 0 && index < kNumBuckets, "bucket index out of range");
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int octave = (index - kSubBuckets) / kSubBuckets;
  const int sub = (index - kSubBuckets) % kSubBuckets;
  return static_cast<std::uint64_t>(kSubBuckets + sub) << octave;
}

std::uint64_t LatencyHistogram::bucket_upper_bound(int index) {
  require(index >= 0 && index < kNumBuckets, "bucket index out of range");
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index) + 1;
  const int octave = (index - kSubBuckets) / kSubBuckets;
  const int sub = (index - kSubBuckets) % kSubBuckets;
  return static_cast<std::uint64_t>(kSubBuckets + sub + 1) << octave;
}

void LatencyHistogram::record_ns(std::uint64_t ns) {
  buckets_[static_cast<std::size_t>(bucket_index(ns))].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::record_seconds(double seconds) {
  record_ns(seconds <= 0.0 ? 0
                           : static_cast<std::uint64_t>(std::llround(seconds * 1e9)));
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot s;
  s.counts.resize(kNumBuckets);
  // Trailing zero buckets compress away so snapshots stay cheap to copy,
  // merge, and serialize.
  std::size_t last = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    s.counts[static_cast<std::size_t>(i)] = c;
    if (c != 0) last = static_cast<std::size_t>(i) + 1;
    s.total += c;
  }
  s.counts.resize(last);
  s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  s.max_ns = max_ns_.load(std::memory_order_relaxed);
  return s;
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

std::string latency_table_markdown(
    const std::vector<std::pair<std::string, HistogramSnapshot>>& stages) {
  Table t({"stage", "count", "mean", "p50", "p95", "p99", "max"});
  for (const auto& [name, snap] : stages) {
    t.row()
        .cell(name)
        .cell(snap.total)
        .cell(format_ns(snap.mean_ns()))
        .cell(format_ns(snap.percentile_ns(50)))
        .cell(format_ns(snap.percentile_ns(95)))
        .cell(format_ns(snap.percentile_ns(99)))
        .cell(format_ns(static_cast<double>(snap.max_ns)));
  }
  return t.markdown();
}

}  // namespace hrf
