#pragma once

#include <map>
#include <string>
#include <vector>

namespace hrf {

/// Minimal `--key value` / `--flag` command-line parser shared by the bench
/// and example binaries. Unknown keys are rejected only when a whitelist is
/// installed via allow(); values are type-converted on access with defaults.
class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// Registers a recognized option (for `--help` text and typo detection).
  CliArgs& allow(const std::string& key, const std::string& help);

  /// Validates parsed keys against the allow() list and handles `--help`.
  /// Returns false when the program should exit (help requested or error).
  bool validate() const;

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long get_int(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_flag(const std::string& key) const { return has(key); }

  /// Comma-separated integer list, e.g. `--depths 15,20,25`.
  std::vector<int> get_int_list(const std::string& key, std::vector<int> fallback) const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> allowed_;
};

}  // namespace hrf
