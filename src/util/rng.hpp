#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hrf {

/// SplitMix64: used to seed the main generator from a single 64-bit seed.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the library's deterministic PRNG.
///
/// All stochastic components (dataset generation, bootstrap sampling,
/// feature subsampling) draw from this generator so that a fixed seed
/// reproduces a bit-identical run on any platform. Satisfies the C++
/// UniformRandomBitGenerator concept so it can also feed <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x1234abcdULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform float in [0, 1).
  float uniform_float() { return static_cast<float>(next() >> 40) * 0x1.0p-24f; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t n);

  /// Standard normal variate (Box–Muller; one value per call, cached pair).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Jump function: advances the state by 2^128 draws. Used to hand
  /// statistically independent streams to OpenMP workers.
  void jump();

  /// Returns a generator `k` jumps ahead of this one (this one is unchanged).
  Xoshiro256 split(int k) const;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hrf
