#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hrf {

/// Accumulates rows of heterogeneous cells and renders them as a GitHub
/// Markdown table (for console output matching the paper's tables) or as
/// CSV (for plotting). Cells are stored as preformatted strings; numeric
/// add() overloads apply a consistent format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begins a new row. Must be followed by exactly `columns()` cell() calls.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }

  std::size_t columns() const { return headers_.size(); }
  std::size_t rows() const { return rows_.size(); }

  /// Renders as a GitHub-flavoured Markdown table.
  std::string markdown() const;

  /// Renders as RFC-4180-ish CSV (no quoting of embedded commas needed in
  /// practice; cells containing a comma are quoted defensively).
  std::string csv() const;

  /// Writes the CSV rendering to `path`; throws hrf::Error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section heading followed by the table's Markdown rendering.
void print_table(std::ostream& os, const std::string& title, const Table& table);

}  // namespace hrf
